// Budget: the assembled mediator with resource limits.
//
// Section 1's motivation: "query execution can be aborted as soon as the
// user has found a satisfactory answer, or when allotted resource limits
// have been reached" — and because ordering is incremental, "the rest of
// the plans can be found while the execution has begun". This example
// builds the full pipeline with qporder.NewMediator (auto-selected
// algorithm, soundness filtering, physical optimization, prefetching) and
// runs the same query under three different budgets.
package main

import (
	"fmt"
	"log"

	"qporder"
)

func main() {
	cat := qporder.NewCatalog()
	add := func(def string, tuples, transmit, overhead, fail float64) {
		q := qporder.MustParseQuery(def)
		cat.MustAdd(q.Name, q, qporder.Stats{
			Tuples: tuples, TransmitCost: transmit, Overhead: overhead, FailureProb: fail,
		})
	}
	// A small bibliography mediator: papers and their citation counts.
	add("Pub1(P, A) :- authored(A, P), db-paper(P)", 300, 1.0, 10, 0.05)
	add("Pub2(P, A) :- authored(A, P)", 900, 2.0, 25, 0.10)
	add("Pub3(P, A) :- authored(A, P), db-paper(P)", 150, 0.5, 8, 0.02)
	add("Cite1(P, N) :- cited(P, N)", 500, 1.0, 12, 0.05)
	add("Cite2(P, N) :- cited(P, N)", 200, 0.7, 6, 0.20)

	query := qporder.MustParseQuery("Q(P, N) :- authored(halevy, P), cited(P, N)")

	world := qporder.GenerateWorld(qporder.WorldConfig{
		Relations: []qporder.RelationSpec{
			{Name: "authored", Arity: 2}, {Name: "cited", Arity: 2}, {Name: "db-paper", Arity: 1},
		},
		TuplesPerRelation: 80,
		DomainSize:        20,
		Seed:              3,
	})
	for _, p := range []string{"c2", "c5", "c9"} {
		world.Add("authored", "halevy", p)
		world.Add("db-paper", p)
	}

	budgets := []struct {
		label  string
		budget qporder.MediatorBudget
	}{
		{"first answer only", qporder.MediatorBudget{MinAnswers: 1}},
		{"cost-capped at 500", qporder.MediatorBudget{MaxCost: 500}},
		{"everything", qporder.MediatorBudget{}},
	}
	for _, b := range budgets {
		sys, err := qporder.NewMediator(qporder.MediatorConfig{
			Catalog: cat,
			Query:   query,
			Measure: func(entries *qporder.Catalog) qporder.Measure {
				return qporder.NewChainCost(entries, qporder.CostParams{N: 20000, Failure: true})
			},
			Algorithm: qporder.AlgoAuto, // → Streamer (diminishing returns holds)
			Physical:  true,
			PhysN:     20000,
			Prefetch:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		store := qporder.PopulateSources(cat, world, 0.85, 4)
		engine := qporder.NewEngine(cat, store)
		engine.EnableFailures(9)

		res, err := sys.Run(engine, b.budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s stopped=%-14s plans=%d answers=%d cost=%.0f evals=%d\n",
			b.label, res.Stopped, len(res.Executed), res.Answers.Len(), res.Cost, res.Evals)
		for i, pq := range res.Executed {
			fmt.Printf("    #%d u=%-10.4g +%-3d %s\n", i+1, res.Utilities[i], res.NewAnswers[i], pq)
		}
	}
}
