// Inverse rules: the alternative reformulation of Section 7, including
// the recursive case the bucket algorithm cannot express.
//
// Part 1 inverts the movie sources into datalog rules, shows that the
// rules covering each subgoal form exactly the buckets the bucket
// algorithm would build, orders the resulting plans, and cross-checks the
// inverse-rule datalog program's answers against the union of executed
// plans.
//
// Part 2 goes where buckets cannot: a RECURSIVE query (reachability over
// a flight network published by leg sources), answered by evaluating the
// inverse-rule program with the semi-naive datalog engine. The paper
// notes recursive plans as future work for the ordering algorithms; the
// substrate here supports them.
package main

import (
	"fmt"
	"log"

	"qporder"
)

func main() {
	partOne()
	partTwo()
}

func partOne() {
	fmt.Println("== Part 1: inverse rules ≡ buckets on the movie domain ==")
	cat := qporder.NewCatalog()
	add := func(def string, tuples float64) {
		q := qporder.MustParseQuery(def)
		cat.MustAdd(q.Name, q, qporder.Stats{Tuples: tuples, TransmitCost: 1, Overhead: 10})
	}
	add("V1(A, M) :- play-in(A, M), american(M)", 60)
	add("V3(A, M) :- play-in(A, M)", 200)
	add("V4(R, M) :- review-of(R, M)", 150)
	add("V5(R, M) :- review-of(R, M)", 90)

	for _, r := range qporder.InvertCatalog(cat) {
		fmt.Println("  rule:", r.String())
	}

	q := qporder.MustParseQuery("Q(M, R) :- play-in(ford, M), review-of(R, M)")
	ib, err := qporder.InverseBuckets(q, cat)
	if err != nil {
		log.Fatal(err)
	}
	pd := qporder.NewPlanDomain(ib, cat)
	fmt.Printf("  inverse buckets -> %d plans (same as the bucket algorithm)\n", pd.Space.Size())

	// Order them like any bucket-algorithm plan space.
	m := qporder.NewLinearCost(pd.Entries)
	o, err := qporder.NewGreedy([]*qporder.Space{pd.Space}, m)
	if err != nil {
		log.Fatal(err)
	}
	world := qporder.GenerateWorld(qporder.WorldConfig{
		Relations: []qporder.RelationSpec{
			{Name: "play-in", Arity: 2}, {Name: "review-of", Arity: 2}, {Name: "american", Arity: 1},
		},
		TuplesPerRelation: 30, DomainSize: 9, Seed: 2,
	})
	world.Add("play-in", "ford", "c3")
	store := qporder.PopulateSources(cat, world, 1.0, 3)
	eng := qporder.NewEngine(cat, store)
	planAnswers := qporder.NewAnswerSet()
	for {
		_, pq, _, ok, err := pd.SoundNext(o)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		out, err := eng.ExecutePlan(pq)
		if err != nil {
			log.Fatal(err)
		}
		planAnswers.Add(out)
	}

	// The datalog program computes the same answers in one evaluation.
	prog := qporder.DatalogProgram(q, cat)
	derived, err := qporder.EvalProgram(prog, store)
	if err != nil {
		log.Fatal(err)
	}
	clean := qporder.FilterAnswers(derived["Q"], func(a qporder.Atom) bool {
		for _, t := range a.Args {
			if qporder.IsSkolem(t) {
				return false
			}
		}
		return true
	})
	fmt.Printf("  plan-union answers: %d, datalog-program answers: %d (must match)\n\n",
		planAnswers.Len(), len(clean))
	if planAnswers.Len() != len(clean) {
		log.Fatal("BUG: inverse-rule program disagrees with plan union")
	}
}

func partTwo() {
	fmt.Println("== Part 2: recursion — reachability over leg sources ==")
	cat := qporder.NewCatalog()
	legs := qporder.MustParseQuery("Legs(A, B) :- leg(A, B)")
	cat.MustAdd("Legs", legs, qporder.Stats{Tuples: 10, TransmitCost: 1, Overhead: 1})

	store := make(qporder.DB)
	for _, hop := range [][2]string{
		{"sea", "sfo"}, {"sfo", "lax"}, {"lax", "jfk"}, {"jfk", "bos"}, {"cdg", "fra"},
	} {
		store.Add("Legs", hop[0], hop[1])
	}

	// Recursive program over the mediated schema, plus the inverse rule
	// leg(A,B) :- Legs(A,B) connecting it to the source.
	program := []*qporder.Query{
		qporder.MustParseQuery("reach(X, Y) :- leg(X, Y)"),
		qporder.MustParseQuery("reach(X, Z) :- leg(X, Y), reach(Y, Z)"),
	}
	program = append(program, qporder.DatalogProgram(
		qporder.MustParseQuery("Q(X, Y) :- leg(X, Y)"), cat)[1:]...)

	derived, err := qporder.EvalProgram(program, store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  reach facts (%d):\n", len(derived["reach"]))
	for _, a := range derived["reach"] {
		fmt.Println("   ", a)
	}
}
