// MiniCon: generalized buckets (Section 7).
//
// The MiniCon-style reformulator forms MCDs — descriptions of which SETS
// of query subgoals a source can cover together. When a source joins two
// subgoals through a variable it does not expose, it must cover both at
// once; plans then combine MCDs whose covered sets partition the query,
// and every combination is sound by construction: no per-plan soundness
// test is needed. The ordering algorithms run unchanged over the
// resulting plan spaces.
//
// The domain: a travel mediator answering two-leg route queries
// Q(X, Y) :- leg(X, Z), leg(Z, Y). Some sources publish individual legs;
// "through-ticket" aggregators publish only complete two-leg routes with
// the connection airport hidden — their MCDs cover both subgoals.
package main

import (
	"fmt"
	"log"
	"strings"

	"qporder"
)

func main() {
	cat := qporder.NewCatalog()
	add := func(def string, tuples float64) {
		q := qporder.MustParseQuery(def)
		cat.MustAdd(q.Name, q, qporder.Stats{
			Tuples: tuples, TransmitCost: 1, Overhead: 10,
		})
	}
	// Leg publishers: can answer either subgoal.
	add("Legs1(A, B) :- leg(A, B)", 300)
	add("Legs2(A, B) :- leg(A, B)", 120)
	// Through-ticket aggregators: the connection C is existential, so one
	// MCD must cover both subgoals.
	add("Thru1(A, B) :- leg(A, C), leg(C, B)", 80)
	add("Thru2(A, B) :- leg(A, C), leg(C, B)", 40)

	q := qporder.MustParseQuery("Q(X, Y) :- leg(X, Z), leg(Z, Y)")
	fmt.Println("query:", q)

	gb, err := qporder.BuildMCDs(q, cat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMCDs by covered subgoal set:")
	for key, mcds := range gb.ByCover {
		names := make([]string, len(mcds))
		for i, m := range mcds {
			names[i] = m.Source.Name
		}
		fmt.Printf("  cover {%s}: %s\n", key, strings.Join(names, ", "))
	}

	md, err := qporder.NewMiniConDomain(gb, cat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d plan spaces (one per partition of the subgoals):\n", len(md.Spaces))
	total := int64(0)
	for i, sp := range md.Spaces {
		fmt.Printf("  space %d: %d buckets, %d plans\n", i+1, sp.Len(), sp.Size())
		total += sp.Size()
	}

	// Order ALL spaces jointly with the chain cost measure.
	m := qporder.NewChainCost(md.Entries, qporder.CostParams{N: 10000})
	orderer := qporder.NewPI(md.Spaces, m)
	fmt.Printf("\nall %d plans by cost measure (2) — sound by construction:\n", total)
	rank := 0
	for {
		p, u, ok := orderer.Next()
		if !ok {
			break
		}
		rank++
		pq, err := md.PlanQuery(p)
		if err != nil {
			log.Fatal(err)
		}
		sound, err := qporder.IsSound(pq, q, cat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  #%d  cost %7.1f  %-46s sound=%v\n", rank, -u, pq.String(), sound)
		if !sound {
			log.Fatal("BUG: minicon produced an unsound plan")
		}
	}
}
