// Failures: cost measure (2) with source failures and result caching.
//
// Accessing a flaky source may fail; the mediator retries, so the
// expected overhead grows to h/(1-f). Ordering by the failure-aware cost
// measure pushes flaky sources down the ranking. With result caching,
// executing one plan makes shared source operations free for later plans,
// so a plan's utility can INCREASE as others execute — the
// utility-diminishing-returns property fails, Streamer's recycled
// dominance links would be unsound, and the library rejects the
// combination; iDrips handles it. The program demonstrates both, then
// executes the iDrips ordering with failure simulation and shows where
// the cache kicks in.
package main

import (
	"fmt"
	"log"

	"qporder"
)

func main() {
	d := qporder.GenerateWorkload(qporder.WorkloadConfig{
		QueryLen:   3,
		BucketSize: 12,
		Seed:       11,
	})
	spaces := []*qporder.Space{d.Space}

	// 1. Failure-aware cost, no caching: Streamer applies and is exact.
	noCache := qporder.NewChainCost(d.Catalog, qporder.CostParams{N: d.Params.N, Failure: true})
	streamer, err := qporder.NewStreamer(spaces, noCache, qporder.ByAccessCost(d.Catalog))
	if err != nil {
		log.Fatal(err)
	}
	plans, utils := qporder.Take(streamer, 5)
	fmt.Println("cost(2)+failure, no caching — top 5 via Streamer:")
	for i, p := range plans {
		fmt.Printf("  #%d  expected cost %8.1f   %s\n", i+1, -utils[i], name(d, p))
	}
	fmt.Printf("  (%d of %d plans evaluated)\n\n", streamer.Context().Evals(), d.Space.Size())

	// 2. Add caching: diminishing returns fails, Streamer must refuse.
	withCache := qporder.NewChainCost(d.Catalog, qporder.CostParams{
		N: d.Params.N, Failure: true, Caching: true,
	})
	if _, err := qporder.NewStreamer(spaces, withCache, qporder.ByAccessCost(d.Catalog)); err != nil {
		fmt.Println("Streamer with caching is rejected, as it must be:")
		fmt.Println("  ", err)
	} else {
		log.Fatal("BUG: Streamer accepted a non-diminishing measure")
	}

	// 3. iDrips handles the caching measure; watch utilities improve as
	// shared operations get cached.
	idrips := qporder.NewIDrips(spaces, withCache, qporder.ByAccessCost(d.Catalog))
	fmt.Println("\ncost(2)+failure, caching — top 8 via iDrips:")
	prev := make(map[qporder.SourceID]bool)
	plans, utils = qporder.Take(idrips, 8)
	for i, p := range plans {
		shared := 0
		for _, s := range p.Sources() {
			if prev[s] {
				shared++
			}
			prev[s] = true
		}
		fmt.Printf("  #%d  conditional cost %8.1f   %s  (%d cached source ops)\n",
			i+1, -utils[i], name(d, p), shared)
	}
	fmt.Printf("  (%d plans evaluated; PI would start from %d)\n",
		idrips.Context().Evals(), d.Space.Size())

	// 4. Execute the ordering against simulated flaky sources.
	world := qporder.GenerateWorld(qporder.WorldConfig{
		Relations: []qporder.RelationSpec{
			{Name: "rel0", Arity: 2}, {Name: "rel1", Arity: 2}, {Name: "rel2", Arity: 2},
		},
		TuplesPerRelation: 60,
		DomainSize:        10,
		Seed:              5,
	})
	store := qporder.PopulateSources(d.Catalog, world, 0.9, 6)
	eng := qporder.NewEngine(d.Catalog, store)
	eng.Caching = true
	eng.EnableFailures(13)
	answers := qporder.NewAnswerSet()
	fmt.Println("\nexecuting the ordering (failures simulated, cache on):")
	for i, p := range plans {
		pq := planQuery(d, p)
		out, err := eng.ExecutePlan(pq)
		if err != nil {
			log.Fatal(err)
		}
		fresh := answers.Add(out)
		fmt.Printf("  #%d +%3d answers  cumulative cost %8.1f  failed attempts %d  cache hits %d\n",
			i+1, fresh, eng.Cost, eng.FailedAttempts, eng.CacheHits)
	}
}

// name renders a plan with catalog source names.
func name(d *qporder.Domain, p *qporder.Plan) string {
	return p.Format(d.Catalog)
}

// planQuery builds the executable chain query for a synthetic-domain plan:
// P(X0, Xn) :- V1(X0, X1), V2(X1, X2), ...
func planQuery(d *qporder.Domain, p *qporder.Plan) *qporder.Query {
	q := d.Query.Clone()
	q.Name = "P"
	srcs := p.Sources()
	body := make([]qporder.Atom, len(srcs))
	for i, id := range srcs {
		body[i] = qporder.Atom{
			Pred: d.Catalog.Source(id).Name,
			Args: d.Query.Body[i].Args,
		}
	}
	q.Body = body
	return q
}
