// Quickstart: the paper's Figure 1 movie domain, end to end.
//
// Six sources describe actors and reviews; the query asks for reviews of
// Harrison Ford movies. The program reformulates the query with the
// bucket algorithm, orders the nine candidate plans by the fully
// monotonic cost measure (1) using Greedy, filters them through the
// containment-based soundness test, executes each sound plan against
// simulated source contents, and prints the answers as they accumulate.
package main

import (
	"fmt"
	"log"

	"qporder"
)

func main() {
	// 1. Describe the sources (local-as-view) with their statistics.
	cat := qporder.NewCatalog()
	add := func(def string, tuples, transmit, overhead float64) {
		q := qporder.MustParseQuery(def)
		cat.MustAdd(q.Name, q, qporder.Stats{
			Tuples: tuples, TransmitCost: transmit, Overhead: overhead,
		})
	}
	add("V1(A, M) :- play-in(A, M), american(M)", 60, 1.0, 10)
	add("V2(A, M) :- play-in(A, M), russian(M)", 20, 0.5, 5)
	add("V3(A, M) :- play-in(A, M)", 200, 2.0, 20)
	add("V4(R, M) :- review-of(R, M)", 150, 1.5, 10)
	add("V5(R, M) :- review-of(R, M)", 90, 1.0, 15)
	add("V6(R, M) :- review-of(R, M)", 40, 0.8, 25)

	// 2. The user query over the mediated schema.
	q := qporder.MustParseQuery(`Q(M, R) :- play-in(ford, M), review-of(R, M)`)
	fmt.Println("query:   ", q)

	// 3. Reformulate: create buckets, derive the plan space.
	buckets, err := qporder.BuildBuckets(q, cat)
	if err != nil {
		log.Fatal(err)
	}
	pd := qporder.NewPlanDomain(buckets, cat)
	fmt.Printf("buckets:  %d x %d -> %d candidate plans\n",
		len(buckets.Entries[0]), len(buckets.Entries[1]), pd.Space.Size())

	// 4. Order plans by cost measure (1) with Greedy (Section 4).
	m := qporder.NewLinearCost(pd.Entries)
	orderer, err := qporder.NewGreedy([]*qporder.Space{pd.Space}, m)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Simulated world and (incomplete) source contents.
	world := qporder.GenerateWorld(qporder.WorldConfig{
		Relations: []qporder.RelationSpec{
			{Name: "play-in", Arity: 2},
			{Name: "review-of", Arity: 2},
			{Name: "american", Arity: 1},
			{Name: "russian", Arity: 1},
		},
		TuplesPerRelation: 40,
		DomainSize:        12,
		Seed:              1,
	})
	// Plant a few Ford movies so the query has answers.
	world.Add("play-in", "ford", "c1")
	world.Add("play-in", "ford", "c2")
	world.Add("american", "c1")
	store := qporder.PopulateSources(cat, world, 0.8, 2)
	engine := qporder.NewEngine(cat, store)

	// 6. Pull plans in decreasing utility, keep the sound ones, execute.
	answers := qporder.NewAnswerSet()
	rank := 0
	for {
		plan, pq, utility, ok, err := pd.SoundNext(orderer)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		rank++
		out, err := engine.ExecutePlan(pq)
		if err != nil {
			log.Fatal(err)
		}
		fresh := answers.Add(out)
		fmt.Printf("#%d %-6s u=%-8.4g  %-36s  +%d answers (total %d, cost %.0f)\n",
			rank, pd.FormatPlan(plan), utility, pq.String(), fresh, answers.Len(), engine.Cost)
	}

	fmt.Printf("\nall answers (%d):\n%s", answers.Len(), answers)
}
