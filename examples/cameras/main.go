// Cameras: the Section 3 digital-camera narrative.
//
// Dozens of online resellers sell cameras and dozens of sites review them.
// The resellers fall into natural groups — discount resellers,
// specialized camera stores, general retailers, national electronics
// chains — and the review sites into free and subscription sites. Sources
// within a group are similar: replacing one by another barely changes a
// plan's utility. That similarity is exactly what the abstraction-based
// orderers exploit: Streamer reasons about whole groups, prunes the
// uninteresting ones without examining their members, and finds the best
// plans after evaluating a small fraction of the plan space.
//
// The utility is Example 1.2's weighted combination
//
//	u(p) = α·coverage(p) + β·(-cost(p))
//
// balancing answer coverage against access cost.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"qporder"
)

// group describes one cluster of similar sources.
type group struct {
	name    string
	count   int
	extent  float64 // fraction of its market segment the group covers
	cost    float64 // typical access cost
	segment int     // coverage zone within the bucket
}

func main() {
	const universe = 2048
	rng := rand.New(rand.NewSource(7))
	cat := qporder.NewCatalog()
	cov := qporder.NewCoverageModel(universe)

	resellers := []group{
		{name: "discount", count: 45, extent: 0.30, cost: 4, segment: 0},
		{name: "specialist", count: 25, extent: 0.55, cost: 12, segment: 1},
		{name: "general-retail", count: 30, extent: 0.45, cost: 8, segment: 0},
		{name: "national-chain", count: 20, extent: 0.85, cost: 10, segment: 1},
	}
	reviewers := []group{
		{name: "free-site", count: 24, extent: 0.50, cost: 2, segment: 0},
		{name: "paid-site", count: 12, extent: 0.90, cost: 20, segment: 1},
	}

	// Each bucket splits the universe into two segments (e.g. mass-market
	// vs. high-end cameras); a group covers an ε-noised prefix of its
	// segment proportional to its extent.
	var buckets [][]qporder.SourceID
	groupOf := make(map[qporder.SourceID]string)
	segmentOf := make(map[qporder.SourceID]int)
	for b, groups := range [][]group{resellers, reviewers} {
		segElems := [][]int{nil, nil}
		for _, i := range rng.Perm(universe) {
			s := rng.Intn(2)
			segElems[s] = append(segElems[s], i)
		}
		var bucket []qporder.SourceID
		for _, g := range groups {
			for j := 0; j < g.count; j++ {
				name := fmt.Sprintf("%s-%d-%d", g.name, b, j)
				tuples := 1 + g.extent*1000*(0.9+0.2*rng.Float64())
				src := cat.MustAdd(name, nil, qporder.Stats{
					Tuples:       tuples,
					TransmitCost: 0.01 * g.cost * (0.9 + 0.2*rng.Float64()),
					Overhead:     g.cost * (0.8 + 0.4*rng.Float64()),
				})
				set := coverageSet(rng, universe, segElems[g.segment], g.extent)
				cov.SetCoverage(src.ID, set)
				groupOf[src.ID] = g.name
				segmentOf[src.ID] = g.segment
				bucket = append(bucket, src.ID)
			}
		}
		buckets = append(buckets, bucket)
	}
	space := qporder.NewSpace(buckets)
	fmt.Printf("%d resellers x %d review sites = %d plans\n\n",
		len(buckets[0]), len(buckets[1]), space.Size())

	// Weighted utility: coverage matters most, cost tips near-ties.
	utility := qporder.NewWeighted("α·coverage+β·(-cost)",
		qporder.WeightedComponent{Measure: qporder.NewCoverageMeasure(cov), Weight: 1.0},
		qporder.WeightedComponent{Measure: qporder.NewLinearCost(cat), Weight: 0.0005},
	)

	// Group-aware similarity: same market segment, then similar size —
	// the statistics a mediator would estimate from source metadata.
	heur := qporder.ByKey("group-sim", func(_ int, id qporder.SourceID) float64 {
		return float64(segmentOf[id])*1e9 + float64(cov.Set(id).Count())
	})

	streamer, err := qporder.NewStreamer([]*qporder.Space{space}, utility, heur)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 5 plans by", utility.Name(), "(Streamer):")
	plans, utils := qporder.Take(streamer, 5)
	for i, p := range plans {
		fmt.Printf("  #%d  u=%.4f  %s + %s\n", i+1, utils[i],
			describe(cat, groupOf, p, 0), describe(cat, groupOf, p, 1))
	}
	fmt.Printf("\nStreamer evaluated %d plans; the brute-force baseline needs %d up front.\n",
		streamer.Context().Evals(), space.Size())

	pi := qporder.NewPI([]*qporder.Space{space}, utility)
	qporder.Take(pi, 5)
	fmt.Printf("PI evaluated %d plans for the same five answers (%.1f%% ratio).\n",
		pi.Context().Evals(),
		100*float64(streamer.Context().Evals())/float64(pi.Context().Evals()))
}

// coverageSet covers an ε-noised prefix of the segment's elements.
func coverageSet(rng *rand.Rand, universe int, seg []int, extent float64) *qporder.BitSet {
	set := qporder.NewBitSet(universe)
	prefix := int(extent * float64(len(seg)) * (0.9 + 0.2*rng.Float64()))
	eps := 0.01 + 0.02*rng.Float64()
	for pos, e := range seg {
		in := pos < prefix
		if rng.Float64() < eps {
			in = !in
		}
		if in {
			set.Add(e)
		}
	}
	if !set.Any() {
		set.Add(seg[0])
	}
	return set
}

func describe(cat *qporder.Catalog, groupOf map[qporder.SourceID]string, p *qporder.Plan, pos int) string {
	id := p.Sources()[pos]
	return fmt.Sprintf("%s(%s)", cat.Source(id).Name, groupOf[id])
}
