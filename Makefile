GO ?= go
# FUZZTIME bounds each fuzz target; CI's fast-fail gate overrides it to
# 10s so a fuzz smoke runs on every push without stalling the matrix.
FUZZTIME ?= 30s
BENCH_DATE := $(shell date +%Y-%m-%d)

.PHONY: all build vet test race bench bench-json bench-batch bench-check bench-store check fmtcheck lint-metrics experiments fuzz serve-smoke fleet-smoke store-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# lint-metrics rejects instrument names outside [a-z0-9._] so the
# OpenMetrics exposition (/metrics?format=openmetrics) never needs a
# lossy sanitization. See scripts/metric_lint.sh.
lint-metrics:
	sh scripts/metric_lint.sh

# check is the local all-in-one gate: formatting, metric-name lint,
# vet, build, the plain test suite, the race-enabled test suite, and the
# fleet smoke. The plain run matters:
# the allocation-regression gates (testing.AllocsPerRun in
# internal/coverage) skip themselves under -race, so only a non-race
# pass enforces the zero-allocs-per-Evaluate promise. CI splits the same
# work across jobs (see .github/workflows/ci.yml): a fmt/vet/fuzz
# fast-fail gate, an {ubuntu, macos} x {oldest Go, stable} build+test
# matrix, a dedicated -race job, serving smokes, and a
# benchmark-regression job.
check: fmtcheck lint-metrics vet build test race fleet-smoke store-smoke

bench:
	$(GO) test -bench=. -benchmem .

# bench-json writes the machine-readable benchmark report
# (BENCH_<date>.json) that CI's bench job uploads as an artifact. The
# report records the host's CPU count, sequential cells, and 4-worker
# parallel cells for each algorithm.
bench-json:
	$(GO) run ./cmd/qpbench -exp none -parallelism 4 -metrics-json BENCH_$(BENCH_DATE).json

# bench-batch writes the batched-evaluation report
# (BENCH_<date>_batch.json): the standard sequential cells plus the
# frontier-size sweep comparing the tiled batch kernels against the
# per-plan scalar path at each frontier width. Pass
# BASELINE=BENCH_<date>.json to also regression-gate the cells against a
# checked-in report (batch cells gate once a baseline containing them
# lands).
bench-batch:
	$(GO) run ./cmd/qpbench -exp batch -metrics-json BENCH_$(BENCH_DATE)_batch.json $(if $(BASELINE),-compare $(BASELINE))

# bench-check regenerates the report and fails when any sequential
# ns/plan worsened >20% against BASELINE (a checked-in BENCH_*.json).
# CI picks the newest checked-in baseline; refresh it by committing a
# bench-json artifact from a green run.
bench-check:
	@test -n "$(BASELINE)" || { echo "usage: make bench-check BASELINE=BENCH_<date>.json"; exit 2; }
	$(GO) run ./cmd/qpbench -exp none -parallelism 4 -metrics-json BENCH_$(BENCH_DATE).json -compare $(BASELINE)

# bench-store writes the cold-vs-warm segment-store report
# (BENCH_<date>_store.json): every algorithm run against the in-memory
# domain, then store-backed cold (empty page cache) and warm (immediate
# re-run), with fault/hit/residency deltas per row. The run exits
# non-zero if any store-backed plan stream diverges from the in-memory
# one. EXPERIMENTS.md's storage entry cites the checked-in report.
bench-store:
	$(GO) run ./cmd/qpbench -exp store -metrics-json BENCH_$(BENCH_DATE)_store.json

# Regenerate the paper's evaluation (Figure 6 a-l, sweeps, ablation, tta,
# soundness, greedy). Takes a minute or two.
experiments:
	$(GO) run ./cmd/qpbench -exp all -sizes 10,20,40,60 | tee results_full.txt

fuzz:
	$(GO) test -fuzz FuzzParseQuery -fuzztime $(FUZZTIME) ./internal/schema
	$(GO) test -fuzz FuzzCanonicalKey -fuzztime $(FUZZTIME) ./internal/schema
	$(GO) test -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/domfile
	$(GO) test -fuzz FuzzKernels -fuzztime $(FUZZTIME) ./internal/bitset
	$(GO) test -fuzz FuzzBatchKernels -fuzztime $(FUZZTIME) ./internal/bitset
	$(GO) test -fuzz FuzzSegmentDecode -fuzztime $(FUZZTIME) ./internal/store

# serve-smoke boots the qpserved daemon (race-enabled build) on a random
# port, checks the streamed plan order byte-for-byte against qporder,
# replays a concurrent shuffled burst through qpload requiring zero
# errors and session-cache hits, and SIGTERMs the daemon requiring a
# clean drain. See scripts/serve_smoke.sh.
serve-smoke:
	sh scripts/serve_smoke.sh

# fleet-smoke boots three race-enabled qpserved shards behind qprouter,
# proves scatter-gather byte-parity against single-process qporder,
# checks canonical-key session affinity, SIGTERMs a shard under paced
# load requiring zero client-visible errors and a reroute, re-proves
# parity on the 2-shard fleet, and drains everything cleanly. See
# scripts/fleet_smoke.sh.
fleet-smoke:
	sh scripts/fleet_smoke.sh

# store-smoke generates a segment store with qpgen -store, proves
# qpstore verify rejects any single corrupted byte in either file, boots
# a race-enabled qpserved -store over the clean store, proves the
# streamed plan order byte-identical to qporder -store, runs the
# parity-gated cold/warm store experiment, and drains cleanly. See
# scripts/store_smoke.sh.
store-smoke:
	sh scripts/store_smoke.sh

clean:
	rm -rf internal/schema/testdata internal/domfile/testdata
