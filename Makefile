GO ?= go

.PHONY: all build vet test race bench check fmtcheck experiments fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmtcheck:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# check is the CI gate: formatting, vet, build, and the race-enabled
# test suite.
check: fmtcheck vet build race

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the paper's evaluation (Figure 6 a-l, sweeps, ablation, tta,
# soundness, greedy). Takes a minute or two.
experiments:
	$(GO) run ./cmd/qpbench -exp all -sizes 10,20,40,60 | tee results_full.txt

fuzz:
	$(GO) test -fuzz FuzzParseQuery -fuzztime 30s ./internal/schema
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/domfile

clean:
	rm -rf internal/schema/testdata internal/domfile/testdata
