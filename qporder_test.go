package qporder_test

import (
	"fmt"
	"testing"

	"qporder"
)

// movieCatalog is the Figure 1 fixture over the public API.
func movieCatalog() *qporder.Catalog {
	cat := qporder.NewCatalog()
	add := func(def string, tuples, transmit, overhead float64) {
		q := qporder.MustParseQuery(def)
		cat.MustAdd(q.Name, q, qporder.Stats{
			Tuples: tuples, TransmitCost: transmit, Overhead: overhead,
		})
	}
	add("V1(A, M) :- play-in(A, M), american(M)", 60, 1.0, 10)
	add("V2(A, M) :- play-in(A, M), russian(M)", 20, 0.5, 5)
	add("V3(A, M) :- play-in(A, M)", 200, 2.0, 20)
	add("V4(R, M) :- review-of(R, M)", 150, 1.5, 10)
	add("V5(R, M) :- review-of(R, M)", 90, 1.0, 15)
	add("V6(R, M) :- review-of(R, M)", 40, 0.8, 25)
	return cat
}

// TestPublicAPIEndToEnd drives the full mediator pipeline through the
// facade: parse → buckets → order → soundness filter → execute.
func TestPublicAPIEndToEnd(t *testing.T) {
	cat := movieCatalog()
	q := qporder.MustParseQuery("Q(M, R) :- play-in(ford, M), review-of(R, M)")
	buckets, err := qporder.BuildBuckets(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	pd := qporder.NewPlanDomain(buckets, cat)
	if pd.Space.Size() != 9 {
		t.Fatalf("plan space = %d", pd.Space.Size())
	}
	m := qporder.NewLinearCost(pd.Entries)
	o, err := qporder.NewGreedy([]*qporder.Space{pd.Space}, m)
	if err != nil {
		t.Fatal(err)
	}
	world := qporder.GenerateWorld(qporder.WorldConfig{
		Relations: []qporder.RelationSpec{
			{Name: "play-in", Arity: 2}, {Name: "review-of", Arity: 2},
			{Name: "american", Arity: 1}, {Name: "russian", Arity: 1},
		},
		TuplesPerRelation: 30, DomainSize: 10, Seed: 4,
	})
	world.Add("play-in", "ford", "c1")
	store := qporder.PopulateSources(cat, world, 1.0, 5)
	engine := qporder.NewEngine(cat, store)
	answers := qporder.NewAnswerSet()
	queryAnswers := qporder.NewAnswerSet()
	queryAnswers.Add(qporder.EvalQuery(q, world))

	seen := 0
	prevU := 0.0
	for {
		plan, pq, u, ok, err := pd.SoundNext(o)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if seen > 0 && u > prevU {
			t.Errorf("utility increased: %g after %g", u, prevU)
		}
		prevU = u
		seen++
		if !plan.Concrete() {
			t.Fatal("abstract plan emitted")
		}
		out, err := engine.ExecutePlan(pq)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range out {
			if !queryAnswers.Contains(qporder.Atom{Pred: "Q", Args: a.Args}) {
				t.Errorf("plan %s produced non-answer %v", pq, a)
			}
		}
		answers.Add(out)
	}
	if seen != 9 {
		t.Errorf("sound plans = %d, want 9", seen)
	}
	if answers.Len() == 0 {
		t.Error("no answers produced")
	}
}

// TestFacadeMeasuresAndOrderers smoke-checks every exported constructor
// combination on a synthetic domain.
func TestFacadeMeasuresAndOrderers(t *testing.T) {
	d := qporder.GenerateWorkload(qporder.WorkloadConfig{
		QueryLen: 2, BucketSize: 4, Universe: 256, Seed: 2,
	})
	spaces := []*qporder.Space{d.Space}
	measures := []qporder.Measure{
		qporder.NewCoverageMeasure(d.Coverage),
		qporder.NewLinearCost(d.Catalog),
		qporder.NewChainCost(d.Catalog, qporder.CostParams{N: 1000, Failure: true}),
		qporder.NewMonetaryPerTuple(d.Catalog, qporder.CostParams{N: 1000}),
		qporder.NewWeighted("mix",
			qporder.WeightedComponent{Measure: qporder.NewCoverageMeasure(d.Coverage), Weight: 1},
			qporder.WeightedComponent{Measure: qporder.NewLinearCost(d.Catalog), Weight: 0.001},
		),
	}
	for _, m := range measures {
		var orderers []qporder.Orderer
		orderers = append(orderers,
			qporder.NewPI(spaces, m),
			qporder.NewExhaustive(spaces, m),
			qporder.NewIDrips(spaces, m, qporder.ByTuples(d.Catalog)))
		if g, err := qporder.NewGreedy(spaces, m); err == nil {
			orderers = append(orderers, g)
		}
		if s, err := qporder.NewStreamer(spaces, m, qporder.ByTuples(d.Catalog)); err == nil {
			orderers = append(orderers, s)
		}
		var first []float64
		for _, o := range orderers {
			_, utils := qporder.Take(o, 3)
			if len(utils) != 3 {
				t.Fatalf("measure %s: got %d plans", m.Name(), len(utils))
			}
			if first == nil {
				first = utils
				continue
			}
			for i := range utils {
				if utils[i] != first[i] {
					t.Errorf("measure %s: utility sequences diverge: %v vs %v",
						m.Name(), utils, first)
					break
				}
			}
		}
	}
}

// TestFacadeMediatorAndOptimizer exercises the remaining facade surface:
// the assembled mediator, the physical optimizer, inverse rules, the
// datalog engine, and the adaptive tracker.
func TestFacadeMediatorAndOptimizer(t *testing.T) {
	cat := movieCatalog()
	q := qporder.MustParseQuery("Q(M, R) :- play-in(ford, M), review-of(R, M)")
	world := qporder.GenerateWorld(qporder.WorldConfig{
		Relations: []qporder.RelationSpec{
			{Name: "play-in", Arity: 2}, {Name: "review-of", Arity: 2},
			{Name: "american", Arity: 1}, {Name: "russian", Arity: 1},
		},
		TuplesPerRelation: 25, DomainSize: 8, Seed: 14,
	})
	world.Add("play-in", "ford", "c2")
	store := qporder.PopulateSources(cat, world, 0.9, 15)

	sys, err := qporder.NewMediator(qporder.MediatorConfig{
		Catalog: cat,
		Query:   q,
		Measure: func(entries *qporder.Catalog) qporder.Measure {
			return qporder.NewChainCost(entries, qporder.CostParams{N: 5000})
		},
		Reformulator: qporder.ViaInverseRules,
		Physical:     true,
		PhysN:        5000,
		Adaptive:     true,
		Prefetch:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := qporder.NewEngine(cat, store)
	res, err := sys.Run(eng, qporder.MediatorBudget{MaxPlans: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Executed) == 0 {
		t.Fatal("mediator executed nothing")
	}
	// Physical optimizer standalone.
	pp, err := qporder.Optimize(res.Executed[0], cat, qporder.PhysOptParams{N: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.Steps) != len(res.Executed[0].Body) {
		t.Errorf("physical plan has %d steps", len(pp.Steps))
	}
	// Inverse rules and datalog program.
	rules := qporder.InvertCatalog(cat)
	if len(rules) == 0 {
		t.Fatal("no inverse rules")
	}
	derived, err := qporder.EvalProgram(qporder.DatalogProgram(q, cat), store)
	if err != nil {
		t.Fatal(err)
	}
	clean := qporder.FilterAnswers(derived["Q"], func(a qporder.Atom) bool {
		for _, tm := range a.Args {
			if qporder.IsSkolem(tm) {
				return false
			}
		}
		return true
	})
	for _, a := range clean {
		if !res.Answers.Contains(qporder.Atom{Pred: "P", Args: a.Args}) && res.Stopped == qporder.StopExhausted {
			t.Errorf("program answer %v missing from mediator answers", a)
		}
	}
	// Adaptive tracker standalone.
	tr := qporder.NewAdaptiveTracker(cat)
	tr.Record(0, 500, 1)
	if len(tr.Drifted()) == 0 {
		t.Error("drift not detected")
	}
}

// ExampleContains demonstrates the containment checker.
func ExampleContains() {
	q1 := qporder.MustParseQuery("P(A) :- play-in(A, M), american(M)")
	q2 := qporder.MustParseQuery("Q(A) :- play-in(A, M)")
	fmt.Println(qporder.Contains(q1, q2))
	fmt.Println(qporder.Contains(q2, q1))
	// Output:
	// true
	// false
}

// ExampleNewMediator runs the assembled pipeline under a budget.
func ExampleNewMediator() {
	cat := qporder.NewCatalog()
	for _, d := range []string{
		"V1(A, M) :- play-in(A, M)",
		"V2(A, M) :- play-in(A, M)",
		"V4(R, M) :- review-of(R, M)",
	} {
		def := qporder.MustParseQuery(d)
		cat.MustAdd(def.Name, def, qporder.Stats{Tuples: 10, TransmitCost: 1, Overhead: 5})
	}
	sys, err := qporder.NewMediator(qporder.MediatorConfig{
		Catalog: cat,
		Query:   qporder.MustParseQuery("Q(M, R) :- play-in(ford, M), review-of(R, M)"),
		Measure: func(entries *qporder.Catalog) qporder.Measure {
			return qporder.NewChainCost(entries, qporder.CostParams{N: 1000})
		},
	})
	if err != nil {
		panic(err)
	}
	world := make(qporder.DB)
	world.Add("play-in", "ford", "witness")
	world.Add("review-of", "4-stars", "witness")
	store := qporder.PopulateSources(cat, world, 1.0, 1)
	res, err := sys.Run(qporder.NewEngine(cat, store), qporder.MediatorBudget{MinAnswers: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Stopped, res.Answers.Len())
	// Output:
	// min-answers 1
}

// ExampleTake shows ordering a synthetic domain with Streamer.
func ExampleTake() {
	d := qporder.GenerateWorkload(qporder.WorkloadConfig{
		QueryLen: 2, BucketSize: 3, Universe: 128, Seed: 8,
	})
	m := qporder.NewChainCost(d.Catalog, qporder.CostParams{N: 1000})
	o, err := qporder.NewStreamer([]*qporder.Space{d.Space}, m, qporder.ByTuples(d.Catalog))
	if err != nil {
		panic(err)
	}
	plans, _ := qporder.Take(o, 2)
	fmt.Println(len(plans))
	// Output:
	// 2
}
