module qporder

go 1.22
