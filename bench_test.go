// Benchmarks regenerating the paper's evaluation (Section 6): one
// benchmark per Figure 6 panel with one sub-benchmark per algorithm, plus
// the overlap-rate and query-length sweeps described in the text, the
// Greedy scaling experiment of Section 4, and micro-benchmarks for the
// hot data structures. cmd/qpbench runs the same experiments at larger
// scale with paper-shaped tables.
package qporder_test

import (
	"fmt"
	"testing"

	"qporder/internal/abstraction"
	"qporder/internal/bitset"
	"qporder/internal/core"
	"qporder/internal/costmodel"
	"qporder/internal/coverage"
	"qporder/internal/execsim"
	"qporder/internal/experiment"
	"qporder/internal/interval"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/mediator"
	"qporder/internal/obs"
	"qporder/internal/physopt"
	"qporder/internal/planspace"
	"qporder/internal/schema"
	"qporder/internal/workload"
)

// benchBase is the shared configuration: query length 3, overlap 0.3,
// modest bucket size so `go test -bench=.` stays quick.
func benchBase(size int) workload.Config {
	return workload.Config{QueryLen: 3, Zones: 3, Universe: 2048, Seed: 42, BucketSize: size}
}

var benchDomains = make(experiment.DomainCache)

// benchPanel runs one Figure 6 panel at one bucket size, one
// sub-benchmark per algorithm (inapplicable combinations are skipped).
func benchPanel(b *testing.B, id string, size int) {
	p, ok := experiment.PanelByID(id)
	if !ok {
		b.Fatalf("unknown panel %s", id)
	}
	cfg := benchBase(size)
	d := benchDomains.Get(cfg)
	for _, algo := range p.Algos {
		algo := algo
		b.Run(fmt.Sprintf("%s/m=%d", algo, size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiment.Run(d, experiment.Cell{
					Algo: algo, Measure: p.Measure, K: p.K, Config: cfg,
				})
				if res.Err != "" {
					b.Fatal(res.Err)
				}
			}
		})
	}
}

// Figure 6, panels (a)-(c): plan coverage, k = 1, 10, 100.
func BenchmarkFig6a(b *testing.B) { benchPanel(b, "6a", 20) }
func BenchmarkFig6b(b *testing.B) { benchPanel(b, "6b", 20) }
func BenchmarkFig6c(b *testing.B) { benchPanel(b, "6c", 20) }

// Figure 6, panels (d)-(f): cost (2) + source failure, no caching.
func BenchmarkFig6d(b *testing.B) { benchPanel(b, "6d", 20) }
func BenchmarkFig6e(b *testing.B) { benchPanel(b, "6e", 20) }
func BenchmarkFig6f(b *testing.B) { benchPanel(b, "6f", 20) }

// Figure 6, panels (g)-(i): cost (2) + failure with caching (Streamer
// inapplicable).
func BenchmarkFig6g(b *testing.B) { benchPanel(b, "6g", 20) }
func BenchmarkFig6h(b *testing.B) { benchPanel(b, "6h", 20) }
func BenchmarkFig6i(b *testing.B) { benchPanel(b, "6i", 20) }

// Figure 6, panels (j)-(l): average monetary cost per tuple.
func BenchmarkFig6j(b *testing.B) { benchPanel(b, "6j", 20) }
func BenchmarkFig6k(b *testing.B) { benchPanel(b, "6k", 20) }
func BenchmarkFig6l(b *testing.B) { benchPanel(b, "6l", 20) }

// BenchmarkOverlapSweep: Streamer vs PI on coverage as the overlap rate
// varies (prose experiment; Streamer's recycling degrades with overlap).
func BenchmarkOverlapSweep(b *testing.B) {
	for _, zones := range []int{10, 3, 1} {
		cfg := benchBase(20)
		cfg.Zones = zones
		d := benchDomains.Get(cfg)
		for _, algo := range []experiment.Algorithm{experiment.AlgoPI, experiment.AlgoStreamer} {
			algo := algo
			b.Run(fmt.Sprintf("%s/overlap=1over%d", algo, zones), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					experiment.Run(d, experiment.Cell{
						Algo: algo, Measure: experiment.MeasureCoverage, K: 10, Config: cfg,
					})
				}
			})
		}
	}
}

// BenchmarkQueryLenSweep: trends vs query length 1..7 (prose experiment).
func BenchmarkQueryLenSweep(b *testing.B) {
	for _, ql := range []int{1, 3, 5, 7} {
		cfg := benchBase(8)
		cfg.QueryLen = ql
		d := benchDomains.Get(cfg)
		for _, algo := range []experiment.Algorithm{
			experiment.AlgoPI, experiment.AlgoIDrips, experiment.AlgoStreamer,
		} {
			algo := algo
			b.Run(fmt.Sprintf("%s/qlen=%d", algo, ql), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					experiment.Run(d, experiment.Cell{
						Algo: algo, Measure: experiment.MeasureCoverage, K: 10, Config: cfg,
					})
				}
			})
		}
	}
}

// BenchmarkGreedy: Section 4's algorithm against Exhaustive on the fully
// monotonic cost measure (1); Greedy's per-plan cost is near-constant.
func BenchmarkGreedy(b *testing.B) {
	for _, size := range []int{20, 80} {
		cfg := benchBase(size)
		d := benchDomains.Get(cfg)
		for _, algo := range []experiment.Algorithm{experiment.AlgoGreedy, experiment.AlgoExhaustive} {
			algo := algo
			b.Run(fmt.Sprintf("%s/m=%d", algo, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					experiment.Run(d, experiment.Cell{
						Algo: algo, Measure: experiment.MeasureLinear, K: 20, Config: cfg,
					})
				}
			})
		}
	}
}

// BenchmarkParallelOrdering: the sequential-vs-parallel comparison for
// the worker-pool paths (utility evaluation and dominance testing fan
// out; output is identical across worker counts). workers=1 is the
// sequential baseline the CI regression job gates on; speedups for
// workers>1 depend on the runner's core count.
func BenchmarkParallelOrdering(b *testing.B) {
	cfg := benchBase(20)
	d := benchDomains.Get(cfg)
	for _, algo := range []experiment.Algorithm{
		experiment.AlgoPI, experiment.AlgoIDrips, experiment.AlgoStreamer,
	} {
		for _, workers := range []int{1, 2, 4, 8} {
			algo, workers := algo, workers
			b.Run(fmt.Sprintf("%s/workers=%d", algo, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := experiment.Run(d, experiment.Cell{
						Algo: algo, Measure: experiment.MeasureCoverage, K: 10,
						Config: cfg, Parallelism: workers,
					})
					if res.Err != "" {
						b.Fatal(res.Err)
					}
				}
			})
		}
	}
}

// BenchmarkPipelinedMediator: end-to-end Run with ordering overlapped
// against execution (Config.Parallelism) vs the sequential mediator.
func BenchmarkPipelinedMediator(b *testing.B) {
	cat := lav.NewCatalog()
	stats := lav.Stats{Tuples: 50, TransmitCost: 1, Overhead: 10}
	for _, def := range []string{
		"V1(A, M) :- play-in(A, M)",
		"V2(A, M) :- play-in(A, M)",
		"V3(A, M) :- play-in(A, M)",
		"V4(R, M) :- review-of(R, M)",
		"V5(R, M) :- review-of(R, M)",
		"V6(R, M) :- review-of(R, M)",
	} {
		q := schema.MustParseQuery(def)
		cat.MustAdd(q.Name, q, stats)
	}
	world := execsim.GenerateWorld(execsim.WorldConfig{
		Relations: []execsim.RelationSpec{
			{Name: "play-in", Arity: 2}, {Name: "review-of", Arity: 2},
		},
		TuplesPerRelation: 60,
		DomainSize:        12,
		Seed:              3,
	})
	store := execsim.PopulateSources(cat, world, 0.9, 4)
	for _, workers := range []int{0, 4} {
		workers := workers
		b.Run(fmt.Sprintf("parallelism=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := mediator.New(mediator.Config{
					Catalog: cat,
					Query:   schema.MustParseQuery("Q(M, R) :- play-in(A, M), review-of(R, M)"),
					Measure: func(entries *lav.Catalog) measure.Measure {
						return costmodel.NewChainCost(entries, costmodel.Params{N: 10000})
					},
					Parallelism: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Run(execsim.NewEngine(cat, store), mediator.Budget{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHeuristicAblation: how much the grouping heuristic matters
// (coverage, Streamer, informed vs uninformed grouping).
func BenchmarkHeuristicAblation(b *testing.B) {
	cfg := benchBase(20)
	d := benchDomains.Get(cfg)
	heurs := map[string]abstraction.Heuristic{
		"cov-sim": abstraction.ByKey("cov-sim", d.SimilarityKey),
		"by-id":   abstraction.ByID(),
	}
	for name, h := range heurs {
		h := h
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o, err := experiment.BuildOrdererWith(d, experiment.MeasureCoverage, experiment.AlgoStreamer, h)
				if err != nil {
					b.Fatal(err)
				}
				core.Take(o, 10)
			}
		})
	}
}

// BenchmarkPhysicalOptimizer: join-order + method search for a length-5
// plan (exact permutation search).
func BenchmarkPhysicalOptimizer(b *testing.B) {
	cat := lav.NewCatalog()
	body := ""
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("S%d", i)
		cat.MustAdd(name, nil, lav.Stats{Tuples: float64(10 * (i + 3)), TransmitCost: 1, Overhead: 5})
		if i > 0 {
			body += ", "
		}
		body += fmt.Sprintf("%s(X%d, X%d)", name, i, i+1)
	}
	pq := schema.MustParseQuery("P(X0, X5) :- " + body)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := physopt.Optimize(pq, cat, physopt.Params{N: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatalogTransitiveClosure: the semi-naive engine on a 200-node
// random graph.
func BenchmarkDatalogTransitiveClosure(b *testing.B) {
	edb := execsim.GenerateWorld(execsim.WorldConfig{
		Relations:         []execsim.RelationSpec{{Name: "edge", Arity: 2}},
		TuplesPerRelation: 200,
		DomainSize:        60,
		Seed:              5,
	})
	rules := []*schema.Query{
		schema.MustParseQuery("path(X, Y) :- edge(X, Y)"),
		schema.MustParseQuery("path(X, Z) :- edge(X, Y), path(Y, Z)"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := execsim.EvalProgram(rules, edb); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks for the hot paths ---

func BenchmarkBitsetIntersectionCount(b *testing.B) {
	x := bitset.New(4096)
	y := bitset.New(4096)
	for i := 0; i < 4096; i += 3 {
		x.Add(i)
	}
	for i := 0; i < 4096; i += 5 {
		y.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.IntersectionCount(y)
	}
}

func BenchmarkIntervalMul(b *testing.B) {
	x := interval.New(-3, 7)
	y := interval.New(2, 11)
	for i := 0; i < b.N; i++ {
		x = x.Mul(y).Scale(0.1)
	}
	_ = x
}

func BenchmarkCoverageEvaluateConcrete(b *testing.B) {
	d := benchDomains.Get(benchBase(20))
	ctx := coverage.NewMeasure(d.Coverage).NewContext()
	plans := d.Space.Enumerate()[:64]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Evaluate(plans[i%len(plans)])
	}
}

func BenchmarkSpaceSplit(b *testing.B) {
	d := benchDomains.Get(benchBase(40))
	victim := d.Space.Enumerate()[0].Sources()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Space.Remove(victim)
	}
}

// benchInstrumentation measures the cost of the observability layer on
// an ordering run: "off" is the default nil-registry path, which must
// match the uninstrumented baseline alloc-for-alloc; "on" binds a live
// registry.
func benchInstrumentation(b *testing.B, m experiment.MeasureKey, algo experiment.Algorithm, k int) {
	d := benchDomains.Get(benchBase(20))
	for _, mode := range []string{"off", "on"} {
		reg := (*obs.Registry)(nil)
		if mode == "on" {
			reg = obs.NewRegistry()
		}
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o, err := experiment.BuildOrderer(d, m, algo)
				if err != nil {
					b.Fatal(err)
				}
				core.Instrument(o, reg)
				core.Take(o, k)
			}
		})
	}
}

func BenchmarkInstrumentationStreamer(b *testing.B) {
	benchInstrumentation(b, experiment.MeasureCoverage, experiment.AlgoStreamer, 10)
}

func BenchmarkInstrumentationGreedy(b *testing.B) {
	benchInstrumentation(b, experiment.MeasureLinear, experiment.AlgoGreedy, 20)
}

func BenchmarkDripsBestCoverage(b *testing.B) {
	d := benchDomains.Get(benchBase(40))
	m := coverage.NewMeasure(d.Coverage)
	heur := experiment.Heuristic(d, experiment.MeasureCoverage)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := m.NewContext()
		core.DripsBest(ctx, []*planspace.Plan{d.Space.Root(heur)})
	}
}
