package adaptive

import (
	"math"
	"testing"

	"qporder/internal/core"
	"qporder/internal/costmodel"
	"qporder/internal/lav"
	"qporder/internal/planspace"
	"qporder/internal/workload"
)

func catalog() *lav.Catalog {
	cat := lav.NewCatalog()
	cat.MustAdd("A", nil, lav.Stats{Tuples: 100, TransmitCost: 1, Overhead: 5, FailureProb: 0.1})
	cat.MustAdd("B", nil, lav.Stats{Tuples: 50, TransmitCost: 1, Overhead: 5})
	return cat
}

func TestObservationAccumulates(t *testing.T) {
	tr := NewTracker(catalog())
	tr.Record(0, 90, 1)
	tr.Record(0, 110, 0)
	o := tr.Observation(0)
	if o.Accesses != 2 || o.Tuples != 200 {
		t.Fatalf("observation = %+v", o)
	}
	if got := o.ObservedTuples(); got != 100 {
		t.Errorf("ObservedTuples = %g", got)
	}
	if got := o.ObservedFailureProb(); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("ObservedFailureProb = %g", got)
	}
	if o := tr.Observation(1); o.Accesses != 0 || !math.IsNaN(o.ObservedTuples()) {
		t.Errorf("untouched source observation = %+v", o)
	}
}

func TestDriftDetection(t *testing.T) {
	tr := NewTracker(catalog())
	// Source 0 estimated at 100, observed ~100: no drift.
	tr.Record(0, 105, 0)
	// Source 1 estimated at 50, observed 500: 10x drift.
	tr.Record(1, 500, 0)
	drifted := tr.Drifted()
	if len(drifted) != 1 || drifted[0] != 1 {
		t.Fatalf("Drifted = %v", drifted)
	}
	// Tighten the factor: both drift now (105 vs 100 within 1.01? no —
	// ratio 1.05 > 1.01).
	tr.DriftFactor = 1.01
	if len(tr.Drifted()) != 2 {
		t.Errorf("Drifted with tight factor = %v", tr.Drifted())
	}
}

func TestDriftIgnoresEmptyObservations(t *testing.T) {
	tr := NewTracker(catalog())
	tr.MinAccesses = 3
	tr.Record(1, 5000, 0)
	if len(tr.Drifted()) != 0 {
		t.Error("drift declared before MinAccesses")
	}
}

func TestReviseReplacesDriftedStats(t *testing.T) {
	tr := NewTracker(catalog())
	tr.Record(1, 500, 1) // estimate 50 → observed 500, failures 1/2
	revised, err := tr.Revise()
	if err != nil {
		t.Fatal(err)
	}
	// Untouched source keeps its estimate.
	if got := revised.Source(0).Stats.Tuples; got != 100 {
		t.Errorf("source A tuples = %g", got)
	}
	// Drifted source adopts observations.
	st := revised.Source(1).Stats
	if st.Tuples != 500 {
		t.Errorf("source B tuples = %g, want 500", st.Tuples)
	}
	if st.FailureProb != 0.5 {
		t.Errorf("source B failure = %g, want 0.5", st.FailureProb)
	}
	// Original catalog untouched.
	if got := tr.cat.Source(1).Stats.Tuples; got != 50 {
		t.Errorf("original mutated: %g", got)
	}
}

func TestReviseZeroTuplesClampsToOne(t *testing.T) {
	tr := NewTracker(catalog())
	tr.Record(1, 0, 0) // empty source: estimate 50 vs observed 0 → drift
	revised, err := tr.Revise()
	if err != nil {
		t.Fatal(err)
	}
	if got := revised.Source(1).Stats.Tuples; got != 1 {
		t.Errorf("clamped tuples = %g, want 1", got)
	}
}

func TestRemainingSpaces(t *testing.T) {
	d := workload.Generate(workload.Config{QueryLen: 2, BucketSize: 3, Universe: 128, Seed: 2})
	all := d.Space.Enumerate()
	executed := []*planspace.Plan{all[0], all[4]}
	spaces := RemainingSpaces([]*planspace.Space{d.Space}, executed)
	total := int64(0)
	seen := map[string]bool{}
	for _, s := range spaces {
		total += s.Size()
		for _, p := range s.Enumerate() {
			seen[p.Key()] = true
		}
	}
	if total != int64(len(all)-2) {
		t.Fatalf("remaining %d plans, want %d", total, len(all)-2)
	}
	for _, e := range executed {
		if seen[e.Key()] {
			t.Errorf("executed plan %s still present", e.Key())
		}
	}
}

// TestAdaptiveReorderingImprovesRanking: end to end — a source whose
// estimate is badly wrong sinks in the re-built ordering once observed.
func TestAdaptiveReorderingImprovesRanking(t *testing.T) {
	cat := lav.NewCatalog()
	// "Cheap" is estimated tiny but actually returns 5000 tuples.
	cheap := cat.MustAdd("Cheap", nil, lav.Stats{Tuples: 10, TransmitCost: 1, Overhead: 1})
	cat.MustAdd("Mid", nil, lav.Stats{Tuples: 500, TransmitCost: 1, Overhead: 1})
	cat.MustAdd("Rev", nil, lav.Stats{Tuples: 100, TransmitCost: 1, Overhead: 1})
	space := planspace.NewSpace([][]lav.SourceID{{0, 1}, {2}})

	m := costmodel.NewChainCost(cat, costmodel.Params{N: 1000})
	pi := core.NewPI([]*planspace.Space{space}, m)
	first, _, ok := pi.Next()
	if !ok || first.Sources()[0] != cheap.ID {
		t.Fatalf("initial ordering should start with Cheap, got %v", first)
	}

	// Execution observes the truth.
	tr := NewTracker(cat)
	tr.Record(cheap.ID, 5000, 0)
	revised, err := tr.Revise()
	if err != nil {
		t.Fatal(err)
	}
	remaining := RemainingSpaces([]*planspace.Space{space}, []*planspace.Plan{first})
	m2 := costmodel.NewChainCost(revised, costmodel.Params{N: 1000})
	ctx2 := m2.NewContext()
	ctx2.Observe(first) // maintain the executed prefix
	pi2 := core.NewPI(remaining, m2)
	second, _, ok := pi2.Next()
	if !ok {
		t.Fatal("no second plan")
	}
	if second.Sources()[0] == cheap.ID {
		t.Error("re-built ordering still prefers the mispriced source")
	}
}
