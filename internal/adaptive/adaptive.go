// Package adaptive implements a light version of the execution-level
// optimization the paper contrasts with in Section 7 (query scrambling /
// adaptive execution [20, 11, 2]): even the best-ordered plan can turn
// out mispriced when source statistics are stale, so the mediator tracks
// the statistics actually observed during execution and, when estimates
// have drifted past a threshold, re-estimates and re-orders the REMAINING
// plans. Ordering stays at the reformulation level — this package just
// feeds it fresher numbers.
package adaptive

import (
	"fmt"
	"math"

	"qporder/internal/lav"
	"qporder/internal/planspace"
)

// Observation accumulates what execution actually saw for one source.
type Observation struct {
	// Accesses counts successful accesses.
	Accesses int
	// Tuples counts tuples returned in total.
	Tuples int
	// Attempts and Failures count access attempts and failed attempts.
	Attempts int
	Failures int
}

// ObservedTuples returns the observed mean tuples per access.
func (o Observation) ObservedTuples() float64 {
	if o.Accesses == 0 {
		return math.NaN()
	}
	return float64(o.Tuples) / float64(o.Accesses)
}

// ObservedFailureProb returns the observed failure rate.
func (o Observation) ObservedFailureProb() float64 {
	if o.Attempts == 0 {
		return math.NaN()
	}
	return float64(o.Failures) / float64(o.Attempts)
}

// Tracker accumulates observations and decides when estimates have
// drifted enough to warrant re-ordering.
type Tracker struct {
	cat *lav.Catalog
	obs map[lav.SourceID]*Observation
	// DriftFactor is the relative error in a source's tuple estimate that
	// triggers re-ordering (default 2: off by 2x either way).
	DriftFactor float64
	// MinAccesses is the number of accesses before a source's observation
	// is trusted (default 1).
	MinAccesses int
}

// NewTracker returns a tracker over the catalog's current estimates.
func NewTracker(cat *lav.Catalog) *Tracker {
	return &Tracker{
		cat:         cat,
		obs:         make(map[lav.SourceID]*Observation),
		DriftFactor: 2,
		MinAccesses: 1,
	}
}

// Record adds one access observation for a source.
func (t *Tracker) Record(id lav.SourceID, tuples, failedAttempts int) {
	o, ok := t.obs[id]
	if !ok {
		o = &Observation{}
		t.obs[id] = o
	}
	o.Accesses++
	o.Tuples += tuples
	o.Attempts += 1 + failedAttempts
	o.Failures += failedAttempts
}

// Observation returns the accumulated observation for a source.
func (t *Tracker) Observation(id lav.SourceID) Observation {
	if o, ok := t.obs[id]; ok {
		return *o
	}
	return Observation{}
}

// Drifted returns the sources whose observed tuple counts disagree with
// the catalog estimates by more than DriftFactor.
func (t *Tracker) Drifted() []lav.SourceID {
	var out []lav.SourceID
	for id, o := range t.obs {
		if o.Accesses < t.MinAccesses {
			continue
		}
		est := t.cat.Source(id).Stats.Tuples
		obs := o.ObservedTuples()
		if obs == 0 {
			obs = 0.5 // an empty source is maximally mispriced; avoid /0
		}
		ratio := est / obs
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > t.DriftFactor {
			out = append(out, id)
		}
	}
	return out
}

// Revise returns a copy of the catalog with drifted sources' statistics
// replaced by their observations (tuples and failure probability; other
// statistics are kept). The original catalog is untouched, so estimates
// and observations remain distinguishable.
func (t *Tracker) Revise() (*lav.Catalog, error) {
	out := lav.NewCatalog()
	drifted := make(map[lav.SourceID]bool)
	for _, id := range t.Drifted() {
		drifted[id] = true
	}
	for _, src := range t.cat.Sources() {
		st := src.Stats
		if drifted[src.ID] {
			o := t.obs[src.ID]
			if obs := o.ObservedTuples(); obs >= 1 {
				st.Tuples = obs
			} else {
				st.Tuples = 1
			}
			if f := o.ObservedFailureProb(); !math.IsNaN(f) && f < 1 {
				st.FailureProb = f
			}
		}
		if _, err := out.Add(src.Name, src.Def, st); err != nil {
			return nil, fmt.Errorf("adaptive: %w", err)
		}
	}
	return out, nil
}

// Rebase replaces the estimates the tracker compares observations
// against — call it with the catalog returned by Revise after acting on a
// drift, so the same drift does not re-trigger on every later check.
func (t *Tracker) Rebase(cat *lav.Catalog) { t.cat = cat }

// RemainingSpaces removes the executed plans from the initial spaces via
// the plan-space splitting construction, yielding the spaces a rebuilt
// orderer should run over. Executed plans not contained in any remaining
// space are ignored (already split away).
func RemainingSpaces(initial []*planspace.Space, executed []*planspace.Plan) []*planspace.Space {
	spaces := append([]*planspace.Space(nil), initial...)
	for _, p := range executed {
		srcs := p.Sources()
		for i, s := range spaces {
			if !s.Contains(srcs) {
				continue
			}
			subs := s.Remove(srcs)
			spaces = append(spaces[:i], spaces[i+1:]...)
			spaces = append(spaces, subs...)
			break
		}
	}
	return spaces
}
