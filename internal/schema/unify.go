package schema

// UnifyTerms extends substitution s so that s(a) == s(b), returning the
// extended substitution and true on success. Terms here are flat (no
// function symbols), so unification needs no occurs check beyond
// variable-to-variable chains, which we resolve eagerly.
func UnifyTerms(a, b Term, s Subst) (Subst, bool) {
	a = resolve(a, s)
	b = resolve(b, s)
	switch {
	case a == b:
		return s, true
	case a.IsVar():
		out := s.Clone()
		out[a] = b
		return out, true
	case b.IsVar():
		out := s.Clone()
		out[b] = a
		return out, true
	default: // distinct constants
		return s, false
	}
}

// resolve follows variable bindings in s until reaching a constant or an
// unbound variable.
func resolve(t Term, s Subst) Term {
	for t.IsVar() {
		img, ok := s[t]
		if !ok || img == t {
			return t
		}
		t = img
	}
	return t
}

// UnifyAtoms extends s to unify atoms a and b (same predicate and arity
// required). It returns the extended substitution and true on success.
func UnifyAtoms(a, b Atom, s Subst) (Subst, bool) {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return s, false
	}
	cur := s
	for i := range a.Args {
		var ok bool
		cur, ok = UnifyTerms(a.Args[i], b.Args[i], cur)
		if !ok {
			return s, false
		}
	}
	return cur, true
}

// MatchAtom attempts to extend s so that s(pattern) == ground, where
// ground contains only constants. Unlike full unification it never binds
// anything inside ground. Returns the extended substitution and success.
func MatchAtom(pattern, ground Atom, s Subst) (Subst, bool) {
	if pattern.Pred != ground.Pred || len(pattern.Args) != len(ground.Args) {
		return s, false
	}
	cur := s.Clone()
	for i, pt := range pattern.Args {
		gt := ground.Args[i]
		pt = resolve(pt, cur)
		switch {
		case pt.Const:
			if pt != gt {
				return s, false
			}
		default:
			cur[pt] = gt
		}
	}
	return cur, true
}
