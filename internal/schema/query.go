package schema

import (
	"fmt"
	"strings"
)

// Query is a conjunctive query (or view definition):
//
//	Head(Ȳ) :- Body1(Ȳ1), ..., Bodym(Ȳm)
//
// The same type represents user queries, LAV source descriptions, and plan
// expansions.
type Query struct {
	// Name is the head predicate, e.g. "Q" or "V1".
	Name string
	// Head lists the distinguished terms Ȳ.
	Head []Term
	// Body lists the subgoals.
	Body []Atom
}

// Clone returns a deep copy.
func (q *Query) Clone() *Query {
	c := &Query{Name: q.Name, Head: make([]Term, len(q.Head)), Body: make([]Atom, len(q.Body))}
	copy(c.Head, q.Head)
	for i, a := range q.Body {
		c.Body[i] = a.Clone()
	}
	return c
}

// HeadAtom returns the head as an atom.
func (q *Query) HeadAtom() Atom { return Atom{Pred: q.Name, Args: q.Head} }

// Vars returns the distinct variables of the query (head first, then body)
// in order of first occurrence.
func (q *Query) Vars() []Term {
	var vs []Term
	vs = Atom{Args: q.Head}.Vars(vs)
	for _, a := range q.Body {
		vs = a.Vars(vs)
	}
	return vs
}

// DistinguishedVars returns the variables occurring in the head.
func (q *Query) DistinguishedVars() []Term {
	var vs []Term
	return Atom{Args: q.Head}.Vars(vs)
}

// ExistentialVars returns body variables that do not occur in the head.
func (q *Query) ExistentialVars() []Term {
	head := q.DistinguishedVars()
	var vs []Term
	for _, a := range q.Body {
		vs = a.Vars(vs)
	}
	var out []Term
	for _, v := range vs {
		if !containsTerm(head, v) {
			out = append(out, v)
		}
	}
	return out
}

// IsSafe reports whether every head variable appears in the body (range
// restriction), the usual safety condition for conjunctive queries.
func (q *Query) IsSafe() bool {
	var bodyVars []Term
	for _, a := range q.Body {
		bodyVars = a.Vars(bodyVars)
	}
	for _, t := range q.Head {
		if t.IsVar() && !containsTerm(bodyVars, t) {
			return false
		}
	}
	return true
}

// Validate returns an error describing the first well-formedness problem:
// empty name, empty body, or an unsafe head variable.
func (q *Query) Validate() error {
	if q.Name == "" {
		return fmt.Errorf("schema: query has empty head predicate")
	}
	if len(q.Body) == 0 {
		return fmt.Errorf("schema: query %s has empty body", q.Name)
	}
	if !q.IsSafe() {
		return fmt.Errorf("schema: query %s is unsafe (head variable missing from body)", q.Name)
	}
	return nil
}

// Rename returns a copy of q whose variables are renamed by appending the
// given suffix, making them disjoint from any other query's variables.
// Constants are untouched.
func (q *Query) Rename(suffix string) *Query {
	m := make(map[Term]Term)
	for _, v := range q.Vars() {
		m[v] = Var(v.Name + suffix)
	}
	s := Subst(m)
	c := q.Clone()
	for i, t := range c.Head {
		c.Head[i] = s.Apply(t)
	}
	for i := range c.Body {
		c.Body[i] = s.ApplyAtom(c.Body[i])
	}
	return c
}

// String renders the query in datalog syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.HeadAtom().String())
	b.WriteString(" :- ")
	for i, a := range q.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}
