// Package schema models a data-integration mediated schema: terms, atoms,
// and conjunctive queries, plus substitution, unification, and a
// datalog-style text parser.
//
// Conjunctive queries follow the paper's notation:
//
//	Q(M,R) :- play-in(ford,M), review-of(R,M)
//
// Identifiers beginning with an upper-case letter are variables; all other
// identifiers, quoted strings, and numbers are constants (standard datalog
// convention).
package schema

import "strings"

// Term is a variable or a constant appearing as an atom argument.
type Term struct {
	// Name is the variable name or the constant's lexical form.
	Name string
	// Const reports whether the term is a constant.
	Const bool
}

// Var returns a variable term.
func Var(name string) Term { return Term{Name: name} }

// Const returns a constant term.
func Const(value string) Term { return Term{Name: value, Const: true} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return !t.Const }

// String renders the term; constants that do not look like plain
// identifiers are quoted.
func (t Term) String() string {
	if t.Const && needsQuoting(t.Name) {
		return "\"" + strings.ReplaceAll(t.Name, "\"", "\\\"") + "\""
	}
	return t.Name
}

// needsQuoting reports whether a constant's lexical form would be
// re-parsed as a variable or fail to scan as an identifier/number.
func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for i, r := range s {
		if i == 0 && (r >= 'A' && r <= 'Z') {
			return true // would parse as a variable
		}
		if !isIdentRune(r) {
			return true
		}
	}
	return false
}

func isIdentRune(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		return true
	case r == '_', r == '-', r == '.':
		return true
	}
	return false
}
