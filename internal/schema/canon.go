package schema

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// CanonicalKey returns a rendering of the query that is identical for
// queries equal up to consistent variable renaming and body-atom
// reordering, and distinct otherwise: two queries share a key only when
// one can be turned into the other by permuting body atoms and renaming
// variables. The serving layer keys its session cache on it, so identical
// queries submitted with different variable names or atom orders share the
// cached reformulation while semantically different queries never collide
// (the key IS a full rendering of the canonicalized query, so equal keys
// imply isomorphic queries).
//
// Canonicalization runs a color-refinement pass: each variable starts from
// its head positions, each atom from its predicate, constants, and
// within-atom equality pattern, and the two signatures refine each other
// for a bounded number of rounds. Body atoms are then sorted by signature
// and variables renamed by first occurrence. Atoms left tied by identical
// signatures are polished by re-sorting on their rendered form; truly
// automorphic queries (where tied atoms are interchangeable) render
// identically either way.
func (q *Query) CanonicalKey() string {
	vars := q.Vars()
	varIdx := make(map[Term]int, len(vars))
	for i, v := range vars {
		varIdx[v] = i
	}

	// Initial variable signature: the head positions the variable fills.
	varSig := make([]string, len(vars))
	for pos, t := range q.Head {
		if t.IsVar() {
			varSig[varIdx[t]] += "h" + strconv.Itoa(pos) + ";"
		}
	}
	headSig := append([]string(nil), varSig...)

	// Base atom signature: predicate, arity, constant values, and the
	// within-atom variable-equality pattern (r(X,Y,X) -> v0,v1,v0).
	base := make([]string, len(q.Body))
	for i, a := range q.Body {
		var b strings.Builder
		b.WriteString(a.Pred)
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(len(a.Args)))
		local := map[Term]int{}
		for _, t := range a.Args {
			if t.Const {
				b.WriteString("|c" + strconv.Quote(t.Name))
				continue
			}
			k, ok := local[t]
			if !ok {
				k = len(local)
				local[t] = k
			}
			b.WriteString("|v" + strconv.Itoa(k))
		}
		base[i] = b.String()
	}

	// Refinement: atom signatures absorb their variables' signatures;
	// variable signatures absorb the sorted multiset of (atom signature,
	// argument position) occurrences. Rounds are bounded by the query
	// diameter; hashing keeps signatures from growing geometrically.
	atomSig := make([]string, len(q.Body))
	rounds := len(q.Body) + 2
	if rounds > 8 {
		rounds = 8
	}
	for r := 0; r < rounds; r++ {
		for i, a := range q.Body {
			var b strings.Builder
			b.WriteString(base[i])
			for _, t := range a.Args {
				if t.IsVar() {
					b.WriteString("#" + varSig[varIdx[t]])
				}
			}
			atomSig[i] = hashSig(b.String())
		}
		for vi, v := range vars {
			var occ []string
			for i, a := range q.Body {
				for pos, t := range a.Args {
					if t == v {
						occ = append(occ, atomSig[i]+":"+strconv.Itoa(pos))
					}
				}
			}
			sort.Strings(occ)
			varSig[vi] = hashSig(headSig[vi] + "&" + strings.Join(occ, ","))
		}
	}

	// Order atoms by signature, then polish: assign canonical names by
	// first occurrence (head first), re-sort signature ties by rendered
	// form, and repeat until the order is stable.
	order := make([]int, len(q.Body))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return atomSig[order[a]] < atomSig[order[b]] })
	var names map[Term]int
	for pass := 0; pass < 3; pass++ {
		names = canonNames(q, order)
		rendered := make([]string, len(q.Body))
		for i, a := range q.Body {
			rendered[i] = renderAtom(a, names)
		}
		next := append([]int(nil), order...)
		sort.SliceStable(next, func(a, b int) bool {
			if atomSig[next[a]] != atomSig[next[b]] {
				return atomSig[next[a]] < atomSig[next[b]]
			}
			return rendered[next[a]] < rendered[next[b]]
		})
		if equalInts(next, order) {
			break
		}
		order = next
	}

	var b strings.Builder
	b.WriteString(q.Name)
	b.WriteByte('(')
	for i, t := range q.Head {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(renderTerm(t, names))
	}
	b.WriteString("):-")
	for i, ai := range order {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(renderAtom(q.Body[ai], names))
	}
	return b.String()
}

// canonNames numbers the variables by first occurrence scanning the head,
// then the body in the given atom order.
func canonNames(q *Query, order []int) map[Term]int {
	names := make(map[Term]int)
	add := func(t Term) {
		if t.IsVar() {
			if _, ok := names[t]; !ok {
				names[t] = len(names)
			}
		}
	}
	for _, t := range q.Head {
		add(t)
	}
	for _, ai := range order {
		for _, t := range q.Body[ai].Args {
			add(t)
		}
	}
	return names
}

// renderTerm renders a term unambiguously: variables as ?<canonical
// index>, constants always quoted (the key need not be parseable datalog,
// only collision-free).
func renderTerm(t Term, names map[Term]int) string {
	if t.Const {
		return strconv.Quote(t.Name)
	}
	return "?" + strconv.Itoa(names[t])
}

func renderAtom(a Atom, names map[Term]int) string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(renderTerm(t, names))
	}
	b.WriteByte(')')
	return b.String()
}

func hashSig(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
