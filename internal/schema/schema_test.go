package schema

import (
	"strings"
	"testing"
)

func TestParseQueryFigure1(t *testing.T) {
	q, err := ParseQuery(`Q(M, R) :- play-in(ford, M), review-of(R, M)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "Q" {
		t.Errorf("Name = %q", q.Name)
	}
	if len(q.Head) != 2 || q.Head[0] != Var("M") || q.Head[1] != Var("R") {
		t.Errorf("Head = %v", q.Head)
	}
	if len(q.Body) != 2 {
		t.Fatalf("Body = %v", q.Body)
	}
	if q.Body[0].Pred != "play-in" || q.Body[0].Args[0] != Const("ford") {
		t.Errorf("Body[0] = %v", q.Body[0])
	}
}

func TestParseQuotedConstantsAndEscapes(t *testing.T) {
	q, err := ParseQuery(`Q(X) :- name(X, "Harrison \"Indy\" Ford")`)
	if err != nil {
		t.Fatal(err)
	}
	got := q.Body[0].Args[1]
	if !got.Const || got.Name != `Harrison "Indy" Ford` {
		t.Errorf("quoted constant = %+v", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, src := range []string{
		"Q(M, R) :- play-in(ford, M), review-of(R, M)",
		"V1(A, M) :- play-in(A, M), american(M)",
		`Q(X) :- r(X, "two words")`,
		"Q(X, Y) :- edge(X, Z), edge(Z, Y)",
	} {
		q := MustParseQuery(src)
		q2, err := ParseQuery(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q (%q) failed: %v", src, q.String(), err)
		}
		if q.String() != q2.String() {
			t.Errorf("round trip: %q -> %q", q.String(), q2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"Q(X)",                 // no body
		"Q(X) :- ",             // empty body
		"Q(X) :- r(X",          // unterminated args
		"Q(X) :- r(X) junk",    // trailing garbage
		"Q(X) :- r(Y)",         // unsafe head
		`Q(X) :- r("unclosed)`, // unterminated string
		"Q(X) :- (X)",          // missing predicate
	} {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", src)
		}
	}
}

func TestParseProgramCommentsAndBlank(t *testing.T) {
	prog := `
% a comment
# another comment
V1(A, M) :- play-in(A, M), american(M).
V2(A, M) :- play-in(A, M)  // trailing comment

`
	qs, err := ParseProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("got %d rules, want 2", len(qs))
	}
	if qs[0].Name != "V1" || qs[1].Name != "V2" {
		t.Errorf("rules = %v, %v", qs[0], qs[1])
	}
}

func TestParseProgramReportsLine(t *testing.T) {
	_, err := ParseProgram("V1(A) :- r(A)\nbroken(")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line 2 mention", err)
	}
}

func TestQueryVarsAndSafety(t *testing.T) {
	q := MustParseQuery("Q(X, Y) :- edge(X, Z), edge(Z, Y)")
	vs := q.Vars()
	if len(vs) != 3 {
		t.Errorf("Vars = %v", vs)
	}
	ex := q.ExistentialVars()
	if len(ex) != 1 || ex[0] != Var("Z") {
		t.Errorf("ExistentialVars = %v", ex)
	}
	if !q.IsSafe() {
		t.Error("q should be safe")
	}
	unsafe := &Query{Name: "Q", Head: []Term{Var("W")}, Body: q.Body}
	if unsafe.IsSafe() {
		t.Error("unsafe query reported safe")
	}
}

func TestRenameDisjointness(t *testing.T) {
	q := MustParseQuery("Q(X, Y) :- edge(X, Z), edge(Z, Y)")
	r := q.Rename("_1")
	for _, v := range r.Vars() {
		for _, o := range q.Vars() {
			if v == o {
				t.Errorf("renamed var %v collides with original", v)
			}
		}
	}
	if r.String() == q.String() {
		t.Error("rename did not change variables")
	}
	// Structure is preserved.
	if len(r.Body) != len(q.Body) || r.Body[0].Pred != q.Body[0].Pred {
		t.Error("rename broke structure")
	}
}

func TestUnifyAtoms(t *testing.T) {
	a := NewAtom("p", Var("X"), Const("c"))
	b := NewAtom("p", Const("d"), Var("Y"))
	sub, ok := UnifyAtoms(a, b, Subst{})
	if !ok {
		t.Fatal("unification failed")
	}
	if sub.Apply(Var("X")) != Const("d") || sub.Apply(Var("Y")) != Const("c") {
		t.Errorf("sub = %v", sub)
	}
	// Conflicting constants fail.
	if _, ok := UnifyAtoms(NewAtom("p", Const("a")), NewAtom("p", Const("b")), Subst{}); ok {
		t.Error("unified distinct constants")
	}
	// Predicate mismatch fails.
	if _, ok := UnifyAtoms(NewAtom("p", Var("X")), NewAtom("q", Var("X")), Subst{}); ok {
		t.Error("unified distinct predicates")
	}
}

func TestUnifyChains(t *testing.T) {
	// X=Y then Y=c must give X→c transitively via Resolve.
	s, ok := UnifyTerms(Var("X"), Var("Y"), Subst{})
	if !ok {
		t.Fatal("var-var unify failed")
	}
	s, ok = UnifyTerms(Var("Y"), Const("c"), s)
	if !ok {
		t.Fatal("var-const unify failed")
	}
	if got := s.Resolve(Var("X")); got != Const("c") {
		t.Errorf("Resolve(X) = %v, want c", got)
	}
}

func TestMatchAtom(t *testing.T) {
	pattern := NewAtom("r", Var("X"), Const("k"), Var("X"))
	if _, ok := MatchAtom(pattern, NewAtom("r", Const("a"), Const("k"), Const("b")), Subst{}); ok {
		t.Error("matched with inconsistent repeated variable")
	}
	sub, ok := MatchAtom(pattern, NewAtom("r", Const("a"), Const("k"), Const("a")), Subst{})
	if !ok {
		t.Fatal("match failed")
	}
	if sub.Apply(Var("X")) != Const("a") {
		t.Errorf("sub = %v", sub)
	}
}

func TestSubstCompose(t *testing.T) {
	s := Subst{Var("X"): Var("Y")}
	u := Subst{Var("Y"): Const("c"), Var("Z"): Const("d")}
	c := s.Compose(u)
	if c.Apply(Var("X")) != Const("c") {
		t.Errorf("Compose: X → %v, want c", c.Apply(Var("X")))
	}
	if c.Apply(Var("Z")) != Const("d") {
		t.Errorf("Compose: Z → %v, want d", c.Apply(Var("Z")))
	}
}

func TestTermQuoting(t *testing.T) {
	if got := Const("UpperStart").String(); got != `"UpperStart"` {
		t.Errorf("constant needing quote rendered %q", got)
	}
	if got := Const("plain-id.9").String(); got != "plain-id.9" {
		t.Errorf("plain constant rendered %q", got)
	}
	if got := Var("X1").String(); got != "X1" {
		t.Errorf("var rendered %q", got)
	}
}

func TestValidate(t *testing.T) {
	if err := MustParseQuery("Q(X) :- r(X)").Validate(); err != nil {
		t.Error(err)
	}
	bad := &Query{Name: "", Head: nil, Body: []Atom{NewAtom("r")}}
	if err := bad.Validate(); err == nil {
		t.Error("empty-name query validated")
	}
}
