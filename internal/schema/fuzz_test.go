package schema

import (
	"strings"
	"testing"
)

// FuzzParseQuery checks the parser never panics and that anything it
// accepts round-trips through String() to an equivalent parse. The seed
// corpus runs as part of the normal test suite; `go test -fuzz
// FuzzParseQuery ./internal/schema` explores further.
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"Q(M, R) :- play-in(ford, M), review-of(R, M)",
		"V1(A, M) :- play-in(A, M), american(M).",
		`Q(X) :- r(X, "two words"), s(X)`,
		"Q(X) :- r(X",
		"Q() :- r()",
		"Q(X) :- ",
		":- r(X)",
		"Q(X):-r(X)",
		"q(x) :- r(x)",
		`Q(X) :- r("\"")`,
		"Q(X) :- r(X), r(X), r(X)",
		"Q(日本) :- r(日本)",
		strings.Repeat("Q(X) :- r(X)", 3),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		// Accepted input must render and re-parse to the same form.
		s1 := q.String()
		q2, err := ParseQuery(s1)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", s1, src, err)
		}
		if s2 := q2.String(); s1 != s2 {
			t.Fatalf("round trip unstable: %q -> %q", s1, s2)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("ParseQuery accepted invalid query %q: %v", s1, err)
		}
	})
}
