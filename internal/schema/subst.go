package schema

import (
	"sort"
	"strings"
)

// Subst maps variables to terms. Applying a substitution replaces each
// variable by its image; unmapped variables and constants are unchanged.
type Subst map[Term]Term

// Apply returns the image of t under s.
func (s Subst) Apply(t Term) Term {
	if t.Const {
		return t
	}
	if img, ok := s[t]; ok {
		return img
	}
	return t
}

// Resolve follows variable bindings transitively until reaching a
// constant or an unbound variable. Unlike Apply, it chases chains such as
// {A→B, B→c}.
func (s Subst) Resolve(t Term) Term {
	for steps := 0; t.IsVar() && steps <= len(s); steps++ {
		img, ok := s[t]
		if !ok || img == t {
			return t
		}
		t = img
	}
	return t
}

// ApplyAtom returns a copy of a with s applied to every argument.
func (s Subst) ApplyAtom(a Atom) Atom {
	out := a.Clone()
	for i, t := range out.Args {
		out.Args[i] = s.Apply(t)
	}
	return out
}

// ApplyQuery returns a copy of q with s applied to head and body.
func (s Subst) ApplyQuery(q *Query) *Query {
	c := q.Clone()
	for i, t := range c.Head {
		c.Head[i] = s.Apply(t)
	}
	for i := range c.Body {
		c.Body[i] = s.ApplyAtom(c.Body[i])
	}
	return c
}

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	c := make(Subst, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Compose returns the substitution t∘s: first apply s, then t, flattened
// into a single map. Bindings of t for variables not bound by s carry over.
func (s Subst) Compose(t Subst) Subst {
	out := make(Subst, len(s)+len(t))
	for k, v := range s {
		out[k] = t.Apply(v)
	}
	for k, v := range t {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// String renders bindings deterministically, e.g. "{A→ford, M→M1}".
func (s Subst) String() string {
	keys := make([]Term, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Name < keys[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k.String())
		b.WriteString("→")
		b.WriteString(s[k].String())
	}
	b.WriteByte('}')
	return b.String()
}
