package schema

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseQuery parses a single conjunctive query / view definition in
// datalog syntax:
//
//	Q(M, R) :- play-in("Harrison Ford", M), review-of(R, M)
//
// A trailing period is optional. Identifiers starting with an upper-case
// letter are variables; other identifiers, numbers, and quoted strings are
// constants.
func ParseQuery(src string) (*Query, error) {
	p := newParser(src)
	q, err := p.parseRule()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.errorf("unexpected trailing input %q", p.rest())
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// ParseProgram parses a sequence of rules separated by newlines or
// periods. Lines whose first non-space character is '%' or '#' are
// comments; '//' begins a comment anywhere on a line.
func ParseProgram(src string) ([]*Query, error) {
	var out []*Query
	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" || line[0] == '%' || line[0] == '#' {
			continue
		}
		q, err := ParseQuery(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		out = append(out, q)
	}
	return out, nil
}

// MustParseQuery is ParseQuery that panics on error; for tests and
// package-level examples.
func MustParseQuery(src string) *Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src []rune
	pos int
}

func newParser(src string) *parser { return &parser{src: []rune(src)} }

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() rune {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) rest() string {
	if p.eof() {
		return ""
	}
	return string(p.src[p.pos:])
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("schema: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for !p.eof() && unicode.IsSpace(p.src[p.pos]) {
		p.pos++
	}
	// A trailing period terminates a rule.
	if !p.eof() && p.src[p.pos] == '.' && p.pos == len(p.src)-1 {
		p.pos++
	}
}

func (p *parser) expect(r rune) error {
	p.skipSpace()
	if p.peek() != r {
		return p.errorf("expected %q, found %q", string(r), p.rest())
	}
	p.pos++
	return nil
}

func (p *parser) parseRule() (*Query, error) {
	head, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !strings.HasPrefix(p.rest(), ":-") {
		return nil, p.errorf("expected \":-\" after head")
	}
	p.pos += 2
	var body []Atom
	for {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		body = append(body, a)
		p.skipSpace()
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	return &Query{Name: head.Pred, Head: head.Args, Body: body}, nil
}

func (p *parser) parseAtom() (Atom, error) {
	p.skipSpace()
	pred, err := p.parseIdent()
	if err != nil {
		return Atom{}, err
	}
	if err := p.expect('('); err != nil {
		return Atom{}, err
	}
	var args []Term
	p.skipSpace()
	if p.peek() == ')' {
		p.pos++
		return Atom{Pred: pred, Args: args}, nil
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		args = append(args, t)
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return Atom{Pred: pred, Args: args}, nil
		default:
			return Atom{}, p.errorf("expected ',' or ')' in argument list, found %q", p.rest())
		}
	}
}

func (p *parser) parseTerm() (Term, error) {
	p.skipSpace()
	if p.peek() == '"' {
		s, err := p.parseQuoted()
		if err != nil {
			return Term{}, err
		}
		return Const(s), nil
	}
	id, err := p.parseIdent()
	if err != nil {
		return Term{}, err
	}
	r := rune(id[0])
	if r >= 'A' && r <= 'Z' {
		return Var(id), nil
	}
	return Const(id), nil
}

func (p *parser) parseQuoted() (string, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for !p.eof() {
		r := p.src[p.pos]
		p.pos++
		switch r {
		case '\\':
			if p.eof() {
				return "", p.errorf("unterminated escape in string")
			}
			b.WriteRune(p.src[p.pos])
			p.pos++
		case '"':
			return b.String(), nil
		default:
			b.WriteRune(r)
		}
	}
	return "", p.errorf("unterminated string literal")
}

func (p *parser) parseIdent() (string, error) {
	p.skipSpace()
	start := p.pos
	for !p.eof() && isIdentRune(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errorf("expected identifier, found %q", p.rest())
	}
	return string(p.src[start:p.pos]), nil
}
