package schema

import (
	"math/rand"
	"testing"
)

// shuffleBody returns a copy of q with its body atoms permuted.
func shuffleBody(q *Query, rng *rand.Rand) *Query {
	c := q.Clone()
	rng.Shuffle(len(c.Body), func(i, j int) { c.Body[i], c.Body[j] = c.Body[j], c.Body[i] })
	return c
}

func TestCanonicalKeyInvariance(t *testing.T) {
	queries := []string{
		"Q(M, R) :- play-in(ford, M), review-of(R, M)",
		"Q(X0, X3) :- rel0(X0, X1), rel1(X1, X2), rel2(X2, X3)",
		`Q(X) :- r(X, "two words"), s(X, X)`,
		"Q(X, Y) :- r(X, Z), s(Z, Y), t(Y, X)",
		"Q(A) :- p(A, B), p(B, C), p(C, A)",
	}
	rng := rand.New(rand.NewSource(11))
	for _, src := range queries {
		q := MustParseQuery(src)
		key := q.CanonicalKey()
		for trial := 0; trial < 20; trial++ {
			v := shuffleBody(q.Rename("_zz"), rng)
			if got := v.CanonicalKey(); got != key {
				t.Errorf("%s: renamed+shuffled variant %s changed key:\n  %s\nvs\n  %s",
					src, v, key, got)
			}
		}
	}
}

func TestCanonicalKeyDistinguishes(t *testing.T) {
	// Pairs that are semantically different and must never share a key.
	pairs := [][2]string{
		// Different join pattern.
		{"Q(X) :- r(X, Y), s(Y, Z)", "Q(X) :- r(X, Y), s(X, Z)"},
		// Different constant.
		{"Q(M) :- play-in(ford, M)", "Q(M) :- play-in(hanks, M)"},
		// Constant vs variable.
		{"Q(M) :- play-in(ford, M)", "Q(M) :- play-in(A, M)"},
		// Extra atom.
		{"Q(X) :- r(X, Y)", "Q(X) :- r(X, Y), r(Y, X)"},
		// Head projection differs.
		{"Q(X, Y) :- r(X, Y)", "Q(Y, X) :- r(X, Y)"},
		// Head predicate differs.
		{"Q(X) :- r(X, X)", "P(X) :- r(X, X)"},
		// Repeated-variable pattern differs.
		{"Q(X) :- r(X, X)", "Q(X) :- r(X, Y)"},
		// A constant whose lexical form looks like a canonical variable.
		{`Q(X) :- r(X, "?0")`, "Q(X) :- r(X, Y)"},
	}
	for _, p := range pairs {
		a, b := MustParseQuery(p[0]), MustParseQuery(p[1])
		if a.CanonicalKey() == b.CanonicalKey() {
			t.Errorf("distinct queries collide:\n  %s\n  %s\n  key %s", p[0], p[1], a.CanonicalKey())
		}
	}
}

// TestCanonicalKeyDuplicateAtoms: duplicate atoms are order-insensitive
// and do not destabilize the key.
func TestCanonicalKeyDuplicateAtoms(t *testing.T) {
	a := MustParseQuery("Q(X) :- r(X, Y), r(X, Y), s(Y, X)")
	b := MustParseQuery("Q(U) :- s(V, U), r(U, V), r(U, V)")
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("duplicate-atom variants differ:\n  %s\n  %s", a.CanonicalKey(), b.CanonicalKey())
	}
}

// TestQueryStringRoundTrip: MustParseQuery(q.String()) equals q up to
// variable renaming — the property the server relies on when it echoes
// and re-parses untrusted query strings.
func TestQueryStringRoundTrip(t *testing.T) {
	queries := []string{
		"Q(M, R) :- play-in(ford, M), review-of(R, M)",
		"V1(A, M) :- play-in(A, M), american(M)",
		`Q(X) :- r(X, "two words"), s(X, 42)`,
		`Q(X) :- r(X, "quoted \" inner")`,
		"Q(X0, X4) :- rel0(X0, X1), rel1(X1, X2), rel2(X2, X3), rel3(X3, X4)",
		"Q(A) :- p(A, B), p(B, C), p(C, A)",
	}
	for _, src := range queries {
		q := MustParseQuery(src)
		back := MustParseQuery(q.String())
		if q.CanonicalKey() != back.CanonicalKey() {
			t.Errorf("round trip of %q not equivalent:\n  %s\nvs\n  %s",
				src, q.CanonicalKey(), back.CanonicalKey())
		}
	}
}

// FuzzCanonicalKey: for any accepted query, the key is stable across
// re-parsing the rendered form, body-atom rotation, and variable
// renaming, and never panics.
func FuzzCanonicalKey(f *testing.F) {
	for _, seed := range []string{
		"Q(M, R) :- play-in(ford, M), review-of(R, M)",
		"Q(X) :- r(X, Y), s(Y, Z), t(Z, X)",
		"Q(A) :- p(A, B), p(B, C), p(C, A)",
		`Q(X) :- r(X, "two words"), s(X, X)`,
		"Q(X) :- r(X, X)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		key := q.CanonicalKey()
		// Re-parse of the String rendering agrees.
		back, err := ParseQuery(q.String())
		if err != nil {
			t.Fatalf("String() of accepted query unparseable: %q", q.String())
		}
		if back.CanonicalKey() != key {
			t.Fatalf("re-parse changed key: %q vs %q", key, back.CanonicalKey())
		}
		// Rotation of the body agrees.
		rot := q.Clone()
		rot.Body = append(rot.Body[1:], rot.Body[0])
		if rot.CanonicalKey() != key {
			t.Fatalf("body rotation changed key for %q: %q vs %q", src, key, rot.CanonicalKey())
		}
		// Renaming agrees.
		if rk := q.Rename("_f").CanonicalKey(); rk != key {
			t.Fatalf("rename changed key for %q: %q vs %q", src, key, rk)
		}
	})
}
