package schema

import "strings"

// Atom is a predicate applied to terms, e.g. play-in(ford, M). It serves
// both as a query subgoal and as a tuple pattern over a relation.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom constructs an atom.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args}
}

// Equal reports structural equality.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Vars appends the distinct variables of the atom, in order of first
// occurrence, to dst and returns the extended slice.
func (a Atom) Vars(dst []Term) []Term {
	for _, t := range a.Args {
		if t.IsVar() && !containsTerm(dst, t) {
			dst = append(dst, t)
		}
	}
	return dst
}

func containsTerm(ts []Term, t Term) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// String renders "pred(a, B, c)".
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}
