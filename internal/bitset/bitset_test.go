package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130) // crosses word boundaries
	if s.Count() != 0 || s.Any() {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) after Remove")
	}
	if got := s.Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	s.Clear()
	if s.Any() {
		t.Error("Any after Clear")
	}
	s.Fill()
	if got := s.Count(); got != 130 {
		t.Errorf("Count after Fill = %d, want 130", got)
	}
}

func TestFillTrimsExcessBits(t *testing.T) {
	s := New(70)
	s.Fill()
	if got := s.Count(); got != 70 {
		t.Errorf("Fill set %d bits, want 70", got)
	}
	u := New(70)
	u.Fill()
	if !s.Equal(u) {
		t.Error("two filled sets not equal")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range Add")
		}
	}()
	New(10).Add(10)
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on capacity mismatch")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestElemsAndForEach(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 127, 128, 199}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
	// Early termination.
	n := 0
	s.ForEach(func(int) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("ForEach visited %d, want 2 (early stop)", n)
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Add(1)
	s.Add(5)
	if got := s.String(); got != "{1, 5}" {
		t.Errorf("String = %q, want {1, 5}", got)
	}
}

// randomSet builds a deterministic random set for property tests.
func randomSet(rng *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Add(i)
		}
	}
	return s
}

func TestSetAlgebraProperties(t *testing.T) {
	const n = 193
	cfg := &quick.Config{MaxCount: 200}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(rng, n), randomSet(rng, n)

		union := a.Union(b)
		inter := a.Intersect(b)
		diff := a.Difference(b)

		// |A∪B| + |A∩B| == |A| + |B|
		if union.Count()+inter.Count() != a.Count()+b.Count() {
			return false
		}
		// A\B ⊆ A, A∩B ⊆ A ⊆ A∪B
		if !diff.SubsetOf(a) || !inter.SubsetOf(a) || !a.SubsetOf(union) {
			return false
		}
		// counts agree with allocating ops
		if a.IntersectionCount(b) != inter.Count() || a.DifferenceCount(b) != diff.Count() {
			return false
		}
		// Disjoint ⇔ empty intersection
		if a.Disjoint(b) != (inter.Count() == 0) {
			return false
		}
		// per-element semantics
		for i := 0; i < n; i++ {
			if union.Contains(i) != (a.Contains(i) || b.Contains(i)) {
				return false
			}
			if inter.Contains(i) != (a.Contains(i) && b.Contains(i)) {
				return false
			}
			if diff.Contains(i) != (a.Contains(i) && !b.Contains(i)) {
				return false
			}
		}
		// in-place ops match allocating ops
		c := a.Clone()
		c.UnionWith(b)
		if !c.Equal(union) {
			return false
		}
		c.Copy(a)
		c.IntersectWith(b)
		return c.Equal(inter)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
