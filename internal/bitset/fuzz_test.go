package bitset

import "testing"

// FuzzKernels asserts the fused kernels agree with the naive
// Copy/Intersect/Count composition on arbitrary operand sets. The fuzz
// input is sliced into equal-length word streams: one per operand plus
// one exclusion set.
func FuzzKernels(f *testing.F) {
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x0f, 0xf0, 1, 2, 3}, uint8(3), uint16(70))
	f.Add([]byte{}, uint8(1), uint16(1))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, uint8(5), uint16(129))
	f.Fuzz(func(t *testing.T, data []byte, arity8 uint8, nbits uint16) {
		arity := 1 + int(arity8%6)
		n := 1 + int(nbits%1024)
		fill := func(offset int) *Set {
			s := New(n)
			for i := 0; i < n; i++ {
				bi := offset + i
				if len(data) == 0 {
					break
				}
				if data[bi%len(data)]&(1<<uint(bi%8)) != 0 {
					s.Add(i)
				}
			}
			return s
		}
		sets := make([]*Set, arity)
		for i := range sets {
			sets[i] = fill(i * n)
		}
		excl := fill(arity * n)

		for _, e := range []*Set{nil, excl} {
			if got, want := IntersectCountAndNot(sets, e), naiveIntersectCountAndNot(sets, e); got != want {
				t.Fatalf("IntersectCountAndNot(arity=%d, n=%d, excl=%v) = %d, want %d",
					arity, n, e != nil, got, want)
			}
		}
		dst := New(n)
		IntersectInto(dst, sets)
		if want := naiveIntersect(sets); !dst.Equal(want) {
			t.Fatalf("IntersectInto mismatch (arity=%d, n=%d)", arity, n)
		}
		UnionInto(dst, sets)
		if want := naiveUnion(sets); !dst.Equal(want) {
			t.Fatalf("UnionInto mismatch (arity=%d, n=%d)", arity, n)
		}
	})
}

// FuzzBatchKernels asserts the tiled frontier kernels agree with the
// scalar per-plan loop on arbitrary frontiers: a CSR batch of plans
// with fuzz-chosen arities, plus the refine (shared-prefix) form built
// from the same operands.
func FuzzBatchKernels(f *testing.F) {
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 1, 2, 3}, uint8(4), uint8(2), uint16(200))
	f.Add([]byte{}, uint8(1), uint8(0), uint16(1))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, uint8(7), uint8(3), uint16(5000))
	f.Fuzz(func(t *testing.T, data []byte, nplans8, plen8 uint8, nbits uint16) {
		nplans := 1 + int(nplans8%19)
		plen := int(plen8 % 4)
		n := 1 + int(nbits%9000) // up to > 2 tiles
		fill := func(offset int) *Set {
			s := New(n)
			for i := 0; i < n; i++ {
				bi := offset + i
				if len(data) == 0 {
					break
				}
				if data[bi%len(data)]&(1<<uint(bi%8)) != 0 {
					s.Add(i)
				}
			}
			return s
		}
		var sets []*Set
		offs := []int32{0}
		for g := 0; g < nplans; g++ {
			arity := 1 + (g+int(nplans8))%4
			for a := 0; a < arity; a++ {
				sets = append(sets, fill(g*131+a*n))
			}
			offs = append(offs, int32(len(sets)))
		}
		excl := fill(len(sets) * 17)
		for _, e := range []*Set{nil, excl} {
			counts := make([]int32, nplans)
			bounds := make([]int32, nplans)
			BatchIntersectCountAndNot(sets, offs, e, bounds, counts)
			for g := 0; g < nplans; g++ {
				want := int32(IntersectCountAndNot(sets[offs[g]:offs[g+1]], e))
				if counts[g] != want {
					t.Fatalf("csr plan %d (n=%d, excl=%v): got %d, want %d",
						g, n, e != nil, counts[g], want)
				}
			}
		}
		// Refine form: prefix from the first operands, one var per plan.
		prefix := make([]*Set, plen)
		for i := range prefix {
			prefix[i] = fill(i*379 + 7)
		}
		vars := make([]*Set, nplans)
		for g := 0; g < nplans; g++ {
			vars[g] = sets[offs[g]] // first operand of each plan
		}
		counts := make([]int32, nplans)
		bounds := make([]int32, nplans)
		scratch := make([]uint64, TileWords)
		BatchRefineCountAndNot(prefix, vars, excl, scratch, bounds, counts)
		ops := make([]*Set, 0, plen+1)
		for g, v := range vars {
			ops = append(append(ops[:0], prefix...), v)
			if want := int32(IntersectCountAndNot(ops, excl)); counts[g] != want {
				t.Fatalf("refine var %d (n=%d, plen=%d): got %d, want %d",
					g, n, plen, counts[g], want)
			}
		}
	})
}
