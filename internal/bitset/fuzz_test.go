package bitset

import "testing"

// FuzzKernels asserts the fused kernels agree with the naive
// Copy/Intersect/Count composition on arbitrary operand sets. The fuzz
// input is sliced into equal-length word streams: one per operand plus
// one exclusion set.
func FuzzKernels(f *testing.F) {
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x0f, 0xf0, 1, 2, 3}, uint8(3), uint16(70))
	f.Add([]byte{}, uint8(1), uint16(1))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, uint8(5), uint16(129))
	f.Fuzz(func(t *testing.T, data []byte, arity8 uint8, nbits uint16) {
		arity := 1 + int(arity8%6)
		n := 1 + int(nbits%1024)
		fill := func(offset int) *Set {
			s := New(n)
			for i := 0; i < n; i++ {
				bi := offset + i
				if len(data) == 0 {
					break
				}
				if data[bi%len(data)]&(1<<uint(bi%8)) != 0 {
					s.Add(i)
				}
			}
			return s
		}
		sets := make([]*Set, arity)
		for i := range sets {
			sets[i] = fill(i * n)
		}
		excl := fill(arity * n)

		for _, e := range []*Set{nil, excl} {
			if got, want := IntersectCountAndNot(sets, e), naiveIntersectCountAndNot(sets, e); got != want {
				t.Fatalf("IntersectCountAndNot(arity=%d, n=%d, excl=%v) = %d, want %d",
					arity, n, e != nil, got, want)
			}
		}
		dst := New(n)
		IntersectInto(dst, sets)
		if want := naiveIntersect(sets); !dst.Equal(want) {
			t.Fatalf("IntersectInto mismatch (arity=%d, n=%d)", arity, n)
		}
		UnionInto(dst, sets)
		if want := naiveUnion(sets); !dst.Equal(want) {
			t.Fatalf("UnionInto mismatch (arity=%d, n=%d)", arity, n)
		}
	})
}
