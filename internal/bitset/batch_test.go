package bitset

import (
	"math/rand"
	"testing"
)

// naiveBatch applies the scalar kernel per plan — the oracle the tiled
// kernels must match exactly.
func naiveBatch(sets []*Set, offs []int32, excl *Set) []int32 {
	out := make([]int32, len(offs)-1)
	for g := range out {
		out[g] = int32(IntersectCountAndNot(sets[offs[g]:offs[g+1]], excl))
	}
	return out
}

// randomCSR builds a random frontier in CSR layout: nplans plans of
// arity 1..maxArity over nbits-bit sets with the given fill density.
func randomCSR(rng *rand.Rand, nplans, maxArity, nbits int, density float64) ([]*Set, []int32) {
	var sets []*Set
	offs := make([]int32, 1, nplans+1)
	for g := 0; g < nplans; g++ {
		arity := 1 + rng.Intn(maxArity)
		for a := 0; a < arity; a++ {
			sets = append(sets, densitySet(rng, nbits, density))
		}
		offs = append(offs, int32(len(sets)))
	}
	return sets, offs
}

func densitySet(rng *rand.Rand, n int, density float64) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			s.Add(i)
		}
	}
	return s
}

func TestBatchIntersectCountAndNotMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	// Sizes straddle tile boundaries: < 1 tile, exactly 1, and several.
	for _, nbits := range []int{1, 63, 64 * 64, 64*64 + 1, 3*64*64 + 17} {
		for _, density := range []float64{0, 0.02, 0.5} {
			sets, offs := randomCSR(rng, 23, 5, nbits, density)
			excl := densitySet(rng, nbits, 0.3)
			for _, e := range []*Set{nil, excl} {
				counts := make([]int32, len(offs)-1)
				bounds := make([]int32, len(counts))
				BatchIntersectCountAndNot(sets, offs, e, bounds, counts)
				want := naiveBatch(sets, offs, e)
				for g := range counts {
					if counts[g] != want[g] {
						t.Fatalf("nbits=%d density=%.2f excl=%v plan %d: got %d, want %d",
							nbits, density, e != nil, g, counts[g], want[g])
					}
				}
			}
		}
	}
}

// TestBatchZeroOperandPlan: an empty operand range follows the scalar
// empty-frontier convention (universe minus excl; 0 with nil excl).
func TestBatchZeroOperandPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := densitySet(rng, 200, 0.5)
	excl := densitySet(rng, 200, 0.25)
	sets := []*Set{a}
	offs := []int32{0, 0, 1} // plan 0 has no operands, plan 1 = {a}
	counts := make([]int32, 2)
	bounds := make([]int32, 2)
	BatchIntersectCountAndNot(sets, offs, excl, bounds, counts)
	if want := int32(200 - excl.Count()); counts[0] != want {
		t.Errorf("zero-operand plan with excl: got %d, want %d", counts[0], want)
	}
	if want := int32(IntersectCountAndNot([]*Set{a}, excl)); counts[1] != want {
		t.Errorf("plan 1: got %d, want %d", counts[1], want)
	}
	BatchIntersectCountAndNot(sets, offs, nil, bounds, counts)
	if counts[0] != 0 {
		t.Errorf("zero-operand plan without excl: got %d, want 0", counts[0])
	}
}

func TestBatchEmptyFrontierNoop(t *testing.T) {
	BatchIntersectCountAndNot(nil, []int32{0}, nil, nil, nil)
	BatchRefineCountAndNot(nil, nil, nil, nil, nil, nil)
}

func TestBatchRefineCountAndNotMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, nbits := range []int{1, 64, 64 * 64, 2*64*64 + 5} {
		for _, plen := range []int{0, 1, 2, 4} {
			prefix := make([]*Set, plen)
			for i := range prefix {
				prefix[i] = densitySet(rng, nbits, 0.6)
			}
			vars := make([]*Set, 17)
			for i := range vars {
				vars[i] = densitySet(rng, nbits, 0.4)
			}
			excl := densitySet(rng, nbits, 0.3)
			for _, e := range []*Set{nil, excl} {
				counts := make([]int32, len(vars))
				bounds := make([]int32, len(vars))
				scratch := make([]uint64, TileWords)
				BatchRefineCountAndNot(prefix, vars, e, scratch, bounds, counts)
				for i, v := range vars {
					ops := append(append([]*Set{}, prefix...), v)
					if want := int32(IntersectCountAndNot(ops, e)); counts[i] != want {
						t.Fatalf("nbits=%d plen=%d excl=%v var %d: got %d, want %d",
							nbits, plen, e != nil, i, counts[i], want)
					}
				}
			}
		}
	}
}

// TestBatchSparseBounds exercises the hoisted trimmed-length bounds:
// operands whose high words are all zero must not disturb the counts.
func TestBatchSparseBounds(t *testing.T) {
	n := 4 * 64 * 64
	low := New(n)  // bits only in the first tile
	high := New(n) // bits only in the last tile
	for i := 0; i < 100; i++ {
		low.Add(i)
		high.Add(n - 1 - i)
	}
	full := New(n)
	full.Fill()
	sets := []*Set{low, full, high, full, low, high}
	offs := []int32{0, 2, 4, 6}
	counts := make([]int32, 3)
	bounds := make([]int32, 3)
	BatchIntersectCountAndNot(sets, offs, nil, bounds, counts)
	if counts[0] != 100 || counts[1] != 100 || counts[2] != 0 {
		t.Errorf("sparse-bound counts = %v, want [100 100 0]", counts)
	}
	// Refine form: a sparse prefix caps every sibling's bound.
	rc := make([]int32, 2)
	rb := make([]int32, 2)
	BatchRefineCountAndNot([]*Set{low}, []*Set{full, high}, nil, make([]uint64, TileWords), rb, rc)
	if rc[0] != 100 || rc[1] != 0 {
		t.Errorf("refine sparse counts = %v, want [100 0]", rc)
	}
}

func TestBatchCapacityMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"csr": func() {
			BatchIntersectCountAndNot([]*Set{New(10), New(11)}, []int32{0, 2}, nil,
				make([]int32, 1), make([]int32, 1))
		},
		"csr-excl": func() {
			BatchIntersectCountAndNot([]*Set{New(10)}, []int32{0, 1}, New(11),
				make([]int32, 1), make([]int32, 1))
		},
		"refine": func() {
			BatchRefineCountAndNot([]*Set{New(10)}, []*Set{New(11)}, nil,
				make([]uint64, TileWords), make([]int32, 1), make([]int32, 1))
		},
		"offs": func() {
			BatchIntersectCountAndNot([]*Set{New(10)}, []int32{0, 1}, nil,
				make([]int32, 2), make([]int32, 2))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTrimmedLen(t *testing.T) {
	s := New(300) // 5 words
	if got := s.TrimmedLen(); got != 0 {
		t.Errorf("empty TrimmedLen = %d, want 0", got)
	}
	s.Add(70) // word 1
	if got := s.TrimmedLen(); got != 2 {
		t.Errorf("TrimmedLen after Add(70) = %d, want 2", got)
	}
	// Cached value must be invalidated by growth...
	s.Add(256) // word 4
	if got := s.TrimmedLen(); got != 5 {
		t.Errorf("TrimmedLen after Add(256) = %d, want 5", got)
	}
	// ...and by shrinkage.
	s.Remove(256)
	if got := s.TrimmedLen(); got != 2 {
		t.Errorf("TrimmedLen after Remove(256) = %d, want 2", got)
	}
	s.Clear()
	if got := s.TrimmedLen(); got != 0 {
		t.Errorf("TrimmedLen after Clear = %d, want 0", got)
	}
	s.Fill()
	if got := s.TrimmedLen(); got != 5 {
		t.Errorf("TrimmedLen after Fill = %d, want 5", got)
	}
	c := s.Clone()
	if got := c.TrimmedLen(); got != 5 {
		t.Errorf("Clone TrimmedLen = %d, want 5", got)
	}
	other := New(300)
	other.Add(3)
	c.IntersectWith(other)
	if got := c.TrimmedLen(); got != 1 {
		t.Errorf("TrimmedLen after IntersectWith = %d, want 1", got)
	}
	c.UnionWith(s)
	if got := c.TrimmedLen(); got != 5 {
		t.Errorf("TrimmedLen after UnionWith = %d, want 5", got)
	}
	c.DifferenceWith(s)
	if got := c.TrimmedLen(); got != 0 {
		t.Errorf("TrimmedLen after DifferenceWith = %d, want 0", got)
	}
	c.Copy(s)
	if got := c.TrimmedLen(); got != 5 {
		t.Errorf("TrimmedLen after Copy = %d, want 5", got)
	}
	// The Into kernels mutate dst and must invalidate too.
	IntersectInto(c, []*Set{New(300)})
	if got := c.TrimmedLen(); got != 0 {
		t.Errorf("TrimmedLen after IntersectInto = %d, want 0", got)
	}
	UnionInto(c, []*Set{s})
	if got := c.TrimmedLen(); got != 5 {
		t.Errorf("TrimmedLen after UnionInto = %d, want 5", got)
	}
}

func BenchmarkBatchIntersectCountAndNot(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const nbits = 4096
	excl := densitySet(rng, nbits, 0.3)
	shared := []*Set{densitySet(rng, nbits, 0.5), densitySet(rng, nbits, 0.5)}
	vars := make([]*Set, 32)
	for i := range vars {
		vars[i] = densitySet(rng, nbits, 0.5)
	}
	var sets []*Set
	offs := []int32{0}
	for _, v := range vars {
		sets = append(sets, shared[0], shared[1], v)
		offs = append(offs, int32(len(sets)))
	}
	counts := make([]int32, len(vars))
	bounds := make([]int32, len(vars))
	scratch := make([]uint64, TileWords)
	b.Run("scalar-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for g := range vars {
				counts[g] = int32(IntersectCountAndNot(sets[offs[g]:offs[g+1]], excl))
			}
		}
	})
	b.Run("tiled-csr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BatchIntersectCountAndNot(sets, offs, excl, bounds, counts)
		}
	})
	b.Run("tiled-refine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BatchRefineCountAndNot(shared, vars, excl, scratch, bounds, counts)
		}
	})
}
