package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveIntersectCountAndNot is the multi-pass composition the fused
// kernels replace: clone, pairwise intersect, difference-count.
func naiveIntersectCountAndNot(sets []*Set, excl *Set) int {
	acc := sets[0].Clone()
	for _, s := range sets[1:] {
		acc.IntersectWith(s)
	}
	if excl == nil {
		return acc.Count()
	}
	return acc.DifferenceCount(excl)
}

func naiveIntersect(sets []*Set) *Set {
	acc := sets[0].Clone()
	for _, s := range sets[1:] {
		acc.IntersectWith(s)
	}
	return acc
}

func naiveUnion(sets []*Set) *Set {
	acc := sets[0].Clone()
	for _, s := range sets[1:] {
		acc.UnionWith(s)
	}
	return acc
}

// TestKernelsMatchNaive cross-checks every fused kernel against its
// naive composition over all arities the switch statements special-case
// (1, 2, 3) plus a generic arity, with and without an exclusion set.
func TestKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 63, 64, 65, 130, 4096} {
		for arity := 1; arity <= 5; arity++ {
			sets := make([]*Set, arity)
			for i := range sets {
				sets[i] = randomSet(rng, n)
			}
			excl := randomSet(rng, n)
			for _, e := range []*Set{nil, excl} {
				got := IntersectCountAndNot(sets, e)
				want := naiveIntersectCountAndNot(sets, e)
				if got != want {
					t.Errorf("n=%d arity=%d excl=%v: IntersectCountAndNot = %d, want %d",
						n, arity, e != nil, got, want)
				}
			}
			dst := New(n)
			IntersectInto(dst, sets)
			if want := naiveIntersect(sets); !dst.Equal(want) {
				t.Errorf("n=%d arity=%d: IntersectInto mismatch", n, arity)
			}
			UnionInto(dst, sets)
			if want := naiveUnion(sets); !dst.Equal(want) {
				t.Errorf("n=%d arity=%d: UnionInto mismatch", n, arity)
			}
		}
	}
}

// TestKernelsAliasDst verifies dst may alias an operand.
func TestKernelsAliasDst(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b, c := randomSet(rng, 200), randomSet(rng, 200), randomSet(rng, 200)
	wantI := naiveIntersect([]*Set{a, b, c})
	wantU := naiveUnion([]*Set{a, b, c})
	ai := a.Clone()
	IntersectInto(ai, []*Set{ai, b, c})
	if !ai.Equal(wantI) {
		t.Error("IntersectInto with aliased dst mismatch")
	}
	au := a.Clone()
	UnionInto(au, []*Set{au, b, c})
	if !au.Equal(wantU) {
		t.Error("UnionInto with aliased dst mismatch")
	}
}

func TestKernelQuickProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	prop := func(seed int64, arity8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		arity := 1 + int(arity8%6)
		n := 1 + rng.Intn(300)
		sets := make([]*Set, arity)
		for i := range sets {
			sets[i] = randomSet(rng, n)
		}
		excl := randomSet(rng, n)
		return IntersectCountAndNot(sets, excl) == naiveIntersectCountAndNot(sets, excl) &&
			IntersectCountAndNot(sets, nil) == naiveIntersectCountAndNot(sets, nil)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestEmptyFrontierSemantics pins down the explicit empty-sets results:
// the intersection of zero sets is the universe, so IntersectCountAndNot
// returns |U \ excl| against a non-nil excl and 0 (no capacity to
// measure) with excl nil; the Into kernels produce the neutral element.
func TestEmptyFrontierSemantics(t *testing.T) {
	if got := IntersectCountAndNot(nil, nil); got != 0 {
		t.Errorf("IntersectCountAndNot(nil, nil) = %d, want 0", got)
	}
	if got := IntersectCountAndNot([]*Set{}, nil); got != 0 {
		t.Errorf("IntersectCountAndNot(empty, nil) = %d, want 0", got)
	}
	excl := New(130)
	excl.Add(0)
	excl.Add(64)
	excl.Add(129)
	if got, want := IntersectCountAndNot(nil, excl), 130-3; got != want {
		t.Errorf("IntersectCountAndNot(nil, excl) = %d, want %d", got, want)
	}
	full := New(130)
	full.Fill()
	if got := IntersectCountAndNot(nil, full); got != 0 {
		t.Errorf("IntersectCountAndNot(nil, full) = %d, want 0", got)
	}
	dst := New(70)
	dst.Add(3)
	IntersectInto(dst, nil)
	if dst.Count() != 70 {
		t.Errorf("IntersectInto(dst, nil): %d bits set, want full universe (70)", dst.Count())
	}
	UnionInto(dst, nil)
	if dst.Count() != 0 {
		t.Errorf("UnionInto(dst, nil): %d bits set, want 0", dst.Count())
	}
}

func TestKernelPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"capset":   func() { IntersectCountAndNot([]*Set{New(10), New(11)}, nil) },
		"capexcl":  func() { IntersectCountAndNot([]*Set{New(10)}, New(11)) },
		"capdst":   func() { IntersectInto(New(11), []*Set{New(10)}) },
		"uniondst": func() { UnionInto(New(11), []*Set{New(10)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkIntersectCountAndNot(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	sets := []*Set{randomSet(rng, 4096), randomSet(rng, 4096), randomSet(rng, 4096)}
	excl := randomSet(rng, 4096)
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			IntersectCountAndNot(sets, excl)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		scratch := New(4096)
		for i := 0; i < b.N; i++ {
			scratch.Copy(sets[0])
			scratch.IntersectWith(sets[1])
			scratch.IntersectWith(sets[2])
			_ = scratch.DifferenceCount(excl)
		}
	})
}
