package bitset

import "math/bits"

// This file holds the frontier-batched kernels: instead of scoring one
// plan per call, they score a whole refinement frontier in one pass,
// tiled over 64-bit word ranges so the source-answer words shared by
// the frontier's plans stay hot in cache while every plan consumes
// them. Per-plan trimmed word bounds are hoisted into kernel setup
// (Set.TrimmedLen, cached on the set), so the sweep never re-scans
// trailing zero words.

// TileWords is the word-range tile the batch kernels sweep: 64 words =
// 512 bytes per operand row, so a query's worth of operand rows plus
// the exclusion row fit comfortably in L1 while the whole frontier
// reads them.
const TileWords = 64

// BatchIntersectCountAndNot scores a frontier in CSR layout: plan g's
// operands are sets[offs[g]:offs[g+1]] (len(offs) == len(counts)+1, offs
// ascending), and on return counts[g] = |(∩ ops(g)) \ excl| — exactly
// what IntersectCountAndNot(ops(g), excl) returns, including the
// empty-operand convention (counts[g] = |U \ excl|, or 0 when excl is
// nil). excl may be nil. bounds is caller scratch with len >=
// len(counts); its contents are overwritten. The kernel allocates
// nothing.
func BatchIntersectCountAndNot(sets []*Set, offs []int32, excl *Set, bounds, counts []int32) {
	n := len(counts)
	if len(offs) != n+1 {
		panic("bitset: batch offs/counts length mismatch")
	}
	if n == 0 {
		return
	}
	if len(bounds) < n {
		panic("bitset: batch bounds scratch too small")
	}
	var ew []uint64
	ref := excl
	if excl != nil {
		ew = excl.words
	}
	// Setup pass: validate capacities once, hoist each plan's trimmed
	// word bound, and settle zero-operand plans up front.
	maxB := 0
	emptyCount := int32(-1)
	for g := 0; g < n; g++ {
		ops := sets[offs[g]:offs[g+1]]
		if len(ops) == 0 {
			if emptyCount < 0 {
				emptyCount = int32(universeCountAndNot(excl))
			}
			counts[g] = emptyCount
			bounds[g] = 0
			continue
		}
		if ref == nil {
			ref = ops[0]
		}
		b := len(ops[0].words)
		for _, s := range ops {
			ref.sameCap(s)
			if t := s.TrimmedLen(); t < b {
				b = t
			}
		}
		counts[g] = 0
		bounds[g] = int32(b)
		if b > maxB {
			maxB = b
		}
	}
	// Tiled sweep: word tiles outer, plans inner.
	for base := 0; base < maxB; base += TileWords {
		end := base + TileWords
		if end > maxB {
			end = maxB
		}
		for g := 0; g < n; g++ {
			hi := int(bounds[g])
			if hi > end {
				hi = end
			}
			if hi <= base {
				continue
			}
			counts[g] += int32(countTile(sets[offs[g]:offs[g+1]], ew, base, hi))
		}
	}
}

// countTile popcounts (∩ ops) &^ excl over words [lo, hi). The common
// arities are unrolled and every operand row is pre-sliced to the tile
// so the inner loops run bounds-check-free, mirroring
// IntersectCountAndNot.
func countTile(ops []*Set, ew []uint64, lo, hi int) int {
	c := 0
	a := ops[0].words[lo:hi]
	switch len(ops) {
	case 1:
		if ew == nil {
			for _, w := range a {
				c += bits.OnesCount64(w)
			}
		} else {
			e := ew[lo:hi]
			for i, w := range a {
				c += bits.OnesCount64(w &^ e[i])
			}
		}
	case 2:
		b := ops[1].words[lo:hi]
		if ew == nil {
			for i, w := range a {
				c += bits.OnesCount64(w & b[i])
			}
		} else {
			e := ew[lo:hi]
			for i, w := range a {
				c += bits.OnesCount64(w & b[i] &^ e[i])
			}
		}
	case 3:
		b := ops[1].words[lo:hi]
		d := ops[2].words[lo:hi]
		if ew == nil {
			for i, w := range a {
				c += bits.OnesCount64(w & b[i] & d[i])
			}
		} else {
			e := ew[lo:hi]
			for i, w := range a {
				c += bits.OnesCount64(w & b[i] & d[i] &^ e[i])
			}
		}
	default:
		for i, w := range a {
			for _, s := range ops[1:] {
				w &= s.words[lo+i]
			}
			if ew != nil {
				w &^= ew[lo+i]
			}
			c += bits.OnesCount64(w)
		}
	}
	return c
}

// BatchRefineCountAndNot scores sibling plans that share a common
// intersection prefix and differ in a single operand — the shape a
// Refine step produces (children of one refinement differ in exactly
// one bucket) and the shape consecutive plans of the Cartesian
// enumeration share. On return counts[i] = |(∩ prefix ∩ vars[i]) \ excl|.
//
// The key algebraic move: (A ∩ v) \ E = (A \ E) ∩ v, so the prefix
// intersection AND the exclusion are folded into one masked tile in
// scratch, computed once per word tile and reused for every sibling.
// The per-sibling inner loop then touches exactly two streams (mask,
// var) where the fused scalar kernel touches q+1, so a frontier of m
// siblings with a p-set prefix does p + 1 + 2m word-reads per tile
// instead of m·(p+2).
//
// An empty prefix means the universe: counts[i] = |vars[i] \ excl|.
// excl may be nil. scratch needs min(TileWords, words) uint64s unless
// both the prefix is empty and excl is nil; bounds is caller scratch
// with len >= len(vars). The kernel allocates nothing.
func BatchRefineCountAndNot(prefix, vars []*Set, excl *Set, scratch []uint64, bounds, counts []int32) {
	n := len(vars)
	if len(counts) != n {
		panic("bitset: refine vars/counts length mismatch")
	}
	if n == 0 {
		return
	}
	if len(bounds) < n {
		panic("bitset: refine bounds scratch too small")
	}
	ref := vars[0]
	for _, s := range vars[1:] {
		ref.sameCap(s)
	}
	for _, s := range prefix {
		ref.sameCap(s)
	}
	var ew []uint64
	if excl != nil {
		ref.sameCap(excl)
		ew = excl.words
	}
	// Hoist trimmed bounds: the prefix bound caps every sibling's.
	pB := len(ref.words)
	for _, s := range prefix {
		if t := s.TrimmedLen(); t < pB {
			pB = t
		}
	}
	maxB := 0
	for i, v := range vars {
		b := v.TrimmedLen()
		if b > pB {
			b = pB
		}
		bounds[i] = int32(b)
		counts[i] = 0
		if b > maxB {
			maxB = b
		}
	}
	if maxB == 0 {
		return
	}
	if len(prefix) == 0 && ew == nil {
		// Pure popcounts; no mask needed.
		for i, v := range vars {
			c := 0
			for _, w := range v.words[:bounds[i]] {
				c += bits.OnesCount64(w)
			}
			counts[i] = int32(c)
		}
		return
	}
	need := maxB
	if need > TileWords {
		need = TileWords
	}
	if len(scratch) < need {
		panic("bitset: refine scratch too small")
	}
	for base := 0; base < maxB; base += TileWords {
		end := base + TileWords
		if end > maxB {
			end = maxB
		}
		maskTile(prefix, ew, scratch, base, end)
		s := scratch[:end-base]
		for i, v := range vars {
			hi := int(bounds[i])
			if hi > end {
				hi = end
			}
			if hi <= base {
				continue
			}
			vw := v.words[base:hi]
			sw := s[:hi-base]
			c := 0
			for j, w := range vw {
				c += bits.OnesCount64(w & sw[j])
			}
			counts[i] += int32(c)
		}
	}
}

// maskTile writes scratch[0:end-base] = ((∩ prefix) &^ excl)[base:end],
// with an empty prefix meaning the universe (so the mask is ^excl; set
// words carry no bits past the universe, so the var stream masks the
// stray high bits of the final complemented word).
func maskTile(prefix []*Set, ew, scratch []uint64, base, end int) {
	dst := scratch[:end-base]
	if len(prefix) == 0 {
		e := ew[base:end]
		for j := range dst {
			dst[j] = ^e[j]
		}
		return
	}
	a := prefix[0].words[base:end]
	switch {
	case ew == nil:
		switch len(prefix) {
		case 1:
			copy(dst, a)
		case 2:
			b := prefix[1].words[base:end]
			for j, w := range a {
				dst[j] = w & b[j]
			}
		default:
			for j, w := range a {
				for _, s := range prefix[1:] {
					w &= s.words[base+j]
				}
				dst[j] = w
			}
		}
	default:
		e := ew[base:end]
		switch len(prefix) {
		case 1:
			for j, w := range a {
				dst[j] = w &^ e[j]
			}
		case 2:
			b := prefix[1].words[base:end]
			for j, w := range a {
				dst[j] = w & b[j] &^ e[j]
			}
		default:
			for j, w := range a {
				for _, s := range prefix[1:] {
					w &= s.words[base+j]
				}
				dst[j] = w &^ e[j]
			}
		}
	}
}
