// Package bitset provides a dense, fixed-capacity bitset used by the
// coverage model to represent subsets of the synthetic answer universe.
//
// All binary operations require operands of identical capacity; this is a
// programming-error condition and panics, matching the stdlib convention
// for mismatched lengths (e.g. copy semantics are explicit instead).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

const wordBits = 64

// Set is a fixed-size bitset. The zero value is unusable; create sets with
// New. Sets are not safe for concurrent mutation. Sets are handled by
// pointer throughout (tlen makes them non-copyable).
type Set struct {
	n     int // capacity in bits
	words []uint64

	// tlen caches TrimmedLen as trimmed-length+1; 0 means unknown.
	// Atomic because snapshot-shared sets are read — and therefore
	// lazily trimmed — from concurrent evaluation contexts; mutators
	// (which require exclusive access anyway) reset it to unknown.
	tlen atomic.Int32
}

// New returns a set with capacity n bits, all clear.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// TrimmedLen returns the number of backing words up to and including
// the last nonzero word — the only words a streaming kernel needs to
// visit. The scan is lazy and cached so the batch kernels hoist it into
// setup once instead of re-scanning trailing zero words on every pass;
// every mutator invalidates the cache. Safe for concurrent readers of
// an unchanging set (the shared-snapshot case).
func (s *Set) TrimmedLen() int {
	if v := s.tlen.Load(); v > 0 {
		return int(v - 1)
	}
	t := len(s.words)
	for t > 0 && s.words[t-1] == 0 {
		t--
	}
	s.tlen.Store(int32(t + 1))
	return t
}

// dirty marks the cached trimmed length unknown; every mutator calls it.
func (s *Set) dirty() { s.tlen.Store(0) }

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
	s.dirty()
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
	s.dirty()
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clear clears all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.dirty()
}

// Fill sets all bits in [0, Len).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	s.dirty()
}

// trim zeroes the bits above capacity in the last word.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(s.n%wordBits)) - 1
	}
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	c.tlen.Store(s.tlen.Load()) // identical contents, identical trim
	return c
}

// Copy overwrites s with the contents of other (same capacity required).
func (s *Set) Copy(other *Set) {
	s.sameCap(other)
	copy(s.words, other.words)
	s.dirty()
}

func (s *Set) sameCap(other *Set) {
	if s.n != other.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, other.n))
	}
}

// UnionWith sets s = s ∪ other.
func (s *Set) UnionWith(other *Set) {
	s.sameCap(other)
	for i, w := range other.words {
		s.words[i] |= w
	}
	s.dirty()
}

// IntersectWith sets s = s ∩ other.
func (s *Set) IntersectWith(other *Set) {
	s.sameCap(other)
	for i, w := range other.words {
		s.words[i] &= w
	}
	s.dirty()
}

// DifferenceWith sets s = s \ other.
func (s *Set) DifferenceWith(other *Set) {
	s.sameCap(other)
	for i, w := range other.words {
		s.words[i] &^= w
	}
	s.dirty()
}

// Union returns a new set s ∪ other.
func (s *Set) Union(other *Set) *Set {
	c := s.Clone()
	c.UnionWith(other)
	return c
}

// Intersect returns a new set s ∩ other.
func (s *Set) Intersect(other *Set) *Set {
	c := s.Clone()
	c.IntersectWith(other)
	return c
}

// Difference returns a new set s \ other.
func (s *Set) Difference(other *Set) *Set {
	c := s.Clone()
	c.DifferenceWith(other)
	return c
}

// IntersectionCount returns |s ∩ other| without allocating.
func (s *Set) IntersectionCount(other *Set) int {
	s.sameCap(other)
	c := 0
	for i, w := range other.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// DifferenceCount returns |s \ other| without allocating.
func (s *Set) DifferenceCount(other *Set) int {
	s.sameCap(other)
	c := 0
	for i, w := range other.words {
		c += bits.OnesCount64(s.words[i] &^ w)
	}
	return c
}

// Disjoint reports whether s ∩ other = ∅.
func (s *Set) Disjoint(other *Set) bool {
	s.sameCap(other)
	for i, w := range other.words {
		if s.words[i]&w != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether s ⊆ other.
func (s *Set) SubsetOf(other *Set) bool {
	s.sameCap(other)
	for i, w := range other.words {
		if s.words[i]&^w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether the two sets have identical contents and capacity.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range other.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// ForEach invokes f for each set bit in ascending order. If f returns
// false, iteration stops.
func (s *Set) ForEach(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Elems returns the indices of all set bits in ascending order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Words exposes the backing word slice (little-endian bit order within
// each uint64, bit i of the set at word i/64 bit i%64). It exists for
// serialization (internal/store writes sets to disk) and must be
// treated read-only: mutating the slice bypasses the trimmed-length
// cache and, for view sets over mapped files, would write through to
// the mapping.
func (s *Set) Words() []uint64 { return s.words }

// FromWords wraps an existing word slice as a Set of capacity n without
// copying. The slice must hold exactly (n+63)/64 words and any bits at
// or above n must be clear. The returned set is a VIEW: it aliases
// words, so the caller must not mutate the slice afterwards, and the
// set itself must be treated immutable — calling a mutator on a view
// whose words alias read-only mapped memory faults. This is the bridge
// that lets the fused kernels stream directly over an mmap'ed segment
// file (see internal/store).
func FromWords(n int, words []uint64) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	if want := (n + wordBits - 1) / wordBits; len(words) != want {
		panic(fmt.Sprintf("bitset: FromWords got %d words, want %d for capacity %d", len(words), want, n))
	}
	return &Set{n: n, words: words}
}

// kernelWords validates that every operand (and excl, when non-nil) has
// the capacity of sets[0] and returns sets[0]'s backing words. All fused
// kernels funnel through it so capacity mismatches panic exactly like the
// pairwise operations. Empty operand slices never reach it: each kernel
// defines its explicit empty-frontier result first (see
// IntersectCountAndNot, IntersectInto, UnionInto).
func kernelWords(sets []*Set, excl *Set) []uint64 {
	if len(sets) == 0 {
		panic("bitset: fused kernel over zero sets")
	}
	first := sets[0]
	for _, s := range sets[1:] {
		first.sameCap(s)
	}
	if excl != nil {
		first.sameCap(excl)
	}
	return first.words
}

// universeCountAndNot is the empty-frontier case of IntersectCountAndNot:
// the intersection of zero sets is the full universe, so the result is
// |U \ excl| with the capacity taken from excl. With no excl either, no
// capacity exists to measure against and the count is 0 by definition.
func universeCountAndNot(excl *Set) int {
	if excl == nil {
		return 0
	}
	return excl.n - excl.Count()
}

// IntersectCountAndNot returns |(∩ sets) \ excl| in a single
// word-streaming pass with zero allocations. excl may be nil, in which
// case the plain intersection cardinality is returned. It fuses the
// Copy + IntersectWith + DifferenceCount chain used by the coverage hot
// path into one traversal of the operands. The common arities (1-3 sets,
// matching typical query lengths) are unrolled.
//
// An empty sets slice is the empty frontier, whose intersection is by
// convention the full universe: with a non-nil excl the result is
// |U \ excl| (capacity from excl); with excl nil as well it is 0, there
// being no operand to take a capacity from. Both cases are explicit and
// tested, not artifacts of a degenerate loop.
func IntersectCountAndNot(sets []*Set, excl *Set) int {
	if len(sets) == 0 {
		return universeCountAndNot(excl)
	}
	a := kernelWords(sets, excl)
	c := 0
	switch len(sets) {
	case 1:
		if excl == nil {
			for _, w := range a {
				c += bits.OnesCount64(w)
			}
			return c
		}
		e := excl.words[:len(a)]
		for i, w := range a {
			c += bits.OnesCount64(w &^ e[i])
		}
	case 2:
		b := sets[1].words[:len(a)]
		if excl == nil {
			for i, w := range a {
				c += bits.OnesCount64(w & b[i])
			}
			return c
		}
		e := excl.words[:len(a)]
		for i, w := range a {
			c += bits.OnesCount64(w & b[i] &^ e[i])
		}
	case 3:
		b := sets[1].words[:len(a)]
		d := sets[2].words[:len(a)]
		if excl == nil {
			for i, w := range a {
				c += bits.OnesCount64(w & b[i] & d[i])
			}
			return c
		}
		e := excl.words[:len(a)]
		for i, w := range a {
			c += bits.OnesCount64(w & b[i] & d[i] &^ e[i])
		}
	default:
		for i, w := range a {
			for _, s := range sets[1:] {
				w &= s.words[i]
			}
			if excl != nil {
				w &^= excl.words[i]
			}
			c += bits.OnesCount64(w)
		}
	}
	return c
}

// IntersectInto sets dst = ∩ sets in a single pass. dst must have the
// operands' capacity and may alias one of them. An empty sets slice is
// the intersection's neutral element: dst becomes the full universe.
func IntersectInto(dst *Set, sets []*Set) {
	if len(sets) == 0 {
		dst.Fill()
		return
	}
	defer dst.dirty()
	a := kernelWords(sets, dst)
	dw := dst.words
	switch len(sets) {
	case 1:
		copy(dw, a)
	case 2:
		b := sets[1].words[:len(a)]
		for i, w := range a {
			dw[i] = w & b[i]
		}
	case 3:
		b := sets[1].words[:len(a)]
		d := sets[2].words[:len(a)]
		for i, w := range a {
			dw[i] = w & b[i] & d[i]
		}
	default:
		for i, w := range a {
			for _, s := range sets[1:] {
				w &= s.words[i]
			}
			dw[i] = w
		}
	}
}

// UnionInto sets dst = ∪ sets in a single pass. dst must have the
// operands' capacity and may alias one of them. An empty sets slice is
// the union's neutral element: dst becomes empty.
func UnionInto(dst *Set, sets []*Set) {
	if len(sets) == 0 {
		dst.Clear()
		return
	}
	defer dst.dirty()
	a := kernelWords(sets, dst)
	dw := dst.words
	switch len(sets) {
	case 1:
		copy(dw, a)
	case 2:
		b := sets[1].words[:len(a)]
		for i, w := range a {
			dw[i] = w | b[i]
		}
	case 3:
		b := sets[1].words[:len(a)]
		d := sets[2].words[:len(a)]
		for i, w := range a {
			dw[i] = w | b[i] | d[i]
		}
	default:
		for i, w := range a {
			for _, s := range sets[1:] {
				w |= s.words[i]
			}
			dw[i] = w
		}
	}
}

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
