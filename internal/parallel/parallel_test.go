package parallel

import (
	"sync/atomic"
	"testing"

	"qporder/internal/coverage"
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/workload"
)

func TestNewClampsWorkers(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {4, 4},
	} {
		if got := New(tc.in).Workers(); got != tc.want {
			t.Errorf("New(%d).Workers() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRunCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		const n = 500
		var hits [n]atomic.Int32
		p.Run(n, func(w, i int) {
			if w < 0 || w >= workers {
				t.Errorf("workers=%d: worker id %d out of range", workers, w)
			}
			hits[i].Add(1)
		})
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestRunZeroItemsIsNoop(t *testing.T) {
	New(4).Run(0, func(w, i int) { t.Error("fn called for empty batch") })
}

func TestRunRepanicsWorkerPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	New(4).Run(100, func(_, i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestRangesPartition(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{10, 3}, {1, 4}, {7, 7}, {100, 8}, {5, 0},
	} {
		rs := Ranges(tc.n, tc.parts)
		next := 0
		for _, r := range rs {
			if r[0] != next {
				t.Fatalf("Ranges(%d,%d): range starts at %d, want %d", tc.n, tc.parts, r[0], next)
			}
			if r[1] <= r[0] {
				t.Fatalf("Ranges(%d,%d): empty range %v", tc.n, tc.parts, r)
			}
			next = r[1]
		}
		if next != tc.n {
			t.Fatalf("Ranges(%d,%d): covers [0,%d), want [0,%d)", tc.n, tc.parts, next, tc.n)
		}
		// Balanced within one element.
		min, max := tc.n, 0
		for _, r := range rs {
			if sz := r[1] - r[0]; sz < min {
				min = sz
			} else if sz > max {
				max = sz
			}
		}
		if max > 0 && max-min > 1 {
			t.Fatalf("Ranges(%d,%d): shard sizes spread %d..%d", tc.n, tc.parts, min, max)
		}
	}
}

func TestBestMatchesSequentialScan(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 9, 7, 9, 3, 2, 3, 8, 4, 6}
	betterIdx := func(i, j int) bool {
		if vals[i] != vals[j] {
			return vals[i] > vals[j]
		}
		return i < j // strict total order despite duplicate values
	}
	want := scanBest(0, len(vals), betterIdx)
	for _, workers := range []int{1, 2, 3, 5, 32} {
		if got := New(workers).Best(len(vals), betterIdx); got != want {
			t.Errorf("workers=%d: Best = %d, want %d", workers, got, want)
		}
	}
	if got := New(4).Best(0, betterIdx); got != -1 {
		t.Errorf("Best(0) = %d, want -1", got)
	}
}

func TestPoolBindCounters(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(4)
	p.Bind(reg, "parallel.test")
	const n = 64
	p.Run(n, func(_, _ int) {})
	if got := reg.Counter("parallel.test.items").Value(); got != n {
		t.Errorf("items counter = %d, want %d", got, n)
	}
	if got := reg.Counter("parallel.test.batches").Value(); got != 1 {
		t.Errorf("batches counter = %d, want 1", got)
	}
	if got := reg.Gauge("parallel.test.queue_depth").Value(); got != 0 {
		t.Errorf("queue_depth gauge = %g after Run, want 0", got)
	}
}

// TestEvaluatorMatchesSequential drives the fork/catchup/harvest cycle:
// parallel evaluation must return the sequential intervals and leave the
// main context's work counters at the sequential totals, across Observe
// calls between batches.
func TestEvaluatorMatchesSequential(t *testing.T) {
	d := workload.Generate(workload.Config{QueryLen: 3, BucketSize: 3, Universe: 512, Zones: 3, Seed: 42})
	plans := d.Space.Enumerate()
	m := coverage.NewMeasure(d.Coverage)

	seq := m.NewContext()
	par := m.NewContext()
	ev := NewEvaluator(New(4), par)

	for round := 0; ; round++ {
		want := make([]float64, len(plans))
		for i, p := range plans {
			want[i] = seq.Evaluate(p).Lo
		}
		got := ev.Eval(plans)
		for i := range plans {
			if got[i].Lo != want[i] {
				t.Fatalf("round %d: plan %s utility %g, sequential %g",
					round, plans[i].Key(), got[i].Lo, want[i])
			}
		}
		if seq.Evals() != par.Evals() {
			t.Fatalf("round %d: Evals %d, sequential %d", round, par.Evals(), seq.Evals())
		}
		pc, ph := par.IndepStats()
		sc, sh := seq.IndepStats()
		if pc != sc || ph != sh {
			t.Fatalf("round %d: IndepStats (%d,%d), sequential (%d,%d)", round, pc, ph, sc, sh)
		}
		if round == 2 {
			break
		}
		seq.Observe(plans[round])
		par.Observe(plans[round])
	}
}

func TestEvaluatorInlineBelowMinBatch(t *testing.T) {
	d := workload.Generate(workload.Config{QueryLen: 2, BucketSize: 2, Universe: 128, Seed: 7})
	m := coverage.NewMeasure(d.Coverage)
	main := m.NewContext()
	ev := NewEvaluator(New(4), main)
	if ev.Parallel(DefaultMinBatch - 1) {
		t.Error("Parallel reported fan-out below MinBatch")
	}
	ev.Map(2, func(ctx measure.Context, i int) {
		if ctx != main {
			t.Error("small batch did not run inline on the main context")
		}
	})
}
