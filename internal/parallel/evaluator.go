package parallel

import (
	"qporder/internal/interval"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// DefaultMinBatch is the batch size below which Map runs inline on the
// main context: fan-out overhead (fork sync, scheduling) outweighs the
// win on tiny batches, and the results are identical either way.
const DefaultMinBatch = 4

// Evaluator runs measure-context operations (Evaluate, Independent,
// IndependentWitness) for index-addressed batches across a Pool.
//
// Each worker slot owns a fork of the main context (measure.Fork); before
// every parallel batch the forks catch up to the main context's executed
// prefix, so a fork returns exactly what the main context would — those
// operations are pure functions of (measure, executed prefix, plan).
// After every batch the forks' work counters are harvested into the main
// context (measure.CountAdder), so Evals() and IndepStats() report the
// same totals as a sequential run: the obs counters stay an honest
// apples-to-apples work measure across parallelism settings.
//
// An Evaluator belongs to one orderer goroutine: Map may be called only
// from one goroutine at a time, and the main context must not be touched
// while a batch is in flight (Map blocks until the batch completes, so
// single-goroutine callers get this for free).
type Evaluator struct {
	pool *Pool
	main measure.Context

	// MinBatch overrides DefaultMinBatch when positive.
	MinBatch int

	forks  []measure.Context
	synced []int // executed-prefix length each fork has observed
	evals  []int // per-fork counter values at last harvest
	checks []int
	hits   []int
}

// NewEvaluator returns an evaluator over the given pool and main
// context. Forks are created lazily on the first parallel batch.
func NewEvaluator(pool *Pool, main measure.Context) *Evaluator {
	return &Evaluator{pool: pool, main: main}
}

// Pool returns the underlying pool.
func (e *Evaluator) Pool() *Pool { return e.pool }

// Parallel reports whether a batch of n items fans out (rather than
// running inline on the main context).
func (e *Evaluator) Parallel(n int) bool {
	min := e.MinBatch
	if min <= 0 {
		min = DefaultMinBatch
	}
	return e.pool.Workers() > 1 && n >= min
}

// Map executes fn(ctx, i) for every i in [0, n). Small batches run
// inline with the main context; larger ones fan out, each worker calling
// fn with its private fork. fn must only read the context and write to
// caller-owned slot i.
func (e *Evaluator) Map(n int, fn func(ctx measure.Context, i int)) {
	if !e.Parallel(n) {
		for i := 0; i < n; i++ {
			fn(e.main, i)
		}
		return
	}
	e.sync()
	e.pool.Run(n, func(w, i int) { fn(e.forks[w], i) })
	e.harvest()
}

// Eval evaluates every plan, returning the intervals in input order.
func (e *Evaluator) Eval(plans []*planspace.Plan) []interval.Interval {
	out := make([]interval.Interval, len(plans))
	e.EvalInto(plans, out)
	return out
}

// EvalInto evaluates every plan into out[i], routing each contiguous
// chunk through measure.EvaluateAll so batch-capable contexts score
// whole frontiers per kernel pass. Small batches run inline on the main
// context; larger ones split into one contiguous range per worker, each
// fork batch-evaluating its range. Per-plan results depend only on
// (measure, executed prefix, plan) — never on chunk grouping — so the
// output is identical at every parallelism level, and harvest() keeps
// the counters identical too.
func (e *Evaluator) EvalInto(plans []*planspace.Plan, out []interval.Interval) {
	n := len(plans)
	if len(out) < n {
		panic("parallel: EvalInto output slice too short")
	}
	if !e.Parallel(n) {
		measure.EvaluateAll(e.main, plans, out)
		return
	}
	e.sync()
	ranges := Ranges(n, e.pool.Workers())
	e.pool.Run(len(ranges), func(w, i int) {
		r := ranges[i]
		measure.EvaluateAll(e.forks[w], plans[r[0]:r[1]], out[r[0]:r[1]])
	})
	e.harvest()
}

// IndependentInto fills indep[i] = Independent(plans[i], d) for every i
// with alive[i] (alive == nil selects all), routing each contiguous
// chunk through measure.IndependentAll so bulk-capable contexts sweep
// with memoized delta rows. Small batches run inline; larger ones split
// into one range per worker. Verdicts depend only on (measure, plan, d),
// so the output is identical at every parallelism level, and harvest()
// keeps IndepStats identical too.
func (e *Evaluator) IndependentInto(plans []*planspace.Plan, d *planspace.Plan, alive, indep []bool) {
	n := len(plans)
	if !e.Parallel(n) {
		measure.IndependentAll(e.main, plans, d, alive, indep)
		return
	}
	e.sync()
	ranges := Ranges(n, e.pool.Workers())
	e.pool.Run(len(ranges), func(w, i int) {
		r := ranges[i]
		var al []bool
		if alive != nil {
			al = alive[r[0]:r[1]]
		}
		measure.IndependentAll(e.forks[w], plans[r[0]:r[1]], d, al, indep[r[0]:r[1]])
	})
	e.harvest()
}

// sync creates missing forks and replays the main context's executed
// suffix onto each fork.
func (e *Evaluator) sync() {
	w := e.pool.Workers()
	for len(e.forks) < w {
		f := measure.Fork(e.main)
		e.forks = append(e.forks, f)
		e.synced = append(e.synced, len(e.main.Executed()))
		e.evals = append(e.evals, f.Evals())
		ck, ht := f.IndepStats()
		e.checks = append(e.checks, ck)
		e.hits = append(e.hits, ht)
	}
	for i, f := range e.forks {
		e.synced[i] = measure.Catchup(f, e.main, e.synced[i])
	}
}

// harvest merges the forks' counter deltas into the main context.
func (e *Evaluator) harvest() {
	adder, ok := e.main.(measure.CountAdder)
	var dE, dC, dH int
	for i, f := range e.forks {
		ev := f.Evals()
		ck, ht := f.IndepStats()
		dE += ev - e.evals[i]
		dC += ck - e.checks[i]
		dH += ht - e.hits[i]
		e.evals[i], e.checks[i], e.hits[i] = ev, ck, ht
	}
	if ok && (dE != 0 || dC != 0 || dH != 0) {
		adder.AddCounts(dE, dC, dH)
	}
}
