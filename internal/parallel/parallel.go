// Package parallel provides the bounded worker pool underneath the
// ordering pipeline's concurrent paths. The paper's plan-independence
// property (Property 3) licenses evaluating candidate plans concurrently:
// a plan's utility is a pure function of (measure, executed prefix,
// plan), so utility evaluation and dominance testing fan out to workers
// and merge back in a deterministic order, keeping every orderer's
// Next() output byte-identical to its sequential path.
//
// Two layers:
//
//   - Pool: a bounded set of workers executing index-addressed batches
//     with dynamic (work-stealing) dispatch, plus the obs gauges the
//     observability layer exposes (workers busy, queue depth, batches,
//     items, steals, merges);
//   - Evaluator (evaluator.go): the measure-aware layer that forks
//     evaluation contexts per worker, keeps them synced to the main
//     context's executed prefix, and harvests their work counters so
//     Evals()/IndepStats() match a sequential run exactly.
package parallel

import (
	"sync"
	"sync/atomic"

	"qporder/internal/obs"
)

// Pool is a bounded worker pool. The zero value is not usable; call New.
// A Pool carries no goroutines between batches: Run fans out, joins, and
// returns, so an idle pool costs nothing and has no lifecycle to manage.
type Pool struct {
	workers int

	// Observability (nil, hence no-op, until Bind).
	busy    *obs.Gauge   // workers currently executing batch items
	depth   *obs.Gauge   // items not yet claimed in the current batch
	batches *obs.Counter // Run invocations that fanned out
	items   *obs.Counter // total items dispatched
	steals  *obs.Counter // items claimed beyond a worker's even share
	merges  *obs.Counter // deterministic merge steps (Best)
}

// New returns a pool with the given worker bound; n < 1 is clamped to 1
// (a single-worker pool runs batches inline).
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{workers: n}
}

// Workers returns the worker bound.
func (p *Pool) Workers() int { return p.workers }

// Bind attaches the pool's gauges and counters under the given name
// prefix: "<prefix>.workers_busy", "<prefix>.queue_depth",
// "<prefix>.batches", "<prefix>.items", "<prefix>.steals",
// "<prefix>.merges". A nil registry disables them (the default).
func (p *Pool) Bind(reg *obs.Registry, prefix string) {
	if reg == nil {
		p.busy, p.depth, p.batches, p.items, p.steals, p.merges = nil, nil, nil, nil, nil, nil
		return
	}
	p.busy = reg.Gauge(prefix + ".workers_busy")
	p.depth = reg.Gauge(prefix + ".queue_depth")
	p.batches = reg.Counter(prefix + ".batches")
	p.items = reg.Counter(prefix + ".items")
	p.steals = reg.Counter(prefix + ".steals")
	p.merges = reg.Counter(prefix + ".merges")
}

// Run executes fn(worker, i) for every i in [0, n), spread across at
// most Workers() goroutines. worker identifies the executing slot in
// [0, Workers()), so callers can hand each slot private state (a forked
// evaluation context). Items are claimed from a shared cursor, so a fast
// worker steals the queue tail from slow ones. Run returns when every
// item is done; a panicking item re-panics on the caller's goroutine.
//
// fn must write results only to caller-owned, index-addressed slots
// (out[i] = ...): that makes the result independent of scheduling and is
// what keeps the parallel ordering paths deterministic.
func (p *Pool) Run(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	p.batches.Inc()
	p.items.Add(int64(n))
	p.depth.Set(float64(n))
	share := (n + w - 1) / w // even share per worker; beyond it is a steal

	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[recovered]
	)
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &recovered{r})
				}
			}()
			p.busy.Add(1)
			defer p.busy.Add(-1)
			claimed := 0
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				p.depth.Set(float64(n - i - 1))
				claimed++
				if claimed > share {
					p.steals.Inc()
				}
				fn(wk, i)
			}
		}(wk)
	}
	wg.Wait()
	p.depth.Set(0)
	if r := panicked.Load(); r != nil {
		panic(r.v)
	}
}

// recovered boxes a worker panic for re-raising on the caller.
type recovered struct{ v interface{} }

// Ranges splits [0, n) into parts contiguous half-open index ranges,
// balanced within one element. Fewer than parts ranges are returned when
// n < parts.
func Ranges(n, parts int) [][2]int {
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([][2]int, 0, parts)
	for s := 0; s < parts; s++ {
		lo := s * n / parts
		hi := (s + 1) * n / parts
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// Best returns the index i in [0, n) that is first under betterIdx, a
// strict total order predicate (betterIdx(i, j) reports whether item i
// strictly precedes item j). Each worker scans one shard; the shard
// winners then merge deterministically in shard order — the same k-way
// merge the parallel orderers use to keep output identical to a
// sequential scan. betterIdx must be safe for concurrent calls and must
// not observe writes made during the scan. Returns -1 when n == 0.
func (p *Pool) Best(n int, betterIdx func(i, j int) bool) int {
	if n <= 0 {
		return -1
	}
	ranges := Ranges(n, p.workers)
	if len(ranges) == 1 {
		return scanBest(0, n, betterIdx)
	}
	bests := make([]int, len(ranges))
	p.Run(len(ranges), func(_, s int) {
		bests[s] = scanBest(ranges[s][0], ranges[s][1], betterIdx)
	})
	best := bests[0]
	for _, b := range bests[1:] {
		p.merges.Inc()
		if betterIdx(b, best) {
			best = b
		}
	}
	return best
}

// BestHead is the single merge step of a deterministic k-way merge over
// ordered streams: given n stream heads, it returns the index of the
// stream whose head precedes all others under better, scanning streams
// in index order so ties resolve to the lowest stream — exactly the
// shard-order merge Pool.Best applies to in-process shard winners. ok
// reports whether stream i currently has a head; streams without one are
// skipped. Returns -1 when no stream has a head.
//
// The fleet layer uses this to gather per-shard plan streams over the
// wire: each shard's stream is already in the canonical (utility, key)
// order, so repeatedly taking BestHead reproduces the single-process
// sequence.
func BestHead(n int, ok func(i int) bool, better func(i, j int) bool) int {
	best := -1
	for i := 0; i < n; i++ {
		if !ok(i) {
			continue
		}
		if best < 0 || better(i, best) {
			best = i
		}
	}
	return best
}

// scanBest is the sequential kernel of Best over [lo, hi).
func scanBest(lo, hi int, betterIdx func(i, j int) bool) int {
	best := lo
	for i := lo + 1; i < hi; i++ {
		if betterIdx(i, best) {
			best = i
		}
	}
	return best
}
