package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"unsafe"

	"qporder/internal/bitset"
	"qporder/internal/obs"
)

// hostLittleEndian reports whether uint64 loads read mapped bytes in
// file order; on big-endian hosts views fall back to decoded copies.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Options tunes Open.
type Options struct {
	// CachePages is the LRU page-touch tracker capacity; <= 0 tracks
	// every touched page (unbounded warm set).
	CachePages int
	// NoMmap forces the copy fallback even where mmap is available
	// (tests exercise both paths on one platform).
	NoMmap bool
}

// Stats is a snapshot of the store's cumulative access accounting.
type Stats struct {
	// SegmentsMapped counts source runs exposed as bitset views.
	SegmentsMapped int64
	// Faults and PageHits count simulated page-cache misses and hits
	// across every TouchSource call.
	Faults   int64
	PageHits int64
	// BytesResident is the warm set size in bytes (tracked pages ×
	// PageSize).
	BytesResident int64
	// CatalogHits counts artifacts served from the persisted catalog
	// instead of being recomputed: one per source-statistics record and
	// one per primed overlap row.
	CatalogHits int64
}

// Store is an open segment/catalog pair. The segment file is mapped
// read-only (or copied where mmap is unavailable); AnswerSet hands out
// zero-copy bitset views over the mapping. Views stay valid until
// Close; Close unmaps, so the loader that owns the Store must outlive
// every model built over it (DESIGN.md §9 spells out the lifetime
// contract).
type Store struct {
	dir    string
	hdr    SegmentHeader
	cat    *Catalog
	data   []byte
	unmap  func() error
	mapped bool // data aliases the file mapping (vs a private copy)

	mu      sync.Mutex
	views   []*bitset.Set
	tracker *tracker

	segMapped   int64
	catalogHits int64

	// obs mirrors; nil until Bind (all obs methods are nil-safe).
	cMapped, cFaults, cHits, cCatalog *obs.Counter
	gResident                         *obs.Gauge
}

// Open opens the store in dir with default options.
func Open(dir string) (*Store, error) { return OpenOptions(dir, Options{}) }

// OpenOptions opens the store in dir. It validates both file headers,
// the catalog body checksum, the exact segment file size, and the
// cross-file geometry — but does not read the segment data pages
// (Verify does); a terabyte store opens in O(1).
func OpenOptions(dir string, opt Options) (*Store, error) {
	catBytes, err := os.ReadFile(filepath.Join(dir, CatalogFile))
	if err != nil {
		return nil, fmt.Errorf("store: reading catalog: %w", err)
	}
	cat, err := DecodeCatalog(catBytes)
	if err != nil {
		return nil, err
	}

	f, err := os.Open(filepath.Join(dir, SegmentsFile))
	if err != nil {
		return nil, fmt.Errorf("store: opening segments: %w", err)
	}
	defer f.Close()
	var hdrBytes [segHeaderLen]byte
	if _, err := f.ReadAt(hdrBytes[:], 0); err != nil {
		return nil, fmt.Errorf("store: reading segment header: %w", err)
	}
	hdr, err := DecodeSegmentHeader(hdrBytes[:])
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: stat segments: %w", err)
	}
	if fi.Size() != hdr.FileSize() {
		return nil, fmt.Errorf("store: segment file is %d bytes, header implies %d", fi.Size(), hdr.FileSize())
	}
	if int(hdr.Universe) != cat.Universe {
		return nil, fmt.Errorf("store: segment universe %d != catalog universe %d", hdr.Universe, cat.Universe)
	}
	if int(hdr.Sources) != len(cat.Sources) {
		return nil, fmt.Errorf("store: segment holds %d sources, catalog %d", hdr.Sources, len(cat.Sources))
	}

	s := &Store{
		dir:     dir,
		hdr:     hdr,
		cat:     cat,
		views:   make([]*bitset.Set, hdr.Sources),
		tracker: newTracker(opt.CachePages),
	}
	if !opt.NoMmap {
		if data, unmap, ok := mapFile(f, fi.Size()); ok {
			s.data, s.unmap, s.mapped = data, unmap, true
		}
	}
	if s.data == nil {
		data, err := os.ReadFile(filepath.Join(dir, SegmentsFile))
		if err != nil {
			return nil, fmt.Errorf("store: reading segments: %w", err)
		}
		if int64(len(data)) != hdr.FileSize() {
			return nil, fmt.Errorf("store: segment file changed size during open")
		}
		s.data = data
	}
	return s, nil
}

// Close releases the mapping. Every bitset view handed out by AnswerSet
// becomes invalid; reading one afterwards may fault.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = nil
	s.views = nil
	if s.unmap != nil {
		u := s.unmap
		s.unmap = nil
		return u()
	}
	return nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Header returns the decoded segment header.
func (s *Store) Header() SegmentHeader { return s.hdr }

// Catalog returns the decoded catalog document (shared; treat as
// read-only).
func (s *Store) Catalog() *Catalog { return s.cat }

// Mapped reports whether the segment data aliases a file mapping (false
// means the copy fallback is active).
func (s *Store) Mapped() bool { return s.mapped }

// NumSources returns the source count.
func (s *Store) NumSources() int { return int(s.hdr.Sources) }

// Universe returns the answer-universe size in bits.
func (s *Store) Universe() int { return int(s.hdr.Universe) }

// AnswerSet returns source i's coverage set as a read-only view over
// the segment data. The first call per source materializes the view
// (zero-copy when the mapping is 8-byte aligned on a little-endian
// host, a decoded copy otherwise) and counts one mapped segment.
// The view must never be mutated and dies with Close.
func (s *Store) AnswerSet(i int) *bitset.Set {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.views == nil {
		panic("store: AnswerSet after Close")
	}
	if v := s.views[i]; v != nil {
		return v
	}
	off := s.hdr.RunOffset(i)
	w := int(s.hdr.WordsPerRun)
	raw := s.data[off : off+int64(w)*8]
	var words []uint64
	if hostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%8 == 0 {
		words = unsafe.Slice((*uint64)(unsafe.Pointer(&raw[0])), w)
	} else {
		words = make([]uint64, w)
		for j := range words {
			words[j] = binary.LittleEndian.Uint64(raw[j*8:])
		}
	}
	v := bitset.FromWords(int(s.hdr.Universe), words)
	s.views[i] = v
	s.segMapped++
	s.cMapped.Inc()
	return v
}

// TouchSource records a hot-path read of source i's run: its resident
// pages (the pages holding the set's trimmed words, from the catalog)
// pass through the LRU tracker, classifying each as a fault or a hit
// and updating the bytes_resident gauge.
func (s *Store) TouchSource(i int) {
	rec := &s.cat.Sources[i]
	if rec.Pages == 0 {
		return
	}
	first := s.hdr.RunOffset(i) / PageSize
	faults, hits := s.tracker.touchRange(first, rec.Pages)
	if faults != 0 {
		s.cFaults.Add(faults)
	}
	if hits != 0 {
		s.cHits.Add(hits)
	}
	s.gResident.Set(float64(int64(s.tracker.resident()) * PageSize))
}

// ResetCache empties the warm page set — a simulated cold restart —
// without clearing cumulative counters.
func (s *Store) ResetCache() {
	s.tracker.reset()
	s.gResident.Set(0)
}

// countCatalogHits records n artifacts served from the persisted
// catalog (see Stats.CatalogHits).
func (s *Store) countCatalogHits(n int64) {
	s.mu.Lock()
	s.catalogHits += n
	s.mu.Unlock()
	s.cCatalog.Add(n)
}

// Snapshot returns the cumulative access accounting.
func (s *Store) Snapshot() Stats {
	faults, hits := s.tracker.counters()
	s.mu.Lock()
	mapped, catalog := s.segMapped, s.catalogHits
	s.mu.Unlock()
	return Stats{
		SegmentsMapped: mapped,
		Faults:         faults,
		PageHits:       hits,
		BytesResident:  int64(s.tracker.resident()) * PageSize,
		CatalogHits:    catalog,
	}
}

// Bind mirrors the store's accounting into reg under the store.*
// instrument names (see README metrics glossary). Call before serving
// traffic; until then the mirrors are nil no-ops.
func (s *Store) Bind(reg *obs.Registry) {
	s.cMapped = reg.Counter("store.segments_mapped")
	s.cFaults = reg.Counter("store.faults")
	s.cHits = reg.Counter("store.page_hits")
	s.cCatalog = reg.Counter("store.catalog_hits")
	s.gResident = reg.Gauge("store.bytes_resident")
	// Backfill whatever accrued before binding so scrapes agree with
	// Snapshot.
	st := s.Snapshot()
	s.cMapped.Add(st.SegmentsMapped)
	s.cFaults.Add(st.Faults)
	s.cHits.Add(st.PageHits)
	s.cCatalog.Add(st.CatalogHits)
	s.gResident.Set(float64(st.BytesResident))
}
