package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"qporder/internal/lav"
	"qporder/internal/obs"
	"qporder/internal/workload"
)

func testConfig(seed int64) workload.Config {
	return workload.Config{QueryLen: 3, BucketSize: 5, Universe: 512, Zones: 3, Seed: seed}
}

func writeTestStore(t *testing.T, cfg workload.Config) (string, *workload.Domain) {
	t.Helper()
	d := workload.Generate(cfg)
	dir := t.TempDir()
	if err := WriteDomain(dir, d); err != nil {
		t.Fatalf("WriteDomain: %v", err)
	}
	return dir, d
}

func TestWriteIsDeterministic(t *testing.T) {
	cfg := testConfig(7)
	dirA, _ := writeTestStore(t, cfg)
	dirB, _ := writeTestStore(t, cfg)
	for _, name := range []string{SegmentsFile, CatalogFile} {
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between two writes of the same domain", name)
		}
	}
}

func TestVerifyCleanStore(t *testing.T) {
	dir, d := writeTestStore(t, testConfig(3))
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify on a clean store: %v", err)
	}
	if rep.Sources != d.Catalog.Len() || rep.Universe != d.Coverage.Universe() {
		t.Errorf("report %+v does not match domain (%d sources, universe %d)",
			rep, d.Catalog.Len(), d.Coverage.Universe())
	}
	n := d.Catalog.Len()
	if want := n * (n + 1) / 2; rep.OverlapPairs != want {
		t.Errorf("verified %d overlap pairs, want %d", rep.OverlapPairs, want)
	}
}

// TestVerifyDetectsEveryCorruptByte flips single bytes across both
// files — header, run data, run padding, catalog envelope, catalog
// body — and requires Verify to fail each time.
func TestVerifyDetectsEveryCorruptByte(t *testing.T) {
	dir, _ := writeTestStore(t, testConfig(5))
	for _, tc := range []struct {
		file    string
		offsets []int64
	}{
		{SegmentsFile, []int64{0, 9, 20, 50, 54, 100, PageSize, PageSize + 7, 3*PageSize - 1, -1}},
		{CatalogFile, []int64{0, 10, 17, 22, 40, 200, -1}},
	} {
		path := filepath.Join(dir, tc.file)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, off := range tc.offsets {
			if off < 0 {
				off = int64(len(orig)) - 1
			}
			mut := append([]byte(nil), orig...)
			mut[off] ^= 0x40
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Verify(dir); err == nil {
				t.Errorf("Verify passed with %s byte %d corrupted", tc.file, off)
			}
			if err := os.WriteFile(path, orig, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("Verify after restoring: %v", err)
	}
}

func TestOpenRejectsGeometryMismatch(t *testing.T) {
	dir, _ := writeTestStore(t, testConfig(11))
	path := filepath.Join(dir, SegmentsFile)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncating the segment file breaks the size implied by the header.
	if err := os.WriteFile(path, orig[:len(orig)-PageSize], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("Open accepted a truncated segment file")
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt header magic must fail before any data is read.
	mut := append([]byte(nil), orig...)
	mut[0] = 'X'
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("Open accepted a bad segment magic")
	}
}

func TestAnswerSetViewsMatchSource(t *testing.T) {
	cfg := testConfig(13)
	dir, d := writeTestStore(t, cfg)
	for _, opt := range []Options{{}, {NoMmap: true}} {
		st, err := OpenOptions(dir, opt)
		if err != nil {
			t.Fatalf("Open(%+v): %v", opt, err)
		}
		for i := 0; i < st.NumSources(); i++ {
			got := st.AnswerSet(i)
			want := d.Coverage.Set(lav.SourceID(i))
			if !got.Equal(want) {
				t.Fatalf("opt %+v: source %d answer set differs from generated set", opt, i)
			}
			if got.TrimmedLen() != want.TrimmedLen() {
				t.Fatalf("opt %+v: source %d trimmed length %d, want %d",
					opt, i, got.TrimmedLen(), want.TrimmedLen())
			}
		}
		if st.Snapshot().SegmentsMapped != int64(st.NumSources()) {
			t.Errorf("opt %+v: SegmentsMapped=%d, want %d", opt, st.Snapshot().SegmentsMapped, st.NumSources())
		}
		st.Close()
	}
}

func TestTrackerLRU(t *testing.T) {
	tr := newTracker(2)
	if f, h := tr.touchRange(0, 2); f != 2 || h != 0 {
		t.Fatalf("first touch: faults=%d hits=%d, want 2,0", f, h)
	}
	if f, h := tr.touchRange(0, 2); f != 0 || h != 2 {
		t.Fatalf("warm touch: faults=%d hits=%d, want 0,2", f, h)
	}
	// Touching page 2 evicts the LRU page 0.
	if f, _ := tr.touchRange(2, 1); f != 1 {
		t.Fatal("new page must fault")
	}
	if f, _ := tr.touchRange(0, 1); f != 1 {
		t.Fatal("evicted page must re-fault")
	}
	if got := tr.resident(); got != 2 {
		t.Fatalf("resident=%d, want capacity 2", got)
	}
	tr.reset()
	if got := tr.resident(); got != 0 {
		t.Fatalf("resident after reset=%d, want 0", got)
	}
	if f, _ := tr.counters(); f != 4 {
		t.Fatalf("cumulative faults=%d, want 4", f)
	}
}

func TestLoadColdWarmAccounting(t *testing.T) {
	dir, _ := writeTestStore(t, testConfig(17))
	st, d, err := Load(dir, Options{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer st.Close()
	if st.Snapshot().CatalogHits == 0 {
		t.Error("Load served nothing from the catalog")
	}
	n := d.Catalog.Len()
	// A full sweep over every source faults each resident page once...
	for i := 0; i < n; i++ {
		d.Coverage.Set(lav.SourceID(i))
	}
	cold := st.Snapshot()
	if cold.Faults == 0 || cold.PageHits != 0 {
		t.Fatalf("cold sweep: %+v, want faults>0 hits=0", cold)
	}
	if cold.BytesResident == 0 {
		t.Error("cold sweep left nothing resident")
	}
	// ...and a second sweep over the unbounded warm set only hits.
	for i := 0; i < n; i++ {
		d.Coverage.Set(lav.SourceID(i))
	}
	warm := st.Snapshot()
	if warm.Faults != cold.Faults || warm.PageHits != cold.Faults {
		t.Fatalf("warm sweep: %+v, want faults unchanged and hits=%d", warm, cold.Faults)
	}
	// A cold restart re-faults everything.
	st.ResetCache()
	if st.Snapshot().BytesResident != 0 {
		t.Error("ResetCache left pages resident")
	}
	for i := 0; i < n; i++ {
		d.Coverage.Set(lav.SourceID(i))
	}
	if again := st.Snapshot(); again.Faults != 2*cold.Faults {
		t.Fatalf("post-reset sweep: faults=%d, want %d", again.Faults, 2*cold.Faults)
	}
}

func TestPrimedOverlapAvoidsFaults(t *testing.T) {
	dir, gen := writeTestStore(t, testConfig(19))
	st, d, err := Load(dir, Options{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer st.Close()
	n := d.Catalog.Len()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			got := d.Coverage.Overlap(lav.SourceID(a), lav.SourceID(b))
			want := gen.Coverage.Overlap(lav.SourceID(a), lav.SourceID(b))
			if got != want {
				t.Fatalf("overlap(%d,%d)=%v, want %v", a, b, got, want)
			}
		}
	}
	if faults := st.Snapshot().Faults; faults != 0 {
		t.Errorf("primed overlap probes faulted %d pages, want 0", faults)
	}
}

func TestBindMirrorsStats(t *testing.T) {
	dir, _ := writeTestStore(t, testConfig(23))
	st, d, err := Load(dir, Options{CachePages: 4})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer st.Close()
	reg := obs.NewRegistry()
	st.Bind(reg)
	for i := 0; i < d.Catalog.Len(); i++ {
		d.Coverage.Set(lav.SourceID(i))
	}
	snap := st.Snapshot()
	for name, want := range map[string]int64{
		"store.segments_mapped": snap.SegmentsMapped,
		"store.faults":          snap.Faults,
		"store.page_hits":       snap.PageHits,
		"store.catalog_hits":    snap.CatalogHits,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("store.bytes_resident").Value(); got != float64(snap.BytesResident) {
		t.Errorf("store.bytes_resident = %g, want %d", got, snap.BytesResident)
	}
	if snap.BytesResident > 4*PageSize {
		t.Errorf("capacity 4 tracker holds %d bytes resident", snap.BytesResident)
	}
}

func TestLoadCatalogLightPath(t *testing.T) {
	dir, d := writeTestStore(t, testConfig(29))
	cat, query, err := LoadCatalog(dir)
	if err != nil {
		t.Fatalf("LoadCatalog: %v", err)
	}
	if cat.Len() != d.Catalog.Len() {
		t.Fatalf("catalog holds %d sources, want %d", cat.Len(), d.Catalog.Len())
	}
	if query.String() != d.Query.String() {
		t.Errorf("query %q, want %q", query, d.Query)
	}
	for _, src := range d.Catalog.Sources() {
		got := cat.Source(src.ID)
		if got.Name != src.Name || got.Stats != src.Stats {
			t.Errorf("source %d round-tripped as %+v, want %+v", src.ID, got, src)
		}
		if (got.Def == nil) != (src.Def == nil) ||
			(got.Def != nil && got.Def.String() != src.Def.String()) {
			t.Errorf("source %s def mismatch", src.Name)
		}
	}
}

func TestRehydratedDomainMatches(t *testing.T) {
	cfg := testConfig(31)
	dir, gen := writeTestStore(t, cfg)
	st, d, err := Load(dir, Options{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer st.Close()
	if d.Config != gen.Config {
		t.Errorf("config %+v, want %+v", d.Config, gen.Config)
	}
	if d.Space.Size() != gen.Space.Size() {
		t.Errorf("plan space size %d, want %d", d.Space.Size(), gen.Space.Size())
	}
	if len(d.Buckets) != len(gen.Buckets) {
		t.Fatalf("%d buckets, want %d", len(d.Buckets), len(gen.Buckets))
	}
	for b := range gen.Buckets {
		if len(d.Buckets[b]) != len(gen.Buckets[b]) {
			t.Fatalf("bucket %d has %d sources, want %d", b, len(d.Buckets[b]), len(gen.Buckets[b]))
		}
		for j := range gen.Buckets[b] {
			if d.Buckets[b][j] != gen.Buckets[b][j] {
				t.Fatalf("bucket %d slot %d: %d, want %d", b, j, d.Buckets[b][j], gen.Buckets[b][j])
			}
		}
	}
	for _, src := range gen.Catalog.Sources() {
		if got, want := d.SimilarityKey(0, src.ID), gen.SimilarityKey(0, src.ID); got != want {
			t.Errorf("similarity key of %s: %g, want %g", src.Name, got, want)
		}
	}
}
