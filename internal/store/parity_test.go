package store_test

import (
	"testing"

	"qporder/internal/abstraction"
	"qporder/internal/core"
	"qporder/internal/costmodel"
	"qporder/internal/coverage"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/planspace"
	"qporder/internal/store"
	"qporder/internal/workload"
)

// storePages computes every source's resident-page footprint from its
// coverage set — identical for generated sets and store-backed views,
// which is what keeps the I/O-aware measure deterministic across
// backends.
func storePages(d *workload.Domain) []int {
	pages := make([]int, d.Catalog.Len())
	for i := range pages {
		pages[i] = store.ResidentPages(d.Coverage.Set(lav.SourceID(i)))
	}
	return pages
}

// measures builds, per domain, every measure family the parity gate
// covers: the coverage utility, the linear cost (which Greedy always
// accepts), and both I/O-aware variants.
func measures(d *workload.Domain) map[string]measure.Measure {
	return map[string]measure.Measure{
		"coverage": coverage.NewMeasure(d.Coverage),
		"linear":   costmodel.NewLinearCost(d.Catalog),
		"io-cold":  costmodel.NewIOCost(d.Catalog, storePages(d), 0, false),
		"io-warm":  costmodel.NewIOCost(d.Catalog, storePages(d), 0, true),
	}
}

// orderers mirrors internal/core's test helper: every orderer the
// measure admits (Greedy requires full monotonicity, Streamer
// diminishing returns).
func orderers(d *workload.Domain, m measure.Measure) map[string]core.Orderer {
	spaces := []*planspace.Space{d.Space}
	heur := abstraction.ByKey("cov-sim", d.SimilarityKey)
	out := map[string]core.Orderer{
		"exhaustive": core.NewExhaustive(spaces, m),
		"pi":         core.NewPI(spaces, m),
		"idrips":     core.NewIDrips(spaces, m, heur),
	}
	if g, err := core.NewGreedy(spaces, m); err == nil {
		out["greedy"] = g
	}
	if s, err := core.NewStreamer(spaces, m, heur); err == nil {
		out["streamer"] = s
	}
	return out
}

type outcome struct {
	keys         []string
	utils        []float64
	evals        int
	checks, hits int
}

// runAll drives every admitted orderer to exhaustion and captures its
// full (plan key, utility) stream plus work counters.
func runAll(d *workload.Domain, workers int) map[string]map[string]outcome {
	total := int(d.Space.Size())
	out := map[string]map[string]outcome{}
	for mname, m := range measures(d) {
		cells := map[string]outcome{}
		for name, o := range orderers(d, m) {
			core.SetParallelism(o, workers)
			plans, utils := core.Take(o, total+1)
			keys := make([]string, len(plans))
			for i, p := range plans {
				keys[i] = p.Key()
			}
			ck, ht := o.Context().IndepStats()
			cells[name] = outcome{keys, utils, o.Context().Evals(), ck, ht}
		}
		out[mname] = cells
	}
	return out
}

// TestStoreBackedOrderingParity is the acceptance gate of the store
// subsystem: a store-backed run of every orderer must produce a
// byte-identical plan stream (keys and utilities) and identical
// Evals/IndepStats counters vs the in-memory model, at parallelism 1
// and 8, across every measure family — over both the mmap and the
// copy-fallback open paths.
func TestStoreBackedOrderingParity(t *testing.T) {
	for _, cfg := range []workload.Config{
		{QueryLen: 3, BucketSize: 5, Universe: 512, Zones: 3, Seed: 41},
		{QueryLen: 2, BucketSize: 7, Universe: 4096, Zones: 2, Seed: 42},
		{QueryLen: 4, BucketSize: 3, Universe: 256, Zones: 3, Seed: 43},
	} {
		gen := workload.Generate(cfg)
		dir := t.TempDir()
		if err := store.WriteDomain(dir, gen); err != nil {
			t.Fatalf("WriteDomain: %v", err)
		}
		base := runAll(gen, 1)
		for _, opt := range []store.Options{{}, {NoMmap: true}} {
			st, d, err := store.Load(dir, opt)
			if err != nil {
				t.Fatalf("Load(%+v): %v", opt, err)
			}
			for _, workers := range []int{1, 8} {
				got := runAll(d, workers)
				for mname, cells := range base {
					for name, b := range cells {
						g, ok := got[mname][name]
						if !ok {
							t.Fatalf("seed=%d mmap=%v workers=%d: cell %s/%s missing from store-backed run",
								cfg.Seed, !opt.NoMmap, workers, mname, name)
						}
						if len(g.keys) != len(b.keys) {
							t.Fatalf("seed=%d mmap=%v workers=%d %s/%s: %d plans, want %d",
								cfg.Seed, !opt.NoMmap, workers, mname, name, len(g.keys), len(b.keys))
						}
						for i := range b.keys {
							if g.keys[i] != b.keys[i] || g.utils[i] != b.utils[i] {
								t.Fatalf("seed=%d mmap=%v workers=%d %s/%s step %d: (%s, %v), want (%s, %v)",
									cfg.Seed, !opt.NoMmap, workers, mname, name, i,
									g.keys[i], g.utils[i], b.keys[i], b.utils[i])
							}
						}
						if g.evals != b.evals || g.checks != b.checks || g.hits != b.hits {
							t.Errorf("seed=%d mmap=%v workers=%d %s/%s: counters (%d,%d,%d), want (%d,%d,%d)",
								cfg.Seed, !opt.NoMmap, workers, mname, name,
								g.evals, g.checks, g.hits, b.evals, b.checks, b.hits)
						}
					}
				}
			}
			st.Close()
		}
	}
}
