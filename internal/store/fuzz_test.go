package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"qporder/internal/workload"
)

// FuzzSegmentDecode throws arbitrary bytes at both file parsers. The
// invariants: never panic; a successful segment-header decode must
// re-encode to the identical header bytes (the parser accepts only
// canonical headers); a successful catalog decode must satisfy the
// structural validator and survive re-encoding.
func FuzzSegmentDecode(f *testing.F) {
	// Seed with a well-formed store so the fuzzer starts from valid
	// framing, plus targeted truncations and field mutations.
	dir := f.TempDir()
	d := workload.Generate(workload.Config{QueryLen: 2, BucketSize: 3, Universe: 128, Zones: 2, Seed: 1})
	if err := WriteDomain(dir, d); err != nil {
		f.Fatal(err)
	}
	seg, err := os.ReadFile(filepath.Join(dir, SegmentsFile))
	if err != nil {
		f.Fatal(err)
	}
	cat, err := os.ReadFile(filepath.Join(dir, CatalogFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seg[:segHeaderLen])
	f.Add(seg[:PageSize])
	f.Add(cat)
	f.Add(cat[:catHeaderLen])
	f.Add([]byte(SegmentMagic))
	f.Add([]byte(CatalogMagic))
	f.Add([]byte{})
	mut := append([]byte(nil), seg[:segHeaderLen]...)
	mut[16] = 0xff // universe low byte
	f.Add(mut)

	f.Fuzz(func(t *testing.T, b []byte) {
		if h, err := DecodeSegmentHeader(b); err == nil {
			enc := encodeSegmentHeader(h)
			if !bytes.Equal(enc[:], b[:segHeaderLen]) {
				t.Fatalf("accepted non-canonical segment header: % x", b[:segHeaderLen])
			}
			if h.FileSize() <= int64(PageSize) {
				t.Fatalf("accepted header implies file size %d", h.FileSize())
			}
		}
		if c, err := DecodeCatalog(b); err == nil {
			if err := c.validate(); err != nil {
				t.Fatalf("accepted catalog fails validation: %v", err)
			}
			if _, err := EncodeCatalog(c); err != nil {
				t.Fatalf("accepted catalog cannot re-encode: %v", err)
			}
		}
	})
}
