// Package store persists a generated domain as two checksummed files:
// a segment file holding every source's answer bitset as a page-aligned
// little-endian word run (mmap-able, so the fused bitset kernels stream
// directly over mapped memory), and a statistics catalog holding
// everything else the orderers consume — per-source cardinality, cost
// terms, zone, overlap rows, the mediated query, and the generating
// configuration. A store-backed domain is bit-for-bit equivalent to the
// in-memory domain it was written from: the same coverage words, the
// same float64 statistics, the same overlap verdicts. See README
// "Storage" and DESIGN.md §9.
//
// Segment file layout (segments.qps), all integers little-endian:
//
//	page 0          header (64 bytes used, zero-padded to PageSize)
//	  [0,8)    magic "QPSEGV1\n"
//	  [8,12)   format version (1)
//	  [12,16)  page size in bytes
//	  [16,24)  universe size in bits
//	  [24,32)  source count
//	  [32,40)  words per run  = ceil(universe/64)
//	  [40,48)  pages per run  = ceil(words*8/pageSize)
//	  [48,52)  data CRC32C over file[56:] (header padding + all runs)
//	  [52,56)  header CRC32C over bytes [0,52)
//	page 1+i*pagesPerRun   run of source i: words as uint64 LE, page-padded
//
// Catalog file layout (catalog.qpc):
//
//	[0,8)    magic "QPCATV1\n"
//	[8,12)   format version (1)
//	[12,16)  body length in bytes
//	[16,20)  body CRC32C
//	[20,24)  header CRC32C over bytes [0,20)
//	[24,...) JSON body (Catalog)
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"qporder/internal/bitset"
	"qporder/internal/lav"
	"qporder/internal/workload"
)

const (
	// SegmentMagic and CatalogMagic open the two files.
	SegmentMagic = "QPSEGV1\n"
	CatalogMagic = "QPCATV1\n"
	// FormatVersion is the schema version of both files; readers reject
	// versions they do not understand.
	FormatVersion = 1
	// PageSize is the run alignment quantum and the unit of the
	// page-touch tracker. 4 KiB matches the common OS page.
	PageSize = 4096
	// SegmentsFile and CatalogFile are the fixed file names inside a
	// store directory.
	SegmentsFile = "segments.qps"
	CatalogFile  = "catalog.qpc"

	segHeaderLen  = 56 // bytes [0,segHeaderLen) of page 0 carry the header
	segHeaderCRC  = 52 // offset of the header checksum
	segDataStart  = 56 // dataCRC covers file[segDataStart:]
	catHeaderLen  = 24
	catHeaderCRC  = 20
	maxUniverse   = 1 << 40 // sanity bound: 128 GiB of words per run
	maxSources    = 1 << 24
	maxCatalogLen = 1 << 30 // sanity bound on the JSON body
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SegmentHeader is the decoded fixed-size header of a segment file.
type SegmentHeader struct {
	Version     uint32
	PageSize    uint32
	Universe    uint64
	Sources     uint64
	WordsPerRun uint64
	PagesPerRun uint64
	DataCRC     uint32
}

// encodeSegmentHeader renders h into the first segHeaderLen bytes of
// page 0, computing the header checksum.
func encodeSegmentHeader(h SegmentHeader) [segHeaderLen]byte {
	var b [segHeaderLen]byte
	copy(b[0:8], SegmentMagic)
	binary.LittleEndian.PutUint32(b[8:12], h.Version)
	binary.LittleEndian.PutUint32(b[12:16], h.PageSize)
	binary.LittleEndian.PutUint64(b[16:24], h.Universe)
	binary.LittleEndian.PutUint64(b[24:32], h.Sources)
	binary.LittleEndian.PutUint64(b[32:40], h.WordsPerRun)
	binary.LittleEndian.PutUint64(b[40:48], h.PagesPerRun)
	binary.LittleEndian.PutUint32(b[48:52], h.DataCRC)
	binary.LittleEndian.PutUint32(b[52:56], crc32.Checksum(b[:segHeaderCRC], castagnoli))
	return b
}

// DecodeSegmentHeader parses and validates the fixed-size segment
// header from the start of a segment file. It checks the magic, the
// header checksum, the version, and the internal consistency of the
// geometry fields; it does NOT read or checksum the data pages (that is
// Verify's job — decoding must stay O(1) so Open never faults the
// mapping).
func DecodeSegmentHeader(b []byte) (SegmentHeader, error) {
	var h SegmentHeader
	if len(b) < segHeaderLen {
		return h, fmt.Errorf("store: segment header truncated: %d bytes, want %d", len(b), segHeaderLen)
	}
	if string(b[0:8]) != SegmentMagic {
		return h, fmt.Errorf("store: bad segment magic %q", b[0:8])
	}
	if got, want := binary.LittleEndian.Uint32(b[52:56]), crc32.Checksum(b[:segHeaderCRC], castagnoli); got != want {
		return h, fmt.Errorf("store: segment header checksum mismatch: file %08x, computed %08x", got, want)
	}
	h.Version = binary.LittleEndian.Uint32(b[8:12])
	if h.Version != FormatVersion {
		return h, fmt.Errorf("store: unsupported segment format version %d (reader understands %d)", h.Version, FormatVersion)
	}
	h.PageSize = binary.LittleEndian.Uint32(b[12:16])
	h.Universe = binary.LittleEndian.Uint64(b[16:24])
	h.Sources = binary.LittleEndian.Uint64(b[24:32])
	h.WordsPerRun = binary.LittleEndian.Uint64(b[32:40])
	h.PagesPerRun = binary.LittleEndian.Uint64(b[40:48])
	h.DataCRC = binary.LittleEndian.Uint32(b[48:52])
	if h.PageSize != PageSize {
		return h, fmt.Errorf("store: segment page size %d, want %d", h.PageSize, PageSize)
	}
	if h.Universe == 0 || h.Universe > maxUniverse {
		return h, fmt.Errorf("store: segment universe %d out of range (0, %d]", h.Universe, uint64(maxUniverse))
	}
	if h.Sources == 0 || h.Sources > maxSources {
		return h, fmt.Errorf("store: segment source count %d out of range (0, %d]", h.Sources, uint64(maxSources))
	}
	if want := (h.Universe + 63) / 64; h.WordsPerRun != want {
		return h, fmt.Errorf("store: words per run %d, want %d for universe %d", h.WordsPerRun, want, h.Universe)
	}
	if want := (h.WordsPerRun*8 + PageSize - 1) / PageSize; h.PagesPerRun != want {
		return h, fmt.Errorf("store: pages per run %d, want %d for %d words", h.PagesPerRun, want, h.WordsPerRun)
	}
	return h, nil
}

// FileSize returns the exact byte size a well-formed segment file with
// this header must have: the header page plus one padded run per source.
// The geometry bounds enforced by DecodeSegmentHeader keep the product
// far below overflow.
func (h SegmentHeader) FileSize() int64 {
	return int64(PageSize) * (1 + int64(h.Sources)*int64(h.PagesPerRun))
}

// RunOffset returns the byte offset of source i's word run.
func (h SegmentHeader) RunOffset(i int) int64 {
	return int64(PageSize) * (1 + int64(i)*int64(h.PagesPerRun))
}

// SourceRecord is the per-source entry of the catalog body, in dense
// SourceID order (record index == SourceID).
type SourceRecord struct {
	Name string `json:"name"`
	// Bucket is the query subgoal this source belongs to.
	Bucket int `json:"bucket"`
	// Zone is the coverage zone (drives the similarity key).
	Zone int `json:"zone"`
	// Def is the LAV description in datalog syntax.
	Def string `json:"def"`
	// Cardinality is |coverage set|.
	Cardinality int `json:"cardinality"`
	// TrimmedWords is the number of backing words up to and including
	// the highest non-zero word of the coverage set.
	TrimmedWords int `json:"trimmed_words"`
	// Pages is the number of segment pages holding those words — the
	// source's resident footprint charged by the I/O-aware cost model.
	Pages int `json:"pages"`
	// CRC is the CRC32C of the source's full padded run bytes.
	CRC uint32 `json:"crc"`
	// Stats carries the cost-model terms. Go's float64 JSON encoding is
	// shortest-round-trip, so persisted statistics decode to the exact
	// bits that were generated.
	Stats lav.Stats `json:"stats"`
}

// Catalog is the JSON body of the catalog file: every non-bitset
// artifact a store-backed domain needs.
type Catalog struct {
	// SchemaVersion guards the JSON body independently of the framing
	// version (FormatVersion guards the binary envelope).
	SchemaVersion int `json:"schema_version"`
	// Config is the generating configuration (defaults applied), so a
	// catalog is self-describing and reproducible.
	Config workload.Config `json:"workload"`
	// Query is the mediated query in datalog syntax.
	Query string `json:"query"`
	// PageSize and Universe mirror the segment header; readers
	// cross-check the two files.
	PageSize int `json:"page_size"`
	Universe int `json:"universe"`
	// Sources lists every source in dense SourceID order.
	Sources []SourceRecord `json:"sources"`
	// OverlapRows persists the pairwise overlap relation: OverlapRows[a]
	// has bit b set iff sources a and b overlap, in the
	// coverage.OverlapRow layout. Priming the model from these rows lets
	// every independence probe be answered without faulting a page.
	OverlapRows [][]uint64 `json:"overlap_rows"`
}

// EncodeCatalog renders the catalog document with its binary envelope.
// Encoding is deterministic: struct-driven JSON field order and Go's
// shortest-round-trip float formatting.
func EncodeCatalog(c *Catalog) ([]byte, error) {
	body, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("store: encoding catalog: %w", err)
	}
	out := make([]byte, catHeaderLen+len(body))
	copy(out[0:8], CatalogMagic)
	binary.LittleEndian.PutUint32(out[8:12], FormatVersion)
	binary.LittleEndian.PutUint32(out[12:16], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[16:20], crc32.Checksum(body, castagnoli))
	binary.LittleEndian.PutUint32(out[20:24], crc32.Checksum(out[:catHeaderCRC], castagnoli))
	copy(out[catHeaderLen:], body)
	return out, nil
}

// DecodeCatalog parses and validates a catalog file: envelope checksums,
// version, exact body length, JSON body, and structural invariants
// (dense records, row/record count agreement, geometry cross-checks).
// Semantic validation against the segment data lives in Verify.
func DecodeCatalog(b []byte) (*Catalog, error) {
	if len(b) < catHeaderLen {
		return nil, fmt.Errorf("store: catalog truncated: %d bytes, want >= %d", len(b), catHeaderLen)
	}
	if string(b[0:8]) != CatalogMagic {
		return nil, fmt.Errorf("store: bad catalog magic %q", b[0:8])
	}
	if got, want := binary.LittleEndian.Uint32(b[20:24]), crc32.Checksum(b[:catHeaderCRC], castagnoli); got != want {
		return nil, fmt.Errorf("store: catalog header checksum mismatch: file %08x, computed %08x", got, want)
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != FormatVersion {
		return nil, fmt.Errorf("store: unsupported catalog format version %d (reader understands %d)", v, FormatVersion)
	}
	bodyLen := binary.LittleEndian.Uint32(b[12:16])
	if bodyLen > maxCatalogLen || int64(bodyLen) != int64(len(b)-catHeaderLen) {
		return nil, fmt.Errorf("store: catalog body length %d, file holds %d", bodyLen, len(b)-catHeaderLen)
	}
	body := b[catHeaderLen:]
	if got, want := binary.LittleEndian.Uint32(b[16:20]), crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("store: catalog body checksum mismatch: file %08x, computed %08x", got, want)
	}
	var c Catalog
	if err := json.Unmarshal(body, &c); err != nil {
		return nil, fmt.Errorf("store: decoding catalog body: %w", err)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// validate checks the structural invariants of a decoded catalog body.
func (c *Catalog) validate() error {
	if c.SchemaVersion != FormatVersion {
		return fmt.Errorf("store: catalog schema version %d, want %d", c.SchemaVersion, FormatVersion)
	}
	if c.PageSize != PageSize {
		return fmt.Errorf("store: catalog page size %d, want %d", c.PageSize, PageSize)
	}
	if c.Universe <= 0 || c.Universe > maxUniverse {
		return fmt.Errorf("store: catalog universe %d out of range", c.Universe)
	}
	n := len(c.Sources)
	if n == 0 || n > maxSources {
		return fmt.Errorf("store: catalog source count %d out of range", n)
	}
	if len(c.OverlapRows) != n {
		return fmt.Errorf("store: %d overlap rows for %d sources", len(c.OverlapRows), n)
	}
	rowWords := (n + 63) / 64
	perBucket := make(map[int]int)
	buckets := 0
	for i, rec := range c.Sources {
		if rec.Name == "" {
			return fmt.Errorf("store: source %d has no name", i)
		}
		if rec.Bucket < 0 || rec.Bucket >= n {
			return fmt.Errorf("store: source %d bucket %d out of range", i, rec.Bucket)
		}
		perBucket[rec.Bucket]++
		if rec.Bucket >= buckets {
			buckets = rec.Bucket + 1
		}
		if rec.Cardinality < 0 || rec.Cardinality > c.Universe {
			return fmt.Errorf("store: source %d cardinality %d out of range [0,%d]", i, rec.Cardinality, c.Universe)
		}
		maxWords := (c.Universe + 63) / 64
		if rec.TrimmedWords < 0 || rec.TrimmedWords > maxWords {
			return fmt.Errorf("store: source %d trimmed words %d out of range [0,%d]", i, rec.TrimmedWords, maxWords)
		}
		if len(c.OverlapRows[i]) != rowWords {
			return fmt.Errorf("store: overlap row %d has %d words, want %d", i, len(c.OverlapRows[i]), rowWords)
		}
	}
	if c.Config.QueryLen != buckets {
		return fmt.Errorf("store: catalog query length %d but records span %d buckets", c.Config.QueryLen, buckets)
	}
	for b := 0; b < buckets; b++ {
		if perBucket[b] == 0 {
			return fmt.Errorf("store: bucket %d has no sources", b)
		}
	}
	return nil
}

// Buckets reconstructs the per-subgoal source ID lists from the records,
// in the registration order Generate used (dense IDs ascending within
// each bucket).
func (c *Catalog) Buckets() [][]lav.SourceID {
	out := make([][]lav.SourceID, c.Config.QueryLen)
	for i, rec := range c.Sources {
		out[rec.Bucket] = append(out[rec.Bucket], lav.SourceID(i))
	}
	return out
}

// ResidentPages returns the number of PageSize segment pages that hold a
// set's trimmed words — the resident footprint of reading that source's
// run. Identical for an in-memory set and its store-backed view (both
// trim to the same highest non-zero word), which is what keeps the
// I/O-aware cost model byte-deterministic across backends.
func ResidentPages(s *bitset.Set) int {
	return (s.TrimmedLen()*8 + PageSize - 1) / PageSize
}
