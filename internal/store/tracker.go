package store

import "sync"

// tracker is the LRU page-touch simulator behind the store's cold/warm
// accounting. Every hot-path read of a source's answer set "touches"
// that source's resident pages; a touch of a page not currently in the
// tracked set is a fault (a cold read that would hit disk), a touch of
// a tracked page is a hit (the page is warm). With a finite capacity
// the least-recently-touched page is evicted when a new one enters, so
// long scans over catalogs larger than the cache re-fault exactly the
// way a real page cache would.
//
// The tracker models I/O, it does not perform it: the mmap'ed data is
// always readable regardless of tracker state.
type tracker struct {
	mu       sync.Mutex
	capacity int // max tracked pages; <=0 means unbounded
	pages    map[int64]*pageNode
	head     *pageNode // most recently touched
	tail     *pageNode // least recently touched
	faults   int64
	hits     int64
}

type pageNode struct {
	page       int64
	prev, next *pageNode
}

func newTracker(capacity int) *tracker {
	return &tracker{capacity: capacity, pages: make(map[int64]*pageNode)}
}

// touchRange touches pages [first, first+count) in ascending order and
// returns the number of faults and hits incurred.
func (t *tracker) touchRange(first int64, count int) (faults, hits int64) {
	if count <= 0 {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for p := first; p < first+int64(count); p++ {
		if n, ok := t.pages[p]; ok {
			t.hits++
			hits++
			t.moveToFront(n)
			continue
		}
		t.faults++
		faults++
		n := &pageNode{page: p}
		t.pages[p] = n
		t.pushFront(n)
		if t.capacity > 0 && len(t.pages) > t.capacity {
			evict := t.tail
			t.unlink(evict)
			delete(t.pages, evict.page)
		}
	}
	return faults, hits
}

// reset drops all tracked pages (a cold restart) without clearing the
// cumulative fault/hit counters.
func (t *tracker) reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pages = make(map[int64]*pageNode)
	t.head, t.tail = nil, nil
}

// resident returns the number of currently tracked (warm) pages.
func (t *tracker) resident() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pages)
}

// counters returns the cumulative fault and hit counts.
func (t *tracker) counters() (faults, hits int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.faults, t.hits
}

func (t *tracker) pushFront(n *pageNode) {
	n.prev = nil
	n.next = t.head
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
}

func (t *tracker) unlink(n *pageNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (t *tracker) moveToFront(n *pageNode) {
	if t.head == n {
		return
	}
	t.unlink(n)
	t.pushFront(n)
}
