//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package store

import "os"

// mapFile always reports ok=false on platforms without the syscall.Mmap
// surface; Open falls back to reading the file into memory.
func mapFile(_ *os.File, _ int64) (data []byte, unmap func() error, ok bool) {
	return nil, nil, false
}
