package store

import (
	"fmt"

	"qporder/internal/coverage"
	"qporder/internal/lav"
	"qporder/internal/schema"
	"qporder/internal/workload"
)

// LoadCatalog opens only the catalog file and rebuilds the lav source
// registry and mediated query from it — the light path for consumers
// that never touch answer sets (qporder and qpserved build their
// execution worlds from source definitions and statistics alone).
func LoadCatalog(dir string) (*lav.Catalog, *schema.Query, error) {
	st, err := Open(dir)
	if err != nil {
		return nil, nil, err
	}
	defer st.Close()
	cat, query, err := buildLav(st.cat)
	if err != nil {
		return nil, nil, err
	}
	return cat, query, nil
}

// buildLav rebuilds the source registry and query from a decoded
// catalog document. Records are registered in order, so minted IDs
// equal record indices.
func buildLav(c *Catalog) (*lav.Catalog, *schema.Query, error) {
	query, err := schema.ParseQuery(c.Query)
	if err != nil {
		return nil, nil, fmt.Errorf("store: catalog query: %w", err)
	}
	cat := lav.NewCatalog()
	for i, rec := range c.Sources {
		var def *schema.Query
		if rec.Def != "" {
			def, err = schema.ParseQuery(rec.Def)
			if err != nil {
				return nil, nil, fmt.Errorf("store: source %s def: %w", rec.Name, err)
			}
		}
		src, err := cat.Add(rec.Name, def, rec.Stats)
		if err != nil {
			return nil, nil, fmt.Errorf("store: rebuilding catalog: %w", err)
		}
		if int(src.ID) != i {
			return nil, nil, fmt.Errorf("store: source %s minted ID %d, want %d", rec.Name, src.ID, i)
		}
	}
	return cat, query, nil
}

// Load opens the store and rebuilds a fully store-backed
// workload.Domain over it: the coverage model's sets are zero-copy
// views into the mapped segment file, the overlap memo is primed from
// the catalog's persisted rows, per-source statistics come from the
// catalog records, and every hot-path set read drives the store's LRU
// page-touch tracker. The returned Store owns the mapping — it must
// stay open for as long as the domain is in use, and Close invalidates
// the domain's coverage sets.
//
// A loaded domain is bit-for-bit equivalent to the in-memory domain the
// store was written from: identical coverage words, float64 statistics,
// similarity keys, and overlap verdicts, hence byte-identical orderer
// output and counters (internal/store/parity_test.go proves this for
// every orderer at parallelism 1 and 8).
func Load(dir string, opt Options) (*Store, *workload.Domain, error) {
	st, err := OpenOptions(dir, opt)
	if err != nil {
		return nil, nil, err
	}
	cat, query, err := buildLav(st.cat)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	n := st.NumSources()
	model := coverage.NewModel(st.Universe())
	zone := make(map[lav.SourceID]int, n)
	setSize := make(map[lav.SourceID]int, n)
	for i := 0; i < n; i++ {
		id := lav.SourceID(i)
		model.SetCoverage(id, st.AnswerSet(i))
		zone[id] = st.cat.Sources[i].Zone
		setSize[id] = st.cat.Sources[i].Cardinality
	}
	primed := model.PrimeOverlap(st.cat.OverlapRows)
	// One catalog hit per statistics record served plus one per primed
	// overlap row (n rows when the dense memo accepted them).
	rowHits := 0
	if primed > 0 {
		rowHits = n
	}
	st.countCatalogHits(int64(n + rowHits))
	model.SetTouch(func(id lav.SourceID) { st.TouchSource(int(id)) })
	d := workload.Rehydrate(st.cat.Config, cat, st.cat.Buckets(), model, query, zone, setSize)
	return st, d, nil
}
