package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"qporder/internal/lav"
	"qporder/internal/workload"
)

// WriteDomain persists a generated domain into dir as a segment file
// plus a statistics catalog. The write is deterministic — the same
// domain always produces byte-identical files — and atomic per file
// (tmp + rename), so a crashed writer never leaves a half-valid store
// that passes checksums.
func WriteDomain(dir string, d *workload.Domain) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: creating %s: %w", dir, err)
	}
	n := d.Catalog.Len()
	if n == 0 {
		return fmt.Errorf("store: domain has no sources")
	}
	universe := d.Coverage.Universe()
	words := (universe + 63) / 64
	pagesPer := (words*8 + PageSize - 1) / PageSize

	// Segment file: header page then one padded run per source, in dense
	// ID order.
	size := PageSize * (1 + n*pagesPer)
	buf := make([]byte, size)
	cat := &Catalog{
		SchemaVersion: FormatVersion,
		Config:        d.Config,
		Query:         d.Query.String(),
		PageSize:      PageSize,
		Universe:      universe,
		Sources:       make([]SourceRecord, n),
		OverlapRows:   make([][]uint64, n),
	}
	bucketOf := make(map[lav.SourceID]int, n)
	for b, ids := range d.Buckets {
		for _, id := range ids {
			bucketOf[id] = b
		}
	}
	for i := 0; i < n; i++ {
		id := lav.SourceID(i)
		src := d.Catalog.Source(id)
		if !d.Coverage.Has(id) {
			return fmt.Errorf("store: source %s has no coverage set", src.Name)
		}
		set := d.Coverage.Set(id)
		if set.Len() != universe {
			return fmt.Errorf("store: source %s set capacity %d != universe %d", src.Name, set.Len(), universe)
		}
		run := buf[int(PageSize)*(1+i*pagesPer):]
		for w, word := range set.Words() {
			binary.LittleEndian.PutUint64(run[w*8:], word)
		}
		def := ""
		if src.Def != nil {
			def = src.Def.String()
		}
		bucket, ok := bucketOf[id]
		if !ok {
			return fmt.Errorf("store: source %s belongs to no bucket", src.Name)
		}
		cat.Sources[i] = SourceRecord{
			Name:         src.Name,
			Bucket:       bucket,
			Zone:         d.Zone(id),
			Def:          def,
			Cardinality:  set.Count(),
			TrimmedWords: set.TrimmedLen(),
			Pages:        ResidentPages(set),
			CRC:          crc32.Checksum(run[:pagesPer*PageSize], castagnoli),
			Stats:        src.Stats,
		}
	}
	rowWords := (n + 63) / 64
	for a := 0; a < n; a++ {
		row := make([]uint64, rowWords)
		d.Coverage.OverlapRow(lav.SourceID(a), row)
		cat.OverlapRows[a] = row
	}

	hdr := SegmentHeader{
		Version:     FormatVersion,
		PageSize:    PageSize,
		Universe:    uint64(universe),
		Sources:     uint64(n),
		WordsPerRun: uint64(words),
		PagesPerRun: uint64(pagesPer),
		DataCRC:     crc32.Checksum(buf[segDataStart:], castagnoli),
	}
	enc := encodeSegmentHeader(hdr)
	copy(buf, enc[:])

	catBytes, err := EncodeCatalog(cat)
	if err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(dir, SegmentsFile), buf); err != nil {
		return err
	}
	return writeAtomic(filepath.Join(dir, CatalogFile), catBytes)
}

// writeAtomic writes data to path via a same-directory temp file and
// rename, fsyncing the file before the swap.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: creating temp for %s: %w", path, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: publishing %s: %w", path, err)
	}
	return nil
}
