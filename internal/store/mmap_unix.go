//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package store

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. On success the returned
// cleanup unmaps; ok=false means the platform call failed and the
// caller should fall back to reading a copy (e.g. filesystems that
// reject mmap). Mapping is read-only by contract: every Set handed out
// by the store is a view over this memory, and mutating a view would
// fault — see DESIGN.md §9.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, ok bool) {
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, false
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false
	}
	return b, func() error { return syscall.Munmap(b) }, true
}
