package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"os"
	"path/filepath"

	"qporder/internal/schema"
)

// Report summarizes a successful verification.
type Report struct {
	Sources  int
	Universe int
	// SegmentBytes and CatalogBytes are the two file sizes.
	SegmentBytes int64
	CatalogBytes int64
	// PagesPerRun is each source's padded run length in pages.
	PagesPerRun int
	// OverlapPairs is the number of (a<=b) overlap verdicts recomputed
	// from the runs and matched against the catalog rows.
	OverlapPairs int
}

// Verify exhaustively checks a store directory: every checksum (segment
// header, whole-file data CRC, per-run CRCs, catalog envelope), exact
// file sizes, cross-file geometry, per-record invariants (cardinality,
// trimmed words, resident pages recomputed from the run words; padding
// and out-of-universe bits zero; statistics validate; definitions and
// query parse), and the full pairwise overlap relation recomputed from
// the runs against the persisted rows. Any single corrupted byte in
// either file fails verification — scripts/store_smoke.sh flips one bit
// to prove it.
//
// Verify reads both files into memory; it is the integrity tool, not
// the serving path (Open stays O(1)).
func Verify(dir string) (*Report, error) {
	catBytes, err := os.ReadFile(filepath.Join(dir, CatalogFile))
	if err != nil {
		return nil, fmt.Errorf("store: reading catalog: %w", err)
	}
	cat, err := DecodeCatalog(catBytes)
	if err != nil {
		return nil, err
	}
	segBytes, err := os.ReadFile(filepath.Join(dir, SegmentsFile))
	if err != nil {
		return nil, fmt.Errorf("store: reading segments: %w", err)
	}
	hdr, err := DecodeSegmentHeader(segBytes)
	if err != nil {
		return nil, err
	}
	if int64(len(segBytes)) != hdr.FileSize() {
		return nil, fmt.Errorf("store: segment file is %d bytes, header implies %d", len(segBytes), hdr.FileSize())
	}
	if got := crc32.Checksum(segBytes[segDataStart:], castagnoli); got != hdr.DataCRC {
		return nil, fmt.Errorf("store: segment data checksum mismatch: header %08x, computed %08x", hdr.DataCRC, got)
	}
	// Header-page padding must be zero (it is covered by the data CRC,
	// but a canonical writer also keeps it zero).
	for i := segHeaderLen; i < PageSize; i++ {
		if segBytes[i] != 0 {
			return nil, fmt.Errorf("store: non-zero header padding at byte %d", i)
		}
	}
	if int(hdr.Universe) != cat.Universe {
		return nil, fmt.Errorf("store: segment universe %d != catalog universe %d", hdr.Universe, cat.Universe)
	}
	n := len(cat.Sources)
	if int(hdr.Sources) != n {
		return nil, fmt.Errorf("store: segment holds %d sources, catalog %d", hdr.Sources, n)
	}

	if _, err := schema.ParseQuery(cat.Query); err != nil {
		return nil, fmt.Errorf("store: catalog query: %w", err)
	}

	words := int(hdr.WordsPerRun)
	pagesPer := int(hdr.PagesPerRun)
	runBytes := pagesPer * PageSize
	universe := int(hdr.Universe)
	runs := make([][]uint64, n)
	for i, rec := range cat.Sources {
		raw := segBytes[hdr.RunOffset(i) : hdr.RunOffset(i)+int64(runBytes)]
		if got := crc32.Checksum(raw, castagnoli); got != rec.CRC {
			return nil, fmt.Errorf("store: source %s run checksum mismatch: catalog %08x, computed %08x", rec.Name, rec.CRC, got)
		}
		run := make([]uint64, words)
		card, trimmed := 0, 0
		for w := range run {
			v := binary.LittleEndian.Uint64(raw[w*8:])
			run[w] = v
			card += bits.OnesCount64(v)
			if v != 0 {
				trimmed = w + 1
			}
		}
		// Bits at or above the universe inside the last word, and all
		// padding beyond the word run, must be zero.
		if tail := universe % 64; tail != 0 && words > 0 && run[words-1]>>uint(tail) != 0 {
			return nil, fmt.Errorf("store: source %s has bits beyond the universe", rec.Name)
		}
		for b := words * 8; b < runBytes; b++ {
			if raw[b] != 0 {
				return nil, fmt.Errorf("store: source %s has non-zero run padding at byte %d", rec.Name, b)
			}
		}
		if card != rec.Cardinality {
			return nil, fmt.Errorf("store: source %s cardinality %d, catalog says %d", rec.Name, card, rec.Cardinality)
		}
		if trimmed != rec.TrimmedWords {
			return nil, fmt.Errorf("store: source %s trimmed words %d, catalog says %d", rec.Name, trimmed, rec.TrimmedWords)
		}
		if wantPages := (trimmed*8 + PageSize - 1) / PageSize; wantPages != rec.Pages {
			return nil, fmt.Errorf("store: source %s resident pages %d, catalog says %d", rec.Name, wantPages, rec.Pages)
		}
		if card == 0 {
			return nil, fmt.Errorf("store: source %s covers nothing (plans through it are unexecutable)", rec.Name)
		}
		if err := rec.Stats.Validate(); err != nil {
			return nil, fmt.Errorf("store: source %s: %w", rec.Name, err)
		}
		if rec.Def != "" {
			if _, err := schema.ParseQuery(rec.Def); err != nil {
				return nil, fmt.Errorf("store: source %s def: %w", rec.Name, err)
			}
		}
		runs[i] = run
	}

	// Recompute the full pairwise overlap relation and require exact
	// agreement (both directions of each symmetric pair) with the rows.
	pairs := 0
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			got := overlaps(runs[a], runs[b])
			if rowBit(cat.OverlapRows[a], b) != got || rowBit(cat.OverlapRows[b], a) != got {
				return nil, fmt.Errorf("store: overlap row disagrees with runs for sources %s, %s",
					cat.Sources[a].Name, cat.Sources[b].Name)
			}
			pairs++
		}
	}

	return &Report{
		Sources:      n,
		Universe:     universe,
		SegmentBytes: int64(len(segBytes)),
		CatalogBytes: int64(len(catBytes)),
		PagesPerRun:  pagesPer,
		OverlapPairs: pairs,
	}, nil
}

func overlaps(a, b []uint64) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

func rowBit(row []uint64, b int) bool {
	return row[b/64]&(1<<uint(b%64)) != 0
}
