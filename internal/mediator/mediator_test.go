package mediator

import (
	"fmt"
	"testing"

	"qporder/internal/costmodel"
	"qporder/internal/execsim"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/schema"
)

// fixture builds the movie mediator with simulated contents.
func fixture(t *testing.T) (Config, *execsim.Engine, *execsim.DB) {
	t.Helper()
	cat := lav.NewCatalog()
	stats := lav.Stats{Tuples: 50, TransmitCost: 1, Overhead: 10}
	for _, d := range []string{
		"V1(A, M) :- play-in(A, M), american(M)",
		"V3(A, M) :- play-in(A, M)",
		"V4(R, M) :- review-of(R, M)",
		"V5(R, M) :- review-of(R, M)",
	} {
		def := schema.MustParseQuery(d)
		cat.MustAdd(def.Name, def, stats)
	}
	world := execsim.GenerateWorld(execsim.WorldConfig{
		Relations: []execsim.RelationSpec{
			{Name: "play-in", Arity: 2}, {Name: "review-of", Arity: 2}, {Name: "american", Arity: 1},
		},
		TuplesPerRelation: 40,
		DomainSize:        9,
		Seed:              6,
	})
	store := execsim.PopulateSources(cat, world, 0.9, 7)
	cfg := Config{
		Catalog: cat,
		Query:   schema.MustParseQuery("Q(M, R) :- play-in(A, M), review-of(R, M)"),
		Measure: func(entries *lav.Catalog) measure.Measure {
			return costmodel.NewChainCost(entries, costmodel.Params{N: 10000})
		},
	}
	return cfg, execsim.NewEngine(cat, store), &world
}

func TestRunToExhaustion(t *testing.T) {
	cfg, eng, world := fixture(t)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(eng, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopExhausted {
		t.Errorf("Stopped = %s", res.Stopped)
	}
	// 2 sources per bucket -> 4 sound plans.
	if len(res.Executed) != 4 {
		t.Errorf("executed %d plans, want 4", len(res.Executed))
	}
	// Utilities non-increasing (chain cost is unconditional).
	for i := 1; i < len(res.Utilities); i++ {
		if res.Utilities[i] > res.Utilities[i-1]+1e-9 {
			t.Errorf("utilities increased at %d: %v", i, res.Utilities)
		}
	}
	// All answers are query answers.
	qa := execsim.NewAnswerSet()
	qa.Add(execsim.Eval(cfg.Query, *world))
	for _, a := range res.Answers.Atoms() {
		if !qa.Contains(schema.Atom{Pred: "Q", Args: a.Args}) {
			t.Errorf("non-answer %v", a)
		}
	}
	if res.Evals == 0 || res.Cost <= 0 {
		t.Error("instrumentation empty")
	}
}

func TestBudgets(t *testing.T) {
	cases := []struct {
		budget Budget
		want   StopReason
	}{
		{Budget{MaxPlans: 1}, StopMaxPlans},
		{Budget{MaxCost: 1}, StopMaxCost},
		{Budget{MinAnswers: 1}, StopMinAnswers},
	}
	for _, c := range cases {
		cfg, eng, _ := fixture(t)
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(eng, c.budget)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stopped != c.want {
			t.Errorf("budget %+v: stopped %s, want %s", c.budget, res.Stopped, c.want)
		}
		if len(res.Executed) == 0 {
			t.Errorf("budget %+v: nothing executed", c.budget)
		}
	}
}

func TestRunContinuesAcrossBudgets(t *testing.T) {
	cfg, eng, _ := fixture(t)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sys.Run(eng, Budget{MaxPlans: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Run(eng, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Executed)+len(r2.Executed) != 4 {
		t.Errorf("runs executed %d + %d plans, want 4 total", len(r1.Executed), len(r2.Executed))
	}
	// No plan executed twice.
	seen := map[string]bool{}
	for _, pq := range append(append([]*schema.Query{}, r1.Executed...), r2.Executed...) {
		k := pq.String()
		if seen[k] {
			t.Errorf("plan %s executed twice", k)
		}
		seen[k] = true
	}
}

func TestPrefetchMatchesSynchronous(t *testing.T) {
	run := func(prefetch bool) *Result {
		cfg, eng, _ := fixture(t)
		cfg.Prefetch = prefetch
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(eng, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if len(a.Executed) != len(b.Executed) || a.Answers.Len() != b.Answers.Len() {
		t.Fatalf("prefetch changed results: %d/%d vs %d/%d plans/answers",
			len(a.Executed), a.Answers.Len(), len(b.Executed), b.Answers.Len())
	}
	for i := range a.Executed {
		if a.Executed[i].String() != b.Executed[i].String() {
			t.Errorf("plan %d differs: %s vs %s", i, a.Executed[i], b.Executed[i])
		}
	}
}

func TestAutoAlgorithmSelection(t *testing.T) {
	cfg, _, _ := fixture(t)

	cases := []struct {
		measure func(*lav.Catalog) measure.Measure
		want    string
	}{
		{func(c *lav.Catalog) measure.Measure { return costmodel.NewLinearCost(c) }, "*core.Greedy"},
		{func(c *lav.Catalog) measure.Measure {
			return costmodel.NewChainCost(c, costmodel.Params{N: 100})
		}, "*core.Streamer"},
		{func(c *lav.Catalog) measure.Measure {
			return costmodel.NewChainCost(c, costmodel.Params{N: 100, Caching: true})
		}, "*core.IDrips"},
	}
	for _, c := range cases {
		cfg.Measure = c.measure
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := typeName(sys.Orderer()); got != c.want {
			t.Errorf("auto selected %s, want %s", got, c.want)
		}
	}
}

func typeName(v interface{}) string {
	return fmt.Sprintf("%T", v)
}

func TestReformulators(t *testing.T) {
	for _, r := range []Reformulator{Buckets, InverseRules, MiniCon} {
		cfg, eng, _ := fixture(t)
		cfg.Reformulator = r
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", r, err)
		}
		res, err := sys.Run(eng, Budget{})
		if err != nil {
			t.Fatalf("%s: %v", r, err)
		}
		if len(res.Executed) != 4 {
			t.Errorf("%s: executed %d plans, want 4", r, len(res.Executed))
		}
	}
}

func TestPhysicalExecutionMatchesLogical(t *testing.T) {
	run := func(physical bool) *Result {
		cfg, eng, _ := fixture(t)
		cfg.Physical = physical
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(eng, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if a.Answers.Len() != b.Answers.Len() {
		t.Errorf("physical execution changed answers: %d vs %d", a.Answers.Len(), b.Answers.Len())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg, _, _ := fixture(t)
	cfg.Reformulator = "nope"
	if _, err := New(cfg); err == nil {
		t.Error("unknown reformulator accepted")
	}
	cfg, _, _ = fixture(t)
	cfg.Algorithm = "nope"
	if _, err := New(cfg); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// Greedy forced on a non-monotonic measure must fail.
	cfg, _, _ = fixture(t)
	cfg.Algorithm = Greedy
	if _, err := New(cfg); err == nil {
		t.Error("Greedy accepted for chain cost")
	}
}

// TestObservedRun checks the Config.Obs wiring: phase spans and pipeline
// counters populate, the time-to-first-answer gauge is set, and a Run
// after exhaustion neither calls Next again nor executes more plans.
func TestObservedRun(t *testing.T) {
	cfg, eng, _ := fixture(t)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(eng, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped != StopExhausted {
		t.Fatalf("Stopped = %s", res.Stopped)
	}

	executed := reg.Counter("mediator.plans_executed").Value()
	if executed != int64(len(res.Executed)) {
		t.Errorf("plans_executed = %d, want %d", executed, len(res.Executed))
	}
	if res.Answers.Len() > 0 && reg.Gauge("mediator.time_to_first_answer_ns").Value() <= 0 {
		t.Error("time_to_first_answer_ns not set")
	}
	if v := reg.Counter("execsim.source_calls").Value(); v == 0 {
		t.Error("execsim.source_calls = 0")
	}

	spans := map[string]bool{}
	for _, st := range reg.Tracer().Stats() {
		spans[st.Name] = true
	}
	for _, name := range []string{
		"mediator/reformulate", "mediator/build-orderer",
		"mediator/order", "mediator/soundness", "mediator/execute",
	} {
		if !spans[name] {
			t.Errorf("span %q missing (have %v)", name, spans)
		}
	}

	// Run after exhaustion: the orderer must not be poked again.
	calls := reg.Counter("core.streamer.next_calls").Value() +
		reg.Counter("core.idrips.next_calls").Value() +
		reg.Counter("core.greedy.next_calls").Value() +
		reg.Counter("core.pi.next_calls").Value()
	res2, err := sys.Run(eng, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	after := reg.Counter("core.streamer.next_calls").Value() +
		reg.Counter("core.idrips.next_calls").Value() +
		reg.Counter("core.greedy.next_calls").Value() +
		reg.Counter("core.pi.next_calls").Value()
	if after != calls {
		t.Errorf("Next called %d more times after exhaustion", after-calls)
	}
	if res2.Stopped != StopExhausted || len(res2.Executed) != 0 {
		t.Errorf("post-exhaustion Run: stopped=%s executed=%d", res2.Stopped, len(res2.Executed))
	}
}
