package mediator

import (
	"sync"
	"testing"

	"qporder/internal/costmodel"
	"qporder/internal/execsim"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/schema"
)

func chainMeasure(entries *lav.Catalog) measure.Measure {
	return costmodel.NewChainCost(entries, costmodel.Params{N: 10000})
}

// wideFixture extends the movie fixture with more sources per bucket so
// the pipeline and the orderer's parallel paths have real work.
func wideFixture(t *testing.T) (Config, func() *execsim.Engine) {
	t.Helper()
	cat := lav.NewCatalog()
	stats := func(tuples float64) lav.Stats {
		return lav.Stats{Tuples: tuples, TransmitCost: 1, Overhead: 10}
	}
	defs := []struct {
		def    string
		tuples float64
	}{
		{"V1(A, M) :- play-in(A, M), american(M)", 50},
		{"V2(A, M) :- play-in(A, M)", 35},
		{"V3(A, M) :- play-in(A, M)", 80},
		{"V4(R, M) :- review-of(R, M)", 50},
		{"V5(R, M) :- review-of(R, M)", 20},
		{"V6(R, M) :- review-of(R, M)", 65},
		{"V7(R, M) :- review-of(R, M)", 45},
	}
	for _, d := range defs {
		def := schema.MustParseQuery(d.def)
		cat.MustAdd(def.Name, def, stats(d.tuples))
	}
	world := execsim.GenerateWorld(execsim.WorldConfig{
		Relations: []execsim.RelationSpec{
			{Name: "play-in", Arity: 2}, {Name: "review-of", Arity: 2}, {Name: "american", Arity: 1},
		},
		TuplesPerRelation: 40,
		DomainSize:        9,
		Seed:              6,
	})
	store := execsim.PopulateSources(cat, world, 0.9, 7)
	cfg := Config{
		Catalog: cat,
		Query:   schema.MustParseQuery("Q(M, R) :- play-in(A, M), review-of(R, M)"),
		Measure: chainMeasure,
	}
	return cfg, func() *execsim.Engine { return execsim.NewEngine(cat, store) }
}

// TestPipelinedMatchesSequential is the mediator-level determinism
// guarantee: Parallelism(8) executes the exact plan sequence of the
// sequential mediator and finds the same answers.
func TestPipelinedMatchesSequential(t *testing.T) {
	run := func(parallelism int) *Result {
		cfg, mkEng := wideFixture(t)
		cfg.Parallelism = parallelism
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(mkEng(), Budget{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(0)
	if len(seq.Executed) == 0 {
		t.Fatal("sequential run executed nothing")
	}
	for _, n := range []int{2, 8} {
		par := run(n)
		if len(par.Executed) != len(seq.Executed) {
			t.Fatalf("Parallelism(%d): executed %d plans, sequential %d",
				n, len(par.Executed), len(seq.Executed))
		}
		for i := range seq.Executed {
			if par.Executed[i].String() != seq.Executed[i].String() {
				t.Errorf("Parallelism(%d): plan %d is %s, sequential %s",
					n, i, par.Executed[i], seq.Executed[i])
			}
			if par.Utilities[i] != seq.Utilities[i] {
				t.Errorf("Parallelism(%d): utility %d is %g, sequential %g",
					n, i, par.Utilities[i], seq.Utilities[i])
			}
		}
		if par.Answers.Len() != seq.Answers.Len() {
			t.Errorf("Parallelism(%d): %d answers, sequential %d",
				n, par.Answers.Len(), seq.Answers.Len())
		}
	}
}

// TestPipelinedContinuesAcrossBudgets stops a deep pipeline after one
// plan; the plans the producer pulled ahead must survive the stop and
// execute — in order — on the next Run, with nothing lost or duplicated.
func TestPipelinedContinuesAcrossBudgets(t *testing.T) {
	cfg, mkEng := wideFixture(t)
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ref.Run(mkEng(), Budget{})
	if err != nil {
		t.Fatal(err)
	}

	cfg.Parallelism = 4
	cfg.PipelineDepth = 4 // pull several plans ahead of the budget stop
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := mkEng()
	var got []string
	for {
		res, err := sys.Run(eng, Budget{MaxPlans: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, pq := range res.Executed {
			got = append(got, pq.String())
		}
		if res.Stopped == StopExhausted {
			break
		}
	}
	if len(got) != len(full.Executed) {
		t.Fatalf("one-plan budgets executed %d plans total, want %d", len(got), len(full.Executed))
	}
	for i, pq := range full.Executed {
		if got[i] != pq.String() {
			t.Errorf("plan %d is %s, sequential %s", i, got[i], pq)
		}
	}
}

// TestConcurrentRunsSerialize hammers one System from many goroutines
// (the concurrent-Run bugfix): Run calls must serialize on the internal
// lock, so every plan executes exactly once across all runs and the
// exhaustion latch stays consistent. Run under -race.
func TestConcurrentRunsSerialize(t *testing.T) {
	cfg, mkEng := wideFixture(t)
	cfg.Parallelism = 4
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := mkEng()

	const goroutines = 8
	results := make([]*Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := sys.Run(eng, Budget{MaxPlans: 2})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = res
		}(g)
	}
	wg.Wait()

	seen := map[string]bool{}
	total := 0
	for _, res := range results {
		if res == nil {
			continue
		}
		for _, pq := range res.Executed {
			k := pq.String()
			if seen[k] {
				t.Errorf("plan %s executed twice", k)
			}
			seen[k] = true
			total++
		}
	}
	// Enough two-plan budgets to exhaust the space: everything ran once.
	want := len(sequentialPlans(t))
	if total != want {
		t.Errorf("concurrent runs executed %d plans total, want %d", total, want)
	}
}

// sequentialPlans returns the full sequential execution order of the
// wide fixture, as strings.
func sequentialPlans(t *testing.T) []string {
	t.Helper()
	cfg, mkEng := wideFixture(t)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(mkEng(), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(res.Executed))
	for i, pq := range res.Executed {
		out[i] = pq.String()
	}
	return out
}

// TestPipelinedPrefetchInteraction: Parallelism subsumes Prefetch; both
// set must behave like Parallelism alone.
func TestPipelinedPrefetchInteraction(t *testing.T) {
	cfg, mkEng := wideFixture(t)
	cfg.Parallelism = 4
	cfg.Prefetch = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(mkEng(), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	want := sequentialPlans(t)
	if len(res.Executed) != len(want) {
		t.Fatalf("executed %d plans, want %d", len(res.Executed), len(want))
	}
	for i, pq := range res.Executed {
		if pq.String() != want[i] {
			t.Errorf("plan %d is %s, want %s", i, pq, want[i])
		}
	}
}
