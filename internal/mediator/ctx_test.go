package mediator

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"qporder/internal/schema"
)

// countProducers counts live pipelined-producer goroutines by stack
// inspection.
func countProducers() int {
	buf := make([]byte, 1<<20)
	stacks := string(buf[:runtime.Stack(buf, true)])
	return strings.Count(stacks, "mediator.(*System).pipelined")
}

// TestRunContextCancelMidStream cancels a pipelined Run between plan
// executions and asserts (a) the run stops with StopCanceled and a
// partial result, (b) the producer goroutine exits, and (c) the plans the
// pipeline pulled ahead are stashed cleanly: a later Run resumes with no
// plan lost or duplicated.
func TestRunContextCancelMidStream(t *testing.T) {
	// Reference: the full plan sequence of an uncanceled sequential run.
	cfg, eng, _ := fixture(t)
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(eng, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Executed) < 3 {
		t.Fatalf("fixture too small for a mid-stream cancel: %d plans", len(want.Executed))
	}

	cfg, eng, _ = fixture(t)
	cfg.Parallelism = 2
	cfg.PipelineDepth = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.OnPlan = func(e PlanEvent) {
		if e.Index == 1 {
			cancel() // cancel after the first plan, mid-stream
		}
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := countProducers()
	r1, err := sys.RunContext(ctx, eng, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stopped != StopCanceled {
		t.Fatalf("Stopped = %s, want %s", r1.Stopped, StopCanceled)
	}
	if len(r1.Executed) != 1 {
		t.Errorf("canceled run executed %d plans, want 1", len(r1.Executed))
	}

	// The producer must be gone once RunContext returns (drain waits for
	// it); poll briefly to absorb scheduler lag.
	deadline := time.Now().Add(2 * time.Second)
	for countProducers() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := countProducers(); n > before {
		t.Errorf("producer goroutines leaked: %d running after cancel (was %d)", n, before)
	}

	// Resume with a fresh context: stashed plans first, then the rest —
	// the combined sequence must equal the uncanceled reference exactly.
	sys.cfg.OnPlan = nil
	r2, err := sys.RunContext(context.Background(), eng, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stopped != StopExhausted {
		t.Errorf("resumed run stopped %s, want %s", r2.Stopped, StopExhausted)
	}
	var got []string
	for _, pq := range append(append([]*schema.Query{}, r1.Executed...), r2.Executed...) {
		got = append(got, pq.String())
	}
	if len(got) != len(want.Executed) {
		t.Fatalf("cancel+resume executed %d plans, want %d", len(got), len(want.Executed))
	}
	for i, pq := range want.Executed {
		if got[i] != pq.String() {
			t.Errorf("plan %d differs after cancel+resume: %s vs %s", i, got[i], pq)
		}
	}
}

// TestRunContextPreCanceled: a Run whose context is already canceled
// executes nothing, latches nothing, and leaves the system usable.
func TestRunContextPreCanceled(t *testing.T) {
	cfg, eng, _ := fixture(t)
	cfg.Parallelism = 2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := sys.RunContext(ctx, eng, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stopped != StopCanceled || len(r.Executed) != 0 {
		t.Errorf("pre-canceled run: stopped=%s executed=%d", r.Stopped, len(r.Executed))
	}
	r2, err := sys.Run(eng, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stopped != StopExhausted || len(r2.Executed) == 0 {
		t.Errorf("run after pre-canceled run: stopped=%s executed=%d", r2.Stopped, len(r2.Executed))
	}
}

// TestOnPlanEvents: every executed plan yields exactly one event carrying
// the fresh answers, and the event stream mirrors the result.
func TestOnPlanEvents(t *testing.T) {
	cfg, eng, _ := fixture(t)
	var events []PlanEvent
	cfg.OnPlan = func(e PlanEvent) { events = append(events, e) }
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(eng, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(res.Executed) {
		t.Fatalf("%d events for %d executed plans", len(events), len(res.Executed))
	}
	total := 0
	for i, e := range events {
		if e.Index != i+1 {
			t.Errorf("event %d has index %d", i, e.Index)
		}
		if e.Plan.String() != res.Executed[i].String() {
			t.Errorf("event %d plan %s != executed %s", i, e.Plan, res.Executed[i])
		}
		if len(e.NewAnswers) != res.NewAnswers[i] {
			t.Errorf("event %d carries %d answers, result says %d", i, len(e.NewAnswers), res.NewAnswers[i])
		}
		total += len(e.NewAnswers)
		if e.TotalAnswers != total {
			t.Errorf("event %d total %d, want %d", i, e.TotalAnswers, total)
		}
	}
	if total != res.Answers.Len() {
		t.Errorf("events carried %d answers, result has %d", total, res.Answers.Len())
	}
}

// TestPreparedSharing: Systems built from one Prepared value order the
// same plans as a System that reformulates itself, and concurrent use of
// a shared Prepared is safe (exercised harder under -race).
func TestPreparedSharing(t *testing.T) {
	cfg, _, _ := fixture(t)
	prep, err := Prepare(cfg.Query, cfg.Catalog, Buckets)
	if err != nil {
		t.Fatal(err)
	}
	if prep.PlanSpaceSize() == 0 {
		t.Fatal("prepared plan space empty")
	}

	run := func(c Config) []string {
		_, eng, _ := fixture(t)
		sys, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(eng, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, pq := range res.Executed {
			out = append(out, pq.String())
		}
		return out
	}
	direct := run(cfg)

	pcfg := Config{Prepared: prep, Measure: cfg.Measure}
	shared := run(pcfg)
	if len(direct) != len(shared) {
		t.Fatalf("prepared run executed %d plans, direct %d", len(shared), len(direct))
	}
	for i := range direct {
		if direct[i] != shared[i] {
			t.Errorf("plan %d differs: %s vs %s", i, direct[i], shared[i])
		}
	}

	// Concurrent Systems over the same Prepared value.
	const workers = 4
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			_, eng, _ := fixture(t)
			sys, err := New(Config{Prepared: prep, Measure: cfg.Measure, Parallelism: 2})
			if err != nil {
				errs <- err
				return
			}
			_, err = sys.Run(eng, Budget{})
			errs <- err
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
