// Package mediator assembles the full data-integration system of the
// paper's introduction: reformulate the user query, order the candidate
// plans by utility, filter them through the soundness test, execute them
// best-first, and stop "as soon as the user has found a satisfactory
// answer, or when allotted resource limits have been reached"
// (Section 1). Ordering can be overlapped with execution — the rest of
// the plans are found while execution has begun — via the Prefetch
// option.
package mediator

import (
	"context"
	"fmt"
	"sync"
	"time"

	"qporder/internal/abstraction"
	"qporder/internal/adaptive"
	"qporder/internal/core"
	"qporder/internal/execsim"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/physopt"
	"qporder/internal/planspace"
	"qporder/internal/reformulate"
	"qporder/internal/schema"
)

// Reformulator selects the query-reformulation method.
type Reformulator string

// The supported reformulators.
const (
	// Buckets is the bucket algorithm (default).
	Buckets Reformulator = "buckets"
	// InverseRules uses the inverse-rule construction of Section 7.
	InverseRules Reformulator = "inverse"
	// MiniCon uses generalized buckets; plans are sound by construction.
	MiniCon Reformulator = "minicon"
)

// Algorithm selects the ordering algorithm.
type Algorithm string

// The supported ordering algorithms.
const (
	// Auto picks the best applicable algorithm for the measure:
	// Greedy for fully monotonic measures, Streamer under diminishing
	// returns, iDrips otherwise.
	Auto       Algorithm = "auto"
	Greedy     Algorithm = "greedy"
	IDrips     Algorithm = "idrips"
	Streamer   Algorithm = "streamer"
	PI         Algorithm = "pi"
	Exhaustive Algorithm = "exhaustive"
)

// Config assembles a mediator.
type Config struct {
	// Catalog registers the sources (descriptions required).
	Catalog *lav.Catalog
	// Query is the user query over the mediated schema.
	Query *schema.Query
	// Measure builds the utility measure over the derived entry catalog
	// the ordering algorithms see. Required.
	Measure func(entries *lav.Catalog) measure.Measure
	// Algorithm defaults to Auto.
	Algorithm Algorithm
	// Heuristic groups similar sources for the abstraction-based
	// algorithms; defaults to ByAccessCost over the entry catalog.
	Heuristic abstraction.Heuristic
	// Reformulator defaults to Buckets.
	Reformulator Reformulator
	// Physical runs each plan through the physical optimizer before
	// execution; PhysN is the optimizer's selectivity denominator
	// (default 50000).
	Physical bool
	PhysN    float64
	// Prefetch overlaps finding the next sound plan with executing the
	// current one.
	Prefetch bool
	// Parallelism > 1 spreads the orderer's internal work — utility
	// evaluation and dominance testing — across that many workers
	// (core.SetParallelism; deterministic, so the plan sequence is
	// byte-identical to the sequential run) and switches Run to the
	// pipelined mode: a producer goroutine orders and soundness-checks
	// plans into a bounded queue while the consumer executes, so plan i
	// executes while plan i+1 is ordered. Subsumes Prefetch. 0 or 1
	// keeps today's sequential behavior.
	Parallelism int
	// PipelineDepth bounds the pipelined mode's plan queue (default 2).
	// Deeper queues let ordering run further ahead of execution; plans
	// pulled ahead of a budget stop are preserved for the next Run call.
	PipelineDepth int
	// Adaptive tracks the statistics observed during execution and, when a
	// source's estimate has drifted by more than DriftFactor (default 2),
	// re-estimates and re-orders the remaining plans (the execution-level
	// adaptation of Section 7's related work, fed back into
	// reformulation-level ordering).
	Adaptive    bool
	DriftFactor float64
	// ShardCount > 1 restricts ordering to one slice of the plan space:
	// the plans whose deterministic enumeration position is congruent to
	// ShardIndex mod ShardCount (core.NewPISharded). Only the PI
	// algorithm supports sharding, and only over measures with
	// prefix-independent utilities (measure.IsPrefixIndependent) — the
	// combination under which per-shard streams merge byte-identically
	// into the unsharded sequence. New rejects anything else. 0 and 1
	// mean the whole space.
	ShardIndex int
	ShardCount int
	// Prepared, when non-nil, supplies a prebuilt reformulation (see
	// Prepare): New skips the reformulation phase and shares the prepared
	// plan space, which is how the serving layer's session cache reuses
	// the expensive prefix across identical queries. Catalog, Query, and
	// Reformulator are taken from the Prepared value when unset.
	Prepared *Prepared
	// OnPlan, when non-nil, is invoked synchronously from Run after each
	// plan finishes executing, with the plan, its utility, and the fresh
	// answers it contributed — the streaming hook the serving layer uses
	// to push results to clients as they are produced.
	OnPlan func(PlanEvent)
	// Obs, when non-nil, receives phase spans (mediator/reformulate,
	// mediator/order, mediator/soundness, mediator/execute,
	// mediator/reorder), the orderer's per-algorithm work counters, and
	// the run-level gauges and counters. Nil disables instrumentation at
	// zero cost.
	Obs *obs.Registry
	// Calib, when non-nil, accumulates estimator-calibration series: the
	// engine pairs each unconstrained source access's Tuples estimate
	// with the observed result size, and Run pairs each executed plan's
	// predicted utility with its realized value (fresh answers for
	// coverage-family measures, accrued cost for cost-family ones — see
	// obs.PairPlanEstimate). Nil disables calibration at zero cost.
	Calib *obs.Calibration
}

// Budget bounds a Run. Zero fields mean "unlimited".
type Budget struct {
	// MaxPlans stops after executing this many sound plans.
	MaxPlans int
	// MaxCost stops once the engine's accrued cost reaches this value.
	MaxCost float64
	// MinAnswers stops once this many distinct answers have been found.
	MinAnswers int
}

// StopReason reports why a Run ended.
type StopReason string

// The stop reasons.
const (
	StopExhausted  StopReason = "plans-exhausted"
	StopMaxPlans   StopReason = "max-plans"
	StopMaxCost    StopReason = "max-cost"
	StopMinAnswers StopReason = "min-answers"
	StopCanceled   StopReason = "canceled"
)

// PlanEvent describes one executed plan, delivered to Config.OnPlan while
// a Run is in progress. Cancellation and budget checks happen after the
// callback returns, so every executed plan produces exactly one event.
type PlanEvent struct {
	// Index is the 1-based position of the plan within this Run.
	Index int
	// Plan is the executed plan query.
	Plan *schema.Query
	// Key is the plan's canonical planspace key — the tie-break the
	// orderers use after utility, and the handle a cross-process gather
	// needs to merge shard streams in exactly the single-process order.
	Key string
	// Utility is the plan's utility at selection time.
	Utility float64
	// NewAnswers holds the answers this plan contributed that were not
	// already in the answer set. The slice aliases the answer set's
	// backing array; callers must not mutate it.
	NewAnswers []schema.Atom
	// TotalAnswers is the distinct-answer count after this plan.
	TotalAnswers int
	// Cost is the engine's accrued cost after this plan.
	Cost float64
}

// Result summarizes a Run.
type Result struct {
	// Answers holds the accumulated distinct answers.
	Answers *execsim.AnswerSet
	// Executed lists the sound plans executed, in order.
	Executed []*schema.Query
	// Utilities holds each executed plan's utility at selection time.
	Utilities []float64
	// NewAnswers holds, per executed plan, how many answers were new.
	NewAnswers []int
	// Evals is the number of utility evaluations the orderer performed.
	Evals int
	// Cost is the engine's accrued execution cost.
	Cost float64
	// Reorders counts adaptive re-orderings performed.
	Reorders int
	// Stopped reports why the run ended.
	Stopped StopReason
}

// System is a configured mediator for one query. Run may be called
// repeatedly with fresh budgets; ordering continues where it stopped.
type System struct {
	cfg      Config
	orderer  core.Orderer
	src      planSource
	algo     Algorithm // resolved (Auto expanded)
	heur     abstraction.Heuristic
	measName string // the measure's Name(), keying calibration plan series

	next  func() sound
	drain func()
	// stash holds plans the pipelined mode pulled from the orderer ahead
	// of a budget stop. The orderer has already conditioned on them, so
	// they must execute before anything newly ordered; drain parks them
	// here and the next Run serves them first.
	stash []sound

	// runMu serializes Run calls: the exhaustion latch, the pipeline
	// fields (next/drain/stash), and the adaptive state are single-writer.
	// Concurrent Run calls on one System are legal and queue up.
	runMu sync.Mutex

	// Adaptive state.
	tracker  *adaptive.Tracker
	executed []*planspace.Plan
	reorders int

	// trace is the request trace of the Run in progress (nil outside a
	// traced Run). It is set under runMu before the pipeline producer
	// starts and the producer quiesces before Run returns, so the
	// producer's span writes never race a later Run's rebinding.
	trace *obs.Trace

	// exhausted latches once the ordering pipeline reports no more sound
	// plans, so later Run calls never poke a spent orderer again. Stashed
	// plans may still be pending when it latches.
	exhausted bool
}

// planSource abstracts over the reformulators.
type planSource interface {
	spaces() []*planspace.Space
	planQuery(p *planspace.Plan) (*schema.Query, error)
	isSound(p *planspace.Plan) (bool, error)
	entries() *lav.Catalog
	// entriesWithStats derives a parallel entry catalog with revised
	// statistics (adaptive re-ordering).
	entriesWithStats(statsOf func(orig *lav.Source) lav.Stats) *lav.Catalog
}

type bucketSource struct{ pd *reformulate.PlanDomain }

func (s bucketSource) spaces() []*planspace.Space { return []*planspace.Space{s.pd.Space} }
func (s bucketSource) planQuery(p *planspace.Plan) (*schema.Query, error) {
	return s.pd.PlanQuery(p)
}
func (s bucketSource) isSound(p *planspace.Plan) (bool, error) { return s.pd.IsSound(p) }
func (s bucketSource) entries() *lav.Catalog                   { return s.pd.Entries }
func (s bucketSource) entriesWithStats(f func(*lav.Source) lav.Stats) *lav.Catalog {
	return s.pd.EntriesWithStats(f)
}

type miniconSource struct{ md *reformulate.MiniConDomain }

func (s miniconSource) spaces() []*planspace.Space { return s.md.Spaces }
func (s miniconSource) planQuery(p *planspace.Plan) (*schema.Query, error) {
	return s.md.PlanQuery(p)
}
func (s miniconSource) isSound(*planspace.Plan) (bool, error) { return true, nil }
func (s miniconSource) entries() *lav.Catalog                 { return s.md.Entries }
func (s miniconSource) entriesWithStats(f func(*lav.Source) lav.Stats) *lav.Catalog {
	return s.md.EntriesWithStats(f)
}

// Prepared is the reusable reformulation prefix for one (query, catalog,
// reformulator) triple: the buckets (or MCDs), the derived entry catalog,
// and the plan space — everything a mediator needs before an orderer is
// built. A Prepared value is immutable and safe to share across
// concurrently running Systems; the serving layer caches them keyed by
// the query's schema.CanonicalKey.
type Prepared struct {
	Query        *schema.Query
	Catalog      *lav.Catalog
	Reformulator Reformulator
	src          planSource
}

// Entries exposes the derived entry catalog of the prepared reformulation.
func (p *Prepared) Entries() *lav.Catalog { return p.src.entries() }

// PlanSpaceSize returns the number of candidate plans across the prepared
// plan spaces.
func (p *Prepared) PlanSpaceSize() int64 {
	var n int64
	for _, sp := range p.src.spaces() {
		n += sp.Size()
	}
	return n
}

// Prepare runs the reformulation phase — the expensive prefix shared by
// every mediator over the same query — and returns it in reusable form.
func Prepare(q *schema.Query, cat *lav.Catalog, r Reformulator) (*Prepared, error) {
	if q == nil || cat == nil {
		return nil, fmt.Errorf("mediator: Prepare needs a query and a catalog")
	}
	var src planSource
	switch r {
	case "", Buckets:
		r = Buckets
		b, err := reformulate.BuildBuckets(q, cat)
		if err != nil {
			return nil, err
		}
		src = bucketSource{reformulate.NewPlanDomain(b, cat)}
	case InverseRules:
		b, err := reformulate.InverseBuckets(q, cat)
		if err != nil {
			return nil, err
		}
		src = bucketSource{reformulate.NewPlanDomain(b, cat)}
	case MiniCon:
		gb, err := reformulate.BuildMCDs(q, cat)
		if err != nil {
			return nil, err
		}
		md, err := reformulate.NewMiniConDomain(gb, cat)
		if err != nil {
			return nil, err
		}
		src = miniconSource{md}
	default:
		return nil, fmt.Errorf("mediator: unknown reformulator %q", r)
	}
	return &Prepared{Query: q, Catalog: cat, Reformulator: r, src: src}, nil
}

// New reformulates the query (or adopts a Prepared reformulation) and
// builds the ordering pipeline.
func New(cfg Config) (*System, error) {
	if cfg.Prepared != nil {
		if cfg.Catalog == nil {
			cfg.Catalog = cfg.Prepared.Catalog
		}
		if cfg.Query == nil {
			cfg.Query = cfg.Prepared.Query
		}
		cfg.Reformulator = cfg.Prepared.Reformulator
	}
	if cfg.Catalog == nil || cfg.Query == nil || cfg.Measure == nil {
		return nil, fmt.Errorf("mediator: Catalog, Query, and Measure are required")
	}
	if cfg.PhysN == 0 {
		cfg.PhysN = 50000
	}
	tr := cfg.Obs.Tracer()

	var src planSource
	if cfg.Prepared != nil {
		src = cfg.Prepared.src
	} else {
		reformSpan := obs.StartSpan(tr, "mediator/reformulate")
		prep, err := Prepare(cfg.Query, cfg.Catalog, cfg.Reformulator)
		reformSpan.End()
		if err != nil {
			return nil, err
		}
		src = prep.src
	}

	m := cfg.Measure(src.entries())
	heur := cfg.Heuristic
	if heur == nil {
		heur = abstraction.ByAccessCost(src.entries())
	}
	algo := cfg.Algorithm
	if algo == "" || algo == Auto {
		switch {
		case m.FullyMonotonic():
			algo = Greedy
		case m.DiminishingReturns():
			algo = Streamer
		default:
			algo = IDrips
		}
	}
	if cfg.ShardCount > 1 {
		if cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount {
			return nil, fmt.Errorf("mediator: shard index %d out of range [0, %d)", cfg.ShardIndex, cfg.ShardCount)
		}
		if algo != PI {
			return nil, fmt.Errorf("mediator: plan-space sharding requires the pi algorithm, not %q", algo)
		}
		if !measure.IsPrefixIndependent(m) {
			return nil, fmt.Errorf("mediator: measure %s has prefix-dependent utilities; sharded streams would not merge back into the unsharded order", m.Name())
		}
		if cfg.Adaptive {
			return nil, fmt.Errorf("mediator: adaptive re-ordering cannot be combined with plan-space sharding")
		}
	}
	s := &System{cfg: cfg, src: src, algo: algo, heur: heur, measName: m.Name()}
	if cfg.Adaptive {
		s.tracker = adaptive.NewTracker(cfg.Catalog)
		if cfg.DriftFactor > 0 {
			s.tracker.DriftFactor = cfg.DriftFactor
		}
	}
	buildSpan := obs.StartSpan(tr, "mediator/build-orderer")
	o, err := s.buildOrderer(m, src.spaces())
	buildSpan.End()
	if err != nil {
		return nil, err
	}
	core.Instrument(o, cfg.Obs)
	core.SetParallelism(o, cfg.Parallelism)
	s.orderer = o
	return s, nil
}

// buildOrderer constructs the resolved algorithm over the given spaces.
func (s *System) buildOrderer(m measure.Measure, spaces []*planspace.Space) (core.Orderer, error) {
	switch s.algo {
	case Greedy:
		return core.NewGreedy(spaces, m)
	case Streamer:
		return core.NewStreamer(spaces, m, s.heur)
	case IDrips:
		return core.NewIDrips(spaces, m, s.heur), nil
	case PI:
		if s.cfg.ShardCount > 1 {
			return core.NewPISharded(spaces, m, s.cfg.ShardIndex, s.cfg.ShardCount), nil
		}
		return core.NewPI(spaces, m), nil
	case Exhaustive:
		return core.NewExhaustive(spaces, m), nil
	default:
		return nil, fmt.Errorf("mediator: unknown algorithm %q", s.algo)
	}
}

// reorder rebuilds the ordering pipeline over the remaining plans with
// statistics revised from execution observations. The executed prefix is
// replayed into the fresh measure context so conditional utilities stay
// correct.
func (s *System) reorder() error {
	defer obs.StartSpan(s.cfg.Obs.Tracer(), "mediator/reorder").End()
	defer s.trace.StartSpan("mediator/reorder").End()
	s.trace.Event("adaptive/reorder", "statistics drift triggered re-ordering")
	revised, err := s.tracker.Revise()
	if err != nil {
		return err
	}
	s.tracker.Rebase(revised)
	entries := s.src.entriesWithStats(func(orig *lav.Source) lav.Stats {
		return revised.Source(orig.ID).Stats
	})
	m := s.cfg.Measure(entries)
	spaces := adaptive.RemainingSpaces(s.src.spaces(), s.executed)
	if len(spaces) == 0 {
		s.orderer = exhaustedOrderer{m.NewContext()}
		s.next, s.drain, s.stash = nil, nil, nil
		s.reorders++
		return nil
	}
	o, err := s.buildOrderer(m, spaces)
	if err != nil {
		return err
	}
	core.Instrument(o, s.cfg.Obs)
	core.SetParallelism(o, s.cfg.Parallelism)
	for _, p := range s.executed {
		o.Context().Observe(p)
	}
	// The rebuilt orderer keeps recording provenance onto the same
	// request trace; SetTrace re-syncs its baselines to the fresh
	// context, so the next emitted plan's deltas start at zero.
	core.SetTrace(o, s.trace)
	s.orderer = o
	s.next, s.drain = nil, nil
	// RemainingSpaces re-derives every unexecuted plan, including the ones
	// pulled ahead by the pipeline; keeping the stash would emit them twice.
	s.stash = nil
	s.reorders++
	return nil
}

// exhaustedOrderer is the empty orderer used when every plan has been
// executed before a re-ordering.
type exhaustedOrderer struct{ ctx measure.Context }

func (e exhaustedOrderer) Next() (*planspace.Plan, float64, bool) { return nil, 0, false }
func (e exhaustedOrderer) Context() measure.Context               { return e.ctx }

// Entries exposes the derived entry catalog (for building coverage
// models and inspecting statistics).
func (s *System) Entries() *lav.Catalog { return s.src.entries() }

// Orderer exposes the underlying orderer for instrumentation.
func (s *System) Orderer() core.Orderer { return s.orderer }

// sound is one ordered, soundness-checked plan ready to execute.
type sound struct {
	plan *planspace.Plan
	pq   *schema.Query
	util float64
	err  error
	ok   bool
	// interrupted marks a pull abandoned because the Run context was
	// canceled; unlike ok=false it must NOT latch the exhaustion flag.
	interrupted bool
}

// nextSound pulls the orderer until a sound plan appears.
func (s *System) nextSound() sound {
	tr := s.cfg.Obs.Tracer()
	for {
		orderSpan := obs.StartSpan(tr, "mediator/order")
		orderTSpan := s.trace.StartSpan("mediator/order")
		p, u, ok := s.orderer.Next()
		orderTSpan.End()
		orderSpan.End()
		if !ok {
			return sound{}
		}
		pq, err := s.src.planQuery(p)
		if err != nil {
			continue // unsafe: cannot be sound
		}
		soundSpan := obs.StartSpan(tr, "mediator/soundness")
		soundTSpan := s.trace.StartSpan("mediator/soundness")
		isSound, err := s.src.isSound(p)
		soundTSpan.End()
		soundSpan.End()
		if err != nil {
			return sound{err: err}
		}
		if isSound {
			return sound{plan: p, pq: pq, util: u, ok: true}
		}
		s.cfg.Obs.Counter("mediator.unsound_plans_skipped").Inc()
	}
}

// Run executes the ordered sound plans against the engine until the
// budget stops it. With Prefetch, the next plan is ordered concurrently
// with the current plan's execution. With Adaptive, drifted statistics
// trigger re-ordering of the remaining plans between executions.
func (s *System) Run(engine *execsim.Engine, budget Budget) (*Result, error) {
	return s.RunContext(context.Background(), engine, budget)
}

// RunContext is Run bound to a context: cancellation (a client
// disconnect, a request deadline) is observed at plan boundaries — before
// each plan is pulled and executed — and propagates into the pipelined
// producer, which exits promptly and parks its pulled-ahead plans in the
// stash for a later Run. A canceled run returns the partial result with
// Stopped == StopCanceled and a nil error: the answers streamed so far
// are valid, the stop is not a failure.
func (s *System) RunContext(ctx context.Context, engine *execsim.Engine, budget Budget) (*Result, error) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	// Bind the request trace (nil when the context carries none, which
	// detaches any previous binding) so the orderer records per-plan
	// provenance scoped to this request.
	s.trace = obs.TraceFrom(ctx)
	core.SetTrace(s.orderer, s.trace)
	defer s.trace.StartSpan("mediator/run").End()
	res := &Result{Answers: execsim.NewAnswerSet(), Stopped: StopExhausted}
	if s.cfg.Obs != nil {
		engine.Instrument(s.cfg.Obs)
	}
	if s.cfg.Calib != nil {
		engine.SetCalibration(s.cfg.Calib)
	}
	// Release per-request evaluation scratch (the batch evaluator's
	// arena) once the run — including the pipelined producer's drain,
	// which may still evaluate plans — is over. Registered before the
	// drain defer so it runs after it; slab capacity is retained, so the
	// next request on this system reuses the same memory.
	defer func() {
		if r, ok := s.orderer.Context().(measure.ScratchResetter); ok {
			r.ResetScratch()
		}
	}()
	defer func() {
		if s.drain != nil {
			s.drain()
		}
	}()

	if s.tracker != nil {
		prev := engine.OnAccess
		engine.OnAccess = func(source string, tuples, failed int) {
			if src, ok := s.cfg.Catalog.ByName(source); ok {
				s.tracker.Record(src.ID, tuples, failed)
			}
			if prev != nil {
				prev(source, tuples, failed)
			}
		}
		defer func() { engine.OnAccess = prev }()
	}

	runStart := time.Now()
	firstAnswerAt := time.Duration(-1)
	for {
		if ctx.Err() != nil {
			res.Stopped = StopCanceled
			break
		}
		if s.exhausted && len(s.stash) == 0 {
			res.Stopped = StopExhausted
			break
		}
		if s.next == nil {
			s.next, s.drain = s.nextSoundFunc(ctx)
		}
		sp := s.next()
		if sp.err != nil {
			return nil, sp.err
		}
		if sp.interrupted {
			res.Stopped = StopCanceled
			break
		}
		if !sp.ok {
			s.exhausted = true
			res.Stopped = StopExhausted
			break
		}
		costBefore := engine.Cost
		execStart := time.Now()
		execSpan := obs.StartSpan(s.cfg.Obs.Tracer(), "mediator/execute")
		execTSpan := s.trace.StartSpan("mediator/execute")
		out, err := s.execute(engine, sp.pq)
		execTSpan.End()
		execSpan.End()
		execWall := time.Since(execStart)
		if err != nil {
			return nil, err
		}
		before := res.Answers.Len()
		fresh := res.Answers.Add(out)
		s.cfg.Obs.Counter("mediator.plans_executed").Inc()
		s.cfg.Obs.Counter("mediator.answers_new").Add(int64(fresh))
		if fresh > 0 && firstAnswerAt < 0 {
			firstAnswerAt = time.Since(runStart)
			s.cfg.Obs.Gauge("mediator.time_to_first_answer_ns").Set(float64(firstAnswerAt))
		}
		s.executed = append(s.executed, sp.plan)
		res.Executed = append(res.Executed, sp.pq)
		res.Utilities = append(res.Utilities, sp.util)
		res.NewAnswers = append(res.NewAnswers, fresh)
		res.Cost = engine.Cost
		s.trace.AnnotatePlan(sp.plan.Key(), fresh, int64(execWall))
		if c := s.cfg.Calib; c != nil {
			est, act := obs.PairPlanEstimate(sp.util, fresh, engine.Cost-costBefore)
			c.ObservePlan(s.measName+"/"+string(s.algo), est, act, fresh, engine.Cost-costBefore, execWall)
		}
		if s.cfg.OnPlan != nil {
			s.cfg.OnPlan(PlanEvent{
				Index:        len(res.Executed),
				Plan:         sp.pq,
				Key:          sp.plan.Key(),
				Utility:      sp.util,
				NewAnswers:   res.Answers.Atoms()[before:],
				TotalAnswers: res.Answers.Len(),
				Cost:         engine.Cost,
			})
		}

		if budget.MaxPlans > 0 && len(res.Executed) >= budget.MaxPlans {
			res.Stopped = StopMaxPlans
			break
		}
		if budget.MaxCost > 0 && engine.Cost >= budget.MaxCost {
			res.Stopped = StopMaxCost
			break
		}
		if budget.MinAnswers > 0 && res.Answers.Len() >= budget.MinAnswers {
			res.Stopped = StopMinAnswers
			break
		}
		if s.tracker != nil && len(s.tracker.Drifted()) > 0 {
			if s.drain != nil {
				s.drain() // quiesce the old pipeline before replacing it
			}
			if err := s.reorder(); err != nil {
				return nil, err
			}
		}
	}
	if s.drain != nil {
		s.drain()
	}
	res.Evals = s.orderer.Context().Evals()
	res.Reorders = s.reorders
	return res, nil
}

// nextSoundFunc returns the plan supplier and a drain function that waits
// for any in-flight ordering work (so the orderer is quiescent before the
// caller reads its instrumentation). With Parallelism > 1 the supplier is
// the pipelined producer, which observes the Run context; the sequential
// and Prefetch suppliers ignore it (cancellation is checked in the Run
// loop, and their closures outlive a single Run).
func (s *System) nextSoundFunc(ctx context.Context) (next func() sound, drain func()) {
	if s.cfg.Parallelism > 1 {
		return s.pipelined(ctx)
	}
	if !s.cfg.Prefetch {
		return s.nextSound, func() {}
	}
	ch := make(chan sound, 1)
	ch <- s.nextSound() // prime
	inFlight := false
	next = func() sound {
		cur := <-ch
		inFlight = true
		go func() {
			if cur.ok {
				ch <- s.nextSound()
				return
			}
			ch <- sound{} // stay exhausted
		}()
		return cur
	}
	drain = func() {
		if inFlight {
			// Wait for the outstanding prefetch and park its result back
			// for a potential later Run call on the same System.
			v := <-ch
			ch <- v
			inFlight = false
		}
	}
	return next, drain
}

// pipelined builds the Parallelism-mode plan supplier: a producer
// goroutine orders and soundness-checks plans into a bounded queue while
// the caller executes, so plan i executes while plan i+1 is ordered.
// drain cancels the producer, waits for it to quiesce (the orderer and
// its instrumentation are then safe to read), and parks every plan pulled
// ahead in s.stash — the orderer has already conditioned on them, so they
// must execute before anything newly ordered in a later Run.
//
// The producer's context is derived from the Run context, so a request
// cancellation stops ordering work promptly even while the consumer is
// mid-execution, and the consumer's queue read also watches the Run
// context — otherwise a producer that exited on cancellation without
// delivering a terminal marker would strand the consumer on an empty
// queue.
func (s *System) pipelined(runCtx context.Context) (next func() sound, drain func()) {
	if s.exhausted {
		// The orderer is spent; serve the remaining stash without
		// starting a producer that would poke it again.
		next = func() sound {
			if len(s.stash) > 0 {
				v := s.stash[0]
				s.stash = s.stash[1:]
				return v
			}
			return sound{}
		}
		drain = func() { s.next, s.drain = nil, nil }
		return next, drain
	}
	depth := s.cfg.PipelineDepth
	if depth < 1 {
		depth = 2
	}
	ctx, cancel := context.WithCancel(runCtx)
	ch := make(chan sound, depth)
	done := make(chan struct{})
	var leftover *sound // written by the producer before done closes
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			sp := s.nextSound()
			select {
			case ch <- sp:
				if sp.err != nil || !sp.ok {
					return // terminal marker delivered; stop producing
				}
			case <-ctx.Done():
				leftover = &sp
				return
			}
		}
	}()
	next = func() sound {
		if len(s.stash) > 0 {
			v := s.stash[0]
			s.stash = s.stash[1:]
			return v
		}
		select {
		case v := <-ch:
			return v
		case <-runCtx.Done():
			return sound{interrupted: true}
		}
	}
	drain = func() {
		cancel()
		<-done
		// Park queued plans in order; fold a clean end-of-plans marker
		// into the latch instead of stashing it (a later Run would
		// otherwise rebuild a producer just to rediscover exhaustion).
		park := func(v sound) {
			if v.err == nil && !v.ok {
				s.exhausted = true
				return
			}
			s.stash = append(s.stash, v)
		}
		for {
			select {
			case v := <-ch:
				park(v)
				continue
			default:
			}
			break
		}
		if leftover != nil {
			park(*leftover)
		}
		s.next, s.drain = nil, nil
	}
	return next, drain
}

// execute runs one plan, optionally through the physical optimizer.
func (s *System) execute(engine *execsim.Engine, pq *schema.Query) ([]schema.Atom, error) {
	if !s.cfg.Physical {
		return engine.ExecutePlan(pq)
	}
	pp, err := physopt.Optimize(pq, s.cfg.Catalog, physopt.Params{N: s.cfg.PhysN})
	if err != nil {
		return nil, err
	}
	return engine.ExecutePhysical(pp)
}
