package mediator

import (
	"testing"

	"qporder/internal/costmodel"
	"qporder/internal/execsim"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/schema"
)

// mispricedFixture builds a domain where one source's tuple estimate is
// wildly wrong: "Flood" claims 10 tuples but actually returns hundreds.
func mispricedFixture(t *testing.T) (Config, *execsim.Engine) {
	t.Helper()
	cat := lav.NewCatalog()
	add := func(name, def string, st lav.Stats) {
		cat.MustAdd(name, schema.MustParseQuery(def), st)
	}
	add("Flood", "Flood(A, B) :- r0(A, B)", lav.Stats{Tuples: 10, TransmitCost: 1, Overhead: 1})
	add("Calm", "Calm(A, B) :- r0(A, B)", lav.Stats{Tuples: 60, TransmitCost: 1, Overhead: 1})
	add("Rev1", "Rev1(A, B) :- r1(A, B)", lav.Stats{Tuples: 50, TransmitCost: 1, Overhead: 1})
	add("Rev2", "Rev2(A, B) :- r1(A, B)", lav.Stats{Tuples: 55, TransmitCost: 1, Overhead: 1})

	world := execsim.GenerateWorld(execsim.WorldConfig{
		Relations:         []execsim.RelationSpec{{Name: "r0", Arity: 2}, {Name: "r1", Arity: 2}},
		TuplesPerRelation: 400,
		DomainSize:        25,
		Seed:              12,
	})
	// Flood really has everything; Calm is small.
	completeness := func(name string) float64 {
		switch name {
		case "Flood":
			return 1.0
		case "Calm":
			return 0.15
		default:
			return 0.5
		}
	}
	store := execsim.PopulateSourcesWith(cat, world, completeness, 13)
	cfg := Config{
		Catalog: cat,
		Query:   schema.MustParseQuery("Q(X, Z) :- r0(X, Y), r1(Y, Z)"),
		Measure: func(entries *lav.Catalog) measure.Measure {
			return costmodel.NewChainCost(entries, costmodel.Params{N: 1000})
		},
		Adaptive: true,
	}
	return cfg, execsim.NewEngine(cat, store)
}

func TestAdaptiveRunReordersOnDrift(t *testing.T) {
	cfg, eng := mispricedFixture(t)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(eng, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reorders == 0 {
		t.Fatal("no adaptive re-ordering despite a 40x mispriced source")
	}
	if len(res.Executed) != 4 {
		t.Fatalf("executed %d plans, want all 4", len(res.Executed))
	}
	// No duplicates after rebuilding over remaining spaces.
	seen := map[string]bool{}
	for _, pq := range res.Executed {
		k := pq.String()
		if seen[k] {
			t.Errorf("plan %s executed twice after re-ordering", k)
		}
		seen[k] = true
	}
	// After the first Flood access reveals the misprice, the rebuilt
	// ordering must prefer Calm-based plans next.
	if len(res.Executed) >= 2 {
		second := res.Executed[1].String()
		if !contains(second, "Calm") {
			t.Errorf("second plan should use Calm after drift, got %s", second)
		}
	}
}

func TestAdaptiveOffNeverReorders(t *testing.T) {
	cfg, eng := mispricedFixture(t)
	cfg.Adaptive = false
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(eng, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reorders != 0 {
		t.Errorf("Reorders = %d with Adaptive off", res.Reorders)
	}
}

func TestAdaptiveWithPrefetch(t *testing.T) {
	cfg, eng := mispricedFixture(t)
	cfg.Prefetch = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(eng, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Executed) != 4 {
		t.Fatalf("executed %d plans, want 4", len(res.Executed))
	}
	seen := map[string]bool{}
	for _, pq := range res.Executed {
		if k := pq.String(); seen[k] {
			t.Errorf("duplicate plan %s", k)
		} else {
			seen[k] = true
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
