// Package physopt is the mediator's query optimizer (Section 1): it
// turns a conjunctive query plan (one source atom per subgoal) into a
// physical execution plan by choosing a join order and an access method
// per step, using the same statistics as the cost measures.
//
// Two access methods are modeled, mirroring cost measures (1) and (2) of
// Section 3:
//
//   - Scan: fetch the source's full relation (h + α·n) and join locally —
//     the "join at the system site" strategy of measure (1); scans are
//     binding-independent, so with operation caching they are shared
//     across plans.
//   - Bind: push the current bindings into the source and fetch only
//     matching tuples (h + α·n·in/N) — the semijoin strategy of
//     measure (2).
//
// Join orders are optimized exactly (all permutations) for short plans
// and greedily beyond that.
package physopt

import (
	"fmt"
	"math"
	"strings"

	"qporder/internal/lav"
	"qporder/internal/schema"
)

// Method is a physical access method.
type Method int

// The supported access methods.
const (
	// Bind pushes current bindings to the source (semijoin).
	Bind Method = iota
	// Scan fetches the full source relation and joins locally.
	Scan
)

// String implements fmt.Stringer.
func (m Method) String() string {
	if m == Scan {
		return "scan"
	}
	return "bind"
}

// Params configures optimization.
type Params struct {
	// N is the selectivity denominator (domain size per join attribute),
	// as in cost measure (2). Must be positive.
	N float64
	// CachedScan reports whether a full scan of the named source is
	// already cached (free). Nil means nothing is cached.
	CachedScan func(source string) bool
	// MaxExact caps the plan length for exact permutation search; longer
	// plans use the greedy order. Default 7.
	MaxExact int
}

// Step is one physical operation.
type Step struct {
	// Atom is the source atom evaluated at this step.
	Atom schema.Atom
	// Method is the chosen access method.
	Method Method
	// EstCost is the step's estimated cost.
	EstCost float64
	// EstOut is the estimated number of tuples flowing out of this step.
	EstOut float64
}

// Plan is a physical execution plan.
type Plan struct {
	// Name and Head reproduce the logical plan's head.
	Name string
	Head []schema.Term
	// Steps lists the operations in execution order.
	Steps []Step
	// EstCost is the total estimated cost.
	EstCost float64
}

// String renders the plan one step per line.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(", p.Name)
	for i, t := range p.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	fmt.Fprintf(&b, ") [est %.1f]\n", p.EstCost)
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "  %d. %-4s %-30s cost %.1f out %.0f\n",
			i+1, s.Method, s.Atom.String(), s.EstCost, s.EstOut)
	}
	return b.String()
}

// Query converts the physical plan back to its logical conjunctive query
// (in physical step order).
func (p *Plan) Query() *schema.Query {
	q := &schema.Query{Name: p.Name, Head: append([]schema.Term(nil), p.Head...)}
	for _, s := range p.Steps {
		q.Body = append(q.Body, s.Atom.Clone())
	}
	return q
}

// Optimize chooses a join order and access methods for the plan query.
// Every body atom's predicate must be a catalog source with statistics.
func Optimize(pq *schema.Query, cat *lav.Catalog, prm Params) (*Plan, error) {
	if prm.N <= 0 {
		return nil, fmt.Errorf("physopt: Params.N = %g, want > 0", prm.N)
	}
	if prm.MaxExact == 0 {
		prm.MaxExact = 7
	}
	stats := make([]lav.Stats, len(pq.Body))
	for i, a := range pq.Body {
		src, ok := cat.ByName(a.Pred)
		if !ok {
			return nil, fmt.Errorf("physopt: atom %s is not a catalog source", a)
		}
		stats[i] = src.Stats
	}

	var bestOrder []int
	if len(pq.Body) <= prm.MaxExact {
		bestOrder = exactOrder(pq, stats, prm)
	} else {
		bestOrder = greedyOrder(pq, stats, prm)
	}
	return assemble(pq, stats, prm, bestOrder), nil
}

// stepCosts returns, for the atom at position idx evaluated with `in`
// tuples flowing in, the cost of each method and the output estimate.
func stepCosts(pq *schema.Query, st lav.Stats, prm Params, idx int, in float64, first bool) (bindCost, scanCost, out float64) {
	over := st.Overhead / (1 - st.FailureProb)
	if first {
		// No bindings yet: both methods fetch the whole relation.
		bindCost = over + st.TransmitCost*st.Tuples
		scanCost = bindCost
		out = st.Tuples
	} else {
		out = st.Tuples * in / prm.N
		bindCost = over + st.TransmitCost*out
		scanCost = over + st.TransmitCost*st.Tuples
	}
	if prm.CachedScan != nil && prm.CachedScan(pq.Body[idx].Pred) {
		scanCost = 0
	}
	return bindCost, scanCost, out
}

// orderCost estimates the total cost of an order with best method per step.
func orderCost(pq *schema.Query, stats []lav.Stats, prm Params, order []int) float64 {
	total := 0.0
	in := 0.0
	for pos, idx := range order {
		bind, scan, out := stepCosts(pq, stats[idx], prm, idx, in, pos == 0)
		total += math.Min(bind, scan)
		in = out
	}
	return total
}

// exactOrder searches all permutations.
func exactOrder(pq *schema.Query, stats []lav.Stats, prm Params) []int {
	n := len(pq.Body)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	best := append([]int(nil), order...)
	bestCost := orderCost(pq, stats, prm, order)
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			if c := orderCost(pq, stats, prm, order); c < bestCost {
				bestCost = c
				copy(best, order)
			}
			return
		}
		for i := k; i < n; i++ {
			order[k], order[i] = order[i], order[k]
			permute(k + 1)
			order[k], order[i] = order[i], order[k]
		}
	}
	permute(0)
	return best
}

// greedyOrder picks, at each position, the remaining atom with the lowest
// incremental cost.
func greedyOrder(pq *schema.Query, stats []lav.Stats, prm Params) []int {
	n := len(pq.Body)
	used := make([]bool, n)
	var order []int
	in := 0.0
	for pos := 0; pos < n; pos++ {
		bestIdx, bestCost, bestOut := -1, math.Inf(1), 0.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			bind, scan, out := stepCosts(pq, stats[i], prm, i, in, pos == 0)
			if c := math.Min(bind, scan); c < bestCost {
				bestIdx, bestCost, bestOut = i, c, out
			}
		}
		used[bestIdx] = true
		order = append(order, bestIdx)
		in = bestOut
	}
	return order
}

// assemble materializes the chosen order with per-step methods.
func assemble(pq *schema.Query, stats []lav.Stats, prm Params, order []int) *Plan {
	p := &Plan{Name: pq.Name, Head: append([]schema.Term(nil), pq.Head...)}
	in := 0.0
	for pos, idx := range order {
		bind, scan, out := stepCosts(pq, stats[idx], prm, idx, in, pos == 0)
		step := Step{Atom: pq.Body[idx].Clone(), Method: Bind, EstCost: bind, EstOut: out}
		if scan < bind {
			step.Method = Scan
			step.EstCost = scan
		}
		p.Steps = append(p.Steps, step)
		p.EstCost += step.EstCost
		in = out
	}
	return p
}
