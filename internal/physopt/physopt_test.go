package physopt

import (
	"math"
	"testing"

	"qporder/internal/lav"
	"qporder/internal/schema"
)

func catalog() *lav.Catalog {
	cat := lav.NewCatalog()
	cat.MustAdd("Small", nil, lav.Stats{Tuples: 10, TransmitCost: 1, Overhead: 5})
	cat.MustAdd("Big", nil, lav.Stats{Tuples: 10000, TransmitCost: 1, Overhead: 5})
	cat.MustAdd("Mid", nil, lav.Stats{Tuples: 500, TransmitCost: 1, Overhead: 5})
	return cat
}

func pq(src string) *schema.Query { return schema.MustParseQuery(src) }

func TestOptimizePutsSelectiveSourceFirst(t *testing.T) {
	cat := catalog()
	p, err := Optimize(pq("P(X, Z) :- Big(X, Y), Small(Y, Z)"), cat, Params{N: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].Atom.Pred != "Small" {
		t.Errorf("first step = %s, want Small", p.Steps[0].Atom.Pred)
	}
	// Starting from 10 tuples, binding into Big fetches 10000*10/1000 = 100
	// tuples — far better than scanning 10000.
	if p.Steps[1].Method != Bind {
		t.Errorf("second step method = %s, want bind", p.Steps[1].Method)
	}
}

func TestOptimizeChoosesScanWhenBindIsWorse(t *testing.T) {
	cat := lav.NewCatalog()
	cat.MustAdd("Huge", nil, lav.Stats{Tuples: 10000, TransmitCost: 1, Overhead: 5})
	cat.MustAdd("Tiny", nil, lav.Stats{Tuples: 20, TransmitCost: 1, Overhead: 5})
	// With N=10, binding 10000 inputs into Tiny estimates 20*10000/10 =
	// 20000 transmitted tuples; scanning Tiny costs 20. Scan must win.
	p, err := Optimize(pq("P(X, Z) :- Huge(X, Y), Tiny(Y, Z)"), cat, Params{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	var tiny *Step
	for i := range p.Steps {
		if p.Steps[i].Atom.Pred == "Tiny" {
			tiny = &p.Steps[i]
		}
	}
	if tiny == nil {
		t.Fatal("Tiny step missing")
	}
	if tiny.Method != Scan && p.Steps[0].Atom.Pred != "Tiny" {
		t.Errorf("expected Tiny to be scanned or placed first; plan:\n%s", p)
	}
}

func TestOptimizeCachedScanIsFree(t *testing.T) {
	cat := catalog()
	prm := Params{N: 1000, CachedScan: func(name string) bool { return name == "Big" }}
	p, err := Optimize(pq("P(X, Z) :- Small(X, Y), Big(Y, Z)"), cat, prm)
	if err != nil {
		t.Fatal(err)
	}
	var big *Step
	for i := range p.Steps {
		if p.Steps[i].Atom.Pred == "Big" {
			big = &p.Steps[i]
		}
	}
	if big.Method != Scan || big.EstCost != 0 {
		t.Errorf("cached Big: method=%s cost=%g, want free scan\n%s", big.Method, big.EstCost, p)
	}
}

func TestExactBeatsOrEqualsAnyOrder(t *testing.T) {
	cat := catalog()
	q := pq("P(X, W) :- Big(X, Y), Mid(Y, Z), Small(Z, W)")
	prm := Params{N: 1000}
	p, err := Optimize(q, cat, prm)
	if err != nil {
		t.Fatal(err)
	}
	stats := []lav.Stats{
		mustStats(cat, "Big"), mustStats(cat, "Mid"), mustStats(cat, "Small"),
	}
	orders := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, o := range orders {
		if c := orderCost(q, stats, prm, o); c < p.EstCost-1e-9 {
			t.Errorf("order %v cost %g beats optimizer's %g", o, c, p.EstCost)
		}
	}
}

func mustStats(cat *lav.Catalog, name string) lav.Stats {
	s, ok := cat.ByName(name)
	if !ok {
		panic(name)
	}
	return s.Stats
}

func TestGreedyOrderUsedBeyondMaxExact(t *testing.T) {
	cat := lav.NewCatalog()
	body := ""
	for i := 0; i < 9; i++ {
		name := string(rune('A' + i))
		cat.MustAdd(name, nil, lav.Stats{Tuples: float64(10 * (i + 1)), TransmitCost: 1, Overhead: 1})
		if i > 0 {
			body += ", "
		}
		body += name + "(X" + string(rune('0'+i)) + ", X" + string(rune('1'+i)) + ")"
	}
	q := schema.MustParseQuery("P(X0, X9) :- " + body)
	p, err := Optimize(q, cat, Params{N: 100, MaxExact: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 9 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	// Greedy starts from the cheapest standalone source, A.
	if p.Steps[0].Atom.Pred != "A" {
		t.Errorf("greedy first step = %s", p.Steps[0].Atom.Pred)
	}
}

func TestEstimatesAreFiniteAndPositive(t *testing.T) {
	cat := catalog()
	p, err := Optimize(pq("P(X, Z) :- Big(X, Y), Mid(Y, Z)"), cat, Params{N: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if p.EstCost <= 0 || math.IsInf(p.EstCost, 0) || math.IsNaN(p.EstCost) {
		t.Errorf("EstCost = %g", p.EstCost)
	}
	for _, s := range p.Steps {
		if s.EstOut <= 0 {
			t.Errorf("step %s EstOut = %g", s.Atom, s.EstOut)
		}
	}
}

func TestOptimizeErrors(t *testing.T) {
	cat := catalog()
	if _, err := Optimize(pq("P(X) :- Nope(X)"), cat, Params{N: 10}); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := Optimize(pq("P(X) :- Small(X, Y)"), cat, Params{}); err == nil {
		t.Error("zero N accepted")
	}
}

func TestPlanQueryRoundTrip(t *testing.T) {
	cat := catalog()
	orig := pq("P(X, Z) :- Big(X, Y), Small(Y, Z)")
	p, err := Optimize(orig, cat, Params{N: 1000})
	if err != nil {
		t.Fatal(err)
	}
	back := p.Query()
	if len(back.Body) != 2 || back.Name != "P" {
		t.Fatalf("Query() = %s", back)
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}
