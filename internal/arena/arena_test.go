package arena

import "testing"

func TestWordsZeroedAndDisjoint(t *testing.T) {
	a := New()
	w1 := a.Words(10)
	for i := range w1 {
		if w1[i] != 0 {
			t.Fatalf("Words not zeroed at %d: %#x", i, w1[i])
		}
		w1[i] = ^uint64(0)
	}
	w2 := a.Words(10)
	for i := range w2 {
		if w2[i] != 0 {
			t.Fatalf("second Words sees first allocation's bits at %d", i)
		}
	}
	// Writing one allocation must not be visible through the other.
	w2[0] = 7
	if w1[9] != ^uint64(0) {
		t.Fatal("allocations overlap")
	}
}

func TestInt32sZeroed(t *testing.T) {
	a := New()
	s := a.Int32s(5)
	for i := range s {
		if s[i] != 0 {
			t.Fatalf("Int32s not zeroed at %d", i)
		}
		s[i] = -1
	}
	a.Reset()
	s2 := a.Int32s(5)
	for i := range s2 {
		if s2[i] != 0 {
			t.Fatalf("Int32s after Reset not zeroed at %d: %d", i, s2[i])
		}
	}
}

// TestResetReusesSlab is the arena's reason to exist: after warmup,
// Reset + re-allocate must not grow the footprint.
func TestResetReusesSlab(t *testing.T) {
	a := New()
	a.Words(300)
	a.Int32s(700)
	grownTo := a.Bytes()
	for i := 0; i < 50; i++ {
		a.Reset()
		a.Words(300)
		a.Int32s(700)
		if a.Bytes() != grownTo {
			t.Fatalf("iteration %d: footprint changed %d -> %d", i, grownTo, a.Bytes())
		}
	}
}

// TestGrowthKeepsOutstandingSlices: growing mid-batch moves new
// allocations to a fresh slab; slices already handed out stay valid.
func TestGrowthKeepsOutstandingSlices(t *testing.T) {
	a := New()
	w1 := a.Words(minWords)
	w1[minWords-1] = 42
	w2 := a.Words(4 * minWords) // forces a new slab
	w2[0] = 7
	if w1[minWords-1] != 42 {
		t.Fatal("outstanding slice corrupted by slab growth")
	}
}

func TestBytesGrowsMonotonically(t *testing.T) {
	a := New()
	if a.Bytes() != 0 {
		t.Fatalf("fresh arena has %d bytes", a.Bytes())
	}
	prev := 0
	for _, n := range []int{8, 64, 512, 4096} {
		a.Reset()
		a.Words(n)
		if a.Bytes() < prev {
			t.Fatalf("Bytes shrank: %d -> %d", prev, a.Bytes())
		}
		prev = a.Bytes()
	}
}

func TestNegativeLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Words(-1) did not panic")
		}
	}()
	New().Words(-1)
}
