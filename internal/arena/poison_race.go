//go:build race

package arena

// Under the race detector, Reset poisons released scratch and the next
// allocation verifies the sentinel survived — the arena analogue of
// use-after-free checking. The constant lets the compiler delete the
// checks entirely from production builds.
const poisonEnabled = true
