//go:build race

package arena

import "testing"

// These tests run only under -race, where poisoning is compiled in: a
// slice retained across Reset and written afterwards must be detected
// on the next allocation from the same region.

func TestPoisonCatchesStaleWordWrite(t *testing.T) {
	a := New()
	w := a.Words(8)
	a.Reset()
	w[3] = 42 // contract violation: written after Reset
	defer func() {
		if recover() == nil {
			t.Fatal("stale word write not detected")
		}
	}()
	a.Words(8)
}

func TestPoisonCatchesStaleSpanWrite(t *testing.T) {
	a := New()
	s := a.Int32s(8)
	a.Reset()
	s[0] = 1
	defer func() {
		if recover() == nil {
			t.Fatal("stale span write not detected")
		}
	}()
	a.Int32s(8)
}

// A clean Reset/alloc cycle must not trip the checker.
func TestPoisonAllowsCleanReuse(t *testing.T) {
	a := New()
	for i := 0; i < 10; i++ {
		w := a.Words(16)
		w[0] = uint64(i)
		s := a.Int32s(16)
		s[0] = int32(i)
		a.Reset()
	}
}
