// Package arena provides a bump allocator for per-request evaluation
// scratch: bitset word rows and int32 spans handed out by the batched
// frontier evaluator. An Arena grows to its high-water mark once and
// then serves every subsequent allocation from the same slabs, so a
// warm serving loop takes nothing from the garbage collector.
//
// Ownership contract: a slice returned by Words or Int32s is valid only
// until the next Reset. Callers must not retain arena memory across a
// Reset — in particular, no bitset built over arena words may escape
// into a shared structure (snapshot, model, result). Under the race
// detector, Reset poisons released memory and the next allocation
// verifies the poison survived, so a retained-and-written slice panics
// instead of silently corrupting a later frontier (see poison_race.go).
package arena

const (
	// minWords/minSpans size the first slab; after that slabs double.
	minWords = 128
	minSpans = 256

	wordPoison       = 0xBADC0FFEE0DDF00D
	spanPoison int32 = -0x21524111 // 0xDEADBEEF
)

// Arena is a bump allocator over two grow-only slabs. The zero value is
// ready to use but New is preferred for documentation's sake. An Arena
// belongs to one evaluation context and is not safe for concurrent use.
type Arena struct {
	words     []uint64
	wOff      int
	wPoisoned int // words [0,wPoisoned) hold wordPoison (race builds only)

	spans     []int32
	sOff      int
	sPoisoned int
}

// New returns an empty arena; slabs are allocated on first use.
func New() *Arena { return &Arena{} }

// Words returns a zeroed []uint64 of length n, valid until Reset.
func (a *Arena) Words(n int) []uint64 {
	if n < 0 {
		panic("arena: negative length")
	}
	if a.wOff+n > len(a.words) {
		// A fresh slab; outstanding slices keep the old one alive and
		// stay valid, they just no longer share storage with new ones.
		a.words = make([]uint64, grown(len(a.words), n, minWords))
		a.wOff, a.wPoisoned = 0, 0
	}
	s := a.words[a.wOff : a.wOff+n : a.wOff+n]
	if poisonEnabled {
		a.checkWords(a.wOff, a.wOff+n)
	}
	a.wOff += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// Int32s returns a zeroed []int32 of length n, valid until Reset.
func (a *Arena) Int32s(n int) []int32 {
	if n < 0 {
		panic("arena: negative length")
	}
	if a.sOff+n > len(a.spans) {
		a.spans = make([]int32, grown(len(a.spans), n, minSpans))
		a.sOff, a.sPoisoned = 0, 0
	}
	s := a.spans[a.sOff : a.sOff+n : a.sOff+n]
	if poisonEnabled {
		a.checkSpans(a.sOff, a.sOff+n)
	}
	a.sOff += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// Reset releases everything allocated since the last Reset. Slab
// capacity is retained — that is the point: the next frontier reuses
// the same memory. Under the race detector the released region is
// poisoned so stale references are caught on the next allocation.
func (a *Arena) Reset() {
	if poisonEnabled {
		for i := 0; i < a.wOff; i++ {
			a.words[i] = wordPoison
		}
		a.wPoisoned = a.wOff
		for i := 0; i < a.sOff; i++ {
			a.spans[i] = spanPoison
		}
		a.sPoisoned = a.sOff
	}
	a.wOff, a.sOff = 0, 0
}

// Bytes reports the arena's slab footprint — the steady-state memory a
// context pins between Resets (exported as the arena_bytes gauge).
func (a *Arena) Bytes() int { return len(a.words)*8 + len(a.spans)*4 }

// checkWords verifies the poison sentinel in [lo,hi) ∩ [0,wPoisoned):
// a mismatch means a slice handed out before the last Reset was written
// afterwards.
func (a *Arena) checkWords(lo, hi int) {
	if hi > a.wPoisoned {
		hi = a.wPoisoned
	}
	for i := lo; i < hi; i++ {
		if a.words[i] != wordPoison {
			panic("arena: word scratch written after Reset (stale reference)")
		}
	}
}

func (a *Arena) checkSpans(lo, hi int) {
	if hi > a.sPoisoned {
		hi = a.sPoisoned
	}
	for i := lo; i < hi; i++ {
		if a.spans[i] != spanPoison {
			panic("arena: span scratch written after Reset (stale reference)")
		}
	}
}

// grown picks the next slab length: double the current one, but at
// least min and at least n.
func grown(cur, n, min int) int {
	next := 2 * cur
	if next < min {
		next = min
	}
	if next < n {
		next = n
	}
	return next
}
