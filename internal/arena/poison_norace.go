//go:build !race

package arena

// Poison checking is compiled out of non-race builds; see poison_race.go.
const poisonEnabled = false
