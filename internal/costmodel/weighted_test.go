package costmodel_test

import (
	"strings"
	"testing"

	"qporder/internal/abstraction"
	"qporder/internal/costmodel"
	"qporder/internal/coverage"
	"qporder/internal/lav"
	"qporder/internal/planspace"
)

func TestWeightedNaming(t *testing.T) {
	d := domain(1)
	w := costmodel.NewWeighted("custom",
		costmodel.Component{Measure: costmodel.NewLinearCost(d.Catalog), Weight: 1})
	if w.Name() != "custom" {
		t.Errorf("Name = %q", w.Name())
	}
	auto := costmodel.NewWeighted("",
		costmodel.Component{Measure: costmodel.NewLinearCost(d.Catalog), Weight: 2})
	if !strings.Contains(auto.Name(), "linear-cost") {
		t.Errorf("auto name = %q", auto.Name())
	}
	if _, ok := auto.BucketOrder(0, nil); ok {
		t.Error("weighted measure claims a bucket order")
	}
	if auto.FullyMonotonic() {
		t.Error("weighted measure claims full monotonicity")
	}
}

func TestWeightedPanicsOnBadConfig(t *testing.T) {
	d := domain(1)
	for _, f := range []func(){
		func() { costmodel.NewWeighted("x") },
		func() {
			costmodel.NewWeighted("x",
				costmodel.Component{Measure: costmodel.NewLinearCost(d.Catalog), Weight: -1})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestWeightedIndependenceAndObserve(t *testing.T) {
	d := domain(6)
	w := costmodel.NewWeighted("",
		costmodel.Component{Measure: coverage.NewMeasure(d.Coverage), Weight: 1},
		costmodel.Component{Measure: costmodel.NewChainCost(d.Catalog,
			costmodel.Params{N: d.Params.N, Caching: true}), Weight: 0.001},
	)
	ctx := w.NewContext()
	all := d.Space.Enumerate()
	p, q := all[0], all[len(all)-1]
	// Independent only if independent under BOTH components: sharing a
	// source at some position breaks caching-independence.
	if ctx.Independent(p, p) {
		t.Error("plan independent of itself under caching component")
	}
	// Observing must propagate to both components: the fully-shared plan's
	// chain cost drops to zero, so its weighted utility must change.
	before := ctx.Evaluate(p).Lo
	ctx.Observe(p)
	after := ctx.Evaluate(p).Lo
	if after == before {
		t.Error("Observe did not propagate to components")
	}
	_ = q
	if got := len(ctx.Executed()); got != 1 {
		t.Errorf("Executed = %d", got)
	}
}

func TestWeightedWitnessSoundOnSmallGroups(t *testing.T) {
	d := domain(8)
	w := costmodel.NewWeighted("",
		costmodel.Component{Measure: coverage.NewMeasure(d.Coverage), Weight: 1},
		costmodel.Component{Measure: costmodel.NewLinearCost(d.Catalog), Weight: 0.001},
	)
	ctx := w.NewContext()
	root := d.Space.Root(abstraction.ByTuples(d.Catalog))
	all := d.Space.Enumerate()
	ds := []*planspace.Plan{all[0]}
	if ctx.IndependentWitness(root, ds) {
		// Verify by checking some member really is independent.
		found := false
		for _, c := range all {
			if ctx.Independent(c, ds[0]) {
				found = true
				break
			}
		}
		if !found {
			t.Error("witness claimed but no member is independent")
		}
	}
}

func TestLinearCostSharedStats(t *testing.T) {
	cat := lav.NewCatalog()
	a := cat.MustAdd("a", nil, lav.Stats{Tuples: 5, TransmitCost: 2, Overhead: 1})
	m := costmodel.NewLinearCost(cat)
	ctx := m.NewContext()
	leaves := abstraction.BuildLeaves([][]lav.SourceID{{a.ID}})
	p := planspace.New(leaves[0][0])
	if u := ctx.Evaluate(p); !u.IsPoint() || u.Lo != -11 {
		t.Errorf("utility = %v, want -11", u)
	}
	if ctx.Evals() != 1 {
		t.Errorf("Evals = %d", ctx.Evals())
	}
	if ctx.Measure() != m {
		t.Error("Measure() mismatch")
	}
}

func TestChainCostNames(t *testing.T) {
	d := domain(2)
	cases := map[string]costmodel.Params{
		"chain-cost":                 {N: 10},
		"chain-cost+failure":         {N: 10, Failure: true},
		"chain-cost+caching":         {N: 10, Caching: true},
		"chain-cost+failure+caching": {N: 10, Failure: true, Caching: true},
	}
	for want, prm := range cases {
		if got := costmodel.NewChainCost(d.Catalog, prm).Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
	if got := costmodel.NewMonetaryPerTuple(d.Catalog, costmodel.Params{N: 10, Caching: true}).Name(); got != "monetary-per-tuple+caching" {
		t.Errorf("monetary name = %q", got)
	}
}

func TestChainCostPanicsOnBadN(t *testing.T) {
	d := domain(2)
	for _, f := range []func(){
		func() { costmodel.NewChainCost(d.Catalog, costmodel.Params{}) },
		func() { costmodel.NewMonetaryPerTuple(d.Catalog, costmodel.Params{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMonetaryIndependenceWithCaching(t *testing.T) {
	d := domain(4)
	m := costmodel.NewMonetaryPerTuple(d.Catalog, costmodel.Params{N: d.Params.N, Caching: true})
	ctx := m.NewContext()
	all := d.Space.Enumerate()
	// Plans sharing no source at any position are independent; identical
	// plans are not.
	var disjoint *planspace.Plan
	for _, c := range all[1:] {
		shared := false
		for i := range c.Nodes {
			if c.Nodes[i].Source() == all[0].Nodes[i].Source() {
				shared = true
				break
			}
		}
		if !shared {
			disjoint = c
			break
		}
	}
	if disjoint == nil {
		t.Skip("no disjoint plan in this domain")
	}
	if !ctx.Independent(disjoint, all[0]) {
		t.Error("structurally disjoint plans not independent")
	}
	if ctx.Independent(all[0], all[0]) {
		t.Error("identical plans independent under caching")
	}
	if !ctx.IndependentWitness(d.Space.Root(abstraction.ByTuples(d.Catalog)),
		[]*planspace.Plan{all[0]}) {
		t.Error("root should have a witness avoiding one plan's sources")
	}
}
