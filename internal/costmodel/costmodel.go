// Package costmodel implements the cost-based utility measures of
// Sections 3 and 6:
//
//   - LinearCost: measure (1), cost(ViVj) = (h+αᵢnᵢ) + (h+αⱼnⱼ) —
//     fully monotonic, so Greedy applies;
//   - ChainCost: measure (2), the semijoin chain
//     cost = (h+α₁n₁) + Σₖ (h+αₖ·outₖ), outₖ = nₖ·outₖ₋₁/N — monotonic
//     only wrt the last subgoal; optional per-access failure probability
//     (expected retries inflate the overhead to h/(1-f)) and optional
//     caching of source operations (a cached operation costs zero);
//   - MonetaryPerTuple: the average monetary cost per output tuple,
//     u(p) = Cost$(p)/NumOutputTuples(p) with Cost$ computed by the chain
//     formula over access/tuple fees.
//
// All utilities are negated costs, so higher utility is always better.
package costmodel

import (
	"sort"

	"qporder/internal/abstraction"
	"qporder/internal/interval"
	"qporder/internal/lav"
	"qporder/internal/planspace"
)

// Params configures the shared cost machinery.
type Params struct {
	// N is the total number of items in each subgoal's domain — the
	// selectivity denominator of cost measure (2). Must be positive.
	N float64
	// Failure applies the expected-retry factor 1/(1-FailureProb) to each
	// access overhead ("cost with probability of source failure").
	Failure bool
	// Caching zeroes the cost of source operations whose results were
	// cached by a previously executed plan. A source operation is the pair
	// (plan position, source), following Section 6's caching experiments.
	Caching bool
}

// opKey identifies a source operation: position k accessing source s.
type opKey struct {
	pos int
	src lav.SourceID
}

// opCache is the set of cached source operations shared semantics across
// the caching measures.
type opCache map[opKey]bool

func (c opCache) add(d *planspace.Plan) {
	for k, n := range d.Nodes {
		c[opKey{k, n.Source()}] = true
	}
}

// structuralIndependent reports the sound caching-independence oracle:
// executing d cannot change the utility of any concrete plan in p iff no
// member of p can share a source operation with d, i.e. for every
// position, d's source is not among p's members there.
func structuralIndependent(p, d *planspace.Plan) bool {
	if p.Len() != d.Len() {
		return false
	}
	for k, n := range p.Nodes {
		dk := d.Nodes[k].Source()
		for _, v := range n.Sources {
			if v == dk {
				return false
			}
		}
	}
	return true
}

// structuralWitness reports whether some concrete plan in p shares no
// source operation with any plan in ds. The per-position check is exact
// for this oracle: positions can be chosen independently.
func structuralWitness(p *planspace.Plan, ds []*planspace.Plan) bool {
	for _, d := range ds {
		if d.Len() != p.Len() {
			return false
		}
	}
	for k, n := range p.Nodes {
		found := false
		for _, v := range n.Sources {
			used := false
			for _, d := range ds {
				if d.Nodes[k].Source() == v {
					used = true
					break
				}
			}
			if !used {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// effectiveOverhead returns h, inflated to h/(1-f) when failures apply.
func effectiveOverhead(st lav.Stats, failure bool) float64 {
	if failure {
		return st.Overhead / (1 - st.FailureProb)
	}
	return st.Overhead
}

// chainCost computes the cost interval of the semijoin chain for plan p
// and, for the monetary measure, the final output-tuple interval.
// cached may be nil (no caching). useFees selects monetary coefficients
// (AccessFee/TupleFee) instead of time coefficients (Overhead/TransmitCost).
// With a non-nil aggs front the loop-invariant per-node aggregates come
// from the shared snapshot; the arithmetic is operation-for-operation the
// same as the unhoisted path, so results are bit-identical either way.
func chainCost(cat *lav.Catalog, p *planspace.Plan, prm Params, cached opCache,
	useFees bool, aggs *aggFront) (cost, outLast interval.Interval) {
	prevOut := interval.Point(0) // output of the previous position
	total := interval.Point(0)
	for k, node := range p.Nodes {
		if aggs != nil {
			ag := aggs.of(node)
			var outIv interval.Interval
			if k == 0 {
				outIv = interval.New(ag.minN, ag.maxN)
			} else {
				outIv = interval.New(ag.minN, ag.maxN).Mul(prevOut).Scale(1 / prm.N)
			}
			var costIv interval.Interval
			for i, m := range node.Sources {
				var cm interval.Interval
				if cached != nil && cached[opKey{k, m}] {
					cm = interval.Point(0)
				} else {
					var outM interval.Interval
					if k == 0 {
						outM = interval.Point(ag.tuples[i])
					} else {
						outM = prevOut.Scale(ag.tN[i])
					}
					cm = outM.Scale(ag.coef[i]).Add(interval.Point(ag.base[i]))
				}
				if i == 0 {
					costIv = cm
				} else {
					costIv = costIv.Hull(cm)
				}
			}
			total = total.Add(costIv)
			prevOut = outIv
			continue
		}
		// Output-size interval of this position over all members.
		minN, maxN := nRange(cat, node)
		var outIv interval.Interval
		if k == 0 {
			outIv = interval.New(minN, maxN)
		} else {
			outIv = interval.New(minN, maxN).Mul(prevOut).Scale(1 / prm.N)
		}
		// Cost-contribution hull over members.
		var costIv interval.Interval
		for i, m := range node.Sources {
			st := cat.Source(m).Stats
			var cm interval.Interval
			if cached != nil && cached[opKey{k, m}] {
				cm = interval.Point(0)
			} else {
				var outM interval.Interval
				if k == 0 {
					outM = interval.Point(st.Tuples)
				} else {
					outM = prevOut.Scale(st.Tuples / prm.N)
				}
				if useFees {
					cm = outM.Scale(st.TupleFee).Add(interval.Point(st.AccessFee))
				} else {
					cm = outM.Scale(st.TransmitCost).
						Add(interval.Point(effectiveOverhead(st, prm.Failure)))
				}
			}
			if i == 0 {
				costIv = cm
			} else {
				costIv = costIv.Hull(cm)
			}
		}
		total = total.Add(costIv)
		prevOut = outIv
	}
	return total, prevOut
}

// nRange returns the min and max Tuples statistic over a node's members.
func nRange(cat *lav.Catalog, n *abstraction.Node) (float64, float64) {
	min := cat.Source(n.Sources[0]).Stats.Tuples
	max := min
	for _, id := range n.Sources[1:] {
		t := cat.Source(id).Stats.Tuples
		if t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	return min, max
}

// sortBestFirst returns sources ordered ascending by key (lowest cost
// first), breaking ties by ID for determinism.
func sortBestFirst(sources []lav.SourceID, key func(lav.SourceID) float64) []lav.SourceID {
	out := append([]lav.SourceID(nil), sources...)
	sort.SliceStable(out, func(i, j int) bool {
		ki, kj := key(out[i]), key(out[j])
		if ki != kj {
			return ki < kj
		}
		return out[i] < out[j]
	})
	return out
}
