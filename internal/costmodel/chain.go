package costmodel

import (
	"fmt"

	"qporder/internal/interval"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// ChainCost is cost measure (2) of Section 3 generalized to query length
// n as a semijoin chain:
//
//	cost(p) = (h₁' + α₁·n₁) + Σ_{k≥2} (hₖ' + αₖ·outₖ),  outₖ = nₖ·outₖ₋₁/N
//
// where h' = h/(1-f) under the source-failure option (expected retries)
// and a position's term is zero under the caching option when its source
// operation was cached by an executed plan. The measure is monotonic wrt
// the last subgoal only, so Greedy does not apply; without caching,
// utilities are plan-independent and Streamer applies; with caching,
// utilities can increase as plans execute, so diminishing returns fails
// and Streamer must not be used.
type ChainCost struct {
	cat  *lav.Catalog
	prm  Params
	aggs *aggCache // shared per-node aggregate snapshot; nil disables
}

// NewChainCost returns the measure; Params.N must be positive. Contexts
// share a measure-owned snapshot of per-node cost aggregates (see
// snapshot.go).
func NewChainCost(cat *lav.Catalog, prm Params) *ChainCost {
	if prm.N <= 0 {
		panic(fmt.Sprintf("costmodel: Params.N = %g, want > 0", prm.N))
	}
	return &ChainCost{cat: cat, prm: prm, aggs: newAggCache(cat, prm, false)}
}

// Name implements measure.Measure.
func (m *ChainCost) Name() string {
	n := "chain-cost"
	if m.prm.Failure {
		n += "+failure"
	}
	if m.prm.Caching {
		n += "+caching"
	}
	return n
}

// FullyMonotonic implements measure.Measure: measure (2) is monotonic wrt
// the last subgoal but not the first, so it is not fully monotonic.
func (m *ChainCost) FullyMonotonic() bool { return false }

// DiminishingReturns implements measure.Measure: holds exactly when no
// caching is in effect (utilities are then constant).
func (m *ChainCost) DiminishingReturns() bool { return !m.prm.Caching }

// PrefixIndependent implements measure.PrefixIndependent: without
// caching, no per-context state survives Observe, so utilities are
// invariant under the executed prefix; with caching, executed plans make
// later operations free, so they are not.
func (m *ChainCost) PrefixIndependent() bool { return !m.prm.Caching }

// BucketOrder implements measure.Measure.
func (m *ChainCost) BucketOrder(int, []lav.SourceID) ([]lav.SourceID, bool) {
	return nil, false
}

// NewContext implements measure.Measure.
func (m *ChainCost) NewContext() measure.Context {
	var cache opCache
	if m.prm.Caching {
		cache = make(opCache)
	}
	return &chainCtx{m: m, cached: cache, aggs: newAggFront(m.aggs)}
}

type chainCtx struct {
	measure.Base
	m      *ChainCost
	cached opCache   // nil when caching is off
	aggs   *aggFront // nil selects the unhoisted legacy path
}

func (c *chainCtx) Measure() measure.Measure { return c.m }

// Evaluate implements measure.Context.
func (c *chainCtx) Evaluate(p *planspace.Plan) interval.Interval {
	c.CountEval()
	cost, _ := chainCost(c.m.cat, p, c.m.prm, c.cached, false, c.aggs)
	return cost.Neg()
}

// Observe implements measure.Context: under caching, the executed plan's
// source operations become free for subsequent plans.
func (c *chainCtx) Observe(d *planspace.Plan) {
	c.Record(d)
	if c.cached != nil {
		c.cached.add(d)
	}
}

// Independent implements measure.Context.
func (c *chainCtx) Independent(p, d *planspace.Plan) bool {
	if c.cached == nil {
		return c.CountIndep(true)
	}
	return c.CountIndep(structuralIndependent(p, d))
}

// IndependentWitness implements measure.Context.
func (c *chainCtx) IndependentWitness(p *planspace.Plan, ds []*planspace.Plan) bool {
	if c.cached == nil {
		return true
	}
	return structuralWitness(p, ds)
}

var _ measure.Measure = (*ChainCost)(nil)
var _ measure.Context = (*chainCtx)(nil)
