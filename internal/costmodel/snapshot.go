package costmodel

import (
	"sync"

	"qporder/internal/abstraction"
	"qporder/internal/lav"
)

// nodeAgg holds the loop-invariant per-node aggregates of the chain cost
// formula, hoisted out of the Evaluate hot loop: the member tuple-count
// range (nRange) and, per member, every catalog-derived coefficient the
// inner loop needs. All of it is a pure function of the immutable catalog
// and the measure's fixed Params, so it is computed once per node content
// and shared. The precomputed values feed exactly the same arithmetic the
// unhoisted loop performs (e.g. tN stores the already-divided
// Tuples/Params.N the loop would compute), keeping evaluated intervals
// bit-identical to the legacy path.
type nodeAgg struct {
	minN, maxN float64   // Tuples range over members (nRange)
	tuples     []float64 // Tuples per member (position-0 output)
	tN         []float64 // Tuples/Params.N per member (later positions)
	coef       []float64 // TransmitCost (time) or TupleFee (monetary)
	base       []float64 // effectiveOverhead (time) or AccessFee (monetary)
}

func computeAgg(cat *lav.Catalog, n *abstraction.Node, prm Params, useFees bool) *nodeAgg {
	k := len(n.Sources)
	ag := &nodeAgg{
		tuples: make([]float64, k),
		tN:     make([]float64, k),
		coef:   make([]float64, k),
		base:   make([]float64, k),
	}
	for i, id := range n.Sources {
		st := cat.Source(id).Stats
		ag.tuples[i] = st.Tuples
		ag.tN[i] = st.Tuples / prm.N
		if useFees {
			ag.coef[i] = st.TupleFee
			ag.base[i] = st.AccessFee
		} else {
			ag.coef[i] = st.TransmitCost
			ag.base[i] = effectiveOverhead(st, prm.Failure)
		}
		if i == 0 {
			ag.minN, ag.maxN = st.Tuples, st.Tuples
		} else {
			if st.Tuples < ag.minN {
				ag.minN = st.Tuples
			}
			if st.Tuples > ag.maxN {
				ag.maxN = st.Tuples
			}
		}
	}
	return ag
}

// aggCache is the measure-owned shared snapshot of node aggregates, keyed
// by node content (abstraction.Node.Key) so iDrips' per-Next
// re-abstraction and parallel workers' forked contexts reuse one
// another's work. Concurrency-safe; racing computations store identical
// values.
type aggCache struct {
	cat     *lav.Catalog
	prm     Params
	useFees bool
	m       sync.Map // node key string -> *nodeAgg
}

func newAggCache(cat *lav.Catalog, prm Params, useFees bool) *aggCache {
	return &aggCache{cat: cat, prm: prm, useFees: useFees}
}

func (a *aggCache) shared(n *abstraction.Node) *nodeAgg {
	k := n.Key()
	if v, ok := a.m.Load(k); ok {
		return v.(*nodeAgg)
	}
	ag := computeAgg(a.cat, n, a.prm, a.useFees)
	if v, loaded := a.m.LoadOrStore(k, ag); loaded {
		return v.(*nodeAgg)
	}
	return ag
}

// aggFront is a per-context pointer-keyed front over a shared aggCache: a
// local hit costs one map probe with no key boxing, so the warm Evaluate
// path stays allocation-free. A nil front selects the legacy unhoisted
// computation (the differential oracle in tests).
type aggFront struct {
	cache *aggCache
	local map[*abstraction.Node]*nodeAgg
}

func newAggFront(cache *aggCache) *aggFront {
	if cache == nil {
		return nil
	}
	return &aggFront{cache: cache, local: make(map[*abstraction.Node]*nodeAgg)}
}

func (f *aggFront) of(n *abstraction.Node) *nodeAgg {
	if ag, ok := f.local[n]; ok {
		return ag
	}
	ag := f.cache.shared(n)
	f.local[n] = ag
	return ag
}
