package costmodel

import (
	"fmt"

	"qporder/internal/interval"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// MonetaryPerTuple is the fourth experimental utility of Section 6: the
// average monetary cost per output tuple,
//
//	u(p) = −Cost$(p) / NumOutputTuples(p)
//
// where Cost$ follows the chain formula (2) over the sources' monetary
// fees (AccessFee per access, TupleFee per transmitted item) and
// NumOutputTuples is the chain's final output estimate, as in [23].
// The ratio destroys the correlation between the tuple-count abstraction
// heuristic and utility, which is what makes abstraction ineffective in
// panels (j)-(l) of Figure 6.
type MonetaryPerTuple struct {
	cat  *lav.Catalog
	prm  Params
	aggs *aggCache // shared per-node aggregate snapshot; nil disables
}

// NewMonetaryPerTuple returns the measure; Params.N must be positive.
// Params.Failure is ignored (fees are charged whether or not retries
// happen at the transport level).
func NewMonetaryPerTuple(cat *lav.Catalog, prm Params) *MonetaryPerTuple {
	if prm.N <= 0 {
		panic(fmt.Sprintf("costmodel: Params.N = %g, want > 0", prm.N))
	}
	prm.Failure = false
	return &MonetaryPerTuple{cat: cat, prm: prm, aggs: newAggCache(cat, prm, true)}
}

// Name implements measure.Measure.
func (m *MonetaryPerTuple) Name() string {
	n := "monetary-per-tuple"
	if m.prm.Caching {
		n += "+caching"
	}
	return n
}

// FullyMonotonic implements measure.Measure.
func (m *MonetaryPerTuple) FullyMonotonic() bool { return false }

// DiminishingReturns implements measure.Measure.
func (m *MonetaryPerTuple) DiminishingReturns() bool { return !m.prm.Caching }

// PrefixIndependent implements measure.PrefixIndependent: like ChainCost,
// utilities only depend on the executed prefix when caching is on.
func (m *MonetaryPerTuple) PrefixIndependent() bool { return !m.prm.Caching }

// BucketOrder implements measure.Measure.
func (m *MonetaryPerTuple) BucketOrder(int, []lav.SourceID) ([]lav.SourceID, bool) {
	return nil, false
}

// NewContext implements measure.Measure.
func (m *MonetaryPerTuple) NewContext() measure.Context {
	var cache opCache
	if m.prm.Caching {
		cache = make(opCache)
	}
	return &monetaryCtx{m: m, cached: cache, aggs: newAggFront(m.aggs)}
}

type monetaryCtx struct {
	measure.Base
	m      *MonetaryPerTuple
	cached opCache
	aggs   *aggFront // nil selects the unhoisted legacy path
}

func (c *monetaryCtx) Measure() measure.Measure { return c.m }

// Evaluate implements measure.Context.
func (c *monetaryCtx) Evaluate(p *planspace.Plan) interval.Interval {
	c.CountEval()
	cost, out := chainCost(c.m.cat, p, c.m.prm, c.cached, true, c.aggs)
	// out is strictly positive: Tuples >= 1 everywhere and N is finite.
	return cost.Div(out).Neg()
}

// Observe implements measure.Context.
func (c *monetaryCtx) Observe(d *planspace.Plan) {
	c.Record(d)
	if c.cached != nil {
		c.cached.add(d)
	}
}

// Independent implements measure.Context.
func (c *monetaryCtx) Independent(p, d *planspace.Plan) bool {
	if c.cached == nil {
		return c.CountIndep(true)
	}
	return c.CountIndep(structuralIndependent(p, d))
}

// IndependentWitness implements measure.Context.
func (c *monetaryCtx) IndependentWitness(p *planspace.Plan, ds []*planspace.Plan) bool {
	if c.cached == nil {
		return true
	}
	return structuralWitness(p, ds)
}

var _ measure.Measure = (*MonetaryPerTuple)(nil)
var _ measure.Context = (*monetaryCtx)(nil)
