package costmodel

import (
	"fmt"
	"strings"

	"qporder/internal/interval"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// Weighted combines component measures linearly, as in Example 1.2's
// u(p) = α·coverage(p) + β·cost(p). Weights must be non-negative (the
// component measures already orient utility so higher is better; to trade
// off against a cost, combine with a cost measure whose utility is the
// negated cost).
type Weighted struct {
	name       string
	components []Component
}

// Component pairs a measure with its weight.
type Component struct {
	Measure measure.Measure
	Weight  float64
}

// NewWeighted builds the combination. At least one component is required.
func NewWeighted(name string, components ...Component) *Weighted {
	if len(components) == 0 {
		panic("costmodel: Weighted needs at least one component")
	}
	for _, c := range components {
		if c.Weight < 0 {
			panic(fmt.Sprintf("costmodel: negative weight %g for %s", c.Weight, c.Measure.Name()))
		}
	}
	if name == "" {
		names := make([]string, len(components))
		for i, c := range components {
			names[i] = fmt.Sprintf("%g*%s", c.Weight, c.Measure.Name())
		}
		name = strings.Join(names, "+")
	}
	return &Weighted{name: name, components: components}
}

// Name implements measure.Measure.
func (m *Weighted) Name() string { return m.name }

// FullyMonotonic implements measure.Measure. A weighted sum of fully
// monotonic measures is fully monotonic only if their per-bucket orders
// compose, which does not hold in general; we conservatively report false.
func (m *Weighted) FullyMonotonic() bool { return false }

// DiminishingReturns implements measure.Measure: a non-negative
// combination of diminishing-returns measures is diminishing.
func (m *Weighted) DiminishingReturns() bool {
	for _, c := range m.components {
		if !c.Measure.DiminishingReturns() {
			return false
		}
	}
	return true
}

// BucketOrder implements measure.Measure.
func (m *Weighted) BucketOrder(int, []lav.SourceID) ([]lav.SourceID, bool) {
	return nil, false
}

// NewContext implements measure.Measure.
func (m *Weighted) NewContext() measure.Context {
	subs := make([]measure.Context, len(m.components))
	for i, c := range m.components {
		subs[i] = c.Measure.NewContext()
	}
	return &weightedCtx{m: m, subs: subs}
}

type weightedCtx struct {
	measure.Base
	m    *Weighted
	subs []measure.Context
}

func (c *weightedCtx) Measure() measure.Measure { return c.m }

// Evaluate implements measure.Context as the weighted interval sum.
func (c *weightedCtx) Evaluate(p *planspace.Plan) interval.Interval {
	c.CountEval()
	total := interval.Point(0)
	for i, sub := range c.subs {
		total = total.Add(sub.Evaluate(p).Scale(c.m.components[i].Weight))
	}
	return total
}

// Observe implements measure.Context.
func (c *weightedCtx) Observe(d *planspace.Plan) {
	c.Record(d)
	for _, sub := range c.subs {
		sub.Observe(d)
	}
}

// Independent implements measure.Context: sound iff independent under
// every component.
func (c *weightedCtx) Independent(p, d *planspace.Plan) bool {
	for _, sub := range c.subs {
		if !sub.Independent(p, d) {
			return c.CountIndep(false)
		}
	}
	return c.CountIndep(true)
}

// IndependentWitness implements measure.Context. Component witnesses may
// differ, so a common concrete witness is searched by bounded
// enumeration, which is sound.
func (c *weightedCtx) IndependentWitness(p *planspace.Plan, ds []*planspace.Plan) bool {
	return measure.EnumerateWitness(p, ds, func(a, b *planspace.Plan) bool {
		return c.Independent(a, b)
	})
}

var _ measure.Measure = (*Weighted)(nil)
var _ measure.Context = (*weightedCtx)(nil)
