package costmodel_test

import (
	"testing"

	"qporder/internal/abstraction"
	"qporder/internal/costmodel"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// ioWorld builds a two-bucket catalog with known linear terms and page
// footprints: a=210+2p, b=55+1p, c=110+3p, d=20+1p at faultCost 1.
func ioWorld(t *testing.T) (*lav.Catalog, []int, [][]lav.SourceID) {
	t.Helper()
	cat := lav.NewCatalog()
	a := cat.MustAdd("a", nil, lav.Stats{Tuples: 100, TransmitCost: 2, Overhead: 10})
	b := cat.MustAdd("b", nil, lav.Stats{Tuples: 50, TransmitCost: 1, Overhead: 5})
	c := cat.MustAdd("c", nil, lav.Stats{Tuples: 100, TransmitCost: 1, Overhead: 10})
	d := cat.MustAdd("d", nil, lav.Stats{Tuples: 10, TransmitCost: 1, Overhead: 10})
	pages := []int{2, 1, 3, 1}
	buckets := [][]lav.SourceID{{a.ID, b.ID}, {c.ID, d.ID}}
	return cat, pages, buckets
}

func TestIOCostColdManual(t *testing.T) {
	cat, pages, buckets := ioWorld(t)
	m := costmodel.NewIOCost(cat, pages, 100, false)
	ctx := m.NewContext()
	leaves := abstraction.BuildLeaves(buckets)
	p := planspace.New(leaves[0][0], leaves[1][1]) // a, d
	// cost = (210 + 100*2) + (20 + 100*1) = 530; utility = -530.
	if got := ctx.Evaluate(p).Lo; got != -530 {
		t.Errorf("cold utility = %g, want -530", got)
	}
	if !m.FullyMonotonic() || !m.DiminishingReturns() || !m.PrefixIndependent() {
		t.Error("cold IOCost must be fully monotonic, diminishing-returns, prefix-independent")
	}
	// Cold terms at faultCost 100: a=410, b=155, c=410, d=120.
	got, ok := m.BucketOrder(0, buckets[0])
	if !ok || got[0] != buckets[0][1] || got[1] != buckets[0][0] {
		t.Errorf("cold BucketOrder = %v ok=%v, want [b a] true", got, ok)
	}
}

func TestIOCostWarming(t *testing.T) {
	cat, pages, buckets := ioWorld(t)
	m := costmodel.NewIOCost(cat, pages, 100, true)
	if m.FullyMonotonic() || m.DiminishingReturns() || m.PrefixIndependent() {
		t.Error("caching IOCost must not claim monotonicity properties")
	}
	if _, ok := m.BucketOrder(0, buckets[0]); ok {
		t.Error("caching IOCost must decline BucketOrder")
	}
	ctx := m.NewContext()
	leaves := abstraction.BuildLeaves(buckets)
	ad := planspace.New(leaves[0][0], leaves[1][1]) // a, d
	bd := planspace.New(leaves[0][1], leaves[1][1]) // b, d
	if got := ctx.Evaluate(ad).Lo; got != -530 {
		t.Fatalf("pre-warm utility = %g, want -530", got)
	}
	ctx.Observe(ad)
	// a and d warm: cost drops to linear 210 + 20.
	if got := ctx.Evaluate(ad).Lo; got != -230 {
		t.Errorf("post-warm utility = %g, want -230", got)
	}
	// b still cold, d warm: (55 + 100) + 20.
	if got := ctx.Evaluate(bd).Lo; got != -175 {
		t.Errorf("mixed utility = %g, want -175", got)
	}

	// Independence: re-executing the all-warm plan ad changes nothing;
	// bd shares position-1 source d with... every plan, but its
	// position-0 source b is fresh, so plans using b are dependent.
	if !ctx.Independent(bd, ad) {
		t.Error("all-warm executed plan must be independent of everything")
	}
	if ctx.Independent(bd, bd) {
		t.Error("a plan is not independent of executing itself while cold")
	}

	// A fork must reproduce the warm set via Observe replay.
	fork := measure.Fork(ctx)
	if got := fork.Evaluate(bd).Lo; got != -175 {
		t.Errorf("forked utility = %g, want -175", got)
	}
}

func TestIOCostDefaultFaultCost(t *testing.T) {
	cat, pages, _ := ioWorld(t)
	m := costmodel.NewIOCost(cat, pages, 0, false)
	ctx := m.NewContext()
	leaves := abstraction.BuildLeaves([][]lav.SourceID{{0}})
	p := planspace.New(leaves[0][0])
	want := -(210 + costmodel.DefaultFaultCost*2.0)
	if got := ctx.Evaluate(p).Lo; got != want {
		t.Errorf("default fault cost utility = %g, want %g", got, want)
	}
}
