package costmodel

import (
	"fmt"
	"math/rand"
	"testing"

	"qporder/internal/abstraction"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// testCatalog builds a random catalog with nBuckets buckets of width
// sources and returns the bucket layout.
func testCatalog(seed int64, nBuckets, width int) (*lav.Catalog, [][]lav.SourceID) {
	rng := rand.New(rand.NewSource(seed))
	cat := lav.NewCatalog()
	buckets := make([][]lav.SourceID, nBuckets)
	for b := range buckets {
		for j := 0; j < width; j++ {
			st := lav.Stats{
				Tuples:       1 + rng.Float64()*999,
				Overhead:     rng.Float64() * 5,
				TransmitCost: rng.Float64() * 0.01,
				FailureProb:  rng.Float64() * 0.5,
				AccessFee:    rng.Float64() * 2,
				TupleFee:     rng.Float64() * 0.05,
			}
			src := cat.MustAdd(fmt.Sprintf("S%d_%d", b, j), nil, st)
			buckets[b] = append(buckets[b], src.ID)
		}
	}
	return cat, buckets
}

// TestHoistedChainMatchesLegacy drives hoisted and legacy contexts of
// every chain-family configuration through an identical schedule and
// requires bit-identical intervals — the hoisted aggregates must feed the
// exact same float operations the unhoisted loop performs.
func TestHoistedChainMatchesLegacy(t *testing.T) {
	for _, cfg := range []struct {
		name             string
		failure, caching bool
		monetary         bool
	}{
		{"chain", false, false, false},
		{"chain+failure", true, false, false},
		{"chain+caching", false, true, false},
		{"chain+failure+caching", true, true, false},
		{"monetary", false, false, true},
		{"monetary+caching", false, true, true},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				cat, buckets := testCatalog(seed, 3, 6)
				space := planspace.NewSpace(buckets)
				prm := Params{N: 5000, Failure: cfg.failure, Caching: cfg.caching}

				var hoisted, legacy measure.Context
				if cfg.monetary {
					hoisted = NewMonetaryPerTuple(cat, prm).NewContext()
					lm := &MonetaryPerTuple{cat: cat, prm: prm}
					lm.prm.Failure = false
					legacy = lm.NewContext()
				} else {
					hoisted = NewChainCost(cat, prm).NewContext()
					legacy = (&ChainCost{cat: cat, prm: prm}).NewContext()
				}

				rng := rand.New(rand.NewSource(seed ^ 0xd1ff))
				all := space.Enumerate()
				for round := 0; round < 3; round++ {
					// Fresh hierarchies per round: distinct Node objects with
					// identical content, as iDrips produces.
					frontier := []*planspace.Plan{space.Root(abstraction.ByTuples(cat))}
					for len(frontier) > 0 {
						p := frontier[rng.Intn(len(frontier))]
						if a, b := hoisted.Evaluate(p), legacy.Evaluate(p); a != b {
							t.Fatalf("seed=%d plan %s: hoisted %v != legacy %v", seed, p.Key(), a, b)
						}
						if p.Concrete() {
							break
						}
						frontier = p.Refine()
					}
					for i := 0; i < 5; i++ {
						p := all[rng.Intn(len(all))]
						if a, b := hoisted.Evaluate(p), legacy.Evaluate(p); a != b {
							t.Fatalf("seed=%d plan %s: hoisted %v != legacy %v", seed, p.Key(), a, b)
						}
					}
					d := all[rng.Intn(len(all))]
					hoisted.Observe(d)
					legacy.Observe(d)
				}
			}
		})
	}
}

// TestHoistedLinearMatchesLegacy: same differential for LinearCost
// (precomputed term table + shared group hulls vs direct recomputation).
func TestHoistedLinearMatchesLegacy(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		cat, buckets := testCatalog(seed, 3, 6)
		space := planspace.NewSpace(buckets)
		hoisted := NewLinearCost(cat).NewContext()
		legacy := (&LinearCost{cat: cat}).NewContext()
		rng := rand.New(rand.NewSource(seed))
		all := space.Enumerate()
		frontier := []*planspace.Plan{space.Root(abstraction.ByTuples(cat))}
		for len(frontier) > 0 {
			p := frontier[rng.Intn(len(frontier))]
			if a, b := hoisted.Evaluate(p), legacy.Evaluate(p); a != b {
				t.Fatalf("seed=%d plan %s: hoisted %v != legacy %v", seed, p.Key(), a, b)
			}
			if p.Concrete() {
				break
			}
			frontier = p.Refine()
		}
		for i := 0; i < 10; i++ {
			p := all[rng.Intn(len(all))]
			if a, b := hoisted.Evaluate(p), legacy.Evaluate(p); a != b {
				t.Fatalf("seed=%d plan %s: hoisted %v != legacy %v", seed, p.Key(), a, b)
			}
		}
		// BucketOrder consumes the precomputed terms.
		hm := NewLinearCost(cat)
		lm := &LinearCost{cat: cat}
		for b, srcs := range buckets {
			ho, _ := hm.BucketOrder(b, srcs)
			lo, _ := lm.BucketOrder(b, srcs)
			for i := range ho {
				if ho[i] != lo[i] {
					t.Fatalf("seed=%d bucket %d: order differs at %d", seed, b, i)
				}
			}
		}
	}
}
