package costmodel

import (
	"qporder/internal/interval"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// DefaultFaultCost is the default per-segment-page fault charge of the
// I/O-aware cost measure, calibrated against the generator's fixed
// per-access Overhead of 10: reading a cold 4 KiB page costs a couple
// of network round trips.
const DefaultFaultCost = 25

// IOCost is the I/O-aware extension of cost measure (1): each source
// access pays, on top of the linear term h + α·n, a charge per
// cold segment page read from the answer store:
//
//	cost(p) = Σᵢ (hᵢ + αᵢ·nᵢ + f·coldPagesᵢ)
//
// where coldPagesᵢ is the source's resident page footprint
// (store.ResidentPages) if its pages are cold, 0 if warm. Two variants:
//
//   - Cold (caching=false): every access faults its full footprint, so
//     the per-source term is constant — the measure is fully monotonic
//     (Greedy applies) and diminishing-returns (Streamer applies), like
//     LinearCost with a storage-aware tilt toward small sources.
//   - Warm (caching=true): a source's pages stay warm once any executed
//     plan has read them, so later plans through warm sources get
//     cheaper. Utilities now rise as the prefix grows — not fully
//     monotonic, not diminishing-returns — which exercises exactly the
//     conditional-utility machinery (iDrips/PI) the paper builds.
//
// Guravannavar et al. (PAPERS.md) motivate distinguishing cold from
// warm access paths when ordering work; this measure brings that
// distinction to plan ordering over the segment store.
type IOCost struct {
	cat *lav.Catalog
	// pages[id] is the source's resident segment-page footprint; IDs at
	// or beyond the slice charge zero pages.
	pages []int
	// linear[id] hoists h + α·n, as in LinearCost.
	linear    []float64
	faultCost float64
	caching   bool
}

// NewIOCost returns the measure over the catalog. pages holds each
// source's resident segment-page count indexed by SourceID (the catalog
// records persist it; store-less callers compute it with
// store.ResidentPages). faultCost <= 0 selects DefaultFaultCost.
func NewIOCost(cat *lav.Catalog, pages []int, faultCost float64, caching bool) *IOCost {
	if faultCost <= 0 {
		faultCost = DefaultFaultCost
	}
	m := &IOCost{
		cat:       cat,
		pages:     pages,
		linear:    make([]float64, cat.Len()),
		faultCost: faultCost,
		caching:   caching,
	}
	for id := range m.linear {
		st := cat.Source(lav.SourceID(id)).Stats
		m.linear[id] = st.Overhead + st.TransmitCost*st.Tuples
	}
	return m
}

// Name implements measure.Measure.
func (m *IOCost) Name() string {
	if m.caching {
		return "io-cost-caching"
	}
	return "io-cost"
}

// FullyMonotonic implements measure.Measure: only the cold variant has
// prefix-invariant per-source terms.
func (m *IOCost) FullyMonotonic() bool { return !m.caching }

// DiminishingReturns implements measure.Measure: with caching, executing
// a plan warms pages and can raise later plans' utilities.
func (m *IOCost) DiminishingReturns() bool { return !m.caching }

// PrefixIndependent implements measure.PrefixIndependent for the cold
// variant; the interface probe is dynamic, so the caching variant simply
// answers false.
func (m *IOCost) PrefixIndependent() bool { return !m.caching }

// sourcePages returns the resident page footprint charged for a source.
func (m *IOCost) sourcePages(id lav.SourceID) int {
	if int(id) >= 0 && int(id) < len(m.pages) {
		return m.pages[id]
	}
	return 0
}

// coldTerm is the full cold-access cost of one source.
func (m *IOCost) coldTerm(id lav.SourceID) float64 {
	var lin float64
	if int(id) >= 0 && int(id) < len(m.linear) {
		lin = m.linear[id]
	} else {
		st := m.cat.Source(id).Stats
		lin = st.Overhead + st.TransmitCost*st.Tuples
	}
	return lin + m.faultCost*float64(m.sourcePages(id))
}

// BucketOrder implements measure.Measure: cold terms are unconditional,
// so the cold variant orders best-first; warm utilities depend on the
// prefix, so the caching variant declines.
func (m *IOCost) BucketOrder(_ int, sources []lav.SourceID) ([]lav.SourceID, bool) {
	if m.caching {
		return sources, false
	}
	return sortBestFirst(sources, m.coldTerm), true
}

// NewContext implements measure.Measure.
func (m *IOCost) NewContext() measure.Context {
	return &ioCtx{m: m}
}

// ioCtx evaluates IOCost. For the caching variant it tracks which
// sources' pages the executed prefix has warmed; the warm set is a pure
// function of the executed prefix, so the default measure.Fork replay
// reproduces it exactly and parallel runs stay byte-identical.
type ioCtx struct {
	measure.Base
	m *IOCost
	// warm[id] is set once an executed plan has read the source
	// (caching variant only; nil otherwise until first Observe).
	warm map[lav.SourceID]bool
}

func (c *ioCtx) Measure() measure.Measure { return c.m }

// term is the source's cost conditioned on the executed prefix.
func (c *ioCtx) term(id lav.SourceID) float64 {
	if c.m.caching && c.warm[id] {
		// Pages already resident: only the linear term is charged.
		if int(id) >= 0 && int(id) < len(c.m.linear) {
			return c.m.linear[id]
		}
		st := c.m.cat.Source(id).Stats
		return st.Overhead + st.TransmitCost*st.Tuples
	}
	return c.m.coldTerm(id)
}

// Evaluate implements measure.Context: the negated sum of per-position
// term hulls.
func (c *ioCtx) Evaluate(p *planspace.Plan) interval.Interval {
	c.CountEval()
	total := interval.Point(0)
	for _, node := range p.Nodes {
		lo := c.term(node.Sources[0])
		hi := lo
		for _, s := range node.Sources[1:] {
			t := c.term(s)
			if t < lo {
				lo = t
			}
			if t > hi {
				hi = t
			}
		}
		total = total.Add(interval.New(lo, hi))
	}
	return total.Neg()
}

// Observe implements measure.Context: executing a plan warms its
// sources' pages (caching variant).
func (c *ioCtx) Observe(d *planspace.Plan) {
	c.Record(d)
	if !c.m.caching {
		return
	}
	if c.warm == nil {
		c.warm = make(map[lav.SourceID]bool)
	}
	for _, node := range d.Nodes {
		c.warm[node.Source()] = true
	}
}

// Independent implements measure.Context. Cold terms never move, so the
// cold variant is always independent. With caching, executing d can only
// change p's utility by warming a source p might use; plans are
// per-bucket, so the positional structural check is sound. A d whose
// sources are all already warm changes nothing.
func (c *ioCtx) Independent(p, d *planspace.Plan) bool {
	if !c.m.caching {
		return c.CountIndep(true)
	}
	if c.allWarm(d) {
		return c.CountIndep(true)
	}
	return c.CountIndep(structuralIndependent(p, d))
}

// IndependentWitness implements measure.Context.
func (c *ioCtx) IndependentWitness(p *planspace.Plan, ds []*planspace.Plan) bool {
	if !c.m.caching {
		return true
	}
	cold := ds[:0:0]
	for _, d := range ds {
		if !c.allWarm(d) {
			cold = append(cold, d)
		}
	}
	if len(cold) == 0 {
		return true
	}
	return structuralWitness(p, cold)
}

// allWarm reports whether every source of d is already warm.
func (c *ioCtx) allWarm(d *planspace.Plan) bool {
	for _, node := range d.Nodes {
		if !c.warm[node.Source()] {
			return false
		}
	}
	return true
}

var _ measure.Measure = (*IOCost)(nil)
var _ measure.Context = (*ioCtx)(nil)
var _ measure.PrefixIndependent = (*IOCost)(nil)
