package costmodel

import (
	"qporder/internal/interval"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// LinearCost is cost measure (1) of Section 3:
//
//	cost(p) = Σᵢ (hᵢ + αᵢ·nᵢ)
//
// a linear combination of independent per-source terms, hence fully
// monotonic: Greedy applies. Utilities are plan-independent, so the
// measure trivially satisfies diminishing returns as well.
type LinearCost struct {
	cat *lav.Catalog
	// terms precomputes h + α·n for every source registered at
	// construction time; later registrations fall back to on-the-fly
	// computation of the identical expression. A node's hull is then a
	// min/max scan over a flat float slice — a few nanoseconds per
	// member, which is why no per-node memo exists here: building a
	// content key to look the hull up would cost more than the scan.
	terms []float64
}

// NewLinearCost returns the measure over the given catalog with the
// per-source terms hoisted into a measure-owned table shared by every
// context.
func NewLinearCost(cat *lav.Catalog) *LinearCost {
	m := &LinearCost{cat: cat, terms: make([]float64, cat.Len())}
	for id := range m.terms {
		st := cat.Source(lav.SourceID(id)).Stats
		m.terms[id] = st.Overhead + st.TransmitCost*st.Tuples
	}
	return m
}

// Name implements measure.Measure.
func (m *LinearCost) Name() string { return "linear-cost" }

// FullyMonotonic implements measure.Measure.
func (m *LinearCost) FullyMonotonic() bool { return true }

// DiminishingReturns implements measure.Measure.
func (m *LinearCost) DiminishingReturns() bool { return true }

// PrefixIndependent implements measure.PrefixIndependent: utilities are a
// pure function of the plan's sources, never of the executed prefix.
func (m *LinearCost) PrefixIndependent() bool { return true }

// term is one source's cost contribution h + α·n.
func (m *LinearCost) term(id lav.SourceID) float64 {
	if int(id) >= 0 && int(id) < len(m.terms) {
		return m.terms[id]
	}
	st := m.cat.Source(id).Stats
	return st.Overhead + st.TransmitCost*st.Tuples
}

// BucketOrder implements measure.Measure: lowest per-source cost first.
func (m *LinearCost) BucketOrder(_ int, sources []lav.SourceID) ([]lav.SourceID, bool) {
	return sortBestFirst(sources, m.term), true
}

// NewContext implements measure.Measure.
func (m *LinearCost) NewContext() measure.Context {
	return &linearCtx{m: m}
}

type linearCtx struct {
	measure.Base
	m *LinearCost
}

func (c *linearCtx) Measure() measure.Measure { return c.m }

// Evaluate implements measure.Context: the negated sum of per-position
// term hulls.
func (c *linearCtx) Evaluate(p *planspace.Plan) interval.Interval {
	c.CountEval()
	total := interval.Point(0)
	for _, node := range p.Nodes {
		lo := c.m.term(node.Sources[0])
		hi := lo
		for _, s := range node.Sources[1:] {
			t := c.m.term(s)
			if t < lo {
				lo = t
			}
			if t > hi {
				hi = t
			}
		}
		total = total.Add(interval.New(lo, hi))
	}
	return total.Neg()
}

// Observe implements measure.Context; utilities are unconditional.
func (c *linearCtx) Observe(d *planspace.Plan) { c.Record(d) }

// Independent implements measure.Context: always independent.
func (c *linearCtx) Independent(_, _ *planspace.Plan) bool { return c.CountIndep(true) }

// IndependentWitness implements measure.Context: always true.
func (c *linearCtx) IndependentWitness(_ *planspace.Plan, _ []*planspace.Plan) bool {
	return true
}

var _ measure.Measure = (*LinearCost)(nil)
var _ measure.Context = (*linearCtx)(nil)
