package costmodel

import (
	"qporder/internal/interval"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// LinearCost is cost measure (1) of Section 3:
//
//	cost(p) = Σᵢ (hᵢ + αᵢ·nᵢ)
//
// a linear combination of independent per-source terms, hence fully
// monotonic: Greedy applies. Utilities are plan-independent, so the
// measure trivially satisfies diminishing returns as well.
type LinearCost struct {
	cat *lav.Catalog
}

// NewLinearCost returns the measure over the given catalog.
func NewLinearCost(cat *lav.Catalog) *LinearCost { return &LinearCost{cat: cat} }

// Name implements measure.Measure.
func (m *LinearCost) Name() string { return "linear-cost" }

// FullyMonotonic implements measure.Measure.
func (m *LinearCost) FullyMonotonic() bool { return true }

// DiminishingReturns implements measure.Measure.
func (m *LinearCost) DiminishingReturns() bool { return true }

// term is one source's cost contribution h + α·n.
func (m *LinearCost) term(id lav.SourceID) float64 {
	st := m.cat.Source(id).Stats
	return st.Overhead + st.TransmitCost*st.Tuples
}

// BucketOrder implements measure.Measure: lowest per-source cost first.
func (m *LinearCost) BucketOrder(_ int, sources []lav.SourceID) ([]lav.SourceID, bool) {
	return sortBestFirst(sources, m.term), true
}

// NewContext implements measure.Measure.
func (m *LinearCost) NewContext() measure.Context { return &linearCtx{m: m} }

type linearCtx struct {
	measure.Base
	m *LinearCost
}

func (c *linearCtx) Measure() measure.Measure { return c.m }

// Evaluate implements measure.Context: the negated sum of per-position
// term hulls.
func (c *linearCtx) Evaluate(p *planspace.Plan) interval.Interval {
	c.CountEval()
	total := interval.Point(0)
	for _, node := range p.Nodes {
		lo := c.m.term(node.Sources[0])
		hi := lo
		for _, s := range node.Sources[1:] {
			t := c.m.term(s)
			if t < lo {
				lo = t
			}
			if t > hi {
				hi = t
			}
		}
		total = total.Add(interval.New(lo, hi))
	}
	return total.Neg()
}

// Observe implements measure.Context; utilities are unconditional.
func (c *linearCtx) Observe(d *planspace.Plan) { c.Record(d) }

// Independent implements measure.Context: always independent.
func (c *linearCtx) Independent(_, _ *planspace.Plan) bool { return c.CountIndep(true) }

// IndependentWitness implements measure.Context: always true.
func (c *linearCtx) IndependentWitness(_ *planspace.Plan, _ []*planspace.Plan) bool {
	return true
}

var _ measure.Measure = (*LinearCost)(nil)
var _ measure.Context = (*linearCtx)(nil)
