package costmodel_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qporder/internal/abstraction"
	"qporder/internal/costmodel"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/planspace"
	"qporder/internal/workload"
)

func domain(seed int64) *workload.Domain {
	return workload.Generate(workload.Config{
		QueryLen: 3, BucketSize: 5, Universe: 256, Zones: 3, Seed: seed,
	})
}

// planOf builds the concrete plan choosing source index j in each bucket.
func planOf(d *workload.Domain, j int) *planspace.Plan {
	leaves := abstraction.BuildLeaves(d.Buckets)
	nodes := make([]*abstraction.Node, len(leaves))
	for i := range leaves {
		nodes[i] = leaves[i][j%len(leaves[i])]
	}
	return planspace.New(nodes...)
}

func TestLinearCostManual(t *testing.T) {
	cat := lav.NewCatalog()
	a := cat.MustAdd("a", nil, lav.Stats{Tuples: 100, TransmitCost: 2, Overhead: 10})
	b := cat.MustAdd("b", nil, lav.Stats{Tuples: 50, TransmitCost: 1, Overhead: 5})
	m := costmodel.NewLinearCost(cat)
	ctx := m.NewContext()
	leaves := abstraction.BuildLeaves([][]lav.SourceID{{a.ID}, {b.ID}})
	p := planspace.New(leaves[0][0], leaves[1][0])
	// cost = (10 + 2*100) + (5 + 1*50) = 265; utility = -265.
	if got := ctx.Evaluate(p).Lo; got != -265 {
		t.Errorf("utility = %g, want -265", got)
	}
}

func TestLinearCostBucketOrder(t *testing.T) {
	cat := lav.NewCatalog()
	// terms: a=210, b=55, c=110
	a := cat.MustAdd("a", nil, lav.Stats{Tuples: 100, TransmitCost: 2, Overhead: 10})
	b := cat.MustAdd("b", nil, lav.Stats{Tuples: 50, TransmitCost: 1, Overhead: 5})
	c := cat.MustAdd("c", nil, lav.Stats{Tuples: 100, TransmitCost: 1, Overhead: 10})
	m := costmodel.NewLinearCost(cat)
	got, ok := m.BucketOrder(0, []lav.SourceID{a.ID, b.ID, c.ID})
	if !ok {
		t.Fatal("BucketOrder not available")
	}
	want := []lav.SourceID{b.ID, c.ID, a.ID}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestChainCostManualTwoSubgoals(t *testing.T) {
	cat := lav.NewCatalog()
	a := cat.MustAdd("a", nil, lav.Stats{Tuples: 100, TransmitCost: 2, Overhead: 10})
	b := cat.MustAdd("b", nil, lav.Stats{Tuples: 50, TransmitCost: 1, Overhead: 5})
	m := costmodel.NewChainCost(cat, costmodel.Params{N: 1000})
	ctx := m.NewContext()
	leaves := abstraction.BuildLeaves([][]lav.SourceID{{a.ID}, {b.ID}})
	p := planspace.New(leaves[0][0], leaves[1][0])
	// out1 = 100; cost = (10 + 2*100) + (5 + 1*(50*100/1000)) = 210 + 10 = 220.
	if got := ctx.Evaluate(p).Lo; got != -220 {
		t.Errorf("utility = %g, want -220", got)
	}
}

func TestChainCostFailureInflatesOverhead(t *testing.T) {
	cat := lav.NewCatalog()
	a := cat.MustAdd("a", nil, lav.Stats{Tuples: 10, TransmitCost: 1, Overhead: 10, FailureProb: 0.5})
	m := costmodel.NewChainCost(cat, costmodel.Params{N: 100, Failure: true})
	ctx := m.NewContext()
	leaves := abstraction.BuildLeaves([][]lav.SourceID{{a.ID}})
	p := planspace.New(leaves[0][0])
	// overhead 10/(1-0.5)=20, transmit 10 → cost 30.
	if got := ctx.Evaluate(p).Lo; got != -30 {
		t.Errorf("utility = %g, want -30", got)
	}
}

func TestChainCostCachingZeroesSharedOps(t *testing.T) {
	cat := lav.NewCatalog()
	a := cat.MustAdd("a", nil, lav.Stats{Tuples: 100, TransmitCost: 2, Overhead: 10})
	b := cat.MustAdd("b", nil, lav.Stats{Tuples: 50, TransmitCost: 1, Overhead: 5})
	c := cat.MustAdd("c", nil, lav.Stats{Tuples: 80, TransmitCost: 1, Overhead: 5})
	m := costmodel.NewChainCost(cat, costmodel.Params{N: 1000, Caching: true})
	ctx := m.NewContext()
	leaves := abstraction.BuildLeaves([][]lav.SourceID{{a.ID}, {b.ID, c.ID}})
	pab := planspace.New(leaves[0][0], leaves[1][0])
	pac := planspace.New(leaves[0][0], leaves[1][1])
	before := ctx.Evaluate(pac).Lo
	ctx.Observe(pab) // caches (0,a) and (1,b)
	after := ctx.Evaluate(pac).Lo
	// pac shares op (0,a): its cost drops by a's term 10+2*100=210.
	if math.Abs((after-before)-210) > 1e-9 {
		t.Errorf("caching delta = %g, want 210", after-before)
	}
	// utility increased ⇒ diminishing returns must be reported false.
	if m.DiminishingReturns() {
		t.Error("caching chain cost claims diminishing returns")
	}
	// And re-evaluating pab itself is now fully cached: cost 0.
	if got := ctx.Evaluate(pab).Lo; got != 0 {
		t.Errorf("fully cached plan utility = %g, want 0", got)
	}
}

func TestMonetaryManual(t *testing.T) {
	cat := lav.NewCatalog()
	a := cat.MustAdd("a", nil, lav.Stats{Tuples: 100, AccessFee: 7, TupleFee: 0.1})
	b := cat.MustAdd("b", nil, lav.Stats{Tuples: 50, AccessFee: 3, TupleFee: 0.2})
	m := costmodel.NewMonetaryPerTuple(cat, costmodel.Params{N: 1000})
	ctx := m.NewContext()
	leaves := abstraction.BuildLeaves([][]lav.SourceID{{a.ID}, {b.ID}})
	p := planspace.New(leaves[0][0], leaves[1][0])
	// out1=100, out2=50*100/1000=5; cost$ = (7+0.1*100)+(3+0.2*5)=17+4=21.
	// utility = -21/5 = -4.2.
	if got := ctx.Evaluate(p).Lo; math.Abs(got-(-4.2)) > 1e-9 {
		t.Errorf("utility = %g, want -4.2", got)
	}
}

// TestAbstractIntervalSoundness: for every cost measure, abstract plan
// intervals contain all represented concrete utilities, across caching
// states.
func TestAbstractIntervalSoundness(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	prop := func(seed int64) bool {
		d := domain(seed)
		rng := rand.New(rand.NewSource(seed ^ 77))
		ms := []measure.Measure{
			costmodel.NewLinearCost(d.Catalog),
			costmodel.NewChainCost(d.Catalog, costmodel.Params{N: d.Params.N, Failure: true}),
			costmodel.NewChainCost(d.Catalog, costmodel.Params{N: d.Params.N, Failure: true, Caching: true}),
			costmodel.NewMonetaryPerTuple(d.Catalog, costmodel.Params{N: d.Params.N}),
			costmodel.NewMonetaryPerTuple(d.Catalog, costmodel.Params{N: d.Params.N, Caching: true}),
		}
		all := d.Space.Enumerate()
		for _, m := range ms {
			ctx := m.NewContext()
			for round := 0; round < 2; round++ {
				work := []*planspace.Plan{d.Space.Root(abstraction.ByTuples(d.Catalog))}
				for len(work) > 0 {
					p := work[len(work)-1]
					work = work[:len(work)-1]
					iv := ctx.Evaluate(p)
					for _, c := range all {
						if !represents(p, c) {
							continue
						}
						u := ctx.Evaluate(c).Lo
						if u < iv.Lo-1e-9 || u > iv.Hi+1e-9 {
							t.Logf("measure=%s plan=%s member=%s u=%g iv=%v",
								m.Name(), p.Key(), c.Key(), u, iv)
							return false
						}
					}
					if !p.Concrete() && rng.Intn(2) == 0 {
						work = append(work, p.Refine()...)
					}
				}
				ctx.Observe(all[rng.Intn(len(all))])
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func represents(p, c *planspace.Plan) bool {
	for i, n := range p.Nodes {
		found := false
		for _, s := range n.Sources {
			if c.Nodes[i].Source() == s {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestCachingIndependenceOracleSound: oracle-independent plans must not
// change utility when the other plan executes.
func TestCachingIndependenceOracleSound(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	prop := func(seed int64) bool {
		d := domain(seed)
		rng := rand.New(rand.NewSource(seed ^ 31))
		m := costmodel.NewChainCost(d.Catalog, costmodel.Params{N: d.Params.N, Caching: true})
		ctx := m.NewContext()
		all := d.Space.Enumerate()
		for round := 0; round < 4; round++ {
			dp := all[rng.Intn(len(all))]
			type snap struct {
				u     float64
				indep bool
			}
			before := make(map[string]snap)
			for _, p := range all {
				before[p.Key()] = snap{ctx.Evaluate(p).Lo, ctx.Independent(p, dp)}
			}
			ctx.Observe(dp)
			for _, p := range all {
				s := before[p.Key()]
				if s.indep && ctx.Evaluate(p).Lo != s.u {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestNoCachingMeasuresAreUnconditional: without caching, utilities never
// change as plans execute.
func TestNoCachingMeasuresAreUnconditional(t *testing.T) {
	d := domain(5)
	rng := rand.New(rand.NewSource(11))
	for _, m := range []measure.Measure{
		costmodel.NewLinearCost(d.Catalog),
		costmodel.NewChainCost(d.Catalog, costmodel.Params{N: d.Params.N, Failure: true}),
		costmodel.NewMonetaryPerTuple(d.Catalog, costmodel.Params{N: d.Params.N}),
	} {
		ctx := m.NewContext()
		all := d.Space.Enumerate()
		before := make(map[string]float64)
		for _, p := range all {
			before[p.Key()] = ctx.Evaluate(p).Lo
		}
		for i := 0; i < 3; i++ {
			ctx.Observe(all[rng.Intn(len(all))])
		}
		for _, p := range all {
			if ctx.Evaluate(p).Lo != before[p.Key()] {
				t.Errorf("measure %s: utility changed without caching", m.Name())
			}
		}
		if !m.DiminishingReturns() {
			t.Errorf("measure %s: constant utilities must satisfy diminishing returns", m.Name())
		}
	}
}

// TestGreedyOrderMatchesEvaluate: the BucketOrder of the fully monotonic
// measure is consistent with actual plan utilities — replacing a source
// with an earlier-ordered one never lowers utility.
func TestGreedyOrderConsistency(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	prop := func(seed int64) bool {
		d := domain(seed)
		m := costmodel.NewLinearCost(d.Catalog)
		ctx := m.NewContext()
		rng := rand.New(rand.NewSource(seed ^ 13))
		for bi, bucket := range d.Buckets {
			ordered, ok := m.BucketOrder(bi, bucket)
			if !ok {
				return false
			}
			// Build a random plan, substitute position bi with consecutive
			// ordered sources, check monotone utility.
			leaves := abstraction.BuildLeaves(d.Buckets)
			nodes := make([]*abstraction.Node, len(d.Buckets))
			for i := range nodes {
				nodes[i] = leaves[i][rng.Intn(len(leaves[i]))]
			}
			prevU := math.Inf(1)
			for _, s := range ordered {
				for _, leaf := range leaves[bi] {
					if leaf.Source() == s {
						nodes[bi] = leaf
					}
				}
				u := ctx.Evaluate(planspace.New(nodes...)).Lo
				if u > prevU+1e-9 {
					return false
				}
				prevU = u
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestWeightedCombination(t *testing.T) {
	d := domain(3)
	lin := costmodel.NewLinearCost(d.Catalog)
	chain := costmodel.NewChainCost(d.Catalog, costmodel.Params{N: d.Params.N})
	w := costmodel.NewWeighted("", costmodel.Component{Measure: lin, Weight: 2},
		costmodel.Component{Measure: chain, Weight: 0.5})
	ctx := w.NewContext()
	lctx, cctx := lin.NewContext(), chain.NewContext()
	p := planOf(d, 1)
	want := 2*lctx.Evaluate(p).Lo + 0.5*cctx.Evaluate(p).Lo
	if got := ctx.Evaluate(p).Lo; math.Abs(got-want) > 1e-9 {
		t.Errorf("weighted = %g, want %g", got, want)
	}
	if !w.DiminishingReturns() {
		t.Error("combination of diminishing measures should diminish")
	}
	wc := costmodel.NewWeighted("", costmodel.Component{
		Measure: costmodel.NewChainCost(d.Catalog, costmodel.Params{N: d.Params.N, Caching: true}),
		Weight:  1,
	})
	if wc.DiminishingReturns() {
		t.Error("combination with caching measure should not diminish")
	}
}
