package experiment

import (
	"testing"

	"qporder/internal/workload"
)

// benchCell runs one sequential qpbench cell per iteration; it is the
// profiling entry point for the hot-path work in this package's metrics.
func benchCell(b *testing.B, algo Algorithm, m MeasureKey, bucket, k int) {
	cfg := workload.Config{QueryLen: 3, BucketSize: bucket, Universe: 4096, Zones: 3, Seed: 42}
	d := workload.Generate(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(d, Cell{Algo: algo, Measure: m, K: k, Config: cfg})
	}
}

func BenchmarkCellPICoverage40(b *testing.B)     { benchCell(b, AlgoPI, MeasureCoverage, 40, 10) }
func BenchmarkCellIDripsCoverage40(b *testing.B) { benchCell(b, AlgoIDrips, MeasureCoverage, 40, 10) }
func BenchmarkCellStreamerCoverage40(b *testing.B) {
	benchCell(b, AlgoStreamer, MeasureCoverage, 40, 10)
}
func BenchmarkCellGreedyLinear80(b *testing.B) { benchCell(b, AlgoGreedy, MeasureLinear, 80, 20) }
