package experiment

import (
	"testing"

	"qporder/internal/workload"
)

// TestParallelCellMatchesSequential checks the harness-level determinism
// contract: a cell run with Parallelism 8 produces the same plan count
// and evaluation count as the sequential run (only timing may differ).
func TestParallelCellMatchesSequential(t *testing.T) {
	cfg := workload.Config{QueryLen: 3, BucketSize: 4, Universe: 512, Zones: 3, Seed: 2}
	d := workload.Generate(cfg)
	for _, algo := range []Algorithm{AlgoPI, AlgoIDrips, AlgoStreamer, AlgoExhaustive} {
		seq := Run(d, Cell{Algo: algo, Measure: MeasureCoverage, K: 10, Config: cfg})
		par := Run(d, Cell{Algo: algo, Measure: MeasureCoverage, K: 10, Config: cfg, Parallelism: 8})
		if seq.Err != "" || par.Err != "" {
			t.Fatalf("%s: errs %q / %q", algo, seq.Err, par.Err)
		}
		if par.Plans != seq.Plans {
			t.Errorf("%s: parallel produced %d plans, sequential %d", algo, par.Plans, seq.Plans)
		}
		if par.Evals != seq.Evals {
			t.Errorf("%s: parallel Evals %d, sequential %d", algo, par.Evals, seq.Evals)
		}
	}
}

func TestCollectMetricsTagsParallelism(t *testing.T) {
	cfg := smallCfg()
	d := workload.Generate(cfg)
	recs := CollectMetrics(d, []Cell{
		{Algo: AlgoPI, Measure: MeasureCoverage, K: 3, Config: cfg},
		{Algo: AlgoPI, Measure: MeasureCoverage, K: 3, Config: cfg, Parallelism: 4},
	}, nil)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Parallelism != 0 || recs[1].Parallelism != 4 {
		t.Errorf("parallelism tags %d, %d; want 0, 4", recs[0].Parallelism, recs[1].Parallelism)
	}
	if recs[0].Evals != recs[1].Evals {
		t.Errorf("parallel cell evals %d, sequential %d", recs[1].Evals, recs[0].Evals)
	}
}

func TestCompareReports(t *testing.T) {
	rec := func(algo string, bucket int, ns int64, par int, errStr string) MetricRecord {
		return MetricRecord{
			Algorithm: algo, Measure: "coverage", BucketSize: bucket, K: 10,
			Parallelism: par, NsPerPlan: ns, Plans: 10, Error: errStr,
		}
	}
	base := MetricsReport{Records: []MetricRecord{
		rec("pi", 10, 1000, 0, ""),
		rec("streamer", 10, 500, 0, ""),
	}}
	cur := MetricsReport{Records: []MetricRecord{
		rec("pi", 10, 1300, 0, ""),      // +30%: regression at 20% threshold
		rec("streamer", 10, 550, 0, ""), // +10%: fine
		rec("pi", 10, 9000, 8, ""),      // parallel record: skipped
		rec("idrips", 10, 9000, 0, ""),  // no baseline: skipped
		rec("pi", 20, 9000, 0, "boom"),  // errored: skipped
	}}
	regs := CompareReports(cur, base, 0.20)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	if regs[0].Record.Algorithm != "pi" || regs[0].Baseline != 1000 {
		t.Errorf("unexpected regression %+v", regs[0])
	}
	if got := CompareReports(cur, base, 0.50); len(got) != 0 {
		t.Errorf("50%% threshold flagged %d regressions, want 0", len(got))
	}
}
