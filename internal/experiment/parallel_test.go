package experiment

import (
	"testing"

	"qporder/internal/workload"
)

// TestParallelCellMatchesSequential checks the harness-level determinism
// contract: a cell run with Parallelism 8 produces the same plan count
// and evaluation count as the sequential run (only timing may differ).
func TestParallelCellMatchesSequential(t *testing.T) {
	cfg := workload.Config{QueryLen: 3, BucketSize: 4, Universe: 512, Zones: 3, Seed: 2}
	d := workload.Generate(cfg)
	for _, algo := range []Algorithm{AlgoPI, AlgoIDrips, AlgoStreamer, AlgoExhaustive} {
		seq := Run(d, Cell{Algo: algo, Measure: MeasureCoverage, K: 10, Config: cfg})
		par := Run(d, Cell{Algo: algo, Measure: MeasureCoverage, K: 10, Config: cfg, Parallelism: 8})
		if seq.Err != "" || par.Err != "" {
			t.Fatalf("%s: errs %q / %q", algo, seq.Err, par.Err)
		}
		if par.Plans != seq.Plans {
			t.Errorf("%s: parallel produced %d plans, sequential %d", algo, par.Plans, seq.Plans)
		}
		if par.Evals != seq.Evals {
			t.Errorf("%s: parallel Evals %d, sequential %d", algo, par.Evals, seq.Evals)
		}
	}
}

func TestCollectMetricsTagsParallelism(t *testing.T) {
	cfg := smallCfg()
	d := workload.Generate(cfg)
	recs := CollectMetrics(d, []Cell{
		{Algo: AlgoPI, Measure: MeasureCoverage, K: 3, Config: cfg},
		{Algo: AlgoPI, Measure: MeasureCoverage, K: 3, Config: cfg, Parallelism: 4},
	}, nil)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Parallelism != 0 || recs[1].Parallelism != 4 {
		t.Errorf("parallelism tags %d, %d; want 0, 4", recs[0].Parallelism, recs[1].Parallelism)
	}
	if recs[0].Evals != recs[1].Evals {
		t.Errorf("parallel cell evals %d, sequential %d", recs[1].Evals, recs[0].Evals)
	}
}

func TestCompareReports(t *testing.T) {
	rec := func(algo string, bucket int, ns int64, par int, errStr string) MetricRecord {
		return MetricRecord{
			Algorithm: algo, Measure: "coverage", BucketSize: bucket, K: 10,
			Parallelism: par, NsPerPlan: ns, Plans: 10, Error: errStr,
		}
	}
	base := MetricsReport{Records: []MetricRecord{
		rec("pi", 10, 1000, 0, ""),
		rec("streamer", 10, 500, 0, ""),
	}}
	cur := MetricsReport{Records: []MetricRecord{
		rec("pi", 10, 1300, 0, ""),      // +30%: regression at 20% threshold
		rec("streamer", 10, 550, 0, ""), // +10%: fine
		rec("pi", 10, 9000, 8, ""),      // parallel record: skipped
		rec("idrips", 10, 9000, 0, ""),  // no baseline: skipped
		rec("pi", 20, 9000, 0, "boom"),  // errored: skipped
	}}
	regs := CompareReports(cur, base, 0.20)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	if regs[0].Record.Algorithm != "pi" || regs[0].Baseline != 1000 {
		t.Errorf("unexpected regression %+v", regs[0])
	}
	if got := CompareReports(cur, base, 0.50); len(got) != 0 {
		t.Errorf("50%% threshold flagged %d regressions, want 0", len(got))
	}
}

func TestCompareAllocs(t *testing.T) {
	rec := func(algo string, perEval float64, par int, errStr string) MetricRecord {
		return MetricRecord{
			Algorithm: algo, Measure: "coverage", BucketSize: 10, K: 10,
			Parallelism: par, Plans: 10, Evals: 100,
			MallocsPerEval: perEval, Error: errStr,
		}
	}
	base := MetricsReport{Records: []MetricRecord{
		rec("pi", 4, 0, ""),
		rec("streamer", 0, 0, ""), // pre-allocation-field baseline: unarmed
	}}
	cur := MetricsReport{Records: []MetricRecord{
		rec("pi", 6, 0, ""),        // +50%: regression at 20% threshold
		rec("streamer", 99, 0, ""), // baseline had no alloc data: skipped
		rec("pi", 40, 8, ""),       // parallel record: skipped
		rec("idrips", 40, 0, ""),   // no baseline: skipped
		rec("pi", 40, 0, "boom"),   // errored: skipped
	}}
	regs := CompareAllocs(cur, base, 0.20)
	if len(regs) != 1 {
		t.Fatalf("got %d alloc regressions, want 1: %+v", len(regs), regs)
	}
	if regs[0].Record.Algorithm != "pi" || regs[0].Baseline != 4 {
		t.Errorf("unexpected regression %+v", regs[0])
	}
	if got := CompareAllocs(cur, base, 0.60); len(got) != 0 {
		t.Errorf("60%% threshold flagged %d alloc regressions, want 0", len(got))
	}
}

// TestMetricsRecordMallocs checks that CollectMetrics populates the
// allocation fields for a live sequential cell.
func TestMetricsRecordMallocs(t *testing.T) {
	cfg := workload.Config{QueryLen: 2, BucketSize: 4, Universe: 256, Zones: 2, Seed: 21}
	d := workload.Generate(cfg)
	recs := CollectMetrics(d, []Cell{
		{Algo: AlgoPI, Measure: MeasureCoverage, K: 5, Config: cfg},
	}, nil)
	if len(recs) != 1 || recs[0].Error != "" {
		t.Fatalf("unexpected records %+v", recs)
	}
	if recs[0].Mallocs <= 0 {
		t.Errorf("Mallocs = %d, want > 0 (orderer construction allocates)", recs[0].Mallocs)
	}
	if recs[0].Evals > 0 && recs[0].MallocsPerEval <= 0 {
		t.Errorf("MallocsPerEval = %g, want > 0", recs[0].MallocsPerEval)
	}
}
