package experiment

import (
	"testing"
	"time"

	"qporder/internal/workload"
)

// TestSmokePerAlgorithm pinpoints pathological algorithm/measure cells:
// each must finish quickly at a small size.
func TestSmokePerAlgorithm(t *testing.T) {
	base := workload.Config{QueryLen: 3, Zones: 3, Universe: 1024, Seed: 42, BucketSize: 10}
	dc := make(DomainCache)
	d := dc.Get(base)
	for _, algo := range []Algorithm{AlgoPI, AlgoIDrips, AlgoStreamer} {
		for _, mk := range []MeasureKey{MeasureCoverage, MeasureChainFail, MeasureMonetary} {
			algo, mk := algo, mk
			t.Run(string(algo)+"/"+string(mk), func(t *testing.T) {
				done := make(chan Result, 1)
				go func() {
					done <- Run(d, Cell{Algo: algo, Measure: mk, K: 5, Config: base})
				}()
				select {
				case r := <-done:
					t.Logf("time=%v evals=%d err=%q", r.Time, r.Evals, r.Err)
				case <-time.After(10 * time.Second):
					t.Fatalf("cell %s/%s did not finish within 10s", algo, mk)
				}
			})
		}
	}
}
