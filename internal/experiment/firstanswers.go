package experiment

import (
	"fmt"

	"qporder/internal/core"
	"qporder/internal/execsim"
	"qporder/internal/planspace"
	"qporder/internal/schema"
	"qporder/internal/stats"
	"qporder/internal/workload"
)

// FirstAnswersResult quantifies the paper's motivation (Section 1): how
// much execution cost it takes to reach a fraction of the total answers
// when plans are executed in utility order versus enumeration order.
type FirstAnswersResult struct {
	// TotalAnswers is the number of distinct answers over all plans.
	TotalAnswers int
	// TotalCost is the cost of executing every plan.
	TotalCost float64
	// OrderedCostAt[f] and UnorderedCostAt[f] give the cumulative cost at
	// which the ordered/unordered execution first reached fraction f of
	// the total answers (parallel slices with Fractions).
	Fractions       []float64
	OrderedCostAt   []float64
	UnorderedCostAt []float64
}

// RunFirstAnswers executes every plan of the domain twice — in coverage
// order (Streamer) and in plain enumeration order — against simulated
// source contents, recording the cost at which each answer fraction is
// reached.
func RunFirstAnswers(d *workload.Domain, fractions []float64) (*FirstAnswersResult, error) {
	// Source contents: derive from a synthetic world via the sources'
	// chain-relation descriptions.
	var rels []execsim.RelationSpec
	for i := 0; i < d.Config.QueryLen; i++ {
		rels = append(rels, execsim.RelationSpec{Name: fmt.Sprintf("rel%d", i), Arity: 2})
	}
	world := execsim.GenerateWorld(execsim.WorldConfig{
		Relations:         rels,
		TuplesPerRelation: 150,
		DomainSize:        14,
		Seed:              d.Config.Seed + 1,
	})
	// Tie each source's completeness to its coverage extent, so the
	// coverage model the orderer reasons with is consistent with the
	// simulated contents (a big-coverage source really returns more).
	completeness := func(name string) float64 {
		src, ok := d.Catalog.ByName(name)
		if !ok {
			return 0.5
		}
		return float64(d.SetSize(src.ID)) / float64(d.Config.Universe)
	}
	store := execsim.PopulateSourcesWith(d.Catalog, world, completeness, d.Config.Seed+2)

	ordered, err := BuildOrderer(d, MeasureCoverage, AlgoStreamer)
	if err != nil {
		return nil, err
	}
	orderedPlans, _ := core.Take(ordered, int(d.Space.Size()))
	unorderedPlans := d.Space.Enumerate()

	res := &FirstAnswersResult{Fractions: fractions}
	// First pass to learn the total answer count.
	_, total, totalCost, err := executeAll(d, store, unorderedPlans, nil)
	if err != nil {
		return nil, err
	}
	res.TotalAnswers = total
	res.TotalCost = totalCost

	targets := make([]int, len(fractions))
	for i, f := range fractions {
		targets[i] = int(f * float64(total))
		if targets[i] < 1 {
			targets[i] = 1
		}
	}
	if res.OrderedCostAt, _, _, err = executeAll(d, store, orderedPlans, targets); err != nil {
		return nil, err
	}
	if res.UnorderedCostAt, _, _, err = executeAll(d, store, unorderedPlans, targets); err != nil {
		return nil, err
	}
	return res, nil
}

// executeAll runs the plans in order, returning the cost at which each
// answer target was reached (unreached targets get the total cost), the
// distinct-answer count, and the total cost.
func executeAll(d *workload.Domain, store execsim.DB, plans []*planspace.Plan,
	targets []int) ([]float64, int, float64, error) {
	eng := execsim.NewEngine(d.Catalog, store)
	answers := execsim.NewAnswerSet()
	costAt := make([]float64, len(targets))
	reached := make([]bool, len(targets))
	for _, p := range plans {
		pq := chainPlanQuery(d, p)
		out, err := eng.ExecutePlan(pq)
		if err != nil {
			return nil, 0, 0, err
		}
		answers.Add(out)
		for i, tgt := range targets {
			if !reached[i] && answers.Len() >= tgt {
				reached[i] = true
				costAt[i] = eng.Cost
			}
		}
	}
	for i := range targets {
		if !reached[i] {
			costAt[i] = eng.Cost
		}
	}
	return costAt, answers.Len(), eng.Cost, nil
}

// chainPlanQuery renders a synthetic-domain plan as its executable chain
// query P(X0, Xn) :- V…(X0, X1), V…(X1, X2), ...
func chainPlanQuery(d *workload.Domain, p *planspace.Plan) *schema.Query {
	q := d.Query.Clone()
	q.Name = "P"
	srcs := p.Sources()
	body := make([]schema.Atom, len(srcs))
	for i, id := range srcs {
		body[i] = schema.Atom{
			Pred: d.Catalog.Source(id).Name,
			Args: d.Query.Body[i].Args,
		}
	}
	q.Body = body
	return q
}

// FirstAnswersTable renders the result.
func (r *FirstAnswersResult) Table() *stats.Table {
	t := stats.NewTable("answer-fraction", "ordered-cost", "unordered-cost", "saving")
	for i, f := range r.Fractions {
		saving := "n/a"
		if r.UnorderedCostAt[i] > 0 {
			saving = fmt.Sprintf("%.1fx", r.UnorderedCostAt[i]/r.OrderedCostAt[i])
		}
		t.Add(fmt.Sprintf("%.0f%%", 100*f),
			fmt.Sprintf("%.0f", r.OrderedCostAt[i]),
			fmt.Sprintf("%.0f", r.UnorderedCostAt[i]),
			saving)
	}
	return t
}
