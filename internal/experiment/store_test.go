package experiment

import (
	"testing"

	"qporder/internal/workload"
)

func TestRunStoreColdWarmParity(t *testing.T) {
	recs, err := RunStore(StoreConfig{
		Config: workload.Config{QueryLen: 3, BucketSize: 4, Universe: 2048, Zones: 3, Seed: 9},
		K:      5,
	})
	if err != nil {
		t.Fatalf("RunStore: %v", err)
	}
	modes := map[string]int{}
	for _, r := range recs {
		modes[r.Mode]++
		if r.Error != "" {
			t.Errorf("%s/%s errored: %s", r.Mode, r.Algorithm, r.Error)
			continue
		}
		if !r.Parity {
			t.Errorf("%s/%s diverged from the in-memory stream", r.Mode, r.Algorithm)
		}
		switch r.Mode {
		case "memory":
			if r.Faults != 0 || r.PageHits != 0 {
				t.Errorf("memory row carries store deltas: %+v", r)
			}
		case "cold":
			if r.Faults == 0 {
				t.Errorf("cold %s run faulted no pages", r.Algorithm)
			}
		case "warm":
			if r.Faults != 0 {
				t.Errorf("warm %s run faulted %d pages, want 0", r.Algorithm, r.Faults)
			}
			if r.PageHits == 0 {
				t.Errorf("warm %s run recorded no page hits", r.Algorithm)
			}
		}
	}
	if modes["memory"] != 3 || modes["cold"] != 3 || modes["warm"] != 3 {
		t.Errorf("mode counts %v, want 3 of each", modes)
	}
	if tbl := StoreTable(recs); len(tbl.Rows) != len(recs) {
		t.Errorf("table has %d rows, want %d", len(tbl.Rows), len(recs))
	}
}

func TestIOMeasureKeysBuild(t *testing.T) {
	d := workload.Generate(workload.Config{QueryLen: 2, BucketSize: 3, Universe: 256, Zones: 2, Seed: 2})
	for _, key := range []MeasureKey{MeasureIO, MeasureIOCaching} {
		m, err := BuildMeasure(d, key)
		if err != nil {
			t.Fatalf("BuildMeasure(%s): %v", key, err)
		}
		if m.Name() == "" {
			t.Errorf("measure %s has no name", key)
		}
		if _, err := BuildOrderer(d, key, AlgoPI); err != nil {
			t.Errorf("BuildOrderer(%s, pi): %v", key, err)
		}
	}
}
