package experiment

import (
	"strings"
	"testing"

	"qporder/internal/workload"
)

func smallCfg() workload.Config {
	return workload.Config{QueryLen: 2, BucketSize: 4, Universe: 256, Zones: 2, Seed: 1}
}

func TestBuildMeasureAllKeys(t *testing.T) {
	d := workload.Generate(smallCfg())
	for _, key := range []MeasureKey{
		MeasureCoverage, MeasureChain, MeasureChainFail, MeasureChainFailCache,
		MeasureMonetary, MeasureMonetaryCache, MeasureLinear,
	} {
		if _, err := BuildMeasure(d, key); err != nil {
			t.Errorf("BuildMeasure(%s): %v", key, err)
		}
	}
	if _, err := BuildMeasure(d, "nope"); err == nil {
		t.Error("unknown measure accepted")
	}
}

func TestBuildOrdererApplicability(t *testing.T) {
	d := workload.Generate(smallCfg())
	// Streamer must be rejected for caching measures.
	if _, err := BuildOrderer(d, MeasureChainFailCache, AlgoStreamer); err == nil {
		t.Error("Streamer accepted for caching measure")
	}
	// Greedy only for the linear measure.
	if _, err := BuildOrderer(d, MeasureCoverage, AlgoGreedy); err == nil {
		t.Error("Greedy accepted for coverage")
	}
	if _, err := BuildOrderer(d, MeasureLinear, AlgoGreedy); err != nil {
		t.Errorf("Greedy rejected for linear: %v", err)
	}
	if _, err := BuildOrderer(d, MeasureCoverage, "nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunProducesPlansAndCountsEvals(t *testing.T) {
	d := workload.Generate(smallCfg())
	res := Run(d, Cell{Algo: AlgoPI, Measure: MeasureCoverage, K: 3, Config: smallCfg()})
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	if res.Plans != 3 {
		t.Errorf("Plans = %d", res.Plans)
	}
	if res.Evals < int(d.Space.Size()) {
		t.Errorf("PI evals = %d, want >= %d", res.Evals, d.Space.Size())
	}
	if res.Time <= 0 {
		t.Error("no time recorded")
	}
}

func TestRunReportsInapplicable(t *testing.T) {
	d := workload.Generate(smallCfg())
	res := Run(d, Cell{Algo: AlgoStreamer, Measure: MeasureChainFailCache, K: 3, Config: smallCfg()})
	if res.Err == "" {
		t.Error("expected inapplicability error")
	}
}

func TestFig6PanelsShape(t *testing.T) {
	panels := Fig6Panels()
	if len(panels) != 12 {
		t.Fatalf("panels = %d", len(panels))
	}
	ids := map[string]bool{}
	for _, p := range panels {
		ids[p.ID] = true
		if p.K != 1 && p.K != 10 && p.K != 100 {
			t.Errorf("panel %s has k=%d", p.ID, p.K)
		}
		if len(p.Algos) < 2 {
			t.Errorf("panel %s has %d algorithms", p.ID, len(p.Algos))
		}
	}
	for _, c := range "abcdefghijkl" {
		if !ids["6"+string(c)] {
			t.Errorf("panel 6%c missing", c)
		}
	}
	// Caching panels exclude Streamer.
	for _, id := range []string{"6g", "6h", "6i"} {
		p, _ := PanelByID(id)
		for _, a := range p.Algos {
			if a == AlgoStreamer {
				t.Errorf("panel %s wrongly includes streamer", id)
			}
		}
	}
	if _, ok := PanelByID("9z"); ok {
		t.Error("unknown panel found")
	}
}

func TestRunPanelAndTable(t *testing.T) {
	dc := make(DomainCache)
	p, _ := PanelByID("6a")
	pr := RunPanel(dc, p, []int{3, 4}, smallCfg())
	if len(pr.Results) != 2 || len(pr.Results[0]) != len(p.Algos) {
		t.Fatalf("result shape wrong: %v", pr.Results)
	}
	var sb strings.Builder
	pr.Table().Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "pi-time") || !strings.Contains(out, "streamer-evals") {
		t.Errorf("table missing columns:\n%s", out)
	}
}

func TestDomainCacheReuses(t *testing.T) {
	dc := make(DomainCache)
	a := dc.Get(smallCfg())
	b := dc.Get(smallCfg())
	if a != b {
		t.Error("cache did not reuse domain")
	}
}

func TestEvalFraction(t *testing.T) {
	dc := make(DomainCache)
	s, p, f := EvalFraction(dc, smallCfg())
	if s <= 0 || p <= 0 {
		t.Fatalf("evals = %d, %d", s, p)
	}
	if f <= 0 || f > 2 {
		t.Errorf("fraction = %g", f)
	}
}

func TestSweeps(t *testing.T) {
	dc := make(DomainCache)
	ov := RunOverlapSweep(dc, []int{2, 1}, 2, smallCfg())
	if len(ov) != 2 || len(ov[0].Results) != 2 {
		t.Fatalf("overlap sweep shape: %v", ov)
	}
	ql := RunQueryLenSweep(dc, []int{1, 2}, 2, MeasureCoverage, smallCfg())
	if len(ql) != 2 || len(ql[0].Results) != 3 {
		t.Fatalf("qlen sweep shape: %v", ql)
	}
	var sb strings.Builder
	SweepTable(ov, []Algorithm{AlgoPI, AlgoStreamer}).Render(&sb)
	if !strings.Contains(sb.String(), "overlap") {
		t.Error("sweep table missing labels")
	}
}
