package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"qporder/internal/core"
	"qporder/internal/costmodel"
	"qporder/internal/lav"
	"qporder/internal/planspace"
	"qporder/internal/reformulate"
	"qporder/internal/schema"
	"qporder/internal/stats"
)

// SoundnessResult supports Section 2's argument for ordering before
// soundness testing: if sound plans are spread over the ordering, the
// first sound plan appears within the first few ordered plans with high
// probability (the paper: 20% density ⇒ sound plan in the first 20 with
// probability 0.99).
type SoundnessResult struct {
	// Domains is the number of random domains measured.
	Domains int
	// MeanDensity is the average fraction of sound plans.
	MeanDensity float64
	// MeanFirstSoundRank is the average rank (1-based) of the first sound
	// plan in the utility ordering.
	MeanFirstSoundRank float64
	// MaxFirstSoundRank is the worst rank observed.
	MaxFirstSoundRank int
	// PredictedRank99 is the geometric-tail prediction for covering 99%
	// of cases at the mean density: ceil(ln 0.01 / ln(1-density)).
	PredictedRank99 int
}

// RunSoundness measures sound-plan density and the rank of the first
// sound plan over random LAV domains (random view definitions with
// projections, so unsound candidates arise naturally).
func RunSoundness(domains int, seed int64) (*SoundnessResult, error) {
	rng := rand.New(rand.NewSource(seed))
	res := &SoundnessResult{}
	densSum, rankSum := 0.0, 0.0
	measured := 0
	for i := 0; i < domains; i++ {
		cat, q := randomLAVDomain(rng)
		b, err := reformulate.BuildBuckets(q, cat)
		if err != nil {
			continue // query not answerable in this draw
		}
		pd := reformulate.NewPlanDomain(b, cat)
		total := int(pd.Space.Size())
		if total == 0 {
			continue
		}
		soundCount := 0
		for _, p := range pd.Space.Enumerate() {
			ok, err := pd.IsSound(p)
			if err != nil {
				return nil, err
			}
			if ok {
				soundCount++
			}
		}
		if soundCount == 0 {
			continue
		}
		// Order by cost measure (2) and find the first sound plan's rank.
		m := costmodel.NewChainCost(pd.Entries, costmodel.Params{N: 10000})
		o := core.NewPI([]*planspace.Space{pd.Space}, m)
		rank := 0
		for {
			p, _, ok := o.Next()
			if !ok {
				break
			}
			rank++
			isSound, err := pd.IsSound(p)
			if err != nil {
				return nil, err
			}
			if isSound {
				break
			}
		}
		measured++
		densSum += float64(soundCount) / float64(total)
		rankSum += float64(rank)
		if rank > res.MaxFirstSoundRank {
			res.MaxFirstSoundRank = rank
		}
	}
	if measured == 0 {
		return nil, fmt.Errorf("experiment: no measurable random domains in %d draws", domains)
	}
	res.Domains = measured
	res.MeanDensity = densSum / float64(measured)
	res.MeanFirstSoundRank = rankSum / float64(measured)
	if res.MeanDensity > 0 && res.MeanDensity < 1 {
		res.PredictedRank99 = int(math.Ceil(math.Log(0.01) / math.Log(1-res.MeanDensity)))
	} else {
		res.PredictedRank99 = 1
	}
	return res, nil
}

// randomLAVDomain builds one random LAV domain: binary relations r0..r2,
// sources with 1-2 body atoms and random projections, and a 2-subgoal
// query with a constant (so unsound projection-based candidates occur).
func randomLAVDomain(rng *rand.Rand) (*lav.Catalog, *schema.Query) {
	cat := lav.NewCatalog()
	n := 4 + rng.Intn(5)
	for s := 0; s < n; s++ {
		var body []schema.Atom
		var vars []schema.Term
		for a := 0; a < 1+rng.Intn(2); a++ {
			v1 := schema.Var(fmt.Sprintf("Y%d", rng.Intn(3)))
			v2 := schema.Var(fmt.Sprintf("Y%d", rng.Intn(3)))
			body = append(body, schema.NewAtom(fmt.Sprintf("r%d", rng.Intn(3)), v1, v2))
			vars = append(vars, v1, v2)
		}
		seen := map[schema.Term]bool{}
		var head []schema.Term
		for _, v := range vars {
			if !seen[v] {
				seen[v] = true
				if rng.Intn(3) > 0 {
					head = append(head, v)
				}
			}
		}
		if len(head) == 0 {
			head = vars[:1]
		}
		def := &schema.Query{Name: fmt.Sprintf("W%d", s), Head: head, Body: body}
		cat.MustAdd(def.Name, def, lav.Stats{
			Tuples:       float64(1 + rng.Intn(1000)),
			TransmitCost: 0.5 + rng.Float64(),
			Overhead:     1 + 9*rng.Float64(),
		})
	}
	q := &schema.Query{
		Name: "Q",
		Head: []schema.Term{schema.Var("Q1")},
		Body: []schema.Atom{
			schema.NewAtom(fmt.Sprintf("r%d", rng.Intn(3)), schema.Var("Q1"), schema.Const("k0")),
			schema.NewAtom(fmt.Sprintf("r%d", rng.Intn(3)), schema.Var("Q1"), schema.Var("Q2")),
		},
	}
	return cat, q
}

// Table renders the soundness-rank result.
func (r *SoundnessResult) Table() *stats.Table {
	t := stats.NewTable("domains", "mean-sound-density", "mean-first-sound-rank",
		"max-first-sound-rank", "99%-rank-at-density")
	t.Add(fmt.Sprint(r.Domains),
		fmt.Sprintf("%.0f%%", 100*r.MeanDensity),
		fmt.Sprintf("%.2f", r.MeanFirstSoundRank),
		fmt.Sprint(r.MaxFirstSoundRank),
		fmt.Sprint(r.PredictedRank99))
	return t
}
