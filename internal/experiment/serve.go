package experiment

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"qporder/internal/obs"
	"qporder/internal/server"
	"qporder/internal/stats"
	"qporder/internal/workload"
)

// ServeRecord is one row of the serving-throughput experiment: a live
// qpserved-equivalent daemon over the workload domain, driven by the
// load generator at one concurrency level. It rides in the metrics
// report next to the ordering cells (additive field, no schema bump).
type ServeRecord struct {
	Concurrency int `json:"concurrency"`
	Requests    int `json:"requests"`
	Errors      int `json:"errors"`
	K           int `json:"k"`
	// SessionsPerSec is the achieved completion throughput.
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// TTFA quantiles are time-to-first-answer; Full are full-k session
	// latencies. All milliseconds.
	TTFAP50MS float64 `json:"ttfa_p50_ms"`
	TTFAP99MS float64 `json:"ttfa_p99_ms"`
	FullP50MS float64 `json:"full_p50_ms"`
	FullP99MS float64 `json:"full_p99_ms"`
	// CacheHits/CacheMisses are the session-cache deltas for this level;
	// with one canonical query per run, hits+misses ≈ requests and
	// misses stays at most 1 beyond the first level.
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
	Plans       int64  `json:"plans"`
	Error       string `json:"error,omitempty"`
}

// ServeConfig parameterizes the serving experiment.
type ServeConfig struct {
	// Concurrencies are the load levels to sweep (default 1, 4, 8).
	Concurrencies []int
	// Requests per level (default 64).
	Requests int
	// K is the per-session plan budget (default 5).
	K int
}

// RunServe boots an in-process serving daemon over the domain's catalog
// and sweeps the load generator across concurrency levels, reusing one
// daemon so later levels exercise a warm session cache — exactly the
// steady state a long-lived mediator reaches.
func RunServe(d *workload.Domain, cfg ServeConfig) ([]ServeRecord, error) {
	if len(cfg.Concurrencies) == 0 {
		cfg.Concurrencies = []int{1, 4, 8}
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 64
	}
	if cfg.K <= 0 {
		cfg.K = 5
	}
	reg := obs.NewRegistry()
	srv, err := server.New(server.Config{
		Catalog:     d.Catalog,
		Seed:        d.Config.Seed + 100, // distinct world from the ordering cells
		N:           d.Config.N,
		MaxInflight: maxConc(cfg.Concurrencies),
		Reg:         reg,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	baseURL := "http://" + ln.Addr().String()

	var out []ServeRecord
	for _, conc := range cfg.Concurrencies {
		hitsBefore := reg.Counter("server.cache_hits").Value()
		missBefore := reg.Counter("server.cache_misses").Value()
		rec := ServeRecord{Concurrency: conc, K: cfg.K}
		rep, err := server.RunLoad(context.Background(), server.LoadConfig{
			BaseURL:     baseURL,
			Queries:     []string{d.Query.String()},
			Requests:    cfg.Requests,
			Concurrency: conc,
			K:           cfg.K,
			Measure:     "chain",
			Algorithm:   "streamer",
			Shuffle:     true,
			Seed:        d.Config.Seed + int64(conc),
		})
		if err != nil {
			rec.Error = err.Error()
			out = append(out, rec)
			continue
		}
		rec.Requests = rep.Requests
		rec.Errors = rep.Errors
		rec.SessionsPerSec = rep.QPS
		rec.TTFAP50MS = rep.TTFA.P50
		rec.TTFAP99MS = rep.TTFA.P99
		rec.FullP50MS = rep.Full.P50
		rec.FullP99MS = rep.Full.P99
		rec.Plans = rep.Plans
		rec.CacheHits = reg.Counter("server.cache_hits").Value() - hitsBefore
		rec.CacheMisses = reg.Counter("server.cache_misses").Value() - missBefore
		if rep.Errors > 0 {
			rec.Error = rep.FirstError
		}
		out = append(out, rec)
	}
	return out, nil
}

func maxConc(levels []int) int {
	m := 0
	for _, c := range levels {
		if c > m {
			m = c
		}
	}
	return m
}

// ServeTable renders the serving sweep.
func ServeTable(recs []ServeRecord) *stats.Table {
	t := stats.NewTable("conc", "requests", "errors", "sessions/s",
		"ttfa-p50", "ttfa-p99", "full-p50", "full-p99", "cache hit/miss")
	for _, r := range recs {
		if r.Error != "" && r.Requests == 0 {
			t.Add(fmt.Sprint(r.Concurrency), "-", "-", r.Error, "", "", "", "", "")
			continue
		}
		t.Add(fmt.Sprint(r.Concurrency),
			fmt.Sprint(r.Requests), fmt.Sprint(r.Errors),
			fmt.Sprintf("%.1f", r.SessionsPerSec),
			fmt.Sprintf("%.2fms", r.TTFAP50MS), fmt.Sprintf("%.2fms", r.TTFAP99MS),
			fmt.Sprintf("%.2fms", r.FullP50MS), fmt.Sprintf("%.2fms", r.FullP99MS),
			fmt.Sprintf("%d/%d", r.CacheHits, r.CacheMisses))
	}
	return t
}
