package experiment

import (
	"fmt"
	"math"

	"qporder/internal/costmodel"
	"qporder/internal/execsim"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/mediator"
	"qporder/internal/obs"
	"qporder/internal/stats"
	"qporder/internal/workload"
)

// This file is the estimator-calibration experiment: the same workload
// domain and simulated world are mediated twice, once with source Tuples
// statistics matching the world exactly ("fresh") and once with every
// statistic inflated by a stale factor ("stale"), and the calibration
// accumulator's verdict is compared. Fresh statistics must sit at
// q-error 1 with no drift; stale ones must show q-error ≈ the factor and
// trip the EWMA drift detector — the end-to-end demonstration that the
// observability layer detects what it claims to detect.

// CalibScenario is one cell of the calibration experiment.
type CalibScenario struct {
	// Scenario is "fresh" or "stale".
	Scenario string `json:"scenario"`
	// StaleFactor multiplied every Tuples statistic (1 for fresh).
	StaleFactor float64 `json:"stale_factor"`
	// Plans and Answers summarize the mediated run.
	Plans   int `json:"plans"`
	Answers int `json:"answers"`
	// Sources is the number of per-source calibration series recorded
	// (only sources reached by an unconstrained access record).
	Sources int `json:"sources"`
	// Drifted lists the sources whose EWMA drift detector tripped.
	Drifted []string `json:"drifted,omitempty"`
	// MaxQErrP50 is the worst per-source median q-error; MaxAbsEWMA the
	// largest per-source |EWMA| of log2(est/act).
	MaxQErrP50 float64 `json:"max_qerr_p50"`
	MaxAbsEWMA float64 `json:"max_abs_ewma"`
	// PlanQErrP50 is the median q-error of the per-plan series (predicted
	// utility against realized value).
	PlanQErrP50 float64 `json:"plan_qerr_p50"`
	// Snapshot is the full calibration state after the run.
	Snapshot obs.CalibrationSnapshot `json:"snapshot"`
}

// RunCalibration runs the fresh and stale scenarios over one generated
// domain. staleFactor defaults to 16 (two doublings beyond the default
// drift threshold of 4), k defaults to 12 plans. The runs are fully
// deterministic: no simulated failures, and per-source ground truth is
// the unconstrained access's result size, which depends only on the
// store contents.
func RunCalibration(cfg workload.Config, staleFactor float64, k int) ([]CalibScenario, error) {
	if staleFactor <= 1 {
		staleFactor = 16
	}
	if k <= 0 {
		k = 12
	}
	d := workload.Generate(cfg)
	cfg = d.Config // defaults filled

	// One simulated world and one derived store serve both scenarios;
	// only the catalog statistics differ between them.
	rels := make([]execsim.RelationSpec, cfg.QueryLen)
	for b := 0; b < cfg.QueryLen; b++ {
		rels[b] = execsim.RelationSpec{Name: fmt.Sprintf("rel%d", b), Arity: 2}
	}
	world := execsim.GenerateWorld(execsim.WorldConfig{
		Relations:         rels,
		TuplesPerRelation: 100,
		DomainSize:        15,
		Seed:              cfg.Seed,
	})
	store := execsim.PopulateSources(d.Catalog, world, 0.8, cfg.Seed+1)

	out := make([]CalibScenario, 0, 2)
	for _, sc := range []struct {
		name   string
		factor float64
	}{{"fresh", 1}, {"stale", staleFactor}} {
		cat, err := restatCatalog(d.Catalog, store, sc.factor)
		if err != nil {
			return nil, err
		}
		rec, err := runCalibScenario(cat, d, store, k)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s scenario: %w", sc.name, err)
		}
		rec.Scenario = sc.name
		rec.StaleFactor = sc.factor
		out = append(out, rec)
	}
	return out, nil
}

// restatCatalog derives a catalog whose Tuples statistics are the true
// store sizes times factor (factor 1 = perfectly fresh statistics); all
// other statistics carry over unchanged.
func restatCatalog(cat *lav.Catalog, store execsim.DB, factor float64) (*lav.Catalog, error) {
	out := lav.NewCatalog()
	for _, src := range cat.Sources() {
		st := src.Stats
		st.Tuples = math.Max(1, float64(len(store[src.Name]))) * factor
		st.FailureProb = 0 // scenarios run without simulated failures
		if _, err := out.Add(src.Name, src.Def, st); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runCalibScenario mediates the domain query over the restated catalog
// with a fresh calibration accumulator and summarizes its verdict.
func runCalibScenario(cat *lav.Catalog, d *workload.Domain, store execsim.DB, k int) (CalibScenario, error) {
	cal := obs.NewCalibration(obs.CalibConfig{})
	sys, err := mediator.New(mediator.Config{
		Catalog: cat,
		Query:   d.Query,
		Measure: func(e *lav.Catalog) measure.Measure {
			return costmodel.NewChainCost(e, costmodel.Params{N: d.Config.N})
		},
		Algorithm: mediator.Streamer,
		Calib:     cal,
	})
	if err != nil {
		return CalibScenario{}, err
	}
	eng := execsim.NewEngine(cat, store)
	res, err := sys.Run(eng, mediator.Budget{MaxPlans: k})
	if err != nil {
		return CalibScenario{}, err
	}
	snap := cal.Snapshot()
	rec := CalibScenario{
		Plans:    len(res.Executed),
		Answers:  res.Answers.Len(),
		Sources:  len(snap.Sources),
		Snapshot: snap,
	}
	for _, s := range snap.Sources {
		if s.Drifted {
			rec.Drifted = append(rec.Drifted, s.Name)
		}
		rec.MaxQErrP50 = math.Max(rec.MaxQErrP50, s.QErrP50)
		rec.MaxAbsEWMA = math.Max(rec.MaxAbsEWMA, math.Abs(s.EWMA))
	}
	for _, p := range snap.Plans {
		rec.PlanQErrP50 = math.Max(rec.PlanQErrP50, p.QErrP50)
	}
	return rec, nil
}

// CalibTable renders the scenario cells for terminals.
func CalibTable(recs []CalibScenario) *stats.Table {
	t := stats.NewTable("scenario", "stale-factor", "plans", "sources",
		"max-qerr-p50", "max-|ewma|", "plan-qerr-p50", "drifted")
	for _, r := range recs {
		drifted := fmt.Sprintf("%d", len(r.Drifted))
		if len(r.Drifted) > 0 {
			drifted = fmt.Sprintf("%d %v", len(r.Drifted), r.Drifted)
		}
		t.Add(r.Scenario, fmt.Sprintf("%g", r.StaleFactor),
			fmt.Sprintf("%d", r.Plans), fmt.Sprintf("%d", r.Sources),
			fmt.Sprintf("%.3f", r.MaxQErrP50), fmt.Sprintf("%.3f", r.MaxAbsEWMA),
			fmt.Sprintf("%.3f", r.PlanQErrP50), drifted)
	}
	return t
}
