package experiment

import (
	"fmt"
	"runtime"
	"time"

	"qporder/internal/coverage"
	"qporder/internal/interval"
	"qporder/internal/measure"
	"qporder/internal/planspace"
	"qporder/internal/stats"
	"qporder/internal/workload"
)

// The batch sweep isolates the frontier-batched evaluation path from
// the ordering algorithms: it slices the plan enumeration into
// frontiers of a given size and scores every frontier through
// measure.EvaluateAll, once on the batched coverage measure (the tiled
// kernels with arena scratch) and once on its scalar twin
// (SetBatching(false), the per-plan fused kernels). Both modes evaluate
// the same plans against the same executed prefix, so ns/plan and
// mallocs/eval are directly comparable; the crossover frontier size is
// where the "batch" rows drop below the "batch-scalar" rows.

// Algorithm labels the sweep records under; frontier size is carried in
// the K field so the {algorithm, measure, bucket_size, k} baseline key
// of CompareReports/CompareAllocs gates every sweep point.
const (
	algoBatch       = "batch"
	algoBatchScalar = "batch-scalar"
)

// DefaultBatchFrontiers is the frontier-size sweep: powers of two
// around the refinement frontier widths the orderers actually produce
// (Refine emits bucket-size siblings; PI's initial scoring and
// recompute sweeps hand over frontiers in the thousands, which the
// 256-point stands in for).
var DefaultBatchFrontiers = []int{1, 2, 4, 8, 16, 32, 64, 256}

// batchSweepMaxPlans caps the plans scored per pass so large bucket
// sizes don't turn the sweep into a full-enumeration benchmark; the cap
// still spans many frontiers of every swept size.
const batchSweepMaxPlans = 2048

// RunBatchSweep measures batched vs scalar frontier evaluation on the
// domain, returning one record pair (algoBatch, algoBatchScalar) per
// frontier size. reps is the best-of timing repetition count.
func RunBatchSweep(d *workload.Domain, frontiers []int, reps int) []MetricRecord {
	var recs []MetricRecord
	for _, f := range frontiers {
		if f < 1 {
			continue
		}
		recs = append(recs,
			runBatchCell(d, f, false, reps),
			runBatchCell(d, f, true, reps))
	}
	return recs
}

// runBatchCell times one (frontier size, mode) point. A warm pass grows
// the arena slabs, CSR buffers, and snapshot fronts outside the timed
// window, mirroring a warm serving loop; the timed region is best-of-
// reps over enough rounds to sit above timer resolution.
func runBatchCell(d *workload.Domain, frontier int, scalar bool, reps int) MetricRecord {
	ms := coverage.NewMeasure(d.Coverage)
	algo := algoBatch
	if scalar {
		ms.SetBatching(false)
		algo = algoBatchScalar
	}
	ctx := ms.NewContext()
	all := d.Space.Enumerate()
	if len(all) > batchSweepMaxPlans {
		all = all[:batchSweepMaxPlans]
	}
	// Observe a small executed prefix so the kernels exercise the
	// covered-exclusion path, as they do mid-ordering.
	for _, p := range all[:min(3, len(all))] {
		ctx.Observe(p)
	}
	var windows [][]*planspace.Plan
	for lo := 0; lo < len(all); lo += frontier {
		windows = append(windows, all[lo:min(lo+frontier, len(all))])
	}
	out := make([]interval.Interval, frontier)
	pass := func() {
		for _, w := range windows {
			measure.EvaluateAll(ctx, w, out)
		}
	}
	pass() // warm
	rounds := 1
	for {
		start := time.Now()
		for r := 0; r < rounds; r++ {
			pass()
		}
		if time.Since(start) >= 2*time.Millisecond || rounds >= 1<<16 {
			break
		}
		rounds *= 2
	}
	if reps < 1 {
		reps = 1
	}
	evals0 := ctx.Evals()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	best := time.Duration(-1)
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for r := 0; r < rounds; r++ {
			pass()
		}
		if el := time.Since(start); best < 0 || el < best {
			best = el
		}
	}
	runtime.ReadMemStats(&m1)
	plans := rounds * len(all) // per rep
	rec := MetricRecord{
		Algorithm:     algo,
		Measure:       string(MeasureCoverage),
		BucketSize:    d.Config.BucketSize,
		K:             frontier,
		Parallelism:   1,
		Plans:         plans,
		Evals:         int64(ctx.Evals() - evals0),
		Mallocs:       int64(m1.Mallocs - m0.Mallocs),
		TotalNs:       best.Nanoseconds(),
		TimeToFirstNs: 0,
	}
	if plans > 0 {
		rec.NsPerPlan = rec.TotalNs / int64(plans)
	}
	if rec.Evals > 0 {
		rec.MallocsPerEval = float64(rec.Mallocs) / float64(rec.Evals)
	}
	return rec
}

// BatchTable renders the sweep as paired batched/scalar rows per
// frontier size with the speedup ratio.
func BatchTable(recs []MetricRecord) *stats.Table {
	t := stats.NewTable("frontier", "batched ns/plan", "scalar ns/plan", "speedup",
		"batched mallocs/eval", "scalar mallocs/eval")
	type pair struct{ batch, scalar *MetricRecord }
	pairs := map[int]*pair{}
	var order []int
	for i := range recs {
		r := &recs[i]
		p, ok := pairs[r.K]
		if !ok {
			p = &pair{}
			pairs[r.K] = p
			order = append(order, r.K)
		}
		if r.Algorithm == algoBatch {
			p.batch = r
		} else {
			p.scalar = r
		}
	}
	for _, k := range order {
		p := pairs[k]
		if p.batch == nil || p.scalar == nil {
			continue
		}
		speedup := "-"
		if p.batch.NsPerPlan > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(p.scalar.NsPerPlan)/float64(p.batch.NsPerPlan))
		}
		t.Add(fmt.Sprint(k),
			fmt.Sprint(p.batch.NsPerPlan), fmt.Sprint(p.scalar.NsPerPlan), speedup,
			fmt.Sprintf("%.3f", p.batch.MallocsPerEval),
			fmt.Sprintf("%.3f", p.scalar.MallocsPerEval))
	}
	return t
}
