package experiment

import (
	"fmt"
	"testing"

	"qporder/internal/coverage"
	"qporder/internal/interval"
	"qporder/internal/measure"
	"qporder/internal/workload"
)

func batchDomain() *workload.Domain {
	return workload.Generate(workload.Config{
		QueryLen: 3, BucketSize: 8, Universe: 1024, Zones: 3, Seed: 31,
	})
}

// TestRunBatchSweepShape checks the sweep emits a batched/scalar pair
// per frontier size with sane fields and matching work counts.
func TestRunBatchSweepShape(t *testing.T) {
	d := batchDomain()
	recs := RunBatchSweep(d, []int{1, 8}, 1)
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for _, r := range recs {
		if r.Algorithm != algoBatch && r.Algorithm != algoBatchScalar {
			t.Errorf("unexpected algorithm %q", r.Algorithm)
		}
		if r.Measure != string(MeasureCoverage) || r.Parallelism != 1 {
			t.Errorf("record %+v: wrong measure/parallelism", r)
		}
		if r.Plans <= 0 || r.Evals <= 0 || r.NsPerPlan <= 0 {
			t.Errorf("record %+v: empty work", r)
		}
	}
	if recs[0].K != 1 || recs[2].K != 8 {
		t.Errorf("frontier sizes recorded as %d,%d, want 1,8", recs[0].K, recs[2].K)
	}
	if BatchTable(recs) == nil {
		t.Error("BatchTable returned nil")
	}
}

// BenchmarkBatchFrontier is the standalone entry point behind the
// EXPERIMENTS.md batch section: it scores the same frontier slices
// through the batched and scalar coverage paths at several frontier
// sizes, so `go test -bench BatchFrontier` reproduces the crossover
// without qpbench.
func BenchmarkBatchFrontier(b *testing.B) {
	d := batchDomain()
	all := d.Space.Enumerate()
	for _, frontier := range []int{4, 8, 32} {
		for _, mode := range []string{"batched", "scalar"} {
			b.Run(fmt.Sprintf("%s/f%d", mode, frontier), func(b *testing.B) {
				ms := coverage.NewMeasure(d.Coverage)
				if mode == "scalar" {
					ms.SetBatching(false)
				}
				ctx := ms.NewContext()
				for _, p := range all[:3] {
					ctx.Observe(p)
				}
				out := make([]interval.Interval, frontier)
				pass := func() {
					for lo := 0; lo < len(all); lo += frontier {
						hi := min(lo+frontier, len(all))
						measure.EvaluateAll(ctx, all[lo:hi], out)
					}
				}
				pass() // warm
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pass()
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(all)), "ns/plan")
			})
		}
	}
}
