package experiment

import (
	"strings"
	"testing"

	"qporder/internal/workload"
)

func TestRunHeuristicAblation(t *testing.T) {
	dc := make(DomainCache)
	cfg := workload.Config{QueryLen: 2, BucketSize: 5, Universe: 256, Zones: 2, Seed: 4}
	pts := RunHeuristicAblation(dc, 3, cfg)
	if len(pts) != 6 { // 3 heuristics x {streamer, idrips}
		t.Fatalf("points = %d", len(pts))
	}
	names := map[string]bool{}
	for _, p := range pts {
		names[p.Heuristic] = true
		if p.Result.Err != "" {
			t.Errorf("%s/%s: %s", p.Heuristic, p.Algo, p.Result.Err)
			continue
		}
		if p.Result.Plans != 3 || p.Result.Evals == 0 {
			t.Errorf("%s/%s: plans=%d evals=%d", p.Heuristic, p.Algo, p.Result.Plans, p.Result.Evals)
		}
	}
	for _, want := range []string{"cov-sim", "by-tuples", "by-id"} {
		if !names[want] {
			t.Errorf("heuristic %s missing", want)
		}
	}
	var sb strings.Builder
	AblationTable(pts).Render(&sb)
	if !strings.Contains(sb.String(), "links-recycled") {
		t.Error("ablation table missing columns")
	}
}

func TestRunFirstAnswers(t *testing.T) {
	dc := make(DomainCache)
	d := dc.Get(workload.Config{QueryLen: 2, BucketSize: 4, Universe: 256, Zones: 2, Seed: 9})
	r, err := RunFirstAnswers(d, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalAnswers <= 0 || r.TotalCost <= 0 {
		t.Fatalf("degenerate totals: %+v", r)
	}
	if len(r.OrderedCostAt) != 2 || len(r.UnorderedCostAt) != 2 {
		t.Fatalf("cost slices wrong: %+v", r)
	}
	for i := range r.Fractions {
		if r.OrderedCostAt[i] <= 0 || r.OrderedCostAt[i] > r.TotalCost {
			t.Errorf("ordered cost[%d] = %g out of range", i, r.OrderedCostAt[i])
		}
		if i > 0 && r.OrderedCostAt[i] < r.OrderedCostAt[i-1] {
			t.Errorf("ordered costs not monotone: %v", r.OrderedCostAt)
		}
	}
	var sb strings.Builder
	r.Table().Render(&sb)
	if !strings.Contains(sb.String(), "saving") {
		t.Error("tta table missing columns")
	}
}

func TestRunSoundness(t *testing.T) {
	r, err := RunSoundness(40, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Domains == 0 {
		t.Fatal("no domains measured")
	}
	if r.MeanDensity <= 0 || r.MeanDensity > 1 {
		t.Errorf("density = %g", r.MeanDensity)
	}
	if r.MeanFirstSoundRank < 1 {
		t.Errorf("mean rank = %g", r.MeanFirstSoundRank)
	}
	if r.MaxFirstSoundRank < 1 || r.PredictedRank99 < 1 {
		t.Errorf("result = %+v", r)
	}
	var sb strings.Builder
	r.Table().Render(&sb)
	if !strings.Contains(sb.String(), "density") {
		t.Error("table missing columns")
	}
}

func TestHeuristicSelectionPerMeasure(t *testing.T) {
	d := workload.Generate(workload.Config{QueryLen: 2, BucketSize: 3, Universe: 128, Seed: 1})
	if got := Heuristic(d, MeasureCoverage).Name(); got != "cov-sim" {
		t.Errorf("coverage heuristic = %s", got)
	}
	if got := Heuristic(d, MeasureChainFail).Name(); got != "by-access-cost" {
		t.Errorf("chain heuristic = %s", got)
	}
	if got := Heuristic(d, MeasureMonetary).Name(); got != "by-id" {
		t.Errorf("monetary heuristic = %s", got)
	}
}
