// Package experiment is the benchmark harness for the paper's evaluation
// (Section 6). It assembles (utility measure, algorithm, k, domain) cells,
// times how long each algorithm takes from query issue until the first k
// best plans are found (bucket generation excluded, as in the paper), and
// regenerates every panel of Figure 6 plus the overlap-rate, query-length,
// and plans-evaluated analyses described in the text.
package experiment

import (
	"fmt"
	"runtime"
	"time"

	"qporder/internal/abstraction"
	"qporder/internal/core"
	"qporder/internal/costmodel"
	"qporder/internal/coverage"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/planspace"
	"qporder/internal/store"
	"qporder/internal/workload"
)

// Algorithm names an ordering algorithm.
type Algorithm string

// The algorithms of Section 6 (plus the extras used by tests/ablations).
const (
	AlgoPI         Algorithm = "pi"
	AlgoIDrips     Algorithm = "idrips"
	AlgoStreamer   Algorithm = "streamer"
	AlgoGreedy     Algorithm = "greedy"
	AlgoExhaustive Algorithm = "exhaustive"
)

// MeasureKey names one of the experimental utility measures.
type MeasureKey string

// The utility measures of Section 6.
const (
	MeasureCoverage       MeasureKey = "coverage"           // plan coverage
	MeasureChain          MeasureKey = "chain"              // cost measure (2)
	MeasureChainFail      MeasureKey = "chain-fail"         // (2) + source failure
	MeasureChainFailCache MeasureKey = "chain-fail-caching" // ″ with caching
	MeasureMonetary       MeasureKey = "monetary"           // avg monetary cost/tuple
	MeasureMonetaryCache  MeasureKey = "monetary-caching"   // ″ with caching
	MeasureLinear         MeasureKey = "linear"             // cost measure (1)
	MeasureIO             MeasureKey = "io"                 // (1) + cold segment faults
	MeasureIOCaching      MeasureKey = "io-caching"         // ″ with a warming page cache
)

// BuildMeasure instantiates a measure over a domain.
func BuildMeasure(d *workload.Domain, key MeasureKey) (measure.Measure, error) {
	n := d.Params.N
	switch key {
	case MeasureCoverage:
		return coverage.NewMeasure(d.Coverage), nil
	case MeasureChain:
		return costmodel.NewChainCost(d.Catalog, costmodel.Params{N: n}), nil
	case MeasureChainFail:
		return costmodel.NewChainCost(d.Catalog, costmodel.Params{N: n, Failure: true}), nil
	case MeasureChainFailCache:
		return costmodel.NewChainCost(d.Catalog, costmodel.Params{N: n, Failure: true, Caching: true}), nil
	case MeasureMonetary:
		return costmodel.NewMonetaryPerTuple(d.Catalog, costmodel.Params{N: n}), nil
	case MeasureMonetaryCache:
		return costmodel.NewMonetaryPerTuple(d.Catalog, costmodel.Params{N: n, Caching: true}), nil
	case MeasureLinear:
		return costmodel.NewLinearCost(d.Catalog), nil
	case MeasureIO:
		return costmodel.NewIOCost(d.Catalog, segmentPages(d), 0, false), nil
	case MeasureIOCaching:
		return costmodel.NewIOCost(d.Catalog, segmentPages(d), 0, true), nil
	default:
		return nil, fmt.Errorf("experiment: unknown measure %q", key)
	}
}

// segmentPages computes every source's resident segment-page footprint
// for the I/O-aware measures. The footprint is a pure function of the
// coverage words, so in-memory and store-backed domains charge identical
// fault costs.
func segmentPages(d *workload.Domain) []int {
	pages := make([]int, d.Catalog.Len())
	for i := range pages {
		pages[i] = store.ResidentPages(d.Coverage.Set(lav.SourceID(i)))
	}
	return pages
}

// Heuristic returns the abstraction heuristic paired with a measure, the
// analog of the paper's "similarity wrt expected output tuples" grouping
// for each utility family (see EXPERIMENTS.md):
//
//   - coverage: the zone-aware coverage-similarity key (effective, as the
//     paper's heuristic was for coverage);
//   - chain costs: grouping by standalone expected access cost (the
//     cost-facing reading of "similar output volume", effective);
//   - monetary per tuple: the uninformed registration-order grouping.
//     Panels (j)-(l) study the regime where no effective abstraction
//     heuristic exists for the measure (the paper: "the abstraction
//     heuristic is not as effective as the ones in previous utility
//     cases"); in our generator a tuple-count grouping would remain
//     partially predictive through the output-size denominator, so the
//     uninformed grouping is what reproduces the panel's condition. See
//     EXPERIMENTS.md.
func Heuristic(d *workload.Domain, key MeasureKey) abstraction.Heuristic {
	switch key {
	case MeasureCoverage:
		return abstraction.ByKey("cov-sim", d.SimilarityKey)
	case MeasureChain, MeasureChainFail, MeasureChainFailCache, MeasureLinear, MeasureIO, MeasureIOCaching:
		return abstraction.ByAccessCost(d.Catalog)
	default:
		return abstraction.ByID()
	}
}

// BuildOrderer constructs the algorithm over a domain with the measure's
// default heuristic. It returns an error when the algorithm's
// applicability condition fails (e.g. Streamer under caching).
func BuildOrderer(d *workload.Domain, key MeasureKey, algo Algorithm) (core.Orderer, error) {
	return BuildOrdererWith(d, key, algo, Heuristic(d, key))
}

// BuildOrdererWith constructs the algorithm with an explicit abstraction
// heuristic (used by the heuristic-ablation experiment).
func BuildOrdererWith(d *workload.Domain, key MeasureKey, algo Algorithm,
	heur abstraction.Heuristic) (core.Orderer, error) {
	m, err := BuildMeasure(d, key)
	if err != nil {
		return nil, err
	}
	spaces := []*planspace.Space{d.Space}
	switch algo {
	case AlgoPI:
		return core.NewPI(spaces, m), nil
	case AlgoExhaustive:
		return core.NewExhaustive(spaces, m), nil
	case AlgoIDrips:
		return core.NewIDrips(spaces, m, heur), nil
	case AlgoStreamer:
		return core.NewStreamer(spaces, m, heur)
	case AlgoGreedy:
		return core.NewGreedy(spaces, m)
	default:
		return nil, fmt.Errorf("experiment: unknown algorithm %q", algo)
	}
}

// Cell is one experiment point.
type Cell struct {
	Algo    Algorithm
	Measure MeasureKey
	K       int
	Config  workload.Config
	// Parallelism is the orderer's worker count; 0 or 1 is the
	// sequential path. Output is identical across settings (the parallel
	// paths merge deterministically); only timing differs.
	Parallelism int
	// Reps is the number of timing repetitions for metrics collection;
	// 0 or 1 runs the cell once. CollectMetrics keeps the fastest rep's
	// wall time — micro cells finish in microseconds and a single run is
	// dominated by scheduler and GC noise, which only ever slows a run
	// down. Cells whose first run already takes repCutoff or longer sit
	// far above the noise floor and skip the extra reps.
	Reps int
}

// Result records one cell's outcome.
type Result struct {
	Cell
	// Time is the wall time from query issue (buckets already built) until
	// the k-th plan is produced, including orderer construction
	// (abstraction, sorting) as in the paper.
	Time time.Duration
	// Evals is the number of utility evaluations — the machine-neutral
	// work measure.
	Evals int
	// Plans is the number of plans actually produced (== K unless the
	// space is smaller).
	Plans int
	// TimeToFirst is the wall time until the first plan is produced
	// (zero when no plan was produced).
	TimeToFirst time.Duration
	// Mallocs is the heap-allocation count over the cell (MemStats.Mallocs
	// delta, includes orderer construction). Parallel cells also count
	// worker allocations, so only sequential cells are comparable.
	Mallocs int64
	// Err is non-empty when the algorithm is inapplicable for the measure.
	Err string
}

// Run executes one cell on a pre-generated domain (domains are reused
// across cells so every algorithm sees identical inputs).
func Run(d *workload.Domain, cell Cell) Result {
	return RunObserved(d, cell, nil)
}

// RunObserved is Run with the orderer bound to a registry (nil disables
// instrumentation), so counters such as core.<algo>.dominance_tests and
// measure.<algo>.evals accumulate across the cell's Next calls.
func RunObserved(d *workload.Domain, cell Cell, reg *obs.Registry) Result {
	res := Result{Cell: cell}
	// Collect the previous cell's garbage outside this cell's timed
	// window, as testing.B does before each benchmark: without it a
	// low-allocation cell pays the GC bill of whatever allocation-heavy
	// cell ran before it, and cell order distorts the comparison.
	runtime.GC()
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	o, err := BuildOrderer(d, cell.Measure, cell.Algo)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	core.Instrument(o, reg)
	core.SetParallelism(o, cell.Parallelism)
	if cell.K > 0 {
		if _, _, ok := o.Next(); ok {
			res.TimeToFirst = time.Since(start)
			more, _ := core.Take(o, cell.K-1)
			res.Plans = 1 + len(more)
		}
	}
	res.Time = time.Since(start)
	res.Evals = o.Context().Evals()
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	res.Mallocs = int64(ms1.Mallocs - ms0.Mallocs)
	return res
}
