package experiment

import (
	"qporder/internal/obs"
	"qporder/internal/workload"
)

// MetricsSchemaVersion identifies the qpbench --metrics-json layout.
// Bump it when a field is renamed or its meaning changes; adding fields
// does not require a bump.
const MetricsSchemaVersion = 1

// MetricRecord is one row of the stable machine-readable benchmark
// output. Field names are part of the schema consumed by downstream
// tooling: rename nothing, only append.
type MetricRecord struct {
	Algorithm  string `json:"algorithm"`
	Measure    string `json:"measure"`
	BucketSize int    `json:"bucket_size"`
	K          int    `json:"k"`
	// Plans is the number of plans actually produced (<= K).
	Plans int `json:"plans"`
	// Evals counts utility evaluations, the paper's machine-neutral work
	// measure (Section 6).
	Evals int64 `json:"evals"`
	// DominanceTests counts Lo(p) >= Hi(q) comparisons (Section 5.1).
	DominanceTests int64 `json:"dominance_tests"`
	// Refinements counts abstract-plan expansions (Section 5.1).
	Refinements int64 `json:"refinements"`
	// Splits counts plan-space splits after an output (Section 5.2).
	Splits int64 `json:"splits"`
	// IndepChecks / IndepHits count plan-independence oracle queries and
	// how many reported independence (Section 6).
	IndepChecks int64 `json:"indep_checks"`
	IndepHits   int64 `json:"indep_hits"`
	// TotalNs is wall time from query issue until the k-th plan; NsPerPlan
	// divides by Plans; TimeToFirstNs is wall time until the first plan.
	TotalNs       int64  `json:"total_ns"`
	NsPerPlan     int64  `json:"ns_per_plan"`
	TimeToFirstNs int64  `json:"time_to_first_plan_ns"`
	Error         string `json:"error,omitempty"`
}

// MetricsReport is the top-level --metrics-json document.
type MetricsReport struct {
	SchemaVersion int             `json:"schema_version"`
	Workload      workload.Config `json:"workload"`
	Records       []MetricRecord  `json:"records"`
}

// counterNames lists the per-algorithm registry counters that feed a
// MetricRecord, in the order consumed by recordDeltas.
func counterNames(algo Algorithm) []string {
	a := string(algo)
	return []string{
		"core." + a + ".dominance_tests",
		"core." + a + ".refinements",
		"core." + a + ".splits",
		"measure." + a + ".evals",
		"measure." + a + ".indep_checks",
		"measure." + a + ".indep_hits",
	}
}

func counterValues(reg *obs.Registry, names []string) []int64 {
	vals := make([]int64, len(names))
	for i, n := range names {
		vals[i] = reg.Counter(n).Value()
	}
	return vals
}

// CollectMetrics runs every cell against the shared domain and returns
// one MetricRecord per cell. All cells share reg (created if nil), so an
// expvar/pprof endpoint publishing reg shows counts accumulating live;
// per-cell numbers are computed as before/after counter deltas.
func CollectMetrics(d *workload.Domain, cells []Cell, reg *obs.Registry) []MetricRecord {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	recs := make([]MetricRecord, 0, len(cells))
	for _, cell := range cells {
		names := counterNames(cell.Algo)
		before := counterValues(reg, names)
		res := RunObserved(d, cell, reg)
		after := counterValues(reg, names)
		delta := func(i int) int64 { return after[i] - before[i] }
		rec := MetricRecord{
			Algorithm:      string(cell.Algo),
			Measure:        string(cell.Measure),
			BucketSize:     cell.Config.BucketSize,
			K:              cell.K,
			Plans:          res.Plans,
			Evals:          delta(3),
			DominanceTests: delta(0),
			Refinements:    delta(1),
			Splits:         delta(2),
			IndepChecks:    delta(4),
			IndepHits:      delta(5),
			TotalNs:        res.Time.Nanoseconds(),
			TimeToFirstNs:  res.TimeToFirst.Nanoseconds(),
			Error:          res.Err,
		}
		if res.Plans > 0 {
			rec.NsPerPlan = rec.TotalNs / int64(res.Plans)
		}
		recs = append(recs, rec)
	}
	return recs
}
