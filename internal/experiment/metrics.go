package experiment

import (
	"time"

	"qporder/internal/obs"
	"qporder/internal/workload"
)

// repCutoff is the first-rep wall time above which Cell.Reps extra
// timing repetitions are skipped: a cell at the one-second scale is far
// above the scheduler/GC noise floor, and repeating it would multiply
// the benchmark's runtime for no precision gain.
const repCutoff = time.Second

// MetricsSchemaVersion identifies the qpbench --metrics-json layout.
// Bump it when a field is renamed or its meaning changes; adding fields
// does not require a bump.
const MetricsSchemaVersion = 1

// MetricRecord is one row of the stable machine-readable benchmark
// output. Field names are part of the schema consumed by downstream
// tooling: rename nothing, only append.
type MetricRecord struct {
	Algorithm  string `json:"algorithm"`
	Measure    string `json:"measure"`
	BucketSize int    `json:"bucket_size"`
	K          int    `json:"k"`
	// Parallelism is the orderer worker count the cell ran with (0 and 1
	// both mean the sequential path; recorded as given).
	Parallelism int `json:"parallelism"`
	// Plans is the number of plans actually produced (<= K).
	Plans int `json:"plans"`
	// Evals counts utility evaluations, the paper's machine-neutral work
	// measure (Section 6).
	Evals int64 `json:"evals"`
	// DominanceTests counts Lo(p) >= Hi(q) comparisons (Section 5.1).
	DominanceTests int64 `json:"dominance_tests"`
	// Refinements counts abstract-plan expansions (Section 5.1).
	Refinements int64 `json:"refinements"`
	// Splits counts plan-space splits after an output (Section 5.2).
	Splits int64 `json:"splits"`
	// IndepChecks / IndepHits count plan-independence oracle queries and
	// how many reported independence (Section 6).
	IndepChecks int64 `json:"indep_checks"`
	IndepHits   int64 `json:"indep_hits"`
	// TotalNs is wall time from query issue until the k-th plan; NsPerPlan
	// divides by Plans; TimeToFirstNs is wall time until the first plan.
	TotalNs       int64 `json:"total_ns"`
	NsPerPlan     int64 `json:"ns_per_plan"`
	TimeToFirstNs int64 `json:"time_to_first_plan_ns"`
	// Mallocs is the heap-allocation count (runtime.MemStats.Mallocs
	// delta) over the cell; MallocsPerEval divides by Evals. Sequential
	// cells gate on this in CompareAllocs — the snapshot-cached coverage
	// hot path promises zero allocations per concrete Evaluate, so a
	// per-eval alloc creep is a regression even when timing hides it.
	Mallocs        int64   `json:"mallocs"`
	MallocsPerEval float64 `json:"mallocs_per_eval"`
	Error          string  `json:"error,omitempty"`
}

// MetricsReport is the top-level --metrics-json document.
type MetricsReport struct {
	SchemaVersion int             `json:"schema_version"`
	Workload      workload.Config `json:"workload"`
	// CPUs and GoMaxProcs record the machine the numbers came from, so a
	// parallel speedup (or its absence) can be read honestly: a 1-CPU
	// runner cannot show one.
	CPUs       int            `json:"cpus"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Records    []MetricRecord `json:"records"`
	// Serve carries the serving-throughput sweep when the serve
	// experiment ran (additive; absent in older reports).
	Serve []ServeRecord `json:"serve,omitempty"`
	// Fleet carries the router-fronted fleet sweep when the fleet
	// experiment ran (additive; absent in older reports).
	Fleet []FleetRecord `json:"fleet,omitempty"`
	// Store carries the cold-vs-warm segment-store sweep when the store
	// experiment ran (additive; absent in older reports).
	Store []StoreRecord `json:"store,omitempty"`
}

// counterNames lists the per-algorithm registry counters that feed a
// MetricRecord, in the order consumed by recordDeltas.
func counterNames(algo Algorithm) []string {
	a := string(algo)
	return []string{
		"core." + a + ".dominance_tests",
		"core." + a + ".refinements",
		"core." + a + ".splits",
		"measure." + a + ".evals",
		"measure." + a + ".indep_checks",
		"measure." + a + ".indep_hits",
	}
}

func counterValues(reg *obs.Registry, names []string) []int64 {
	vals := make([]int64, len(names))
	for i, n := range names {
		vals[i] = reg.Counter(n).Value()
	}
	return vals
}

// Regression is one cell whose timing worsened beyond the threshold
// against a baseline report.
type Regression struct {
	Record   MetricRecord
	Baseline int64 // baseline ns_per_plan
	Ratio    float64
}

// CompareReports checks cur's sequential records against base (the
// checked-in benchmark baseline): a cell regresses when its ns_per_plan
// exceeds the baseline's by more than threshold (0.20 = 20%). Parallel
// records, errored cells, and cells absent from the baseline are skipped
// — timing of the parallel path depends on the runner's core count, so
// only the sequential path gates.
func CompareReports(cur, base MetricsReport, threshold float64) []Regression {
	type key struct {
		algo, measure string
		bucket, k     int
	}
	baseline := map[key]int64{}
	for _, r := range base.Records {
		if r.Parallelism <= 1 && r.Error == "" && r.NsPerPlan > 0 {
			baseline[key{r.Algorithm, r.Measure, r.BucketSize, r.K}] = r.NsPerPlan
		}
	}
	var out []Regression
	for _, r := range cur.Records {
		if r.Parallelism > 1 || r.Error != "" || r.NsPerPlan <= 0 {
			continue
		}
		b, ok := baseline[key{r.Algorithm, r.Measure, r.BucketSize, r.K}]
		if !ok {
			continue
		}
		ratio := float64(r.NsPerPlan) / float64(b)
		if ratio > 1+threshold {
			out = append(out, Regression{Record: r, Baseline: b, Ratio: ratio})
		}
	}
	return out
}

// AllocRegression is one cell whose per-evaluation allocation count grew
// beyond the threshold against a baseline report.
type AllocRegression struct {
	Record   MetricRecord
	Baseline float64 // baseline mallocs_per_eval
	Ratio    float64
}

// CompareAllocs checks cur's sequential records' mallocs_per_eval
// against base, mirroring CompareReports for the allocation dimension.
// Cells whose baseline lacks allocation data (older reports predate the
// field and unmarshal it as zero) are skipped, so the gate arms itself
// automatically once a baseline with allocation counts is checked in.
func CompareAllocs(cur, base MetricsReport, threshold float64) []AllocRegression {
	type key struct {
		algo, measure string
		bucket, k     int
	}
	baseline := map[key]float64{}
	for _, r := range base.Records {
		if r.Parallelism <= 1 && r.Error == "" && r.MallocsPerEval > 0 {
			baseline[key{r.Algorithm, r.Measure, r.BucketSize, r.K}] = r.MallocsPerEval
		}
	}
	var out []AllocRegression
	for _, r := range cur.Records {
		if r.Parallelism > 1 || r.Error != "" || r.Evals == 0 {
			continue
		}
		b, ok := baseline[key{r.Algorithm, r.Measure, r.BucketSize, r.K}]
		if !ok {
			continue
		}
		ratio := r.MallocsPerEval / b
		if ratio > 1+threshold {
			out = append(out, AllocRegression{Record: r, Baseline: b, Ratio: ratio})
		}
	}
	return out
}

// CollectMetrics runs every cell against the shared domain and returns
// one MetricRecord per cell. All cells share reg (created if nil), so an
// expvar/pprof endpoint publishing reg shows counts accumulating live;
// per-cell numbers are computed as before/after counter deltas.
func CollectMetrics(d *workload.Domain, cells []Cell, reg *obs.Registry) []MetricRecord {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	recs := make([]MetricRecord, 0, len(cells))
	for _, cell := range cells {
		names := counterNames(cell.Algo)
		before := counterValues(reg, names)
		res := RunObserved(d, cell, reg)
		after := counterValues(reg, names)
		// Extra reps keep the fastest wall time and lowest malloc count.
		// Counter deltas come from the first rep alone: the orderers are
		// deterministic, so every rep produces identical counts.
		for r := 1; r < cell.Reps && res.Err == "" && res.Time < repCutoff; r++ {
			res2 := RunObserved(d, cell, reg)
			if res2.Err != "" {
				continue
			}
			if res2.Time < res.Time {
				res.Time = res2.Time
				res.TimeToFirst = res2.TimeToFirst
			}
			if res2.Mallocs < res.Mallocs {
				res.Mallocs = res2.Mallocs
			}
		}
		delta := func(i int) int64 { return after[i] - before[i] }
		rec := MetricRecord{
			Mallocs:        res.Mallocs,
			Algorithm:      string(cell.Algo),
			Measure:        string(cell.Measure),
			BucketSize:     cell.Config.BucketSize,
			K:              cell.K,
			Parallelism:    cell.Parallelism,
			Plans:          res.Plans,
			Evals:          delta(3),
			DominanceTests: delta(0),
			Refinements:    delta(1),
			Splits:         delta(2),
			IndepChecks:    delta(4),
			IndepHits:      delta(5),
			TotalNs:        res.Time.Nanoseconds(),
			TimeToFirstNs:  res.TimeToFirst.Nanoseconds(),
			Error:          res.Err,
		}
		if res.Plans > 0 {
			rec.NsPerPlan = rec.TotalNs / int64(res.Plans)
		}
		if rec.Evals > 0 {
			rec.MallocsPerEval = float64(res.Mallocs) / float64(rec.Evals)
		}
		recs = append(recs, rec)
	}
	return recs
}
