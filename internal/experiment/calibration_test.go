package experiment

import (
	"testing"

	"qporder/internal/workload"
)

// The calibration experiment's whole point: fresh statistics calibrate
// cleanly, stale ones show the q-error and trip the drift detector.
func TestRunCalibrationFreshVsStale(t *testing.T) {
	recs, err := RunCalibration(workload.Config{QueryLen: 2, BucketSize: 4, Seed: 7}, 16, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(recs))
	}
	fresh, stale := recs[0], recs[1]
	if fresh.Scenario != "fresh" || stale.Scenario != "stale" {
		t.Fatalf("scenario order %q/%q, want fresh/stale", fresh.Scenario, stale.Scenario)
	}
	if fresh.Plans == 0 || stale.Plans == 0 {
		t.Fatalf("scenarios executed no plans: fresh=%d stale=%d", fresh.Plans, stale.Plans)
	}
	if fresh.Sources == 0 {
		t.Fatal("fresh scenario recorded no per-source series")
	}

	// Fresh statistics equal the store sizes exactly, so every
	// unconstrained access pairs est == act: q-error 1, EWMA 0, no trip.
	if len(fresh.Drifted) != 0 {
		t.Errorf("fresh scenario drifted: %v", fresh.Drifted)
	}
	if fresh.MaxQErrP50 > 1.001 {
		t.Errorf("fresh max q-error p50 = %g, want 1", fresh.MaxQErrP50)
	}
	if fresh.MaxAbsEWMA > 0.001 {
		t.Errorf("fresh max |EWMA| = %g, want 0", fresh.MaxAbsEWMA)
	}

	// Stale statistics are inflated 16x: q-error ~16 on every observed
	// source, and with 12 plans over a 4-source position-0 bucket some
	// source collects >= 3 samples and trips the detector.
	if len(stale.Drifted) == 0 {
		t.Error("stale scenario tripped no drift detector")
	}
	if stale.MaxQErrP50 < 8 {
		t.Errorf("stale max q-error p50 = %g, want ~16", stale.MaxQErrP50)
	}
	if stale.MaxAbsEWMA < 2 {
		t.Errorf("stale max |EWMA| = %g, want > 2 (= log2(4))", stale.MaxAbsEWMA)
	}

	// The rendered table carries one row per scenario.
	tbl := CalibTable(recs)
	if len(tbl.Rows) != 2 {
		t.Fatalf("table rows = %d, want 2", len(tbl.Rows))
	}
}
