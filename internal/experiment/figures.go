package experiment

import (
	"fmt"
	"time"

	"qporder/internal/abstraction"
	"qporder/internal/core"
	"qporder/internal/stats"
	"qporder/internal/workload"
)

// Panel describes one panel of Figure 6: one utility measure, one k, the
// applicable algorithms, time plotted against bucket size.
type Panel struct {
	ID      string
	Title   string
	Measure MeasureKey
	K       int
	Algos   []Algorithm
}

// Fig6Panels returns the twelve panels of Figure 6:
// (a)-(c) plan coverage for k = 1, 10, 100;
// (d)-(f) cost measure (2) with source failure, no caching;
// (g)-(i) the same with caching (Streamer inapplicable);
// (j)-(l) average monetary cost per tuple.
func Fig6Panels() []Panel {
	three := []Algorithm{AlgoPI, AlgoIDrips, AlgoStreamer}
	two := []Algorithm{AlgoPI, AlgoIDrips}
	ks := []int{1, 10, 100}
	var panels []Panel
	add := func(ids string, title string, m MeasureKey, algos []Algorithm) {
		for i, k := range ks {
			panels = append(panels, Panel{
				ID:      "6" + string(ids[i]),
				Title:   fmt.Sprintf("%s, first %d plan(s)", title, k),
				Measure: m,
				K:       k,
				Algos:   algos,
			})
		}
	}
	add("abc", "plan coverage", MeasureCoverage, three)
	add("def", "cost(2)+failure, no caching", MeasureChainFail, three)
	add("ghi", "cost(2)+failure, caching", MeasureChainFailCache, two)
	add("jkl", "avg monetary cost per tuple", MeasureMonetary, three)
	return panels
}

// PanelByID finds a panel; ok=false when the ID is unknown.
func PanelByID(id string) (Panel, bool) {
	for _, p := range Fig6Panels() {
		if p.ID == id {
			return p, true
		}
	}
	return Panel{}, false
}

// DomainCache memoizes generated domains so every algorithm in a panel
// (and across panels) sees identical inputs.
type DomainCache map[workload.Config]*workload.Domain

// Get returns the cached domain for a configuration, generating on miss.
func (dc DomainCache) Get(cfg workload.Config) *workload.Domain {
	if d, ok := dc[cfg]; ok {
		return d
	}
	d := workload.Generate(cfg)
	dc[cfg] = d
	return d
}

// PanelResult is one executed panel: per bucket size, per algorithm.
type PanelResult struct {
	Panel
	BucketSizes []int
	// Results[i][j] is bucket size i, algorithm j (panel order).
	Results [][]Result
}

// RunPanel executes a panel over the given bucket sizes. base supplies
// the shared configuration (query length, zones, universe, seed).
func RunPanel(dc DomainCache, p Panel, sizes []int, base workload.Config) PanelResult {
	pr := PanelResult{Panel: p, BucketSizes: sizes}
	for _, m := range sizes {
		cfg := base
		cfg.BucketSize = m
		d := dc.Get(cfg)
		row := make([]Result, len(p.Algos))
		for j, algo := range p.Algos {
			row[j] = Run(d, Cell{Algo: algo, Measure: p.Measure, K: p.K, Config: cfg})
		}
		pr.Results = append(pr.Results, row)
	}
	return pr
}

// Table renders the panel as the paper-shaped series: one row per bucket
// size, one time and evals column per algorithm.
func (pr PanelResult) Table() *stats.Table {
	headers := []string{"bucket"}
	for _, a := range pr.Algos {
		headers = append(headers, string(a)+"-time", string(a)+"-evals")
	}
	t := stats.NewTable(headers...)
	for i, m := range pr.BucketSizes {
		row := []string{fmt.Sprint(m)}
		for _, r := range pr.Results[i] {
			if r.Err != "" {
				row = append(row, "n/a", "n/a")
				continue
			}
			row = append(row, stats.FormatDuration(r.Time), fmt.Sprint(r.Evals))
		}
		t.Add(row...)
	}
	return t
}

// OverlapSweep runs the prose experiment on overlap rate: Streamer vs PI
// on plan coverage, k plans, varying the zone count (overlap ≈ 1/zones).
type SweepPoint struct {
	Label   string
	Results []Result
}

// RunOverlapSweep returns one point per zone count, each with PI and
// Streamer results.
func RunOverlapSweep(dc DomainCache, zones []int, k int, base workload.Config) []SweepPoint {
	var out []SweepPoint
	for _, z := range zones {
		cfg := base
		cfg.Zones = z
		d := dc.Get(cfg)
		pt := SweepPoint{Label: fmt.Sprintf("overlap≈%.2f", 1/float64(z))}
		for _, algo := range []Algorithm{AlgoPI, AlgoStreamer} {
			pt.Results = append(pt.Results, Run(d, Cell{Algo: algo, Measure: MeasureCoverage, K: k, Config: cfg}))
		}
		out = append(out, pt)
	}
	return out
}

// RunQueryLenSweep varies query length (the paper: 1..7, same trends,
// widening gaps) for a measure with all three algorithms.
func RunQueryLenSweep(dc DomainCache, lengths []int, k int, m MeasureKey, base workload.Config) []SweepPoint {
	var out []SweepPoint
	for _, ql := range lengths {
		cfg := base
		cfg.QueryLen = ql
		d := dc.Get(cfg)
		pt := SweepPoint{Label: fmt.Sprintf("qlen=%d", ql)}
		for _, algo := range []Algorithm{AlgoPI, AlgoIDrips, AlgoStreamer} {
			pt.Results = append(pt.Results, Run(d, Cell{Algo: algo, Measure: m, K: k, Config: cfg}))
		}
		out = append(out, pt)
	}
	return out
}

// EvalFraction reproduces the "<4% of the plans evaluated by PI" claim:
// the ratio of Streamer's to PI's utility evaluations when finding the
// first plan under plan coverage.
func EvalFraction(dc DomainCache, base workload.Config) (streamerEvals, piEvals int, frac float64) {
	d := dc.Get(base)
	s := Run(d, Cell{Algo: AlgoStreamer, Measure: MeasureCoverage, K: 1, Config: base})
	p := Run(d, Cell{Algo: AlgoPI, Measure: MeasureCoverage, K: 1, Config: base})
	return s.Evals, p.Evals, float64(s.Evals) / float64(p.Evals)
}

// AblationPoint is one heuristic's result in the ablation study.
type AblationPoint struct {
	Heuristic string
	Algo      Algorithm
	Result    Result
	// Recycled/Dropped are Streamer's link statistics (zero for others).
	Recycled, Dropped int
}

// RunHeuristicAblation quantifies how much the grouping heuristic
// matters (DESIGN.md's ablation): plan coverage ordered by Streamer and
// iDrips under the zone-aware similarity key, the paper's plain
// tuple-count key, and the uninformed by-ID grouping.
func RunHeuristicAblation(dc DomainCache, k int, base workload.Config) []AblationPoint {
	d := dc.Get(base)
	heurs := []abstraction.Heuristic{
		abstraction.ByKey("cov-sim", d.SimilarityKey),
		abstraction.ByTuples(d.Catalog),
		abstraction.ByID(),
	}
	var out []AblationPoint
	for _, h := range heurs {
		for _, algo := range []Algorithm{AlgoStreamer, AlgoIDrips} {
			pt := AblationPoint{Heuristic: h.Name(), Algo: algo}
			start := time.Now()
			o, err := BuildOrdererWith(d, MeasureCoverage, algo, h)
			if err != nil {
				pt.Result.Err = err.Error()
				out = append(out, pt)
				continue
			}
			plans, _ := core.Take(o, k)
			pt.Result = Result{
				Cell:  Cell{Algo: algo, Measure: MeasureCoverage, K: k, Config: base},
				Time:  time.Since(start),
				Evals: o.Context().Evals(),
				Plans: len(plans),
			}
			if s, ok := o.(*core.Streamer); ok {
				pt.Recycled, pt.Dropped = s.LinkStats()
			}
			out = append(out, pt)
		}
	}
	return out
}

// AblationTable renders the ablation results.
func AblationTable(points []AblationPoint) *stats.Table {
	t := stats.NewTable("heuristic", "algorithm", "time", "evals", "links-recycled", "links-dropped")
	for _, p := range points {
		if p.Result.Err != "" {
			t.Add(p.Heuristic, string(p.Algo), "n/a", "n/a", "", "")
			continue
		}
		rec, drop := "", ""
		if p.Algo == AlgoStreamer {
			rec, drop = fmt.Sprint(p.Recycled), fmt.Sprint(p.Dropped)
		}
		t.Add(p.Heuristic, string(p.Algo),
			stats.FormatDuration(p.Result.Time), fmt.Sprint(p.Result.Evals), rec, drop)
	}
	return t
}

// SweepTable renders sweep points with the algorithm list used.
func SweepTable(points []SweepPoint, algos []Algorithm) *stats.Table {
	headers := []string{"point"}
	for _, a := range algos {
		headers = append(headers, string(a)+"-time", string(a)+"-evals")
	}
	t := stats.NewTable(headers...)
	for _, pt := range points {
		row := []string{pt.Label}
		for _, r := range pt.Results {
			if r.Err != "" {
				row = append(row, "n/a", "n/a")
				continue
			}
			row = append(row, stats.FormatDuration(r.Time), fmt.Sprint(r.Evals))
		}
		t.Add(row...)
	}
	return t
}
