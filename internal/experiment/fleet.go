package experiment

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"qporder/internal/fleet"
	"qporder/internal/obs"
	"qporder/internal/server"
	"qporder/internal/stats"
	"qporder/internal/workload"
)

// FleetRecord is one row of the fleet experiment: the router-fronted
// shard fleet driven at one concurrency level, in one routing mode.
type FleetRecord struct {
	// Mode is "affinity" (whole sessions routed by canonical key) or
	// "scatter" (plan space partitioned across the fleet per session).
	Mode        string `json:"mode"`
	Shards      int    `json:"shards"`
	Concurrency int    `json:"concurrency"`
	Requests    int    `json:"requests"`
	Errors      int    `json:"errors"`
	K           int    `json:"k"`
	// SessionsPerSec is the achieved completion throughput through the
	// router hop.
	SessionsPerSec float64 `json:"sessions_per_sec"`
	FullP50MS      float64 `json:"full_p50_ms"`
	FullP99MS      float64 `json:"full_p99_ms"`
	// Knee marks the level RunFleetSweep identified as the throughput
	// knee for this mode.
	Knee  bool   `json:"knee,omitempty"`
	Error string `json:"error,omitempty"`
}

// FleetConfig parameterizes the fleet experiment.
type FleetConfig struct {
	// Shards is the fleet size (default 3).
	Shards int
	// Concurrencies are the sweep levels (default 1, 2, 4).
	Concurrencies []int
	// Requests per level (default 16).
	Requests int
	// K is the per-session plan budget (default 5).
	K int
}

// RunFleet boots an in-process fleet — N qpserved-equivalent shards
// behind a qprouter-equivalent router — and sweeps the load generator
// across concurrency levels in both routing modes. The affinity sweep
// measures the fleet as a throughput multiplier (sessions spread across
// shard caches); the scatter sweep measures per-session latency when
// every session fans out across the whole fleet.
func RunFleet(d *workload.Domain, cfg FleetConfig) ([]FleetRecord, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if len(cfg.Concurrencies) == 0 {
		cfg.Concurrencies = []int{1, 2, 4}
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 16
	}
	if cfg.K <= 0 {
		cfg.K = 5
	}

	shards := make([]string, cfg.Shards)
	for i := range shards {
		srv, err := server.New(server.Config{
			Catalog:     d.Catalog,
			Seed:        d.Config.Seed + 100, // one world across the fleet
			N:           d.Config.N,
			MaxInflight: maxConc(cfg.Concurrencies) * 2,
			Reg:         obs.NewRegistry(),
		})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			httpSrv.Shutdown(ctx)
		}()
		shards[i] = "http://" + ln.Addr().String()
	}

	rt, err := fleet.New(fleet.Config{
		Shards:         shards,
		HealthInterval: 250 * time.Millisecond,
		Registry:       obs.NewRegistry(),
		DefaultK:       cfg.K,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	go httpSrv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	routerURL := "http://" + ln.Addr().String()

	var out []FleetRecord
	for _, mode := range []string{"affinity", "scatter"} {
		lc := server.LoadConfig{
			BaseURL:  routerURL,
			Queries:  []string{d.Query.String()},
			Requests: cfg.Requests,
			K:        cfg.K,
			Measure:  "chain",
			Shuffle:  true,
			Seed:     d.Config.Seed,
			Scatter:  mode == "scatter",
		}
		if mode == "scatter" {
			lc.Algorithm = "pi"
		} else {
			lc.Algorithm = "streamer"
		}
		rep, err := server.RunFleetSweep(context.Background(), lc, cfg.Concurrencies)
		if err != nil {
			out = append(out, FleetRecord{Mode: mode, Shards: cfg.Shards, Error: err.Error()})
			continue
		}
		for _, p := range rep.Points {
			out = append(out, FleetRecord{
				Mode: mode, Shards: cfg.Shards,
				Concurrency: p.Concurrency, Requests: cfg.Requests,
				Errors: p.Errors, K: cfg.K,
				SessionsPerSec: p.QPS,
				FullP50MS:      p.Full.P50, FullP99MS: p.Full.P99,
				Knee: p.Concurrency == rep.Knee,
			})
		}
	}
	return out, nil
}

// FleetTable renders the fleet sweep.
func FleetTable(recs []FleetRecord) *stats.Table {
	t := stats.NewTable("mode", "shards", "conc", "requests", "errors",
		"sessions/s", "full-p50", "full-p99", "knee")
	for _, r := range recs {
		if r.Error != "" && r.Requests == 0 {
			t.Add(r.Mode, fmt.Sprint(r.Shards), "-", "-", "-", r.Error, "", "", "")
			continue
		}
		knee := ""
		if r.Knee {
			knee = "*"
		}
		t.Add(r.Mode, fmt.Sprint(r.Shards), fmt.Sprint(r.Concurrency),
			fmt.Sprint(r.Requests), fmt.Sprint(r.Errors),
			fmt.Sprintf("%.1f", r.SessionsPerSec),
			fmt.Sprintf("%.2fms", r.FullP50MS), fmt.Sprintf("%.2fms", r.FullP99MS),
			knee)
	}
	return t
}
