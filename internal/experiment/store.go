package experiment

import (
	"fmt"
	"os"
	"time"

	"qporder/internal/core"
	"qporder/internal/stats"
	"qporder/internal/store"
	"qporder/internal/workload"
)

// StoreRecord is one row of the store experiment: one algorithm driven
// over one backend mode.
type StoreRecord struct {
	// Mode is "memory" (the generated in-memory domain), "cold" (the
	// store-backed domain with an empty page cache), or "warm" (the same
	// store immediately re-run, pages resident).
	Mode      string `json:"mode"`
	Algorithm string `json:"algorithm"`
	Measure   string `json:"measure"`
	Universe  int    `json:"universe"`
	Sources   int    `json:"sources"`
	K         int    `json:"k"`
	Plans     int    `json:"plans"`
	Evals     int64  `json:"evals"`
	TotalNs   int64  `json:"total_ns"`
	// Store accounting deltas over the run (zero for memory rows).
	Faults         int64 `json:"faults"`
	PageHits       int64 `json:"page_hits"`
	BytesResident  int64 `json:"bytes_resident"`
	SegmentsMapped int64 `json:"segments_mapped"`
	CatalogHits    int64 `json:"catalog_hits"`
	// Parity reports that this row's (plan key, utility) stream is
	// byte-identical to the memory row of the same cell; memory rows are
	// trivially true.
	Parity bool   `json:"parity"`
	Error  string `json:"error,omitempty"`
}

// StoreConfig parameterizes the store experiment.
type StoreConfig struct {
	// Config generates the domain; the caller scales Universe (qpbench
	// uses 16× the in-memory default so the sweep runs against a catalog
	// an order of magnitude past what default runs hold in RAM).
	Config workload.Config
	// Algos defaults to PI, iDrips, Streamer.
	Algos []Algorithm
	// Measure defaults to MeasureCoverage — the one measure whose
	// Evaluate hot path reads answer sets, so cold/warm page realism
	// shows up in wall time.
	Measure MeasureKey
	// K is the per-run plan budget (default 10).
	K int
	// CachePages bounds the simulated page cache (default unbounded).
	CachePages int
}

func (c StoreConfig) withDefaults() StoreConfig {
	if len(c.Algos) == 0 {
		c.Algos = []Algorithm{AlgoPI, AlgoIDrips, AlgoStreamer}
	}
	if c.Measure == "" {
		c.Measure = MeasureCoverage
	}
	if c.K == 0 {
		c.K = 10
	}
	return c
}

// RunStore generates a domain, persists it with store.WriteDomain, and
// runs every algorithm three ways: against the in-memory domain, then
// against the store-backed domain cold (page cache reset before the
// run) and warm (immediate re-run, pages resident). Each store-backed
// row records the fault/hit/residency deltas its run incurred and
// whether its plan stream matched the in-memory run byte-for-byte.
func RunStore(cfg StoreConfig) ([]StoreRecord, error) {
	cfg = cfg.withDefaults()
	gen := workload.Generate(cfg.Config)
	dir, err := os.MkdirTemp("", "qpstore-exp-*")
	if err != nil {
		return nil, fmt.Errorf("experiment: temp store dir: %w", err)
	}
	defer os.RemoveAll(dir)
	if err := store.WriteDomain(dir, gen); err != nil {
		return nil, err
	}
	st, d, err := store.Load(dir, store.Options{CachePages: cfg.CachePages})
	if err != nil {
		return nil, err
	}
	defer st.Close()

	type streamKey struct{ keys, utils string }
	base := map[Algorithm]streamKey{}
	var recs []StoreRecord

	run := func(dom *workload.Domain, algo Algorithm) (streamKey, StoreRecord) {
		rec := StoreRecord{
			Algorithm: string(algo),
			Measure:   string(cfg.Measure),
			Universe:  dom.Coverage.Universe(),
			Sources:   dom.Catalog.Len(),
			K:         cfg.K,
		}
		o, err := BuildOrderer(dom, cfg.Measure, algo)
		if err != nil {
			rec.Error = err.Error()
			return streamKey{}, rec
		}
		start := time.Now()
		plans, utils := core.Take(o, cfg.K)
		rec.TotalNs = time.Since(start).Nanoseconds()
		rec.Plans = len(plans)
		rec.Evals = int64(o.Context().Evals())
		sk := streamKey{}
		for i, p := range plans {
			sk.keys += p.Key() + "\n"
			sk.utils += fmt.Sprintf("%x\n", utils[i])
		}
		return sk, rec
	}

	for _, algo := range cfg.Algos {
		sk, rec := run(gen, algo)
		rec.Mode = "memory"
		rec.Parity = rec.Error == ""
		recs = append(recs, rec)
		if rec.Error == "" {
			base[algo] = sk
		}
	}
	for _, algo := range cfg.Algos {
		if _, ok := base[algo]; !ok {
			continue
		}
		// Cold: empty page cache, every touched page faults. Warm: the
		// immediate re-run over the pages the cold run left resident.
		st.ResetCache()
		for _, mode := range []string{"cold", "warm"} {
			before := st.Snapshot()
			sk, rec := run(d, algo)
			after := st.Snapshot()
			rec.Mode = mode
			rec.Faults = after.Faults - before.Faults
			rec.PageHits = after.PageHits - before.PageHits
			rec.BytesResident = after.BytesResident
			rec.SegmentsMapped = after.SegmentsMapped
			rec.CatalogHits = after.CatalogHits
			rec.Parity = rec.Error == "" && sk == base[algo]
			recs = append(recs, rec)
		}
	}
	return recs, nil
}

// StoreTable renders store records for the text report.
func StoreTable(recs []StoreRecord) *stats.Table {
	t := stats.NewTable("mode", "algorithm", "universe", "sources", "plans",
		"evals", "total", "faults", "hits", "resident", "parity")
	for _, r := range recs {
		if r.Error != "" {
			t.Add(r.Mode, r.Algorithm, fmt.Sprint(r.Universe), fmt.Sprint(r.Sources),
				r.Error, "", "", "", "", "", "")
			continue
		}
		parity := "ok"
		if !r.Parity {
			parity = "DIVERGED"
		}
		t.Add(r.Mode, r.Algorithm, fmt.Sprint(r.Universe), fmt.Sprint(r.Sources),
			fmt.Sprint(r.Plans), fmt.Sprint(r.Evals),
			time.Duration(r.TotalNs).Round(time.Microsecond).String(),
			fmt.Sprint(r.Faults), fmt.Sprint(r.PageHits),
			fmt.Sprintf("%.1fMiB", float64(r.BytesResident)/(1<<20)),
			parity)
	}
	return t
}
