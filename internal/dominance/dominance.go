// Package dominance implements the dominance graph maintained by the
// Streamer algorithm (Section 5.2): nodes are (possibly abstract) plans
// with cached utility intervals; a link p→q asserts that p dominates q;
// each link carries the set E(p,q) of plans removed since the link was
// created, which Streamer uses to recheck the link's validity.
//
// The nondominated set (in-degree zero) is maintained incrementally, so
// Streamer's per-iteration cost is proportional to the nondominated
// frontier, not the whole graph. Iteration order over plans and links is
// unspecified; callers select deterministically via explicit comparisons.
package dominance

import (
	"qporder/internal/interval"
	"qporder/internal/planspace"
)

// Link is a domination link p→q with its associated plan set E(p,q).
type Link struct {
	From, To *planspace.Plan
	// E lists the concrete plans output since the link was created
	// (Figure 4/5 of the paper).
	E []*planspace.Plan
}

type nodeInfo struct {
	u   *interval.Interval // nil: needs (re)computation
	out map[*planspace.Plan]*Link
	in  map[*planspace.Plan]*Link
}

// Graph is the dominance graph. Plan identity is pointer identity: plans
// are created once (roots and refinement children) and never rebuilt.
// The zero value is not usable; call New.
type Graph struct {
	nodes  map[*planspace.Plan]*nodeInfo
	nondom map[*planspace.Plan]struct{}
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:  make(map[*planspace.Plan]*nodeInfo),
		nondom: make(map[*planspace.Plan]struct{}),
	}
}

// Len returns the number of plans in the graph.
func (g *Graph) Len() int { return len(g.nodes) }

// Add inserts a plan with unknown utility. Adding an existing plan panics
// (it would silently discard link state).
func (g *Graph) Add(p *planspace.Plan) {
	if _, dup := g.nodes[p]; dup {
		panic("dominance: duplicate Add of plan " + p.Key())
	}
	g.nodes[p] = &nodeInfo{
		out: make(map[*planspace.Plan]*Link),
		in:  make(map[*planspace.Plan]*Link),
	}
	g.nondom[p] = struct{}{}
}

// Has reports whether p is in the graph.
func (g *Graph) Has(p *planspace.Plan) bool {
	_, ok := g.nodes[p]
	return ok
}

// Remove deletes a plan and every incident link; targets losing their
// last incoming link become nondominated.
func (g *Graph) Remove(p *planspace.Plan) {
	info, ok := g.nodes[p]
	if !ok {
		panic("dominance: Remove of unknown plan " + p.Key())
	}
	for to := range info.out {
		ti := g.nodes[to]
		delete(ti.in, p)
		if len(ti.in) == 0 {
			g.nondom[to] = struct{}{}
		}
	}
	for from := range info.in {
		delete(g.nodes[from].out, p)
	}
	delete(g.nodes, p)
	delete(g.nondom, p)
}

// Utility returns the cached utility of p, or ok=false if it needs
// computation.
func (g *Graph) Utility(p *planspace.Plan) (interval.Interval, bool) {
	info := g.must(p)
	if info.u == nil {
		return interval.Interval{}, false
	}
	return *info.u, true
}

// SetUtility caches the utility of p.
func (g *Graph) SetUtility(p *planspace.Plan, u interval.Interval) {
	g.must(p).u = &u
}

// Invalidate marks p's utility as needing recomputation.
func (g *Graph) Invalidate(p *planspace.Plan) { g.must(p).u = nil }

func (g *Graph) must(p *planspace.Plan) *nodeInfo {
	info, ok := g.nodes[p]
	if !ok {
		panic("dominance: unknown plan " + p.Key())
	}
	return info
}

// HasLink reports whether the link from→to exists.
func (g *Graph) HasLink(from, to *planspace.Plan) bool {
	_, ok := g.must(from).out[to]
	return ok
}

// AddLink creates the link from→to with an empty E set. Self links and
// duplicate links panic.
func (g *Graph) AddLink(from, to *planspace.Plan) *Link {
	if from == to {
		panic("dominance: self link on " + from.Key())
	}
	fi, ti := g.must(from), g.must(to)
	if _, dup := fi.out[to]; dup {
		panic("dominance: duplicate link " + from.Key() + " -> " + to.Key())
	}
	l := &Link{From: from, To: to}
	fi.out[to] = l
	ti.in[from] = l
	delete(g.nondom, to)
	return l
}

// RemoveLink deletes the link; a target losing its last incoming link
// becomes nondominated.
func (g *Graph) RemoveLink(l *Link) {
	delete(g.must(l.From).out, l.To)
	ti := g.must(l.To)
	delete(ti.in, l.From)
	if len(ti.in) == 0 {
		g.nondom[l.To] = struct{}{}
	}
}

// Dominated reports whether p has at least one incoming link.
func (g *Graph) Dominated(p *planspace.Plan) bool { return len(g.must(p).in) > 0 }

// Nondominated returns the plans with no incoming links, in unspecified
// order.
func (g *Graph) Nondominated() []*planspace.Plan {
	out := make([]*planspace.Plan, 0, len(g.nondom))
	for p := range g.nondom {
		out = append(out, p)
	}
	return out
}

// NondominatedCount returns the size of the nondominated frontier.
func (g *Graph) NondominatedCount() int { return len(g.nondom) }

// Plans returns every plan, in unspecified order.
func (g *Graph) Plans() []*planspace.Plan {
	out := make([]*planspace.Plan, 0, len(g.nodes))
	for p := range g.nodes {
		out = append(out, p)
	}
	return out
}

// EachPlan invokes f for every plan without allocating.
func (g *Graph) EachPlan(f func(p *planspace.Plan)) {
	for p := range g.nodes {
		f(p)
	}
}

// Links returns every link, in unspecified order.
func (g *Graph) Links() []*Link {
	var out []*Link
	for _, info := range g.nodes {
		for _, l := range info.out {
			out = append(out, l)
		}
	}
	return out
}

// LinkCount returns the number of links.
func (g *Graph) LinkCount() int {
	n := 0
	for _, info := range g.nodes {
		n += len(info.out)
	}
	return n
}

// ClearLinks removes every link; a safe (conservative) full reset.
func (g *Graph) ClearLinks() {
	for p, info := range g.nodes {
		info.out = make(map[*planspace.Plan]*Link)
		info.in = make(map[*planspace.Plan]*Link)
		g.nondom[p] = struct{}{}
	}
}
