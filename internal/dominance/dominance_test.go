package dominance

import (
	"testing"

	"qporder/internal/abstraction"
	"qporder/internal/interval"
	"qporder/internal/lav"
	"qporder/internal/planspace"
)

func plan(id int) *planspace.Plan {
	return planspace.New(&abstraction.Node{Sources: []lav.SourceID{lav.SourceID(id)}})
}

func TestAddRemoveAndFrontier(t *testing.T) {
	g := New()
	a, b, c := plan(1), plan(2), plan(3)
	g.Add(a)
	g.Add(b)
	g.Add(c)
	if g.Len() != 3 || g.NondominatedCount() != 3 {
		t.Fatalf("Len=%d frontier=%d", g.Len(), g.NondominatedCount())
	}
	g.AddLink(a, b)
	g.AddLink(a, c)
	if g.NondominatedCount() != 1 {
		t.Errorf("frontier = %d, want 1", g.NondominatedCount())
	}
	if !g.Dominated(b) || g.Dominated(a) {
		t.Error("Dominated wrong")
	}
	if g.LinkCount() != 2 {
		t.Errorf("LinkCount = %d", g.LinkCount())
	}
	// Removing a frees b and c.
	g.Remove(a)
	if g.Len() != 2 || g.NondominatedCount() != 2 {
		t.Errorf("after Remove: Len=%d frontier=%d", g.Len(), g.NondominatedCount())
	}
	if g.Has(a) {
		t.Error("removed plan still present")
	}
}

func TestRemoveLinkPromotes(t *testing.T) {
	g := New()
	a, b := plan(1), plan(2)
	g.Add(a)
	g.Add(b)
	l := g.AddLink(a, b)
	if g.NondominatedCount() != 1 {
		t.Fatal("link did not dominate")
	}
	g.RemoveLink(l)
	if g.NondominatedCount() != 2 {
		t.Error("RemoveLink did not promote target")
	}
}

func TestUtilityLifecycle(t *testing.T) {
	g := New()
	a := plan(1)
	g.Add(a)
	if _, ok := g.Utility(a); ok {
		t.Error("fresh plan has utility")
	}
	g.SetUtility(a, interval.New(1, 2))
	if u, ok := g.Utility(a); !ok || u != interval.New(1, 2) {
		t.Errorf("Utility = %v, %v", u, ok)
	}
	g.Invalidate(a)
	if _, ok := g.Utility(a); ok {
		t.Error("invalidated plan kept utility")
	}
}

func TestDuplicateAddPanics(t *testing.T) {
	g := New()
	a := plan(1)
	g.Add(a)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.Add(a)
}

func TestSelfLinkPanics(t *testing.T) {
	g := New()
	a := plan(1)
	g.Add(a)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.AddLink(a, a)
}

func TestDuplicateLinkPanics(t *testing.T) {
	g := New()
	a, b := plan(1), plan(2)
	g.Add(a)
	g.Add(b)
	g.AddLink(a, b)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.AddLink(a, b)
}

func TestClearLinks(t *testing.T) {
	g := New()
	a, b := plan(1), plan(2)
	g.Add(a)
	g.Add(b)
	g.AddLink(a, b)
	g.ClearLinks()
	if g.LinkCount() != 0 || g.NondominatedCount() != 2 {
		t.Error("ClearLinks incomplete")
	}
}

func TestLinksEnumeration(t *testing.T) {
	g := New()
	a, b, c := plan(1), plan(2), plan(3)
	g.Add(a)
	g.Add(b)
	g.Add(c)
	g.AddLink(a, b)
	g.AddLink(b, c) // b is dominated later but link persists
	links := g.Links()
	if len(links) != 2 {
		t.Fatalf("Links = %d", len(links))
	}
	seen := map[string]bool{}
	for _, l := range links {
		seen[l.From.Key()+">"+l.To.Key()] = true
	}
	if !seen["1>2"] || !seen["2>3"] {
		t.Errorf("links = %v", seen)
	}
}
