package containment

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"qporder/internal/execsim"
	"qporder/internal/schema"
)

func q(src string) *schema.Query { return schema.MustParseQuery(src) }

func TestKnownContainments(t *testing.T) {
	cases := []struct {
		q1, q2 string
		want   bool
	}{
		// More conditions ⊆ fewer conditions.
		{"P(A) :- play-in(A, M), american(M)", "Q(A) :- play-in(A, M)", true},
		{"P(A) :- play-in(A, M)", "Q(A) :- play-in(A, M), american(M)", false},
		// Identical up to renaming: both directions.
		{"P(X, Y) :- edge(X, Y)", "Q(U, V) :- edge(U, V)", true},
		// Constant specializes variable.
		{"P(M) :- play-in(ford, M)", "Q(M) :- play-in(A, M)", true},
		{"P(M) :- play-in(A, M)", "Q(M) :- play-in(ford, M)", false},
		// Existential projection cannot enforce a constant.
		{"P(A) :- play-in(A, M)", "Q(A) :- play-in(A, starwars)", false},
		// Transitive-ish pattern: path of length 2 with shared var.
		{"P(X) :- edge(X, X)", "Q(X) :- edge(X, Y), edge(Y, X)", true},
		{"P(X) :- edge(X, Y), edge(Y, X)", "Q(X) :- edge(X, X)", false},
		// Head arity mismatch.
		{"P(X, Y) :- edge(X, Y)", "Q(X) :- edge(X, Y)", false},
		// Redundant atom: equivalent queries.
		{"P(X, Y) :- edge(X, Y), edge(X, Y)", "Q(X, Y) :- edge(X, Y)", true},
		{"P(X, Y) :- edge(X, Y)", "Q(X, Y) :- edge(X, Y), edge(X, Y)", true},
	}
	for _, c := range cases {
		if got := Contains(q(c.q1), q(c.q2)); got != c.want {
			t.Errorf("Contains(%s, %s) = %v, want %v", c.q1, c.q2, got, c.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	a := q("P(X, Y) :- edge(X, Y), edge(X, Y)")
	b := q("Q(U, V) :- edge(U, V)")
	if !Equivalent(a, b) {
		t.Error("redundant-atom query should be equivalent to its core")
	}
	c := q("Q(U, V) :- edge(V, U)")
	if Equivalent(a, c) {
		t.Error("reversed edge should not be equivalent")
	}
}

// randomCQ builds a random conjunctive query over binary relations
// r0..r2 with variables X0..X3 and constants c0..c2.
func randomCQ(rng *rand.Rand) *schema.Query {
	term := func() schema.Term {
		if rng.Intn(4) == 0 {
			return schema.Const(fmt.Sprintf("c%d", rng.Intn(3)))
		}
		return schema.Var(fmt.Sprintf("X%d", rng.Intn(4)))
	}
	n := 1 + rng.Intn(3)
	body := make([]schema.Atom, n)
	for i := range body {
		body[i] = schema.NewAtom(fmt.Sprintf("r%d", rng.Intn(3)), term(), term())
	}
	// Head: one variable from the body (guaranteeing safety), or fall back
	// to a constant head if the body happens to be ground.
	var vars []schema.Term
	for _, a := range body {
		vars = a.Vars(vars)
	}
	var head []schema.Term
	if len(vars) > 0 {
		head = []schema.Term{vars[rng.Intn(len(vars))]}
	} else {
		head = []schema.Term{schema.Const("c0")}
	}
	return &schema.Query{Name: "Q", Head: head, Body: body}
}

// TestContainmentSoundnessOnRandomDatabases is the semantic property: if
// Contains(q1, q2) then on every database the answers of q1 are a subset
// of q2's. We check on random databases; any counterexample disproves the
// homomorphism test.
func TestContainmentSoundnessOnRandomDatabases(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q1, q2 := randomCQ(rng), randomCQ(rng)
		if !Contains(q1, q2) {
			return true // nothing claimed
		}
		db := execsim.GenerateWorld(execsim.WorldConfig{
			Relations: []execsim.RelationSpec{
				{Name: "r0", Arity: 2}, {Name: "r1", Arity: 2}, {Name: "r2", Arity: 2},
			},
			TuplesPerRelation: 6,
			DomainSize:        3,
			Seed:              seed,
		})
		a1 := execsim.Eval(q1, db)
		a2 := execsim.NewAnswerSet()
		a2.Add(execsim.Eval(q2, db))
		for _, a := range a1 {
			// Compare on head args only (names differ).
			probe := schema.Atom{Pred: "Q", Args: a.Args}
			if !a2.Contains(probe) {
				t.Logf("q1=%s q2=%s answer %v missing", q1, q2, a)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestContainmentCompletenessOnCanonicalDB: if q1 ⊄ q2 by the
// homomorphism test, the canonical (frozen) database of q1 must witness
// an answer of q1 not in q2 — the classic Chandra-Merlin argument run in
// reverse as an executable check.
func TestContainmentCompletenessOnCanonicalDB(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q1, q2 := randomCQ(rng), randomCQ(rng)
		if Contains(q1, q2) {
			return true
		}
		// Freeze q1: variables become fresh constants.
		frozen := make(schema.Subst)
		for _, v := range q1.Vars() {
			frozen[v] = schema.Const("frz_" + v.Name)
		}
		db := make(execsim.DB)
		for _, a := range q1.Body {
			if err := db.AddAtom(frozen.ApplyAtom(a)); err != nil {
				t.Fatal(err)
			}
		}
		// The frozen head is an answer of q1 on db; q2 must miss it.
		want := frozen.ApplyAtom(q1.HeadAtom())
		a2 := execsim.NewAnswerSet()
		a2.Add(execsim.Eval(q2, db))
		if a2.Contains(schema.Atom{Pred: "Q", Args: want.Args}) {
			t.Logf("q1=%s q2=%s: canonical answer found despite non-containment", q1, q2)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
