// Package containment decides conjunctive-query containment via
// containment mappings (Chandra & Merlin). The bucket algorithm uses it as
// the soundness test: a candidate plan is sound iff its expansion is
// contained in the user query.
//
// Q1 ⊆ Q2 holds iff there is a homomorphism h from the terms of Q2 to the
// terms of Q1 such that h maps Q2's head to Q1's head and every body atom
// of Q2 to some body atom of Q1. Constants must map to themselves.
package containment

import "qporder/internal/schema"

// Contains reports whether q1 ⊆ q2, i.e. every answer of q1 (on every
// database) is an answer of q2. Head arities must match; mismatched heads
// are simply not contained.
func Contains(q1, q2 *schema.Query) bool {
	if len(q1.Head) != len(q2.Head) {
		return false
	}
	// Rename apart so variable names never collide: the mapping's domain is
	// q2's variables, its range is q1's terms.
	q2 = q2.Rename("_c2")
	q1 = q1.Rename("_c1")

	// Seed the homomorphism with the head constraint h(head2[i]) = head1[i].
	h := make(schema.Subst)
	for i := range q2.Head {
		t2 := q2.Head[i]
		t1 := q1.Head[i]
		if t2.Const {
			if t2 != t1 {
				return false
			}
			continue
		}
		if img, ok := h[t2]; ok {
			if img != t1 {
				return false
			}
			continue
		}
		h[t2] = t1
	}
	return mapAtoms(q2.Body, q1.Body, h)
}

// Equivalent reports whether q1 and q2 are equivalent (mutual containment).
func Equivalent(q1, q2 *schema.Query) bool {
	return Contains(q1, q2) && Contains(q2, q1)
}

// mapAtoms extends h so every atom in src maps into some atom of dst.
// Backtracking search over candidate target atoms, pruned by predicate.
func mapAtoms(src, dst []schema.Atom, h schema.Subst) bool {
	if len(src) == 0 {
		return true
	}
	a := src[0]
	for _, b := range dst {
		if ext, ok := mapAtom(a, b, h); ok {
			if mapAtoms(src[1:], dst, ext) {
				return true
			}
		}
	}
	return false
}

// mapAtom extends h so h(a) == b, where the range terms of b are treated
// as rigid (they are q1's terms; no bindings are created for them).
func mapAtom(a, b schema.Atom, h schema.Subst) (schema.Subst, bool) {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return nil, false
	}
	ext := h.Clone()
	for i, ta := range a.Args {
		tb := b.Args[i]
		if ta.Const {
			if ta != tb {
				return nil, false
			}
			continue
		}
		if img, ok := ext[ta]; ok {
			if img != tb {
				return nil, false
			}
			continue
		}
		ext[ta] = tb
	}
	return ext, true
}
