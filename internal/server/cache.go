package server

import (
	"container/list"
	"sync"

	"qporder/internal/mediator"
	"qporder/internal/obs"
)

// sessionCache is the canonicalized-query keyed LRU of mediator.Prepared
// values — the expensive reformulation prefix shared across identical
// queries. Entries are built at most once per key via a per-entry
// sync.Once (concurrent requests for the same fresh key block on the
// first builder instead of duplicating the work), and a Prepared value is
// immutable, so handing one entry to many in-flight sessions is safe.
type sessionCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits, misses, evictions *obs.Counter
	size                    *obs.Gauge
}

type cacheEntry struct {
	key  string
	once sync.Once
	prep *mediator.Prepared
	err  error
}

func newSessionCache(max int, reg *obs.Registry) *sessionCache {
	return &sessionCache{
		max:       max,
		ll:        list.New(),
		byKey:     make(map[string]*list.Element),
		hits:      reg.Counter("server.cache_hits"),
		misses:    reg.Counter("server.cache_misses"),
		evictions: reg.Counter("server.cache_evictions"),
		size:      reg.Gauge("server.cache_sessions"),
	}
}

// get returns the cached Prepared for key, building it with build on
// first use. The second result reports whether the entry already existed
// (a session-cache hit).
func (c *sessionCache) get(key string, build func() (*mediator.Prepared, error)) (*mediator.Prepared, bool, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.hits.Inc()
		c.mu.Unlock()
		e.once.Do(func() { e.prep, e.err = build() }) // waits if still building
		return e.prep, true, e.err
	}
	e := &cacheEntry{key: key}
	c.byKey[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.misses.Inc()
	c.size.Set(float64(c.ll.Len()))
	c.mu.Unlock()

	e.once.Do(func() { e.prep, e.err = build() })
	if e.err != nil {
		// Unplannable queries are not worth a cache slot; drop the entry
		// (unless the key was already evicted or replaced).
		c.mu.Lock()
		if el, ok := c.byKey[key]; ok && el.Value.(*cacheEntry) == e {
			c.ll.Remove(el)
			delete(c.byKey, key)
			c.size.Set(float64(c.ll.Len()))
		}
		c.mu.Unlock()
	}
	return e.prep, false, e.err
}

// len returns the number of cached sessions.
func (c *sessionCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
