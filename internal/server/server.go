// Package server is the stdlib-only serving layer over the mediator: a
// long-lived daemon that accepts conjunctive queries over HTTP, streams
// ordered best-first results as NDJSON, caches the reformulation prefix
// across requests keyed by the query's canonical form, and applies
// admission control so a burst of clients degrades to queueing and
// clean 503s instead of unbounded goroutines.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qporder/internal/costmodel"
	"qporder/internal/execsim"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/mediator"
	"qporder/internal/obs"
	"qporder/internal/schema"
)

// Config parameterizes a Server. Zero fields take the documented
// defaults.
type Config struct {
	// Catalog registers the sources the daemon mediates over. Required.
	Catalog *lav.Catalog
	// Seed drives the simulated world exactly as qporder -execute does:
	// world at Seed, source contents at Seed+1, access failures at
	// Seed+2, so a served query and a qporder run agree. Default 1.
	Seed int64
	// N is the selectivity denominator of the cost measures (default
	// 50000, the qporder default).
	N float64
	// MaxInflight bounds concurrently executing sessions (default 8).
	MaxInflight int
	// MaxQueue bounds sessions waiting for an execution slot; beyond it
	// requests are rejected with 503 overloaded (default 32).
	MaxQueue int
	// CacheSessions bounds the reformulation session cache (default 128).
	CacheSessions int
	// DefaultK and MaxK bound the per-request plan budget (defaults 10
	// and 1000).
	DefaultK int
	MaxK     int
	// DefaultDeadline and MaxDeadline bound the per-request deadline
	// (defaults 10s and 2m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxParallelism caps the per-request mediator pipeline width
	// (default 8).
	MaxParallelism int
	// Reg receives the server's counters and gauges alongside the
	// mediator's; a fresh registry is created when nil.
	Reg *obs.Registry
	// FlightEntries sizes the flight recorder's recent-request ring
	// (default 64); the slowest and errored classes each keep a quarter
	// of it. The recorder is always on — every request leaves a trace
	// inspectable at /debug/requests.
	FlightEntries int
	// TraceOut, when non-nil, receives one JSON line per finished
	// request trace (the NDJSON export cmd/qptrace ingests). Writes are
	// serialized by the server.
	TraceOut io.Writer
	// CalibOut, when non-nil, receives one calibration-snapshot JSON line
	// per finished query request (cumulative estimator-calibration state,
	// correlated by trace ID). It may be the same writer as TraceOut:
	// qptrace ingests the mixed stream. Writes are serialized with
	// TraceOut's.
	CalibOut io.Writer
	// Logger, when non-nil, receives one structured log line per
	// request, correlated by trace ID. Nil disables request logging.
	Logger *slog.Logger
	// SLO, when non-nil, observes every session's TTFA/full latency
	// against its objectives (served at GET /debug/slo, burn-rate gauges
	// on the registry) and switches TraceOut to tail-based sampling:
	// only sessions that errored, violated an objective, or ran while
	// the error budget was burning export their trace; the rest count in
	// slo.sampled_dropped. Nil keeps the export-everything behavior.
	SLO *obs.SLOMonitor
}

// Server mediates queries over a fixed catalog and simulated world.
type Server struct {
	cfg   Config
	store execsim.DB
	reg   *obs.Registry
	cache *sessionCache
	mux   *http.ServeMux

	sem      chan struct{}
	waiting  atomic.Int64
	draining atomic.Bool

	flight  *obs.FlightRecorder
	calib   *obs.Calibration
	traceMu sync.Mutex // serializes TraceOut and CalibOut lines

	inflight   *obs.Gauge
	queueDepth *obs.Gauge
	requests   *obs.Counter
	rejected   *obs.Counter
	badRequest *obs.Counter
}

// New builds the server: it generates the simulated world once (shared,
// read-only) and wires the HTTP surface.
func New(cfg Config) (*Server, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("server: Catalog is required")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.N == 0 {
		cfg.N = 50000
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 8
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 32
	}
	if cfg.CacheSessions <= 0 {
		cfg.CacheSessions = 128
	}
	if cfg.DefaultK <= 0 {
		cfg.DefaultK = 10
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 1000
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 10 * time.Second
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 2 * time.Minute
	}
	if cfg.MaxParallelism <= 0 {
		cfg.MaxParallelism = 8
	}
	if cfg.Reg == nil {
		cfg.Reg = obs.NewRegistry()
	}
	store, err := buildStore(cfg.Catalog, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		store:      store,
		reg:        cfg.Reg,
		cache:      newSessionCache(cfg.CacheSessions, cfg.Reg),
		sem:        make(chan struct{}, cfg.MaxInflight),
		flight:     obs.NewFlightRecorder(cfg.FlightEntries, cfg.FlightEntries/4, cfg.FlightEntries/4),
		calib:      obs.NewCalibration(obs.CalibConfig{}),
		inflight:   cfg.Reg.Gauge("server.inflight"),
		queueDepth: cfg.Reg.Gauge("server.queue_depth"),
		requests:   cfg.Reg.Counter("server.requests"),
		rejected:   cfg.Reg.Counter("server.rejected"),
		badRequest: cfg.Reg.Counter("server.bad_requests"),
	}
	// The calibration accumulator rides along in every registry surface
	// (text, JSON, OpenMetrics), and the runtime gauges refresh at each
	// scrape.
	s.reg.AttachCalibration(s.calib)
	obs.RegisterRuntimeMetrics(s.reg)
	cfg.SLO.Bind(s.reg) // no-op when no objectives are configured
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/requests", s.handleRequests)
	mux.HandleFunc("GET /debug/calibration", s.handleCalibration)
	mux.HandleFunc("GET /debug/slo", s.handleSLO)
	s.mux = mux
	return s, nil
}

// buildStore generates the world over every relation the source
// descriptions mention and derives incomplete source contents, with the
// same shape and seeds as qporder's -execute mode.
func buildStore(cat *lav.Catalog, seed int64) (execsim.DB, error) {
	arity := make(map[string]int)
	for _, src := range cat.Sources() {
		if src.Def == nil {
			continue
		}
		for _, a := range src.Def.Body {
			if prev, ok := arity[a.Pred]; ok && prev != a.Arity() {
				return nil, fmt.Errorf("server: relation %s used with arities %d and %d", a.Pred, prev, a.Arity())
			}
			arity[a.Pred] = a.Arity()
		}
	}
	rels := make([]execsim.RelationSpec, 0, len(arity))
	for name, ar := range arity {
		rels = append(rels, execsim.RelationSpec{Name: name, Arity: ar})
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].Name < rels[j].Name })
	world := execsim.GenerateWorld(execsim.WorldConfig{
		Relations:         rels,
		TuplesPerRelation: 100,
		DomainSize:        15,
		Seed:              seed,
	})
	return execsim.PopulateSources(cat, world, 0.8, seed+1), nil
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the server's metrics registry (publishable with
// expvar.Publish, since *obs.Registry satisfies expvar.Var).
func (s *Server) Registry() *obs.Registry { return s.reg }

// SetDraining flips the drain flag: while set, /healthz reports 503 and
// new queries are rejected with 503 draining, but admitted sessions run
// to completion. The daemon sets it on SIGTERM before http.Server.
// Shutdown waits for in-flight streams.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// queryRequest is the POST /v1/query body.
type queryRequest struct {
	// Query is the conjunctive query, in the same syntax qporder's -q
	// flag accepts. Required.
	Query string `json:"query"`
	// K bounds the number of sound plans executed (default DefaultK).
	K int `json:"k"`
	// DeadlineMS bounds the session wall-clock (default DefaultDeadline,
	// clamped to MaxDeadline).
	DeadlineMS int64 `json:"deadline_ms"`
	// Algorithm, Measure, and Reformulator name the ordering algorithm
	// (default streamer, matching qporder), the utility measure (default
	// chain), and the reformulation method (default buckets).
	Algorithm    string `json:"algorithm"`
	Measure      string `json:"measure"`
	Reformulator string `json:"reformulator"`
	// Parallelism > 1 enables the mediator's pipelined mode for this
	// session (capped at MaxParallelism).
	Parallelism int `json:"parallelism"`
	// Explain requests a final explain event carrying the per-plan
	// ordering provenance (utility at selection, dominance tests won and
	// lost, refinements, splits, evaluations).
	Explain bool `json:"explain"`
	// Shard restricts the session to one slice of the plan space — the
	// scatter-gather field a fleet router stamps on its fan-out
	// sub-requests. It requires the pi algorithm and a measure with
	// prefix-independent utilities; see mediator.Config.ShardCount.
	Shard *ShardSpec `json:"shard,omitempty"`
	// Scatter is a router-side field: a fleet router fans the session
	// out across its shards and gathers the streams. A daemon receiving
	// it rejects the request — clients wanting scatter must talk to
	// qprouter, not to a shard directly.
	Scatter bool `json:"scatter,omitempty"`
	// Spans requests the trailing spans event: after done (or a
	// mid-stream error) the server emits its finished span tree as one
	// more NDJSON line. The fleet router sets it on sub-requests to
	// stitch shard spans into the fleet-wide trace.
	Spans bool `json:"spans,omitempty"`
}

// ShardSpec names one slice of a scatter-gathered plan space: the plans
// whose deterministic enumeration position ≡ Index mod Count.
type ShardSpec struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// session is a fully validated request, ready to admit and run.
type session struct {
	query    *schema.Query
	k        int
	deadline time.Duration
	algo     mediator.Algorithm
	algoName string
	measName string
	measure  func(*lav.Catalog) measure.Measure
	reform   mediator.Reformulator
	par      int
	explain  bool
	spans    bool
	shard    *ShardSpec
}

// badRequestError carries a structured 4xx.
type badRequestError struct {
	status int
	code   string
	msg    string
}

func (e *badRequestError) Error() string { return e.msg }

func bad(code, format string, args ...interface{}) *badRequestError {
	return &badRequestError{status: http.StatusBadRequest, code: code, msg: fmt.Sprintf(format, args...)}
}

// parseRequest validates the body into a runnable session. Every
// rejection is a structured 4xx, never a 500: the client sent something,
// the server names exactly what was wrong with it.
func (s *Server) parseRequest(r *http.Request) (*session, *badRequestError) {
	var req queryRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, bad(CodeBadJSON, "invalid request body: %v", err)
	}
	if strings.TrimSpace(req.Query) == "" {
		return nil, bad(CodeMissingQuery, "request has no query")
	}
	q, err := schema.ParseQuery(req.Query)
	if err != nil {
		return nil, bad(CodeParseError, "cannot parse query: %v", err)
	}
	sess := &session{query: q, k: s.cfg.DefaultK, deadline: s.cfg.DefaultDeadline}
	if req.K < 0 || req.K > s.cfg.MaxK {
		return nil, bad(CodeInvalidK, "k must be in [0, %d], got %d", s.cfg.MaxK, req.K)
	}
	if req.K > 0 {
		sess.k = req.K
	}
	if req.DeadlineMS < 0 {
		return nil, bad(CodeInvalidDeadline, "deadline_ms must be >= 0, got %d", req.DeadlineMS)
	}
	if req.DeadlineMS > 0 {
		sess.deadline = time.Duration(req.DeadlineMS) * time.Millisecond
		if sess.deadline > s.cfg.MaxDeadline {
			return nil, bad(CodeInvalidDeadline, "deadline_ms exceeds the maximum %d", s.cfg.MaxDeadline.Milliseconds())
		}
	}
	if req.Parallelism < 0 || req.Parallelism > s.cfg.MaxParallelism {
		return nil, bad(CodeInvalidParallelism, "parallelism must be in [0, %d], got %d", s.cfg.MaxParallelism, req.Parallelism)
	}
	sess.par = req.Parallelism
	sess.explain = req.Explain
	sess.spans = req.Spans

	sess.measName = req.Measure
	if sess.measName == "" {
		sess.measName = "chain"
	}
	sess.measure, err = measureFactory(sess.measName, s.cfg.N)
	if err != nil {
		return nil, bad(CodeUnknownMeasure, "%v", err)
	}
	sess.algoName = req.Algorithm
	if sess.algoName == "" {
		sess.algoName = "streamer"
	}
	sess.algo, err = algorithmByName(sess.algoName)
	if err != nil {
		return nil, bad(CodeUnknownAlgorithm, "%v", err)
	}
	sess.reform, err = reformulatorByName(req.Reformulator)
	if err != nil {
		return nil, bad(CodeUnknownReformulator, "%v", err)
	}
	if req.Scatter {
		return nil, bad(CodeScatterProxyOnly, "scatter is a router-side field; send the request to qprouter")
	}
	if req.Shard != nil {
		if req.Shard.Count < 1 || req.Shard.Index < 0 || req.Shard.Index >= req.Shard.Count {
			return nil, bad(CodeInvalidShard, "shard index must be in [0, count), got %d of %d", req.Shard.Index, req.Shard.Count)
		}
		if sess.algo != mediator.PI {
			return nil, bad(CodeInvalidShard, "plan-space sharding requires algorithm pi, got %q", sess.algoName)
		}
		sess.shard = req.Shard
	}
	return sess, nil
}

// measureFactory maps a measure name to a constructor over the derived
// entry catalog; the names match qporder's -measure flag.
func measureFactory(name string, n float64) (func(*lav.Catalog) measure.Measure, error) {
	switch name {
	case "linear":
		return func(e *lav.Catalog) measure.Measure { return costmodel.NewLinearCost(e) }, nil
	case "chain":
		return func(e *lav.Catalog) measure.Measure {
			return costmodel.NewChainCost(e, costmodel.Params{N: n})
		}, nil
	case "chain-fail":
		return func(e *lav.Catalog) measure.Measure {
			return costmodel.NewChainCost(e, costmodel.Params{N: n, Failure: true})
		}, nil
	case "chain-fail-caching":
		return func(e *lav.Catalog) measure.Measure {
			return costmodel.NewChainCost(e, costmodel.Params{N: n, Failure: true, Caching: true})
		}, nil
	case "monetary":
		return func(e *lav.Catalog) measure.Measure {
			return costmodel.NewMonetaryPerTuple(e, costmodel.Params{N: n})
		}, nil
	case "monetary-caching":
		return func(e *lav.Catalog) measure.Measure {
			return costmodel.NewMonetaryPerTuple(e, costmodel.Params{N: n, Caching: true})
		}, nil
	default:
		return nil, fmt.Errorf("unknown measure %q", name)
	}
}

// algorithmByName maps the qporder -algo names onto mediator algorithms.
func algorithmByName(name string) (mediator.Algorithm, error) {
	switch name {
	case "auto":
		return mediator.Auto, nil
	case "greedy":
		return mediator.Greedy, nil
	case "idrips":
		return mediator.IDrips, nil
	case "streamer":
		return mediator.Streamer, nil
	case "pi":
		return mediator.PI, nil
	case "exhaustive":
		return mediator.Exhaustive, nil
	default:
		return "", fmt.Errorf("unknown algorithm %q", name)
	}
}

// reformulatorByName maps request names onto mediator reformulators.
func reformulatorByName(name string) (mediator.Reformulator, error) {
	switch name {
	case "", "buckets":
		return mediator.Buckets, nil
	case "inverse":
		return mediator.InverseRules, nil
	case "minicon":
		return mediator.MiniCon, nil
	default:
		return "", fmt.Errorf("unknown reformulator %q", name)
	}
}

// errRejected reports an admission rejection (503 + code).
var errClientGone = errors.New("client gone")

// admit blocks until an execution slot frees (or the client leaves) and
// returns its release function. A full queue or an active drain rejects
// immediately.
func (s *Server) admit(r *http.Request) (release func(), rejectCode string, err error) {
	if s.draining.Load() {
		return nil, CodeDraining, nil
	}
	acquired := false
	select {
	case s.sem <- struct{}{}:
		acquired = true
	default:
	}
	if !acquired {
		w := s.waiting.Add(1)
		s.queueDepth.Set(float64(w))
		if w > int64(s.cfg.MaxQueue) {
			s.queueDepth.Set(float64(s.waiting.Add(-1)))
			return nil, CodeOverloaded, nil
		}
		select {
		case s.sem <- struct{}{}:
			s.queueDepth.Set(float64(s.waiting.Add(-1)))
		case <-r.Context().Done():
			s.queueDepth.Set(float64(s.waiting.Add(-1)))
			return nil, "", errClientGone
		}
	}
	s.inflight.Set(float64(len(s.sem)))
	return func() {
		<-s.sem
		s.inflight.Set(float64(len(s.sem)))
	}, "", nil
}

// writeError writes a structured non-2xx JSON body: {"error":{code,message}}.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Err ErrorBody `json:"error"`
	}{ErrorBody{Code: code, Message: msg}})
}

// handleQuery validates, admits, and streams one query session. Every
// request runs under a request trace: an incoming W3C traceparent header
// continues the caller's trace (a malformed one silently starts a fresh
// trace — tracing must never fail a request), the response carries the
// server's own traceparent, and the finished trace lands in the flight
// recorder, the structured log, and the NDJSON export.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	tr := obs.StartRequestTrace("POST /v1/query", r.Header.Get("traceparent"))
	w.Header().Set("Traceparent", tr.Traceparent())
	reqStart := time.Now()
	var ttfaNS atomic.Int64 // offset of the first streamed answer; 0 until one streams
	defer func() { s.finishTrace(tr, time.Duration(ttfaNS.Load())) }()
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	parseSpan := tr.StartSpan("server/parse")
	sess, berr := s.parseRequest(r)
	parseSpan.End()
	if berr != nil {
		s.badRequest.Inc()
		tr.SetAttr("code", berr.code)
		tr.SetError(berr.msg)
		writeError(w, berr.status, berr.code, berr.msg)
		return
	}
	tr.SetAttr("query", sess.query.String())
	tr.SetAttr("algorithm", sess.algoName)
	tr.SetAttr("measure", sess.measName)
	admitSpan := tr.StartSpan("server/admit")
	release, code, err := s.admit(r)
	admitSpan.End()
	if err != nil {
		tr.SetError("client disconnected while queued")
		return // client disconnected while queued; nothing to say to it
	}
	if code != "" {
		s.rejected.Inc()
		tr.SetAttr("code", code)
		tr.SetError("server cannot accept new sessions")
		writeError(w, http.StatusServiceUnavailable, code, "server cannot accept new sessions")
		return
	}
	defer release()

	// The reformulation prefix is shared across requests whose queries
	// are identical up to variable renaming and atom order.
	key := sess.query.CanonicalKey() + "|" + string(sess.reform)
	prepSpan := tr.StartSpan("server/prepare")
	prep, hit, err := s.cache.get(key, func() (*mediator.Prepared, error) {
		return mediator.Prepare(sess.query, s.cfg.Catalog, sess.reform)
	})
	prepSpan.End()
	if err != nil {
		s.badRequest.Inc()
		tr.SetAttr("code", CodeUnplannable)
		tr.SetError(err.Error())
		writeError(w, http.StatusUnprocessableEntity, CodeUnplannable, err.Error())
		return
	}

	start := time.Now()
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var streamErr error
	emit := func(e Event) {
		if streamErr != nil {
			return
		}
		if streamErr = enc.Encode(e); streamErr == nil && flusher != nil {
			flusher.Flush()
		}
	}

	mcfg := mediator.Config{
		Prepared:    prep,
		Measure:     sess.measure,
		Algorithm:   sess.algo,
		Parallelism: sess.par,
		Obs:         s.reg,
		Calib:       s.calib,
		OnPlan: func(e mediator.PlanEvent) {
			emit(Event{
				Event:        "plan",
				Index:        e.Index,
				Utility:      e.Utility,
				Plan:         e.Plan.String(),
				PlanKey:      e.Key,
				NewAnswers:   len(e.NewAnswers),
				TotalAnswers: e.TotalAnswers,
			})
			if len(e.NewAnswers) > 0 {
				out := make([]string, len(e.NewAnswers))
				for i, a := range e.NewAnswers {
					out[i] = a.String()
				}
				emit(Event{Event: "answers", Index: e.Index, Answers: out})
				ttfaNS.CompareAndSwap(0, int64(time.Since(reqStart)))
			}
		},
	}
	if sess.shard != nil {
		mcfg.ShardIndex = sess.shard.Index
		mcfg.ShardCount = sess.shard.Count
	}
	buildSpan := tr.StartSpan("server/build")
	sys, err := mediator.New(mcfg)
	buildSpan.End()
	if err != nil {
		s.badRequest.Inc()
		tr.SetAttr("code", CodeInapplicable)
		tr.SetError(err.Error())
		writeError(w, http.StatusUnprocessableEntity, CodeInapplicable, err.Error())
		return
	}

	// From here the response is a stream; failures become error events.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	cache := "miss"
	if hit {
		cache = "hit"
	}
	tr.SetAttr("cache", cache)
	emit(Event{
		Event:     "session",
		TraceID:   tr.TraceID().String(),
		Cache:     cache,
		Algorithm: sess.algoName,
		Measure:   sess.measName,
		K:         sess.k,
		PlanSpace: prep.PlanSpaceSize(),
	})

	// A fresh engine per session over the shared read-only store keeps
	// per-request cost accounting isolated while every session sees the
	// same simulated world (failure seed matches qporder -execute).
	eng := execsim.NewEngine(s.cfg.Catalog, s.store)
	eng.EnableFailures(s.cfg.Seed + 2)

	ctx, cancel := context.WithTimeout(r.Context(), sess.deadline)
	defer cancel()
	ctx = obs.WithTrace(ctx, tr)
	runSpan := tr.StartSpan("server/run")
	res, err := sys.RunContext(ctx, eng, mediator.Budget{MaxPlans: sess.k})
	runSpan.End()
	// The spans trailer rides after done (or after a mid-stream error):
	// everything past the last data line is observability metadata, so
	// plain clients' event dispatch skips it while a stitching router
	// ingests it.
	emitSpans := func() {
		if !sess.spans {
			return
		}
		snap := tr.Snapshot()
		emit(Event{Event: "spans", TraceID: tr.TraceID().String(), Trace: &snap})
	}
	if err != nil {
		tr.SetAttr("code", CodeInternal)
		tr.SetError(err.Error())
		emit(Event{Event: "error", Err: &ErrorBody{Code: CodeInternal, Message: err.Error()}})
		emitSpans()
		return
	}
	tr.SetAttr("stopped", string(res.Stopped))
	if sess.explain {
		emit(Event{Event: "explain", TraceID: tr.TraceID().String(), Explain: tr.Plans()})
	}
	emit(Event{
		Event:        "done",
		TraceID:      tr.TraceID().String(),
		Stopped:      string(res.Stopped),
		Plans:        len(res.Executed),
		TotalAnswers: res.Answers.Len(),
		Cost:         res.Cost,
		Evals:        res.Evals,
		ElapsedMS:    float64(time.Since(start)) / float64(time.Millisecond),
	})
	emitSpans()
}

// finishTrace seals the request trace, feeds the session's latency to
// the SLO monitor, and fans the trace out to the retention sinks: the
// flight recorder (always on), the NDJSON export (tail-sampled when an
// SLO monitor is configured), and the structured log.
func (s *Server) finishTrace(tr *obs.Trace, ttfa time.Duration) {
	snap := tr.Finish()
	s.flight.Record(snap)
	full := time.Duration(snap.DurNS)
	errored := snap.Status == "error"
	s.cfg.SLO.Observe(ttfa, full, errored)
	if s.cfg.TraceOut != nil {
		if s.cfg.SLO.ShouldSample(ttfa, full, errored) {
			s.cfg.SLO.MarkExport(true)
			if b, err := json.Marshal(snap); err == nil {
				s.traceMu.Lock()
				_, _ = s.cfg.TraceOut.Write(append(b, '\n'))
				s.traceMu.Unlock()
			}
		} else {
			s.cfg.SLO.MarkExport(false)
		}
	}
	if s.cfg.CalibOut != nil {
		// One cumulative calibration snapshot per request that produced
		// observations, correlated to the request by trace ID. Requests
		// rejected before execution add nothing, so skip while empty.
		if cs := s.calib.Snapshot(); !cs.Empty() {
			rec := obs.CalibrationRecord{TraceID: snap.TraceID.String(), Calibration: cs}
			if b, err := json.Marshal(rec); err == nil {
				s.traceMu.Lock()
				_, _ = s.cfg.CalibOut.Write(append(b, '\n'))
				s.traceMu.Unlock()
			}
		}
	}
	if s.cfg.Logger != nil {
		lvl := slog.LevelInfo
		attrs := []any{
			"trace_id", snap.TraceID.String(),
			"status", snap.Status,
			"dur_ms", float64(snap.DurNS) / 1e6,
			"spans", len(snap.Spans),
			"plans", len(snap.Plans),
		}
		if q, ok := snap.Attrs["query"]; ok {
			attrs = append(attrs, "query", q)
		}
		if snap.Error != "" {
			lvl = slog.LevelWarn
			attrs = append(attrs, "error", snap.Error)
		}
		s.cfg.Logger.Log(context.Background(), lvl, "request", attrs...)
	}
}

// handleRequests serves the flight recorder: the retained recent,
// slowest, and errored request traces, as text by default, as JSON with
// ?format=json, or one full trace with ?trace=<id>.
func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	if q := r.URL.Query().Get("trace"); q != "" {
		var id obs.TraceID
		if err := id.UnmarshalText([]byte(q)); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadTraceID, "invalid trace id "+q)
			return
		}
		t, ok := s.flight.Find(id)
		if !ok {
			writeError(w, http.StatusNotFound, CodeTraceNotFound, "trace "+q+" not retained")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t)
		return
	}
	snap := s.flight.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = snap.WriteText(w)
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it while in-flight streams finish.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleMetrics renders the registry: text by default, the JSON snapshot
// with ?format=json, or the standards-compliant scrape exposition with
// ?format=openmetrics (also negotiated via the Accept header, so a
// Prometheus-compatible scraper needs no query parameter).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		format = "openmetrics"
	}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = s.reg.WriteJSON(w)
	case "openmetrics":
		w.Header().Set("Content-Type", obs.OpenMetricsContentType)
		_ = s.reg.WriteOpenMetrics(w)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = s.reg.WriteText(w)
	}
}

// handleSLO serves the SLO monitor's rolling-window state: objectives,
// violation counts, burn rates, and tail-sampling outcomes, as text by
// default or JSON with ?format=json. With no monitor configured it
// reports the disabled state (and {} as JSON).
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = s.cfg.SLO.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.cfg.SLO.WriteText(w)
}

// handleCalibration serves the estimator-calibration state: per-source
// and per-plan q-error summaries, signed bias, and EWMA drift flags, as
// text by default or JSON with ?format=json.
func (s *Server) handleCalibration(w http.ResponseWriter, r *http.Request) {
	cs := s.calib.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cs)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if cs.Empty() {
		fmt.Fprintln(w, "calibration: no observations yet (run a query)")
		return
	}
	_ = cs.WriteText(w)
}
