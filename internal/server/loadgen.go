package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qporder/internal/obs"
	"qporder/internal/schema"
)

// LoadConfig parameterizes a load run against a serving daemon.
type LoadConfig struct {
	// BaseURL of the daemon, e.g. "http://127.0.0.1:8091".
	BaseURL string
	// Queries are cycled through round-robin across requests. Required.
	Queries []string
	// Requests is the total number of sessions to run (default 32).
	Requests int
	// Concurrency is the worker-pool width (default 4).
	Concurrency int
	// K, Measure, Algorithm, Reformulator, DeadlineMS, and Parallelism
	// are forwarded verbatim on every request (zero values let the
	// server apply its defaults).
	K            int
	Measure      string
	Algorithm    string
	Reformulator string
	DeadlineMS   int64
	Parallelism  int
	// QPS > 0 paces request starts at that aggregate rate; 0 runs
	// closed-loop (each worker fires as soon as its previous session
	// finishes).
	QPS float64
	// Scatter asks a qprouter BaseURL to partition the plan space across
	// its fleet and gather the streams; qpserved itself rejects it.
	Scatter bool
	// Shuffle perturbs each request's query — body atoms permuted,
	// variables renamed — without changing its meaning, exercising the
	// canonicalized session cache the way distinct clients would.
	Shuffle bool
	// Seed drives the shuffling (default 1).
	Seed int64
}

// Quantiles summarizes a latency distribution, in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// LoadReportSchemaVersion stamps serialized LoadReports so downstream
// tooling can detect shape changes; bump it when a field changes
// meaning or disappears (additive fields don't need a bump).
const LoadReportSchemaVersion = 1

// LoadReport is the outcome of a load run.
type LoadReport struct {
	// SchemaVersion is LoadReportSchemaVersion at write time.
	SchemaVersion int     `json:"schema_version"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	Plans         int64   `json:"plans"`
	Answers       int64   `json:"answers"`
	DurationMS    float64 `json:"duration_ms"`
	// QPS is the achieved session completion rate.
	QPS float64 `json:"qps"`
	// TTFA is time-to-first-answer: request start to the first answers
	// event. Sessions that produced no answers are excluded.
	TTFA Quantiles `json:"ttfa"`
	// Full is request start to the done event (the full-k latency).
	Full Quantiles `json:"full"`
	// Slowest lists the trace IDs of the slowest sessions (up to 5, by
	// full latency, descending) — the handles to pull out of the
	// daemon's /debug/requests or an exported trace file.
	Slowest []SlowSession `json:"slowest,omitempty"`
	// FirstError carries the first failure's detail for diagnosis.
	FirstError string `json:"first_error,omitempty"`
}

// SlowSession identifies one slow session by its server-assigned trace
// ID.
type SlowSession struct {
	TraceID string  `json:"trace_id"`
	FullMS  float64 `json:"full_ms"`
}

// quantiles computes the summary of a sample set (ms).
func quantiles(samples []float64) Quantiles {
	if len(samples) == 0 {
		return Quantiles{}
	}
	sort.Float64s(samples)
	at := func(q float64) float64 {
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	return Quantiles{P50: at(0.50), P90: at(0.90), P99: at(0.99), Max: samples[len(samples)-1]}
}

// perturb rewrites a query without changing its meaning: body atoms
// shuffled and every variable renamed, so the server only serves it from
// the session cache if its canonicalization works.
func perturb(src string, i int, rng *rand.Rand) string {
	q, err := schema.ParseQuery(src)
	if err != nil {
		return src // let the server report the parse error
	}
	c := q.Rename(fmt.Sprintf("_r%d", i))
	rng.Shuffle(len(c.Body), func(a, b int) { c.Body[a], c.Body[b] = c.Body[b], c.Body[a] })
	return c.String()
}

// sessionResult is one request's outcome.
type sessionResult struct {
	err     error
	plans   int64
	answers int64
	ttfaMS  float64 // <0 when no answers arrived
	fullMS  float64
	traceID string // the server's trace ID for this session
}

// runSession posts one query and consumes its NDJSON stream.
func runSession(ctx context.Context, client *http.Client, cfg LoadConfig, query string) sessionResult {
	body, _ := json.Marshal(queryRequest{
		Query:        query,
		K:            cfg.K,
		DeadlineMS:   cfg.DeadlineMS,
		Algorithm:    cfg.Algorithm,
		Measure:      cfg.Measure,
		Reformulator: cfg.Reformulator,
		Parallelism:  cfg.Parallelism,
		Scatter:      cfg.Scatter,
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return sessionResult{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate a client-side trace context the way an upstream service
	// would; the server continues it, so the session's trace ID is known
	// even if the response headers get lost.
	req.Header.Set("Traceparent", obs.FormatTraceparent(obs.NewTraceID(), obs.NewSpanID()))
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sessionResult{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		detail, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return sessionResult{err: fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(detail))}
	}
	res := sessionResult{ttfaMS: -1}
	if tid, _, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent")); ok {
		res.traceID = tid.String()
	}
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return sessionResult{err: fmt.Errorf("bad stream line: %w", err)}
		}
		switch e.Event {
		case "plan":
			res.plans++
		case "answers":
			res.answers += int64(len(e.Answers))
			if res.ttfaMS < 0 {
				res.ttfaMS = float64(time.Since(start)) / float64(time.Millisecond)
			}
		case "done":
			sawDone = true
			res.fullMS = float64(time.Since(start)) / float64(time.Millisecond)
		case "error":
			return sessionResult{err: fmt.Errorf("stream error %s: %s", e.Err.Code, e.Err.Message)}
		}
	}
	if err := sc.Err(); err != nil {
		return sessionResult{err: err}
	}
	if !sawDone {
		return sessionResult{err: fmt.Errorf("stream ended without a done event")}
	}
	return res
}

// RunLoad replays the configured workload against the daemon and
// summarizes latency and throughput.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.BaseURL == "" || len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("loadgen: BaseURL and Queries are required")
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 32
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}

	// Materialize the request bodies up front so the hot loop only does
	// I/O; perturbation is deterministic in (Seed, request index).
	queries := make([]string, cfg.Requests)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range queries {
		q := cfg.Queries[i%len(cfg.Queries)]
		if cfg.Shuffle {
			q = perturb(q, i, rng)
		}
		queries[i] = q
	}

	client := &http.Client{}
	var (
		mu      sync.Mutex
		results []sessionResult
		idx     atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(idx.Add(1)) - 1
				if i >= cfg.Requests || ctx.Err() != nil {
					return
				}
				if cfg.QPS > 0 {
					// Open-loop pacing: request i is due at i/QPS.
					due := start.Add(time.Duration(float64(i) / cfg.QPS * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							return
						}
					}
				}
				r := runSession(ctx, client, cfg, queries[i])
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{SchemaVersion: LoadReportSchemaVersion, Requests: len(results), DurationMS: float64(elapsed) / float64(time.Millisecond)}
	var ttfa, full []float64
	for _, r := range results {
		if r.err != nil {
			rep.Errors++
			if rep.FirstError == "" {
				rep.FirstError = r.err.Error()
			}
			continue
		}
		rep.Plans += r.plans
		rep.Answers += r.answers
		if r.ttfaMS >= 0 {
			ttfa = append(ttfa, r.ttfaMS)
		}
		full = append(full, r.fullMS)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.QPS = float64(len(results)-rep.Errors) / secs
	}
	rep.TTFA = quantiles(ttfa)
	rep.Full = quantiles(full)
	// Surface the slowest sessions' trace IDs so a load run ends with
	// actionable handles into the daemon's flight recorder.
	var slow []SlowSession
	for _, r := range results {
		if r.err == nil && r.traceID != "" {
			slow = append(slow, SlowSession{TraceID: r.traceID, FullMS: r.fullMS})
		}
	}
	sort.Slice(slow, func(i, j int) bool {
		if slow[i].FullMS != slow[j].FullMS {
			return slow[i].FullMS > slow[j].FullMS
		}
		return slow[i].TraceID < slow[j].TraceID
	})
	if len(slow) > 5 {
		slow = slow[:5]
	}
	rep.Slowest = slow
	return rep, nil
}

// StreamPlans runs one session and returns the streamed plan queries in
// order — the parity probe qpload -print-plans uses to diff the served
// order against qporder's.
func StreamPlans(ctx context.Context, baseURL string, cfg LoadConfig, query string) ([]string, error) {
	body, _ := json.Marshal(queryRequest{
		Query:        query,
		K:            cfg.K,
		DeadlineMS:   cfg.DeadlineMS,
		Algorithm:    cfg.Algorithm,
		Measure:      cfg.Measure,
		Reformulator: cfg.Reformulator,
		Parallelism:  cfg.Parallelism,
		Scatter:      cfg.Scatter,
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		detail, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(detail))
	}
	var plans []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, err
		}
		switch e.Event {
		case "plan":
			plans = append(plans, e.Plan)
		case "error":
			return nil, fmt.Errorf("stream error %s: %s", e.Err.Code, e.Err.Message)
		}
	}
	return plans, sc.Err()
}

// FleetReportSchemaVersion stamps serialized FleetReports; bump on
// incompatible shape changes. v2 added the per-shard Shards breakdown.
const FleetReportSchemaVersion = 2

// SweepPoint is one concurrency level of a fleet throughput sweep.
type SweepPoint struct {
	Concurrency int       `json:"concurrency"`
	QPS         float64   `json:"qps"`
	Errors      int       `json:"errors"`
	Full        Quantiles `json:"full"`
	// FirstError carries the level's first failure detail, if any.
	FirstError string `json:"first_error,omitempty"`
}

// FleetReport is the outcome of a fleet sweep: the per-level points and
// the throughput knee — the smallest concurrency already delivering at
// least KneeFraction of the best observed QPS. Past the knee, added
// concurrency buys latency, not throughput.
type FleetReport struct {
	SchemaVersion int          `json:"schema_version"`
	BaseURL       string       `json:"base_url"`
	Scatter       bool         `json:"scatter"`
	Points        []SweepPoint `json:"points"`
	KneeFraction  float64      `json:"knee_fraction"`
	Knee          int          `json:"knee_concurrency"`
	MaxQPS        float64      `json:"max_qps"`
	// Shards is the per-shard load breakdown over the sweep, read from
	// the router's fleet.shard<i>.* instruments (session and answer
	// counts are sweep deltas; latency quantiles are the router's
	// cumulative view). Empty when BaseURL is a plain qpserved or its
	// metrics are unreachable. Skewed rows mean the affinity hash — or
	// the plan-space partition — is not spreading work evenly.
	Shards []ShardLoad `json:"shards,omitempty"`
}

// ShardLoad is one shard's share of a fleet sweep, indexed by the
// shard's configured position in the router's -shards list.
type ShardLoad struct {
	Shard        int     `json:"shard"`
	Sessions     int64   `json:"sessions"`
	Answers      int64   `json:"answers"`
	LatencyP50MS float64 `json:"latency_p50_ms,omitempty"`
	LatencyP99MS float64 `json:"latency_p99_ms,omitempty"`
}

// shardLoads derives the per-shard breakdown from router metric
// snapshots taken before and after the sweep. The shard set is probed
// by index until the first missing fleet.shard<i>.sessions counter.
func shardLoads(before, after *obs.Snapshot) []ShardLoad {
	if after == nil {
		return nil
	}
	var out []ShardLoad
	for i := 0; ; i++ {
		sessKey := fmt.Sprintf("fleet.shard%d.sessions", i)
		sessions, ok := after.Counters[sessKey]
		if !ok {
			break
		}
		sl := ShardLoad{
			Shard:    i,
			Sessions: sessions,
			Answers:  after.Counters[fmt.Sprintf("fleet.shard%d.answers", i)],
		}
		if before != nil {
			sl.Sessions -= before.Counters[sessKey]
			sl.Answers -= before.Counters[fmt.Sprintf("fleet.shard%d.answers", i)]
		}
		if h, ok := after.Histograms[fmt.Sprintf("fleet.shard%d.latency_ns", i)]; ok {
			sl.LatencyP50MS = float64(h.P50) / 1e6
			sl.LatencyP99MS = float64(h.P99) / 1e6
		}
		out = append(out, sl)
	}
	return out
}

// RunFleetSweep replays the workload at each concurrency level and
// locates the throughput knee. Levels are swept in the given order;
// each level reruns the full cfg.Requests workload with
// cfg.Concurrency overridden.
func RunFleetSweep(ctx context.Context, cfg LoadConfig, levels []int) (*FleetReport, error) {
	if len(levels) == 0 {
		levels = []int{1, 2, 4, 8, 16, 32}
	}
	rep := &FleetReport{
		SchemaVersion: FleetReportSchemaVersion,
		BaseURL:       cfg.BaseURL,
		Scatter:       cfg.Scatter,
		KneeFraction:  0.9,
	}
	// Snapshot the target's metrics around the sweep so the per-shard
	// counters can be reported as deltas. Either fetch failing (a plain
	// qpserved target, metrics disabled) just omits the breakdown.
	before, _ := FetchSnapshot(ctx, cfg.BaseURL)
	for _, c := range levels {
		if c <= 0 {
			return nil, fmt.Errorf("loadgen: sweep concurrency must be positive, got %d", c)
		}
		lc := cfg
		lc.Concurrency = c
		lr, err := RunLoad(ctx, lc)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, SweepPoint{
			Concurrency: c, QPS: lr.QPS, Errors: lr.Errors, Full: lr.Full,
			FirstError: lr.FirstError,
		})
		if lr.QPS > rep.MaxQPS {
			rep.MaxQPS = lr.QPS
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	after, _ := FetchSnapshot(ctx, cfg.BaseURL)
	rep.Shards = shardLoads(before, after)
	// Knee: first level reaching KneeFraction of the sweep's best QPS,
	// scanning smallest concurrency first.
	sorted := append([]SweepPoint(nil), rep.Points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Concurrency < sorted[j].Concurrency })
	for _, p := range sorted {
		if p.QPS >= rep.KneeFraction*rep.MaxQPS {
			rep.Knee = p.Concurrency
			break
		}
	}
	return rep, nil
}

// FetchSnapshot reads the daemon's metrics snapshot (/metrics?format=json).
func FetchSnapshot(ctx context.Context, baseURL string) (*obs.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics?format=json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
