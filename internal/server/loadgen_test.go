package server

import "qporder/internal/obs"

import "testing"

// TestShardLoads: the per-shard breakdown probes fleet.shard<i>.*
// counters by index, reports sweep deltas, and stops at the first gap.
func TestShardLoads(t *testing.T) {
	before := &obs.Snapshot{Counters: map[string]int64{
		"fleet.shard0.sessions": 10, "fleet.shard0.answers": 100,
		"fleet.shard1.sessions": 0, "fleet.shard1.answers": 0,
	}}
	after := &obs.Snapshot{
		Counters: map[string]int64{
			"fleet.shard0.sessions": 14, "fleet.shard0.answers": 160,
			"fleet.shard1.sessions": 3, "fleet.shard1.answers": 45,
			// shard3 without shard2: unreachable past the gap.
			"fleet.shard3.sessions": 99,
		},
		Histograms: map[string]obs.HistSnapshot{
			"fleet.shard0.latency_ns": {P50: 2_000_000, P99: 8_000_000},
		},
	}
	got := shardLoads(before, after)
	if len(got) != 2 {
		t.Fatalf("probed %d shards, want 2 (stop at the index gap)", len(got))
	}
	if got[0] != (ShardLoad{Shard: 0, Sessions: 4, Answers: 60, LatencyP50MS: 2, LatencyP99MS: 8}) {
		t.Fatalf("shard0 = %+v", got[0])
	}
	if got[1] != (ShardLoad{Shard: 1, Sessions: 3, Answers: 45}) {
		t.Fatalf("shard1 = %+v", got[1])
	}

	// No before-snapshot (first scrape failed): absolute counts.
	if abs := shardLoads(nil, after); abs[0].Sessions != 14 {
		t.Fatalf("absolute sessions = %d, want 14", abs[0].Sessions)
	}
	// No after-snapshot (plain qpserved target): no breakdown at all.
	if got := shardLoads(before, nil); got != nil {
		t.Fatalf("breakdown without an after-snapshot: %+v", got)
	}
}
