package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// TestStructuredErrors is the satellite-6 table: every malformed request
// yields a structured 4xx JSON error with a stable code — never a 500,
// never a plain-text body.
func TestStructuredErrors(t *testing.T) {
	_, ts := testServer(t, func(c *Config) {
		c.MaxK = 50
	})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"bad json", `{"query": `, http.StatusBadRequest, CodeBadJSON},
		{"unknown field", `{"query": "Q(X) :- r(X)", "bogus": 1}`, http.StatusBadRequest, CodeBadJSON},
		{"missing query", `{}`, http.StatusBadRequest, CodeMissingQuery},
		{"blank query", `{"query": "   "}`, http.StatusBadRequest, CodeMissingQuery},
		{"parse error", `{"query": "Q(X :- r(X)"}`, http.StatusBadRequest, CodeParseError},
		{"unknown measure", `{"query": "Q(M, R) :- play-in(A, M), review-of(R, M)", "measure": "psychic"}`,
			http.StatusBadRequest, CodeUnknownMeasure},
		{"unknown algorithm", `{"query": "Q(M, R) :- play-in(A, M), review-of(R, M)", "algorithm": "quantum"}`,
			http.StatusBadRequest, CodeUnknownAlgorithm},
		{"unknown reformulator", `{"query": "Q(M, R) :- play-in(A, M), review-of(R, M)", "reformulator": "magic"}`,
			http.StatusBadRequest, CodeUnknownReformulator},
		{"negative k", `{"query": "Q(M, R) :- play-in(A, M), review-of(R, M)", "k": -1}`,
			http.StatusBadRequest, CodeInvalidK},
		{"k over max", `{"query": "Q(M, R) :- play-in(A, M), review-of(R, M)", "k": 51}`,
			http.StatusBadRequest, CodeInvalidK},
		{"negative deadline", `{"query": "Q(M, R) :- play-in(A, M), review-of(R, M)", "deadline_ms": -5}`,
			http.StatusBadRequest, CodeInvalidDeadline},
		{"deadline over max", `{"query": "Q(M, R) :- play-in(A, M), review-of(R, M)", "deadline_ms": 99999999}`,
			http.StatusBadRequest, CodeInvalidDeadline},
		{"negative parallelism", `{"query": "Q(M, R) :- play-in(A, M), review-of(R, M)", "parallelism": -2}`,
			http.StatusBadRequest, CodeInvalidParallelism},
		{"unplannable query", `{"query": "Q(X, Y) :- starring(X, Y)"}`,
			http.StatusUnprocessableEntity, CodeUnplannable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type %q, want application/json", ct)
			}
			var body struct {
				Err ErrorBody `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("non-JSON error body: %v", err)
			}
			if body.Err.Code != tc.code {
				t.Errorf("code %q, want %q", body.Err.Code, tc.code)
			}
			if body.Err.Message == "" {
				t.Error("error has no message")
			}
		})
	}
}

// TestMethodNotAllowed: the query endpoint only accepts POST.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query = %d, want 405", resp.StatusCode)
	}
}

// TestOversizedBody: a body beyond the 1MB cap is a bad_json 4xx, not a
// connection reset or 500.
func TestOversizedBody(t *testing.T) {
	_, ts := testServer(t, nil)
	big := append([]byte(`{"query": "`), bytes.Repeat([]byte("x"), 2<<20)...)
	big = append(big, []byte(`"}`)...)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body = %d, want 400", resp.StatusCode)
	}
}
