package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qporder/internal/costmodel"
	"qporder/internal/execsim"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/mediator"
	"qporder/internal/schema"
)

// testCatalog is the movie catalog of the mediator tests: two sources per
// bucket, so the fixture query has 4 sound plans.
func testCatalog(t *testing.T) *lav.Catalog {
	t.Helper()
	cat := lav.NewCatalog()
	stats := lav.Stats{Tuples: 50, TransmitCost: 1, Overhead: 10}
	for _, d := range []string{
		"V1(A, M) :- play-in(A, M), american(M)",
		"V3(A, M) :- play-in(A, M)",
		"V4(R, M) :- review-of(R, M)",
		"V5(R, M) :- review-of(R, M)",
	} {
		def := schema.MustParseQuery(d)
		cat.MustAdd(def.Name, def, stats)
	}
	return cat
}

const testQuery = "Q(M, R) :- play-in(A, M), review-of(R, M)"

// testServer boots a server over the movie catalog on an httptest listener.
func testServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Catalog: testCatalog(t), Seed: 1}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a query request and decodes the whole NDJSON stream.
func post(t *testing.T, url string, req queryRequest) (int, []Event) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, events
}

func TestQueryStream(t *testing.T) {
	_, ts := testServer(t, nil)
	status, events := post(t, ts.URL, queryRequest{Query: testQuery, K: 10})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(events) < 3 {
		t.Fatalf("stream too short: %+v", events)
	}
	if events[0].Event != "session" || events[0].Cache != "miss" {
		t.Errorf("first event %+v, want a session miss", events[0])
	}
	if events[0].PlanSpace == 0 {
		t.Error("session event has no plan space size")
	}
	last := events[len(events)-1]
	if last.Event != "done" {
		t.Fatalf("last event %+v, want done", last)
	}
	if last.Stopped != string(mediator.StopExhausted) {
		t.Errorf("stopped %q, want %q", last.Stopped, mediator.StopExhausted)
	}
	if last.Plans != 4 {
		t.Errorf("executed %d plans, want 4", last.Plans)
	}
	var plans, answers int
	total := 0
	for _, e := range events[1 : len(events)-1] {
		switch e.Event {
		case "plan":
			plans++
			if e.Index != plans {
				t.Errorf("plan %d has index %d", plans, e.Index)
			}
			if e.Plan == "" {
				t.Errorf("plan event %d has no plan text", plans)
			}
			total = e.TotalAnswers
		case "answers":
			answers += len(e.Answers)
		default:
			t.Errorf("unexpected mid-stream event %q", e.Event)
		}
	}
	if plans != last.Plans {
		t.Errorf("%d plan events, done says %d", plans, last.Plans)
	}
	if answers != last.TotalAnswers || total != last.TotalAnswers {
		t.Errorf("answers: streamed %d, last plan total %d, done %d", answers, total, last.TotalAnswers)
	}
	if last.TotalAnswers == 0 {
		t.Error("no answers streamed")
	}
}

// TestSessionCacheHit: a second request whose query differs only by
// variable names and atom order is served from the session cache.
func TestSessionCacheHit(t *testing.T) {
	s, ts := testServer(t, nil)
	_, events := post(t, ts.URL, queryRequest{Query: testQuery})
	if events[0].Cache != "miss" {
		t.Fatalf("first request cache=%q", events[0].Cache)
	}
	variant := "Q(Movie, Rev) :- review-of(Rev, Movie), play-in(Actor, Movie)"
	_, events = post(t, ts.URL, queryRequest{Query: variant})
	if events[0].Cache != "hit" {
		t.Errorf("renamed+reordered query missed the cache")
	}
	// A semantically different query must not be served from the entry.
	_, events = post(t, ts.URL, queryRequest{Query: "Q(M, R) :- play-in(R, M), review-of(R, M)"})
	if events[0].Cache != "miss" {
		t.Errorf("different query hit the cache")
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["server.cache_hits"] != 1 || snap.Counters["server.cache_misses"] != 2 {
		t.Errorf("cache counters: %+v", snap.Counters)
	}
}

// TestServedPlanOrderMatchesDirect: the streamed plan order is exactly
// what a directly constructed mediator produces for the same query,
// algorithm, and measure — serving adds no nondeterminism.
func TestServedPlanOrderMatchesDirect(t *testing.T) {
	cat := testCatalog(t)
	sys, err := mediator.New(mediator.Config{
		Catalog:   cat,
		Query:     schema.MustParseQuery(testQuery),
		Algorithm: mediator.Streamer,
		Measure: func(entries *lav.Catalog) measure.Measure {
			return costmodel.NewChainCost(entries, costmodel.Params{N: 50000})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := buildStore(cat, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := execsim.NewEngine(cat, store)
	eng.EnableFailures(1 + 2)
	res, err := sys.Run(eng, mediator.Budget{MaxPlans: 10})
	if err != nil {
		t.Fatal(err)
	}

	_, ts := testServer(t, nil)
	plans, err := StreamPlans(context.Background(), ts.URL, LoadConfig{K: 10, Algorithm: "streamer", Measure: "chain"}, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != len(res.Executed) {
		t.Fatalf("served %d plans, direct %d", len(plans), len(res.Executed))
	}
	for i := range plans {
		if plans[i] != res.Executed[i].String() {
			t.Errorf("plan %d differs:\n  served %s\n  direct %s", i, plans[i], res.Executed[i])
		}
	}
}

// TestAdmissionOverload: with all slots held and no queue, a request is
// rejected with 503 overloaded rather than piling up.
func TestAdmissionOverload(t *testing.T) {
	s, ts := testServer(t, func(c *Config) {
		c.MaxInflight = 1
		c.MaxQueue = 1
	})
	// Hold the only slot and saturate the queue (white-box: the HTTP
	// path releases them in defer, so occupy directly).
	s.sem <- struct{}{}
	s.waiting.Add(1)
	defer func() { <-s.sem; s.waiting.Add(-1) }()

	status, events := post(t, ts.URL, queryRequest{Query: testQuery})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", status)
	}
	if len(events) != 1 || events[0].Err == nil || events[0].Err.Code != CodeOverloaded {
		t.Errorf("body %+v, want overloaded error", events)
	}
}

// TestDraining: a draining server fails health checks and refuses new
// sessions with 503 draining.
func TestDraining(t *testing.T) {
	s, ts := testServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy server healthz = %d", resp.StatusCode)
	}
	s.SetDraining(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp.StatusCode)
	}
	status, events := post(t, ts.URL, queryRequest{Query: testQuery})
	if status != http.StatusServiceUnavailable || len(events) != 1 || events[0].Err == nil || events[0].Err.Code != CodeDraining {
		t.Errorf("draining query: status %d body %+v", status, events)
	}
}

// TestDeadlineCancels: a tiny deadline stops the stream with a canceled
// (or at worst exhausted, on a fast machine) done event, never an error.
func TestDeadlineCancels(t *testing.T) {
	_, ts := testServer(t, nil)
	status, events := post(t, ts.URL, queryRequest{Query: testQuery, DeadlineMS: 1, Parallelism: 2})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	last := events[len(events)-1]
	if last.Event != "done" {
		t.Fatalf("last event %+v, want done", last)
	}
	if last.Stopped != string(mediator.StopCanceled) && last.Stopped != string(mediator.StopExhausted) {
		t.Errorf("stopped %q", last.Stopped)
	}
}

// TestMetricsEndpoints: both renderings of /metrics respond, and the JSON
// form decodes into an obs snapshot with the server instruments present.
func TestMetricsEndpoints(t *testing.T) {
	_, ts := testServer(t, nil)
	post(t, ts.URL, queryRequest{Query: testQuery})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "server.requests") {
		t.Errorf("text metrics missing server.requests:\n%s", buf.String())
	}
	snap, err := FetchSnapshot(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.requests"] == 0 {
		t.Errorf("json metrics missing requests counter: %+v", snap.Counters)
	}
	if snap.Counters["mediator.plans_executed"] == 0 {
		t.Errorf("mediator counters not aggregated into the server registry")
	}
}

// TestRunLoad drives the load generator against a live server: shuffled
// duplicates of one query must produce zero errors and cache hits.
func TestRunLoad(t *testing.T) {
	s, ts := testServer(t, nil)
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Queries:     []string{testQuery},
		Requests:    12,
		Concurrency: 4,
		K:           5,
		Shuffle:     true,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run had %d errors, first: %s", rep.Errors, rep.FirstError)
	}
	if rep.Requests != 12 {
		t.Errorf("completed %d requests, want 12", rep.Requests)
	}
	if rep.Plans == 0 || rep.Answers == 0 {
		t.Errorf("load run produced no work: %+v", rep)
	}
	if rep.Full.P50 <= 0 || rep.Full.Max < rep.Full.P50 {
		t.Errorf("suspicious latency quantiles: %+v", rep.Full)
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["server.cache_hits"] == 0 {
		t.Error("no session-cache hits across 12 shuffled duplicates")
	}
	if got := snap.Counters["server.cache_misses"]; got != 1 {
		t.Errorf("cache misses = %d, want 1 (identical canonical queries)", got)
	}
}

// TestQPSPacing: open-loop pacing spreads request starts, so a paced run
// takes at least (requests-1)/QPS.
func TestQPSPacing(t *testing.T) {
	_, ts := testServer(t, nil)
	start := time.Now()
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Queries:     []string{testQuery},
		Requests:    6,
		Concurrency: 6,
		K:           1,
		QPS:         50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("paced run had errors: %s", rep.FirstError)
	}
	if min := 5 * (time.Second / 50); time.Since(start) < min {
		t.Errorf("paced run finished in %v, want >= %v", time.Since(start), min)
	}
}
