package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"qporder/internal/obs"
)

// TestSpansTrailer: "spans": true appends exactly one spans event after
// done carrying the request's span tree; without the flag the stream is
// unchanged.
func TestSpansTrailer(t *testing.T) {
	_, ts := testServer(t, nil)
	status, tp, events := postWithHeader(t, ts.URL, clientTraceparent, queryRequest{Query: testQuery, K: 3, Spans: true})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(events) == 0 || events[len(events)-1].Event != "spans" {
		t.Fatalf("stream does not end with a spans trailer: %+v", events)
	}
	doneSeen := false
	for _, e := range events {
		if e.Event == "done" {
			doneSeen = true
		}
		if e.Event == "spans" && !doneSeen {
			t.Fatal("spans trailer before the done event")
		}
	}
	trailer := events[len(events)-1]
	if trailer.Trace == nil {
		t.Fatal("spans trailer carries no trace snapshot")
	}
	tid, _, _ := obs.ParseTraceparent(tp)
	if trailer.Trace.TraceID != tid {
		t.Fatalf("trailer trace ID %s != session %s", trailer.Trace.TraceID, tid)
	}
	if trailer.TraceID != tid.String() {
		t.Fatalf("trailer event trace_id %q != session %s", trailer.TraceID, tid)
	}
	if len(trailer.Trace.Spans) < 2 {
		t.Fatalf("trailer has %d spans, want a tree", len(trailer.Trace.Spans))
	}
	// The snapshot's remote parent is the client's span — the stitch key.
	if got := trailer.Trace.ParentSpan.String(); got != "b7ad6b7169203331" {
		t.Fatalf("trailer parent span %s, want the caller's", got)
	}

	_, _, plain := postWithHeader(t, ts.URL, "", queryRequest{Query: testQuery, K: 3})
	for _, e := range plain {
		if e.Event == "spans" {
			t.Fatal("spans trailer present without spans:true")
		}
	}
}

// TestServerSLOTailSampling: with objectives nothing can meet, every
// session samples (exports); with objectives nothing violates, healthy
// sessions drop and the export stays empty.
func TestServerSLOTailSampling(t *testing.T) {
	t.Run("violating sessions export", func(t *testing.T) {
		var exported syncBuffer
		slo := obs.NewSLOMonitor(obs.SLOConfig{FullObjective: time.Nanosecond})
		_, ts := testServer(t, func(cfg *Config) {
			cfg.TraceOut = &exported
			cfg.SLO = slo
		})
		post(t, ts.URL, queryRequest{Query: testQuery, K: 2})
		traces, err := obs.ReadTraces(strings.NewReader(exported.String()))
		if err != nil || len(traces) != 1 {
			t.Fatalf("export holds %d traces (err %v), want 1", len(traces), err)
		}
		s := slo.Snapshot()
		if s.Sessions != 1 || s.FullViolations != 1 || s.Exported != 1 || s.Dropped != 0 {
			t.Fatalf("slo snapshot = %+v", s)
		}
	})
	t.Run("healthy sessions drop", func(t *testing.T) {
		var exported syncBuffer
		slo := obs.NewSLOMonitor(obs.SLOConfig{FullObjective: time.Hour})
		_, ts := testServer(t, func(cfg *Config) {
			cfg.TraceOut = &exported
			cfg.SLO = slo
		})
		post(t, ts.URL, queryRequest{Query: testQuery, K: 2})
		if exported.String() != "" {
			t.Fatalf("healthy session exported despite tail sampling:\n%s", exported.String())
		}
		s := slo.Snapshot()
		if s.Sessions != 1 || s.FullViolations != 0 || s.Exported != 0 || s.Dropped != 1 {
			t.Fatalf("slo snapshot = %+v", s)
		}
	})
	t.Run("errored sessions always export", func(t *testing.T) {
		var exported syncBuffer
		slo := obs.NewSLOMonitor(obs.SLOConfig{FullObjective: time.Hour})
		_, ts := testServer(t, func(cfg *Config) {
			cfg.TraceOut = &exported
			cfg.SLO = slo
		})
		post(t, ts.URL, queryRequest{Query: "nonsense ]["})
		traces, err := obs.ReadTraces(strings.NewReader(exported.String()))
		if err != nil || len(traces) != 1 || traces[0].Status != "error" {
			t.Fatalf("errored session not exported: %d traces, err %v", len(traces), err)
		}
	})
}

// TestDebugSLOEndpoint: text and JSON views, enabled and disabled.
func TestDebugSLOEndpoint(t *testing.T) {
	slo := obs.NewSLOMonitor(obs.SLOConfig{TTFAObjective: time.Hour, FullObjective: time.Hour})
	_, ts := testServer(t, func(cfg *Config) { cfg.SLO = slo })
	post(t, ts.URL, queryRequest{Query: testQuery, K: 2})

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b), resp.Header.Get("Content-Type")
	}

	status, body, ct := get("/debug/slo")
	if status != http.StatusOK || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text view: status %d content-type %q", status, ct)
	}
	if !strings.Contains(body, "slo objectives:") || !strings.Contains(body, "sessions=1") {
		t.Fatalf("text view body:\n%s", body)
	}

	status, body, ct = get("/debug/slo?format=json")
	if status != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("json view: status %d content-type %q", status, ct)
	}
	var snap obs.SLOSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("json view does not decode: %v", err)
	}
	if snap.Sessions != 1 || snap.TTFAObjectiveMS != float64(time.Hour)/1e6 {
		t.Fatalf("json snapshot = %+v", snap)
	}

	// The slo.* gauges ride the registry snapshot.
	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reg obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	if reg.Gauges["slo.window_sessions"] != 1 || reg.Gauges["slo.target"] != 0.99 {
		t.Fatalf("slo gauges missing from registry: %v", reg.Gauges)
	}

	// Disabled monitor: the endpoint still answers, reporting disabled.
	_, ts2 := testServer(t, nil)
	resp2, err := http.Get(ts2.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	b, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusOK || !strings.Contains(string(b), "disabled") {
		t.Fatalf("disabled view: status %d body %q", resp2.StatusCode, b)
	}
}
