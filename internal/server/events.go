package server

import "qporder/internal/obs"

// Event is one NDJSON line of the POST /v1/query response stream. The
// server writes it with omitempty fields; clients (cmd/qpload, the serve
// experiment) decode every line into the same type and dispatch on Event.
//
// The stream for a successful request is:
//
//	{"event":"session", ...}            once, before any ordering work
//	{"event":"plan", ...}               per executed plan, best-first
//	{"event":"answers", ...}            per plan that contributed answers
//	{"event":"explain", ...}            once, when requested, before done
//	{"event":"done", ...}               once, last data line
//	{"event":"spans", ...}              once, after done, when requested
//
// A failure after the stream has started (headers already sent) is
// reported as an {"event":"error"} line (followed by the spans trailer
// when requested). Everything after done/error is observability
// metadata; clients dispatching on Event ignore unknown trailers.
type Event struct {
	Event string `json:"event"`

	// TraceID correlates the stream with the server's flight recorder,
	// logs, and exported traces; it is set on session, explain, and done
	// events.
	TraceID string `json:"trace_id,omitempty"`

	// session fields.
	Cache     string `json:"cache,omitempty"` // hit | miss
	Algorithm string `json:"algorithm,omitempty"`
	Measure   string `json:"measure,omitempty"`
	K         int    `json:"k,omitempty"`
	PlanSpace int64  `json:"plan_space,omitempty"`
	// Shards is set on the session event of a router-gathered
	// scatter stream: the number of shards the plan space was
	// partitioned across.
	Shards int `json:"shards,omitempty"`

	// plan fields (answers events reuse Index).
	Index   int     `json:"index,omitempty"`
	Utility float64 `json:"utility,omitempty"`
	Plan    string  `json:"plan,omitempty"`
	// PlanKey is the plan's canonical planspace key — the post-utility
	// tie-break of the canonical output order. The fleet router merges
	// per-shard plan streams by (utility, plan_key), which is what makes
	// a gathered stream byte-identical to a single process.
	PlanKey      string `json:"plan_key,omitempty"`
	NewAnswers   int    `json:"new_answers,omitempty"`
	TotalAnswers int    `json:"total_answers,omitempty"`

	// answers fields.
	Answers []string `json:"answers,omitempty"`

	// explain fields: per emitted plan, the ordering provenance the
	// orderer recorded — utility at selection, dominance tests won and
	// lost, refinements, splits, and evaluations since the previous plan.
	Explain []obs.PlanProvenance `json:"explain,omitempty"`

	// done fields.
	Stopped   string  `json:"stopped,omitempty"`
	Plans     int     `json:"plans,omitempty"`
	Cost      float64 `json:"cost,omitempty"`
	Evals     int     `json:"evals,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`

	// error fields.
	Err *ErrorBody `json:"error,omitempty"`

	// spans fields: the trailing spans event (emitted after done — or
	// after a mid-stream error event — when the request set "spans":
	// true) carries the process-local span tree. A fleet router sets the
	// flag on its sub-requests, ingests the trailer, and re-exports the
	// shard snapshots under its own trace for cross-process stitching.
	// Plain clients ignore unknown trailing events.
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`
}

// ErrorBody is the structured error payload: the body of every non-2xx
// response ({"error":{...}}) and of mid-stream error events.
type ErrorBody struct {
	// Code is a stable machine-readable error class.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// The error codes returned by the query endpoint.
const (
	CodeBadJSON             = "bad_json"
	CodeMissingQuery        = "missing_query"
	CodeParseError          = "parse_error"
	CodeUnknownMeasure      = "unknown_measure"
	CodeUnknownAlgorithm    = "unknown_algorithm"
	CodeUnknownReformulator = "unknown_reformulator"
	CodeInvalidK            = "invalid_k"
	CodeInvalidDeadline     = "invalid_deadline"
	CodeInvalidParallelism  = "invalid_parallelism"
	CodeInvalidShard        = "invalid_shard"
	CodeScatterProxyOnly    = "scatter_proxy_only"
	CodeUnplannable         = "unplannable"
	CodeInapplicable        = "algorithm_inapplicable"
	CodeOverloaded          = "overloaded"
	CodeDraining            = "draining"
	CodeInternal            = "internal"
	CodeBadTraceID          = "bad_trace_id"
	CodeTraceNotFound       = "trace_not_found"
)
