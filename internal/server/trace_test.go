package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"qporder/internal/obs"
)

const clientTraceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

// postWithHeader sends a query request with a traceparent header and
// returns the status, the response's Traceparent header, and the stream.
func postWithHeader(t *testing.T, url, traceparent string, req queryRequest) (int, string, []Event) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if traceparent != "" {
		hreq.Header.Set("Traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Traceparent"), events
}

// eventByName returns the first event of the given kind.
func eventByName(events []Event, name string) (Event, bool) {
	for _, e := range events {
		if e.Event == name {
			return e, true
		}
	}
	return Event{}, false
}

// TestTraceparentRoundTrip: a well-formed inbound traceparent joins the
// caller's trace — the response header, the stream's trace IDs, and the
// flight recorder all carry the caller's trace ID.
func TestTraceparentRoundTrip(t *testing.T) {
	s, ts := testServer(t, nil)
	status, tp, events := postWithHeader(t, ts.URL, clientTraceparent, queryRequest{Query: testQuery, K: 4})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	tid, root, ok := obs.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response Traceparent %q does not parse", tp)
	}
	if got := tid.String(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("response trace ID %s, want the caller's", got)
	}
	if root.String() == "b7ad6b7169203331" {
		t.Fatal("response reused the caller's span ID as its root")
	}
	sess, ok := eventByName(events, "session")
	if !ok || sess.TraceID != tid.String() {
		t.Fatalf("session event trace ID %q, want %s", sess.TraceID, tid)
	}
	done, ok := eventByName(events, "done")
	if !ok || done.TraceID != tid.String() {
		t.Fatalf("done event trace ID %q, want %s", done.TraceID, tid)
	}
	snap, found := s.flight.Find(tid)
	if !found {
		t.Fatal("flight recorder did not retain the request")
	}
	if snap.Status != "ok" || len(snap.Spans) < 2 || snap.Attrs["query"] == "" {
		t.Fatalf("retained trace looks wrong: status=%s spans=%d attrs=%v", snap.Status, len(snap.Spans), snap.Attrs)
	}
	if got := snap.ParentSpan.String(); got != "b7ad6b7169203331" {
		t.Fatalf("retained trace parent span %s, want the caller's", got)
	}
}

// TestMalformedTraceparentStartsFresh is the satellite guarantee at the
// HTTP layer: a malformed header must not fail the request and must not
// be joined — the server starts a fresh trace.
func TestMalformedTraceparentStartsFresh(t *testing.T) {
	_, ts := testServer(t, nil)
	for _, h := range []string{
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",
		"garbage",
	} {
		status, tp, events := postWithHeader(t, ts.URL, h, queryRequest{Query: testQuery, K: 2})
		if status != http.StatusOK {
			t.Fatalf("header %q: status %d, want 200", h, status)
		}
		tid, _, ok := obs.ParseTraceparent(tp)
		if !ok || tid.IsZero() {
			t.Fatalf("header %q: response Traceparent %q invalid", h, tp)
		}
		if tid.String() == "0af7651916cd43dd8448eb211c80319c" {
			t.Fatalf("header %q: server joined a malformed trace", h)
		}
		if sess, ok := eventByName(events, "session"); !ok || sess.TraceID != tid.String() {
			t.Fatalf("header %q: session trace ID %q != header %s", h, sess.TraceID, tid)
		}
	}
}

// TestExplainEvent: explain:true yields one explain event before done,
// carrying a provenance record per plan event with matching utilities.
func TestExplainEvent(t *testing.T) {
	_, ts := testServer(t, nil)
	status, _, events := postWithHeader(t, ts.URL, "", queryRequest{Query: testQuery, K: 10, Explain: true})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	ex, ok := eventByName(events, "explain")
	if !ok {
		t.Fatal("no explain event in the stream")
	}
	if ex.TraceID == "" {
		t.Fatal("explain event has no trace ID")
	}
	var planEvents []Event
	sawExplain := false
	for _, e := range events {
		switch e.Event {
		case "plan":
			if sawExplain {
				t.Fatal("plan event after the explain event")
			}
			planEvents = append(planEvents, e)
		case "explain":
			sawExplain = true
		case "done":
			if !sawExplain {
				t.Fatal("done event before the explain event")
			}
		}
	}
	if len(planEvents) == 0 {
		t.Fatal("no plan events")
	}
	// Provenance covers every plan the orderer emitted — at least the
	// executed (sound) ones the stream carries.
	if len(ex.Explain) < len(planEvents) {
		t.Fatalf("%d provenance records for %d executed plans", len(ex.Explain), len(planEvents))
	}
	utilities := map[float64]bool{}
	for _, p := range ex.Explain {
		if p.Plan == "" {
			t.Fatalf("provenance record without a plan: %+v", p)
		}
		utilities[p.Utility] = true
	}
	for _, e := range planEvents {
		if !utilities[e.Utility] {
			t.Fatalf("plan event utility %g has no matching provenance record", e.Utility)
		}
	}
	// Without explain, no explain event.
	_, _, plain := postWithHeader(t, ts.URL, "", queryRequest{Query: testQuery, K: 2})
	if _, ok := eventByName(plain, "explain"); ok {
		t.Fatal("explain event present without explain:true")
	}
}

// TestDebugRequestsEndpoint: text view, JSON view, single-trace lookup,
// and the two error shapes.
func TestDebugRequestsEndpoint(t *testing.T) {
	_, ts := testServer(t, nil)
	_, tp, _ := postWithHeader(t, ts.URL, "", queryRequest{Query: testQuery, K: 2})
	tid, _, _ := obs.ParseTraceparent(tp)
	post(t, ts.URL, queryRequest{Query: "nonsense ]["}) // an errored request for the errored ring

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	status, text := get("/debug/requests")
	if status != http.StatusOK || !strings.Contains(text, tid.String()) {
		t.Fatalf("text view: status %d, body missing trace ID:\n%s", status, text)
	}
	if !strings.Contains(text, "errored (newest first):") {
		t.Fatalf("text view missing errored section:\n%s", text)
	}

	status, body := get("/debug/requests?format=json")
	if status != http.StatusOK {
		t.Fatalf("json view: status %d", status)
	}
	var snap obs.FlightSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("json view does not decode: %v", err)
	}
	if snap.Total < 2 || len(snap.Recent) < 2 || len(snap.Errored) == 0 {
		t.Fatalf("json view: total=%d recent=%d errored=%d", snap.Total, len(snap.Recent), len(snap.Errored))
	}

	status, body = get("/debug/requests?trace=" + tid.String())
	if status != http.StatusOK {
		t.Fatalf("trace lookup: status %d", status)
	}
	var one obs.TraceSnapshot
	if err := json.Unmarshal([]byte(body), &one); err != nil || one.TraceID != tid {
		t.Fatalf("trace lookup returned %v (err %v)", one.TraceID, err)
	}

	if status, body = get("/debug/requests?trace=zzz"); status != http.StatusBadRequest || !strings.Contains(body, CodeBadTraceID) {
		t.Fatalf("bad id: status %d body %s", status, body)
	}
	unknown := obs.NewTraceID().String()
	if status, body = get("/debug/requests?trace=" + unknown); status != http.StatusNotFound || !strings.Contains(body, CodeTraceNotFound) {
		t.Fatalf("unknown id: status %d body %s", status, body)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing exports.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceExportAndLogging: every request (ok and errored) lands in the
// -trace-out NDJSON export, the export re-ingests through obs.ReadTraces
// (the qptrace path), and the structured log carries the trace ID.
func TestTraceExportAndLogging(t *testing.T) {
	var exported, logged syncBuffer
	_, ts := testServer(t, func(cfg *Config) {
		cfg.TraceOut = &exported
		cfg.Logger = slog.New(slog.NewTextHandler(&logged, nil))
	})
	_, tp, _ := postWithHeader(t, ts.URL, "", queryRequest{Query: testQuery, K: 3})
	tid, _, _ := obs.ParseTraceparent(tp)
	post(t, ts.URL, queryRequest{Query: "nonsense ]["})

	traces, err := obs.ReadTraces(strings.NewReader(exported.String()))
	if err != nil {
		t.Fatalf("export does not re-ingest: %v", err)
	}
	if len(traces) != 2 {
		t.Fatalf("export holds %d traces, want 2", len(traces))
	}
	byStatus := map[string]obs.TraceSnapshot{}
	for _, tr := range traces {
		byStatus[tr.Status] = tr
	}
	okTrace, found := byStatus["ok"]
	if !found || okTrace.TraceID != tid {
		t.Fatalf("no ok trace with ID %s in export: %+v", tid, byStatus)
	}
	if len(okTrace.Plans) == 0 {
		t.Fatal("exported ok trace has no provenance records")
	}
	errTrace, found := byStatus["error"]
	if !found || errTrace.Error == "" || errTrace.Attrs["code"] != CodeParseError {
		t.Fatalf("errored request not exported usefully: %+v", errTrace)
	}

	rep := obs.AnalyzeTraces(traces, 5)
	if rep.Traces != 2 || rep.Errors != 1 || rep.Plans == 0 {
		t.Fatalf("analysis of the export looks wrong: %+v", rep)
	}

	logs := logged.String()
	if !strings.Contains(logs, "trace_id="+tid.String()) {
		t.Fatalf("log lines not correlated by trace ID:\n%s", logs)
	}
	if !strings.Contains(logs, "level=WARN") {
		t.Fatalf("errored request not logged at warn:\n%s", logs)
	}
}

// TestLoadgenRecordsSlowest: the load generator sends traceparents and
// reports the trace IDs of its slowest sessions, duration-descending.
func TestLoadgenRecordsSlowest(t *testing.T) {
	s, ts := testServer(t, nil)
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Queries:     []string{testQuery},
		Requests:    8,
		Concurrency: 2,
		K:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run had %d errors: %s", rep.Errors, rep.FirstError)
	}
	if len(rep.Slowest) == 0 || len(rep.Slowest) > 5 {
		t.Fatalf("slowest = %d entries, want 1..5", len(rep.Slowest))
	}
	for i, sl := range rep.Slowest {
		var id obs.TraceID
		if err := id.UnmarshalText([]byte(sl.TraceID)); err != nil || id.IsZero() {
			t.Fatalf("slowest[%d] trace ID %q invalid: %v", i, sl.TraceID, err)
		}
		if sl.FullMS <= 0 {
			t.Fatalf("slowest[%d] duration %g", i, sl.FullMS)
		}
		if i > 0 && sl.FullMS > rep.Slowest[i-1].FullMS {
			t.Fatalf("slowest not sorted: %g after %g", sl.FullMS, rep.Slowest[i-1].FullMS)
		}
		if _, ok := s.flight.Find(id); !ok {
			t.Fatalf("slowest[%d] trace %s not in the server's flight recorder", i, sl.TraceID)
		}
	}
}
