package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"qporder/internal/lav"
	"qporder/internal/mediator"
	"qporder/internal/obs"
	"qporder/internal/schema"
)

// prepFor builds a real Prepared for the movie catalog (the cache stores
// them by value identity, so tests need genuine ones).
func prepFor(t *testing.T, cat *lav.Catalog, q string) func() (*mediator.Prepared, error) {
	t.Helper()
	return func() (*mediator.Prepared, error) {
		return mediator.Prepare(schema.MustParseQuery(q), cat, mediator.Buckets)
	}
}

// TestCacheCanonicalization is the satellite-3 coverage at the cache
// layer: queries identical up to variable names and atom order share one
// entry; semantically different ones never collide.
func TestCacheCanonicalization(t *testing.T) {
	cat := testCatalog(t)
	reg := obs.NewRegistry()
	c := newSessionCache(8, reg)

	variants := []string{
		"Q(M, R) :- play-in(A, M), review-of(R, M)",
		"Q(Movie, Rev) :- review-of(Rev, Movie), play-in(Actor, Movie)",
		"Q(X1, X2) :- play-in(X9, X1), review-of(X2, X1)",
	}
	var first *mediator.Prepared
	for i, v := range variants {
		key := schema.MustParseQuery(v).CanonicalKey() + "|buckets"
		prep, hit, err := c.get(key, prepFor(t, cat, v))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if hit {
				t.Error("first insert reported a hit")
			}
			first = prep
			continue
		}
		if !hit {
			t.Errorf("variant %d missed the cache", i)
		}
		if prep != first {
			t.Errorf("variant %d got a different Prepared", i)
		}
	}

	// Semantically different: same predicates, different join pattern.
	other := "Q(M, R) :- play-in(R, M), review-of(R, M)"
	key := schema.MustParseQuery(other).CanonicalKey() + "|buckets"
	prep, hit, err := c.get(key, prepFor(t, cat, other))
	if err != nil {
		t.Fatal(err)
	}
	if hit || prep == first {
		t.Error("semantically different query collided with the cached entry")
	}

	snap := reg.Snapshot()
	if snap.Counters["server.cache_hits"] != 2 || snap.Counters["server.cache_misses"] != 2 {
		t.Errorf("counters: %+v", snap.Counters)
	}
}

// TestCacheLRUEviction: the least-recently-used entry is evicted at the
// bound, and a re-request rebuilds it.
func TestCacheLRUEviction(t *testing.T) {
	cat := testCatalog(t)
	reg := obs.NewRegistry()
	c := newSessionCache(2, reg)
	queries := []string{
		"Q(M) :- play-in(ford, M)",
		"Q(R, M) :- review-of(R, M)",
		"Q(A, M) :- play-in(A, M), american(M)",
	}
	keys := make([]string, len(queries))
	for i, q := range queries {
		keys[i] = schema.MustParseQuery(q).CanonicalKey() + "|buckets"
		if _, _, err := c.get(keys[i], prepFor(t, cat, q)); err != nil {
			t.Fatal(err)
		}
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	// The first query was least recently used and must have been evicted.
	if _, hit, err := c.get(keys[0], prepFor(t, cat, queries[0])); err != nil || hit {
		t.Errorf("evicted entry: hit=%v err=%v, want a rebuild miss", hit, err)
	}
	// The most recent survivor is still resident.
	if _, hit, err := c.get(keys[2], prepFor(t, cat, queries[2])); err != nil || !hit {
		t.Errorf("resident entry: hit=%v err=%v, want a hit", hit, err)
	}
	if n := reg.Snapshot().Counters["server.cache_evictions"]; n != 2 {
		t.Errorf("evictions = %d, want 2", n)
	}
}

// TestCacheSingleflight: concurrent requests for one fresh key run the
// builder exactly once; everyone gets the same value.
func TestCacheSingleflight(t *testing.T) {
	cat := testCatalog(t)
	c := newSessionCache(8, obs.NewRegistry())
	var builds atomic.Int64
	build := func() (*mediator.Prepared, error) {
		builds.Add(1)
		return mediator.Prepare(schema.MustParseQuery(testQuery), cat, mediator.Buckets)
	}
	const workers = 8
	preps := make([]*mediator.Prepared, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := c.get("k", build)
			if err != nil {
				t.Error(err)
			}
			preps[i] = p
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("builder ran %d times, want 1", n)
	}
	for i := 1; i < workers; i++ {
		if preps[i] != preps[0] {
			t.Errorf("worker %d got a different Prepared", i)
		}
	}
}

// TestCacheBuildErrorNotCached: a failed build is not retained, so a
// later request retries, and failures never occupy LRU slots.
func TestCacheBuildErrorNotCached(t *testing.T) {
	c := newSessionCache(8, obs.NewRegistry())
	calls := 0
	failing := func() (*mediator.Prepared, error) {
		calls++
		return nil, fmt.Errorf("boom %d", calls)
	}
	if _, _, err := c.get("bad", failing); err == nil {
		t.Fatal("expected a build error")
	}
	if c.len() != 0 {
		t.Errorf("failed build retained: len=%d", c.len())
	}
	if _, _, err := c.get("bad", failing); err == nil || calls != 2 {
		t.Errorf("retry: err=%v calls=%d, want a second attempt", err, calls)
	}
}
