package fleet

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"qporder/internal/server"
)

func streamOf(t *testing.T, lines ...string) *shardStream {
	t.Helper()
	body := strings.Join(lines, "\n")
	resp := &http.Response{Body: io.NopCloser(strings.NewReader(body))}
	return newShardStream("test", resp, func() {})
}

// TestShardStreamCursor: the cursor groups each plan with its answers,
// captures session and done events, and exhausts cleanly.
func TestShardStreamCursor(t *testing.T) {
	ss := streamOf(t,
		`{"event":"session","algorithm":"pi","measure":"chain","plan_space":9}`,
		`{"event":"plan","index":1,"utility":0.9,"plan":"p1","plan_key":"0|1"}`,
		`{"event":"answers","index":1,"answers":["a","b"]}`,
		`{"event":"plan","index":2,"utility":0.5,"plan":"p2","plan_key":"0|4"}`,
		`{"event":"plan","index":3,"utility":0.1,"plan":"p3","plan_key":"0|7"}`,
		`{"event":"answers","index":3,"answers":["c"]}`,
		`{"event":"done","plans":3}`,
	)
	type want struct {
		key     string
		answers int
	}
	wants := []want{{"0|1", 2}, {"0|4", 0}, {"0|7", 1}}
	for i, w := range wants {
		ss.advance()
		if ss.err != nil {
			t.Fatalf("group %d: %v", i, ss.err)
		}
		if ss.head == nil {
			t.Fatalf("group %d: stream exhausted early", i)
		}
		if ss.head.plan.PlanKey != w.key {
			t.Errorf("group %d key %q, want %q", i, ss.head.plan.PlanKey, w.key)
		}
		got := 0
		if ss.head.answers != nil {
			got = len(ss.head.answers.Answers)
		}
		if got != w.answers {
			t.Errorf("group %d has %d answers, want %d", i, got, w.answers)
		}
	}
	ss.advance()
	if ss.head != nil || ss.err != nil {
		t.Fatalf("after done: head=%+v err=%v, want exhausted", ss.head, ss.err)
	}
	if ss.session == nil || ss.session.PlanSpace != 9 {
		t.Errorf("session not captured: %+v", ss.session)
	}
	if ss.done == nil || ss.done.Plans != 3 {
		t.Errorf("done not captured: %+v", ss.done)
	}
}

// TestShardStreamErrors: a mid-stream error event and a truncated stream
// both surface as cursor errors, never as silent exhaustion.
func TestShardStreamErrors(t *testing.T) {
	ss := streamOf(t,
		`{"event":"session"}`,
		`{"event":"error","error":{"code":"internal","message":"boom"}}`,
	)
	ss.advance()
	if ss.err == nil || !strings.Contains(ss.err.Error(), "boom") {
		t.Fatalf("err = %v, want the shard's error surfaced", ss.err)
	}

	truncated := streamOf(t,
		`{"event":"session"}`,
		`{"event":"plan","index":1,"utility":0.9,"plan_key":"0|1"}`,
	)
	truncated.advance()
	if truncated.err == nil || !strings.Contains(truncated.err.Error(), "without a done") {
		t.Fatalf("err = %v, want truncation detected", truncated.err)
	}
}

// TestBetterGroup: utility descending, plan key ascending on ties —
// core's canonical output order lifted onto the wire format.
func TestBetterGroup(t *testing.T) {
	g := func(u float64, key string) *planGroup {
		return &planGroup{plan: server.Event{Utility: u, PlanKey: key}}
	}
	cases := []struct {
		a, b   *planGroup
		better bool
	}{
		{g(0.9, "0|5"), g(0.5, "0|1"), true},
		{g(0.5, "0|1"), g(0.9, "0|5"), false},
		{g(0.5, "0|1"), g(0.5, "0|2"), true},
		{g(0.5, "0|2"), g(0.5, "0|1"), false},
		{g(0.5, "0|1"), g(0.5, "0|1"), false},
	}
	for i, tc := range cases {
		if got := betterGroup(tc.a, tc.b); got != tc.better {
			t.Errorf("case %d: betterGroup = %v, want %v", i, got, tc.better)
		}
	}
}

// TestMergeStateDedup: answers already seen from an earlier merged plan
// are dropped, counts rewritten, indexes renumbered — reproducing the
// single-process "new answers" accounting.
func TestMergeStateDedup(t *testing.T) {
	st := newMergeState()
	p1, a1 := st.take(&planGroup{
		plan:    server.Event{Event: "plan", Index: 7, Utility: 0.9},
		answers: &server.Event{Event: "answers", Index: 7, Answers: []string{"a", "b"}},
	})
	if p1.Index != 1 || p1.NewAnswers != 2 || p1.TotalAnswers != 2 {
		t.Fatalf("first plan %+v, want index 1 with 2/2 answers", p1)
	}
	if a1 == nil || len(a1.Answers) != 2 || a1.Index != 1 {
		t.Fatalf("first answers %+v", a1)
	}
	// Second plan repeats "b" (seen via another shard's slice) plus one
	// fresh answer.
	p2, a2 := st.take(&planGroup{
		plan:    server.Event{Event: "plan", Index: 1, Utility: 0.8},
		answers: &server.Event{Event: "answers", Index: 1, Answers: []string{"b", "c"}},
	})
	if p2.Index != 2 || p2.NewAnswers != 1 || p2.TotalAnswers != 3 {
		t.Fatalf("second plan %+v, want index 2 with 1 new / 3 total", p2)
	}
	if a2 == nil || len(a2.Answers) != 1 || a2.Answers[0] != "c" {
		t.Fatalf("second answers %+v, want just c", a2)
	}
	// Third plan contributes nothing new: no answers event at all.
	p3, a3 := st.take(&planGroup{
		plan:    server.Event{Event: "plan", Index: 2, Utility: 0.7},
		answers: &server.Event{Event: "answers", Index: 2, Answers: []string{"a", "c"}},
	})
	if p3.Index != 3 || p3.NewAnswers != 0 || p3.TotalAnswers != 3 {
		t.Fatalf("third plan %+v, want index 3 with 0 new / 3 total", p3)
	}
	if a3 != nil {
		t.Fatalf("third answers %+v, want suppressed", a3)
	}
}
