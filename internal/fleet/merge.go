package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"qporder/internal/obs"
	"qporder/internal/server"
)

// planGroup is one shard-stream unit of the gather: a plan event plus
// the answers event that follows it (nil when the plan contributed no
// new answers shard-locally).
type planGroup struct {
	plan    server.Event
	answers *server.Event
}

// shardStream is one live scatter sub-request: the NDJSON response of a
// shard ordering its slice of the plan space, consumed as a cursor of
// planGroups. Each stream is in the canonical (utility desc, plan key
// asc) order — the per-slice restriction of the global order — so the
// gather is a k-way merge of sorted streams.
type shardStream struct {
	shard  string
	resp   *http.Response
	sc     *bufio.Scanner
	cancel context.CancelFunc

	session *server.Event // the shard's session event, once seen
	done    *server.Event // the shard's done event, once seen
	head    *planGroup    // next group to merge; nil when exhausted
	pending *server.Event // lookahead plan event already read
	err     error
}

// newShardStream wraps an open 200 response; the caller has already
// verified the status. It does not read from the body yet.
func newShardStream(shard string, resp *http.Response, cancel context.CancelFunc) *shardStream {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &shardStream{shard: shard, resp: resp, sc: sc, cancel: cancel}
}

// advance reads the next planGroup into ss.head; head becomes nil when
// the stream is exhausted (done seen). A stream error or an in-stream
// error event lands in ss.err and exhausts the stream.
func (ss *shardStream) advance() {
	ss.head = nil
	if ss.err != nil || ss.done != nil {
		return
	}
	var g *planGroup
	if ss.pending != nil {
		g = &planGroup{plan: *ss.pending}
		ss.pending = nil
	}
	for ss.sc.Scan() {
		var e server.Event
		if err := json.Unmarshal(ss.sc.Bytes(), &e); err != nil {
			ss.err = fmt.Errorf("shard %s: bad stream line: %w", ss.shard, err)
			return
		}
		switch e.Event {
		case "session":
			ss.session = &e
		case "plan":
			if g == nil {
				g = &planGroup{plan: e}
				continue
			}
			ss.pending = &e
			ss.head = g
			return
		case "answers":
			if g != nil && e.Index == g.plan.Index {
				ans := e
				g.answers = &ans
			}
		case "done":
			ss.done = &e
			ss.head = g
			return
		case "error":
			ss.err = fmt.Errorf("shard %s: stream error %s: %s", ss.shard, e.Err.Code, e.Err.Message)
			return
		default:
			// Unknown and explain events pass through the gather silently:
			// per-shard provenance is scoped to the shard's slice and is
			// served by the shard's own /debug surfaces instead.
		}
	}
	if err := ss.sc.Err(); err != nil {
		ss.err = fmt.Errorf("shard %s: %w", ss.shard, err)
		return
	}
	if ss.done == nil {
		ss.err = fmt.Errorf("shard %s: stream ended without a done event", ss.shard)
	}
}

// trailer consumes the stream past its done (or error) event and
// returns the shard's spans trailers — the span snapshots a shard
// appends when the sub-request set "spans": true. The merge may stop
// before a stream's done (the k-th plan emitted elsewhere), so the
// drain first advances the cursor to the stream's end, discarding
// unmerged plan groups, then scans the remaining raw lines.
func (ss *shardStream) trailer() []obs.TraceSnapshot {
	for ss.err == nil && ss.done == nil {
		ss.advance()
	}
	var out []obs.TraceSnapshot
	for ss.sc.Scan() {
		var e server.Event
		if json.Unmarshal(ss.sc.Bytes(), &e) != nil {
			break
		}
		if e.Event == "spans" && e.Trace != nil {
			out = append(out, *e.Trace)
		}
	}
	return out
}

// close cancels the sub-request and releases the response body.
func (ss *shardStream) close() {
	if ss.cancel != nil {
		ss.cancel()
	}
	if ss.resp != nil {
		ss.resp.Body.Close()
	}
}

// betterGroup is the canonical output order over stream heads: higher
// utility first, then lexicographic plan key — core's betterPlan lifted
// onto the wire format. It is the comparator under which the merged
// stream reproduces the single-process sequence.
func betterGroup(a, b *planGroup) bool {
	if a.plan.Utility != b.plan.Utility {
		return a.plan.Utility > b.plan.Utility
	}
	return a.plan.PlanKey < b.plan.PlanKey
}

// mergeState carries the gather's global accounting: the deduplicated
// answer set and the emitted-plan count. Each shard deduplicates only
// within its own slice; the gather re-establishes the global invariant
// that an answer is "new" exactly once, which makes the rewritten
// new_answers/total_answers fields — and the answers events — identical
// to a single process executing the merged plan sequence.
type mergeState struct {
	seen    map[string]bool
	emitted int
}

func newMergeState() *mergeState { return &mergeState{seen: make(map[string]bool)} }

// take renumbers group g as the next merged output and rewrites its
// answer accounting against the global set, returning the plan event and
// the answers event to emit (nil when nothing was globally new).
func (m *mergeState) take(g *planGroup) (server.Event, *server.Event) {
	m.emitted++
	var fresh []string
	if g.answers != nil {
		for _, a := range g.answers.Answers {
			if !m.seen[a] {
				m.seen[a] = true
				fresh = append(fresh, a)
			}
		}
	}
	p := g.plan
	p.Index = m.emitted
	p.NewAnswers = len(fresh)
	p.TotalAnswers = len(m.seen)
	if len(fresh) == 0 {
		return p, nil
	}
	return p, &server.Event{Event: "answers", Index: m.emitted, Answers: fresh}
}
