package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"qporder/internal/obs"
	"qporder/internal/server"
)

// syncBuffer is a goroutine-safe bytes.Buffer for trace exports.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// spyShards wraps n real shards in reverse proxies that record the
// Traceparent header of every /v1/query sub-request.
func spyShards(t *testing.T, n int) (urls []string, seen func() []string) {
	t.Helper()
	real := startShards(t, n)
	var mu sync.Mutex
	var tps []string
	for i := 0; i < n; i++ {
		target, err := url.Parse(real[i])
		if err != nil {
			t.Fatal(err)
		}
		proxy := httputil.NewSingleHostReverseProxy(target)
		proxy.FlushInterval = -1
		spy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/query" {
				mu.Lock()
				tps = append(tps, r.Header.Get("Traceparent"))
				mu.Unlock()
			}
			proxy.ServeHTTP(w, r)
		}))
		t.Cleanup(spy.Close)
		urls = append(urls, spy.URL)
	}
	return urls, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), tps...)
	}
}

func postWithTraceparent(t *testing.T, url, tp string, req map[string]any) (int, []server.Event) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("Traceparent", tp)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []server.Event
	dec := json.NewDecoder(resp.Body)
	for {
		var e server.Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("bad stream: %v", err)
		}
		events = append(events, e)
	}
	return resp.StatusCode, events
}

// TestScatterTraceparentPropagation: every scatter sub-request carries
// the client's W3C trace ID. Without router tracing the header is
// forwarded verbatim; with tracing each slice gets its own parent span
// under the shared trace.
func TestScatterTraceparentPropagation(t *testing.T) {
	const clientTP = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	const clientTrace = "0af7651916cd43dd8448eb211c80319c"
	const clientSpan = "b7ad6b7169203331"
	req := map[string]any{"query": fleetQuery, "k": 9, "measure": "chain", "scatter": true}

	t.Run("verbatim without tracing", func(t *testing.T) {
		shards, seen := spyShards(t, 2)
		_, url := startRouter(t, shards, nil)
		status, _ := postWithTraceparent(t, url, clientTP, req)
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		tps := seen()
		if len(tps) != 2 {
			t.Fatalf("saw %d sub-requests, want 2", len(tps))
		}
		for _, tp := range tps {
			if tp != clientTP {
				t.Errorf("shard saw %q, want the client's header verbatim", tp)
			}
		}
	})

	t.Run("per-slice spans with tracing", func(t *testing.T) {
		shards, seen := spyShards(t, 2)
		var exported syncBuffer
		_, url := startRouter(t, shards, func(cfg *Config) { cfg.TraceOut = &exported })
		status, _ := postWithTraceparent(t, url, clientTP, req)
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		tps := seen()
		if len(tps) != 2 {
			t.Fatalf("saw %d sub-requests, want 2", len(tps))
		}
		spans := map[string]bool{}
		for _, tp := range tps {
			parts := strings.Split(tp, "-")
			if len(parts) != 4 || parts[1] != clientTrace {
				t.Fatalf("shard saw %q, want the client's trace ID %s", tp, clientTrace)
			}
			if parts[2] == clientSpan {
				t.Errorf("slice parent is the client's span; want a router slice span")
			}
			spans[parts[2]] = true
		}
		if len(spans) != 2 {
			t.Errorf("slices share a parent span: %v", spans)
		}
	})
}

// TestScatterStitchedExport: a traced scatter session exports the
// router's snapshot plus every shard's trailer under one trace ID, and
// StitchTraces joins them into a fleet-wide trace with a cross-process
// critical path.
func TestScatterStitchedExport(t *testing.T) {
	shards := startShards(t, 2)
	var exported syncBuffer
	_, url := startRouter(t, shards, func(cfg *Config) { cfg.TraceOut = &exported })
	status, events := post(t, url, map[string]any{"query": fleetQuery, "k": 9, "measure": "chain", "scatter": true})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	for _, e := range events {
		if e.Event == "spans" {
			t.Fatal("spans trailer reached the client without spans:true")
		}
	}

	traces, err := obs.ReadTraces(strings.NewReader(exported.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 { // router + 2 shard hops
		t.Fatalf("exported %d snapshots, want 3", len(traces))
	}
	stitched := obs.StitchTraces(traces)
	if len(stitched) != 1 {
		t.Fatalf("stitched %d traces, want 1", len(stitched))
	}
	st := stitched[0]
	if st.Procs != 3 || st.Orphans != 0 {
		t.Fatalf("stitched = procs %d orphans %d, want 3/0", st.Procs, st.Orphans)
	}
	if !strings.Contains(st.Name, "router") {
		t.Fatalf("root hop = %q, want the router", st.Name)
	}
	if st.CriticalPath == "" || !strings.Contains(st.CriticalPath, "router/slice") {
		t.Fatalf("critical path %q does not cross the process boundary", st.CriticalPath)
	}
	if len(st.Breakdown) < 2 {
		t.Fatalf("breakdown = %+v, want router and shard parts", st.Breakdown)
	}
	// The router hop carries its own pipeline spans.
	var routerSnap *obs.TraceSnapshot
	for i := range traces {
		if strings.Contains(traces[i].Name, "router") {
			routerSnap = &traces[i]
		}
	}
	if routerSnap == nil {
		t.Fatal("no router snapshot in the export")
	}
	names := map[string]bool{}
	for _, sp := range routerSnap.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"router/admit", "router/pick", "router/slice0", "router/slice1", "router/merge"} {
		if !names[want] {
			t.Errorf("router snapshot lacks span %q; has %v", want, names)
		}
	}
}

// TestScatterSpansReemitted: a client that itself asks for spans gets
// every shard's trailer relayed after done, plus the router does not
// need tracing enabled for the passthrough.
func TestScatterSpansReemitted(t *testing.T) {
	shards := startShards(t, 2)
	_, url := startRouter(t, shards, nil)
	status, events := post(t, url, map[string]any{
		"query": fleetQuery, "k": 9, "measure": "chain", "scatter": true, "spans": true,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	doneAt := -1
	var spans []server.Event
	for i, e := range events {
		switch e.Event {
		case "done":
			doneAt = i
		case "spans":
			if doneAt < 0 {
				t.Fatal("spans trailer before done")
			}
			spans = append(spans, e)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("client got %d spans trailers, want one per shard", len(spans))
	}
	for _, e := range spans {
		if e.Trace == nil || len(e.Trace.Spans) == 0 {
			t.Fatalf("empty spans trailer: %+v", e)
		}
		if e.TraceID == "" || e.Trace.TraceID.String() != e.TraceID {
			t.Fatalf("trailer trace ID mismatch: event %q snapshot %s", e.TraceID, e.Trace.TraceID)
		}
	}
}

// TestProxySpansPassthrough: in affinity mode the shard's trailer is
// relayed to a spans-requesting client untouched.
func TestProxySpansPassthrough(t *testing.T) {
	shards := startShards(t, 1)
	_, url := startRouter(t, shards, nil)
	status, events := post(t, url, map[string]any{"query": fleetQuery, "k": 3, "spans": true})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	last := events[len(events)-1]
	if last.Event != "spans" || last.Trace == nil {
		t.Fatalf("stream does not end with a spans trailer: %+v", last)
	}

	// Without the flag the trailer must not leak through the relay.
	status, events = post(t, url, map[string]any{"query": fleetQuery, "k": 3})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	for _, e := range events {
		if e.Event == "spans" {
			t.Fatal("spans trailer leaked to a plain client")
		}
	}
}

// TestFederatedMetrics: the router's openmetrics view folds in every
// healthy shard's exposition under a shard label and still satisfies
// the grammar (terminal # EOF, single TYPE per family).
func TestFederatedMetrics(t *testing.T) {
	shards := startShards(t, 2)
	rt, url := startRouter(t, shards, nil)
	// Produce some traffic so shard counters are non-zero.
	if status, _ := post(t, url, map[string]any{"query": fleetQuery, "k": 9, "measure": "chain", "scatter": true}); status != http.StatusOK {
		t.Fatalf("warmup status %d", status)
	}

	resp, err := http.Get(url + "/metrics?format=openmetrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.OpenMetricsContentType {
		t.Fatalf("content-type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("exposition does not end with # EOF:\n...%s", out[max(0, len(out)-80):])
	}
	// Both shards present under their configured index.
	if !strings.Contains(out, `shard="0"`) || !strings.Contains(out, `shard="1"`) {
		t.Fatalf("shard labels missing:\n%s", out)
	}
	// The router's own families stay unlabeled.
	if !strings.Contains(out, "fleet_sessions_scatter_total ") {
		t.Fatalf("router families missing:\n%s", out)
	}
	// Shard-side families arrive relabeled.
	if !strings.Contains(out, `server_requests_total{shard="0"}`) {
		t.Fatalf("shard families not relabeled:\n%s", out)
	}
	// The merged output is valid OpenMetrics: it re-parses, and each
	// family is declared exactly once.
	fams, err := obs.ParseOpenMetrics(strings.NewReader(out))
	if err != nil {
		t.Fatalf("federated output does not re-parse: %v", err)
	}
	seen := map[string]bool{}
	for _, f := range fams {
		if seen[f.Name] {
			t.Fatalf("family %s declared twice", f.Name)
		}
		seen[f.Name] = true
	}
	if got := rt.scrapes.Value(); got != 2 {
		t.Errorf("fleet.federate_scrapes = %d, want 2", got)
	}
	if got := rt.scrapeEr.Value(); got != 0 {
		t.Errorf("fleet.federate_errors = %d, want 0", got)
	}
}

// TestFederatedMetricsDegraded: a dead shard is skipped, counted in
// fleet.federate_errors, and the endpoint still answers.
func TestFederatedMetricsDegraded(t *testing.T) {
	shards := startShards(t, 1)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)
	rt, url := startRouter(t, append(shards, dead.URL), nil)

	resp, err := http.Get(url + "/metrics?format=openmetrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("degraded exposition is not terminated:\n%s", out)
	}
	if !strings.Contains(out, `shard="0"`) {
		t.Fatalf("live shard missing from degraded merge:\n%s", out)
	}
	if strings.Contains(out, `shard="1"`) {
		t.Fatalf("dead shard's samples present:\n%s", out)
	}
	if got := rt.scrapeEr.Value(); got != 1 {
		t.Errorf("fleet.federate_errors = %d, want 1", got)
	}
}

// TestRouterSLOEndpoint: the router observes every session in its SLO
// monitor and serves /debug/slo.
func TestRouterSLOEndpoint(t *testing.T) {
	shards := startShards(t, 1)
	slo := obs.NewSLOMonitor(obs.SLOConfig{FullObjective: time.Hour})
	_, url := startRouter(t, shards, func(cfg *Config) { cfg.SLO = slo })
	post(t, url, map[string]any{"query": fleetQuery, "k": 3})

	resp, err := http.Get(url + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "sessions=1") {
		t.Fatalf("slo view: status %d body %q", resp.StatusCode, b)
	}
	if s := slo.Snapshot(); s.Sessions != 1 || s.FullViolations != 0 {
		t.Fatalf("slo snapshot = %+v", s)
	}
}

// TestRouterTailSampling: with tracing on and a generous SLO, healthy
// sessions are dropped from the export; errored sessions still export.
func TestRouterTailSampling(t *testing.T) {
	shards := startShards(t, 1)
	var exported syncBuffer
	slo := obs.NewSLOMonitor(obs.SLOConfig{FullObjective: time.Hour})
	_, url := startRouter(t, shards, func(cfg *Config) {
		cfg.TraceOut = &exported
		cfg.SLO = slo
	})
	post(t, url, map[string]any{"query": fleetQuery, "k": 3})
	if exported.String() != "" {
		t.Fatalf("healthy session exported despite tail sampling:\n%s", exported.String())
	}
	if s := slo.Snapshot(); s.Dropped != 1 {
		t.Fatalf("slo snapshot = %+v, want one dropped export", s)
	}

	post(t, url, map[string]any{"query": "nonsense ]["})
	traces, err := obs.ReadTraces(strings.NewReader(exported.String()))
	if err != nil || len(traces) != 1 || traces[0].Status != "error" {
		t.Fatalf("errored session not exported: %d traces, err %v", len(traces), err)
	}
}

// TestRelayDispatchAllocs: with tracing disabled the per-line relay
// dispatch — prefix tests plus the reused output buffer — must not
// allocate per line.
func TestRelayDispatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	line := []byte(`{"event":"plan","plan":"p(x) :- v1(x)","cost":12.5}`)
	out := make([]byte, 0, len(line)+1)
	allocs := testing.AllocsPerRun(1000, func() {
		if bytes.HasPrefix(line, answersPrefix) || bytes.HasPrefix(line, spansPrefix) ||
			bytes.HasPrefix(line, errorPrefix) {
			t.Fatal("plan line matched a dispatch prefix")
		}
		out = append(out[:0], line...)
		out = append(out, '\n')
	})
	if allocs != 0 {
		t.Fatalf("relay dispatch allocates %.1f per line, want 0", allocs)
	}
}

// benchScrape drives GET requests against a metrics endpoint.
func benchScrape(b *testing.B, url string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkShardScrape is the federation baseline: one shard rendering
// its own OpenMetrics exposition with no fan-out.
func BenchmarkShardScrape(b *testing.B) {
	shards := startShards(b, 1)
	benchScrape(b, shards[0]+"/metrics?format=openmetrics")
}

// BenchmarkFederatedScrape measures the router's federated view: one
// concurrent scrape per healthy shard plus parse, relabel, and merge.
func BenchmarkFederatedScrape(b *testing.B) {
	for _, n := range []int{1, 3} {
		b.Run(fmt.Sprintf("shards%d", n), func(b *testing.B) {
			_, url := startRouter(b, startShards(b, n), nil)
			benchScrape(b, url+"/metrics?format=openmetrics")
		})
	}
}

// TestFleetSweepShardBreakdown: a qpload-style sweep through the router
// reports per-shard deltas in the v2 FleetReport.
func TestFleetSweepShardBreakdown(t *testing.T) {
	shards := startShards(t, 2)
	_, url := startRouter(t, shards, nil)
	rep, err := server.RunFleetSweep(context.Background(), server.LoadConfig{
		BaseURL: url,
		Queries: []string{fleetQuery},
		K:       3, Measure: "chain", Requests: 4, Scatter: true,
	}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != server.FleetReportSchemaVersion || rep.SchemaVersion < 2 {
		t.Fatalf("schema_version = %d", rep.SchemaVersion)
	}
	if len(rep.Shards) != 2 {
		t.Fatalf("breakdown covers %d shards, want 2: %+v", len(rep.Shards), rep.Shards)
	}
	var sessions, answers int64
	for i, s := range rep.Shards {
		if s.Shard != i {
			t.Fatalf("shard index %d at position %d", s.Shard, i)
		}
		sessions += s.Sessions
		answers += s.Answers
		if s.Sessions > 0 && s.LatencyP50MS <= 0 {
			t.Fatalf("shard %d served sessions but has no latency: %+v", i, s)
		}
	}
	// Every scatter session opens one sub-stream per shard: 2 levels x 4
	// requests x 2 shards.
	if sessions != 16 {
		t.Fatalf("summed shard sessions = %d, want 16", sessions)
	}
	if answers <= 0 {
		t.Fatalf("summed shard answers = %d, want > 0", answers)
	}
}
