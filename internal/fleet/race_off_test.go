//go:build !race

package fleet

// raceEnabled reports whether the race detector instrumented this build;
// allocation-count tests skip under it (see race_on_test.go).
const raceEnabled = false
