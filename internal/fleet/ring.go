// Package fleet is the distributed serving tier over qpserved: a
// consistent-hash ring that routes queries to daemon shards for
// session-cache affinity, a stateless router that proxies /v1/query
// NDJSON streams (cmd/qprouter), a scatter-gather mode that partitions
// the PI plan space across shards and merges the per-shard streams back
// into the exact single-process order, and a health prober that takes
// draining or dead shards out of the ring with bounded-backoff rerouting.
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringSeed perturbs every vnode and key hash. It is a fixed constant —
// determinism across processes and runs is the point: a router restarted
// with the same shard set rebuilds the identical ring, so cache affinity
// survives router restarts.
const ringSeed = "qporder-fleet-v1|"

// Ring is an immutable consistent-hash ring over a set of nodes, each
// projected onto the hash circle as Replicas virtual nodes. Lookups are
// deterministic in (node set, replicas): the node order given at
// construction does not matter. Membership changes are handled by
// building a fresh Ring over the new set — cheap at fleet sizes, and it
// keeps the type trivially safe for concurrent readers.
type Ring struct {
	replicas int
	hashes   []uint64 // sorted vnode positions
	owners   []int    // owners[i] = node index of hashes[i]
	nodes    []string // sorted node set
}

// NewRing builds a ring over the given nodes with replicas virtual nodes
// each (replicas < 1 is clamped to 1; 64–128 keeps the key distribution
// within a few percent of even). Duplicate nodes collapse to one.
func NewRing(nodes []string, replicas int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{replicas: replicas, nodes: uniq}
	type vnode struct {
		h     uint64
		owner int
	}
	vns := make([]vnode, 0, len(uniq)*replicas)
	for i, n := range uniq {
		for v := 0; v < replicas; v++ {
			vns = append(vns, vnode{hash64(n + "#" + strconv.Itoa(v)), i})
		}
	}
	sort.Slice(vns, func(a, b int) bool {
		if vns[a].h != vns[b].h {
			return vns[a].h < vns[b].h
		}
		// A full 64-bit hash collision between distinct vnodes is
		// vanishingly rare; break it by owner so the sort — and hence
		// every lookup — stays deterministic anyway.
		return vns[a].owner < vns[b].owner
	})
	r.hashes = make([]uint64, len(vns))
	r.owners = make([]int, len(vns))
	for i, v := range vns {
		r.hashes[i] = v.h
		r.owners[i] = v.owner
	}
	return r
}

// hash64 is FNV-1a over the seeded key, passed through a 64-bit
// avalanche finalizer — stdlib-only and stable across platforms and
// runs. The finalizer matters: raw FNV-1a barely mixes a final-byte
// difference into the high bits, and ring position is ordered by high
// bits, so the "#0".."#63" vnode suffixes would clump each node's
// virtual nodes together on the circle instead of interleaving them.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(ringSeed + s))
	return fmix64(h.Sum64())
}

// fmix64 is the murmur3 finalizer: full avalanche, every input bit
// flips each output bit with ~1/2 probability.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Len returns the number of distinct nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the node set in sorted order. Callers must not mutate
// the returned slice.
func (r *Ring) Nodes() []string { return r.nodes }

// Lookup returns the node owning key: the first virtual node clockwise
// from the key's position. An empty ring returns "".
func (r *Ring) Lookup(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	return r.nodes[r.owners[r.at(key)]]
}

// Successors returns every distinct node in ring order starting at the
// key's owner — the retry sequence for "try the next ring node". An
// empty ring returns nil.
func (r *Ring) Successors(key string) []string {
	if len(r.hashes) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.nodes))
	seen := make(map[int]bool, len(r.nodes))
	for i, n := r.at(key), 0; n < len(r.hashes) && len(out) < len(r.nodes); i, n = (i+1)%len(r.hashes), n+1 {
		if o := r.owners[i]; !seen[o] {
			seen[o] = true
			out = append(out, r.nodes[o])
		}
	}
	return out
}

// at returns the index of the first vnode clockwise from key's hash.
func (r *Ring) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}
