//go:build race

package fleet

// raceEnabled reports whether the race detector instrumented this build.
const raceEnabled = true
