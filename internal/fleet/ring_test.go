package fleet

import (
	"fmt"
	"testing"
)

func keys1k() []string {
	out := make([]string, 1000)
	for i := range out {
		out[i] = fmt.Sprintf("Q%d(M, R) :- play-in(A, M), review-of(R, M)", i)
	}
	return out
}

// TestRingDeterminism: the ring is a pure function of the node set —
// construction order, duplicates, and repeated builds must not change
// any lookup.
func TestRingDeterminism(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	variants := [][]string{
		{"http://a:1", "http://b:2", "http://c:3", "http://d:4"},
		{"http://d:4", "http://c:3", "http://b:2", "http://a:1"},
		{"http://b:2", "http://a:1", "http://d:4", "http://c:3", "http://a:1"}, // dup collapses
	}
	base := NewRing(nodes, 64)
	for vi, v := range variants {
		r := NewRing(v, 64)
		if r.Len() != base.Len() {
			t.Fatalf("variant %d: %d nodes, want %d", vi, r.Len(), base.Len())
		}
		for _, k := range keys1k() {
			if got, want := r.Lookup(k), base.Lookup(k); got != want {
				t.Fatalf("variant %d: Lookup(%q) = %q, want %q", vi, k, got, want)
			}
		}
	}
}

// TestRingDistribution: with enough virtual nodes, 1k keys spread over
// the shards within a loose skew bound — no shard starves, none owns a
// majority it shouldn't. Table-driven over fleet shapes.
func TestRingDistribution(t *testing.T) {
	cases := []struct {
		nodes    int
		replicas int
		// minShare/maxShare bound each node's fraction of the 1k keys.
		minShare, maxShare float64
	}{
		{nodes: 2, replicas: 64, minShare: 0.30, maxShare: 0.70},
		{nodes: 3, replicas: 64, minShare: 0.15, maxShare: 0.55},
		{nodes: 5, replicas: 128, minShare: 0.10, maxShare: 0.35},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("n%d_r%d", tc.nodes, tc.replicas), func(t *testing.T) {
			nodes := make([]string, tc.nodes)
			for i := range nodes {
				nodes[i] = fmt.Sprintf("http://127.0.0.1:%d", 9000+i)
			}
			r := NewRing(nodes, tc.replicas)
			counts := map[string]int{}
			keys := keys1k()
			for _, k := range keys {
				counts[r.Lookup(k)]++
			}
			for _, n := range nodes {
				share := float64(counts[n]) / float64(len(keys))
				if share < tc.minShare || share > tc.maxShare {
					t.Errorf("node %s owns %.1f%% of keys, want within [%.0f%%, %.0f%%] (counts %v)",
						n, 100*share, 100*tc.minShare, 100*tc.maxShare, counts)
				}
			}
		})
	}
}

// TestRingMinimalRemapping: removing a node must remap only the keys it
// owned — every other key keeps its owner. This is the exact property
// consistent hashing buys over mod-N: it is what preserves the surviving
// shards' session caches when one shard leaves the ring.
func TestRingMinimalRemapping(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	full := NewRing(nodes, 64)
	keys := keys1k()
	for _, removed := range nodes {
		rest := make([]string, 0, len(nodes)-1)
		for _, n := range nodes {
			if n != removed {
				rest = append(rest, n)
			}
		}
		shrunk := NewRing(rest, 64)
		moved := 0
		for _, k := range keys {
			before := full.Lookup(k)
			after := shrunk.Lookup(k)
			if before == removed {
				moved++
				if after == removed {
					t.Fatalf("key %q still maps to removed node %s", k, removed)
				}
				continue
			}
			if after != before {
				t.Errorf("key %q moved %s -> %s though %s left the ring", k, before, after, removed)
			}
		}
		if moved == 0 {
			t.Errorf("node %s owned no keys out of %d", removed, len(keys))
		}
	}
}

// TestRingSuccessors: the retry walk starts at the owner, visits each
// node exactly once, and agrees with Lookup on the shrunken ring — the
// second successor is where a session lands after the owner dies.
func TestRingSuccessors(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := NewRing(nodes, 64)
	for _, k := range keys1k()[:100] {
		succ := r.Successors(k)
		if len(succ) != len(nodes) {
			t.Fatalf("Successors(%q) = %v, want all %d nodes", k, succ, len(nodes))
		}
		if succ[0] != r.Lookup(k) {
			t.Fatalf("Successors(%q)[0] = %q, Lookup = %q", k, succ[0], r.Lookup(k))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("Successors(%q) repeats %q: %v", k, s, succ)
			}
			seen[s] = true
		}
	}
}

// TestRingEmpty: lookups on an empty ring degrade, not panic.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 64)
	if got := r.Lookup("anything"); got != "" {
		t.Errorf("Lookup on empty ring = %q, want empty", got)
	}
	if got := r.Successors("anything"); got != nil {
		t.Errorf("Successors on empty ring = %v, want nil", got)
	}
}
