package fleet

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"
)

// shardState is one shard's health record inside the router.
type shardState struct {
	url  string
	up   bool
	slow int // consecutive probe timeouts (not definitive failures)
}

// prober polls every configured shard's /healthz and maintains the
// router's view of the fleet: the set of healthy shards and the ring
// built over them. A draining qpserved answers /healthz with 503, so a
// SIGTERM'd shard leaves the ring within one probe interval while its
// in-flight streams finish — the router stops routing new sessions to it
// before the daemon's listener closes. A shard that stops answering
// (killed, partitioned) is treated the same way.
//
// The prober is also told about failures the probe loop hasn't seen yet:
// the proxy path calls markDown on a connection error so the next
// session reroutes immediately instead of waiting out the interval.
type prober struct {
	client   *http.Client
	interval time.Duration
	timeout  time.Duration // per-probe deadline, decoupled from interval
	replicas int           // vnodes per shard for ring rebuilds

	mu     sync.Mutex
	shards []*shardState
	ring   *Ring
	onFlip func(url string, up bool) // called under mu; must not block

	stop chan struct{}
	done chan struct{}
}

// newProber builds the prober over the configured shard URLs; every
// shard starts up (optimistically — the first probe runs immediately and
// corrects the view before meaningful traffic in practice, and the proxy
// path handles a dead shard with an instant markDown anyway).
func newProber(urls []string, replicas int, client *http.Client, interval, timeout time.Duration, onFlip func(string, bool)) *prober {
	p := &prober{
		client:   client,
		interval: interval,
		timeout:  timeout,
		onFlip:   onFlip,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, u := range urls {
		p.shards = append(p.shards, &shardState{url: u, up: true})
	}
	p.replicas = replicas
	p.rebuild()
	return p
}

// run is the probe loop; call in a goroutine, stop with close().
func (p *prober) run() {
	defer close(p.done)
	p.probeAll()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

// close stops the probe loop and waits for it to quiesce.
func (p *prober) close() {
	close(p.stop)
	<-p.done
}

// probeAll checks every shard once, concurrently.
func (p *prober) probeAll() {
	p.mu.Lock()
	urls := make([]string, len(p.shards))
	for i, s := range p.shards {
		urls[i] = s.url
	}
	p.mu.Unlock()
	var wg sync.WaitGroup
	ups := make([]bool, len(urls))
	defs := make([]bool, len(urls))
	for i, u := range urls {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			ups[i], defs[i] = p.probe(u)
		}(i, u)
	}
	wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	changed := false
	for i, s := range p.shards {
		newUp := s.up
		switch {
		case ups[i]:
			s.slow = 0
			newUp = true
		case defs[i]:
			// A real answer (503 draining) or a refused connection is
			// definitive: flip immediately.
			s.slow = 0
			newUp = false
		default:
			// A timed-out probe is ambiguous — a shard saturated with
			// ordering work answers slowly without being gone. Require
			// two consecutive timeouts before taking it off the ring.
			s.slow++
			if s.slow >= 2 {
				newUp = false
			}
		}
		if s.up != newUp {
			s.up = newUp
			changed = true
			if p.onFlip != nil {
				p.onFlip(s.url, s.up)
			}
		}
	}
	if changed {
		p.rebuild()
	}
}

// probe checks one shard's /healthz. up reports a 200 answer;
// definitive reports whether the result is trustworthy (any HTTP
// response, or a hard connection error — as opposed to a timeout).
func (p *prober) probe(url string) (up, definitive bool) {
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false, true
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false, !errors.Is(err, context.DeadlineExceeded)
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK, true
}

// markDown records an observed failure (connection refused on a proxy
// attempt) without waiting for the next probe tick. The next probe can
// revive the shard.
func (p *prober) markDown(url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.shards {
		if s.url == url && s.up {
			s.up = false
			if p.onFlip != nil {
				p.onFlip(s.url, false)
			}
			p.rebuild()
			return
		}
	}
}

// all returns every configured shard URL regardless of health, the
// last-resort candidate set when the health view is empty.
func (p *prober) all() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.shards))
	for i, s := range p.shards {
		out[i] = s.url
	}
	return out
}

// healthy returns the healthy shard URLs in configured order.
func (p *prober) healthy() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.shards))
	for _, s := range p.shards {
		if s.up {
			out = append(out, s.url)
		}
	}
	return out
}

// view returns the current ring plus the up count.
func (p *prober) view() (*Ring, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, s := range p.shards {
		if s.up {
			n++
		}
	}
	return p.ring, n
}

// states returns a url -> up snapshot for /healthz rendering.
func (p *prober) states() map[string]bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]bool, len(p.shards))
	for _, s := range p.shards {
		out[s.url] = s.up
	}
	return out
}

// rebuild recomputes the ring from the healthy set. Caller holds mu.
func (p *prober) rebuild() {
	up := make([]string, 0, len(p.shards))
	for _, s := range p.shards {
		if s.up {
			up = append(up, s.url)
		}
	}
	p.ring = NewRing(up, p.replicas)
}
