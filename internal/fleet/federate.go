package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"qporder/internal/obs"
)

// This file is the router half of metrics federation: one scrape of the
// router's /metrics?format=openmetrics returns the whole fleet — the
// router's own fleet.* families plus every healthy shard's families
// re-labeled with shard="<configured index>". A Prometheus-compatible
// collector then needs exactly one target per fleet, and per-shard
// series stay distinguishable (and aggregatable) via the shard label.
//
// Unhealthy or failing shards are skipped, not fatal: a federated
// scrape degrades to the reachable subset, counted in
// fleet.federate_errors, rather than turning one dead shard into a
// fleet-wide metrics outage.

// writeFederated serves the merged OpenMetrics exposition.
func (rt *Router) writeFederated(w http.ResponseWriter, r *http.Request) {
	// Render the router's own registry through the same writer the
	// shards use and re-parse it, so local and scraped families go
	// through one merge path.
	var own bytes.Buffer
	if err := rt.cfg.Registry.WriteOpenMetrics(&own); err != nil {
		http.Error(w, "rendering local metrics: "+err.Error(), http.StatusInternalServerError)
		return
	}
	local, err := obs.ParseOpenMetrics(&own)
	if err != nil {
		http.Error(w, "parsing local metrics: "+err.Error(), http.StatusInternalServerError)
		return
	}

	healthy := make(map[string]bool)
	for _, u := range rt.prober.healthy() {
		healthy[u] = true
	}
	scraped := make([][]obs.OMFamily, len(rt.shards))
	var wg sync.WaitGroup
	for i, shard := range rt.shards {
		if !healthy[shard] {
			continue
		}
		wg.Add(1)
		go func(i int, shard string) {
			defer wg.Done()
			rt.scrapes.Inc()
			fams, err := rt.scrapeShard(r.Context(), shard)
			if err != nil {
				rt.scrapeEr.Inc()
				rt.say("fleet: federation scrape of %s failed: %v", shard, err)
				return
			}
			scraped[i] = fams
		}(i, shard)
	}
	wg.Wait()

	sources := make([]obs.LabeledExposition, 0, len(rt.shards)+1)
	sources = append(sources, obs.LabeledExposition{Families: local})
	for i, fams := range scraped {
		if fams == nil {
			continue
		}
		sources = append(sources, obs.LabeledExposition{
			Families: fams,
			Label:    [2]string{"shard", strconv.Itoa(i)},
		})
	}
	w.Header().Set("Content-Type", obs.OpenMetricsContentType)
	if _, err := obs.WriteMergedOpenMetrics(w, sources); err != nil {
		rt.say("fleet: writing federated metrics: %v", err)
	}
}

// scrapeShard fetches and parses one shard's OpenMetrics exposition,
// bounded by the health-probe timeout so a hung shard cannot stall the
// federated scrape indefinitely.
func (rt *Router) scrapeShard(ctx context.Context, shard string) ([]obs.OMFamily, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shard+"/metrics?format=openmetrics", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", obs.OpenMetricsContentType)
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("%s answered %d", shard, resp.StatusCode)
	}
	return obs.ParseOpenMetrics(resp.Body)
}
