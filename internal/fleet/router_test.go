package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"qporder/internal/lav"
	"qporder/internal/obs"
	"qporder/internal/schema"
	"qporder/internal/server"
)

// fleetCatalog is the movie catalog with three sources per bucket, so
// the fixture query has a 9-plan space — enough for a 3-way scatter to
// give every shard work.
func fleetCatalog(t testing.TB) *lav.Catalog {
	t.Helper()
	cat := lav.NewCatalog()
	stats := []lav.Stats{
		{Tuples: 50, TransmitCost: 1, Overhead: 10},
		{Tuples: 80, TransmitCost: 2, Overhead: 5},
		{Tuples: 30, TransmitCost: 1, Overhead: 20},
	}
	defs := []string{
		"V1(A, M) :- play-in(A, M), american(M)",
		"V2(A, M) :- play-in(A, M)",
		"V3(A, M) :- play-in(A, M)",
		"V4(R, M) :- review-of(R, M)",
		"V5(R, M) :- review-of(R, M)",
		"V6(R, M) :- review-of(R, M)",
	}
	for i, d := range defs {
		def := schema.MustParseQuery(d)
		cat.MustAdd(def.Name, def, stats[i%len(stats)])
	}
	return cat
}

const fleetQuery = "Q(M, R) :- play-in(A, M), review-of(R, M)"

// startShards boots n real qpserved cores on httptest listeners.
func startShards(t testing.TB, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := server.New(server.Config{Catalog: fleetCatalog(t), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// startRouter builds a Router over the given shards with fast test
// timings and serves it on an httptest listener.
func startRouter(t testing.TB, shards []string, mutate func(*Config)) (*Router, string) {
	t.Helper()
	cfg := Config{
		Shards:         shards,
		HealthInterval: 50 * time.Millisecond,
		Backoff:        time.Millisecond,
		Registry:       obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts.URL
}

// post sends a query request map and decodes the NDJSON stream.
func post(t *testing.T, url string, req map[string]any) (int, []server.Event) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []server.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e server.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, events
}

// planAndAnswerEvents strips a stream to its plan/answers subsequence —
// the part scatter-gather promises to reproduce byte-identically.
func planAndAnswerEvents(events []server.Event) []server.Event {
	var out []server.Event
	for _, e := range events {
		if e.Event == "plan" || e.Event == "answers" {
			e.TraceID = "" // session-scoped, not part of the contract
			out = append(out, e)
		}
	}
	return out
}

// TestProxyAffinity: a plain request through the router reaches exactly
// one shard and streams the same events a direct request would.
func TestProxyAffinity(t *testing.T) {
	shards := startShards(t, 3)
	rt, url := startRouter(t, shards, nil)
	status, events := post(t, url, map[string]any{"query": fleetQuery, "k": 10})
	if status != http.StatusOK {
		t.Fatalf("status %d: %+v", status, events)
	}
	if events[0].Event != "session" {
		t.Fatalf("first event %+v", events[0])
	}
	if last := events[len(events)-1]; last.Event != "done" {
		t.Fatalf("last event %+v", last)
	}
	if got := rt.proxied.Value(); got != 1 {
		t.Errorf("sessions_proxied = %d, want 1", got)
	}
	// The same query again must hit the same shard's session cache.
	_, events2 := post(t, url, map[string]any{"query": fleetQuery, "k": 10})
	if events2[0].Cache != "hit" {
		t.Errorf("second request cache = %q, want hit (affinity broken?)", events2[0].Cache)
	}
}

// TestProxyRetryFlakyShard: the ring owner refuses connections, so the
// router must mark it down, back off, and reroute to the next ring node
// with zero client-visible errors.
func TestProxyRetryFlakyShard(t *testing.T) {
	shards := startShards(t, 2)
	// A dead listener: reserve a port, then close it so connections fail.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	all := append([]string{deadURL}, shards...)
	rt, url := startRouter(t, all, nil)

	// Find a query whose ring owner is the dead shard, so the proxy path
	// must actually retry (the ring starts optimistically all-up).
	ring := NewRing(all, 64)
	query := ""
	for i := 0; i < 200; i++ {
		q := fmt.Sprintf("Q%d(M, R) :- play-in(A, M), review-of(R, M)", i)
		if k, err := schema.ParseQuery(q); err == nil && ring.Lookup(k.CanonicalKey()) == deadURL {
			query = q
			break
		}
	}
	if query == "" {
		t.Fatal("no probe query maps to the dead shard")
	}
	status, events := post(t, url, map[string]any{"query": query, "k": 5})
	if status != http.StatusOK {
		t.Fatalf("status %d: %+v", status, events)
	}
	if last := events[len(events)-1]; last.Event != "done" {
		t.Fatalf("last event %+v, want done", last)
	}
	if got := rt.rerouted.Value(); got != 1 {
		t.Errorf("sessions_rerouted = %d, want 1", got)
	}
	if got := rt.retried.Value(); got < 1 {
		t.Errorf("retries = %d, want >= 1", got)
	}
	// The markDown must stick: the dead shard is out of the healthy set.
	for _, h := range rt.prober.healthy() {
		if h == deadURL {
			t.Errorf("dead shard %s still in healthy set", deadURL)
		}
	}
}

// TestProxyBackoffOn503: a shard that answers 503 a few times before
// recovering exercises the bounded-backoff retry loop without touching
// the ring (503 means draining/overloaded, not dead). With a single
// shard every successor walk lands on it again, so success proves the
// router waited out the backoff rather than failing fast.
func TestProxyBackoffOn503(t *testing.T) {
	var calls atomic.Int64
	real := startShards(t, 1)[0]
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":{"code":"overloaded","message":"try later"}}`)
			return
		}
		// Recovered: proxy to a real shard core.
		resp, err := http.Post(real+r.URL.Path, "application/json", r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			fmt.Fprintln(w, sc.Text())
		}
	}))
	t.Cleanup(flaky.Close)

	rt, url := startRouter(t, []string{flaky.URL}, func(c *Config) { c.Retries = 3 })
	start := time.Now()
	status, events := post(t, url, map[string]any{"query": fleetQuery, "k": 3})
	if status != http.StatusOK {
		t.Fatalf("status %d: %+v", status, events)
	}
	if got := calls.Load(); got < 3 {
		t.Errorf("flaky shard saw %d query calls, want >= 3", got)
	}
	if got := rt.retried.Value(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	// Two backoffs at 1ms base: >= 1ms + 2ms.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("request finished in %v, backoff not applied", elapsed)
	}
}

// TestProxyExhaustedRetries: when every attempt fails the client gets a
// structured 503, not a hung or empty response.
func TestProxyExhaustedRetries(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	rt, url := startRouter(t, []string{deadURL}, nil)
	status, events := post(t, url, map[string]any{"query": fleetQuery})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", status)
	}
	if len(events) != 1 || events[0].Err == nil || events[0].Err.Code != CodeFleetUnavailable {
		t.Fatalf("body %+v, want a %s error", events, CodeFleetUnavailable)
	}
	if got := rt.rejected.Value(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestDrainAwareness: a shard answering /healthz with 503 leaves the
// ring within a probe interval; requests route around it.
func TestDrainAwareness(t *testing.T) {
	real := startShards(t, 1)[0]
	var draining atomic.Bool
	drainer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			if draining.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			w.WriteHeader(http.StatusOK)
			return
		}
		t.Errorf("drainer received %s %s after drain", r.Method, r.URL.Path)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(drainer.Close)

	rt, url := startRouter(t, []string{real, drainer.URL}, nil)
	draining.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if h := rt.prober.healthy(); len(h) == 1 && h[0] == real {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drainer never left the healthy set: %v", rt.prober.healthy())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Every request now lands on the real shard, whatever its ring key.
	for i := 0; i < 5; i++ {
		q := fmt.Sprintf("Q%d(M, R) :- play-in(A, M), review-of(R, M)", i)
		status, events := post(t, url, map[string]any{"query": q, "k": 2})
		if status != http.StatusOK {
			t.Fatalf("status %d: %+v", status, events)
		}
	}
}

// TestScatterParity is the core fleet guarantee: the gathered stream's
// plan and answers events are identical to a single process executing
// the same request — for any shard count, because per-shard streams are
// disjoint restrictions of one global order.
func TestScatterParity(t *testing.T) {
	single, err := server.New(server.Config{Catalog: fleetCatalog(t), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	direct := httptest.NewServer(single.Handler())
	t.Cleanup(direct.Close)

	for _, k := range []int{3, 6, 9, 20} {
		req := map[string]any{"query": fleetQuery, "k": k, "algorithm": "pi", "measure": "chain"}
		status, want := post(t, direct.URL, req)
		if status != http.StatusOK {
			t.Fatalf("direct status %d", status)
		}
		wantPA := planAndAnswerEvents(want)
		for _, n := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("k%d_shards%d", k, n), func(t *testing.T) {
				shards := startShards(t, n)
				rt, url := startRouter(t, shards, nil)
				sreq := map[string]any{"query": fleetQuery, "k": k, "measure": "chain", "scatter": true}
				status, got := post(t, url, sreq)
				if status != http.StatusOK {
					t.Fatalf("scatter status %d: %+v", status, got)
				}
				if got[0].Event != "session" || got[0].Shards != n {
					t.Fatalf("session event %+v, want shards=%d", got[0], n)
				}
				last := got[len(got)-1]
				if last.Event != "done" {
					t.Fatalf("last event %+v, want done", last)
				}
				gotPA := planAndAnswerEvents(got)
				if len(gotPA) != len(wantPA) {
					t.Fatalf("gathered %d plan/answers events, direct has %d\ngot:  %+v\nwant: %+v",
						len(gotPA), len(wantPA), gotPA, wantPA)
				}
				for i := range wantPA {
					g, _ := json.Marshal(gotPA[i])
					w, _ := json.Marshal(wantPA[i])
					if !bytes.Equal(g, w) {
						t.Errorf("event %d differs:\ngot:  %s\nwant: %s", i, g, w)
					}
				}
				if got := rt.scatters.Value(); got != 1 {
					t.Errorf("sessions_scatter = %d, want 1", got)
				}
			})
		}
	}
}

// TestScatterRejectsNonPI: scatter is a PI contract; the router rejects
// other algorithms before touching any shard.
func TestScatterRejectsNonPI(t *testing.T) {
	shards := startShards(t, 2)
	_, url := startRouter(t, shards, nil)
	status, events := post(t, url, map[string]any{"query": fleetQuery, "scatter": true, "algorithm": "streamer"})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
	if events[0].Err == nil || events[0].Err.Code != server.CodeInvalidShard {
		t.Fatalf("error %+v, want %s", events[0], server.CodeInvalidShard)
	}
}

// TestScatterRelaysShardRejection: a request the shards themselves
// reject (prefix-dependent measure) surfaces the shard's structured
// error through the router, not a generic fleet failure.
func TestScatterRelaysShardRejection(t *testing.T) {
	shards := startShards(t, 2)
	_, url := startRouter(t, shards, nil)
	status, events := post(t, url, map[string]any{
		"query": fleetQuery, "scatter": true, "measure": "chain-fail-caching",
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 relayed from shard: %+v", status, events)
	}
	if events[0].Err == nil || events[0].Err.Code != server.CodeInapplicable {
		t.Fatalf("error %+v, want relayed %s", events[0], server.CodeInapplicable)
	}
}

// TestClientShardFieldRejected: the shard assignment belongs to the
// router; clients presetting it get a 400.
func TestClientShardFieldRejected(t *testing.T) {
	shards := startShards(t, 1)
	_, url := startRouter(t, shards, nil)
	status, events := post(t, url, map[string]any{
		"query": fleetQuery, "shard": map[string]int{"index": 0, "count": 2},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %+v", status, events)
	}
}

// TestTraceparentForwarded: the client's traceparent reaches the shard,
// so the whole fleet hop joins one W3C trace.
func TestTraceparentForwarded(t *testing.T) {
	var seen atomic.Value
	real := startShards(t, 1)[0]
	spy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/query" {
			seen.Store(r.Header.Get("Traceparent"))
		}
		resp, err := http.Post(real+r.URL.Path, "application/json", r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			fmt.Fprintln(w, sc.Text())
		}
	}))
	t.Cleanup(spy.Close)

	_, url := startRouter(t, []string{spy.URL}, nil)
	const tp = "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	body, _ := json.Marshal(map[string]any{"query": fleetQuery, "k": 2})
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/query", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", tp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got, _ := seen.Load().(string); got != tp {
		t.Errorf("shard saw traceparent %q, want %q", got, tp)
	}
}

// TestRouterHealthz: the router's own health surface reports the fleet
// view and flips to 503 on drain.
func TestRouterHealthz(t *testing.T) {
	shards := startShards(t, 2)
	rt, url := startRouter(t, shards, nil)
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb struct {
		Status   string `json:"status"`
		ShardsUp int    `json:"shards_up"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hb.Status != "ok" || hb.ShardsUp != 2 {
		t.Fatalf("healthz %d %+v, want 200 ok with 2 shards", resp.StatusCode, hb)
	}
	rt.SetDraining(true)
	resp, err = http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz %d, want 503", resp.StatusCode)
	}
}

// TestRouterMetrics: the fleet instruments come out of all three
// exposition formats and pass the OpenMetrics name constraints.
func TestRouterMetrics(t *testing.T) {
	shards := startShards(t, 2)
	_, url := startRouter(t, shards, nil)
	_, _ = post(t, url, map[string]any{"query": fleetQuery, "k": 2})

	for _, tc := range []struct{ format, want string }{
		{"", "fleet.sessions_proxied"},
		{"?format=json", "fleet.sessions_proxied"},
		{"?format=openmetrics", "fleet_sessions_proxied"},
	} {
		resp, err := http.Get(url + "/metrics" + tc.format)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if !strings.Contains(buf.String(), tc.want) {
			t.Errorf("format %q exposition missing %q:\n%s", tc.format, tc.want, buf.String())
		}
	}
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"fleet.shards_up", "fleet.shard0.inflight", "fleet.shard1.inflight"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text exposition missing %q", want)
		}
	}
}
