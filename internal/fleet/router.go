package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qporder/internal/obs"
	"qporder/internal/parallel"
	"qporder/internal/schema"
	"qporder/internal/server"
)

// Config parameterizes a Router. Zero values take the documented
// defaults; Shards is the only required field.
type Config struct {
	// Shards is the base URL of every qpserved shard, e.g.
	// "http://127.0.0.1:8091". Required, at least one.
	Shards []string
	// Replicas is the number of virtual nodes per shard on the
	// consistent-hash ring (default 64).
	Replicas int
	// HealthInterval is the /healthz probe period (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds each probe attempt. It is decoupled from the
	// interval on purpose: a shard saturated with ordering work answers
	// probes slowly without being gone, and a timeout tighter than the
	// interval would empty the ring under load (default 2s, floored at
	// the interval).
	HealthTimeout time.Duration
	// Retries bounds how many distinct shards a session setup is
	// attempted on before the router gives up (default 3).
	Retries int
	// Backoff is the base sleep between retry attempts; it doubles per
	// attempt and is capped at one second (default 25ms).
	Backoff time.Duration
	// DefaultK mirrors the shards' default plan budget; the router needs
	// it to know where to cut a gathered scatter stream when the client
	// omits k (default 10).
	DefaultK int
	// Registry receives the fleet.* instruments; nil disables metrics.
	Registry *obs.Registry
	// Client issues shard requests and health probes. It must not have a
	// global timeout (plan streams are long-lived); per-probe deadlines
	// come from HealthTimeout. Default: a fresh http.Client.
	Client *http.Client
	// Logf, when set, receives operational log lines (reroutes, health
	// flips). Nil silences them.
	Logf func(format string, args ...any)
}

// Router is the stateless fleet front end: it owns no ordering state and
// no caches, only the health view and the ring. Every /v1/query request
// is either proxied whole to the shard owning the query's canonical key
// (session-cache affinity) or — with "scatter": true — split into
// plan-space slices across every healthy shard and gathered back into
// the canonical order. Kill a router and start another with the same
// -shards list: the ring is deterministic, so affinity is unchanged.
type Router struct {
	cfg      Config
	client   *http.Client
	prober   *prober
	mux      *http.ServeMux
	logf     func(string, ...any)
	draining atomic.Bool

	shardsUp *obs.Gauge
	inflight map[string]*obs.Gauge
	proxied  *obs.Counter // affinity sessions streamed
	scatters *obs.Counter // scatter sessions gathered
	rerouted *obs.Counter // sessions served by a non-owner shard
	retried  *obs.Counter // individual setup retries
	rejected *obs.Counter // client-visible fleet failures
	flips    *obs.Counter // health transitions observed
}

// New builds a Router and starts its health prober; call Close to stop
// it. The shard list is normalized (trailing slashes stripped) and must
// be non-empty.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("fleet: no shards configured")
	}
	shards := make([]string, 0, len(cfg.Shards))
	for _, s := range cfg.Shards {
		s = strings.TrimRight(strings.TrimSpace(s), "/")
		if s == "" {
			return nil, fmt.Errorf("fleet: empty shard URL")
		}
		shards = append(shards, s)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 64
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 2 * time.Second
	}
	if cfg.HealthTimeout < cfg.HealthInterval {
		cfg.HealthTimeout = cfg.HealthInterval
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	if cfg.DefaultK <= 0 {
		cfg.DefaultK = 10
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	rt := &Router{
		cfg:      cfg,
		client:   client,
		logf:     cfg.Logf,
		inflight: make(map[string]*obs.Gauge, len(shards)),
		shardsUp: cfg.Registry.Gauge("fleet.shards_up"),
		proxied:  cfg.Registry.Counter("fleet.sessions_proxied"),
		scatters: cfg.Registry.Counter("fleet.sessions_scatter"),
		rerouted: cfg.Registry.Counter("fleet.sessions_rerouted"),
		retried:  cfg.Registry.Counter("fleet.retries"),
		rejected: cfg.Registry.Counter("fleet.rejected"),
		flips:    cfg.Registry.Counter("fleet.probe_flips"),
	}
	for i, s := range shards {
		rt.inflight[s] = cfg.Registry.Gauge(fmt.Sprintf("fleet.shard%d.inflight", i))
	}
	rt.prober = newProber(shards, cfg.Replicas, client, cfg.HealthInterval, cfg.HealthTimeout, func(url string, up bool) {
		rt.flips.Inc()
		rt.say("fleet: shard %s -> up=%v", url, up)
	})
	if cfg.Registry != nil {
		cfg.Registry.AddCollector(func() {
			_, n := rt.prober.view()
			rt.shardsUp.Set(float64(n))
		})
	}
	go rt.prober.run()

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/query", rt.handleQuery)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the health prober. In-flight proxied streams are not
// interrupted; the caller drains them via http.Server.Shutdown.
func (rt *Router) Close() { rt.prober.close() }

// SetDraining flips the /healthz answer to 503 so upstream balancers
// stop sending new sessions during shutdown.
func (rt *Router) SetDraining(v bool) { rt.draining.Store(v) }

func (rt *Router) say(format string, args ...any) {
	if rt.logf != nil {
		rt.logf(format, args...)
	}
}

// routeProbe is the subset of the request the router itself inspects;
// the full body is forwarded (affinity) or rewritten per slice (scatter)
// without dropping fields the router doesn't know about.
type routeProbe struct {
	Query     string          `json:"query"`
	K         int             `json:"k"`
	Scatter   bool            `json:"scatter"`
	Algorithm string          `json:"algorithm"`
	Shard     json.RawMessage `json:"shard"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	states := rt.prober.states()
	up := 0
	for _, ok := range states {
		if ok {
			up++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	code := http.StatusOK
	status := "ok"
	if rt.draining.Load() {
		code = http.StatusServiceUnavailable
		status = "draining"
	} else if up == 0 {
		code = http.StatusServiceUnavailable
		status = "no_shards"
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": status, "shards_up": up, "shards": states,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := rt.cfg.Registry
	if reg == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		format = "openmetrics"
	}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	case "openmetrics":
		w.Header().Set("Content-Type", obs.OpenMetricsContentType)
		_ = reg.WriteOpenMetrics(w)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
	}
}

// writeError emits a non-streaming structured error, mirroring the
// shard error body shape so clients need one decoder.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]*server.ErrorBody{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// CodeFleetUnavailable is returned when no healthy shard could accept a
// session within the retry budget.
const CodeFleetUnavailable = "fleet_unavailable"

// CodeShardStream is returned when a scatter sub-stream fails before or
// during the gather.
const CodeShardStream = "shard_stream"

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, server.CodeBadJSON, "reading body: %v", err)
		return
	}
	var probe routeProbe
	if err := json.Unmarshal(body, &probe); err != nil {
		writeError(w, http.StatusBadRequest, server.CodeBadJSON, "decoding request: %v", err)
		return
	}
	if len(probe.Shard) > 0 && string(probe.Shard) != "null" {
		writeError(w, http.StatusBadRequest, server.CodeInvalidShard,
			"shard is assigned by the router; clients must not set it")
		return
	}
	if probe.Scatter {
		rt.scatterGather(w, r, body, probe)
		return
	}
	rt.proxy(w, r, body, probe)
}

// affinityKey maps the request to its ring position: the query's
// canonical key, so syntactic variants of the same query share a shard
// and hence its session cache. An unparsable query falls back to the
// raw text — the owning shard then reports the canonical parse error.
func affinityKey(query string) string {
	if q, err := schema.ParseQuery(query); err == nil {
		return q.CanonicalKey()
	}
	return query
}

// proxy streams a whole session from the shard owning the query's
// canonical key, walking the ring's successor sequence with bounded
// doubling backoff when the owner is unreachable or draining. Retries
// happen only before any response byte reaches the client — session
// setup is idempotent (the session cache makes a replayed setup a
// cache hit at worst), mid-stream failures are not replayed.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, body []byte, probe routeProbe) {
	ring, _ := rt.prober.view()
	cands := ring.Successors(affinityKey(probe.Query))
	if len(cands) == 0 {
		// The health view can be transiently wrong (every probe timed out
		// under load). Fall back to the full configured set and let the
		// per-attempt failures below decide — truly dead shards error out,
		// draining ones answer 503 themselves.
		cands = rt.prober.all()
	}
	if len(cands) == 0 {
		rt.rejected.Inc()
		writeError(w, http.StatusServiceUnavailable, CodeFleetUnavailable, "no healthy shards")
		return
	}
	attempts := rt.cfg.Retries
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			rt.retried.Inc()
			time.Sleep(backoffFor(rt.cfg.Backoff, i-1))
		}
		// Walk the successor sequence; wrap so a transient 503 on a
		// small fleet still gets the full retry budget.
		shard := cands[i%len(cands)]
		resp, err := rt.send(r, shard, body)
		if err != nil {
			// Connection-level failure: the shard is gone right now.
			// Tell the prober so the very next session routes around it.
			rt.prober.markDown(shard)
			rt.say("fleet: %s unreachable, rerouting: %v", shard, err)
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Draining or at MaxInflight: healthy but not accepting.
			resp.Body.Close()
			lastErr = fmt.Errorf("%s answered 503", shard)
			continue
		}
		if shard != cands[0] {
			rt.rerouted.Inc()
		}
		rt.relay(w, r, resp, shard)
		return
	}
	rt.rejected.Inc()
	writeError(w, http.StatusServiceUnavailable, CodeFleetUnavailable,
		"no shard accepted the session after %d attempts: %v", attempts, lastErr)
}

// send issues the shard sub-request, forwarding the client's traceparent
// so the shard joins the caller's trace.
func (rt *Router) send(r *http.Request, shard string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, shard+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := r.Header.Get("Traceparent"); tp != "" {
		req.Header.Set("Traceparent", tp)
	}
	return rt.client.Do(req)
}

// relay streams the shard response to the client, flushing per chunk so
// NDJSON lines arrive as the shard emits them.
func (rt *Router) relay(w http.ResponseWriter, r *http.Request, resp *http.Response, shard string) {
	defer resp.Body.Close()
	if g := rt.inflight[shard]; g != nil {
		g.Add(1)
		defer g.Add(-1)
	}
	rt.proxied.Inc()
	for _, h := range []string{"Content-Type", "Traceparent"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	fw := &flushWriter{w: w}
	if _, err := io.Copy(fw, resp.Body); err != nil {
		// Headers (and possibly bytes) are out: nothing to retry.
		rt.say("fleet: mid-stream copy from %s failed: %v", shard, err)
	}
}

// flushWriter flushes after every write so line-buffered shard output
// reaches the client without router-side batching.
type flushWriter struct{ w http.ResponseWriter }

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

// backoffFor doubles base per attempt, capped at one second.
func backoffFor(base time.Duration, attempt int) time.Duration {
	d := base << attempt
	if d > time.Second || d <= 0 {
		d = time.Second
	}
	return d
}

// scatterGather partitions the plan space across every healthy shard
// (residue classes of the deterministic enumeration order) and merges
// the per-shard streams back into the canonical (utility, plan key)
// order. For prefix-independent measures the gathered plan and answers
// events are byte-identical to a single qpserved executing the same
// request — see core.NewPISharded for the argument. The shard count is
// fixed at launch; a shard dying mid-gather fails the stream with an
// error event rather than silently dropping its slice of the plan space.
func (rt *Router) scatterGather(w http.ResponseWriter, r *http.Request, body []byte, probe routeProbe) {
	if probe.Algorithm != "" && probe.Algorithm != "pi" {
		writeError(w, http.StatusBadRequest, server.CodeInvalidShard,
			"scatter requires algorithm pi, got %q", probe.Algorithm)
		return
	}
	var fields map[string]any
	if err := json.Unmarshal(body, &fields); err != nil {
		writeError(w, http.StatusBadRequest, server.CodeBadJSON, "decoding request: %v", err)
		return
	}
	delete(fields, "scatter")
	if probe.Algorithm == "" {
		// The shard default is streamer; sharding is a PI contract.
		fields["algorithm"] = "pi"
	}
	shards := rt.prober.healthy()
	if len(shards) == 0 {
		// Same fallback as the affinity path: an all-timeouts probe round
		// must not reject sessions the shards would happily serve.
		shards = rt.prober.all()
	}
	n := len(shards)
	if n == 0 {
		rt.rejected.Inc()
		writeError(w, http.StatusServiceUnavailable, CodeFleetUnavailable, "no healthy shards")
		return
	}
	k := probe.K
	if k <= 0 {
		k = rt.cfg.DefaultK
	}

	start := time.Now()
	streams := make([]*shardStream, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		fields["shard"] = map[string]int{"index": i, "count": n}
		slice, err := json.Marshal(fields)
		if err != nil {
			writeError(w, http.StatusInternalServerError, server.CodeInternal, "encoding slice: %v", err)
			return
		}
		wg.Add(1)
		go func(i int, slice []byte) {
			defer wg.Done()
			streams[i], errs[i] = rt.openSlice(r, shards, i, slice)
		}(i, slice)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		for _, ss := range streams {
			if ss != nil {
				ss.close()
			}
		}
		rt.rejected.Inc()
		var se *sliceError
		if asSliceError(err, &se) && se.status != 0 && se.status != http.StatusServiceUnavailable {
			// A shard rejected the request itself (bad measure, parse
			// error, ...): relay its structured error verbatim.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(se.status)
			_, _ = w.Write(se.body)
			return
		}
		writeError(w, http.StatusServiceUnavailable, CodeFleetUnavailable, "scatter setup failed: %v", err)
		return
	}
	defer func() {
		for _, ss := range streams {
			ss.close()
		}
	}()

	// Prime every cursor before committing the response status: a shard
	// that accepts the request but errors immediately still produces a
	// clean non-200 for the client.
	for _, ss := range streams {
		wg.Add(1)
		go func(ss *shardStream) { defer wg.Done(); ss.advance() }(ss)
	}
	wg.Wait()
	for _, ss := range streams {
		if ss.err != nil {
			rt.rejected.Inc()
			writeError(w, http.StatusBadGateway, CodeShardStream, "%v", ss.err)
			return
		}
	}
	rt.scatters.Inc()

	w.Header().Set("Content-Type", "application/x-ndjson")
	if tp := streams[0].resp.Header.Get("Traceparent"); tp != "" {
		w.Header().Set("Traceparent", tp)
	}
	w.WriteHeader(http.StatusOK)
	emit := func(e server.Event) bool {
		line, err := json.Marshal(e)
		if err != nil {
			return false
		}
		fw := &flushWriter{w: w}
		_, err = fw.Write(append(line, '\n'))
		return err == nil
	}

	sess := server.Event{Event: "session", K: k, Shards: n}
	if s0 := streams[0].session; s0 != nil {
		sess.TraceID = s0.TraceID
		sess.Algorithm = s0.Algorithm
		sess.Measure = s0.Measure
		sess.PlanSpace = s0.PlanSpace
	}
	if !emit(sess) {
		return
	}

	st := newMergeState()
	for st.emitted < k {
		best := bestHead(streams)
		if best < 0 {
			break
		}
		g := streams[best].head
		streams[best].advance()
		if err := streams[best].err; err != nil {
			_ = emit(server.Event{Event: "error", Err: &server.ErrorBody{Code: CodeShardStream, Message: err.Error()}})
			return
		}
		plan, answers := st.take(g)
		if !emit(plan) {
			return
		}
		if answers != nil && !emit(*answers) {
			return
		}
	}
	stopped := "plans-exhausted"
	if st.emitted >= k {
		stopped = "max-plans"
	}
	_ = emit(server.Event{
		Event: "done", TraceID: sess.TraceID, Stopped: stopped,
		Plans: st.emitted, TotalAnswers: len(st.seen),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000.0,
	})
}

// bestHead picks the stream whose head comes first in the canonical
// output order; ties cannot occur (plan keys are unique across slices).
// The merge step is parallel.BestHead — the same contract the in-process
// parallel orderer uses to gather worker results deterministically.
func bestHead(streams []*shardStream) int {
	return parallel.BestHead(len(streams),
		func(i int) bool { return streams[i].head != nil },
		func(i, j int) bool { return betterGroup(streams[i].head, streams[j].head) })
}

// sliceError carries a shard's non-200 setup response for relaying.
type sliceError struct {
	status int
	body   []byte
	msg    string
}

func (e *sliceError) Error() string { return e.msg }

func asSliceError(err error, out **sliceError) bool {
	se, ok := err.(*sliceError)
	if ok {
		*out = se
	}
	return ok
}

func firstError(errs []error) error {
	// Prefer a definitive shard rejection over a transport error so the
	// client sees the most actionable failure.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var se *sliceError
		if asSliceError(err, &se) && se.status != http.StatusServiceUnavailable {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// openSlice opens slice i's sub-request, retrying on other shards with
// the same bounded backoff as the affinity path. A slice may land on a
// shard already serving another slice — shards are stateless with
// respect to the partition, only the (index, count) pair matters.
func (rt *Router) openSlice(r *http.Request, shards []string, i int, body []byte) (*shardStream, error) {
	var lastErr error
	for attempt := 0; attempt < rt.cfg.Retries; attempt++ {
		if attempt > 0 {
			rt.retried.Inc()
			time.Sleep(backoffFor(rt.cfg.Backoff, attempt-1))
		}
		shard := shards[(i+attempt)%len(shards)]
		ctx, cancel := context.WithCancel(r.Context())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, shard+"/v1/query", bytes.NewReader(body))
		if err != nil {
			cancel()
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if tp := r.Header.Get("Traceparent"); tp != "" {
			req.Header.Set("Traceparent", tp)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			cancel()
			rt.prober.markDown(shard)
			lastErr = fmt.Errorf("slice %d: %s unreachable: %v", i, shard, err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
			resp.Body.Close()
			cancel()
			lastErr = &sliceError{status: resp.StatusCode, body: b,
				msg: fmt.Sprintf("slice %d: %s answered %d: %s", i, shard, resp.StatusCode, strings.TrimSpace(string(b)))}
			if resp.StatusCode != http.StatusServiceUnavailable {
				// A definitive rejection will repeat on every shard; stop.
				return nil, lastErr
			}
			continue
		}
		return newShardStream(shard, resp, cancel), nil
	}
	return nil, lastErr
}
