package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qporder/internal/obs"
	"qporder/internal/parallel"
	"qporder/internal/schema"
	"qporder/internal/server"
)

// Config parameterizes a Router. Zero values take the documented
// defaults; Shards is the only required field.
type Config struct {
	// Shards is the base URL of every qpserved shard, e.g.
	// "http://127.0.0.1:8091". Required, at least one.
	Shards []string
	// Replicas is the number of virtual nodes per shard on the
	// consistent-hash ring (default 64).
	Replicas int
	// HealthInterval is the /healthz probe period (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds each probe attempt. It is decoupled from the
	// interval on purpose: a shard saturated with ordering work answers
	// probes slowly without being gone, and a timeout tighter than the
	// interval would empty the ring under load (default 2s, floored at
	// the interval).
	HealthTimeout time.Duration
	// Retries bounds how many distinct shards a session setup is
	// attempted on before the router gives up (default 3).
	Retries int
	// Backoff is the base sleep between retry attempts; it doubles per
	// attempt and is capped at one second (default 25ms).
	Backoff time.Duration
	// DefaultK mirrors the shards' default plan budget; the router needs
	// it to know where to cut a gathered scatter stream when the client
	// omits k (default 10).
	DefaultK int
	// Registry receives the fleet.* instruments; nil disables metrics.
	Registry *obs.Registry
	// Client issues shard requests and health probes. It must not have a
	// global timeout (plan streams are long-lived); per-probe deadlines
	// come from HealthTimeout. Default: a fresh http.Client.
	Client *http.Client
	// Logf, when set, receives operational log lines (reroutes, health
	// flips). Nil silences them.
	Logf func(format string, args ...any)
	// TraceOut, when non-nil, enables fleet-wide tracing: the router
	// runs its own request trace per session (admission, shard pick,
	// per-shard proxy, scatter merge), asks every shard for its span
	// tree via the spans trailer, and writes the unified export — the
	// router's snapshot plus each shard's, all under one W3C trace ID —
	// as NDJSON lines qptrace stitches. Writes are serialized.
	TraceOut io.Writer
	// SLO, when non-nil, observes every routed session's TTFA and full
	// latency against its objectives (served at GET /debug/slo,
	// burn-rate gauges on Registry) and tail-samples TraceOut: only
	// errored, objective-violating, or budget-burning sessions export.
	SLO *obs.SLOMonitor
}

// Router is the stateless fleet front end: it owns no ordering state and
// no caches, only the health view and the ring. Every /v1/query request
// is either proxied whole to the shard owning the query's canonical key
// (session-cache affinity) or — with "scatter": true — split into
// plan-space slices across every healthy shard and gathered back into
// the canonical order. Kill a router and start another with the same
// -shards list: the ring is deterministic, so affinity is unchanged.
type Router struct {
	cfg      Config
	client   *http.Client
	prober   *prober
	mux      *http.ServeMux
	logf     func(string, ...any)
	draining atomic.Bool
	shards   []string   // normalized configured order (federation label = index)
	traceMu  sync.Mutex // serializes TraceOut lines

	shardsUp *obs.Gauge
	inflight map[string]*obs.Gauge
	stats    map[string]*shardStats
	proxied  *obs.Counter // affinity sessions streamed
	scatters *obs.Counter // scatter sessions gathered
	rerouted *obs.Counter // sessions served by a non-owner shard
	retried  *obs.Counter // individual setup retries
	rejected *obs.Counter // client-visible fleet failures
	flips    *obs.Counter // health transitions observed
	scrapes  *obs.Counter // federation scrape attempts
	scrapeEr *obs.Counter // federation scrape failures
}

// shardStats is one shard's per-session skew accounting, indexed like
// the inflight gauges by the shard's configured position: sessions
// touched, answers it streamed (pre-dedup for scatter slices, so the
// counter measures the shard's own production), and the per-session
// latency the router observed.
type shardStats struct {
	sessions *obs.Counter
	answers  *obs.Counter
	latency  *obs.Histogram
}

// New builds a Router and starts its health prober; call Close to stop
// it. The shard list is normalized (trailing slashes stripped) and must
// be non-empty.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("fleet: no shards configured")
	}
	shards := make([]string, 0, len(cfg.Shards))
	for _, s := range cfg.Shards {
		s = strings.TrimRight(strings.TrimSpace(s), "/")
		if s == "" {
			return nil, fmt.Errorf("fleet: empty shard URL")
		}
		shards = append(shards, s)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 64
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 2 * time.Second
	}
	if cfg.HealthTimeout < cfg.HealthInterval {
		cfg.HealthTimeout = cfg.HealthInterval
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	if cfg.DefaultK <= 0 {
		cfg.DefaultK = 10
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	rt := &Router{
		cfg:      cfg,
		client:   client,
		logf:     cfg.Logf,
		shards:   shards,
		inflight: make(map[string]*obs.Gauge, len(shards)),
		stats:    make(map[string]*shardStats, len(shards)),
		shardsUp: cfg.Registry.Gauge("fleet.shards_up"),
		proxied:  cfg.Registry.Counter("fleet.sessions_proxied"),
		scatters: cfg.Registry.Counter("fleet.sessions_scatter"),
		rerouted: cfg.Registry.Counter("fleet.sessions_rerouted"),
		retried:  cfg.Registry.Counter("fleet.retries"),
		rejected: cfg.Registry.Counter("fleet.rejected"),
		flips:    cfg.Registry.Counter("fleet.probe_flips"),
		scrapes:  cfg.Registry.Counter("fleet.federate_scrapes"),
		scrapeEr: cfg.Registry.Counter("fleet.federate_errors"),
	}
	for i, s := range shards {
		rt.inflight[s] = cfg.Registry.Gauge(fmt.Sprintf("fleet.shard%d.inflight", i))
		rt.stats[s] = &shardStats{
			sessions: cfg.Registry.Counter(fmt.Sprintf("fleet.shard%d.sessions", i)),
			answers:  cfg.Registry.Counter(fmt.Sprintf("fleet.shard%d.answers", i)),
			latency:  cfg.Registry.Histogram(fmt.Sprintf("fleet.shard%d.latency_ns", i)),
		}
	}
	cfg.SLO.Bind(cfg.Registry) // no-op when no objectives are configured
	rt.prober = newProber(shards, cfg.Replicas, client, cfg.HealthInterval, cfg.HealthTimeout, func(url string, up bool) {
		rt.flips.Inc()
		rt.say("fleet: shard %s -> up=%v", url, up)
	})
	if cfg.Registry != nil {
		cfg.Registry.AddCollector(func() {
			_, n := rt.prober.view()
			rt.shardsUp.Set(float64(n))
		})
	}
	go rt.prober.run()

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/query", rt.handleQuery)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /debug/slo", rt.handleSLO)
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the health prober. In-flight proxied streams are not
// interrupted; the caller drains them via http.Server.Shutdown.
func (rt *Router) Close() { rt.prober.close() }

// SetDraining flips the /healthz answer to 503 so upstream balancers
// stop sending new sessions during shutdown.
func (rt *Router) SetDraining(v bool) { rt.draining.Store(v) }

func (rt *Router) say(format string, args ...any) {
	if rt.logf != nil {
		rt.logf(format, args...)
	}
}

// routeProbe is the subset of the request the router itself inspects;
// the full body is forwarded (affinity) or rewritten per slice (scatter)
// without dropping fields the router doesn't know about.
type routeProbe struct {
	Query     string          `json:"query"`
	K         int             `json:"k"`
	Scatter   bool            `json:"scatter"`
	Algorithm string          `json:"algorithm"`
	Shard     json.RawMessage `json:"shard"`
	// Spans records whether the client itself asked for the trailing
	// spans event. The router always asks its shards for spans when
	// tracing, but strips the trailers from the client stream unless the
	// client opted in too.
	Spans bool `json:"spans"`
}

// routeCtx carries one routed session's observability state across the
// proxy and scatter paths: the router's own trace (nil unless TraceOut
// is configured), the shard span snapshots harvested from spans
// trailers, and the latency figures the SLO monitor observes.
type routeCtx struct {
	tr        *obs.Trace
	start     time.Time
	ttfa      time.Duration // offset of the first answers event; 0 until one streams
	errored   bool
	wantSpans bool // the client itself requested spans trailers
	snaps     []obs.TraceSnapshot
}

// fail marks the session errored for SLO accounting and records the
// message on the router's trace.
func (rc *routeCtx) fail(format string, args ...any) {
	rc.errored = true
	if rc.tr != nil {
		rc.tr.SetError(fmt.Sprintf(format, args...))
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	states := rt.prober.states()
	up := 0
	for _, ok := range states {
		if ok {
			up++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	code := http.StatusOK
	status := "ok"
	if rt.draining.Load() {
		code = http.StatusServiceUnavailable
		status = "draining"
	} else if up == 0 {
		code = http.StatusServiceUnavailable
		status = "no_shards"
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": status, "shards_up": up, "shards": states,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := rt.cfg.Registry
	if reg == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		format = "openmetrics"
	}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	case "openmetrics":
		rt.writeFederated(w, r)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteText(w)
	}
}

// writeError emits a non-streaming structured error, mirroring the
// shard error body shape so clients need one decoder.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]*server.ErrorBody{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// CodeFleetUnavailable is returned when no healthy shard could accept a
// session within the retry budget.
const CodeFleetUnavailable = "fleet_unavailable"

// CodeShardStream is returned when a scatter sub-stream fails before or
// during the gather.
const CodeShardStream = "shard_stream"

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	rc := &routeCtx{start: time.Now()}
	if rt.cfg.TraceOut != nil {
		rc.tr = obs.StartRequestTrace("router /v1/query", r.Header.Get("Traceparent"))
		// The client joins the router's trace; the shard hops hang off it
		// below, all under the same trace ID.
		w.Header().Set("Traceparent", rc.tr.Traceparent())
	}
	defer rt.finishSession(rc)
	admit := rc.tr.StartSpan("router/admit")
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		admit.End()
		rc.fail("reading body: %v", err)
		writeError(w, http.StatusBadRequest, server.CodeBadJSON, "reading body: %v", err)
		return
	}
	var probe routeProbe
	if err := json.Unmarshal(body, &probe); err != nil {
		admit.End()
		rc.fail("decoding request: %v", err)
		writeError(w, http.StatusBadRequest, server.CodeBadJSON, "decoding request: %v", err)
		return
	}
	rc.wantSpans = probe.Spans
	if len(probe.Shard) > 0 && string(probe.Shard) != "null" {
		admit.End()
		rc.fail("client-set shard")
		writeError(w, http.StatusBadRequest, server.CodeInvalidShard,
			"shard is assigned by the router; clients must not set it")
		return
	}
	admit.End()
	if probe.Scatter {
		rt.scatterGather(w, r, body, probe, rc)
		return
	}
	rt.proxy(w, r, body, probe, rc)
}

// finishSession closes out one routed session's observability: the SLO
// monitor observes its latency, and — when tracing — the router's own
// snapshot plus every harvested shard snapshot are written to TraceOut
// as one NDJSON group under the session's trace ID, subject to tail
// sampling when an SLO monitor is configured.
func (rt *Router) finishSession(rc *routeCtx) {
	full := time.Since(rc.start)
	rt.cfg.SLO.Observe(rc.ttfa, full, rc.errored)
	if rc.tr == nil {
		return
	}
	snap := rc.tr.Finish()
	if rt.cfg.SLO != nil {
		if !rt.cfg.SLO.ShouldSample(rc.ttfa, full, rc.errored) {
			rt.cfg.SLO.MarkExport(false)
			return
		}
		rt.cfg.SLO.MarkExport(true)
	}
	rt.traceMu.Lock()
	defer rt.traceMu.Unlock()
	enc := json.NewEncoder(rt.cfg.TraceOut)
	if err := enc.Encode(snap); err != nil {
		rt.say("fleet: trace export failed: %v", err)
		return
	}
	for i := range rc.snaps {
		if err := enc.Encode(rc.snaps[i]); err != nil {
			rt.say("fleet: trace export failed: %v", err)
			return
		}
	}
}

// handleSLO serves the router's SLO burn-rate snapshot (text by
// default, ?format=json for machines).
func (rt *Router) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = rt.cfg.SLO.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = rt.cfg.SLO.WriteText(w)
}

// affinityKey maps the request to its ring position: the query's
// canonical key, so syntactic variants of the same query share a shard
// and hence its session cache. An unparsable query falls back to the
// raw text — the owning shard then reports the canonical parse error.
func affinityKey(query string) string {
	if q, err := schema.ParseQuery(query); err == nil {
		return q.CanonicalKey()
	}
	return query
}

// proxy streams a whole session from the shard owning the query's
// canonical key, walking the ring's successor sequence with bounded
// doubling backoff when the owner is unreachable or draining. Retries
// happen only before any response byte reaches the client — session
// setup is idempotent (the session cache makes a replayed setup a
// cache hit at worst), mid-stream failures are not replayed.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, body []byte, probe routeProbe, rc *routeCtx) {
	pick := rc.tr.StartSpan("router/pick")
	ring, _ := rt.prober.view()
	cands := ring.Successors(affinityKey(probe.Query))
	if len(cands) == 0 {
		// The health view can be transiently wrong (every probe timed out
		// under load). Fall back to the full configured set and let the
		// per-attempt failures below decide — truly dead shards error out,
		// draining ones answer 503 themselves.
		cands = rt.prober.all()
	}
	pick.End()
	if len(cands) == 0 {
		rt.rejected.Inc()
		rc.fail("no healthy shards")
		writeError(w, http.StatusServiceUnavailable, CodeFleetUnavailable, "no healthy shards")
		return
	}
	if rc.tr != nil && !probe.Spans {
		// Ask the shard for its span tree; the trailer is stripped from
		// the client stream in relay since the client didn't opt in.
		body = withSpans(body)
	}
	attempts := rt.cfg.Retries
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			rt.retried.Inc()
			time.Sleep(backoffFor(rt.cfg.Backoff, i-1))
		}
		// Walk the successor sequence; wrap so a transient 503 on a
		// small fleet still gets the full retry budget.
		shard := cands[i%len(cands)]
		span := rc.tr.StartSpan("router/proxy")
		span.Annotate(shard)
		resp, err := rt.send(r, shard, body, span.Traceparent())
		if err != nil {
			// Connection-level failure: the shard is gone right now.
			// Tell the prober so the very next session routes around it.
			span.End()
			rt.prober.markDown(shard)
			rt.say("fleet: %s unreachable, rerouting: %v", shard, err)
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Draining or at MaxInflight: healthy but not accepting.
			span.End()
			resp.Body.Close()
			lastErr = fmt.Errorf("%s answered 503", shard)
			continue
		}
		if shard != cands[0] {
			rt.rerouted.Inc()
		}
		rt.relay(w, resp, shard, rc)
		span.End()
		return
	}
	rt.rejected.Inc()
	rc.fail("no shard accepted after %d attempts", attempts)
	writeError(w, http.StatusServiceUnavailable, CodeFleetUnavailable,
		"no shard accepted the session after %d attempts: %v", attempts, lastErr)
}

// withSpans rewrites the request body with "spans": true so the shard
// appends its span-tree trailer. A body that fails to round-trip is
// forwarded unchanged — the session then simply exports without shard
// spans rather than failing.
func withSpans(body []byte) []byte {
	var fields map[string]any
	if err := json.Unmarshal(body, &fields); err != nil {
		return body
	}
	fields["spans"] = true
	b, err := json.Marshal(fields)
	if err != nil {
		return body
	}
	return b
}

// send issues the shard sub-request. When the router runs its own trace
// (tp non-empty) the sub-request carries the router span's traceparent,
// so the shard's trace hangs off that span while sharing the client's
// trace ID; otherwise the client's header is forwarded verbatim.
func (rt *Router) send(r *http.Request, shard string, body []byte, tp string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, shard+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tp == "" {
		tp = r.Header.Get("Traceparent")
	}
	if tp != "" {
		req.Header.Set("Traceparent", tp)
	}
	return rt.client.Do(req)
}

// relay streams the shard response to the client line by line, flushing
// per line so NDJSON arrives as the shard emits it. Along the way it
// notes the first answers event (TTFA), counts the shard's answers, and
// harvests spans trailers into the route context — forwarding them only
// when the client itself asked for spans.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, shard string, rc *routeCtx) {
	defer resp.Body.Close()
	if g := rt.inflight[shard]; g != nil {
		g.Add(1)
		defer g.Add(-1)
	}
	rt.proxied.Inc()
	if stats := rt.stats[shard]; stats != nil {
		stats.sessions.Inc()
		defer func() { stats.latency.ObserveSince(rc.start) }()
	}
	for _, h := range []string{"Content-Type", "Traceparent"} {
		if h == "Traceparent" && rc.tr != nil {
			continue // the client already has the router's traceparent
		}
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if resp.StatusCode != http.StatusOK {
		rc.fail("shard %s answered %d", shard, resp.StatusCode)
	}
	w.WriteHeader(resp.StatusCode)
	fw := &flushWriter{w: w}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []byte // reused per line; sc.Bytes must not be appended to
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case bytes.HasPrefix(line, answersPrefix):
			if rc.ttfa == 0 {
				rc.ttfa = time.Since(rc.start)
			}
			if stats := rt.stats[shard]; stats != nil {
				stats.answers.Add(int64(answerCount(line)))
			}
		case bytes.HasPrefix(line, spansPrefix):
			var e server.Event
			if json.Unmarshal(line, &e) == nil && e.Trace != nil {
				rc.snaps = append(rc.snaps, *e.Trace)
			}
			if !rc.wantSpans {
				continue
			}
		case bytes.HasPrefix(line, errorPrefix):
			rc.errored = true
		}
		out = append(append(out[:0], line...), '\n')
		if _, err := fw.Write(out); err != nil {
			// Headers (and possibly bytes) are out: nothing to retry.
			rt.say("fleet: mid-stream copy from %s failed: %v", shard, err)
			return
		}
	}
	if err := sc.Err(); err != nil {
		rt.say("fleet: mid-stream copy from %s failed: %v", shard, err)
	}
}

// Event prefixes the relay dispatches on. The shard writes events with
// json.Marshal on a struct whose first field is Event, so the prefix
// match is exact, not heuristic.
var (
	answersPrefix = []byte(`{"event":"answers"`)
	spansPrefix   = []byte(`{"event":"spans"`)
	errorPrefix   = []byte(`{"event":"error"`)
)

// answerCount extracts the answer count from an answers event line.
func answerCount(line []byte) int {
	var e struct {
		Answers []json.RawMessage `json:"answers"`
	}
	if json.Unmarshal(line, &e) != nil {
		return 0
	}
	return len(e.Answers)
}

// flushWriter flushes after every write so line-buffered shard output
// reaches the client without router-side batching.
type flushWriter struct{ w http.ResponseWriter }

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if fl, ok := f.w.(http.Flusher); ok {
		fl.Flush()
	}
	return n, err
}

// backoffFor doubles base per attempt, capped at one second.
func backoffFor(base time.Duration, attempt int) time.Duration {
	d := base << attempt
	if d > time.Second || d <= 0 {
		d = time.Second
	}
	return d
}

// scatterGather partitions the plan space across every healthy shard
// (residue classes of the deterministic enumeration order) and merges
// the per-shard streams back into the canonical (utility, plan key)
// order. For prefix-independent measures the gathered plan and answers
// events are byte-identical to a single qpserved executing the same
// request — see core.NewPISharded for the argument. The shard count is
// fixed at launch; a shard dying mid-gather fails the stream with an
// error event rather than silently dropping its slice of the plan space.
func (rt *Router) scatterGather(w http.ResponseWriter, r *http.Request, body []byte, probe routeProbe, rc *routeCtx) {
	if probe.Algorithm != "" && probe.Algorithm != "pi" {
		rc.fail("scatter with non-pi algorithm")
		writeError(w, http.StatusBadRequest, server.CodeInvalidShard,
			"scatter requires algorithm pi, got %q", probe.Algorithm)
		return
	}
	var fields map[string]any
	if err := json.Unmarshal(body, &fields); err != nil {
		rc.fail("decoding request: %v", err)
		writeError(w, http.StatusBadRequest, server.CodeBadJSON, "decoding request: %v", err)
		return
	}
	delete(fields, "scatter")
	if probe.Algorithm == "" {
		// The shard default is streamer; sharding is a PI contract.
		fields["algorithm"] = "pi"
	}
	if rc.tr != nil {
		// Every slice returns its span tree for the unified export; the
		// trailers stay out of the client stream unless the client opted
		// in via its own "spans": true (still set in fields).
		fields["spans"] = true
	}
	pick := rc.tr.StartSpan("router/pick")
	shards := rt.prober.healthy()
	if len(shards) == 0 {
		// Same fallback as the affinity path: an all-timeouts probe round
		// must not reject sessions the shards would happily serve.
		shards = rt.prober.all()
	}
	pick.End()
	n := len(shards)
	if n == 0 {
		rt.rejected.Inc()
		rc.fail("no healthy shards")
		writeError(w, http.StatusServiceUnavailable, CodeFleetUnavailable, "no healthy shards")
		return
	}
	k := probe.K
	if k <= 0 {
		k = rt.cfg.DefaultK
	}

	start := rc.start
	streams := make([]*shardStream, n)
	var sliceSpans []*obs.TraceSpan
	if rc.tr != nil {
		sliceSpans = make([]*obs.TraceSpan, n)
		for i := range sliceSpans {
			sliceSpans[i] = rc.tr.StartSpan(fmt.Sprintf("router/slice%d", i))
		}
	}
	endSlices := func() {
		for i, sp := range sliceSpans {
			if streams[i] != nil {
				sp.Annotate(streams[i].shard)
			}
			sp.End()
		}
		sliceSpans = nil
	}
	defer endSlices()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		fields["shard"] = map[string]int{"index": i, "count": n}
		slice, err := json.Marshal(fields)
		if err != nil {
			rc.fail("encoding slice: %v", err)
			writeError(w, http.StatusInternalServerError, server.CodeInternal, "encoding slice: %v", err)
			return
		}
		tp := ""
		if rc.tr != nil {
			tp = sliceSpans[i].Traceparent()
		}
		wg.Add(1)
		go func(i int, slice []byte, tp string) {
			defer wg.Done()
			streams[i], errs[i] = rt.openSlice(r, shards, i, slice, tp)
		}(i, slice, tp)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		for _, ss := range streams {
			if ss != nil {
				ss.close()
			}
		}
		rt.rejected.Inc()
		rc.fail("scatter setup failed: %v", err)
		var se *sliceError
		if asSliceError(err, &se) && se.status != 0 && se.status != http.StatusServiceUnavailable {
			// A shard rejected the request itself (bad measure, parse
			// error, ...): relay its structured error verbatim.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(se.status)
			_, _ = w.Write(se.body)
			return
		}
		writeError(w, http.StatusServiceUnavailable, CodeFleetUnavailable, "scatter setup failed: %v", err)
		return
	}
	defer func() {
		for _, ss := range streams {
			ss.close()
		}
	}()
	for _, ss := range streams {
		if stats := rt.stats[ss.shard]; stats != nil {
			stats.sessions.Inc()
			defer func(stats *shardStats) { stats.latency.ObserveSince(start) }(stats)
		}
	}

	// Prime every cursor before committing the response status: a shard
	// that accepts the request but errors immediately still produces a
	// clean non-200 for the client.
	for _, ss := range streams {
		wg.Add(1)
		go func(ss *shardStream) { defer wg.Done(); ss.advance() }(ss)
	}
	wg.Wait()
	for _, ss := range streams {
		if ss.err != nil {
			rt.rejected.Inc()
			rc.fail("shard stream: %v", ss.err)
			writeError(w, http.StatusBadGateway, CodeShardStream, "%v", ss.err)
			return
		}
	}
	rt.scatters.Inc()

	w.Header().Set("Content-Type", "application/x-ndjson")
	if rc.tr == nil {
		if tp := streams[0].resp.Header.Get("Traceparent"); tp != "" {
			w.Header().Set("Traceparent", tp)
		}
	}
	w.WriteHeader(http.StatusOK)
	emit := func(e server.Event) bool {
		line, err := json.Marshal(e)
		if err != nil {
			return false
		}
		fw := &flushWriter{w: w}
		_, err = fw.Write(append(line, '\n'))
		return err == nil
	}

	sess := server.Event{Event: "session", K: k, Shards: n}
	if s0 := streams[0].session; s0 != nil {
		sess.TraceID = s0.TraceID
		sess.Algorithm = s0.Algorithm
		sess.Measure = s0.Measure
		sess.PlanSpace = s0.PlanSpace
	}
	if !emit(sess) {
		return
	}

	merge := rc.tr.StartSpan("router/merge")
	st := newMergeState()
	for st.emitted < k {
		best := bestHead(streams)
		if best < 0 {
			break
		}
		g := streams[best].head
		if stats := rt.stats[streams[best].shard]; stats != nil && g.answers != nil {
			// Pre-dedup count: the shard's own production, so skew shows
			// even when the merge discards duplicates.
			stats.answers.Add(int64(len(g.answers.Answers)))
		}
		streams[best].advance()
		if err := streams[best].err; err != nil {
			merge.End()
			rc.fail("shard stream: %v", err)
			_ = emit(server.Event{Event: "error", Err: &server.ErrorBody{Code: CodeShardStream, Message: err.Error()}})
			return
		}
		plan, answers := st.take(g)
		if !emit(plan) {
			merge.End()
			return
		}
		if answers != nil {
			if rc.ttfa == 0 {
				rc.ttfa = time.Since(rc.start)
			}
			if !emit(*answers) {
				merge.End()
				return
			}
		}
	}
	merge.End()
	stopped := "plans-exhausted"
	if st.emitted >= k {
		stopped = "max-plans"
	}
	if !emit(server.Event{
		Event: "done", TraceID: sess.TraceID, Stopped: stopped,
		Plans: st.emitted, TotalAnswers: len(st.seen),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000.0,
	}) {
		return
	}

	if rc.tr == nil && !rc.wantSpans {
		return
	}
	// Drain the spans trailers: they ride after each slice's done event,
	// which the merge may not have consumed (a stream can still be
	// mid-plan when the k-th plan emits elsewhere). The drain closes the
	// slice spans first so the shard trees reparent onto completed spans.
	endSlices()
	drain := rc.tr.StartSpan("router/drain")
	for _, ss := range streams {
		rc.snaps = append(rc.snaps, ss.trailer()...)
	}
	drain.End()
	if rc.wantSpans {
		for i := range rc.snaps {
			// Label each trailer from its own snapshot: without router
			// tracing the shards run under separate trace IDs.
			_ = emit(server.Event{Event: "spans", TraceID: rc.snaps[i].TraceID.String(), Trace: &rc.snaps[i]})
		}
	}
}

// bestHead picks the stream whose head comes first in the canonical
// output order; ties cannot occur (plan keys are unique across slices).
// The merge step is parallel.BestHead — the same contract the in-process
// parallel orderer uses to gather worker results deterministically.
func bestHead(streams []*shardStream) int {
	return parallel.BestHead(len(streams),
		func(i int) bool { return streams[i].head != nil },
		func(i, j int) bool { return betterGroup(streams[i].head, streams[j].head) })
}

// sliceError carries a shard's non-200 setup response for relaying.
type sliceError struct {
	status int
	body   []byte
	msg    string
}

func (e *sliceError) Error() string { return e.msg }

func asSliceError(err error, out **sliceError) bool {
	se, ok := err.(*sliceError)
	if ok {
		*out = se
	}
	return ok
}

func firstError(errs []error) error {
	// Prefer a definitive shard rejection over a transport error so the
	// client sees the most actionable failure.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var se *sliceError
		if asSliceError(err, &se) && se.status != http.StatusServiceUnavailable {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// openSlice opens slice i's sub-request, retrying on other shards with
// the same bounded backoff as the affinity path. A slice may land on a
// shard already serving another slice — shards are stateless with
// respect to the partition, only the (index, count) pair matters. A
// non-empty tp (the router's per-slice span) replaces the client's
// traceparent so the shard trace reparents onto the router's span.
func (rt *Router) openSlice(r *http.Request, shards []string, i int, body []byte, tp string) (*shardStream, error) {
	var lastErr error
	for attempt := 0; attempt < rt.cfg.Retries; attempt++ {
		if attempt > 0 {
			rt.retried.Inc()
			time.Sleep(backoffFor(rt.cfg.Backoff, attempt-1))
		}
		shard := shards[(i+attempt)%len(shards)]
		ctx, cancel := context.WithCancel(r.Context())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, shard+"/v1/query", bytes.NewReader(body))
		if err != nil {
			cancel()
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		hdr := tp
		if hdr == "" {
			hdr = r.Header.Get("Traceparent")
		}
		if hdr != "" {
			req.Header.Set("Traceparent", hdr)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			cancel()
			rt.prober.markDown(shard)
			lastErr = fmt.Errorf("slice %d: %s unreachable: %v", i, shard, err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
			resp.Body.Close()
			cancel()
			lastErr = &sliceError{status: resp.StatusCode, body: b,
				msg: fmt.Sprintf("slice %d: %s answered %d: %s", i, shard, resp.StatusCode, strings.TrimSpace(string(b)))}
			if resp.StatusCode != http.StatusServiceUnavailable {
				// A definitive rejection will repeat on every shard; stop.
				return nil, lastErr
			}
			continue
		}
		return newShardStream(shard, resp, cancel), nil
	}
	return nil, lastErr
}
