package core

import (
	"testing"

	"qporder/internal/coverage"
	"qporder/internal/planspace"
	"qporder/internal/workload"
)

// TestSnapshotCacheParity asserts the snapshot-cache guarantee at the
// orderer level: for every algorithm, the coverage measure with the
// shared answer-set snapshot enabled emits byte-identical plans and
// utilities to the uncached oracle, and reports identical work counters
// (Evals and IndepStats) — at parallelism 1 and 8. The cache is a memo
// of the exact same arithmetic, not an approximation.
func TestSnapshotCacheParity(t *testing.T) {
	for _, cfg := range []workload.Config{
		{QueryLen: 2, BucketSize: 4, Universe: 256, Zones: 2, Seed: 11},
		{QueryLen: 3, BucketSize: 4, Universe: 512, Zones: 3, Seed: 12},
		{QueryLen: 3, BucketSize: 6, Universe: 512, Zones: 3, Seed: 13},
	} {
		d := workload.Generate(cfg)
		total := int(d.Space.Size())
		for _, workers := range []int{1, 8} {
			cachedOrds := orderers(d, coverage.NewMeasure(d.Coverage))
			oracleOrds := orderers(d, coverage.NewMeasureUncached(d.Coverage))
			for name := range cachedOrds {
				cached, oracle := cachedOrds[name], oracleOrds[name]
				SetParallelism(cached, workers)
				SetParallelism(oracle, workers)
				cPlans, cUtils := Take(cached, total)
				oPlans, oUtils := Take(oracle, total)
				if len(cPlans) != len(oPlans) {
					t.Errorf("cfg=%+v alg=%s workers=%d: cached emitted %d plans, uncached %d",
						cfg, name, workers, len(cPlans), len(oPlans))
					continue
				}
				for i := range cPlans {
					if cPlans[i].Key() != oPlans[i].Key() {
						t.Errorf("cfg=%+v alg=%s workers=%d: step %d plan %s, uncached %s",
							cfg, name, workers, i, cPlans[i].Key(), oPlans[i].Key())
						break
					}
					if cUtils[i] != oUtils[i] {
						t.Errorf("cfg=%+v alg=%s workers=%d: step %d utility %g, uncached %g",
							cfg, name, workers, i, cUtils[i], oUtils[i])
						break
					}
				}
				if ce, oe := cached.Context().Evals(), oracle.Context().Evals(); ce != oe {
					t.Errorf("cfg=%+v alg=%s workers=%d: cached Evals %d, uncached %d",
						cfg, name, workers, ce, oe)
				}
				cc, ch := cached.Context().IndepStats()
				oc, oh := oracle.Context().IndepStats()
				if cc != oc || ch != oh {
					t.Errorf("cfg=%+v alg=%s workers=%d: cached IndepStats (%d,%d), uncached (%d,%d)",
						cfg, name, workers, cc, ch, oc, oh)
				}
			}
		}
	}
}

// TestSnapshotSharedAcrossOrderers runs two orderers back to back over
// the same measure; the second run must be pure cache hits for every
// node and plan the first run materialized.
func TestSnapshotSharedAcrossOrderers(t *testing.T) {
	d := workload.Generate(workload.Config{QueryLen: 3, BucketSize: 4, Universe: 512, Zones: 3, Seed: 14})
	m := coverage.NewMeasure(d.Coverage)
	total := int(d.Space.Size())
	stats := func(o Orderer) (hits, misses, kernels int) {
		return o.Context().(interface {
			SnapshotStats() (int, int, int)
		}).SnapshotStats()
	}

	first := NewPI([]*planspace.Space{d.Space}, m)
	Take(first, total)
	_, miss0, _ := stats(first)
	if miss0 == 0 {
		t.Fatal("first run recorded no snapshot misses; cache not exercised")
	}

	second := NewPI([]*planspace.Space{d.Space}, m)
	Take(second, total)
	_, miss1, _ := stats(second)
	if miss1 != 0 {
		t.Errorf("second run recorded %d snapshot misses, want 0 (shared snapshot)", miss1)
	}
}
