package core

import (
	"qporder/internal/interval"
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/parallel"
	"qporder/internal/planspace"
)

// Parallel is implemented by orderers whose internal work — utility
// evaluation and dominance testing — can fan out to a bounded worker
// pool. Setting n <= 1 restores the sequential path (the default).
//
// The parallel path is deterministic: candidates fan out to workers and
// merge back in the canonical order, so for any n the orderer emits the
// exact plan sequence, utilities, and work counts of the sequential run
// (plan independence, Property 3 of the paper, is what licenses scoring
// candidates concurrently). Parallelism may be called between Next
// calls; calling it concurrently with Next is not safe.
type Parallel interface {
	Parallelism(n int)
}

// SetParallelism applies the worker-count knob when o supports it; other
// orderers (and n <= 0) are a no-op.
func SetParallelism(o Orderer, n int) {
	if p, ok := o.(Parallel); ok && n > 0 {
		p.Parallelism(n)
	}
}

// parcfg is the per-orderer parallelism state: the requested worker
// count and the lazily built evaluator. The zero value is the sequential
// configuration.
type parcfg struct {
	workers int
	reg     *obs.Registry
	ev      *parallel.Evaluator
}

// set records the worker count and drops any existing evaluator so it is
// rebuilt (re-forked from the current context) on next use.
func (p *parcfg) set(n int) {
	if n < 1 {
		n = 1
	}
	p.workers = n
	p.ev = nil
}

// bind records the registry for pool instrumentation; like set, it
// forces an evaluator rebuild so gauges attach to the live pool.
func (p *parcfg) bind(reg *obs.Registry) {
	p.reg = reg
	p.ev = nil
}

// evaluator returns the evaluator for the given main context, or nil in
// the sequential configuration.
func (p *parcfg) evaluator(ctx measure.Context, algo string) *parallel.Evaluator {
	if p.workers <= 1 {
		return nil
	}
	if p.ev == nil {
		pool := parallel.New(p.workers)
		pool.Bind(p.reg, "parallel."+algo)
		p.ev = parallel.NewEvaluator(pool, ctx)
	}
	return p.ev
}

// evalAll evaluates every plan through the evaluator when one is
// configured, via measure.EvaluateAll on ctx otherwise — either way a
// batch-capable context (coverage with its snapshot) scores the whole
// slice per kernel pass instead of plan by plan. Results are in input
// order.
func evalAll(ctx measure.Context, ev *parallel.Evaluator, plans []*planspace.Plan) []interval.Interval {
	out := make([]interval.Interval, len(plans))
	if ev == nil {
		measure.EvaluateAll(ctx, plans, out)
	} else {
		ev.EvalInto(plans, out)
	}
	return out
}
