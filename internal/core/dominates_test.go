package core

import (
	"testing"

	"qporder/internal/interval"
)

// TestDominates pins down the Drips dominance test (Lo(p) >= Hi(q),
// Section 5.1) and the acyclicity tie-break of DESIGN.md §3: identical
// point intervals defer to key order.
func TestDominates(t *testing.T) {
	iv := func(lo, hi float64) interval.Interval { return interval.Interval{Lo: lo, Hi: hi} }
	cases := []struct {
		name       string
		up, uq     interval.Interval
		keyP, keyQ string
		want       bool
	}{
		{"strict: Lo(p) > Hi(q)", iv(5, 9), iv(1, 4), "a", "b", true},
		{"disjoint below: Hi(p) < Lo(q)", iv(1, 4), iv(5, 9), "a", "b", false},
		{"overlap: Lo(p) < Hi(q)", iv(3, 8), iv(2, 5), "a", "b", false},
		{"boundary: Lo(p) == Hi(q), q not a point", iv(5, 9), iv(2, 5), "a", "b", true},
		{"boundary: Lo(p) == Hi(q), p a point above q's span", iv(5, 5), iv(2, 5), "a", "b", true},
		{"boundary: Lo(p) == Hi(q), q a point, p wider", iv(5, 9), iv(5, 5), "a", "b", true},
		{"identical points: smaller key wins", interval.Point(5), interval.Point(5), "a", "b", true},
		{"identical points: larger key loses", interval.Point(5), interval.Point(5), "b", "a", false},
		{"identical points: equal keys (self) never dominate", interval.Point(5), interval.Point(5), "a", "a", false},
		{"distinct points: higher dominates", interval.Point(7), interval.Point(5), "b", "a", true},
		{"distinct points: lower does not", interval.Point(5), interval.Point(7), "a", "b", false},
		{"identical non-point intervals", iv(2, 6), iv(2, 6), "a", "b", false},
		{"zero-width boundary touch: Lo==Hi both sides but not points", iv(4, 8), iv(0, 4), "a", "b", true},
	}
	for _, tc := range cases {
		if got := dominates(tc.up, tc.uq, tc.keyP, tc.keyQ); got != tc.want {
			t.Errorf("%s: dominates(%v, %v, %q, %q) = %v, want %v",
				tc.name, tc.up, tc.uq, tc.keyP, tc.keyQ, got, tc.want)
		}
	}
}

// TestDominatesAntisymmetric checks that dominance is antisymmetric for
// distinct plans across interval shapes, the property that keeps the
// Streamer dominance graph acyclic.
func TestDominatesAntisymmetric(t *testing.T) {
	ivs := []interval.Interval{
		{Lo: 1, Hi: 4}, {Lo: 4, Hi: 4}, {Lo: 4, Hi: 7}, {Lo: 5, Hi: 5}, {Lo: 2, Hi: 6},
	}
	for _, up := range ivs {
		for _, uq := range ivs {
			if dominates(up, uq, "p", "q") && dominates(uq, up, "q", "p") {
				t.Errorf("dominates is symmetric on %v vs %v", up, uq)
			}
		}
	}
}
