package core

import (
	"math"
	"testing"

	"qporder/internal/abstraction"
	"qporder/internal/costmodel"
	"qporder/internal/obs"
	"qporder/internal/planspace"
	"qporder/internal/workload"
)

// provDomain is the fixture for the provenance tests. Linear cost is
// both fully monotonic and diminishing-returns, so Greedy, iDrips, and
// Streamer are all applicable and must produce the same canonical order.
func provDomain(t *testing.T) (*workload.Domain, []*planspace.Space, *costmodel.LinearCost) {
	t.Helper()
	d := workload.Generate(workload.Config{QueryLen: 2, BucketSize: 3, Universe: 128, Seed: 7})
	return d, []*planspace.Space{d.Space}, costmodel.NewLinearCost(d.Catalog)
}

// tracedOrderers builds the three explain-relevant orderers for the
// parity test, keyed by the Algo label their provenance must carry.
func tracedOrderers(t *testing.T, d *workload.Domain, spaces []*planspace.Space, m *costmodel.LinearCost) map[string]Orderer {
	t.Helper()
	heur := abstraction.ByKey("cov-sim", d.SimilarityKey)
	g, err := NewGreedy(spaces, m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamer(spaces, m, heur)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Orderer{
		"greedy":   g,
		"idrips":   NewIDrips(spaces, m, heur),
		"streamer": s,
	}
}

// TestProvenanceParityAcrossOrderers is the explain-correctness gate:
// Greedy, iDrips, and Streamer emit the same plan prefix under linear
// cost, and their explain events agree on the utility at selection.
// Every emitted plan must have exactly one provenance record whose
// recorded utility matches the Next return, and the per-plan eval
// deltas must sum to the context's total eval count.
func TestProvenanceParityAcrossOrderers(t *testing.T) {
	d, spaces, m := provDomain(t)
	k := int(d.Space.Size())
	type run struct {
		keys  []string
		utils []float64
		prov  []obs.PlanProvenance
	}
	runs := map[string]run{}
	for name, o := range tracedOrderers(t, d, spaces, m) {
		tr := obs.NewTrace("test/" + name)
		SetTrace(o, tr)
		evalsAtBind := o.Context().Evals()
		plans, utils := Take(o, k)
		if len(plans) != k {
			t.Fatalf("alg=%s emitted %d plans, want %d", name, len(plans), k)
		}
		prov := tr.Plans()
		if len(prov) != len(plans) {
			t.Fatalf("alg=%s: %d provenance records for %d emitted plans", name, len(prov), len(plans))
		}
		var evalSum int64
		keys := make([]string, len(plans))
		for i, p := range prov {
			keys[i] = plans[i].Key()
			if p.Index != i {
				t.Fatalf("alg=%s: record %d has index %d", name, i, p.Index)
			}
			if p.Algo != name {
				t.Fatalf("alg=%s: record %d labeled %q", name, i, p.Algo)
			}
			if p.Plan != plans[i].Key() {
				t.Fatalf("alg=%s: record %d is for plan %s, emitted %s", name, i, p.Plan, plans[i].Key())
			}
			if p.Utility != utils[i] {
				t.Fatalf("alg=%s: record %d utility %g, Next returned %g", name, i, p.Utility, utils[i])
			}
			if p.DomWon < 0 || p.DomLost < 0 || p.Refinements < 0 || p.Splits < 0 || p.Evals < 0 {
				t.Fatalf("alg=%s: record %d has negative work: %+v", name, i, p)
			}
			evalSum += p.Evals
		}
		if want := int64(o.Context().Evals() - evalsAtBind); evalSum != want {
			t.Fatalf("alg=%s: per-plan eval deltas sum to %d, context counted %d", name, evalSum, want)
		}
		runs[name] = run{keys: keys, utils: utils, prov: prov}
	}
	base := runs["greedy"]
	for _, name := range []string{"idrips", "streamer"} {
		r := runs[name]
		for i := range base.keys {
			if math.Abs(r.utils[i]-base.utils[i]) > 1e-9 {
				t.Fatalf("position %d: %s selected utility %g, greedy %g", i, name, r.utils[i], base.utils[i])
			}
			if r.keys[i] != base.keys[i] {
				t.Fatalf("position %d: %s emitted %s, greedy %s", i, name, r.keys[i], base.keys[i])
			}
		}
	}
}

// TestProvenanceSurvivesInstrument guards the binding order: Instrument
// rebuilds the counters struct, which must re-attach the provenance
// accumulator rather than silently dropping it.
func TestProvenanceSurvivesInstrument(t *testing.T) {
	d, spaces, m := provDomain(t)
	for name, o := range tracedOrderers(t, d, spaces, m) {
		tr := obs.NewTrace("test")
		SetTrace(o, tr)
		Instrument(o, obs.NewRegistry()) // after SetTrace, the hostile order
		plans, _ := Take(o, 3)
		prov := tr.Plans()
		if len(prov) != len(plans) {
			t.Errorf("alg=%s: %d records after Instrument, want %d", name, len(prov), len(plans))
			continue
		}
		var work int64
		for _, p := range prov {
			work += p.DomWon + p.DomLost + p.Refinements + p.Splits + p.Evals
		}
		if work == 0 {
			t.Errorf("alg=%s: provenance records carry no work at all; the accumulator was dropped", name)
		}
	}
}

// TestProvenanceIndexContinuesAcrossRebind mirrors the mediator's
// adaptive reorder: a fresh orderer bound to a trace that already holds
// plans must continue the plan index, not restart at zero.
func TestProvenanceIndexContinuesAcrossRebind(t *testing.T) {
	_, spaces, m := provDomain(t)
	tr := obs.NewTrace("test")
	first, err := NewGreedy(spaces, m)
	if err != nil {
		t.Fatal(err)
	}
	SetTrace(first, tr)
	Take(first, 3)
	second, err := NewGreedy(spaces, m)
	if err != nil {
		t.Fatal(err)
	}
	SetTrace(second, tr)
	Take(second, 2)
	prov := tr.Plans()
	if len(prov) != 5 {
		t.Fatalf("%d records, want 5", len(prov))
	}
	for i, p := range prov {
		if p.Index != i {
			t.Fatalf("record %d has index %d; the rebuilt orderer restarted the numbering", i, p.Index)
		}
	}
}

// TestDetachedTraceRecordsNothing: SetTrace(nil) is the disabled state.
func TestDetachedTraceRecordsNothing(t *testing.T) {
	d, spaces, m := provDomain(t)
	tr := obs.NewTrace("test")
	for name, o := range tracedOrderers(t, d, spaces, m) {
		SetTrace(o, tr)
		SetTrace(o, nil)
		Take(o, 3)
		if n := tr.PlanCount(); n != 0 {
			t.Errorf("alg=%s: detached orderer recorded %d plans", name, n)
		}
	}
}

// TestDisabledProvenanceAllocs proves the per-event provenance hooks on
// the ordering hot path are free when no trace is bound: the zero
// counters/traceState (the seed's state) must allocate nothing.
func TestDisabledProvenanceAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	var cs counters
	var ts traceState
	allocs := testing.AllocsPerRun(1000, func() {
		cs.domTest(true)
		cs.domTest(false)
		cs.refine()
		cs.split()
		ts.emitPlan("greedy", nil, 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("disabled provenance path allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkProvenanceTracing measures the cost of the request-scoped
// provenance recording on a full drain: disabled (no trace bound, the
// production default) vs enabled (one trace per drain, the explain
// path). The EXPERIMENTS.md "Tracing overhead" entry cites this.
func BenchmarkProvenanceTracing(b *testing.B) {
	d := workload.Generate(workload.Config{QueryLen: 3, BucketSize: 6, Universe: 512, Zones: 3, Seed: 3})
	m := costmodel.NewLinearCost(d.Catalog)
	spaces := []*planspace.Space{d.Space}
	total := int(d.Space.Size())
	for _, traced := range []bool{false, true} {
		name := "disabled"
		if traced {
			name = "enabled"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o, err := NewGreedy(spaces, m)
				if err != nil {
					b.Fatal(err)
				}
				if traced {
					SetTrace(o, obs.NewTrace("bench"))
				}
				Take(o, total)
			}
		})
	}
}

// TestDisabledTracingAllocIdentical: an orderer that was never traced
// and one explicitly detached with SetTrace(nil) must allocate exactly
// the same draining the whole space — tracing off is free.
func TestDisabledTracingAllocIdentical(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	d, spaces, m := provDomain(t)
	total := int(d.Space.Size())
	drain := func(detach bool) float64 {
		return testing.AllocsPerRun(5, func() {
			o, err := NewGreedy(spaces, m)
			if err != nil {
				panic(err)
			}
			if detach {
				SetTrace(o, nil)
			}
			Take(o, total)
		})
	}
	base := drain(false)
	if got := drain(true); got != base {
		t.Fatalf("detached tracing changed allocations: %.1f vs %.1f per drain", got, base)
	}
}
