// Package core implements the paper's plan-ordering algorithms:
//
//   - Greedy (Section 4) for fully monotonic utility measures;
//   - Drips (Section 5.1), the abstraction-based best-plan finder;
//   - iDrips (Section 5.2), iterated Drips with plan-space splitting;
//   - Streamer (Figure 5), abstract-once ordering with a dominance graph;
//   - PI, the plan-independence-aware brute-force baseline of Section 6;
//   - Exhaustive, the naive reference used by correctness tests.
//
// All algorithms solve Definition 2.1: produce concrete plans in exactly
// decreasing order of conditional utility u(p | p1..pi-1, Q), incrementally
// via Next(), without materializing the full Cartesian product where the
// algorithm permits.
package core

import (
	"qporder/internal/interval"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// Orderer produces the plan ordering incrementally.
type Orderer interface {
	// Next returns the next best concrete plan and its utility at
	// selection time (conditioned on all previously returned plans), or
	// ok=false when the plan space is exhausted.
	Next() (p *planspace.Plan, utility float64, ok bool)

	// Context exposes the measure context for instrumentation (evaluation
	// counts, executed prefix).
	Context() measure.Context
}

// Take drains up to k plans from an orderer, returning the plans and
// their utilities. It stops at the first Next that reports exhaustion
// and never calls Next again afterwards; that final unproductive call is
// recorded by the orderer's "core.<algo>.next_exhausted" counter when
// the orderer is instrumented (see Instrument).
func Take(o Orderer, k int) ([]*planspace.Plan, []float64) {
	plans := make([]*planspace.Plan, 0, k)
	utils := make([]float64, 0, k)
	for len(plans) < k {
		p, u, ok := o.Next()
		if !ok {
			break
		}
		plans = append(plans, p)
		utils = append(utils, u)
	}
	return plans, utils
}

// better reports whether (ua, keyA) precedes (ub, keyB) in the canonical
// output order: higher utility first, then lexicographic plan key for
// deterministic tie-breaking.
func better(ua float64, keyA string, ub float64, keyB string) bool {
	if ua != ub {
		return ua > ub
	}
	return keyA < keyB
}

// betterPlan is better with the plan keys taken lazily: utilities are
// compared first and the keys — whose first build materializes a string —
// are only touched on an exact tie. Selection loops compare every
// candidate pair, so eagerly passing p.Key() to better would build keys
// for the whole candidate set even when no tie ever happens.
func betterPlan(ua float64, pa *planspace.Plan, ub float64, pb *planspace.Plan) bool {
	if ua != ub {
		return ua > ub
	}
	return pa.Key() < pb.Key()
}

// dominates implements the Drips dominance test with the tie-break that
// keeps the relation acyclic: p dominates q when Lo(p) >= Hi(q), except
// that identical point intervals defer to key order (DESIGN.md §3).
func dominates(up, uq interval.Interval, keyP, keyQ string) bool {
	if up.Lo > uq.Hi {
		return true
	}
	if up.Lo == uq.Hi {
		if uq.Lo == up.Hi { // identical point intervals
			return keyP < keyQ
		}
		return true
	}
	return false
}

// dominatesPlan is dominates with the plan keys taken lazily, for the
// same reason as betterPlan: the keys only matter for identical point
// intervals, which are rare in a dominance sweep.
func dominatesPlan(up, uq interval.Interval, p, q *planspace.Plan) bool {
	if up.Lo > uq.Hi {
		return true
	}
	if up.Lo == uq.Hi {
		if uq.Lo == up.Hi { // identical point intervals
			return p.Key() < q.Key()
		}
		return true
	}
	return false
}
