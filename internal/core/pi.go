package core

import (
	"qporder/internal/interval"
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/parallel"
	"qporder/internal/planspace"
)

// PI is the best brute-force baseline of Section 6: it computes the exact
// ordering but uses plan-independence information to recompute, after
// each output, only the utilities of plans that may have changed. All
// other cached utilities remain valid.
//
// With Parallelism(n), the plan space is sharded across n workers: the
// initial full evaluation, the per-output selection (each shard's best
// streams into a deterministic k-way merge), and the post-output
// recompute sweep all fan out. Output is identical to the sequential
// run for every n.
type PI struct {
	ctx     measure.Context
	plans   []*planspace.Plan
	utils   []float64
	alive   []bool
	nAlive  int
	started bool
	c       counters
	par     parcfg
	trace   traceState

	// Reusable sweep buffers: the frontier of plans pending re-evaluation
	// after an output, their indices, the interval results, and the
	// per-plan independence verdicts the bulk sweep writes. Keeping them
	// on the orderer makes the steady-state Next loop allocation-free.
	pending []*planspace.Plan
	pendIdx []int
	ivals   []interval.Interval
	indep   []bool
}

// NewPI builds the orderer over the concrete plans of the given spaces.
func NewPI(spaces []*planspace.Space, m measure.Measure) *PI {
	return NewPISharded(spaces, m, 0, 1)
}

// NewPISharded builds the orderer over one slice of the plan space: the
// plans whose position in the deterministic enumeration order is
// congruent to index mod count. This is the cross-process analogue of the
// in-process shard split Parallelism(n) applies: every shard enumerates
// the same global order and keeps a disjoint residue class, so the union
// of the shards is exactly the full space and no plan is ordered twice.
//
// For measures with prefix-independent utilities (measure.
// IsPrefixIndependent), each shard's Next sequence is the global Next
// sequence restricted to its slice; merging shard streams by (utility,
// plan key) — the betterPlan order — reproduces the unsharded sequence
// byte-for-byte. That invariant is what lets a router scatter one query
// across a fleet of daemons and gather a stream identical to a single
// process, for any shard count. The caller is responsible for checking
// the measure; sharding a prefix-dependent measure silently diverges.
func NewPISharded(spaces []*planspace.Space, m measure.Measure, index, count int) *PI {
	if count < 1 || index < 0 || index >= count {
		panic("core: NewPISharded wants 0 <= index < count")
	}
	var plans []*planspace.Plan
	if count == 1 && len(spaces) == 1 {
		// The whole-space single-shard shape shares the space's memoized
		// enumeration directly: PI only reads the slice, and skipping the
		// copy keeps repeated orderer construction over one catalog from
		// re-allocating (and re-GC-scanning) a pointer-dense clone.
		plans = spaces[0].Enumerate()
	} else {
		pos := 0
		for _, s := range spaces {
			for _, p := range s.Enumerate() {
				if pos%count == index {
					plans = append(plans, p)
				}
				pos++
			}
		}
	}
	return &PI{
		ctx:    m.NewContext(),
		plans:  plans,
		utils:  make([]float64, len(plans)),
		alive:  make([]bool, len(plans)),
		nAlive: len(plans),
	}
}

// Context implements Orderer.
func (pi *PI) Context() measure.Context { return pi.ctx }

// Instrument implements Instrumented.
func (pi *PI) Instrument(reg *obs.Registry) {
	pi.c = newCounters(reg, "pi")
	pi.c.prov = pi.trace.provPtr()
	bindContext(pi.ctx, reg, "pi")
	pi.par.bind(reg)
}

// SetTrace implements Traced.
func (pi *PI) SetTrace(tr *obs.Trace) {
	pi.trace.set(tr, pi.ctx)
	pi.c.prov = pi.trace.provPtr()
}

// Parallelism implements Parallel.
func (pi *PI) Parallelism(n int) { pi.par.set(n) }

// Next implements Orderer.
func (pi *PI) Next() (*planspace.Plan, float64, bool) {
	defer pi.c.endNext(pi.c.startNext())
	ev := pi.par.evaluator(pi.ctx, "pi")
	if !pi.started {
		pi.started = true
		pi.scratch(len(pi.plans))
		if ev == nil {
			measure.EvaluateAll(pi.ctx, pi.plans, pi.ivals)
		} else {
			ev.EvalInto(pi.plans, pi.ivals)
		}
		for i := range pi.plans {
			pi.utils[i] = pi.ivals[i].Lo
			pi.alive[i] = true
		}
	}
	if pi.nAlive == 0 {
		pi.c.exhausted.Inc()
		return nil, 0, false
	}
	bestIdx := pi.selectBest(ev)
	d := pi.plans[bestIdx]
	u := pi.utils[bestIdx]
	pi.alive[bestIdx] = false
	pi.nAlive--
	pi.ctx.Observe(d)
	// Recompute only plans whose utility may have changed: one bulk
	// independence sweep against the fixed delta (memoized overlap rows
	// on bulk-capable contexts), then the dependent survivors score as
	// one frontier so a batch-capable measure takes the tiled kernels.
	pi.scratch(len(pi.plans))
	if ev == nil {
		measure.IndependentAll(pi.ctx, pi.plans, d, pi.alive, pi.indep)
	} else {
		ev.IndependentInto(pi.plans, d, pi.alive, pi.indep)
	}
	for i, a := range pi.alive {
		if a && !pi.indep[i] {
			pi.pendIdx = append(pi.pendIdx, i)
			pi.pending = append(pi.pending, pi.plans[i])
		}
	}
	if ev == nil {
		measure.EvaluateAll(pi.ctx, pi.pending, pi.ivals)
	} else {
		ev.EvalInto(pi.pending, pi.ivals)
	}
	for k, idx := range pi.pendIdx {
		pi.utils[idx] = pi.ivals[k].Lo
	}
	pi.trace.emitPlan("pi", d, u, pi.ctx.Evals())
	return d, u, true
}

// scratch sizes the reusable sweep buffers for n plans and empties the
// pending lists.
func (pi *PI) scratch(n int) {
	if cap(pi.ivals) < n {
		pi.ivals = make([]interval.Interval, n)
		pi.pending = make([]*planspace.Plan, 0, n)
		pi.pendIdx = make([]int, 0, n)
		pi.indep = make([]bool, n)
	}
	pi.ivals = pi.ivals[:n]
	pi.indep = pi.indep[:n]
	pi.pending = pi.pending[:0]
	pi.pendIdx = pi.pendIdx[:0]
}

// selectBest returns the index of the best alive plan. The parallel path
// scans shards concurrently and merges the shard winners in shard order;
// the comparison is a strict total order (utility, then key, with dead
// plans after all alive ones), so the winner matches the sequential scan.
func (pi *PI) selectBest(ev *parallel.Evaluator) int {
	cmp := func(i, j int) bool {
		ai, aj := pi.alive[i], pi.alive[j]
		if ai != aj {
			return ai
		}
		if !ai {
			return i < j
		}
		return betterPlan(pi.utils[i], pi.plans[i], pi.utils[j], pi.plans[j])
	}
	if ev != nil && ev.Parallel(len(pi.plans)) {
		return ev.Pool().Best(len(pi.plans), cmp)
	}
	bestIdx := -1
	bestU := 0.0
	for i, a := range pi.alive {
		if !a {
			continue
		}
		// betterPlan orders by utility first, so a strictly lower utility
		// can never win; the key comparison only breaks exact ties.
		u := pi.utils[i]
		if bestIdx >= 0 && u < bestU {
			continue
		}
		if bestIdx < 0 || betterPlan(u, pi.plans[i], bestU, pi.plans[bestIdx]) {
			bestIdx, bestU = i, u
		}
	}
	return bestIdx
}

var _ Orderer = (*PI)(nil)
var _ Parallel = (*PI)(nil)
var _ Traced = (*PI)(nil)
