package core

import (
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/parallel"
	"qporder/internal/planspace"
)

// PI is the best brute-force baseline of Section 6: it computes the exact
// ordering but uses plan-independence information to recompute, after
// each output, only the utilities of plans that may have changed. All
// other cached utilities remain valid.
//
// With Parallelism(n), the plan space is sharded across n workers: the
// initial full evaluation, the per-output selection (each shard's best
// streams into a deterministic k-way merge), and the post-output
// recompute sweep all fan out. Output is identical to the sequential
// run for every n.
type PI struct {
	ctx     measure.Context
	plans   []*planspace.Plan
	utils   []float64
	alive   []bool
	nAlive  int
	started bool
	c       counters
	par     parcfg
	trace   traceState
}

// NewPI builds the orderer over the concrete plans of the given spaces.
func NewPI(spaces []*planspace.Space, m measure.Measure) *PI {
	return NewPISharded(spaces, m, 0, 1)
}

// NewPISharded builds the orderer over one slice of the plan space: the
// plans whose position in the deterministic enumeration order is
// congruent to index mod count. This is the cross-process analogue of the
// in-process shard split Parallelism(n) applies: every shard enumerates
// the same global order and keeps a disjoint residue class, so the union
// of the shards is exactly the full space and no plan is ordered twice.
//
// For measures with prefix-independent utilities (measure.
// IsPrefixIndependent), each shard's Next sequence is the global Next
// sequence restricted to its slice; merging shard streams by (utility,
// plan key) — the betterPlan order — reproduces the unsharded sequence
// byte-for-byte. That invariant is what lets a router scatter one query
// across a fleet of daemons and gather a stream identical to a single
// process, for any shard count. The caller is responsible for checking
// the measure; sharding a prefix-dependent measure silently diverges.
func NewPISharded(spaces []*planspace.Space, m measure.Measure, index, count int) *PI {
	if count < 1 || index < 0 || index >= count {
		panic("core: NewPISharded wants 0 <= index < count")
	}
	var plans []*planspace.Plan
	pos := 0
	for _, s := range spaces {
		for _, p := range s.Enumerate() {
			if pos%count == index {
				plans = append(plans, p)
			}
			pos++
		}
	}
	return &PI{
		ctx:    m.NewContext(),
		plans:  plans,
		utils:  make([]float64, len(plans)),
		alive:  make([]bool, len(plans)),
		nAlive: len(plans),
	}
}

// Context implements Orderer.
func (pi *PI) Context() measure.Context { return pi.ctx }

// Instrument implements Instrumented.
func (pi *PI) Instrument(reg *obs.Registry) {
	pi.c = newCounters(reg, "pi")
	pi.c.prov = pi.trace.provPtr()
	bindContext(pi.ctx, reg, "pi")
	pi.par.bind(reg)
}

// SetTrace implements Traced.
func (pi *PI) SetTrace(tr *obs.Trace) {
	pi.trace.set(tr, pi.ctx)
	pi.c.prov = pi.trace.provPtr()
}

// Parallelism implements Parallel.
func (pi *PI) Parallelism(n int) { pi.par.set(n) }

// Next implements Orderer.
func (pi *PI) Next() (*planspace.Plan, float64, bool) {
	defer pi.c.endNext(pi.c.startNext())
	ev := pi.par.evaluator(pi.ctx, "pi")
	if !pi.started {
		pi.started = true
		if ev == nil {
			for i, p := range pi.plans {
				pi.utils[i] = pi.ctx.Evaluate(p).Lo
				pi.alive[i] = true
			}
		} else {
			ev.Map(len(pi.plans), func(ctx measure.Context, i int) {
				pi.utils[i] = ctx.Evaluate(pi.plans[i]).Lo
				pi.alive[i] = true
			})
		}
	}
	if pi.nAlive == 0 {
		pi.c.exhausted.Inc()
		return nil, 0, false
	}
	bestIdx := pi.selectBest(ev)
	d := pi.plans[bestIdx]
	u := pi.utils[bestIdx]
	pi.alive[bestIdx] = false
	pi.nAlive--
	pi.ctx.Observe(d)
	// Recompute only plans whose utility may have changed.
	if ev == nil {
		for i, a := range pi.alive {
			if !a {
				continue
			}
			if !pi.ctx.Independent(pi.plans[i], d) {
				pi.utils[i] = pi.ctx.Evaluate(pi.plans[i]).Lo
			}
		}
	} else {
		ev.Map(len(pi.plans), func(ctx measure.Context, i int) {
			if !pi.alive[i] {
				return
			}
			if !ctx.Independent(pi.plans[i], d) {
				pi.utils[i] = ctx.Evaluate(pi.plans[i]).Lo
			}
		})
	}
	pi.trace.emitPlan("pi", d, u, pi.ctx.Evals())
	return d, u, true
}

// selectBest returns the index of the best alive plan. The parallel path
// scans shards concurrently and merges the shard winners in shard order;
// the comparison is a strict total order (utility, then key, with dead
// plans after all alive ones), so the winner matches the sequential scan.
func (pi *PI) selectBest(ev *parallel.Evaluator) int {
	cmp := func(i, j int) bool {
		ai, aj := pi.alive[i], pi.alive[j]
		if ai != aj {
			return ai
		}
		if !ai {
			return i < j
		}
		return betterPlan(pi.utils[i], pi.plans[i], pi.utils[j], pi.plans[j])
	}
	if ev != nil && ev.Parallel(len(pi.plans)) {
		return ev.Pool().Best(len(pi.plans), cmp)
	}
	bestIdx := -1
	for i, a := range pi.alive {
		if !a {
			continue
		}
		if bestIdx < 0 || betterPlan(pi.utils[i], pi.plans[i], pi.utils[bestIdx], pi.plans[bestIdx]) {
			bestIdx = i
		}
	}
	return bestIdx
}

var _ Orderer = (*PI)(nil)
var _ Parallel = (*PI)(nil)
var _ Traced = (*PI)(nil)
