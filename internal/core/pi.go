package core

import (
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/planspace"
)

// PI is the best brute-force baseline of Section 6: it computes the exact
// ordering but uses plan-independence information to recompute, after
// each output, only the utilities of plans that may have changed. All
// other cached utilities remain valid.
type PI struct {
	ctx     measure.Context
	plans   []*planspace.Plan
	utils   []float64
	alive   []bool
	nAlive  int
	started bool
	c       counters
}

// NewPI builds the orderer over the concrete plans of the given spaces.
func NewPI(spaces []*planspace.Space, m measure.Measure) *PI {
	var plans []*planspace.Plan
	for _, s := range spaces {
		plans = append(plans, s.Enumerate()...)
	}
	return &PI{
		ctx:    m.NewContext(),
		plans:  plans,
		utils:  make([]float64, len(plans)),
		alive:  make([]bool, len(plans)),
		nAlive: len(plans),
	}
}

// Context implements Orderer.
func (pi *PI) Context() measure.Context { return pi.ctx }

// Instrument implements Instrumented.
func (pi *PI) Instrument(reg *obs.Registry) {
	pi.c = newCounters(reg, "pi")
	bindContext(pi.ctx, reg, "pi")
}

// Next implements Orderer.
func (pi *PI) Next() (*planspace.Plan, float64, bool) {
	defer pi.c.endNext(pi.c.startNext())
	if !pi.started {
		pi.started = true
		for i, p := range pi.plans {
			pi.utils[i] = pi.ctx.Evaluate(p).Lo
			pi.alive[i] = true
		}
	}
	if pi.nAlive == 0 {
		pi.c.exhausted.Inc()
		return nil, 0, false
	}
	bestIdx := -1
	for i, a := range pi.alive {
		if !a {
			continue
		}
		if bestIdx < 0 || better(pi.utils[i], pi.plans[i].Key(), pi.utils[bestIdx], pi.plans[bestIdx].Key()) {
			bestIdx = i
		}
	}
	d := pi.plans[bestIdx]
	u := pi.utils[bestIdx]
	pi.alive[bestIdx] = false
	pi.nAlive--
	pi.ctx.Observe(d)
	// Recompute only plans whose utility may have changed.
	for i, a := range pi.alive {
		if !a {
			continue
		}
		if !pi.ctx.Independent(pi.plans[i], d) {
			pi.utils[i] = pi.ctx.Evaluate(pi.plans[i]).Lo
		}
	}
	return d, u, true
}

var _ Orderer = (*PI)(nil)
