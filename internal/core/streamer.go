package core

import (
	"container/heap"
	"fmt"

	"qporder/internal/abstraction"
	"qporder/internal/dominance"
	"qporder/internal/interval"
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/planspace"
)

// Streamer is the Figure 5 algorithm. It abstracts sources once, then
// maintains a dominance graph across Next calls: links record dominance
// relations; each link's E(p,q) set tracks the plans output since the
// link was created; after outputting a plan d, a link q→q' survives iff
// some concrete plan in q is independent of every plan in E(q,q') ∪ {d}
// (then, by utility-diminishing returns, q still dominates q'). Surviving
// relations are the recycled work that makes Streamer cheaper than iDrips.
//
// Implementation note (semantics-preserving scheduling): instead of the
// paper's all-pairs link creation per loop iteration (Step 2.b), links
// are created (a) in one sweep from the maximum-lower-bound plan w after
// each output and (b) lazily, when a dominated plan surfaces as the most
// promising refinement candidate. Dominance by any nondominated plan is
// subsumed by dominance by w (Lo(w) >= Lo(a) >= Hi(b)), so the dominated
// set is the same; only the time at which a link is recorded differs,
// and a link is always created between two currently nondominated plans,
// exactly as in Step 2.b.
//
// Streamer requires the measure to satisfy utility-diminishing returns.
type Streamer struct {
	ctx     measure.Context
	g       *dominance.Graph
	spaces  []*planspace.Space
	heur    abstraction.Heuristic
	started bool
	dirty   bool // graph state changed since heaps were built
	resets  int

	linksRecycled int // link validity checks that succeeded (link kept)
	linksDropped  int // link validity checks that failed (link removed)

	c     counters
	par   parcfg
	trace traceState

	lo planHeap // max (Lo, key): candidate incumbent w
	hi planHeap // max (Hi, width, key): refinement candidates
}

// entry is a lazy-heap element with the utility snapshot at push time; an
// entry is stale when the plan left the graph, became dominated, or had
// its utility recomputed.
type entry struct {
	p *planspace.Plan
	u interval.Interval
}

// planHeap is a max-heap of entries; byLo selects the ordering.
type planHeap struct {
	es   []entry
	byLo bool
}

func (h *planHeap) Len() int      { return len(h.es) }
func (h *planHeap) Swap(i, j int) { h.es[i], h.es[j] = h.es[j], h.es[i] }
func (h *planHeap) Less(i, j int) bool {
	a, b := h.es[i], h.es[j]
	if h.byLo {
		return betterPlan(a.u.Lo, a.p, b.u.Lo, b.p)
	}
	if a.u.Hi != b.u.Hi {
		return a.u.Hi > b.u.Hi
	}
	if a.u.Width() != b.u.Width() {
		return a.u.Width() > b.u.Width()
	}
	return a.p.Key() < b.p.Key()
}
func (h *planHeap) Push(x interface{}) { h.es = append(h.es, x.(entry)) }
func (h *planHeap) Pop() interface{} {
	old := h.es
	n := len(old)
	x := old[n-1]
	h.es = old[:n-1]
	return x
}

// NewStreamer builds the orderer. It returns an error if the measure does
// not satisfy utility-diminishing returns (recycled dominance links would
// be unsound, e.g. for the caching cost measures).
func NewStreamer(spaces []*planspace.Space, m measure.Measure, heur abstraction.Heuristic) (*Streamer, error) {
	if !m.DiminishingReturns() {
		return nil, fmt.Errorf("core: Streamer requires utility-diminishing returns, %s lacks it", m.Name())
	}
	return &Streamer{
		ctx:    m.NewContext(),
		g:      dominance.New(),
		spaces: append([]*planspace.Space(nil), spaces...),
		heur:   heur,
		lo:     planHeap{byLo: true},
		dirty:  true,
	}, nil
}

// Context implements Orderer.
func (s *Streamer) Context() measure.Context { return s.ctx }

// Instrument implements Instrumented.
func (s *Streamer) Instrument(reg *obs.Registry) {
	s.c = newCounters(reg, "streamer")
	s.c.prov = s.trace.provPtr()
	bindContext(s.ctx, reg, "streamer")
	s.par.bind(reg)
}

// SetTrace implements Traced.
func (s *Streamer) SetTrace(tr *obs.Trace) {
	s.trace.set(tr, s.ctx)
	s.c.prov = s.trace.provPtr()
}

// Parallelism implements Parallel: utility recomputation after an output,
// refinement-children evaluation, link validity rechecks, and the
// invalidation sweep all fan out to n workers. Verdicts apply in the
// sequential order, so the dominance graph — and the output sequence —
// is identical to the sequential run for every n.
func (s *Streamer) Parallelism(n int) { s.par.set(n) }

// Resets returns how many defensive graph resets occurred (expected 0;
// exported for tests and experiment sanity checks).
func (s *Streamer) Resets() int { return s.resets }

// GraphSize returns the current number of plans in the dominance graph.
func (s *Streamer) GraphSize() int { return s.g.Len() }

// LinkStats returns how many dominance-link validity checks kept the link
// (recycled work, the paper's key saving over iDrips) versus removed it.
func (s *Streamer) LinkStats() (recycled, dropped int) {
	return s.linksRecycled, s.linksDropped
}

// fresh reports whether a heap entry still describes a live, nondominated
// plan with an unchanged utility.
func (s *Streamer) fresh(e entry) bool {
	if !s.g.Has(e.p) || s.g.Dominated(e.p) {
		return false
	}
	u, ok := s.g.Utility(e.p)
	return ok && u == e.u
}

// push records a plan with its current utility on both heaps.
func (s *Streamer) push(p *planspace.Plan, u interval.Interval) {
	heap.Push(&s.lo, entry{p, u})
	heap.Push(&s.hi, entry{p, u})
}

// rebuild re-establishes the invariant after an output (or at start):
// every nondominated plan has a current utility, the incumbent sweep
// links w to the plans it dominates (Step 2.b's effect), and the heaps
// reflect the frontier.
func (s *Streamer) rebuild() {
	s.lo.es = s.lo.es[:0]
	s.hi.es = s.hi.es[:0]
	nd := s.g.Nondominated()
	if len(nd) == 0 && s.g.Len() > 0 {
		// Defensive fallback: stale links formed a cycle (not expected; see
		// the acyclicity argument in DESIGN.md). Dropping all links is
		// conservative — links only prune work — so correctness is
		// preserved at the price of recomputation.
		s.resets++
		s.g.ClearLinks()
		s.g.EachPlan(func(p *planspace.Plan) { s.g.Invalidate(p) })
		nd = s.g.Nondominated()
	}
	// Step 2.a: (re)compute utilities of nondominated plans. Stale plans
	// batch through the evaluator; the graph writes stay on this goroutine.
	var stale []*planspace.Plan
	for _, p := range nd {
		if _, ok := s.g.Utility(p); !ok {
			stale = append(stale, p)
		}
	}
	for i, u := range evalAll(s.ctx, s.par.evaluator(s.ctx, "streamer"), stale) {
		s.g.SetUtility(stale[i], u)
	}
	var w *planspace.Plan
	var uw interval.Interval
	for _, p := range nd {
		u, _ := s.g.Utility(p)
		if w == nil || betterPlan(u.Lo, p, uw.Lo, w) {
			w, uw = p, u
		}
	}
	// Step 2.b sweep from the incumbent.
	for _, p := range nd {
		if p == w {
			continue
		}
		u, _ := s.g.Utility(p)
		dominated := dominatesPlan(uw, u, w, p)
		s.c.domTest(dominated)
		if dominated {
			if !s.g.HasLink(w, p) {
				s.g.AddLink(w, p)
			}
			continue
		}
		s.push(p, u)
	}
	if w != nil {
		s.push(w, uw)
	}
	s.dirty = false
}

// Next implements Orderer, following Figure 5's loop.
func (s *Streamer) Next() (*planspace.Plan, float64, bool) {
	defer s.c.endNext(s.c.startNext())
	if !s.started {
		// Step 1: abstract each space once; its root is the top plan.
		s.started = true
		for _, sp := range s.spaces {
			s.g.Add(sp.Root(s.heur))
		}
	}
	for s.g.Len() > 0 {
		if s.dirty {
			s.rebuild()
			continue
		}
		// Incumbent w: valid top of the Lo heap.
		var w *planspace.Plan
		var uw interval.Interval
		for s.lo.Len() > 0 {
			top := s.lo.es[0]
			if !s.fresh(top) {
				heap.Pop(&s.lo)
				continue
			}
			w, uw = top.p, top.u
			break
		}
		if w == nil {
			s.dirty = true
			continue
		}
		// Most promising candidate: valid top of the Hi heap.
		var t *planspace.Plan
		var ut interval.Interval
		for s.hi.Len() > 0 {
			top := s.hi.es[0]
			if !s.fresh(top) {
				heap.Pop(&s.hi)
				continue
			}
			t, ut = top.p, top.u
			break
		}
		if t == nil {
			s.dirty = true
			continue
		}
		// Lazily record dominance discovered at the heap top (Step 2.b).
		if t != w {
			dominated := dominatesPlan(uw, ut, w, t)
			s.c.domTest(dominated)
			if dominated {
				heap.Pop(&s.hi)
				if !s.g.HasLink(w, t) {
					s.g.AddLink(w, t)
				}
				continue
			}
		}
		// Step 2.c: refine the candidate if it is abstract. Children batch
		// through the evaluator; graph and heap writes stay on this
		// goroutine, in child order.
		if !t.Concrete() {
			heap.Pop(&s.hi)
			s.g.Remove(t)
			s.c.refine()
			children := t.Refine()
			for _, ch := range children {
				s.g.Add(ch)
			}
			for i, u := range evalAll(s.ctx, s.par.evaluator(s.ctx, "streamer"), children) {
				s.g.SetUtility(children[i], u)
				s.push(children[i], u)
			}
			continue
		}
		// t is concrete with the maximum upper bound, so no nondominated
		// abstract plan remains (any such plan would have Hi > Lo(t) =
		// Hi(t), contradicting t's maximality). Step 2.d: output.
		d, ud := t, ut
		if betterPlan(uw.Lo, w, ut.Lo, t) {
			d, ud = w, uw
		}
		s.g.Remove(d)
		s.ctx.Observe(d)
		// Recheck every remaining link: survive iff a concrete plan in the
		// dominating side is independent of all removed plans so far. The
		// per-link witness searches are independent of one another, so they
		// fan out; verdicts apply in link order on this goroutine.
		links := s.g.Links()
		if ev := s.par.evaluator(s.ctx, "streamer"); ev != nil && ev.Parallel(len(links)) {
			kept := make([]bool, len(links))
			ev.Map(len(links), func(ctx measure.Context, i int) {
				l := links[i]
				// Fresh backing array: workers must not write into l.E's
				// spare capacity while the verdict is still pending.
				ds := append(make([]*planspace.Plan, 0, len(l.E)+1), l.E...)
				kept[i] = ctx.IndependentWitness(l.From, append(ds, d))
			})
			for i, l := range links {
				if kept[i] {
					l.E = append(l.E, d)
					s.linksRecycled++
				} else {
					s.g.RemoveLink(l)
					s.linksDropped++
				}
			}
		} else {
			for _, l := range links {
				if s.ctx.IndependentWitness(l.From, append(l.E, d)) {
					l.E = append(l.E, d)
					s.linksRecycled++
				} else {
					s.g.RemoveLink(l)
					s.linksDropped++
				}
			}
		}
		// Invalidate utilities of plans not independent of d. Each verdict
		// reads only (plan, d, executed prefix), so the tests fan out; the
		// graph writes apply afterwards on this goroutine.
		if ev := s.par.evaluator(s.ctx, "streamer"); ev != nil && ev.Parallel(s.g.Len()) {
			plans := s.g.Plans()
			invalid := make([]bool, len(plans))
			ev.Map(len(plans), func(ctx measure.Context, i int) {
				invalid[i] = !ctx.Independent(plans[i], d)
			})
			for i, p := range plans {
				if invalid[i] {
					s.g.Invalidate(p)
				}
			}
		} else {
			s.g.EachPlan(func(e *planspace.Plan) {
				if !s.ctx.Independent(e, d) {
					s.g.Invalidate(e)
				}
			})
		}
		s.dirty = true
		s.trace.emitPlan("streamer", d, ud.Lo, s.ctx.Evals())
		return d, ud.Lo, true
	}
	s.c.exhausted.Inc()
	return nil, 0, false
}

var _ Orderer = (*Streamer)(nil)
var _ Parallel = (*Streamer)(nil)
var _ Traced = (*Streamer)(nil)
