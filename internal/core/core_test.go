package core

import (
	"math"
	"testing"

	"qporder/internal/abstraction"
	"qporder/internal/costmodel"
	"qporder/internal/coverage"
	"qporder/internal/measure"
	"qporder/internal/planspace"
	"qporder/internal/workload"
)

// replayCheck verifies Definition 2.1 for an output sequence: at every
// step i, the emitted plan's utility (conditioned on the emitted prefix)
// equals the maximum conditional utility over all remaining plans, and the
// reported utility matches. It re-derives ground truth with a fresh
// context, so any bookkeeping bug in the algorithm under test is caught.
func replayCheck(t *testing.T, space *planspace.Space, m measure.Measure,
	plans []*planspace.Plan, utils []float64) {
	t.Helper()
	ctx := m.NewContext()
	remaining := make(map[string]*planspace.Plan)
	for _, p := range space.Enumerate() {
		remaining[p.Key()] = p
	}
	for i, p := range plans {
		if !p.Concrete() {
			t.Fatalf("step %d: emitted abstract plan %s", i, p.Key())
		}
		if _, ok := remaining[p.Key()]; !ok {
			t.Fatalf("step %d: plan %s not in remaining set (duplicate or foreign plan)", i, p.Key())
		}
		got := ctx.Evaluate(p).Lo
		if math.Abs(got-utils[i]) > 1e-9 {
			t.Fatalf("step %d: plan %s reported utility %g, replay says %g", i, p.Key(), utils[i], got)
		}
		max := math.Inf(-1)
		for _, q := range remaining {
			if u := ctx.Evaluate(q).Lo; u > max {
				max = u
			}
		}
		if got < max-1e-9 {
			t.Fatalf("step %d: plan %s has utility %g but a remaining plan has %g", i, p.Key(), got, max)
		}
		delete(remaining, p.Key())
		ctx.Observe(p)
	}
}

// measuresFor returns the utility measures to exercise on a domain.
func measuresFor(d *workload.Domain) []measure.Measure {
	return []measure.Measure{
		coverage.NewMeasure(d.Coverage),
		costmodel.NewLinearCost(d.Catalog),
		costmodel.NewChainCost(d.Catalog, costmodel.Params{N: d.Params.N}),
		costmodel.NewChainCost(d.Catalog, costmodel.Params{N: d.Params.N, Failure: true}),
		costmodel.NewChainCost(d.Catalog, costmodel.Params{N: d.Params.N, Failure: true, Caching: true}),
		costmodel.NewMonetaryPerTuple(d.Catalog, costmodel.Params{N: d.Params.N}),
		costmodel.NewMonetaryPerTuple(d.Catalog, costmodel.Params{N: d.Params.N, Caching: true}),
	}
}

// orderers builds every applicable orderer for a measure.
func orderers(d *workload.Domain, m measure.Measure) map[string]Orderer {
	spaces := []*planspace.Space{d.Space}
	heur := abstraction.ByKey("cov-sim", d.SimilarityKey)
	out := map[string]Orderer{
		"exhaustive": NewExhaustive(spaces, m),
		"pi":         NewPI(spaces, m),
		"idrips":     NewIDrips(spaces, m, heur),
		"idrips-tup": NewIDrips(spaces, m, abstraction.ByTuples(d.Catalog)),
	}
	if g, err := NewGreedy(spaces, m); err == nil {
		out["greedy"] = g
	}
	if s, err := NewStreamer(spaces, m, heur); err == nil {
		out["streamer"] = s
	}
	if s, err := NewStreamer(spaces, m, abstraction.ByID()); err == nil {
		out["streamer-id"] = s
	}
	return out
}

func TestAllAlgorithmsProduceValidOrderings(t *testing.T) {
	for _, cfg := range []workload.Config{
		{QueryLen: 2, BucketSize: 4, Universe: 256, Zones: 2, Seed: 1},
		{QueryLen: 3, BucketSize: 4, Universe: 512, Zones: 3, Seed: 2},
		{QueryLen: 3, BucketSize: 6, Universe: 512, Zones: 3, Seed: 3},
		{QueryLen: 4, BucketSize: 3, Universe: 512, Zones: 2, Seed: 4},
		{QueryLen: 1, BucketSize: 7, Universe: 256, Zones: 3, Seed: 5},
	} {
		d := workload.Generate(cfg)
		total := int(d.Space.Size())
		for _, m := range measuresFor(d) {
			for name, o := range orderers(d, m) {
				plans, utils := Take(o, total+1) // +1 probes exhaustion
				if len(plans) != total {
					t.Errorf("cfg=%+v measure=%s alg=%s: emitted %d plans, want %d",
						cfg, m.Name(), name, len(plans), total)
					continue
				}
				replayCheck(t, d.Space, m, plans, utils)
				if s, ok := o.(*Streamer); ok && s.Resets() > 0 {
					t.Errorf("cfg=%+v measure=%s alg=%s: %d defensive graph resets",
						cfg, m.Name(), name, s.Resets())
				}
			}
		}
	}
}

func TestNextAfterExhaustionKeepsReturningFalse(t *testing.T) {
	d := workload.Generate(workload.Config{QueryLen: 2, BucketSize: 2, Universe: 128, Seed: 9})
	m := coverage.NewMeasure(d.Coverage)
	for name, o := range orderers(d, m) {
		Take(o, int(d.Space.Size()))
		for i := 0; i < 3; i++ {
			if _, _, ok := o.Next(); ok {
				t.Errorf("alg=%s: Next returned ok after exhaustion", name)
			}
		}
	}
}

func TestGreedyRejectsNonMonotonicMeasure(t *testing.T) {
	d := workload.Generate(workload.Config{QueryLen: 2, BucketSize: 3, Universe: 128, Seed: 7})
	if _, err := NewGreedy([]*planspace.Space{d.Space}, coverage.NewMeasure(d.Coverage)); err == nil {
		t.Fatal("NewGreedy accepted the non-monotonic coverage measure")
	}
}

func TestStreamerRejectsNonDiminishingMeasure(t *testing.T) {
	d := workload.Generate(workload.Config{QueryLen: 2, BucketSize: 3, Universe: 128, Seed: 7})
	m := costmodel.NewChainCost(d.Catalog, costmodel.Params{N: 1000, Caching: true})
	if _, err := NewStreamer([]*planspace.Space{d.Space}, m, abstraction.ByTuples(d.Catalog)); err == nil {
		t.Fatal("NewStreamer accepted a caching measure (no diminishing returns)")
	}
}

func TestTakeStopsAtK(t *testing.T) {
	d := workload.Generate(workload.Config{QueryLen: 2, BucketSize: 4, Universe: 128, Seed: 11})
	m := coverage.NewMeasure(d.Coverage)
	plans, utils := Take(NewPI([]*planspace.Space{d.Space}, m), 3)
	if len(plans) != 3 || len(utils) != 3 {
		t.Fatalf("Take returned %d plans, %d utils; want 3, 3", len(plans), len(utils))
	}
}
