package core

import (
	"testing"

	"qporder/internal/abstraction"
	"qporder/internal/costmodel"
	"qporder/internal/coverage"
	"qporder/internal/planspace"
)

// TestStreamerRecyclesAllLinksUnderFullIndependence: with the no-caching
// cost measure, every plan pair is independent, so every link validity
// check must succeed — Streamer recycles everything.
func TestStreamerRecyclesAllLinksUnderFullIndependence(t *testing.T) {
	d := testDomain(3, 8)
	m := costmodel.NewChainCost(d.Catalog, costmodel.Params{N: d.Params.N, Failure: true})
	s, err := NewStreamer([]*planspace.Space{d.Space}, m, abstraction.ByAccessCost(d.Catalog))
	if err != nil {
		t.Fatal(err)
	}
	Take(s, 30)
	recycled, dropped := s.LinkStats()
	if dropped != 0 {
		t.Errorf("dropped %d links under full independence", dropped)
	}
	if recycled == 0 {
		t.Error("no links recycled at all; the mechanism is dead")
	}
}

// TestStreamerRecyclingDegradesWithOverlap: for coverage, higher overlap
// (fewer zones) invalidates a larger fraction of links — the mechanism
// behind the paper's overlap-rate discussion.
func TestStreamerRecyclingDegradesWithOverlap(t *testing.T) {
	frac := func(zones int) float64 {
		d := testDomainZones(5, 10, zones)
		m := coverage.NewMeasure(d.Coverage)
		s, err := NewStreamer([]*planspace.Space{d.Space}, m,
			abstraction.ByKey("sim", d.SimilarityKey))
		if err != nil {
			t.Fatal(err)
		}
		Take(s, 25)
		recycled, dropped := s.LinkStats()
		if recycled+dropped == 0 {
			return 1
		}
		return float64(recycled) / float64(recycled+dropped)
	}
	low := frac(6)  // overlap ≈ 0.17
	high := frac(1) // overlap = 1
	if high >= low {
		t.Errorf("recycling fraction did not degrade: overlap-low %.2f vs overlap-high %.2f", low, high)
	}
}

// TestStreamerEvalsGrowWithOverlap: with everything overlapping, each
// output invalidates more utilities, so the work grows.
func TestStreamerEvalsGrowWithOverlap(t *testing.T) {
	evals := func(zones int) int {
		d := testDomainZones(9, 10, zones)
		m := coverage.NewMeasure(d.Coverage)
		s, err := NewStreamer([]*planspace.Space{d.Space}, m,
			abstraction.ByKey("sim", d.SimilarityKey))
		if err != nil {
			t.Fatal(err)
		}
		Take(s, 25)
		return s.Context().Evals()
	}
	if e1, e6 := evals(1), evals(6); e1 <= e6 {
		t.Errorf("evals at overlap=1 (%d) <= evals at overlap≈0.17 (%d)", e1, e6)
	}
}
