package core

import (
	"sync/atomic"

	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/planspace"
)

// Traced is implemented by orderers that can attach per-request plan
// provenance to a request trace. Unlike Instrument, which aggregates
// into a shared registry, SetTrace scopes the recorded work to one
// request: each emitted plan carries the dominance tests, refinements,
// splits, and evaluations spent since the previous emission.
type Traced interface {
	// SetTrace binds the orderer's provenance recording to tr; nil
	// detaches it (the disabled state, which must stay allocation-free
	// on the Next path). Binding is not concurrency-safe with Next.
	SetTrace(tr *obs.Trace)
}

// SetTrace binds tr to o when o supports it; otherwise it is a no-op.
// A nil tr always detaches, so callers can apply it unconditionally.
func SetTrace(o Orderer, tr *obs.Trace) {
	if t, ok := o.(Traced); ok {
		t.SetTrace(tr)
	}
}

// provCounts accumulates the per-Next provenance deltas. The fields are
// atomic because dominance tests fan out to parallel pool workers; the
// Swap(0) reads happen on the Next goroutine after the pool quiesced.
type provCounts struct {
	domWon  atomic.Int64 // dominance tests the incumbent won (pruned a plan)
	domLost atomic.Int64 // dominance tests that failed to prune
	refines atomic.Int64
	splits  atomic.Int64
}

// traceState is the per-orderer provenance recorder. Its zero value is
// the disabled state: emitPlan is then a nil check and nothing else.
type traceState struct {
	tr        *obs.Trace
	prov      provCounts
	emitted   int // next plan index on the trace
	lastEvals int // ctx.Evals() at the previous emission
}

// set binds (or, with a nil tr, unbinds) the trace and re-synchronizes
// the delta baselines with the measure context's current state.
func (t *traceState) set(tr *obs.Trace, ctx measure.Context) {
	t.tr = tr
	t.emitted = tr.PlanCount()
	t.lastEvals = ctx.Evals()
	t.prov.domWon.Store(0)
	t.prov.domLost.Store(0)
	t.prov.refines.Store(0)
	t.prov.splits.Store(0)
}

// provPtr returns the counter sink the orderer's counters should feed,
// nil when tracing is disabled (keeping the hot path identical to the
// untraced build).
func (t *traceState) provPtr() *provCounts {
	if t.tr == nil {
		return nil
	}
	return &t.prov
}

// emitPlan records one emitted plan's provenance: the utility at
// selection and the work spent since the previous emission. evals is
// the measure context's cumulative Evaluate count at emission time.
func (t *traceState) emitPlan(algo string, p *planspace.Plan, u float64, evals int) {
	if t.tr == nil {
		return
	}
	t.tr.EmitPlan(obs.PlanProvenance{
		Index:       t.emitted,
		Algo:        algo,
		Plan:        p.Key(),
		Utility:     u,
		DomWon:      t.prov.domWon.Swap(0),
		DomLost:     t.prov.domLost.Swap(0),
		Refinements: t.prov.refines.Swap(0),
		Splits:      t.prov.splits.Swap(0),
		Evals:       int64(evals - t.lastEvals),
	})
	t.emitted++
	t.lastEvals = evals
}
