//go:build race

package core

// raceEnabled reports whether the race detector instrumented this build.
const raceEnabled = true
