package core

import (
	"testing"

	"qporder/internal/abstraction"
	"qporder/internal/costmodel"
	"qporder/internal/coverage"
	"qporder/internal/planspace"
	"qporder/internal/workload"
)

func testDomain(seed int64, bucket int) *workload.Domain {
	return testDomainZones(seed, bucket, 3)
}

func testDomainZones(seed int64, bucket, zones int) *workload.Domain {
	return workload.Generate(workload.Config{
		QueryLen: 3, BucketSize: bucket, Universe: 1024, Zones: zones, Seed: seed,
	})
}

// TestStreamerRecyclesMoreThanIDrips checks the paper's central
// comparison: for coverage, Streamer re-evaluates fewer plans than iDrips
// because it keeps dominance relations across iterations while iDrips
// rebuilds them.
func TestStreamerRecyclesMoreThanIDrips(t *testing.T) {
	d := testDomain(21, 10)
	heur := abstraction.ByKey("sim", d.SimilarityKey)
	m := coverage.NewMeasure(d.Coverage)
	spaces := []*planspace.Space{d.Space}

	s, err := NewStreamer(spaces, m, heur)
	if err != nil {
		t.Fatal(err)
	}
	Take(s, 20)
	i := NewIDrips(spaces, m, heur)
	Take(i, 20)

	if s.Context().Evals() >= i.Context().Evals() {
		t.Errorf("streamer evals %d >= idrips evals %d; recycling broken",
			s.Context().Evals(), i.Context().Evals())
	}
}

// TestAbstractionBeatsBruteForce: for coverage with the similarity
// heuristic, the first plan is found with far fewer evaluations than the
// plan-space size (the <4%-of-PI claim, conservatively tested at <50%).
func TestAbstractionBeatsBruteForce(t *testing.T) {
	d := testDomain(5, 12)
	heur := abstraction.ByKey("sim", d.SimilarityKey)
	m := coverage.NewMeasure(d.Coverage)
	s, err := NewStreamer([]*planspace.Space{d.Space}, m, heur)
	if err != nil {
		t.Fatal(err)
	}
	Take(s, 1)
	if int64(s.Context().Evals())*2 > d.Space.Size() {
		t.Errorf("streamer evaluated %d of %d plans for the first plan",
			s.Context().Evals(), d.Space.Size())
	}
}

// TestStreamerGraphGrowsSlowly: the dominance graph stays far below the
// plan-space size while producing a prefix of the ordering.
func TestStreamerGraphBounded(t *testing.T) {
	d := testDomain(9, 10)
	m := coverage.NewMeasure(d.Coverage)
	s, err := NewStreamer([]*planspace.Space{d.Space}, m,
		abstraction.ByKey("sim", d.SimilarityKey))
	if err != nil {
		t.Fatal(err)
	}
	Take(s, 10)
	if int64(s.GraphSize()) >= d.Space.Size() {
		t.Errorf("graph size %d >= plan space %d", s.GraphSize(), d.Space.Size())
	}
}

// TestDripsBestAgainstScan: DripsBest returns the utility-maximal concrete
// plan for a fresh context.
func TestDripsBestAgainstScan(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		d := testDomain(seed, 6)
		m := coverage.NewMeasure(d.Coverage)
		ctx := m.NewContext()
		best, u := DripsBest(ctx, []*planspace.Plan{
			d.Space.Root(abstraction.ByKey("sim", d.SimilarityKey)),
		})
		if !best.Concrete() {
			t.Fatalf("seed %d: abstract winner %s", seed, best.Key())
		}
		scan := m.NewContext()
		max := -1.0
		for _, p := range d.Space.Enumerate() {
			if v := scan.Evaluate(p).Lo; v > max {
				max = v
			}
		}
		if u != max {
			t.Errorf("seed %d: DripsBest = %g, scan max = %g", seed, u, max)
		}
	}
}

// TestDeterminism: running the same algorithm twice over the same domain
// yields the identical plan sequence.
func TestDeterminism(t *testing.T) {
	d := testDomain(33, 8)
	heur := abstraction.ByKey("sim", d.SimilarityKey)
	build := func() map[string]Orderer {
		m := coverage.NewMeasure(d.Coverage)
		cm := costmodel.NewChainCost(d.Catalog, costmodel.Params{N: d.Params.N, Failure: true})
		s1, _ := NewStreamer([]*planspace.Space{d.Space}, m, heur)
		s2, _ := NewStreamer([]*planspace.Space{d.Space}, cm, abstraction.ByAccessCost(d.Catalog))
		return map[string]Orderer{
			"pi-cov":        NewPI([]*planspace.Space{d.Space}, m),
			"idrips-cov":    NewIDrips([]*planspace.Space{d.Space}, m, heur),
			"streamer-cov":  s1,
			"streamer-cost": s2,
		}
	}
	a, b := build(), build()
	for name := range a {
		pa, _ := Take(a[name], 15)
		pb, _ := Take(b[name], 15)
		if len(pa) != len(pb) {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range pa {
			if pa[i].Key() != pb[i].Key() {
				t.Errorf("%s: position %d differs: %s vs %s", name, i, pa[i].Key(), pb[i].Key())
				break
			}
		}
	}
}

// TestGreedyLinearAgainstPI: on the fully monotonic measure the Greedy
// sequence must match PI's exactly (utilities are unconditional and
// tie-breaks are shared).
func TestGreedyLinearAgainstPI(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		d := testDomain(seed, 7)
		m := costmodel.NewLinearCost(d.Catalog)
		g, err := NewGreedy([]*planspace.Space{d.Space}, m)
		if err != nil {
			t.Fatal(err)
		}
		pi := NewPI([]*planspace.Space{d.Space}, costmodel.NewLinearCost(d.Catalog))
		gp, gu := Take(g, 25)
		pp, pu := Take(pi, 25)
		for i := range gp {
			if gu[i] != pu[i] {
				t.Fatalf("seed %d pos %d: greedy u=%g pi u=%g", seed, i, gu[i], pu[i])
			}
			if gp[i].Key() != pp[i].Key() {
				t.Fatalf("seed %d pos %d: greedy %s pi %s", seed, i, gp[i].Key(), pp[i].Key())
			}
		}
	}
}

// TestGreedyEvaluationCountLinearish: Greedy's evaluations grow like
// k·n·(spaces), far below the plan-space size.
func TestGreedyEvaluationCount(t *testing.T) {
	d := testDomain(3, 40)
	m := costmodel.NewLinearCost(d.Catalog)
	g, err := NewGreedy([]*planspace.Space{d.Space}, m)
	if err != nil {
		t.Fatal(err)
	}
	const k = 30
	Take(g, k)
	// Each output splits into <= queryLen sub-spaces, each costing one
	// evaluation, plus the initial space.
	limit := 1 + k*d.Space.Len()
	if g.Context().Evals() > limit {
		t.Errorf("greedy evals = %d, want <= %d", g.Context().Evals(), limit)
	}
}

// TestMultiSpaceOrdering: all algorithms accept several disjoint spaces
// (the MiniCon integration path) and order across them.
func TestMultiSpaceOrdering(t *testing.T) {
	d := testDomain(13, 6)
	// Split the domain's space into several via removal.
	all := d.Space.Enumerate()
	spaces := d.Space.Remove(all[7].Sources())
	m := coverage.NewMeasure(d.Coverage)
	heur := abstraction.ByKey("sim", d.SimilarityKey)

	s, err := NewStreamer(spaces, m, heur)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sp := range spaces {
		total += int(sp.Size())
	}
	plans, utils := Take(s, total+1)
	if len(plans) != total {
		t.Fatalf("multi-space streamer emitted %d plans, want %d", len(plans), total)
	}
	// Validate against replay over the union.
	ctx := m.NewContext()
	remaining := make(map[string]*planspace.Plan)
	for _, sp := range spaces {
		for _, p := range sp.Enumerate() {
			remaining[p.Key()] = p
		}
	}
	for i, p := range plans {
		got := ctx.Evaluate(p).Lo
		if got != utils[i] {
			t.Fatalf("pos %d utility mismatch", i)
		}
		for _, q := range remaining {
			if u := ctx.Evaluate(q).Lo; u > got+1e-12 {
				t.Fatalf("pos %d: %s (%g) beaten by %s (%g)", i, p.Key(), got, q.Key(), u)
			}
		}
		delete(remaining, p.Key())
		ctx.Observe(p)
	}
}
