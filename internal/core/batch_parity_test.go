package core

import (
	"testing"

	"qporder/internal/coverage"
	"qporder/internal/measure"
	"qporder/internal/planspace"
	"qporder/internal/workload"
)

// TestBatchedOrderingMatchesScalar is the end-to-end parity gate for
// frontier-batched evaluation: every orderer, driven to exhaustion over
// the coverage measure, must emit a byte-identical (plan key, utility)
// stream and identical Evals/IndepStats under the batched path, the
// scalar path, and the uncached oracle, at parallelism 1 and 8. The
// scalar sequential run is the baseline.
func TestBatchedOrderingMatchesScalar(t *testing.T) {
	variants := map[string]func(d *workload.Domain) measure.Measure{
		"batched": func(d *workload.Domain) measure.Measure {
			return coverage.NewMeasure(d.Coverage)
		},
		"scalar": func(d *workload.Domain) measure.Measure {
			ms := coverage.NewMeasure(d.Coverage)
			ms.SetBatching(false)
			return ms
		},
		"uncached": func(d *workload.Domain) measure.Measure {
			return coverage.NewMeasureUncached(d.Coverage)
		},
	}
	type outcome struct {
		keys         []string
		utils        []float64
		evals        int
		checks, hits int
	}
	for _, cfg := range []workload.Config{
		{QueryLen: 3, BucketSize: 5, Universe: 512, Zones: 3, Seed: 11},
		{QueryLen: 2, BucketSize: 7, Universe: 256, Zones: 2, Seed: 12},
	} {
		d := workload.Generate(cfg)
		total := int(d.Space.Size())
		run := func(m measure.Measure, workers int) map[string]outcome {
			out := map[string]outcome{}
			for name, o := range orderers(d, m) {
				SetParallelism(o, workers)
				plans, utils := Take(o, total+1)
				keys := make([]string, len(plans))
				for i, p := range plans {
					keys[i] = p.Key()
				}
				ck, ht := o.Context().IndepStats()
				out[name] = outcome{keys, utils, o.Context().Evals(), ck, ht}
			}
			return out
		}
		base := run(variants["scalar"](d), 1)
		for vname, mk := range variants {
			for _, workers := range []int{1, 8} {
				got := run(mk(d), workers)
				for name, b := range base {
					g, ok := got[name]
					if !ok {
						t.Fatalf("cfg seed=%d %s/%d: orderer %s missing", cfg.Seed, vname, workers, name)
					}
					if len(g.keys) != len(b.keys) {
						t.Fatalf("cfg seed=%d %s/%d alg=%s: %d plans, want %d",
							cfg.Seed, vname, workers, name, len(g.keys), len(b.keys))
					}
					for i := range b.keys {
						if g.keys[i] != b.keys[i] || g.utils[i] != b.utils[i] {
							t.Fatalf("cfg seed=%d %s/%d alg=%s step %d: (%s, %v), want (%s, %v)",
								cfg.Seed, vname, workers, name, i,
								g.keys[i], g.utils[i], b.keys[i], b.utils[i])
						}
					}
					if g.evals != b.evals || g.checks != b.checks || g.hits != b.hits {
						t.Errorf("cfg seed=%d %s/%d alg=%s: counters (%d,%d,%d), want (%d,%d,%d)",
							cfg.Seed, vname, workers, name,
							g.evals, g.checks, g.hits, b.evals, b.checks, b.hits)
					}
				}
			}
		}
	}
}

// TestBatchPathEngages guards against the batched path silently
// reverting to scalar: a default coverage measure driven through PI
// must report batched frontiers on its context.
func TestBatchPathEngages(t *testing.T) {
	d := workload.Generate(workload.Config{
		QueryLen: 2, BucketSize: 5, Universe: 256, Zones: 2, Seed: 21,
	})
	o := NewPI([]*planspace.Space{d.Space}, coverage.NewMeasure(d.Coverage))
	Take(o, 3)
	bs, ok := o.Context().(interface{ BatchStats() (int, int) })
	if !ok {
		t.Fatal("coverage context does not expose BatchStats")
	}
	if calls, plans := bs.BatchStats(); calls == 0 || plans == 0 {
		t.Errorf("BatchStats = (%d,%d), want both > 0", calls, plans)
	}
}
