package core

import (
	"testing"
	"testing/quick"

	"qporder/internal/costmodel"
	"qporder/internal/coverage"
	"qporder/internal/planspace"
	"qporder/internal/workload"
)

// TestPIAndExhaustiveProduceIdenticalSequences: both baselines compute the
// exact ordering with the same tie-break, so their outputs must coincide
// plan for plan — PI's caching and independence-based recomputation must
// never change a value.
func TestPIAndExhaustiveProduceIdenticalSequences(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	prop := func(seed int64) bool {
		d := workload.Generate(workload.Config{
			QueryLen: 3, BucketSize: 4, Universe: 512, Zones: 3, Seed: seed,
		})
		m1 := coverage.NewMeasure(d.Coverage)
		m2 := coverage.NewMeasure(d.Coverage)
		pi := NewPI([]*planspace.Space{d.Space}, m1)
		ex := NewExhaustive([]*planspace.Space{d.Space}, m2)
		n := int(d.Space.Size())
		pp, pu := Take(pi, n)
		ep, eu := Take(ex, n)
		if len(pp) != len(ep) {
			return false
		}
		for i := range pp {
			if pp[i].Key() != ep[i].Key() || pu[i] != eu[i] {
				t.Logf("seed %d pos %d: pi=(%s,%g) ex=(%s,%g)",
					seed, i, pp[i].Key(), pu[i], ep[i].Key(), eu[i])
				return false
			}
		}
		// PI must evaluate no more than Exhaustive.
		if m1.Name() != m2.Name() {
			return false
		}
		return pi.Context().Evals() <= ex.Context().Evals()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestPIRecomputesOnlyDependents: with a fully independent measure, PI
// performs exactly one evaluation per plan no matter how many plans are
// emitted.
func TestPIRecomputesOnlyDependents(t *testing.T) {
	d := testDomain(17, 6)
	m := costmodel.NewChainCost(d.Catalog, costmodel.Params{N: d.Params.N, Failure: true})
	pi := NewPI([]*planspace.Space{d.Space}, m)
	Take(pi, int(d.Space.Size()))
	if got, want := pi.Context().Evals(), int(d.Space.Size()); got != want {
		t.Errorf("PI evals = %d, want %d (one per plan)", got, want)
	}
}
