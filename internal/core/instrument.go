package core

import (
	"time"

	"qporder/internal/measure"
	"qporder/internal/obs"
)

// Instrumented is implemented by orderers that can bind per-algorithm
// work counters to an observability registry.
type Instrumented interface {
	// Instrument binds the orderer's work counters (and its measure
	// context's evaluation counters) to reg. A nil reg disables
	// instrumentation; binding is not concurrency-safe with Next.
	Instrument(reg *obs.Registry)
}

// Instrument binds reg to o when o supports it. Both a nil reg and an
// uninstrumentable orderer are fine: the call is then a no-op.
func Instrument(o Orderer, reg *obs.Registry) {
	if i, ok := o.(Instrumented); ok {
		i.Instrument(reg)
	}
}

// counters bundles one algorithm's work counters. The zero value (all
// nil) is the disabled state: every recording method is a nil-check and
// nothing else, so uninstrumented hot paths stay allocation-free.
//
// Counter names, with their paper meaning (see README "Observability"):
//
//	core.<algo>.dominance_tests — interval dominance tests Lo(p) >= Hi(q)
//	    (Section 5.1's pruning comparisons);
//	core.<algo>.refinements     — abstract-plan refinements, replacing an
//	    abstract node by its children (Section 5.1);
//	core.<algo>.splits          — plan-space splits removing an output
//	    plan (the Figure 2 construction);
//	core.<algo>.next_calls      — Next() invocations;
//	core.<algo>.next_exhausted  — Next() calls that returned ok=false;
//	core.<algo>.next_ns         — per-Next() latency, the "delay" of
//	    ranked-enumeration work (time between consecutive outputs).
type counters struct {
	domTests  *obs.Counter
	refines   *obs.Counter
	splits    *obs.Counter
	nextCalls *obs.Counter
	exhausted *obs.Counter
	nextNs    *obs.Histogram
	// prov, when non-nil, additionally accumulates per-Next provenance
	// deltas for the bound request trace (see traceState). It is a
	// pointer because counters travels by value into dripsBest while
	// the deltas must land in the orderer's single accumulator.
	prov *provCounts
}

// domTest records one interval dominance test and whether the incumbent
// won it (the tested plan was pruned).
func (c *counters) domTest(dominated bool) {
	c.domTests.Inc()
	if p := c.prov; p != nil {
		if dominated {
			p.domWon.Add(1)
		} else {
			p.domLost.Add(1)
		}
	}
}

// refine records one abstract-plan refinement.
func (c *counters) refine() {
	c.refines.Inc()
	if p := c.prov; p != nil {
		p.refines.Add(1)
	}
}

// split records one plan-space split.
func (c *counters) split() {
	c.splits.Inc()
	if p := c.prov; p != nil {
		p.splits.Add(1)
	}
}

// newCounters resolves the per-algorithm instrument names on reg; with a
// nil reg every instrument is nil (disabled). The nil short-circuit
// matters: it skips the name concatenations, keeping the disabled path
// allocation-free.
func newCounters(reg *obs.Registry, algo string) counters {
	if reg == nil {
		return counters{}
	}
	return counters{
		domTests:  reg.Counter("core." + algo + ".dominance_tests"),
		refines:   reg.Counter("core." + algo + ".refinements"),
		splits:    reg.Counter("core." + algo + ".splits"),
		nextCalls: reg.Counter("core." + algo + ".next_calls"),
		exhausted: reg.Counter("core." + algo + ".next_exhausted"),
		nextNs:    reg.Histogram("core." + algo + ".next_ns"),
	}
}

// startNext begins timing one Next call; it returns the zero time when
// latency tracking is disabled so endNext can skip the clock read.
func (c *counters) startNext() time.Time {
	c.nextCalls.Inc()
	if c.nextNs == nil {
		return time.Time{}
	}
	return time.Now()
}

// endNext records the per-Next latency begun by startNext.
func (c *counters) endNext(start time.Time) {
	if !start.IsZero() {
		c.nextNs.ObserveSince(start)
	}
}

// bindContext attaches the measure context's evaluation and
// independence-oracle counters under the algorithm's name.
func bindContext(ctx measure.Context, reg *obs.Registry, algo string) {
	if reg == nil {
		return
	}
	ctx.Bind(reg, "measure."+algo)
}
