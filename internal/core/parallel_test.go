package core

import (
	"testing"

	"qporder/internal/coverage"
	"qporder/internal/obs"
	"qporder/internal/planspace"
	"qporder/internal/workload"
)

// TestParallelismIsDeterministic asserts the tentpole guarantee: for
// every orderer, measure, and workload, Parallelism(8) emits the exact
// plan sequence and utilities of Parallelism(1), and reports identical
// work counters (evaluations and independence checks) — the parallel
// path is a scheduling change, not a semantic one.
func TestParallelismIsDeterministic(t *testing.T) {
	for _, cfg := range []workload.Config{
		{QueryLen: 2, BucketSize: 4, Universe: 256, Zones: 2, Seed: 1},
		{QueryLen: 3, BucketSize: 4, Universe: 512, Zones: 3, Seed: 2},
		{QueryLen: 3, BucketSize: 6, Universe: 512, Zones: 3, Seed: 3},
		{QueryLen: 4, BucketSize: 3, Universe: 512, Zones: 2, Seed: 4},
	} {
		d := workload.Generate(cfg)
		total := int(d.Space.Size())
		for _, m := range measuresFor(d) {
			seqOrds := orderers(d, m)
			parOrds := orderers(d, m)
			for name := range seqOrds {
				seq, par := seqOrds[name], parOrds[name]
				if _, ok := par.(Parallel); !ok {
					t.Fatalf("alg=%s does not implement Parallel", name)
				}
				SetParallelism(seq, 1)
				SetParallelism(par, 8)
				seqPlans, seqUtils := Take(seq, total)
				parPlans, parUtils := Take(par, total)
				if len(parPlans) != len(seqPlans) {
					t.Errorf("cfg=%+v measure=%s alg=%s: parallel emitted %d plans, sequential %d",
						cfg, m.Name(), name, len(parPlans), len(seqPlans))
					continue
				}
				for i := range seqPlans {
					if parPlans[i].Key() != seqPlans[i].Key() {
						t.Errorf("cfg=%+v measure=%s alg=%s: step %d plan %s, sequential %s",
							cfg, m.Name(), name, i, parPlans[i].Key(), seqPlans[i].Key())
						break
					}
					if parUtils[i] != seqUtils[i] {
						t.Errorf("cfg=%+v measure=%s alg=%s: step %d utility %g, sequential %g",
							cfg, m.Name(), name, i, parUtils[i], seqUtils[i])
						break
					}
				}
				if pe, se := par.Context().Evals(), seq.Context().Evals(); pe != se {
					t.Errorf("cfg=%+v measure=%s alg=%s: parallel Evals %d, sequential %d",
						cfg, m.Name(), name, pe, se)
				}
				pc, ph := par.Context().IndepStats()
				sc, sh := seq.Context().IndepStats()
				if pc != sc || ph != sh {
					t.Errorf("cfg=%+v measure=%s alg=%s: parallel IndepStats (%d,%d), sequential (%d,%d)",
						cfg, m.Name(), name, pc, ph, sc, sh)
				}
			}
		}
	}
}

// TestParallelismKnobMidRun flips the worker count between Next calls;
// the emitted sequence must not depend on when the flip happens.
func TestParallelismKnobMidRun(t *testing.T) {
	d := workload.Generate(workload.Config{QueryLen: 3, BucketSize: 4, Universe: 512, Zones: 3, Seed: 6})
	total := int(d.Space.Size())
	m := coverage.NewMeasure(d.Coverage)
	for name, o := range orderers(d, m) {
		ref := orderers(d, m)[name]
		refPlans, _ := Take(ref, total)
		var got []*planspace.Plan
		for i := 0; i < total; i++ {
			SetParallelism(o, 1+(i%2)*7) // alternate 1 and 8
			p, _, ok := o.Next()
			if !ok {
				break
			}
			got = append(got, p)
		}
		if len(got) != len(refPlans) {
			t.Errorf("alg=%s: emitted %d plans, want %d", name, len(got), len(refPlans))
			continue
		}
		for i := range got {
			if got[i].Key() != refPlans[i].Key() {
				t.Errorf("alg=%s: step %d plan %s, want %s", name, i, got[i].Key(), refPlans[i].Key())
				break
			}
		}
	}
}

// TestParallelismBindsPoolGauges checks the observability satellite: an
// instrumented parallel orderer exposes the pool's gauges and counters
// under its algorithm prefix, and they move.
func TestParallelismBindsPoolGauges(t *testing.T) {
	d := workload.Generate(workload.Config{QueryLen: 3, BucketSize: 5, Universe: 512, Zones: 3, Seed: 8})
	m := coverage.NewMeasure(d.Coverage)
	o := NewPI([]*planspace.Space{d.Space}, m)
	reg := obs.NewRegistry()
	Instrument(o, reg)
	SetParallelism(o, 4)
	Take(o, int(d.Space.Size()))
	if got := reg.Counter("parallel.pi.items").Value(); got == 0 {
		t.Error("parallel.pi.items stayed 0 over a full parallel run")
	}
	if got := reg.Counter("parallel.pi.batches").Value(); got == 0 {
		t.Error("parallel.pi.batches stayed 0 over a full parallel run")
	}
}
