package core

import (
	"qporder/internal/abstraction"
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/planspace"
)

// IDrips is the iterated-Drips orderer of Section 5.2. Each Next call
// re-abstracts the sources of every remaining plan space, runs Drips over
// the abstract roots to find the current best plan (conditioned on the
// executed prefix), and removes that plan by plan-space splitting. The
// re-abstraction and the re-established dominance comparisons are the
// duplicated work the paper contrasts with Streamer.
type IDrips struct {
	ctx    measure.Context
	heur   abstraction.Heuristic
	spaces []*planspace.Space
	c      counters
	par    parcfg
	trace  traceState
}

// NewIDrips builds the orderer over the given spaces with the given
// grouping heuristic.
func NewIDrips(spaces []*planspace.Space, m measure.Measure, heur abstraction.Heuristic) *IDrips {
	cp := append([]*planspace.Space(nil), spaces...)
	return &IDrips{ctx: m.NewContext(), heur: heur, spaces: cp}
}

// Context implements Orderer.
func (d *IDrips) Context() measure.Context { return d.ctx }

// Instrument implements Instrumented.
func (d *IDrips) Instrument(reg *obs.Registry) {
	d.c = newCounters(reg, "idrips")
	d.c.prov = d.trace.provPtr()
	bindContext(d.ctx, reg, "idrips")
	d.par.bind(reg)
}

// SetTrace implements Traced.
func (d *IDrips) SetTrace(tr *obs.Trace) {
	d.trace.set(tr, d.ctx)
	d.c.prov = d.trace.provPtr()
}

// Parallelism implements Parallel: candidate evaluation and dominance
// sweeps inside each Drips run fan out to n workers. Output is identical
// to the sequential run for every n.
func (d *IDrips) Parallelism(n int) { d.par.set(n) }

// Next implements Orderer.
func (d *IDrips) Next() (*planspace.Plan, float64, bool) {
	defer d.c.endNext(d.c.startNext())
	if len(d.spaces) == 0 {
		d.c.exhausted.Inc()
		return nil, 0, false
	}
	// Re-abstract every space and run Drips over all roots jointly.
	roots := make([]*planspace.Plan, len(d.spaces))
	for i, s := range d.spaces {
		roots[i] = s.Root(d.heur)
	}
	best, util := dripsBest(d.ctx, roots, d.c, d.par.evaluator(d.ctx, "idrips"))
	d.ctx.Observe(best)

	// Remove the winner from its (unique) containing space by splitting.
	srcs := best.Sources()
	idx := -1
	for i, s := range d.spaces {
		if s.Contains(srcs) {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic("core: iDrips winner not contained in any space: " + best.Key())
	}
	d.c.split()
	subs := d.spaces[idx].Remove(srcs)
	d.spaces = append(d.spaces[:idx], d.spaces[idx+1:]...)
	d.spaces = append(d.spaces, subs...)
	d.trace.emitPlan("idrips", best, util, d.ctx.Evals())
	return best, util, true
}

var _ Orderer = (*IDrips)(nil)
var _ Parallel = (*IDrips)(nil)
var _ Traced = (*IDrips)(nil)
