package core

import (
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/planspace"
)

// Exhaustive is the naive reference orderer: it materializes every
// concrete plan and, for each Next call, re-evaluates every remaining
// plan's conditional utility and returns the maximum. It is correct for
// every utility measure and serves as the ground truth in tests. With
// Parallelism(n), the per-Next full re-evaluation shards across workers
// and the shard winners merge deterministically.
type Exhaustive struct {
	ctx     measure.Context
	remain  []*planspace.Plan
	started bool
	c       counters
	par     parcfg
	trace   traceState
}

// NewExhaustive builds the orderer over the concrete plans of the given
// spaces.
func NewExhaustive(spaces []*planspace.Space, m measure.Measure) *Exhaustive {
	var plans []*planspace.Plan
	for _, s := range spaces {
		plans = append(plans, s.Enumerate()...)
	}
	return &Exhaustive{ctx: m.NewContext(), remain: plans}
}

// Context implements Orderer.
func (e *Exhaustive) Context() measure.Context { return e.ctx }

// Instrument implements Instrumented.
func (e *Exhaustive) Instrument(reg *obs.Registry) {
	e.c = newCounters(reg, "exhaustive")
	e.c.prov = e.trace.provPtr()
	bindContext(e.ctx, reg, "exhaustive")
	e.par.bind(reg)
}

// SetTrace implements Traced.
func (e *Exhaustive) SetTrace(tr *obs.Trace) {
	e.trace.set(tr, e.ctx)
	e.c.prov = e.trace.provPtr()
}

// Parallelism implements Parallel.
func (e *Exhaustive) Parallelism(n int) { e.par.set(n) }

// Next implements Orderer.
func (e *Exhaustive) Next() (*planspace.Plan, float64, bool) {
	defer e.c.endNext(e.c.startNext())
	if len(e.remain) == 0 {
		e.c.exhausted.Inc()
		return nil, 0, false
	}
	var bestIdx int
	var bestU float64
	if ev := e.par.evaluator(e.ctx, "exhaustive"); ev != nil && ev.Parallel(len(e.remain)) {
		utils := make([]float64, len(e.remain))
		ev.Map(len(e.remain), func(ctx measure.Context, i int) {
			utils[i] = ctx.Evaluate(e.remain[i]).Lo // concrete: point
		})
		bestIdx = ev.Pool().Best(len(e.remain), func(i, j int) bool {
			return betterPlan(utils[i], e.remain[i], utils[j], e.remain[j])
		})
		bestU = utils[bestIdx]
	} else {
		bestIdx = -1
		for i, p := range e.remain {
			u := e.ctx.Evaluate(p).Lo // concrete: point
			if bestIdx < 0 || betterPlan(u, p, bestU, e.remain[bestIdx]) {
				bestIdx, bestU = i, u
			}
		}
	}
	d := e.remain[bestIdx]
	e.remain = append(e.remain[:bestIdx], e.remain[bestIdx+1:]...)
	e.ctx.Observe(d)
	e.trace.emitPlan("exhaustive", d, bestU, e.ctx.Evals())
	return d, bestU, true
}

var _ Orderer = (*Exhaustive)(nil)
var _ Parallel = (*Exhaustive)(nil)
var _ Traced = (*Exhaustive)(nil)
