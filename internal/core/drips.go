package core

import (
	"qporder/internal/interval"
	"qporder/internal/measure"
	"qporder/internal/parallel"
	"qporder/internal/planspace"
)

// dripsCand is one candidate plan in a Drips run. Concreteness is
// cached at construction: the refinement loop re-checks every frontier
// candidate each iteration, and Plan.Concrete walks all nodes per call.
type dripsCand struct {
	p    *planspace.Plan
	u    interval.Interval
	conc bool
}

// parDomThreshold is the candidate-frontier size from which the
// dominance sweep fans out: below it the sweep is pure float compares
// and fan-out costs more than it saves.
const parDomThreshold = 256

// DripsBest runs the Drips refinement loop (Section 5.1) over the given
// abstract root plans and returns the best concrete plan with its
// utility, conditioned on ctx's executed prefix. Candidates are evaluated
// as intervals; dominated candidates (Lo(p) >= Hi(q)) are eliminated
// without evaluating their concrete plans; the most promising abstract
// candidate (highest upper bound) is refined each round.
//
// roots must be non-empty and collectively non-empty; the winner always
// exists.
func DripsBest(ctx measure.Context, roots []*planspace.Plan) (*planspace.Plan, float64) {
	return dripsBest(ctx, roots, counters{}, nil)
}

// dripsBest is DripsBest with work counters (disabled when c is zero)
// and an optional parallel evaluator (nil = sequential). Candidate
// evaluation fans out to the evaluator's pool; results merge back in
// candidate order, so the refinement trajectory — and hence the winner —
// is identical to the sequential run.
func dripsBest(ctx measure.Context, roots []*planspace.Plan, c counters,
	ev *parallel.Evaluator) (*planspace.Plan, float64) {
	cands := make([]*dripsCand, 0, len(roots))
	for i, u := range evalAll(ctx, ev, roots) {
		cands = append(cands, &dripsCand{p: roots[i], u: u, conc: roots[i].Concrete()})
	}
	for {
		cands = pruneDominated(cands, c, ev)
		// Termination: a single concrete candidate, or only concrete
		// candidates left (ties).
		allConcrete := true
		for _, c := range cands {
			if !c.conc {
				allConcrete = false
				break
			}
		}
		if allConcrete {
			best := cands[0]
			for _, c := range cands[1:] {
				if betterPlan(c.u.Lo, c.p, best.u.Lo, best.p) {
					best = c
				}
			}
			return best.p, best.u.Lo
		}
		// Refine the most promising abstract candidate.
		ri := -1
		for i, c := range cands {
			if c.conc {
				continue
			}
			if ri < 0 || refineBefore(c, cands[ri]) {
				ri = i
			}
		}
		target := cands[ri]
		cands = append(cands[:ri], cands[ri+1:]...)
		c.refine()
		children := target.p.Refine()
		for i, u := range evalAll(ctx, ev, children) {
			cands = append(cands, &dripsCand{p: children[i], u: u, conc: children[i].Concrete()})
		}
	}
}

// refineBefore orders refinement priority: higher upper bound first, then
// wider interval, then key (deterministic).
func refineBefore(a, b *dripsCand) bool {
	if a.u.Hi != b.u.Hi {
		return a.u.Hi > b.u.Hi
	}
	if a.u.Width() != b.u.Width() {
		return a.u.Width() > b.u.Width()
	}
	return a.p.Key() < b.p.Key()
}

// pruneDominated removes every candidate dominated by the candidate with
// the maximum lower bound (the only candidate that can dominate others en
// masse; pairwise checks against non-maximal candidates are subsumed).
// Large frontiers fan the per-candidate dominance tests out to the
// evaluator's pool; the keep-mask is index-addressed, so the surviving
// candidates — and their order — match the sequential sweep exactly.
func pruneDominated(cands []*dripsCand, cnt counters, ev *parallel.Evaluator) []*dripsCand {
	if len(cands) <= 1 {
		return cands
	}
	w := cands[0]
	for _, c := range cands[1:] {
		if c.u.Lo > w.u.Lo || (c.u.Lo == w.u.Lo && c.p.Key() < w.p.Key()) {
			w = c
		}
	}
	if ev != nil && len(cands) >= parDomThreshold && ev.Parallel(len(cands)) {
		w.p.Key() // pre-built once so workers only take the cached read
		keep := make([]bool, len(cands))
		ev.Pool().Run(len(cands), func(_, i int) {
			c := cands[i]
			if c == w {
				keep[i] = true
				return
			}
			dominated := dominatesPlan(w.u, c.u, w.p, c.p)
			cnt.domTest(dominated)
			keep[i] = !dominated
		})
		out := cands[:0]
		for i, c := range cands {
			if keep[i] {
				out = append(out, c)
			}
		}
		return out
	}
	out := cands[:0]
	for _, c := range cands {
		if c == w {
			out = append(out, c)
			continue
		}
		dominated := dominatesPlan(w.u, c.u, w.p, c.p)
		cnt.domTest(dominated)
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}
