package core

import (
	"qporder/internal/interval"
	"qporder/internal/measure"
	"qporder/internal/planspace"
)

// dripsCand is one candidate plan in a Drips run.
type dripsCand struct {
	p *planspace.Plan
	u interval.Interval
}

// DripsBest runs the Drips refinement loop (Section 5.1) over the given
// abstract root plans and returns the best concrete plan with its
// utility, conditioned on ctx's executed prefix. Candidates are evaluated
// as intervals; dominated candidates (Lo(p) >= Hi(q)) are eliminated
// without evaluating their concrete plans; the most promising abstract
// candidate (highest upper bound) is refined each round.
//
// roots must be non-empty and collectively non-empty; the winner always
// exists.
func DripsBest(ctx measure.Context, roots []*planspace.Plan) (*planspace.Plan, float64) {
	return dripsBest(ctx, roots, counters{})
}

// dripsBest is DripsBest with work counters (disabled when c is zero).
func dripsBest(ctx measure.Context, roots []*planspace.Plan, c counters) (*planspace.Plan, float64) {
	cands := make([]*dripsCand, 0, len(roots))
	for _, r := range roots {
		cands = append(cands, &dripsCand{p: r, u: ctx.Evaluate(r)})
	}
	for {
		cands = pruneDominated(cands, c)
		// Termination: a single concrete candidate, or only concrete
		// candidates left (ties).
		allConcrete := true
		for _, c := range cands {
			if !c.p.Concrete() {
				allConcrete = false
				break
			}
		}
		if allConcrete {
			best := cands[0]
			for _, c := range cands[1:] {
				if better(c.u.Lo, c.p.Key(), best.u.Lo, best.p.Key()) {
					best = c
				}
			}
			return best.p, best.u.Lo
		}
		// Refine the most promising abstract candidate.
		ri := -1
		for i, c := range cands {
			if c.p.Concrete() {
				continue
			}
			if ri < 0 || refineBefore(c, cands[ri]) {
				ri = i
			}
		}
		target := cands[ri]
		cands = append(cands[:ri], cands[ri+1:]...)
		c.refines.Inc()
		for _, ch := range target.p.Refine() {
			cands = append(cands, &dripsCand{p: ch, u: ctx.Evaluate(ch)})
		}
	}
}

// refineBefore orders refinement priority: higher upper bound first, then
// wider interval, then key (deterministic).
func refineBefore(a, b *dripsCand) bool {
	if a.u.Hi != b.u.Hi {
		return a.u.Hi > b.u.Hi
	}
	if a.u.Width() != b.u.Width() {
		return a.u.Width() > b.u.Width()
	}
	return a.p.Key() < b.p.Key()
}

// pruneDominated removes every candidate dominated by the candidate with
// the maximum lower bound (the only candidate that can dominate others en
// masse; pairwise checks against non-maximal candidates are subsumed).
func pruneDominated(cands []*dripsCand, cnt counters) []*dripsCand {
	if len(cands) <= 1 {
		return cands
	}
	w := cands[0]
	for _, c := range cands[1:] {
		if c.u.Lo > w.u.Lo || (c.u.Lo == w.u.Lo && c.p.Key() < w.p.Key()) {
			w = c
		}
	}
	out := cands[:0]
	for _, c := range cands {
		if c != w {
			cnt.domTests.Inc()
		}
		if c == w || !dominates(w.u, c.u, w.p.Key(), c.p.Key()) {
			out = append(out, c)
		}
	}
	return out
}
