package core

import (
	"container/heap"
	"fmt"

	"qporder/internal/abstraction"
	"qporder/internal/lav"
	"qporder/internal/measure"
	"qporder/internal/obs"
	"qporder/internal/planspace"
)

// Greedy is the Section 4 algorithm for fully monotonic utility measures.
// Each plan space keeps its buckets sorted best-first, so its best plan is
// the tuple of first sources. A priority queue over spaces yields the
// global best plan; removing it splits its space by the recursive
// splitting construction (Figure 2), and the sub-spaces' best plans enter
// the queue. Each Next is O(n·m·log k) after an O(n·m·log m) setup.
//
// Greedy requires the measure to be fully monotonic; the fully monotonic
// measures in this codebase are also fully plan-independent, so per-bucket
// orders never change as plans execute.
type Greedy struct {
	ctx   measure.Context
	m     measure.Measure
	pq    spaceHeap
	c     counters
	par   parcfg
	trace traceState
}

// spaceEntry is one plan space with its best plan's utility.
type spaceEntry struct {
	space *planspace.Space // buckets stored best-first
	best  *planspace.Plan
	util  float64
}

type spaceHeap []*spaceEntry

func (h spaceHeap) Len() int { return len(h) }
func (h spaceHeap) Less(i, j int) bool {
	return betterPlan(h[i].util, h[i].best, h[j].util, h[j].best)
}
func (h spaceHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *spaceHeap) Push(x interface{}) { *h = append(*h, x.(*spaceEntry)) }
func (h *spaceHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewGreedy builds the orderer. It returns an error if the measure is not
// fully monotonic (Greedy would produce a wrong ordering).
func NewGreedy(spaces []*planspace.Space, m measure.Measure) (*Greedy, error) {
	if !m.FullyMonotonic() {
		return nil, fmt.Errorf("core: Greedy requires a fully monotonic measure, %s is not", m.Name())
	}
	g := &Greedy{ctx: m.NewContext(), m: m}
	for _, s := range spaces {
		ordered, err := orderSpace(s, m)
		if err != nil {
			return nil, err
		}
		g.pq = append(g.pq, g.entryFor(ordered))
	}
	heap.Init(&g.pq)
	return g, nil
}

// orderSpace returns a copy of the space with every bucket sorted
// best-first by the measure's per-bucket total order.
func orderSpace(s *planspace.Space, m measure.Measure) (*planspace.Space, error) {
	buckets := make([][]lav.SourceID, s.Len())
	for i, b := range s.Buckets {
		ordered, ok := m.BucketOrder(i, b)
		if !ok {
			return nil, fmt.Errorf("core: measure %s has no total order for bucket %d", m.Name(), i)
		}
		buckets[i] = ordered
	}
	return &planspace.Space{Buckets: buckets}, nil
}

// bestPlanOf builds the space's best plan: the tuple of first sources
// (buckets must already be sorted best-first).
func bestPlanOf(s *planspace.Space) *planspace.Plan {
	nodes := make([]*abstraction.Node, s.Len())
	for i, b := range s.Buckets {
		nodes[i] = &abstraction.Node{Bucket: i, Sources: []lav.SourceID{b[0]}}
	}
	return planspace.New(nodes...)
}

// entryFor evaluates the space's best plan and wraps it as a queue entry.
func (g *Greedy) entryFor(s *planspace.Space) *spaceEntry {
	best := bestPlanOf(s)
	util := g.ctx.Evaluate(best).Lo
	return &spaceEntry{space: s, best: best, util: util}
}

// Context implements Orderer.
func (g *Greedy) Context() measure.Context { return g.ctx }

// Instrument implements Instrumented.
func (g *Greedy) Instrument(reg *obs.Registry) {
	g.c = newCounters(reg, "greedy")
	g.c.prov = g.trace.provPtr()
	bindContext(g.ctx, reg, "greedy")
	g.par.bind(reg)
}

// SetTrace implements Traced.
func (g *Greedy) SetTrace(tr *obs.Trace) {
	g.trace.set(tr, g.ctx)
	g.c.prov = g.trace.provPtr()
}

// Parallelism implements Parallel. Greedy's per-Next work is one
// evaluation per sub-space (at most the query length), so fan-out only
// engages on wide splits; the knob exists so every orderer honors the
// same configuration surface.
func (g *Greedy) Parallelism(n int) { g.par.set(n) }

// Next implements Orderer.
func (g *Greedy) Next() (*planspace.Plan, float64, bool) {
	defer g.c.endNext(g.c.startNext())
	if g.pq.Len() == 0 {
		g.c.exhausted.Inc()
		return nil, 0, false
	}
	top := heap.Pop(&g.pq).(*spaceEntry)
	d := top.best
	g.ctx.Observe(d)
	g.c.split()
	// Splitting preserves the best-first bucket order: Remove keeps the
	// relative order of remaining sources and pins prefixes to singletons.
	subs := top.space.Remove(d.Sources())
	if ev := g.par.evaluator(g.ctx, "greedy"); ev != nil && ev.Parallel(len(subs)) {
		bests := make([]*planspace.Plan, len(subs))
		for i, sub := range subs {
			bests[i] = bestPlanOf(sub)
		}
		for i, u := range ev.Eval(bests) {
			heap.Push(&g.pq, &spaceEntry{space: subs[i], best: bests[i], util: u.Lo})
		}
	} else {
		for _, sub := range subs {
			heap.Push(&g.pq, g.entryFor(sub))
		}
	}
	g.trace.emitPlan("greedy", d, top.util, g.ctx.Evals())
	return d, top.util, true
}

var _ Orderer = (*Greedy)(nil)
var _ Parallel = (*Greedy)(nil)
var _ Traced = (*Greedy)(nil)
