package planspace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qporder/internal/abstraction"
	"qporder/internal/lav"
)

func ids(xs ...int) []lav.SourceID {
	out := make([]lav.SourceID, len(xs))
	for i, x := range xs {
		out[i] = lav.SourceID(x)
	}
	return out
}

func TestSpaceSizeAndContains(t *testing.T) {
	s := NewSpace([][]lav.SourceID{ids(0, 1, 2), ids(3, 4, 5)})
	if s.Size() != 9 {
		t.Errorf("Size = %d, want 9", s.Size())
	}
	if !s.Contains(ids(1, 4)) {
		t.Error("Contains(1,4) = false")
	}
	if s.Contains(ids(3, 4)) {
		t.Error("Contains(3,4) = true (3 not in bucket 1)")
	}
	if s.Contains(ids(1)) {
		t.Error("Contains with wrong arity")
	}
}

// TestRemovePartitions verifies the Figure 2 splitting construction: the
// returned spaces partition the original minus the removed plan.
func TestRemovePartitions(t *testing.T) {
	s := NewSpace([][]lav.SourceID{ids(0, 1, 2), ids(3, 4, 5)})
	subs := s.Remove(ids(0, 4))
	total := int64(0)
	seen := make(map[string]int)
	for _, sub := range subs {
		total += sub.Size()
		for _, p := range sub.Enumerate() {
			seen[p.Key()]++
		}
	}
	if total != 8 {
		t.Errorf("sub-spaces cover %d plans, want 8", total)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("plan %s appears %d times across sub-spaces", k, n)
		}
	}
	if _, dup := seen["0|4"]; dup {
		t.Error("removed plan still present")
	}
}

func TestRemoveRandomizedPartitionProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		buckets := make([][]lav.SourceID, n)
		next := 0
		for i := range buckets {
			sz := 1 + rng.Intn(4)
			for j := 0; j < sz; j++ {
				buckets[i] = append(buckets[i], lav.SourceID(next))
				next++
			}
		}
		s := NewSpace(buckets)
		all := s.Enumerate()
		victim := all[rng.Intn(len(all))]
		subs := s.Remove(victim.Sources())
		seen := make(map[string]bool)
		for _, sub := range subs {
			for _, p := range sub.Enumerate() {
				if seen[p.Key()] {
					return false // overlap between sub-spaces
				}
				seen[p.Key()] = true
			}
		}
		if seen[victim.Key()] {
			return false
		}
		return len(seen) == len(all)-1
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestRemoveOfForeignPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic removing foreign plan")
		}
	}()
	NewSpace([][]lav.SourceID{ids(0, 1)}).Remove(ids(9))
}

func TestEnumerateSharesLeafNodes(t *testing.T) {
	s := NewSpace([][]lav.SourceID{ids(0, 1), ids(2)})
	plans := s.Enumerate()
	if len(plans) != 2 {
		t.Fatalf("Enumerate returned %d plans", len(plans))
	}
	if plans[0].Nodes[1] != plans[1].Nodes[1] {
		t.Error("leaf node for shared source not shared between plans")
	}
}

func TestPlanKeyAndConcrete(t *testing.T) {
	s := NewSpace([][]lav.SourceID{ids(0, 1, 2), ids(3, 4)})
	root := s.Root(abstraction.ByID())
	if root.Concrete() {
		t.Error("root of multi-source space reported concrete")
	}
	if root.NumConcrete() != 6 {
		t.Errorf("NumConcrete = %d, want 6", root.NumConcrete())
	}
	if k := root.Key(); k != "{0,1,2}|{3,4}" {
		t.Errorf("root key = %q", k)
	}
	leaf := s.Enumerate()[0]
	if !leaf.Concrete() {
		t.Error("enumerated plan not concrete")
	}
	if k := leaf.Key(); k != "0|3" {
		t.Errorf("leaf key = %q", k)
	}
}

func TestRefineDescendsToConcrete(t *testing.T) {
	s := NewSpace([][]lav.SourceID{ids(0, 1, 2, 3), ids(4, 5)})
	work := []*Plan{s.Root(abstraction.ByID())}
	seen := make(map[string]bool)
	concrete := 0
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[p.Key()] {
			t.Fatalf("plan %s reached twice", p.Key())
		}
		seen[p.Key()] = true
		if p.Concrete() {
			concrete++
			continue
		}
		kids := p.Refine()
		if len(kids) < 2 {
			t.Fatalf("Refine of %s returned %d children", p.Key(), len(kids))
		}
		var sum int64
		for _, ch := range kids {
			sum += ch.NumConcrete()
		}
		if sum != p.NumConcrete() {
			t.Fatalf("children of %s cover %d plans, want %d", p.Key(), sum, p.NumConcrete())
		}
		work = append(work, kids...)
	}
	if concrete != 8 {
		t.Errorf("refinement reached %d concrete plans, want 8", concrete)
	}
}

func TestRefineConcretePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic refining concrete plan")
		}
	}()
	NewSpace([][]lav.SourceID{ids(0)}).Enumerate()[0].Refine()
}

func TestSameSources(t *testing.T) {
	s := NewSpace([][]lav.SourceID{ids(0, 1), ids(2)})
	plans := s.Enumerate()
	if SameSources(plans[0], plans[1]) {
		t.Error("distinct plans reported same")
	}
	again := s.Enumerate()
	if !SameSources(plans[0], again[0]) {
		t.Error("identical plans from separate enumerations reported different")
	}
}

func TestFormatUsesCatalogNames(t *testing.T) {
	cat := lav.NewCatalog()
	st := lav.Stats{Tuples: 1}
	cat.MustAdd("alpha", nil, st)
	cat.MustAdd("beta", nil, st)
	s := NewSpace([][]lav.SourceID{ids(0, 1)})
	root := s.Root(abstraction.ByID())
	if got := root.Format(cat); got != "{alpha beta}" {
		t.Errorf("Format = %q", got)
	}
	leaf := s.Enumerate()[1]
	if got := leaf.Format(cat); got != "beta" {
		t.Errorf("Format = %q", got)
	}
}

// TestRemoveSharesSuffixBuckets pins the copy-on-write representation:
// suffix buckets of a split are the receiver's own slices, and prefix
// pins alias one shared array without being able to clobber each other.
func TestRemoveSharesSuffixBuckets(t *testing.T) {
	s := NewSpace([][]lav.SourceID{ids(0, 1, 2), ids(3, 4, 5), ids(6, 7)})
	subs := s.Remove(ids(0, 4, 7))
	if len(subs) != 3 {
		t.Fatalf("Remove produced %d splits, want 3", len(subs))
	}
	// Split 0 excludes at bucket 0; buckets 1 and 2 must be shared.
	if &subs[0].Buckets[1][0] != &s.Buckets[1][0] || &subs[0].Buckets[2][0] != &s.Buckets[2][0] {
		t.Error("suffix buckets were copied, want shared")
	}
	// Pins are capacity-clamped singletons: appending to one must not
	// write into the next pin's slot.
	p := subs[2].Buckets[0] // pinned to source 0
	_ = append(p, 99)
	if subs[2].Buckets[1][0] != 4 {
		t.Error("append to a pin clobbered the neighboring pin")
	}
	// The receiver is untouched.
	if !s.Contains(ids(0, 4, 7)) {
		t.Error("Remove mutated the receiver")
	}
}

// TestContainsIndexedWideBuckets exercises the hash-index path (bucket
// width >= indexThreshold) against the scan path.
func TestContainsIndexedWideBuckets(t *testing.T) {
	wide := make([]lav.SourceID, 3*indexThreshold)
	for i := range wide {
		wide[i] = lav.SourceID(i * 2) // even IDs only
	}
	s := NewSpace([][]lav.SourceID{wide, ids(1000, 1001)})
	if !s.Contains([]lav.SourceID{wide[len(wide)-1], 1001}) {
		t.Error("Contains missed a member in a wide bucket")
	}
	if s.Contains([]lav.SourceID{3, 1001}) {
		t.Error("Contains accepted a non-member odd ID")
	}
	if s.idx != nil {
		t.Errorf("index built after only 2 probes, want none before %d", indexProbeThreshold)
	}
	for i := 0; i < indexProbeThreshold; i++ { // cross the probe threshold
		if !s.Contains([]lav.SourceID{wide[0], 1000}) {
			t.Fatal("Contains missed a member")
		}
	}
	if s.idx == nil || s.idx[0] == nil {
		t.Error("wide bucket did not get an index after repeated probes")
	}
	if s.idx[1] != nil {
		t.Error("narrow bucket got an index")
	}
	if !s.Contains([]lav.SourceID{wide[len(wide)-1], 1001}) {
		t.Error("indexed Contains missed a member")
	}
	if s.Contains([]lav.SourceID{3, 1001}) {
		t.Error("indexed Contains accepted a non-member odd ID")
	}
}

// BenchmarkSpaceContains compares membership on wide buckets through the
// public Contains (indexed) against the raw linear scan it replaced.
func BenchmarkSpaceContains(b *testing.B) {
	const width = 80
	buckets := make([][]lav.SourceID, 3)
	for i := range buckets {
		buckets[i] = make([]lav.SourceID, width)
		for j := range buckets[i] {
			buckets[i][j] = lav.SourceID(i*width + j)
		}
	}
	s := NewSpace(buckets)
	// Probe the worst case: last member of every bucket.
	probe := []lav.SourceID{width - 1, 2*width - 1, 3*width - 1}
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !s.Contains(probe) {
				b.Fatal("probe not found")
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, src := range probe {
				if !containsID(s.Buckets[j], src) {
					b.Fatal("probe not found")
				}
			}
		}
	})
}

// BenchmarkSpaceRemoveCOW measures the copy-on-write Remove on wide
// buckets (the Greedy/iDrips split-heavy regime).
func BenchmarkSpaceRemoveCOW(b *testing.B) {
	const width = 80
	buckets := make([][]lav.SourceID, 3)
	for i := range buckets {
		buckets[i] = make([]lav.SourceID, width)
		for j := range buckets[i] {
			buckets[i][j] = lav.SourceID(i*width + j)
		}
	}
	s := NewSpace(buckets)
	plan := []lav.SourceID{0, width, 2 * width}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := s.Remove(plan); len(got) != 3 {
			b.Fatal("unexpected split count")
		}
	}
}
