package planspace

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qporder/internal/abstraction"
	"qporder/internal/lav"
)

// indexThreshold is the bucket width at which Contains switches from a
// linear scan to a hash index. Narrow buckets scan faster than they hash;
// wide buckets (the split-heavy Greedy/iDrips regimes at bucket size 80)
// pay the one-time index build and then answer membership in O(1).
const indexThreshold = 16

// indexProbeThreshold is how many Contains calls a space absorbs before
// building the index. Most spaces are membership-checked at most a few
// times in their life (splitting algorithms derive thousands of
// short-lived subspaces), and for those the map build costs far more
// than the scans it replaces, so the index only materializes on spaces
// that are probed repeatedly.
const indexProbeThreshold = 8

// Space is a plan space: the Cartesian product of per-subgoal buckets of
// concrete sources (Figure 2 of the paper). Spaces are immutable after
// construction — Remove returns new spaces sharing the receiver's bucket
// slices — which is also what makes the sharing safe.
type Space struct {
	Buckets [][]lav.SourceID

	// Membership index for Contains, built lazily once the space has
	// absorbed indexProbeThreshold probes: one map per bucket at least
	// indexThreshold wide, nil for narrow buckets.
	probes   atomic.Int32
	idxReady atomic.Bool
	idxOnce  sync.Once
	idx      []map[lav.SourceID]struct{}

	// Memoized enumeration: the space is immutable, so the concrete plan
	// list is a pure function of the buckets. A serving process builds
	// many orderers over one catalog, and re-enumerating (and re-scanning
	// the pointer-dense plan slab in every GC cycle it triggers) was a
	// measurable slice of per-request latency.
	enumOnce sync.Once
	enum     []*Plan
}

// NewSpace builds a space over the given buckets. Buckets are copied.
func NewSpace(buckets [][]lav.SourceID) *Space {
	if len(buckets) == 0 {
		panic("planspace: space with no buckets")
	}
	cp := make([][]lav.SourceID, len(buckets))
	for i, b := range buckets {
		if len(b) == 0 {
			panic(fmt.Sprintf("planspace: empty bucket %d", i))
		}
		cp[i] = append([]lav.SourceID(nil), b...)
	}
	return &Space{Buckets: cp}
}

// Len returns the number of buckets (query length).
func (s *Space) Len() int { return len(s.Buckets) }

// Size returns the number of concrete plans in the space.
func (s *Space) Size() int64 {
	n := int64(1)
	for _, b := range s.Buckets {
		n *= int64(len(b))
	}
	return n
}

// buildIndex constructs the per-bucket membership maps for wide buckets.
func (s *Space) buildIndex() {
	s.idx = make([]map[lav.SourceID]struct{}, len(s.Buckets))
	for i, b := range s.Buckets {
		if len(b) < indexThreshold {
			continue
		}
		m := make(map[lav.SourceID]struct{}, len(b))
		for _, id := range b {
			m[id] = struct{}{}
		}
		s.idx[i] = m
	}
}

// Contains reports whether the concrete plan (one source per bucket) lies
// in this space. Repeatedly probed spaces answer wide buckets from a
// lazily built membership index; the first few probes (and all probes on
// narrow buckets) scan. Safe for concurrent use.
func (s *Space) Contains(plan []lav.SourceID) bool {
	if len(plan) != len(s.Buckets) {
		return false
	}
	if !s.idxReady.Load() {
		if s.probes.Add(1) < indexProbeThreshold {
			for i, src := range plan {
				if !containsID(s.Buckets[i], src) {
					return false
				}
			}
			return true
		}
		s.idxOnce.Do(s.buildIndex)
		s.idxReady.Store(true)
	}
	for i, src := range plan {
		if m := s.idx[i]; m != nil {
			if _, ok := m[src]; !ok {
				return false
			}
		} else if !containsID(s.Buckets[i], src) {
			return false
		}
	}
	return true
}

func containsID(b []lav.SourceID, id lav.SourceID) bool {
	for _, x := range b {
		if x == id {
			return true
		}
	}
	return false
}

// Remove removes one concrete plan from the space by the recursive
// splitting construction of Section 4 (Figure 2): splitting bucket i
// produces the space whose buckets 0..i-1 are pinned to the plan's
// sources, bucket i excludes the plan's source, and buckets i+1.. are
// unchanged. The returned spaces partition s minus the plan. Empty spaces
// (from singleton buckets) are omitted. Remove panics if the plan is not
// in the space.
// Remove is copy-on-write: the pinned prefix singletons all view one
// copy of the plan, the unchanged suffix buckets are shared with the
// receiver, and only the excluding bucket is materialized per split.
// Sharing is safe because spaces never mutate their buckets; the
// three-index subslices keep an append on one pin from clobbering its
// neighbors.
func (s *Space) Remove(plan []lav.SourceID) []*Space {
	if len(plan) != len(s.Buckets) {
		panic(fmt.Sprintf("planspace: Remove of plan %v not contained in space", plan))
	}
	pins := append([]lav.SourceID(nil), plan...)
	var out []*Space
	for i := range s.Buckets {
		rest := without(s.Buckets[i], plan[i])
		if len(rest) == len(s.Buckets[i]) {
			// without removed nothing: the plan's source is not in this
			// bucket, so the plan is not in the space. Validating here
			// keeps Remove off the Contains path (and its probe-counted
			// index) — the scan already happens inside without.
			panic(fmt.Sprintf("planspace: Remove of plan %v not contained in space", plan))
		}
		if len(rest) == 0 {
			continue
		}
		buckets := make([][]lav.SourceID, len(s.Buckets))
		for j := range s.Buckets {
			switch {
			case j < i:
				buckets[j] = pins[j : j+1 : j+1]
			case j == i:
				buckets[j] = rest
			default:
				buckets[j] = s.Buckets[j]
			}
		}
		out = append(out, &Space{Buckets: buckets})
	}
	return out
}

func without(b []lav.SourceID, id lav.SourceID) []lav.SourceID {
	out := make([]lav.SourceID, 0, len(b)-1)
	for _, x := range b {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// Enumerate returns every concrete plan in the space, sharing one leaf
// node per (bucket, source) so utility caches keyed on node identity are
// effective. Plans are produced in lexicographic bucket order.
//
// Plans and their node lists are carved from two slabs — three
// allocations for the whole space instead of two per plan — which cuts
// both allocator time and GC scan work for the full-enumeration
// orderers (PI's initial scoring sweep allocates nothing else of this
// magnitude). Plans remain individually valid forever; the slabs are
// simply retained as long as any plan is.
func (s *Space) Enumerate() []*Plan {
	s.enumOnce.Do(s.enumerate)
	return s.enum
}

// enumerate builds the memoized plan list. Callers of Enumerate share
// the returned slice and the plans; both are immutable by the package
// contract, and Plan's lazy key is already safe for concurrent readers.
func (s *Space) enumerate() {
	leaves := abstraction.BuildLeaves(s.Buckets)
	q := len(leaves)
	if q == 0 {
		panic("planspace: empty plan")
	}
	total := int(s.Size())
	out := make([]*Plan, 0, total)
	plans := make([]Plan, total)
	slab := make([]*abstraction.Node, total*q)
	nodes := make([]*abstraction.Node, q)
	var rec func(i int)
	rec = func(i int) {
		if i == q {
			k := len(out)
			cp := slab[k*q : (k+1)*q : (k+1)*q]
			copy(cp, nodes)
			p := &plans[k]
			p.Nodes = cp
			out = append(out, p)
			return
		}
		for _, leaf := range leaves[i] {
			nodes[i] = leaf
			rec(i + 1)
		}
	}
	rec(0)
	s.enum = out
}

// Root abstracts the space into its top plan using the given heuristic:
// one hierarchy root per bucket (Step 1 of Figure 5).
func (s *Space) Root(h abstraction.Heuristic) *Plan {
	roots := abstraction.Build(s.Buckets, h)
	return New(roots...)
}

// String renders bucket contents compactly.
func (s *Space) String() string {
	out := ""
	for i, b := range s.Buckets {
		if i > 0 {
			out += " × "
		}
		out += fmt.Sprintf("B%d%v", i+1, b)
	}
	return out
}
