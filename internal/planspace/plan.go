// Package planspace represents query plans and plan spaces.
//
// A plan space is the Cartesian product of a set of buckets (Section 2).
// A plan assigns one abstraction node to each bucket position: if all
// nodes are leaves the plan is concrete, otherwise it is an abstract plan
// representing the Cartesian product of its nodes' members (Section 5.1).
package planspace

import (
	"strconv"
	"strings"
	"sync/atomic"

	"qporder/internal/abstraction"
	"qporder/internal/lav"
)

// Plan is a (possibly abstract) query plan: one node per query subgoal.
// Plans are immutable; Nodes must not be modified after construction.
// Key is safe to call from concurrent goroutines (the parallel ordering
// paths share plans across workers).
type Plan struct {
	Nodes []*abstraction.Node
	key   atomic.Pointer[string] // lazily built canonical key
}

// New returns a plan over the given nodes.
func New(nodes ...*abstraction.Node) *Plan {
	if len(nodes) == 0 {
		panic("planspace: empty plan")
	}
	return &Plan{Nodes: nodes}
}

// Len returns the number of positions (the query length).
func (p *Plan) Len() int { return len(p.Nodes) }

// Concrete reports whether every position is a single source.
func (p *Plan) Concrete() bool {
	for _, n := range p.Nodes {
		if !n.IsLeaf() {
			return false
		}
	}
	return true
}

// NumConcrete returns the number of concrete plans this plan represents.
func (p *Plan) NumConcrete() int64 {
	n := int64(1)
	for _, nd := range p.Nodes {
		n *= int64(nd.Size())
	}
	return n
}

// Sources returns the source at each position; it panics if the plan is
// abstract.
func (p *Plan) Sources() []lav.SourceID {
	out := make([]lav.SourceID, len(p.Nodes))
	for i, n := range p.Nodes {
		out[i] = n.Source()
	}
	return out
}

// Key returns a canonical string identity for the plan. Concrete plans of
// the same sources share a key even when built from distinct node objects.
// Racing callers may build the key twice; both build the same string, so
// the duplicated work is benign and the published value is stable.
func (p *Plan) Key() string {
	if k := p.key.Load(); k != nil {
		return *k
	}
	var b strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteByte('|')
		}
		if n.IsLeaf() {
			b.WriteString(strconv.Itoa(int(n.Sources[0])))
			continue
		}
		b.WriteByte('{')
		for j, s := range n.Sources {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(int(s)))
		}
		b.WriteByte('}')
	}
	k := b.String()
	p.key.Store(&k)
	return k
}

// Refine replaces the largest abstract node (earliest position on ties)
// with each of its children, returning the resulting lower-level plans.
// It panics on concrete plans.
func (p *Plan) Refine() []*Plan {
	pos := -1
	size := 1
	for i, n := range p.Nodes {
		if n.Size() > size {
			pos, size = i, n.Size()
		}
	}
	if pos < 0 {
		panic("planspace: Refine on concrete plan " + p.Key())
	}
	node := p.Nodes[pos]
	// One plan slab and one node slab for the whole sibling set (the
	// refinement loops churn through frontiers of these), not two
	// allocations per child.
	q := len(p.Nodes)
	n := len(node.Children)
	out := make([]*Plan, n)
	plans := make([]Plan, n)
	slab := make([]*abstraction.Node, n*q)
	for ci, ch := range node.Children {
		nodes := slab[ci*q : (ci+1)*q : (ci+1)*q]
		copy(nodes, p.Nodes)
		nodes[pos] = ch
		plans[ci].Nodes = nodes
		out[ci] = &plans[ci]
	}
	return out
}

// String renders "V1 V5" or "{V1 V2} V5" style, using catalog names when
// cat is non-nil.
func (p *Plan) String() string {
	parts := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		parts[i] = n.String()
	}
	return strings.Join(parts, " ")
}

// Format renders the plan with catalog source names, e.g. "V1 V5".
func (p *Plan) Format(cat *lav.Catalog) string {
	parts := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		if n.IsLeaf() {
			parts[i] = cat.Source(n.Source()).Name
			continue
		}
		names := make([]string, len(n.Sources))
		for j, s := range n.Sources {
			names[j] = cat.Source(s).Name
		}
		parts[i] = "{" + strings.Join(names, " ") + "}"
	}
	return strings.Join(parts, " ")
}

// SameSources reports whether two concrete plans access the same source at
// every position.
func SameSources(a, b *Plan) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Nodes {
		if !a.Nodes[i].IsLeaf() || !b.Nodes[i].IsLeaf() {
			return false
		}
		if a.Nodes[i].Source() != b.Nodes[i].Source() {
			return false
		}
	}
	return true
}
