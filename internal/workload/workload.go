// Package workload generates the synthetic experiment domains of
// Section 6: per-subgoal buckets of sources with randomized statistics, a
// coverage model with a controlled overlap rate, and the cost-model
// parameters. Generation is fully deterministic given a seed.
//
// Coverage construction (DESIGN.md §3): for each bucket, every element of
// the answer universe is assigned to one of Zones zones; each source
// picks a zone and covers an ε-noised *prefix* of the zone (under a fixed
// per-zone ordering), with a per-source extent γ. Two sources in one
// bucket overlap iff they share a zone, so the expected overlap rate is
// 1/Zones — Zones=3 reproduces the paper's 0.3 default.
//
// The near-nested structure is what makes the domain "amenable to
// abstraction" (Section 3): same-zone sources form an approximate chain
// (a larger source nearly contains a smaller one — think the paper's
// national chains vs. specialized stores), so a group's member
// intersection/union are close to its smallest/largest member and
// abstract plans get tight utility intervals, while the γ spread
// separates groups enough for Drips-style dominance to prune.
package workload

import (
	"fmt"
	"math/rand"

	"qporder/internal/bitset"
	"qporder/internal/costmodel"
	"qporder/internal/coverage"
	"qporder/internal/lav"
	"qporder/internal/planspace"
	"qporder/internal/schema"
)

// Config parameterizes domain generation.
type Config struct {
	// QueryLen is the number of subgoals (buckets). Paper default: 3.
	QueryLen int
	// BucketSize is the number of sources per bucket.
	BucketSize int
	// Universe is the synthetic answer-universe size for the coverage
	// model. Default 4096.
	Universe int
	// Zones controls the overlap rate ≈ 1/Zones. Default 3 (rate 0.3).
	Zones int
	// N is the selectivity denominator of cost measure (2). Default 50000.
	N float64
	// Seed drives all randomness.
	Seed int64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.QueryLen == 0 {
		c.QueryLen = 3
	}
	if c.BucketSize == 0 {
		c.BucketSize = 20
	}
	if c.Universe == 0 {
		c.Universe = 4096
	}
	if c.Zones == 0 {
		c.Zones = 3
	}
	if c.N == 0 {
		c.N = 50000
	}
	return c
}

// Domain is a generated experiment domain.
type Domain struct {
	Config   Config
	Catalog  *lav.Catalog
	Buckets  [][]lav.SourceID
	Space    *planspace.Space
	Coverage *coverage.Model
	Params   costmodel.Params
	Query    *schema.Query
	// zone[id] is the coverage zone of each source, exposed for the
	// zone-aware similarity key (see SimilarityKey).
	zone map[lav.SourceID]int
	// setSize[id] is |coverage set| per source.
	setSize map[lav.SourceID]int
}

// Generate builds a domain from the configuration.
func Generate(cfg Config) *Domain {
	cfg = cfg.withDefaults()
	if cfg.QueryLen < 1 || cfg.BucketSize < 1 {
		panic(fmt.Sprintf("workload: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Domain{
		Config:   cfg,
		Catalog:  lav.NewCatalog(),
		Coverage: coverage.NewModel(cfg.Universe),
		Params:   costmodel.Params{N: cfg.N},
		zone:     make(map[lav.SourceID]int),
		setSize:  make(map[lav.SourceID]int),
	}
	d.Query = chainQuery(cfg.QueryLen)

	d.Buckets = make([][]lav.SourceID, cfg.QueryLen)
	for b := 0; b < cfg.QueryLen; b++ {
		// Per-bucket zone assignment of universe elements, with a fixed
		// random element order per zone (the nesting order).
		zoneElems := make([][]int, cfg.Zones)
		perm := rng.Perm(cfg.Universe)
		for _, i := range perm {
			z := rng.Intn(cfg.Zones)
			zoneElems[z] = append(zoneElems[z], i)
		}
		def := sourceDef(b)
		for j := 0; j < cfg.BucketSize; j++ {
			name := fmt.Sprintf("V%d_%d", b, j)
			zone := rng.Intn(cfg.Zones)
			elems := zoneElems[zone]
			// The source covers an ε-noised prefix of its zone: extent γ
			// determines the prefix length; each zone element then flips
			// its membership with probability ε.
			gamma := 0.2 + 0.75*rng.Float64()
			eps := 0.002 + 0.018*rng.Float64()
			prefix := int(gamma * float64(len(elems)))
			set := bitset.New(cfg.Universe)
			for pos, i := range elems {
				in := pos < prefix
				if rng.Float64() < eps {
					in = !in
				}
				if in {
					set.Add(i)
				}
			}
			// Guarantee non-empty coverage so every plan is executable.
			if !set.Any() {
				set.Add(rng.Intn(cfg.Universe))
			}
			// Tuples correlates with covered volume (bigger sources return
			// more items), with multiplicative noise.
			tuples := 1 + float64(set.Count())/float64(cfg.Universe)*10000*(0.7+0.6*rng.Float64())
			stats := lav.Stats{
				Tuples:       tuples,
				TransmitCost: 0.5 + 1.5*rng.Float64(),
				Overhead:     10,
				FailureProb:  0.3 * rng.Float64(),
				// Access fees scale with catalog size times two orders of
				// magnitude of i.i.d. pricing noise, so the monetary cost
				// PER TUPLE is dominated by the noise: no statistic the
				// abstraction heuristic can group by predicts it. This
				// reproduces the paper's panels (j)-(l), where abstraction
				// is ineffective for the monetary measure.
				AccessFee: tuples * (0.05 + 4.95*rng.Float64()),
				TupleFee:  0.01 + 0.09*rng.Float64(),
			}
			src := d.Catalog.MustAdd(name, def, stats)
			d.Coverage.SetCoverage(src.ID, set)
			d.zone[src.ID] = zone
			d.setSize[src.ID] = set.Count()
			d.Buckets[b] = append(d.Buckets[b], src.ID)
		}
	}
	d.Space = planspace.NewSpace(d.Buckets)
	return d
}

// Rehydrate reconstructs a Domain from externally persisted parts (the
// segment/catalog store of internal/store). The caller supplies the
// exact artifacts Generate would have produced: the configuration, the
// populated source catalog, per-bucket source IDs, the coverage model,
// the mediated query, and the per-source zone and set-size tables that
// back SimilarityKey. cfg is normalized with the same defaults as
// Generate so a round-tripped domain compares equal field-for-field.
func Rehydrate(cfg Config, cat *lav.Catalog, buckets [][]lav.SourceID,
	cov *coverage.Model, query *schema.Query,
	zone, setSize map[lav.SourceID]int) *Domain {
	cfg = cfg.withDefaults()
	return &Domain{
		Config:   cfg,
		Catalog:  cat,
		Buckets:  buckets,
		Space:    planspace.NewSpace(buckets),
		Coverage: cov,
		Params:   costmodel.Params{N: cfg.N},
		Query:    query,
		zone:     zone,
		setSize:  setSize,
	}
}

// Zone returns the coverage zone of a source.
func (d *Domain) Zone(id lav.SourceID) int { return d.zone[id] }

// SetSize returns the coverage-set cardinality of a source.
func (d *Domain) SetSize(id lav.SourceID) int { return d.setSize[id] }

// SimilarityKey is the zone-aware coverage-similarity key: sources in the
// same zone with similar coverage sizes get adjacent keys. It corresponds
// to the paper's "similarity wrt expected output tuples" heuristic,
// adapted to a model where overlap structure is part of the known source
// statistics (DESIGN.md §3).
func (d *Domain) SimilarityKey(_ int, id lav.SourceID) float64 {
	return float64(d.zone[id])*1e9 + float64(d.setSize[id])
}

// chainQuery builds Q(X0,Xn) :- rel0(X0,X1), ..., rel{n-1}(X{n-1},Xn).
func chainQuery(n int) *schema.Query {
	head := []schema.Term{schema.Var("X0"), schema.Var(fmt.Sprintf("X%d", n))}
	body := make([]schema.Atom, n)
	for i := 0; i < n; i++ {
		body[i] = schema.NewAtom(fmt.Sprintf("rel%d", i),
			schema.Var(fmt.Sprintf("X%d", i)), schema.Var(fmt.Sprintf("X%d", i+1)))
	}
	return &schema.Query{Name: "Q", Head: head, Body: body}
}

// sourceDef builds the LAV description V(A,B) :- rel<b>(A,B) shared by all
// sources of bucket b.
func sourceDef(b int) *schema.Query {
	return &schema.Query{
		Name: fmt.Sprintf("rel%dview", b),
		Head: []schema.Term{schema.Var("A"), schema.Var("B")},
		Body: []schema.Atom{schema.NewAtom(fmt.Sprintf("rel%d", b), schema.Var("A"), schema.Var("B"))},
	}
}
