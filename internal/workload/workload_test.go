package workload

import (
	"testing"

	"qporder/internal/lav"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{QueryLen: 3, BucketSize: 6, Universe: 512, Zones: 3, Seed: 5}
	a, b := Generate(cfg), Generate(cfg)
	if a.Catalog.Len() != b.Catalog.Len() {
		t.Fatal("catalog sizes differ")
	}
	for i := 0; i < a.Catalog.Len(); i++ {
		sa, sb := a.Catalog.Source(lav.SourceID(i)), b.Catalog.Source(lav.SourceID(i))
		if sa.Stats != sb.Stats || sa.Name != sb.Name {
			t.Fatalf("source %d differs across identical seeds", i)
		}
		if !a.Coverage.Set(sa.ID).Equal(b.Coverage.Set(sb.ID)) {
			t.Fatalf("coverage of source %d differs across identical seeds", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(Config{QueryLen: 2, BucketSize: 4, Universe: 256, Seed: 1})
	b := Generate(Config{QueryLen: 2, BucketSize: 4, Universe: 256, Seed: 2})
	same := true
	for i := 0; i < a.Catalog.Len(); i++ {
		if a.Catalog.Source(lav.SourceID(i)).Stats != b.Catalog.Source(lav.SourceID(i)).Stats {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical statistics")
	}
}

func TestGenerateShape(t *testing.T) {
	d := Generate(Config{QueryLen: 4, BucketSize: 7, Universe: 256, Zones: 2, Seed: 9})
	if len(d.Buckets) != 4 {
		t.Fatalf("buckets = %d", len(d.Buckets))
	}
	for _, b := range d.Buckets {
		if len(b) != 7 {
			t.Fatalf("bucket size = %d", len(b))
		}
	}
	if d.Space.Size() != 7*7*7*7 {
		t.Errorf("space size = %d", d.Space.Size())
	}
	if len(d.Query.Body) != 4 {
		t.Errorf("query length = %d", len(d.Query.Body))
	}
	if err := d.Query.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := Generate(Config{Seed: 1})
	if d.Config.QueryLen != 3 || d.Config.BucketSize != 20 ||
		d.Config.Universe != 4096 || d.Config.Zones != 3 || d.Config.N != 50000 {
		t.Errorf("defaults = %+v", d.Config)
	}
}

func TestEverySourceHasCoverageAndValidStats(t *testing.T) {
	d := Generate(Config{QueryLen: 3, BucketSize: 10, Universe: 128, Zones: 4, Seed: 17})
	for _, src := range d.Catalog.Sources() {
		if err := src.Stats.Validate(); err != nil {
			t.Errorf("source %s: %v", src.Name, err)
		}
		if !d.Coverage.Has(src.ID) {
			t.Errorf("source %s has no coverage set", src.Name)
		}
		if !d.Coverage.Set(src.ID).Any() {
			t.Errorf("source %s has empty coverage", src.Name)
		}
		if d.SetSize(src.ID) != d.Coverage.Set(src.ID).Count() {
			t.Errorf("source %s SetSize mismatch", src.Name)
		}
	}
}

func TestZoneStructureDrivesOverlap(t *testing.T) {
	d := Generate(Config{QueryLen: 1, BucketSize: 30, Universe: 2048, Zones: 3, Seed: 23})
	bucket := d.Buckets[0]
	sameZoneOverlaps, crossZoneOverlaps := 0, 0
	sameZonePairs, crossZonePairs := 0, 0
	for i := 0; i < len(bucket); i++ {
		for j := i + 1; j < len(bucket); j++ {
			overlap := d.Coverage.Overlap(bucket[i], bucket[j])
			if d.Zone(bucket[i]) == d.Zone(bucket[j]) {
				sameZonePairs++
				if overlap {
					sameZoneOverlaps++
				}
			} else {
				crossZonePairs++
				if overlap {
					crossZoneOverlaps++
				}
			}
		}
	}
	if sameZonePairs == 0 || crossZonePairs == 0 {
		t.Skip("degenerate zone assignment")
	}
	if sameZoneOverlaps != sameZonePairs {
		t.Errorf("same-zone overlap %d/%d, want all", sameZoneOverlaps, sameZonePairs)
	}
	if crossZoneOverlaps != 0 {
		t.Errorf("cross-zone overlap %d/%d, want none", crossZoneOverlaps, crossZonePairs)
	}
}

func TestSimilarityKeyOrdersByZoneThenSize(t *testing.T) {
	d := Generate(Config{QueryLen: 1, BucketSize: 20, Universe: 512, Zones: 2, Seed: 3})
	b := d.Buckets[0]
	for i := 0; i < len(b); i++ {
		for j := 0; j < len(b); j++ {
			ki, kj := d.SimilarityKey(0, b[i]), d.SimilarityKey(0, b[j])
			if d.Zone(b[i]) < d.Zone(b[j]) && ki >= kj {
				t.Fatalf("zone ordering violated: %v vs %v", ki, kj)
			}
			if d.Zone(b[i]) == d.Zone(b[j]) && d.SetSize(b[i]) < d.SetSize(b[j]) && ki >= kj {
				t.Fatalf("size ordering violated within zone")
			}
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Generate(Config{QueryLen: -1, BucketSize: 2})
}
