package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestNumericHelpers(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); got != 2.8 {
		t.Errorf("Mean = %g", got)
	}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %g", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even Median = %g", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %g", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %g", got)
	}
	for _, f := range []func([]float64) float64{Mean, Median, Min, Max} {
		if !math.IsNaN(f(nil)) {
			t.Error("empty input should give NaN")
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		2500 * time.Millisecond: "2.50s",
		1500 * time.Microsecond: "1.50ms",
		42 * time.Microsecond:   "42.0µs",
		300 * time.Nanosecond:   "300ns",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("name", "value")
	tab.Add("alpha", "1")
	tab.Add("b")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "-----") {
		t.Errorf("separator = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "alpha  1") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.Add("1", "2")
	var sb strings.Builder
	tab.CSV(&sb)
	if sb.String() != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", sb.String())
	}
}
