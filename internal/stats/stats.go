// Package stats provides the small numeric and table-formatting helpers
// used by the experiment harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median, or NaN for empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Min returns the minimum, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// FormatDuration renders a duration compactly with 3 significant-ish
// digits (e.g. "1.23ms", "45.6µs").
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return d.String()
	}
}

// Table is a minimal aligned-text table writer.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given headers.
func NewTable(headers ...string) *Table { return &Table{Headers: headers} }

// Add appends a row; cells beyond the header count are dropped, missing
// cells are blank.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with column alignment.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes the table as comma-separated values (no quoting; cells must
// not contain commas).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
