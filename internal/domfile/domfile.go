// Package domfile reads and writes the textual domain files consumed by
// cmd/qporder and produced by cmd/qpgen. A domain file declares data
// sources (LAV descriptions plus statistics) and optionally a default
// query:
//
//	# movie mediator
//	query Q(M, R) :- play-in(ford, M), review-of(R, M)
//	source tuples=100 transmit=1 overhead=10 | V1(A, M) :- play-in(A, M), american(M)
//	source tuples=50 transmit=0.5 overhead=5 fail=0.1 | V2(A, M) :- play-in(A, M)
//
// Lines beginning with '#' or '%' are comments. Statistics keys: tuples,
// transmit, overhead, fail, accessfee, tuplefee; unset keys default to
// tuples=1 and zero otherwise.
package domfile

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"qporder/internal/lav"
	"qporder/internal/schema"
)

// Domain is a parsed domain file.
type Domain struct {
	Catalog *lav.Catalog
	// Query is the file's default query, or nil if absent.
	Query *schema.Query
}

// Parse reads a domain file.
func Parse(r io.Reader) (*Domain, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	d := &Domain{Catalog: lav.NewCatalog()}
	for ln, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		lineNo := ln + 1
		switch {
		case strings.HasPrefix(line, "query "):
			if d.Query != nil {
				return nil, fmt.Errorf("domfile: line %d: duplicate query", lineNo)
			}
			q, err := schema.ParseQuery(strings.TrimPrefix(line, "query "))
			if err != nil {
				return nil, fmt.Errorf("domfile: line %d: %w", lineNo, err)
			}
			d.Query = q
		case strings.HasPrefix(line, "source "):
			rest := strings.TrimPrefix(line, "source ")
			parts := strings.SplitN(rest, "|", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("domfile: line %d: source line needs \"stats | rule\"", lineNo)
			}
			stats, err := parseStats(strings.Fields(parts[0]))
			if err != nil {
				return nil, fmt.Errorf("domfile: line %d: %w", lineNo, err)
			}
			def, err := schema.ParseQuery(strings.TrimSpace(parts[1]))
			if err != nil {
				return nil, fmt.Errorf("domfile: line %d: %w", lineNo, err)
			}
			if _, err := d.Catalog.Add(def.Name, def, stats); err != nil {
				return nil, fmt.Errorf("domfile: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("domfile: line %d: expected \"query ...\" or \"source ...\"", lineNo)
		}
	}
	if d.Catalog.Len() == 0 {
		return nil, fmt.Errorf("domfile: no sources declared")
	}
	return d, nil
}

func parseStats(fields []string) (lav.Stats, error) {
	st := lav.Stats{Tuples: 1}
	for _, f := range fields {
		kv := strings.SplitN(f, "=", 2)
		if len(kv) != 2 {
			return st, fmt.Errorf("bad stat %q (want key=value)", f)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return st, fmt.Errorf("bad stat value %q: %v", f, err)
		}
		switch kv[0] {
		case "tuples":
			st.Tuples = v
		case "transmit":
			st.TransmitCost = v
		case "overhead":
			st.Overhead = v
		case "fail":
			st.FailureProb = v
		case "accessfee":
			st.AccessFee = v
		case "tuplefee":
			st.TupleFee = v
		default:
			return st, fmt.Errorf("unknown stat key %q", kv[0])
		}
	}
	return st, st.Validate()
}

// Write renders a domain file.
func Write(w io.Writer, d *Domain) error {
	if d.Query != nil {
		if _, err := fmt.Fprintf(w, "query %s\n", d.Query); err != nil {
			return err
		}
	}
	for _, src := range d.Catalog.Sources() {
		if src.Def == nil {
			return fmt.Errorf("domfile: source %s has no description", src.Name)
		}
		if _, err := fmt.Fprintf(w, "source %s | %s\n", formatStats(src.Stats), src.Def); err != nil {
			return err
		}
	}
	return nil
}

func formatStats(st lav.Stats) string {
	kv := map[string]float64{
		"tuples":    st.Tuples,
		"transmit":  st.TransmitCost,
		"overhead":  st.Overhead,
		"fail":      st.FailureProb,
		"accessfee": st.AccessFee,
		"tuplefee":  st.TupleFee,
	}
	keys := make([]string, 0, len(kv))
	for k, v := range kv {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%g", k, kv[k])
	}
	return strings.Join(parts, " ")
}
