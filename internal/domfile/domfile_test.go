package domfile

import (
	"strings"
	"testing"
)

const sample = `
# movie mediator
query Q(M, R) :- play-in(ford, M), review-of(R, M)
source tuples=100 transmit=1 overhead=10 | V1(A, M) :- play-in(A, M), american(M)
source tuples=50 overhead=5 fail=0.1 | V2(A, M) :- play-in(A, M)
source tuples=40 accessfee=3 tuplefee=0.05 | V4(R, M) :- review-of(R, M)
`

func TestParse(t *testing.T) {
	d, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if d.Query == nil || d.Query.Name != "Q" {
		t.Fatalf("query = %v", d.Query)
	}
	if d.Catalog.Len() != 3 {
		t.Fatalf("catalog = %d sources", d.Catalog.Len())
	}
	v2, ok := d.Catalog.ByName("V2")
	if !ok {
		t.Fatal("V2 missing")
	}
	if v2.Stats.Tuples != 50 || v2.Stats.FailureProb != 0.1 || v2.Stats.Overhead != 5 {
		t.Errorf("V2 stats = %+v", v2.Stats)
	}
	if len(v2.Def.Body) != 1 || v2.Def.Body[0].Pred != "play-in" {
		t.Errorf("V2 def = %v", v2.Def)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                  // no sources
		"bogus line",                        // unknown directive
		"source tuples=1 V(A) :- r(A)",      // missing pipe
		"source tuples=zero | V(A) :- r(A)", // bad number
		"source nope=1 | V(A) :- r(A)",      // unknown key
		"source fail=2 | V(A) :- r(A)",      // invalid stats
		"query Q(X) :- r(X)\nquery Q(Y) :- r(Y)\nsource tuples=1 | V(A) :- r(A)", // dup query
		"source tuples=1 | broken(", // bad rule
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	d, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, sb.String())
	}
	if d2.Catalog.Len() != d.Catalog.Len() {
		t.Fatalf("round trip lost sources")
	}
	for _, src := range d.Catalog.Sources() {
		got, ok := d2.Catalog.ByName(src.Name)
		if !ok {
			t.Fatalf("source %s lost", src.Name)
		}
		if got.Stats != src.Stats {
			t.Errorf("source %s stats changed: %+v -> %+v", src.Name, src.Stats, got.Stats)
		}
		if got.Def.String() != src.Def.String() {
			t.Errorf("source %s def changed", src.Name)
		}
	}
	if d2.Query.String() != d.Query.String() {
		t.Error("query changed in round trip")
	}
}

func TestWriteRejectsDescriptionlessSource(t *testing.T) {
	d, _ := Parse(strings.NewReader("source tuples=1 | V(A) :- r(A)"))
	d.Catalog.MustAdd("synthetic", nil, d.Catalog.Sources()[0].Stats)
	var sb strings.Builder
	if err := Write(&sb, d); err == nil {
		t.Error("Write accepted a source without a description")
	}
}
