package domfile

import (
	"strings"
	"testing"
)

// FuzzParse checks the domain-file parser never panics and that accepted
// files survive a Write/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("source tuples=1 | V(A) :- r(A)")
	f.Add("query Q(X) :- r(X)\nsource tuples=2 transmit=0.5 | V(A) :- r(A)")
	f.Add("source | V(A) :- r(A)")
	f.Add("source tuples=1 | V(A) :- r(A) | extra")
	f.Add("# only a comment")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, d); err != nil {
			t.Fatalf("Write of accepted domain failed: %v", err)
		}
		d2, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, sb.String())
		}
		if d2.Catalog.Len() != d.Catalog.Len() {
			t.Fatalf("round trip changed source count: %d -> %d",
				d.Catalog.Len(), d2.Catalog.Len())
		}
	})
}
