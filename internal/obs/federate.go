package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file is the metrics-federation half of the OpenMetrics support:
// the router scrapes every healthy shard's /metrics?format=openmetrics
// exposition, re-labels each sample with the shard's identity, and
// merges the shard families with its own registry into one valid
// exposition. The parser is deliberately narrow — it round-trips the
// exposition this package writes (TYPE lines, optional label blocks,
// "# EOF") rather than the full OpenMetrics grammar — but it is
// escape-aware: label values may contain escaped quotes, backslashes,
// and literal '}' bytes, so the label block is scanned, not split.

// OMSample is one exposition sample attributed to a family: the name
// suffix ("", "_total", "_sum", "_count", ...), the raw label pairs
// (without braces, "" when unlabeled), and the raw rendered value.
type OMSample struct {
	Suffix string
	Labels string
	Value  string
}

// OMFamily is one metric family of a parsed exposition.
type OMFamily struct {
	Name    string
	Type    string
	Samples []OMSample
}

// ParseOpenMetrics parses an exposition of the shape this package
// writes. Unknown comment lines (# HELP, # UNIT) are skipped; a sample
// line before any TYPE, or one whose name does not extend the current
// family's, is an error. Input ending without "# EOF" is an error — a
// truncated scrape must not federate as if complete.
func ParseOpenMetrics(r io.Reader) ([]OMFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var fams []OMFamily
	sawEOF := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if sawEOF {
			return nil, fmt.Errorf("obs: openmetrics line %d: content after # EOF", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			switch {
			case line == "# EOF":
				sawEOF = true
			case strings.HasPrefix(line, "# TYPE "):
				rest := line[len("# TYPE "):]
				sp := strings.IndexByte(rest, ' ')
				if sp <= 0 {
					return nil, fmt.Errorf("obs: openmetrics line %d: malformed TYPE", lineNo)
				}
				fams = append(fams, OMFamily{Name: rest[:sp], Type: rest[sp+1:]})
			}
			continue // other comments (HELP, UNIT) are tolerated
		}
		if len(fams) == 0 {
			return nil, fmt.Errorf("obs: openmetrics line %d: sample before any TYPE", lineNo)
		}
		fam := &fams[len(fams)-1]
		sample, err := parseOMSample(line, fam.Name)
		if err != nil {
			return nil, fmt.Errorf("obs: openmetrics line %d: %w", lineNo, err)
		}
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEOF {
		return nil, fmt.Errorf("obs: openmetrics exposition truncated (no # EOF)")
	}
	return fams, nil
}

// parseOMSample splits one sample line into suffix, raw label block,
// and value, verifying the name belongs to the family.
func parseOMSample(line, famName string) (OMSample, error) {
	// The metric name runs to the first '{' or space.
	nameEnd := len(line)
	for i := 0; i < len(line); i++ {
		if line[i] == '{' || line[i] == ' ' {
			nameEnd = i
			break
		}
	}
	name := line[:nameEnd]
	if !strings.HasPrefix(name, famName) {
		return OMSample{}, fmt.Errorf("sample %q outside family %q", name, famName)
	}
	s := OMSample{Suffix: name[len(famName):]}
	rest := line[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		end := labelBlockEnd(rest)
		if end < 0 {
			return OMSample{}, fmt.Errorf("unterminated label block in %q", line)
		}
		s.Labels = rest[1:end]
		rest = rest[end+1:]
	}
	if !strings.HasPrefix(rest, " ") || len(rest) < 2 {
		return OMSample{}, fmt.Errorf("missing value in %q", line)
	}
	s.Value = rest[1:]
	return s, nil
}

// labelBlockEnd returns the index of the '}' closing the label block
// starting at s[0] == '{', honoring escaped bytes inside quoted label
// values (so a value containing '}' or '\"' does not end the block).
// Returns -1 when unterminated.
func labelBlockEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch c := s[i]; {
		case inQuote && c == '\\':
			i++ // skip the escaped byte
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '}':
			return i
		}
	}
	return -1
}

// LabeledExposition is one federation source: a parsed exposition and
// the label stamped onto every one of its samples (zero Label key means
// no re-labeling, used for the federating process's own families).
type LabeledExposition struct {
	Families []OMFamily
	Label    [2]string
}

// WriteMergedOpenMetrics merges the sources into one exposition:
// families sharing a name collapse into one declaration (first source's
// type wins; a later source whose type disagrees has that family's
// samples dropped, counted in the return value), each source's samples
// carry its label, and the output ends with "# EOF". Families appear in
// first-seen source order, so the merged exposition is deterministic
// for a fixed source order.
func WriteMergedOpenMetrics(w io.Writer, sources []LabeledExposition) (dropped int, err error) {
	type mergedFam struct {
		typ   string
		lines []string // fully rendered sample lines
	}
	var order []string
	merged := make(map[string]*mergedFam)
	for _, src := range sources {
		var inject string
		if src.Label[0] != "" {
			inject = src.Label[0] + `="` + openMetricsLabelValue(src.Label[1]) + `"`
		}
		for _, fam := range src.Families {
			mf := merged[fam.Name]
			if mf == nil {
				mf = &mergedFam{typ: fam.Type}
				merged[fam.Name] = mf
				order = append(order, fam.Name)
			} else if mf.typ != fam.Type {
				dropped += len(fam.Samples)
				continue
			}
			for _, s := range fam.Samples {
				labels := s.Labels
				if inject != "" {
					if labels == "" {
						labels = inject
					} else {
						labels = inject + "," + labels
					}
				}
				line := fam.Name + s.Suffix
				if labels != "" {
					line += "{" + labels + "}"
				}
				line += " " + s.Value
				mf.lines = append(mf.lines, line)
			}
		}
	}
	o := &omWriter{w: w}
	for _, name := range order {
		mf := merged[name]
		o.printf("# TYPE %s %s\n", name, mf.typ)
		for _, line := range mf.lines {
			o.printf("%s\n", line)
		}
	}
	o.printf("# EOF\n")
	return dropped, o.err
}
