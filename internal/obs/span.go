package obs

import (
	"sort"
	"sync"
	"time"
)

// DefaultMaxEvents bounds a Tracer's event ring buffer when no explicit
// capacity is given.
const DefaultMaxEvents = 256

// Event is one entry of a tracer's bounded event log: a finished span
// (Dur > 0 possible) or a point annotation (Dur == 0).
type Event struct {
	Time time.Time     `json:"time"`
	Name string        `json:"name"`
	Dur  time.Duration `json:"dur_ns,omitempty"`
	Msg  string        `json:"msg,omitempty"`
}

// SpanStat aggregates the completed spans sharing one path.
type SpanStat struct {
	Name  string        `json:"name"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Tracer collects spans and events. All methods are concurrency-safe; a
// nil Tracer is a no-op.
type Tracer struct {
	mu    sync.Mutex
	stats map[string]*SpanStat
	ring  []Event
	next  int
	full  bool
}

// NewTracer returns a tracer whose event log keeps the last maxEvents
// entries (DefaultMaxEvents when maxEvents <= 0).
func NewTracer(maxEvents int) *Tracer {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Tracer{stats: make(map[string]*SpanStat), ring: make([]Event, maxEvents)}
}

// Span is one in-flight timed operation. End it exactly once; children
// started from it record slash-separated paths ("parent/child"). A nil
// Span is a no-op.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
	ended bool
}

// StartSpan begins a span on t. A nil tracer yields a nil (no-op) span,
// so callers never branch on whether tracing is enabled.
func StartSpan(t *Tracer, name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: time.Now()}
}

// StartSpan begins a nested child span ("parent/child" path).
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	return StartSpan(s.t, s.name+"/"+name)
}

// Annotate appends a point event carrying msg to the tracer's event log,
// attributed to this span's path.
func (s *Span) Annotate(msg string) {
	if s == nil {
		return
	}
	s.t.addEvent(Event{Time: time.Now(), Name: s.name, Msg: msg})
}

// End finishes the span, recording its duration in the tracer's
// aggregate statistics and event log, and returns the duration. A second
// End (or End on a nil span) is a no-op returning 0.
func (s *Span) End() time.Duration {
	if s == nil || s.ended {
		return 0
	}
	s.ended = true
	d := time.Since(s.start)
	s.t.record(s.name, s.start, d)
	return d
}

// Event appends a point event to the log (outside any span).
func (t *Tracer) Event(name, msg string) {
	if t == nil {
		return
	}
	t.addEvent(Event{Time: time.Now(), Name: name, Msg: msg})
}

func (t *Tracer) record(name string, start time.Time, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats[name]
	if st == nil {
		st = &SpanStat{Name: name, Min: d, Max: d}
		t.stats[name] = st
	}
	st.Count++
	st.Total += d
	if d < st.Min {
		st.Min = d
	}
	if d > st.Max {
		st.Max = d
	}
	t.push(Event{Time: start, Name: name, Dur: d})
}

func (t *Tracer) addEvent(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.push(e)
}

// push appends to the ring buffer; the caller holds t.mu.
func (t *Tracer) push(e Event) {
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
}

// Stats returns the per-path aggregates sorted by path. Nil tracers
// return nil.
func (t *Tracer) Stats() []SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanStat, 0, len(t.stats))
	for _, st := range t.stats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Events returns the buffered events, oldest first. Nil tracers return
// nil.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Reset discards all aggregates and buffered events.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats = make(map[string]*SpanStat)
	for i := range t.ring {
		t.ring[i] = Event{}
	}
	t.next = 0
	t.full = false
}
