package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sync"
)

// This file mirrors a small set of Go runtime metrics into a Registry so
// they appear in /metrics in every format (text, JSON, expvar,
// OpenMetrics) next to the pipeline's own instruments: live heap bytes,
// GC pause p50/p95 from the runtime's pause-duration histogram,
// goroutine count, and GOMAXPROCS. The values refresh lazily — a
// registered collector reads runtime/metrics at Snapshot time — so an
// idle registry costs nothing between scrapes.

// Runtime metric gauge names.
const (
	MetricHeapBytes  = "runtime.heap_bytes"
	MetricGCPauseP50 = "runtime.gc_pause_p50_ns"
	MetricGCPauseP95 = "runtime.gc_pause_p95_ns"
	MetricGoroutines = "runtime.goroutines"
	MetricGoMaxProcs = "runtime.gomaxprocs"
)

// runtime/metrics sample names (both present since Go 1.22).
const (
	sampleHeapBytes = "/memory/classes/heap/objects:bytes"
	sampleGCPauses  = "/sched/pauses/total/gc:seconds"
)

// RegisterRuntimeMetrics installs a Snapshot-time collector that
// refreshes the runtime.* gauges from runtime/metrics. Safe to call on
// a nil registry (no-op); calling it twice installs two collectors that
// set the same gauges, which is harmless.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	heap := reg.Gauge(MetricHeapBytes)
	gcP50 := reg.Gauge(MetricGCPauseP50)
	gcP95 := reg.Gauge(MetricGCPauseP95)
	goroutines := reg.Gauge(MetricGoroutines)
	gomaxprocs := reg.Gauge(MetricGoMaxProcs)

	// The sample slice is reused across collections; concurrent
	// Snapshot calls run collectors concurrently, so guard it.
	var mu sync.Mutex
	samples := []metrics.Sample{
		{Name: sampleHeapBytes},
		{Name: sampleGCPauses},
	}
	reg.AddCollector(func() {
		mu.Lock()
		metrics.Read(samples)
		if samples[0].Value.Kind() == metrics.KindUint64 {
			heap.Set(float64(samples[0].Value.Uint64()))
		}
		if samples[1].Value.Kind() == metrics.KindFloat64Histogram {
			h := samples[1].Value.Float64Histogram()
			gcP50.Set(float64HistQuantile(h, 0.50) * 1e9)
			gcP95.Set(float64HistQuantile(h, 0.95) * 1e9)
		}
		mu.Unlock()
		goroutines.Set(float64(runtime.NumGoroutine()))
		gomaxprocs.Set(float64(runtime.GOMAXPROCS(0)))
	})
}

// float64HistQuantile estimates the q-quantile of a runtime/metrics
// histogram: the target rank's bucket is located on the cumulative
// counts and the value interpolated linearly within the bucket,
// clamping the open-ended edge buckets to their finite boundary. An
// empty histogram yields 0.
func float64HistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) < rank {
			seen += float64(c)
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		frac := 0.0
		if c > 0 {
			frac = (rank - seen) / float64(c)
		}
		return lo + frac*(hi-lo)
	}
	// rank beyond the last non-empty bucket (floating-point edge).
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 1) {
		last = h.Buckets[len(h.Buckets)-2]
	}
	return last
}
