package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped half of the observability layer: a
// *Trace is created per request (or per CLI invocation), carries a W3C
// trace ID, collects nested timed spans, a bounded structured event log,
// and the plan-ordering provenance recorded by the orderers, and is
// propagated through context.Context from the serving layer down into
// mediator runs. Like the rest of obs, every method on a nil *Trace or
// nil *TraceSpan is a no-op that performs no allocations, so hot paths
// attach tracing unconditionally.

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// SpanID is the 8-byte W3C span (parent) identifier.
type SpanID [8]byte

// IsZero reports whether the ID is all zeros (invalid per W3C).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is all zeros (invalid per W3C).
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// MarshalText implements encoding.TextMarshaler (JSON renders hex).
func (id TraceID) MarshalText() ([]byte, error) {
	out := make([]byte, 32)
	hex.Encode(out, id[:])
	return out, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (id *TraceID) UnmarshalText(b []byte) error {
	if len(b) != 32 {
		return fmt.Errorf("obs: trace ID must be 32 hex digits, got %d", len(b))
	}
	_, err := hex.Decode(id[:], b)
	return err
}

// MarshalText implements encoding.TextMarshaler.
func (id SpanID) MarshalText() ([]byte, error) {
	out := make([]byte, 16)
	hex.Encode(out, id[:])
	return out, nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (id *SpanID) UnmarshalText(b []byte) error {
	if len(b) != 16 {
		return fmt.Errorf("obs: span ID must be 16 hex digits, got %d", len(b))
	}
	_, err := hex.Decode(id[:], b)
	return err
}

// NewTraceID returns a random non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		_, _ = cryptorand.Read(id[:])
	}
	return id
}

// NewSpanID returns a random non-zero span ID.
func NewSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		_, _ = cryptorand.Read(id[:])
	}
	return id
}

// ParseTraceparent parses a W3C traceparent header
// ("version-traceid-parentid-flags", e.g.
// "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"). It returns
// ok=false for anything malformed — wrong field count, bad version,
// wrong-length or non-lowercase-hex IDs, all-zero IDs — and callers are
// expected to start a fresh trace in that case, never to fail the
// request.
func ParseTraceparent(h string) (tid TraceID, parent SpanID, ok bool) {
	// version(2)-traceid(32)-parentid(16)-flags(2) = 55 bytes minimum.
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false
	}
	ver, verOK := hexField(h[0:2])
	if !verOK || ver == "ff" { // "ff" is forbidden by the spec
		return TraceID{}, SpanID{}, false
	}
	if ver == "00" && len(h) != 55 {
		return TraceID{}, SpanID{}, false // version 00 has no suffix
	}
	if len(h) > 55 && h[55] != '-' {
		return TraceID{}, SpanID{}, false // future versions: dash-separated suffix
	}
	tidHex, tidOK := hexField(h[3:35])
	pidHex, pidOK := hexField(h[36:52])
	if _, flagsOK := hexField(h[53:55]); !tidOK || !pidOK || !flagsOK {
		return TraceID{}, SpanID{}, false
	}
	hex.Decode(tid[:], []byte(tidHex))
	hex.Decode(parent[:], []byte(pidHex))
	if tid.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return tid, parent, true
}

// hexField validates a lowercase-hex field (the W3C grammar forbids
// uppercase) and returns it unchanged.
func hexField(s string) (string, bool) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", false
		}
	}
	return s, true
}

// FormatTraceparent renders a version-00 traceparent header with the
// sampled flag set.
func FormatTraceparent(tid TraceID, sid SpanID) string {
	return "00-" + tid.String() + "-" + sid.String() + "-01"
}

// Bounds of a trace's per-request buffers. Requests live for seconds, so
// the buffers are small; overflow increments a dropped counter instead
// of growing.
const (
	DefaultMaxTraceSpans  = 256
	DefaultMaxTraceEvents = 128
	DefaultMaxTracePlans  = 1024
)

// SpanRecord is one completed span of a trace. Offsets are relative to
// the trace start so records serialize compactly and compare across
// machines.
type SpanRecord struct {
	ID      SpanID `json:"id"`
	Parent  SpanID `json:"parent"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// TraceEvent is one structured point annotation on a trace.
type TraceEvent struct {
	OffsetNS int64  `json:"offset_ns"`
	Name     string `json:"name"`
	Msg      string `json:"msg,omitempty"`
}

// PlanProvenance explains why one plan was emitted at its position: the
// conditional utility at selection time and the ordering work the Next
// call that selected it performed. DomWon counts dominance tests in
// which the tested plan was dominated (pruned); DomLost counts tests
// that failed to prune. Refinements and Splits are the abstract-plan
// refinements and plan-space splits of that Next call; Evals the
// utility evaluations.
type PlanProvenance struct {
	Index       int     `json:"index"`
	Algo        string  `json:"algo,omitempty"`
	Plan        string  `json:"plan"`
	Utility     float64 `json:"utility"`
	DomWon      int64   `json:"dom_won"`
	DomLost     int64   `json:"dom_lost"`
	Refinements int64   `json:"refinements"`
	Splits      int64   `json:"splits"`
	Evals       int64   `json:"evals"`

	// Execution ground truth, annotated after the plan runs (zero until
	// then, and absent for plans ordered but never executed): the fresh
	// answers the plan contributed and its execution wall time. Together
	// with Utility these are the per-plan estimate-vs-actual pair the
	// calibration layer aggregates.
	NewAnswers int   `json:"new_answers,omitempty"`
	ExecNS     int64 `json:"exec_ns,omitempty"`
	Executed   bool  `json:"executed,omitempty"`
}

// TraceSnapshot is the serializable form of a finished (or in-flight)
// trace: one NDJSON line of a trace export file, one entry of the
// flight recorder.
type TraceSnapshot struct {
	TraceID    TraceID           `json:"trace_id"`
	RootSpan   SpanID            `json:"root_span"`
	ParentSpan SpanID            `json:"parent_span"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurNS      int64             `json:"dur_ns"`
	Status     string            `json:"status"` // "ok" | "error"
	Error      string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Spans      []SpanRecord      `json:"spans,omitempty"`
	Events     []TraceEvent      `json:"events,omitempty"`
	Plans      []PlanProvenance  `json:"plans,omitempty"`
	Dropped    int               `json:"dropped,omitempty"`
}

// Trace is one request-scoped trace. All methods are concurrency-safe
// (the mediator's pipelined producer records spans from its own
// goroutine) and nil-safe: a nil *Trace is the disabled state and every
// method on it is a no-op costing no allocations.
type Trace struct {
	id     TraceID
	root   SpanID
	parent SpanID  // remote parent from an accepted traceparent; zero if none
	salt   [8]byte // per-trace random entropy mixed into span IDs
	name   string
	start  time.Time

	spanSeq atomic.Uint64 // span-ID allocator; unique within the trace

	mu       sync.Mutex
	spans    []SpanRecord
	events   []TraceEvent
	plans    []PlanProvenance
	attrs    map[string]string
	dropped  int
	errMsg   string
	failed   bool
	finished bool
	dur      time.Duration
}

// NewTrace starts a trace with a fresh random trace ID.
func NewTrace(name string) *Trace {
	return newTrace(NewTraceID(), SpanID{}, name)
}

// StartRequestTrace starts a trace for an incoming request carrying the
// given traceparent header. A well-formed header joins the caller's
// trace (same trace ID, the caller's span as remote parent); a missing
// or malformed header starts a fresh trace — malformed tracing metadata
// must never fail a request.
func StartRequestTrace(name, traceparent string) *Trace {
	tid, parent, ok := ParseTraceparent(traceparent)
	if !ok {
		return NewTrace(name)
	}
	return newTrace(tid, parent, name)
}

func newTrace(id TraceID, parent SpanID, name string) *Trace {
	t := &Trace{id: id, parent: parent, name: name, start: time.Now()}
	_, _ = cryptorand.Read(t.salt[:])
	t.root = t.nextSpanID()
	return t
}

// nextSpanID allocates the next span ID: the trace-unique sequence
// number mixed with per-trace random entropy, so IDs differ across
// traces and — crucially for fleet-wide stitching — across the
// processes participating in one distributed trace (the router and
// every shard join the same trace ID but draw from independent salts,
// so a reassembled span tree never collides).
func (t *Trace) nextSpanID() SpanID {
	var id SpanID
	seq := t.spanSeq.Add(1)
	binary.BigEndian.PutUint64(id[:], seq)
	for i := 0; i < 6; i++ { // keep the low two sequence bytes readable
		id[i] ^= t.salt[i]
	}
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// TraceID returns the trace's ID (zero for a nil trace).
func (t *Trace) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// Traceparent renders the header value identifying this trace's root
// span, for propagation to clients and downstream services.
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	return FormatTraceparent(t.id, t.root)
}

// SetAttr attaches a key=value annotation to the trace.
func (t *Trace) SetAttr(k, v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = make(map[string]string, 4)
	}
	t.attrs[k] = v
	t.mu.Unlock()
}

// SetError marks the trace failed with the given message. The flight
// recorder retains errored traces separately.
func (t *Trace) SetError(msg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.failed = true
	if t.errMsg == "" {
		t.errMsg = msg
	}
	t.mu.Unlock()
}

// Event appends a structured point annotation (bounded; overflow counts
// as dropped).
func (t *Trace) Event(name, msg string) {
	if t == nil {
		return
	}
	e := TraceEvent{OffsetNS: int64(time.Since(t.start)), Name: name, Msg: msg}
	t.mu.Lock()
	if len(t.events) >= DefaultMaxTraceEvents {
		t.dropped++
	} else {
		t.events = append(t.events, e)
	}
	t.mu.Unlock()
}

// EmitPlan appends one plan's ordering provenance (bounded; overflow
// counts as dropped).
func (t *Trace) EmitPlan(p PlanProvenance) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.plans) >= DefaultMaxTracePlans {
		t.dropped++
	} else {
		t.plans = append(t.plans, p)
	}
	t.mu.Unlock()
}

// AnnotatePlan merges execution ground truth into the earliest
// not-yet-executed provenance record whose Plan key matches: plans are
// emitted and executed in the same order, but matching by key (rather
// than position) stays correct when an adaptive re-ordering abandons
// emitted-ahead records or re-emits a plan under revised statistics.
// No-op when no record matches (the record may have been dropped at the
// provenance bound).
func (t *Trace) AnnotatePlan(planKey string, newAnswers int, execNS int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.plans {
		if t.plans[i].Executed || t.plans[i].Plan != planKey {
			continue
		}
		t.plans[i].NewAnswers = newAnswers
		t.plans[i].ExecNS = execNS
		t.plans[i].Executed = true
		break
	}
	t.mu.Unlock()
}

// PlanCount returns how many provenance records the trace holds (0 for
// a nil trace). Orderers rebuilt mid-request use it to continue the
// plan index instead of restarting at zero.
func (t *Trace) PlanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.plans)
}

// Plans returns a copy of the provenance recorded so far (nil for a nil
// trace) — the payload of the serving layer's explain event.
func (t *Trace) Plans() []PlanProvenance {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]PlanProvenance(nil), t.plans...)
}

// TraceSpan is one in-flight timed operation within a trace. Start
// children with StartSpan; End it exactly once. A nil *TraceSpan is a
// no-op.
type TraceSpan struct {
	t      *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	ended  bool
}

// StartSpan begins a root-parented span. A nil trace yields a nil
// (no-op) span, so callers never branch on whether tracing is enabled.
func (t *Trace) StartSpan(name string) *TraceSpan {
	if t == nil {
		return nil
	}
	return &TraceSpan{t: t, id: t.nextSpanID(), parent: t.root, name: name, start: time.Now()}
}

// StartSpan begins a child span.
func (s *TraceSpan) StartSpan(name string) *TraceSpan {
	if s == nil {
		return nil
	}
	return &TraceSpan{t: s.t, id: s.t.nextSpanID(), parent: s.id, name: name, start: time.Now()}
}

// ID returns the span's ID (zero for a nil span).
func (s *TraceSpan) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Traceparent renders the header value identifying this span, so a
// sub-request issued while the span is open parents under it — the
// cross-process link trace stitching joins on.
func (s *TraceSpan) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.t.id, s.id)
}

// Annotate appends a point event attributed to this span's name.
func (s *TraceSpan) Annotate(msg string) {
	if s == nil {
		return
	}
	s.t.Event(s.name, msg)
}

// End finishes the span, appending its record to the trace (bounded;
// overflow counts as dropped) and returning the duration. A second End
// (or End on a nil span) is a no-op returning 0.
func (s *TraceSpan) End() time.Duration {
	if s == nil || s.ended {
		return 0
	}
	s.ended = true
	d := time.Since(s.start)
	rec := SpanRecord{
		ID: s.id, Parent: s.parent, Name: s.name,
		StartNS: int64(s.start.Sub(s.t.start)), DurNS: int64(d),
	}
	t := s.t
	t.mu.Lock()
	if len(t.spans) >= DefaultMaxTraceSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, rec)
	}
	t.mu.Unlock()
	return d
}

// Finish seals the trace (recording its total duration; later Finish
// calls keep the first) and returns its snapshot. A nil trace yields a
// zero snapshot.
func (t *Trace) Finish() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	if !t.finished {
		t.finished = true
		t.dur = time.Since(t.start)
	}
	t.mu.Unlock()
	return t.Snapshot()
}

// Snapshot copies the trace's current state. The snapshot always
// contains a root span record named after the trace and covering its
// full duration, so span trees reconstructed from exports are rooted.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	dur := t.dur
	if !t.finished {
		dur = time.Since(t.start)
	}
	s := TraceSnapshot{
		TraceID:    t.id,
		RootSpan:   t.root,
		ParentSpan: t.parent,
		Name:       t.name,
		Start:      t.start,
		DurNS:      int64(dur),
		Status:     "ok",
		Error:      t.errMsg,
		Spans:      make([]SpanRecord, 0, len(t.spans)+1),
		Dropped:    t.dropped,
	}
	if t.failed {
		s.Status = "error"
	}
	s.Spans = append(s.Spans, SpanRecord{ID: t.root, Name: t.name, DurNS: int64(dur)})
	s.Spans = append(s.Spans, t.spans...)
	if len(t.events) > 0 {
		s.Events = append([]TraceEvent(nil), t.events...)
	}
	if len(t.plans) > 0 {
		s.Plans = append([]PlanProvenance(nil), t.plans...)
	}
	if len(t.attrs) > 0 {
		s.Attrs = make(map[string]string, len(t.attrs))
		for k, v := range t.attrs {
			s.Attrs[k] = v
		}
	}
	return s
}

// traceCtxKey keys the trace in a context.Context.
type traceCtxKey struct{}

// WithTrace returns a context carrying the trace. A nil trace returns
// ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom extracts the trace from a context (nil, hence no-op
// tracing, when absent).
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}
