package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// This file is the estimator-calibration half of the observability
// layer. Every ordering algorithm ranks plans purely from *estimated*
// source statistics; a Calibration pairs those estimates with the ground
// truth observed when plans actually execute and reduces the pairs to
// q-error histograms, signed-bias gauges, and an EWMA drift detector per
// series. Two families of series are tracked:
//
//   - source series, one per (source, statistic): the engine feeds them
//     from unconstrained source accesses, pairing the catalog's Tuples
//     estimate with the observed result size (see DESIGN.md §"Estimate/
//     actual pairing contract" for why bound accesses are excluded);
//   - plan series, one per measure/algorithm pair: the mediator feeds
//     them after each executed plan, pairing the utility at selection
//     with the execution outcome (fresh answers for coverage-family
//     measures, engine cost delta for cost-family measures — see
//     PairPlanEstimate) plus the plan's wall time.
//
// Like the rest of obs, every method on a nil *Calibration is a no-op
// performing no allocations, so the engine and mediator hot paths record
// unconditionally; disabling calibration is passing nil.

// Calibration defaults.
const (
	// DefaultCalibAlpha is the EWMA smoothing factor for the drift
	// detector's running log-ratio.
	DefaultCalibAlpha = 0.3
	// DefaultCalibDriftFactor trips the drift detector once the EWMA of
	// log2(est/act) exceeds log2(DefaultCalibDriftFactor) in either
	// direction: estimates off by 4x on a smoothed basis are stale.
	DefaultCalibDriftFactor = 4
	// DefaultCalibMinSamples is how many observations a series needs
	// before the drift detector may trip (a single outlier is not drift).
	DefaultCalibMinSamples = 3
	// calibClamp is the floor substituted for non-positive estimates or
	// actuals before forming ratios, mirroring the adaptive tracker's
	// zero-observation clamp.
	calibClamp = 0.5
)

// CalibConfig parameterizes a Calibration. Zero fields take the
// defaults above.
type CalibConfig struct {
	// Alpha is the EWMA smoothing factor in (0, 1].
	Alpha float64
	// DriftFactor sets the drift threshold: the detector trips when
	// |EWMA of log2(est/act)| > log2(DriftFactor). Must be > 1.
	DriftFactor float64
	// MinSamples gates the detector: a series cannot trip before this
	// many observations.
	MinSamples int
}

// withDefaults fills unset fields.
func (c CalibConfig) withDefaults() CalibConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultCalibAlpha
	}
	if c.DriftFactor <= 1 {
		c.DriftFactor = DefaultCalibDriftFactor
	}
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultCalibMinSamples
	}
	return c
}

// calibSeries is the accumulator behind one estimate-vs-actual series.
type calibSeries struct {
	samples   int64
	estSum    float64
	actSum    float64
	logSum    float64 // Σ log2(est/act): signed bias, in doublings
	actLogSum float64 // Σ log2(act): geometric-mean accumulator
	ewma      float64 // EWMA of log2(est/act)
	seeded    bool
	tripped   bool // latches once drift is detected

	qerr Histogram // milli-q-error: 1000 * max(est/act, act/est)

	// Plan-series extras (unused for source series).
	wall    Histogram // per-plan wall time, ns
	answers int64
	cost    float64
}

// Calibration accumulates estimate-vs-actual series. All methods are
// concurrency-safe and nil-safe.
type Calibration struct {
	cfg       CalibConfig
	threshold float64 // log2(DriftFactor)

	mu      sync.Mutex
	sources map[string]*calibSeries
	plans   map[string]*calibSeries
}

// NewCalibration builds a calibration accumulator.
func NewCalibration(cfg CalibConfig) *Calibration {
	cfg = cfg.withDefaults()
	return &Calibration{
		cfg:       cfg,
		threshold: math.Log2(cfg.DriftFactor),
		sources:   make(map[string]*calibSeries),
		plans:     make(map[string]*calibSeries),
	}
}

// clampPos floors non-positive values to calibClamp so ratios are
// well-defined (a source that returned nothing still observed something).
func clampPos(v float64) float64 {
	if v <= 0 {
		return calibClamp
	}
	return v
}

// qError is the factor by which est and act disagree, in either
// direction: max(est/act, act/est) >= 1, the standard q-error.
func qError(est, act float64) float64 {
	if est > act {
		return est / act
	}
	return act / est
}

// observe folds one (est, act) pair into a series. Caller holds c.mu.
func (c *Calibration) observe(s *calibSeries, est, act float64) {
	est, act = clampPos(est), clampPos(act)
	lr := math.Log2(est / act)
	s.samples++
	s.estSum += est
	s.actSum += act
	s.logSum += lr
	s.actLogSum += math.Log2(act)
	if !s.seeded {
		s.seeded = true
		s.ewma = lr
	} else {
		s.ewma = c.cfg.Alpha*lr + (1-c.cfg.Alpha)*s.ewma
	}
	if s.samples >= int64(c.cfg.MinSamples) && math.Abs(s.ewma) > c.threshold {
		s.tripped = true
	}
	s.qerr.Observe(int64(qError(est, act) * 1000))
}

// ObserveSource records one source-statistic observation: the estimate
// the catalog carried (e.g. Stats.Tuples) against the actual observed
// during execution.
func (c *Calibration) ObserveSource(source string, est, act float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	s := c.sources[source]
	if s == nil {
		s = &calibSeries{}
		c.sources[source] = s
	}
	c.observe(s, est, act)
	c.mu.Unlock()
}

// ObservePlan records one executed plan under the given series key
// (conventionally "<measure>/<algorithm>"): the paired estimate and
// actual (see PairPlanEstimate), the fresh answers the plan contributed,
// the engine cost it accrued, and its wall time.
func (c *Calibration) ObservePlan(key string, est, act float64, newAnswers int, cost float64, wall time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	s := c.plans[key]
	if s == nil {
		s = &calibSeries{}
		c.plans[key] = s
	}
	c.observe(s, est, act)
	s.answers += int64(newAnswers)
	s.cost += cost
	s.wall.Observe(int64(wall))
	c.mu.Unlock()
}

// PairPlanEstimate maps a plan's predicted utility onto the estimate/
// actual pair the calibration layer tracks. Coverage-family measures
// produce nonnegative utilities predicting answer yield, so the actual
// is the fresh answers the plan contributed; cost-family measures
// produce negated costs (higher utility = cheaper), so the estimate is
// the predicted cost and the actual is the engine's cost delta. This is
// the pairing contract documented in DESIGN.md.
func PairPlanEstimate(utility float64, newAnswers int, costDelta float64) (est, act float64) {
	if utility >= 0 {
		return utility, float64(newAnswers)
	}
	return -utility, costDelta
}

// Drifted returns the sorted names of source series whose drift detector
// has tripped (nil for a nil Calibration).
func (c *Calibration) Drifted() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	var out []string
	for name, s := range c.sources {
		if s.tripped {
			out = append(out, name)
		}
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// CalibSeries is the snapshot of one estimate-vs-actual series.
type CalibSeries struct {
	// Name is the source name (source series) or the measure/algorithm
	// key (plan series).
	Name string `json:"name"`
	// Stat names the calibrated statistic ("tuples" for source series).
	Stat    string `json:"stat,omitempty"`
	Samples int64  `json:"samples"`
	// EstMean and ActMean are the arithmetic means of the paired
	// estimates and actuals.
	EstMean float64 `json:"est_mean"`
	ActMean float64 `json:"act_mean"`
	// ActGeoMean is the geometric mean of the actuals — the log-space
	// center a perfectly calibrated estimate would sit at.
	ActGeoMean float64 `json:"act_geo_mean"`
	// QErrP50/P95/Max summarize the q-error distribution
	// (max(est/act, act/est) >= 1; 1 is a perfect estimate).
	QErrP50 float64 `json:"qerr_p50"`
	QErrP95 float64 `json:"qerr_p95"`
	QErrMax float64 `json:"qerr_max"`
	// Bias is the mean signed log2(est/act): positive = overestimation,
	// in doublings.
	Bias float64 `json:"bias_log2"`
	// EWMA is the drift detector's smoothed log2(est/act).
	EWMA float64 `json:"ewma_log2"`
	// Drifted reports whether the detector has tripped (latched).
	Drifted bool `json:"drifted"`
	// Plan-series extras: total fresh answers, total engine cost, and
	// wall-time quantiles across the executed plans.
	Answers   int64   `json:"answers,omitempty"`
	Cost      float64 `json:"cost,omitempty"`
	WallP50MS float64 `json:"wall_p50_ms,omitempty"`
	WallP95MS float64 `json:"wall_p95_ms,omitempty"`
	WallSumMS float64 `json:"wall_sum_ms,omitempty"`
	// QErrSum backs the OpenMetrics summary's _sum sample.
	QErrSum float64 `json:"qerr_sum,omitempty"`
}

// CalibrationSnapshot is a point-in-time copy of a Calibration,
// JSON-serializable; series are sorted by name.
type CalibrationSnapshot struct {
	Alpha       float64       `json:"alpha"`
	DriftFactor float64       `json:"drift_factor"`
	MinSamples  int           `json:"min_samples"`
	Sources     []CalibSeries `json:"sources,omitempty"`
	Plans       []CalibSeries `json:"plans,omitempty"`
}

// snapshotSeries copies one series. Caller holds c.mu.
func snapshotSeries(name, stat string, s *calibSeries, plan bool) CalibSeries {
	q := s.qerr.Snapshot()
	out := CalibSeries{
		Name:    name,
		Stat:    stat,
		Samples: s.samples,
		EWMA:    s.ewma,
		Drifted: s.tripped,
		QErrP50: float64(q.Quantile(0.50)) / 1000,
		QErrP95: float64(q.Quantile(0.95)) / 1000,
		QErrMax: float64(q.Max) / 1000,
		QErrSum: float64(q.Sum) / 1000,
	}
	if s.samples > 0 {
		n := float64(s.samples)
		out.EstMean = s.estSum / n
		out.ActMean = s.actSum / n
		out.ActGeoMean = math.Exp2(s.actLogSum / n)
		out.Bias = s.logSum / n
	}
	if plan {
		w := s.wall.Snapshot()
		out.Answers = s.answers
		out.Cost = s.cost
		out.WallP50MS = float64(w.Quantile(0.50)) / 1e6
		out.WallP95MS = float64(w.Quantile(0.95)) / 1e6
		out.WallSumMS = float64(w.Sum) / 1e6
	}
	return out
}

// Snapshot copies the calibration's current state. A nil Calibration
// yields a zero snapshot.
func (c *Calibration) Snapshot() CalibrationSnapshot {
	if c == nil {
		return CalibrationSnapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := CalibrationSnapshot{
		Alpha:       c.cfg.Alpha,
		DriftFactor: c.cfg.DriftFactor,
		MinSamples:  c.cfg.MinSamples,
		Sources:     make([]CalibSeries, 0, len(c.sources)),
		Plans:       make([]CalibSeries, 0, len(c.plans)),
	}
	for name, s := range c.sources {
		snap.Sources = append(snap.Sources, snapshotSeries(name, "tuples", s, false))
	}
	for key, s := range c.plans {
		snap.Plans = append(snap.Plans, snapshotSeries(key, "", s, true))
	}
	sort.Slice(snap.Sources, func(i, j int) bool { return snap.Sources[i].Name < snap.Sources[j].Name })
	sort.Slice(snap.Plans, func(i, j int) bool { return snap.Plans[i].Name < snap.Plans[j].Name })
	return snap
}

// Reset clears every series, keeping the configuration.
func (c *Calibration) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.sources = make(map[string]*calibSeries)
	c.plans = make(map[string]*calibSeries)
	c.mu.Unlock()
}

// Empty reports whether the snapshot holds no series at all.
func (s CalibrationSnapshot) Empty() bool {
	return len(s.Sources) == 0 && len(s.Plans) == 0
}

// WriteText renders the snapshot for terminals.
func (s CalibrationSnapshot) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("calibration (drift trips at |ewma| > log2(%g) = %.2f after %d samples):\n",
		s.DriftFactor, math.Log2(s.DriftFactor), s.MinSamples)
	if s.Empty() {
		p("  no observations yet\n")
		return err
	}
	if len(s.Sources) > 0 {
		p("  per-source (%s):\n", "tuples estimate vs observed result size, unbound accesses")
		for _, cs := range s.Sources {
			flag := ""
			if cs.Drifted {
				flag = "  DRIFTED"
			}
			p("    %-20s n=%-5d est=%-10.4g act=%-10.4g qerr p50=%-8.3g p95=%-8.3g max=%-8.3g bias=%+.3f ewma=%+.3f%s\n",
				cs.Name, cs.Samples, cs.EstMean, cs.ActMean, cs.QErrP50, cs.QErrP95, cs.QErrMax, cs.Bias, cs.EWMA, flag)
		}
	}
	if len(s.Plans) > 0 {
		p("  per-plan (utility at selection vs execution outcome):\n")
		for _, cs := range s.Plans {
			flag := ""
			if cs.Drifted {
				flag = "  DRIFTED"
			}
			p("    %-20s n=%-5d est=%-10.4g act=%-10.4g qerr p50=%-8.3g p95=%-8.3g bias=%+.3f ewma=%+.3f answers=%-5d cost=%-10.4g wall p50=%.3gms p95=%.3gms%s\n",
				cs.Name, cs.Samples, cs.EstMean, cs.ActMean, cs.QErrP50, cs.QErrP95, cs.Bias, cs.EWMA,
				cs.Answers, cs.Cost, cs.WallP50MS, cs.WallP95MS, flag)
		}
	}
	return err
}

// CalibrationRecord is one NDJSON line of a calibration export: the
// snapshot, optionally correlated to the request trace that finished
// when it was taken. The non-empty "calibration" key is what
// distinguishes these lines from TraceSnapshot lines in a mixed export
// stream (see ReadExports).
type CalibrationRecord struct {
	TraceID     string              `json:"trace_id,omitempty"`
	Calibration CalibrationSnapshot `json:"calibration"`
}

// ReadExports decodes a mixed NDJSON export stream: TraceSnapshot lines
// (qpserved -trace-out, qporder -trace) interleaved with
// CalibrationRecord lines (qpserved -calib-out). Blank lines are
// skipped; any line that is neither is an error — exports are
// machine-written, so corruption fails loudly, exactly as ReadTraces
// does for pure trace streams.
func ReadExports(r io.Reader) ([]TraceSnapshot, []CalibrationRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var traces []TraceSnapshot
	var calibs []CalibrationRecord
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var probe struct {
			Calibration json.RawMessage `json:"calibration"`
		}
		if err := json.Unmarshal(b, &probe); err != nil {
			return nil, nil, fmt.Errorf("obs: export line %d: %w", line, err)
		}
		if len(probe.Calibration) > 0 && string(probe.Calibration) != "null" {
			var rec CalibrationRecord
			if err := json.Unmarshal(b, &rec); err != nil {
				return nil, nil, fmt.Errorf("obs: export line %d: %w", line, err)
			}
			calibs = append(calibs, rec)
			continue
		}
		var t TraceSnapshot
		if err := json.Unmarshal(b, &t); err != nil {
			return nil, nil, fmt.Errorf("obs: export line %d: %w", line, err)
		}
		if t.TraceID.IsZero() {
			return nil, nil, fmt.Errorf("obs: export line %d: zero trace ID", line)
		}
		traces = append(traces, t)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return traces, calibs, nil
}
