package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// ndjson marshals snapshots one per line, blank line between them, the
// way a trace export file looks after two daemon restarts.
func ndjson(t *testing.T, snaps ...TraceSnapshot) string {
	t.Helper()
	var buf bytes.Buffer
	for i, s := range snaps {
		if i > 0 {
			buf.WriteByte('\n') // blank separator line must be tolerated
		}
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.String()
}

func TestReadTracesRoundTrip(t *testing.T) {
	a := NewTrace("one")
	a.StartSpan("order").End()
	b := NewTrace("two")
	in := ndjson(t, a.Finish(), b.Finish())
	ts, err := ReadTraces(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].Name != "one" || ts[1].Name != "two" {
		t.Fatalf("ReadTraces = %+v", ts)
	}
}

func TestReadTracesMalformed(t *testing.T) {
	good := ndjson(t, NewTrace("ok").Finish())
	if _, err := ReadTraces(strings.NewReader(good + "{not json\n")); err == nil {
		t.Fatal("malformed line did not error")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error does not name the line: %v", err)
	}
	if _, err := ReadTraces(strings.NewReader(`{"trace_id":"00000000000000000000000000000000"}` + "\n")); err == nil {
		t.Fatal("zero trace ID did not error")
	}
	if ts, err := ReadTraces(strings.NewReader("")); err != nil || len(ts) != 0 {
		t.Fatalf("empty input: %v %v", ts, err)
	}
}

// span builds a SpanRecord with a small ID derived from seq.
func span(seq byte, parent SpanID, name string, durNS int64) SpanRecord {
	var id SpanID
	id[7] = seq
	return SpanRecord{ID: id, Parent: parent, Name: name, DurNS: durNS}
}

// TestAnalyzeTraces checks the aggregate report on a hand-built trace:
// span totals, provenance sums, statuses, and the critical path (the
// root-to-leaf chain maximizing duration).
func TestAnalyzeTraces(t *testing.T) {
	var tid TraceID
	tid[15] = 1
	var rootID SpanID
	rootID[7] = 9
	orderSpan := span(1, rootID, "order", 60)
	trace := TraceSnapshot{
		TraceID:  tid,
		RootSpan: rootID,
		Name:     "req",
		Status:   "ok",
		DurNS:    100,
		Spans: []SpanRecord{
			{ID: rootID, Name: "req", DurNS: 100}, // synthetic root
			orderSpan,
			span(2, rootID, "soundness", 30),
			span(3, orderSpan.ID, "refine", 50),
		},
		Plans: []PlanProvenance{
			{Index: 0, Utility: 2, DomWon: 3, DomLost: 1, Refinements: 4, Splits: 2, Evals: 7},
			{Index: 1, Utility: 1, DomWon: 1, DomLost: 2, Refinements: 0, Splits: 0, Evals: 5},
		},
	}
	errTrace := TraceSnapshot{TraceID: TraceID{1}, Name: "req", Status: "error", DurNS: 40}

	rep := AnalyzeTraces([]TraceSnapshot{trace, errTrace}, 10)
	if rep.Traces != 2 || rep.Errors != 1 || rep.TotalNS != 140 {
		t.Fatalf("traces/errors/total = %d/%d/%d", rep.Traces, rep.Errors, rep.TotalNS)
	}
	if rep.Plans != 2 || rep.DomWon != 4 || rep.DomLost != 3 || rep.Refines != 4 || rep.Splits != 2 || rep.Evals != 12 {
		t.Fatalf("provenance sums wrong: %+v", rep)
	}
	if rep.Statuses["ok"] != 1 || rep.Statuses["error"] != 1 {
		t.Fatalf("statuses = %v", rep.Statuses)
	}
	// Spans are sorted by total time descending and exclude the root.
	if len(rep.Spans) != 3 || rep.Spans[0].Name != "order" || rep.Spans[0].TotalNS != 60 {
		t.Fatalf("span aggregates = %+v", rep.Spans)
	}
	// Slowest requests are duration-descending; the 100ns trace leads.
	if len(rep.Slowest) != 2 || rep.Slowest[0].TraceID != tid {
		t.Fatalf("slowest = %+v", rep.Slowest)
	}
	// order(60) beats soundness(30) at the root; refine is order's leaf.
	if got := rep.Slowest[0].CriticalPath; got != "order > refine" {
		t.Fatalf("critical path = %q, want \"order > refine\"", got)
	}
	if rep.Slowest[0].CriticalNS != 50 {
		t.Fatalf("critical leaf = %d, want 50", rep.Slowest[0].CriticalNS)
	}
}

func TestAnalyzeTracesTopCap(t *testing.T) {
	var ts []TraceSnapshot
	for i := 0; i < 15; i++ {
		var tid TraceID
		tid[15] = byte(i + 1)
		var rootID SpanID
		rootID[7] = 1
		ts = append(ts, TraceSnapshot{
			TraceID: tid, RootSpan: rootID, Name: "req", Status: "ok", DurNS: int64(i + 1),
			Spans: []SpanRecord{
				{ID: rootID, Name: "req", DurNS: int64(i + 1)},
				span(2, rootID, "s"+string(rune('a'+i)), 10),
			},
		})
	}
	rep := AnalyzeTraces(ts, 3)
	if len(rep.Spans) != 3 || len(rep.Slowest) != 3 {
		t.Fatalf("top=3 kept %d spans, %d slowest", len(rep.Spans), len(rep.Slowest))
	}
	if rep.Slowest[0].DurNS != 15 {
		t.Fatalf("slowest[0] = %d, want 15", rep.Slowest[0].DurNS)
	}
}

func TestTraceReportWriteText(t *testing.T) {
	tr := NewTrace("req")
	tr.StartSpan("order").End()
	tr.EmitPlan(PlanProvenance{Index: 0, Evals: 3})
	rep := AnalyzeTraces([]TraceSnapshot{tr.Finish()}, 10)
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"traces: 1", "plans emitted: 1", "top spans by total time:", "order", "slowest requests:", "critical path: order"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
