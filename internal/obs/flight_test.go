package obs

import (
	"bytes"
	"strings"
	"testing"
)

// flightSnap builds a minimal finished-trace snapshot for recorder tests.
func flightSnap(seq byte, durNS int64, status string) TraceSnapshot {
	var id TraceID
	id[15] = seq
	return TraceSnapshot{TraceID: id, Name: "req", Status: status, DurNS: durNS}
}

// TestFlightRecorderRetention: the recent ring keeps the last N
// newest-first, the slowest list keeps the N largest durations sorted
// descending, and errored traces land in their own ring.
func TestFlightRecorderRetention(t *testing.T) {
	f := NewFlightRecorder(4, 2, 2)
	// Durations chosen so the slowest are NOT the most recent.
	durs := []int64{70, 90, 20, 30, 40, 50}
	for i, d := range durs {
		status := "ok"
		if i == 2 || i == 4 { // seq 3 and 5 fail
			status = "error"
		}
		f.Record(flightSnap(byte(i+1), d, status))
	}
	s := f.Snapshot()
	if s.Total != 6 {
		t.Fatalf("total = %d, want 6", s.Total)
	}
	wantRecent := []byte{6, 5, 4, 3}
	if len(s.Recent) != len(wantRecent) {
		t.Fatalf("recent = %d entries, want %d", len(s.Recent), len(wantRecent))
	}
	for i, w := range wantRecent {
		if s.Recent[i].TraceID[15] != w {
			t.Fatalf("recent[%d] = seq %d, want %d (newest first)", i, s.Recent[i].TraceID[15], w)
		}
	}
	if len(s.Slowest) != 2 || s.Slowest[0].DurNS != 90 || s.Slowest[1].DurNS != 70 {
		t.Fatalf("slowest = %+v, want durations [90 70]", s.Slowest)
	}
	if len(s.Errored) != 2 || s.Errored[0].TraceID[15] != 5 || s.Errored[1].TraceID[15] != 3 {
		t.Fatalf("errored = %+v, want seq [5 3] newest first", s.Errored)
	}
}

// TestFlightRecorderFind: retained traces are found by ID across all
// three retention classes; evicted-everywhere IDs are not.
func TestFlightRecorderFind(t *testing.T) {
	f := NewFlightRecorder(2, 1, 1)
	f.Record(flightSnap(1, 100, "ok")) // slowest keeps it after eviction from recent
	f.Record(flightSnap(2, 10, "error"))
	f.Record(flightSnap(3, 20, "ok"))
	f.Record(flightSnap(4, 30, "ok")) // evicts seq 2 from recent; errored still holds it
	for _, seq := range []byte{1, 2, 3, 4} {
		var id TraceID
		id[15] = seq
		if _, ok := f.Find(id); !ok {
			t.Fatalf("Find(seq %d) missed a retained trace", seq)
		}
	}
	var missing TraceID
	missing[0] = 0xee
	if _, ok := f.Find(missing); ok {
		t.Fatal("Find returned a trace that was never recorded")
	}
}

func TestFlightSnapshotWriteText(t *testing.T) {
	f := NewFlightRecorder(4, 2, 2)
	ok := flightSnap(1, 1000, "ok")
	ok.Attrs = map[string]string{"query": "Q(x) :- r(x)"}
	f.Record(ok)
	bad := flightSnap(2, 2000, "error")
	bad.Error = "deadline exceeded"
	f.Record(bad)
	var buf bytes.Buffer
	if err := f.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"requests recorded: 2",
		"recent (newest first):",
		"slowest:",
		"errored (newest first):",
		"Q(x) :- r(x)",
		"err=deadline exceeded",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(flightSnap(1, 1, "ok"))
	if s := f.Snapshot(); s.Total != 0 || s.Recent != nil {
		t.Fatalf("nil Snapshot = %+v", s)
	}
	if _, ok := f.Find(TraceID{}); ok {
		t.Fatal("nil Find returned ok")
	}
}

func TestFlightRecorderDefaults(t *testing.T) {
	f := NewFlightRecorder(0, -1, 0)
	for i := 0; i < 100; i++ {
		f.Record(flightSnap(byte(i), int64(i), "ok"))
	}
	s := f.Snapshot()
	if len(s.Recent) != 64 || len(s.Slowest) != 16 {
		t.Fatalf("defaults: recent=%d slowest=%d, want 64/16", len(s.Recent), len(s.Slowest))
	}
}
