package obs

import (
	"bytes"
	"strings"
	"testing"
)

// buildExposition renders a populated registry the way a shard would.
func buildExposition(t *testing.T) string {
	t.Helper()
	r := NewRegistry()
	r.Counter("server.requests").Add(42)
	r.Gauge("server.inflight").Set(3.5)
	for i := int64(1); i <= 100; i++ {
		r.Histogram("server.latency_ns").Observe(i * 1000)
	}
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestParseOpenMetricsRoundTrip(t *testing.T) {
	out := buildExposition(t)
	fams, err := ParseOpenMetrics(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]OMFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["server_requests"]; f.Type != "counter" || len(f.Samples) != 1 ||
		f.Samples[0].Suffix != "_total" || f.Samples[0].Value != "42" {
		t.Fatalf("server_requests = %+v", f)
	}
	if f := byName["server_inflight"]; f.Type != "gauge" || f.Samples[0].Value != "3.5" {
		t.Fatalf("server_inflight = %+v", f)
	}
	lat := byName["server_latency_ns"]
	if lat.Type != "summary" {
		t.Fatalf("latency type = %q", lat.Type)
	}
	var quantiles int
	for _, s := range lat.Samples {
		if strings.Contains(s.Labels, "quantile=") {
			quantiles++
		}
	}
	if quantiles != 4 { // p50, p95, p99, p99.9
		t.Fatalf("latency quantile samples = %d, want 4", quantiles)
	}
}

func TestParseOpenMetricsErrors(t *testing.T) {
	for name, in := range map[string]string{
		"no EOF":             "# TYPE a counter\na_total 1\n",
		"content after EOF":  "# EOF\na_total 1\n",
		"sample before TYPE": "a_total 1\n# EOF\n",
		"foreign sample":     "# TYPE a counter\nb_total 1\n# EOF\n",
		"missing value":      "# TYPE a counter\na_total\n# EOF\n",
		"unterminated block": "# TYPE a counter\na_total{x=\"y 1\n# EOF\n",
	} {
		if _, err := ParseOpenMetrics(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestParseOpenMetricsEscapedLabels(t *testing.T) {
	// A label value containing an escaped quote, a backslash, and a
	// literal '}' must not end the block early.
	in := "# TYPE a gauge\na{plan=\"p \\\"q\\\" \\\\ }x\",other=\"y\"} 7\n# EOF\n"
	fams, err := ParseOpenMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || len(fams[0].Samples) != 1 {
		t.Fatalf("fams = %+v", fams)
	}
	s := fams[0].Samples[0]
	if s.Value != "7" {
		t.Fatalf("value = %q, want 7", s.Value)
	}
	if !strings.Contains(s.Labels, `}x`) || !strings.Contains(s.Labels, `other="y"`) {
		t.Fatalf("labels mangled: %q", s.Labels)
	}
}

func TestWriteMergedOpenMetrics(t *testing.T) {
	shard := buildExposition(t)
	shardFams, err := ParseOpenMetrics(strings.NewReader(shard))
	if err != nil {
		t.Fatal(err)
	}
	local := NewRegistry()
	local.Counter("fleet.sessions_proxied").Add(9)
	var own bytes.Buffer
	if err := local.WriteOpenMetrics(&own); err != nil {
		t.Fatal(err)
	}
	localFams, err := ParseOpenMetrics(&own)
	if err != nil {
		t.Fatal(err)
	}

	var merged bytes.Buffer
	dropped, err := WriteMergedOpenMetrics(&merged, []LabeledExposition{
		{Families: localFams}, // the federating process: unlabeled
		{Families: shardFams, Label: [2]string{"shard", "0"}},
		{Families: shardFams, Label: [2]string{"shard", "1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	out := merged.String()
	// The merged exposition must itself satisfy the grammar validator.
	families, samples := validateOpenMetrics(t, out)
	if samples == 0 {
		t.Fatal("no samples in merged exposition")
	}
	if families["fleet_sessions_proxied"] != "counter" {
		t.Fatal("local family missing from merge")
	}
	if !strings.Contains(out, `server_requests_total{shard="0"} 42`) ||
		!strings.Contains(out, `server_requests_total{shard="1"} 42`) {
		t.Fatalf("per-shard samples missing:\n%s", out)
	}
	if strings.Contains(out, "fleet_sessions_proxied_total{") {
		t.Fatalf("local samples must stay unlabeled:\n%s", out)
	}
	// One TYPE declaration per family even though two shards carry it.
	if strings.Count(out, "# TYPE server_requests counter") != 1 {
		t.Fatalf("family declared more than once:\n%s", out)
	}
	// The merged output must round-trip through the parser: federation
	// of a federated endpoint is legal.
	if _, err := ParseOpenMetrics(strings.NewReader(out)); err != nil {
		t.Fatalf("merged output does not re-parse: %v", err)
	}
}

func TestWriteMergedOpenMetricsLabelInjection(t *testing.T) {
	fams := []OMFamily{{
		Name: "m", Type: "summary",
		Samples: []OMSample{
			{Labels: `quantile="0.5"`, Value: "1"}, // existing labels get the shard label prepended
			{Suffix: "_count", Value: "5"},         // unlabeled gets a fresh block
		},
	}}
	var buf bytes.Buffer
	if _, err := WriteMergedOpenMetrics(&buf, []LabeledExposition{
		{Families: fams, Label: [2]string{"shard", `we"ird`}},
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `m{shard="we\"ird",quantile="0.5"} 1`) {
		t.Fatalf("label not injected/escaped:\n%s", out)
	}
	if !strings.Contains(out, `m_count{shard="we\"ird"} 5`) {
		t.Fatalf("unlabeled sample not labeled:\n%s", out)
	}
}

func TestWriteMergedOpenMetricsTypeConflict(t *testing.T) {
	a := []OMFamily{{Name: "m", Type: "counter", Samples: []OMSample{{Suffix: "_total", Value: "1"}}}}
	b := []OMFamily{{Name: "m", Type: "gauge", Samples: []OMSample{{Value: "2"}, {Value: "3"}}}}
	var buf bytes.Buffer
	dropped, err := WriteMergedOpenMetrics(&buf, []LabeledExposition{
		{Families: a, Label: [2]string{"shard", "0"}},
		{Families: b, Label: [2]string{"shard", "1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d, want the conflicting source's 2 samples", dropped)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE m counter") != 1 || strings.Contains(out, "gauge") {
		t.Fatalf("first type must win:\n%s", out)
	}
}

// The P99.9 satellite: the interpolated tail quantile must appear in
// snapshots and both exposition formats.
func TestHistogramP999(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 10_000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.P999 == 0 {
		t.Fatal("P999 not populated")
	}
	if s.P999 < s.P99 || s.P999 > s.Max {
		t.Fatalf("P99=%d P999=%d Max=%d: tail quantile out of order", s.P99, s.P999, s.Max)
	}
	// It must render in the text form...
	r := NewRegistry()
	for i := int64(1); i <= 1000; i++ {
		r.Histogram("x.latency_ns").Observe(i)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p99.9=") {
		t.Fatalf("text exposition lacks p99.9:\n%s", buf.String())
	}
	// ...and as a 0.999 quantile sample in OpenMetrics.
	buf.Reset()
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	validateOpenMetrics(t, buf.String())
	if !strings.Contains(buf.String(), `quantile="0.999"`) {
		t.Fatalf("openmetrics exposition lacks the 0.999 quantile:\n%s", buf.String())
	}
}
