package obs

import (
	"sort"
	"strings"
)

// This file reassembles fleet-wide traces from per-process exports.
// Every hop of a distributed session (the router, each shard it
// touched) exports its own TraceSnapshot under the shared W3C trace ID;
// the cross-process link is TraceSnapshot.ParentSpan — the span ID of
// the caller's in-flight span, carried hop-to-hop in the traceparent
// header. StitchTraces groups snapshots by trace ID, grafts each
// snapshot's span tree onto its remote parent, rebases child timelines
// onto the root's clock, and walks the merged tree for the fleet-wide
// critical path — so a scatter-gathered query shows router queue →
// fan-out → per-shard ordering → merge as one tree.
//
// Clock caveat: child offsets rebase via wall-clock Start differences
// across machines, so cross-host skew shifts child spans by the skew
// amount. Durations are monotonic-clock measured and unaffected.

// StitchedPart is one hop of a stitched critical path with the time
// attributable to it alone (its duration minus the next hop's).
type StitchedPart struct {
	Name   string `json:"name"`
	SelfNS int64  `json:"self_ns"`
}

// StitchedTrace is one multi-process trace reassembled from the
// per-process snapshots sharing its trace ID.
type StitchedTrace struct {
	TraceID TraceID `json:"trace_id"`
	// Procs is how many process-local snapshots were stitched.
	Procs int `json:"procs"`
	// Name is the root snapshot's name (the first hop, e.g. the router).
	Name string `json:"name"`
	// Hops lists every stitched snapshot's name, root first.
	Hops []string `json:"hops,omitempty"`
	// Status is "error" when any hop errored.
	Status string `json:"status"`
	DurNS  int64  `json:"dur_ns"`
	Spans  int    `json:"spans"`
	// Orphans counts snapshots whose remote parent span was not found in
	// any sibling snapshot (their subtree hangs off the root unattached
	// and is excluded from the critical path).
	Orphans int `json:"orphans,omitempty"`
	// CriticalPath is the root-to-leaf chain through the merged
	// cross-process span tree, "a > b > c".
	CriticalPath string `json:"critical_path"`
	// CriticalNS is the leaf-most span's duration on that chain.
	CriticalNS int64 `json:"critical_ns"`
	// Breakdown attributes the root's wall time to the chain's hops:
	// each entry's SelfNS is its span duration minus the next chain
	// entry's, i.e. time spent at that level (router queueing, shard
	// execution, merging) rather than waiting on the level below.
	Breakdown []StitchedPart `json:"breakdown,omitempty"`
}

// StitchTraces reassembles multi-process traces: snapshots sharing a
// trace ID (in input order) become one StitchedTrace when there are at
// least two of them — a lone snapshot has nothing to stitch. The result
// is ordered by duration descending.
func StitchTraces(ts []TraceSnapshot) []StitchedTrace {
	groups := make(map[TraceID][]TraceSnapshot)
	var order []TraceID
	for _, t := range ts {
		if _, seen := groups[t.TraceID]; !seen {
			order = append(order, t.TraceID)
		}
		groups[t.TraceID] = append(groups[t.TraceID], t)
	}
	var out []StitchedTrace
	for _, id := range order {
		g := groups[id]
		if len(g) < 2 {
			continue
		}
		out = append(out, stitchGroup(id, g))
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].DurNS != out[j].DurNS {
			return out[i].DurNS > out[j].DurNS
		}
		return out[i].TraceID.String() < out[j].TraceID.String()
	})
	return out
}

// stitchGroup merges one trace ID's snapshots into a StitchedTrace.
func stitchGroup(id TraceID, g []TraceSnapshot) StitchedTrace {
	// Which snapshot owns each span ID (for root election and orphan
	// detection).
	owner := make(map[SpanID]int, 32)
	for i, snap := range g {
		for _, sp := range snap.Spans {
			owner[sp.ID] = i
		}
	}
	// The root hop is the snapshot whose remote parent is unknown to its
	// siblings: either it has none (a fresh trace) or the parent span
	// belongs to the client, outside the export. Ties (or a cyclic
	// parent mess) resolve to the earliest start.
	root := -1
	for i, snap := range g {
		_, known := owner[snap.ParentSpan]
		if !snap.ParentSpan.IsZero() && known && owner[snap.ParentSpan] != i {
			continue
		}
		if root < 0 || snap.Start.Before(g[root].Start) {
			root = i
		}
	}
	if root < 0 {
		root = 0
		for i, snap := range g {
			if snap.Start.Before(g[root].Start) {
				root = i
			}
		}
	}

	st := StitchedTrace{
		TraceID: id,
		Procs:   len(g),
		Name:    g[root].Name,
		Status:  "ok",
		DurNS:   g[root].DurNS,
	}
	// Merge: root first, then the other hops in start order, each
	// rebased onto the root's clock with its local root span reparented
	// onto the remote parent.
	hopOrder := make([]int, 0, len(g))
	hopOrder = append(hopOrder, root)
	rest := make([]int, 0, len(g)-1)
	for i := range g {
		if i != root {
			rest = append(rest, i)
		}
	}
	sort.SliceStable(rest, func(a, b int) bool { return g[rest[a]].Start.Before(g[rest[b]].Start) })
	hopOrder = append(hopOrder, rest...)

	var merged []SpanRecord
	for _, i := range hopOrder {
		snap := g[i]
		st.Hops = append(st.Hops, snap.Name)
		if snap.Status == "error" {
			st.Status = "error"
		}
		off := snap.Start.Sub(g[root].Start).Nanoseconds()
		if i == root {
			off = 0
		} else if _, known := owner[snap.ParentSpan]; !known || owner[snap.ParentSpan] == i {
			st.Orphans++
		}
		for _, sp := range snap.Spans {
			rec := sp
			rec.StartNS += off
			if i != root && sp.ID == snap.RootSpan {
				rec.Parent = snap.ParentSpan
			}
			merged = append(merged, rec)
		}
	}
	st.Spans = len(merged)

	chain := criticalChain(g[root].RootSpan, g[root].DurNS, g[root].Name, merged)
	names := make([]string, 0, len(chain)-1)
	for _, sp := range chain[1:] { // the root span duplicates the trace name
		names = append(names, sp.Name)
	}
	st.CriticalPath = strings.Join(names, " > ")
	st.CriticalNS = chain[len(chain)-1].DurNS
	st.Breakdown = make([]StitchedPart, len(chain))
	for i, sp := range chain {
		self := sp.DurNS
		if i+1 < len(chain) {
			self -= chain[i+1].DurNS
		}
		if self < 0 {
			self = 0
		}
		st.Breakdown[i] = StitchedPart{Name: sp.Name, SelfNS: self}
	}
	return st
}

// criticalChain walks the merged span tree from the root span,
// descending into the longest child at each level (ties: earliest
// start), and returns the chain of span records including the root.
func criticalChain(rootID SpanID, rootDur int64, rootName string, spans []SpanRecord) []SpanRecord {
	children := make(map[SpanID][]SpanRecord, len(spans))
	for _, s := range spans {
		if s.ID == rootID {
			continue
		}
		children[s.Parent] = append(children[s.Parent], s)
	}
	chain := []SpanRecord{{ID: rootID, Name: rootName, DurNS: rootDur}}
	cur := rootID
	seen := map[SpanID]bool{rootID: true} // cycle guard: malformed links must not loop
	for {
		kids := children[cur]
		if len(kids) == 0 {
			return chain
		}
		best := kids[0]
		for _, k := range kids[1:] {
			if k.DurNS > best.DurNS || (k.DurNS == best.DurNS && k.StartNS < best.StartNS) {
				best = k
			}
		}
		if seen[best.ID] {
			return chain
		}
		seen[best.ID] = true
		chain = append(chain, best)
		cur = best.ID
	}
}
