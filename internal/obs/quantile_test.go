package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestHistogramQuantiles checks the interpolated quantile estimates on a
// known distribution (1..100): p50 lands on the true median, and the
// upper quantiles clamp to the observed max when interpolation would
// overshoot the bucket's upper bound.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Rank 50 falls in the [32,63] bucket with 32 of ranks 32..63:
	// 32 + (50-31)/32 * 31 = 50.4 -> 50.
	if s.P50 != 50 {
		t.Fatalf("p50 = %d, want 50", s.P50)
	}
	// Ranks 95 and 99 fall in the top bucket [64,127]; interpolation
	// overshoots the observed max and must clamp to it.
	if s.P95 != 100 || s.P99 != 100 {
		t.Fatalf("p95/p99 = %d/%d, want 100/100", s.P95, s.P99)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %d, want min 1", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %d, want max 100", got)
	}
	// Quantiles are monotone in q.
	prev := int64(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%g) = %d < previous %d", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramQuantileSingleAndEmpty(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.P50 != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantiles = %+v", s)
	}
	h.Observe(1000)
	s := h.Snapshot()
	// One observation: every quantile clamps into [min, max] = [1000, 1000].
	if s.P50 != 1000 || s.P95 != 1000 || s.P99 != 1000 {
		t.Fatalf("single-value quantiles = %d/%d/%d, want 1000", s.P50, s.P95, s.P99)
	}
}

// TestHistogramQuantileRendering: the registry's text view carries the
// new percentile columns.
func TestHistogramQuantileRendering(t *testing.T) {
	r := NewRegistry()
	r.Histogram("latency_ns").Observe(1_000_000)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"p50=", "p95=", "p99="} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}
}
