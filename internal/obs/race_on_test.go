//go:build race

package obs

// raceEnabled reports whether the race detector instrumented this build.
const raceEnabled = true
