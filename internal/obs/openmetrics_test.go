package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestOpenMetricsName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"core.greedy.evals", "core_greedy_evals"},
		{"server.requests", "server_requests"},
		{"already_fine:sub", "already_fine:sub"},
		{"9lives", "_9lives"},
		{"", "_"},
		{"UPPER.ok", "UPPER_ok"},
		{"sp ace-dash", "sp_ace_dash"},
		{"héllo", "h__llo"}, // 'é' is two bytes, both sanitized
	} {
		if got := openMetricsName(tc.in); got != tc.want {
			t.Errorf("openMetricsName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestOpenMetricsLabelValue(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{`all"three\` + "\n", `all\"three\\\n`},
	} {
		if got := openMetricsLabelValue(tc.in); got != tc.want {
			t.Errorf("openMetricsLabelValue(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// metricNameRe is the OpenMetrics metric-name grammar.
var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// sampleLineRe splits a sample line into name, optional labels, value.
var sampleLineRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// labelNameRe is the OpenMetrics label-name grammar.
var labelNameRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// validateLabelBlock walks a {name="value",...} block character by
// character, tracking escape state — a split on `",` would misparse
// values ending in an escaped quote.
func validateLabelBlock(t *testing.T, lineNo int, block string) {
	t.Helper()
	s := block[1 : len(block)-1]
	for len(s) > 0 {
		eq := strings.Index(s, `="`)
		if eq <= 0 || !labelNameRe.MatchString(s[:eq]) {
			t.Fatalf("line %d: bad label name in %q", lineNo, block)
		}
		s = s[eq+2:]
		closed := false
	value:
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case '\\':
				if i+1 >= len(s) || (s[i+1] != '\\' && s[i+1] != '"' && s[i+1] != 'n') {
					t.Fatalf("line %d: bad escape in %q", lineNo, block)
				}
				i++
			case '"':
				rest := s[i+1:]
				if rest != "" && !strings.HasPrefix(rest, ",") {
					t.Fatalf("line %d: garbage after label value in %q", lineNo, block)
				}
				s = strings.TrimPrefix(rest, ",")
				closed = true
				break value
			case '\n':
				t.Fatalf("line %d: raw newline in label value", lineNo)
			}
		}
		if !closed {
			t.Fatalf("line %d: unterminated label value in %q", lineNo, block)
		}
	}
}

// validateOpenMetrics parses an exposition and fails the test on any
// grammar violation: bad metric or label names, unparseable values,
// samples without a preceding TYPE declaration for their family, or a
// missing/misplaced "# EOF" terminator.
func validateOpenMetrics(t *testing.T, out string) (families map[string]string, samples int) {
	t.Helper()
	families = make(map[string]string) // family -> type
	lines := strings.Split(out, "\n")
	if lines[len(lines)-1] != "" {
		t.Fatalf("exposition does not end with a newline")
	}
	lines = lines[:len(lines)-1]
	if len(lines) == 0 || lines[len(lines)-1] != "# EOF" {
		t.Fatalf("exposition does not end with # EOF")
	}
	for i, line := range lines {
		switch {
		case line == "# EOF":
			if i != len(lines)-1 {
				t.Fatalf("line %d: # EOF before the end", i+1)
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			name, typ := parts[2], parts[3]
			if !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: invalid family name %q", i+1, name)
			}
			switch typ {
			case "counter", "gauge", "summary", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", i+1, typ)
			}
			if _, dup := families[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", i+1, name)
			}
			families[name] = typ
		case strings.HasPrefix(line, "#"):
			// HELP/UNIT would land here; this writer emits neither.
			t.Fatalf("line %d: unexpected comment %q", i+1, line)
		default:
			m := sampleLineRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample %q", i+1, line)
			}
			name, labels, value := m[1], m[2], m[3]
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Fatalf("line %d: unparseable value %q", i+1, value)
			}
			if labels != "" {
				validateLabelBlock(t, i+1, labels)
			}
			// The sample must belong to a declared family: its name, or
			// its name minus a suffix the family's type permits.
			fam, ok := name, false
			if _, ok = families[fam]; !ok {
				for _, suffix := range []string{"_total", "_sum", "_count"} {
					if strings.HasSuffix(name, suffix) {
						if _, ok = families[strings.TrimSuffix(name, suffix)]; ok {
							fam = strings.TrimSuffix(name, suffix)
							break
						}
					}
				}
			}
			if !ok {
				t.Fatalf("line %d: sample %q has no TYPE declaration", i+1, name)
			}
			if typ := families[fam]; typ == "counter" && !strings.HasSuffix(name, "_total") {
				t.Fatalf("line %d: counter sample %q lacks _total", i+1, name)
			}
			samples++
		}
	}
	return families, samples
}

func TestWriteOpenMetricsGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests").Add(42)
	r.Counter("core.greedy.evals").Inc()
	r.Gauge("server.inflight").Set(3.5)
	for i := int64(1); i <= 100; i++ {
		r.Histogram("server.latency_ns").Observe(i * 1000)
	}
	RegisterRuntimeMetrics(r)
	cal := NewCalibration(CalibConfig{})
	for i := 0; i < 3; i++ {
		cal.ObserveSource("V0_1", 160, 10)
		cal.ObservePlan(`chain/streamer "q"`, 100, 90, 5, 10, time.Millisecond)
	}
	r.AttachCalibration(cal)

	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	families, samples := validateOpenMetrics(t, out)
	if samples == 0 {
		t.Fatal("no samples in exposition")
	}
	for fam, typ := range map[string]string{
		"server_requests":            "counter",
		"core_greedy_evals":          "counter",
		"server_inflight":            "gauge",
		"server_latency_ns":          "summary",
		"runtime_gomaxprocs":         "gauge",
		"calib_source_qerror":        "summary",
		"calib_source_drifted":       "gauge",
		"calib_plan_qerror":          "summary",
		"calib_plan_drift_ewma_log2": "gauge",
	} {
		if families[fam] != typ {
			t.Errorf("family %s: type %q, want %q", fam, families[fam], typ)
		}
	}
	if !strings.Contains(out, `calib_source_drifted{source="V0_1"} 1`) {
		t.Errorf("drifted source sample missing:\n%s", out)
	}
	if !strings.Contains(out, `plan="chain/streamer \"q\""`) {
		t.Errorf("plan label not escaped:\n%s", out)
	}
	if strings.Count(out, "# EOF") != 1 {
		t.Errorf("want exactly one # EOF")
	}
}

// Sanitization collisions keep every sample, disambiguated by an
// instrument label.
func TestWriteOpenMetricsCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(1)
	r.Counter("a_b").Add(2)
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	validateOpenMetrics(t, out)
	if !strings.Contains(out, `a_b_total{instrument="a.b"} 1`) ||
		!strings.Contains(out, `a_b_total{instrument="a_b"} 2`) {
		t.Fatalf("collision not disambiguated:\n%s", out)
	}
	if strings.Count(out, "# TYPE a_b counter") != 1 {
		t.Fatalf("collided family declared more than once:\n%s", out)
	}
}

func TestWriteOpenMetricsEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "# EOF\n" {
		t.Fatalf("empty registry exposition = %q, want just the terminator", got)
	}
	buf.Reset()
	var nilReg *Registry
	if err := nilReg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "# EOF\n" {
		t.Fatalf("nil registry exposition = %q", got)
	}
}

func TestOMFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{{3, "3"}, {3.5, "3.5"}, {0, "0"}, {-2, "-2"}} {
		if got := omFloat(tc.in); got != tc.want {
			t.Errorf("omFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestFloat64HistQuantileEdgeCases(t *testing.T) {
	if got := float64HistQuantile(nil, 0.5); got != 0 {
		t.Errorf("nil histogram quantile = %g, want 0", got)
	}
}

func ExampleRegistry_WriteOpenMetrics() {
	r := NewRegistry()
	r.Counter("mediator.plans_executed").Add(7)
	var buf bytes.Buffer
	_ = r.WriteOpenMetrics(&buf)
	fmt.Print(buf.String())
	// Output:
	// # TYPE mediator_plans_executed counter
	// mediator_plans_executed_total 7
	// # EOF
}
