package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Registry aggregates named counters, gauges, and histograms plus one
// tracer. Instruments are created on first lookup and shared thereafter,
// so independent subsystems accumulate into the same instrument when
// they agree on a name. All methods are concurrency-safe, and every
// method on a nil *Registry is a safe no-op (lookups return nil no-op
// instruments), which is how instrumentation is disabled.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracer   *Tracer
	// collectors run at the start of every Snapshot, outside the lock,
	// to refresh gauges that mirror external state (runtime metrics).
	collectors []func()
	// calib, when attached, rides along in every snapshot and rendering.
	calib *Calibration
}

// NewRegistry returns an empty registry with a DefaultMaxEvents tracer.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracer:   NewTracer(0),
	}
}

// Counter returns the named counter, creating it if needed. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Tracer returns the registry's tracer (nil, hence no-op, for a nil
// registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// AddCollector registers a function invoked at the start of every
// Snapshot (outside the registry lock, so it may set gauges). Use it
// for gauges that mirror external state, e.g. Go runtime metrics.
func (r *Registry) AddCollector(f func()) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, f)
	r.mu.Unlock()
}

// AttachCalibration binds an estimator-calibration accumulator to the
// registry: its series ride along in Snapshot, WriteText, and the
// OpenMetrics exposition. Attaching nil detaches.
func (r *Registry) AttachCalibration(c *Calibration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.calib = c
	r.mu.Unlock()
}

// Calibration returns the attached calibration accumulator (nil when
// none is attached or the registry is nil).
func (r *Registry) Calibration() *Calibration {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calib
}

// Reset zeroes every instrument and clears the tracer, keeping the
// instrument identities (pointers handed out remain valid).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
	r.mu.Unlock()
	r.tracer.Reset()
}

// Snapshot is a point-in-time copy of a registry, JSON-serializable.
type Snapshot struct {
	Counters    map[string]int64        `json:"counters,omitempty"`
	Gauges      map[string]float64      `json:"gauges,omitempty"`
	Histograms  map[string]HistSnapshot `json:"histograms,omitempty"`
	Spans       []SpanStat              `json:"spans,omitempty"`
	Events      []Event                 `json:"events,omitempty"`
	Calibration *CalibrationSnapshot    `json:"calibration,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields a
// zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	// Collectors refresh externally-mirrored gauges; they run outside
	// the lock because they call back into Gauge.Set.
	r.mu.Lock()
	cols := r.collectors
	calib := r.calib
	r.mu.Unlock()
	for _, f := range cols {
		f()
	}
	r.mu.Lock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	r.mu.Unlock()
	s.Spans = r.tracer.Stats()
	s.Events = r.tracer.Events()
	if calib != nil {
		cs := calib.Snapshot()
		s.Calibration = &cs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// String renders the snapshot as compact JSON. This satisfies the
// expvar.Var interface, so a registry can be exported live with
// expvar.Publish("qporder", reg).
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// WriteText renders a human-readable report: sorted counters and gauges,
// histogram summaries, and per-path span statistics.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	if len(s.Counters) > 0 {
		p("counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			p("  %-48s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		p("gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			p("  %-48s %g\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		p("histograms:\n")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			p("  %-48s count=%d mean=%s p50=%s p95=%s p99=%s p99.9=%s min=%s max=%s\n", name, h.Count,
				time.Duration(int64(h.Mean)), time.Duration(h.P50), time.Duration(h.P95),
				time.Duration(h.P99), time.Duration(h.P999), time.Duration(h.Min), time.Duration(h.Max))
		}
	}
	if len(s.Spans) > 0 {
		p("spans:\n")
		for _, st := range s.Spans {
			p("  %-48s count=%d total=%s min=%s max=%s\n",
				st.Name, st.Count, st.Total, st.Min, st.Max)
		}
	}
	if err == nil && s.Calibration != nil && !s.Calibration.Empty() {
		err = s.Calibration.WriteText(w)
	}
	return err
}

// sortedKeys returns the sorted key set of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
