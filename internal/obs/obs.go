// Package obs is the zero-dependency observability layer of the
// pipeline: atomic counters, gauges, and histograms; span tracing with
// nested spans and a bounded event log; and a Registry aggregating both
// with text, JSON, and expvar-compatible rendering.
//
// Every public method is nil-safe: a nil *Registry hands out nil
// instruments, and a nil *Counter, *Gauge, *Histogram, *Tracer, or *Span
// is a no-op. Hot paths therefore instrument unconditionally — when
// observability is disabled the calls reduce to a nil check and cost no
// allocations (see BenchmarkOrdererObs in the repository root).
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing (except for Reset) atomic
// counter. The zero value is ready to use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset sets the counter back to zero.
func (c *Counter) Reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Gauge is an atomic float64 instantaneous value. The zero value is
// ready to use; a nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta atomically.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Reset sets the gauge back to zero.
func (g *Gauge) Reset() {
	if g != nil {
		g.bits.Store(0)
	}
}

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds observations <= 0, bucket i (i >= 1) holds [2^(i-1), 2^i - 1].
const histBuckets = 64

// Histogram records non-negative int64 observations (typically
// nanoseconds) in power-of-two buckets with count/sum/min/max. The zero
// value is ready to use; a nil Histogram is a no-op. All methods are
// concurrency-safe.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0; raced first-store is benign via CAS loop
	max     atomic.Int64
	sampled atomic.Bool // set once the min sentinel has been initialized
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps an observation to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.sampled.CompareAndSwap(false, true) {
		h.min.Store(math.MaxInt64)
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the nanoseconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(start)))
	}
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(0)
	h.max.Store(0)
	h.sampled.Store(false)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistBucket is one non-empty bucket of a histogram snapshot: Count
// observations fell in [Lo, Hi].
type HistBucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram. Concurrent
// observations may make the fields mutually slightly inconsistent; each
// field individually is a valid atomic read. P50/P95/P99/P999 are
// quantile estimates interpolated within the power-of-two buckets (see
// Quantile), so their relative error is bounded by the bucket width.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Mean    float64      `json:"mean"`
	P50     int64        `json:"p50,omitempty"`
	P95     int64        `json:"p95,omitempty"`
	P99     int64        `json:"p99,omitempty"`
	P999    int64        `json:"p999,omitempty"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (q in [0, 1]) from the snapshot's
// buckets: the target rank's bucket is located on the cumulative counts
// and the value interpolated linearly within the bucket's [Lo, Hi]
// range, clamped to the observed Min and Max. A snapshot with no
// observations yields 0.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is 1-based: the ceil(q*count)-th smallest observation.
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		if seen+b.Count < rank {
			seen += b.Count
			continue
		}
		// Interpolate the rank's position within this bucket.
		frac := float64(rank-seen) / float64(b.Count)
		v := float64(b.Lo) + frac*float64(b.Hi-b.Lo)
		est := int64(v)
		if est < s.Min {
			est = s.Min
		}
		if est > s.Max {
			est = s.Max
		}
		return est
	}
	return s.Max
}

// Snapshot returns a copy of the histogram's current state. A nil
// Histogram yields a zero snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		if s.Min == math.MaxInt64 { // racing first Observe; count came first
			s.Min = 0
		}
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := HistBucket{Count: n}
		if i > 0 {
			b.Lo = int64(1) << (i - 1)
			if i < 63 {
				b.Hi = int64(1)<<i - 1
			} else {
				b.Hi = math.MaxInt64
			}
		}
		s.Buckets = append(s.Buckets, b)
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
	return s
}
