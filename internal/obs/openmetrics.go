package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders a registry snapshot in the OpenMetrics text
// exposition format (the format stock Prometheus scrapes), so the whole
// registry — counters, gauges, histograms with interpolated quantiles,
// and the calibration series — is consumable by standard tooling:
//
//   - counters become counter families with one _total sample;
//   - gauges become gauge families;
//   - histograms become summary families (quantile-labeled samples from
//     the interpolated power-of-two buckets, plus _sum and _count);
//   - calibration series become labeled families (source="..." or
//     plan="...") for q-error quantiles, signed bias, the drift EWMA,
//     and the tripped flag;
//   - the exposition ends with the mandatory "# EOF" terminator.
//
// Registry instrument names use dotted lowercase ("core.greedy.evals");
// OpenMetrics names must match [a-zA-Z_:][a-zA-Z0-9_:]*, so dots (and
// any other invalid byte) sanitize to underscores. scripts/metric_lint.sh
// keeps the repo's instrument names within [a-z0-9._], which makes the
// sanitization collision-free; should two distinct instrument names
// still sanitize to one family, every sample of that family carries an
// instrument="<original>" label so no sample is silently dropped.

// OpenMetricsContentType is the Content-Type of the exposition.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// openMetricsName sanitizes an instrument name into the OpenMetrics
// metric-name charset: every byte outside [a-zA-Z0-9_:] becomes '_',
// and a leading digit gets a '_' prefix.
func openMetricsName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// openMetricsLabelValue escapes a label value per the exposition
// grammar: backslash, double quote, and line feed are escaped.
func openMetricsLabelValue(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// omFloat renders a sample value (integers stay integral for
// readability; the grammar accepts both).
func omFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// omWriter accumulates exposition lines, failing sticky.
type omWriter struct {
	w   io.Writer
	err error
}

func (o *omWriter) printf(format string, args ...interface{}) {
	if o.err == nil {
		_, o.err = fmt.Fprintf(o.w, format, args...)
	}
}

// family groups the original instrument names mapping to one sanitized
// family name; len > 1 means a sanitization collision, disambiguated
// with an instrument label.
type family struct {
	name      string   // sanitized family name
	originals []string // original instrument names, sorted
}

// families groups a name set by sanitized family name, sorted.
func families(names []string) []family {
	byFam := make(map[string][]string)
	for _, n := range names {
		f := openMetricsName(n)
		byFam[f] = append(byFam[f], n)
	}
	out := make([]family, 0, len(byFam))
	for f, origs := range byFam {
		sort.Strings(origs)
		out = append(out, family{name: f, originals: origs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sampleLabels renders the label set for one sample: the collision
// label (when needed) plus extra "key=value" pairs, already escaped.
func sampleLabels(collide bool, orig string, extra ...[2]string) string {
	var parts []string
	if collide {
		parts = append(parts, `instrument="`+openMetricsLabelValue(orig)+`"`)
	}
	for _, kv := range extra {
		parts = append(parts, kv[0]+`="`+openMetricsLabelValue(kv[1])+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// summaryQuantiles are the quantile labels rendered for histogram and
// q-error summaries.
var summaryQuantiles = []struct {
	label string
	q     float64
}{{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}, {"0.999", 0.999}}

// WriteOpenMetrics renders the snapshot in the OpenMetrics text
// exposition format, terminated by "# EOF".
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	o := &omWriter{w: w}

	counterNames := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		counterNames = append(counterNames, n)
	}
	for _, fam := range families(counterNames) {
		o.printf("# TYPE %s counter\n", fam.name)
		collide := len(fam.originals) > 1
		for _, orig := range fam.originals {
			o.printf("%s_total%s %d\n", fam.name, sampleLabels(collide, orig), s.Counters[orig])
		}
	}

	gaugeNames := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		gaugeNames = append(gaugeNames, n)
	}
	for _, fam := range families(gaugeNames) {
		o.printf("# TYPE %s gauge\n", fam.name)
		collide := len(fam.originals) > 1
		for _, orig := range fam.originals {
			o.printf("%s%s %s\n", fam.name, sampleLabels(collide, orig), omFloat(s.Gauges[orig]))
		}
	}

	histNames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		histNames = append(histNames, n)
	}
	for _, fam := range families(histNames) {
		o.printf("# TYPE %s summary\n", fam.name)
		collide := len(fam.originals) > 1
		for _, orig := range fam.originals {
			h := s.Histograms[orig]
			for _, sq := range summaryQuantiles {
				o.printf("%s%s %d\n", fam.name,
					sampleLabels(collide, orig, [2]string{"quantile", sq.label}), h.Quantile(sq.q))
			}
			o.printf("%s_sum%s %d\n", fam.name, sampleLabels(collide, orig), h.Sum)
			o.printf("%s_count%s %d\n", fam.name, sampleLabels(collide, orig), h.Count)
		}
	}

	if s.Calibration != nil && !s.Calibration.Empty() {
		writeCalibFamilies(o, "calib_source", "source", s.Calibration.Sources)
		writeCalibFamilies(o, "calib_plan", "plan", s.Calibration.Plans)
	}

	o.printf("# EOF\n")
	return o.err
}

// writeCalibFamilies renders one calibration series family group: a
// q-error summary plus bias/EWMA/drifted/samples gauges, every sample
// labeled with the series name under the given label key.
func writeCalibFamilies(o *omWriter, prefix, labelKey string, series []CalibSeries) {
	if len(series) == 0 {
		return
	}
	label := func(cs CalibSeries, extra ...[2]string) string {
		kvs := append([][2]string{{labelKey, cs.Name}}, extra...)
		parts := make([]string, len(kvs))
		for i, kv := range kvs {
			parts[i] = kv[0] + `="` + openMetricsLabelValue(kv[1]) + `"`
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	o.printf("# TYPE %s_qerror summary\n", prefix)
	for _, cs := range series {
		qs := []struct {
			l string
			v float64
		}{{"0.5", cs.QErrP50}, {"0.95", cs.QErrP95}, {"0.99", cs.QErrMax}}
		for _, q := range qs {
			o.printf("%s_qerror%s %s\n", prefix, label(cs, [2]string{"quantile", q.l}), omFloat(q.v))
		}
		o.printf("%s_qerror_sum%s %s\n", prefix, label(cs), omFloat(cs.QErrSum))
		o.printf("%s_qerror_count%s %d\n", prefix, label(cs), cs.Samples)
	}
	o.printf("# TYPE %s_bias_log2 gauge\n", prefix)
	for _, cs := range series {
		o.printf("%s_bias_log2%s %s\n", prefix, label(cs), omFloat(cs.Bias))
	}
	o.printf("# TYPE %s_drift_ewma_log2 gauge\n", prefix)
	for _, cs := range series {
		o.printf("%s_drift_ewma_log2%s %s\n", prefix, label(cs), omFloat(cs.EWMA))
	}
	o.printf("# TYPE %s_drifted gauge\n", prefix)
	for _, cs := range series {
		v := 0
		if cs.Drifted {
			v = 1
		}
		o.printf("%s_drifted%s %d\n", prefix, label(cs), v)
	}
}

// WriteOpenMetrics renders the registry's snapshot in the OpenMetrics
// text exposition format. A nil registry writes only the terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.Snapshot().WriteOpenMetrics(w)
}
