package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// This file implements SLO burn-rate monitoring and the tail-sampling
// decision it drives. An SLOMonitor tracks every session's
// time-to-first-answer (TTFA) and full-completion latency against
// configured objectives over a rolling window of fixed-width time
// buckets, and derives burn rates: the fraction of the error budget
// (1 - target) the current violation rate consumes. Burn >= 1 means the
// window is eating budget faster than the objective allows.
//
// The monitor is also the tail-sampling policy for trace exports: a
// session's full trace is worth exporting when the session errored,
// violated an objective, or ran while the fleet was burning budget —
// everything else is droppable bulk. Like the rest of obs, a nil
// *SLOMonitor is the disabled state: every method is a no-op costing no
// allocations, and ShouldSample reports true (no monitor = export
// everything, the pre-SLO behavior).

// sloRingBuckets is the number of rolling-window buckets; the window is
// divided evenly across them and a bucket is reset lazily when its slot
// is reused for a later epoch.
const sloRingBuckets = 60

// SLOConfig configures an SLOMonitor. An objective of zero disables
// that objective's tracking (NewSLOMonitor returns nil when both are
// zero).
type SLOConfig struct {
	// TTFAObjective is the time-to-first-answer objective. A session
	// violates it when its first answer arrived later than this, or when
	// it produced no answers at all and still ran longer than this.
	TTFAObjective time.Duration
	// FullObjective is the full-session (all k plans / done event)
	// latency objective.
	FullObjective time.Duration
	// Target is the fraction of sessions that must meet the objectives
	// (default 0.99, i.e. a 1% error budget). Values outside (0, 1) are
	// clamped to the default.
	Target float64
	// Window is the rolling observation window (default 5m).
	Window time.Duration
	// Now overrides the clock, for tests. Default time.Now.
	Now func() time.Time
}

// sloBucket is one ring slot: counts for the bucket that began at
// epoch*bucketDur. A slot whose epoch is stale is logically zero.
type sloBucket struct {
	epoch    int64
	sessions int64
	errors   int64
	ttfaViol int64
	fullViol int64
}

// SLOMonitor tracks rolling-window latency objectives. All methods are
// concurrency-safe and nil-safe.
type SLOMonitor struct {
	cfg       SLOConfig
	bucketDur time.Duration

	mu      sync.Mutex
	buckets [sloRingBuckets]sloBucket

	// Bound by Bind: the tail-sampling outcome counters.
	exported *Counter
	dropped  *Counter
}

// NewSLOMonitor builds a monitor for the given objectives. When both
// objectives are zero there is nothing to monitor and it returns nil —
// the disabled monitor — so call sites can construct unconditionally
// from flag values.
func NewSLOMonitor(cfg SLOConfig) *SLOMonitor {
	if cfg.TTFAObjective <= 0 && cfg.FullObjective <= 0 {
		return nil
	}
	if !(cfg.Target > 0 && cfg.Target < 1) {
		cfg.Target = 0.99
	}
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	bd := cfg.Window / sloRingBuckets
	if bd < time.Millisecond {
		bd = time.Millisecond
	}
	return &SLOMonitor{cfg: cfg, bucketDur: bd}
}

// Bind registers the monitor's instruments on the registry: static
// objective gauges, a collector refreshing the burn-rate gauges at
// every snapshot, and the tail-sampling outcome counters
// (slo.sampled_exports / slo.sampled_dropped).
func (m *SLOMonitor) Bind(reg *Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.Gauge("slo.ttfa_objective_ms").Set(float64(m.cfg.TTFAObjective) / 1e6)
	reg.Gauge("slo.full_objective_ms").Set(float64(m.cfg.FullObjective) / 1e6)
	reg.Gauge("slo.target").Set(m.cfg.Target)
	m.exported = reg.Counter("slo.sampled_exports")
	m.dropped = reg.Counter("slo.sampled_dropped")
	ttfaBurn := reg.Gauge("slo.ttfa_burn_rate")
	fullBurn := reg.Gauge("slo.full_burn_rate")
	errBurn := reg.Gauge("slo.error_burn_rate")
	sessions := reg.Gauge("slo.window_sessions")
	reg.AddCollector(func() {
		s := m.Snapshot()
		ttfaBurn.Set(s.TTFABurn)
		fullBurn.Set(s.FullBurn)
		errBurn.Set(s.ErrorBurn)
		sessions.Set(float64(s.Sessions))
	})
}

// Observe records one finished session: its TTFA (zero when no answer
// was ever streamed), its full latency, and whether it errored.
func (m *SLOMonitor) Observe(ttfa, full time.Duration, errored bool) {
	if m == nil {
		return
	}
	ttfaViol := m.cfg.TTFAObjective > 0 &&
		(ttfa > m.cfg.TTFAObjective || (ttfa <= 0 && full > m.cfg.TTFAObjective))
	fullViol := m.cfg.FullObjective > 0 && full > m.cfg.FullObjective
	epoch := m.cfg.Now().UnixNano() / int64(m.bucketDur)
	m.mu.Lock()
	b := &m.buckets[epoch%sloRingBuckets]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	b.sessions++
	if errored {
		b.errors++
	}
	if ttfaViol {
		b.ttfaViol++
	}
	if fullViol {
		b.fullViol++
	}
	m.mu.Unlock()
}

// windowTotals sums the live buckets. Caller holds no lock.
func (m *SLOMonitor) windowTotals() (total sloBucket) {
	nowEpoch := m.cfg.Now().UnixNano() / int64(m.bucketDur)
	m.mu.Lock()
	for i := range m.buckets {
		b := &m.buckets[i]
		if b.epoch <= nowEpoch-sloRingBuckets || b.epoch > nowEpoch {
			continue // stale slot (or clock went backwards)
		}
		total.sessions += b.sessions
		total.errors += b.errors
		total.ttfaViol += b.ttfaViol
		total.fullViol += b.fullViol
	}
	m.mu.Unlock()
	return total
}

// burnRate is violations/sessions expressed as a multiple of the error
// budget 1-target: 1.0 means the window is burning budget exactly as
// fast as the objective tolerates.
func (m *SLOMonitor) burnRate(violations, sessions int64) float64 {
	if sessions == 0 || violations == 0 {
		return 0
	}
	budget := 1 - m.cfg.Target
	return (float64(violations) / float64(sessions)) / budget
}

// ShouldSample is the tail-sampling decision for one finished session:
// export its trace when the session errored, violated an objective, or
// any burn rate is at or above 1 (while budget burns, every trace is
// evidence). A nil monitor reports true — sampling disabled exports
// everything.
func (m *SLOMonitor) ShouldSample(ttfa, full time.Duration, errored bool) bool {
	if m == nil {
		return true
	}
	if errored {
		return true
	}
	if m.cfg.FullObjective > 0 && full > m.cfg.FullObjective {
		return true
	}
	if m.cfg.TTFAObjective > 0 &&
		(ttfa > m.cfg.TTFAObjective || (ttfa <= 0 && full > m.cfg.TTFAObjective)) {
		return true
	}
	t := m.windowTotals()
	return m.burnRate(t.ttfaViol, t.sessions) >= 1 ||
		m.burnRate(t.fullViol, t.sessions) >= 1 ||
		m.burnRate(t.errors, t.sessions) >= 1
}

// MarkExport records a tail-sampling outcome on the bound counters.
func (m *SLOMonitor) MarkExport(exported bool) {
	if m == nil {
		return
	}
	if exported {
		m.exported.Inc()
	} else {
		m.dropped.Inc()
	}
}

// SLOSnapshot is a point-in-time view of the monitor, the payload of
// GET /debug/slo.
type SLOSnapshot struct {
	TTFAObjectiveMS float64 `json:"ttfa_objective_ms,omitempty"`
	FullObjectiveMS float64 `json:"full_objective_ms,omitempty"`
	Target          float64 `json:"target"`
	WindowS         float64 `json:"window_s"`
	Sessions        int64   `json:"sessions"`
	Errors          int64   `json:"errors"`
	TTFAViolations  int64   `json:"ttfa_violations"`
	FullViolations  int64   `json:"full_violations"`
	TTFABurn        float64 `json:"ttfa_burn_rate"`
	FullBurn        float64 `json:"full_burn_rate"`
	ErrorBurn       float64 `json:"error_burn_rate"`
	Exported        int64   `json:"sampled_exports"`
	Dropped         int64   `json:"sampled_dropped"`
}

// Snapshot copies the monitor's rolling-window state (zero for nil).
func (m *SLOMonitor) Snapshot() SLOSnapshot {
	if m == nil {
		return SLOSnapshot{}
	}
	t := m.windowTotals()
	return SLOSnapshot{
		TTFAObjectiveMS: float64(m.cfg.TTFAObjective) / 1e6,
		FullObjectiveMS: float64(m.cfg.FullObjective) / 1e6,
		Target:          m.cfg.Target,
		WindowS:         m.cfg.Window.Seconds(),
		Sessions:        t.sessions,
		Errors:          t.errors,
		TTFAViolations:  t.ttfaViol,
		FullViolations:  t.fullViol,
		TTFABurn:        m.burnRate(t.ttfaViol, t.sessions),
		FullBurn:        m.burnRate(t.fullViol, t.sessions),
		ErrorBurn:       m.burnRate(t.errors, t.sessions),
		Exported:        m.exported.Value(),
		Dropped:         m.dropped.Value(),
	}
}

// WriteText renders the snapshot for humans. A nil monitor reports the
// disabled state.
func (m *SLOMonitor) WriteText(w io.Writer) error {
	if m == nil {
		_, err := fmt.Fprintln(w, "slo: disabled (no objectives configured)")
		return err
	}
	s := m.Snapshot()
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("slo objectives: ttfa=%s full=%s target=%.4g window=%s\n",
		time.Duration(s.TTFAObjectiveMS*1e6), time.Duration(s.FullObjectiveMS*1e6),
		s.Target, time.Duration(s.WindowS*1e9))
	p("window: sessions=%d errors=%d ttfa_violations=%d full_violations=%d\n",
		s.Sessions, s.Errors, s.TTFAViolations, s.FullViolations)
	p("burn rates: ttfa=%.3f full=%.3f error=%.3f\n", s.TTFABurn, s.FullBurn, s.ErrorBurn)
	p("tail sampling: exported=%d dropped=%d\n", s.Exported, s.Dropped)
	return err
}

// WriteJSON renders the snapshot as indented JSON.
func (m *SLOMonitor) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}
