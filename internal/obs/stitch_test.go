package obs

import (
	"strings"
	"testing"
	"time"
)

// sid builds a recognizable SpanID for tests.
func sid(b byte) SpanID { return SpanID{b, b, b, b, b, b, b, b} }

// fleetTrace builds a synthetic router + two-shard export: the router's
// snapshot with two slice spans, and one shard snapshot parented under
// each slice span.
func fleetTrace(id TraceID, base time.Time) []TraceSnapshot {
	router := TraceSnapshot{
		TraceID:  id,
		RootSpan: sid(1),
		Name:     "router /v1/query",
		Start:    base,
		DurNS:    int64(100 * time.Millisecond),
		Status:   "ok",
		Spans: []SpanRecord{
			{ID: sid(1), Name: "router /v1/query", DurNS: int64(100 * time.Millisecond)},
			{ID: sid(2), Parent: sid(1), Name: "router/slice0", StartNS: int64(time.Millisecond), DurNS: int64(90 * time.Millisecond)},
			{ID: sid(3), Parent: sid(1), Name: "router/slice1", StartNS: int64(time.Millisecond), DurNS: int64(40 * time.Millisecond)},
		},
	}
	shard0 := TraceSnapshot{
		TraceID:    id,
		RootSpan:   sid(0x10),
		ParentSpan: sid(2), // hangs off router/slice0
		Name:       "POST /v1/query",
		Start:      base.Add(2 * time.Millisecond),
		DurNS:      int64(80 * time.Millisecond),
		Status:     "ok",
		Spans: []SpanRecord{
			{ID: sid(0x10), Name: "POST /v1/query", DurNS: int64(80 * time.Millisecond)},
			{ID: sid(0x11), Parent: sid(0x10), Name: "order", StartNS: int64(time.Millisecond), DurNS: int64(70 * time.Millisecond)},
		},
	}
	shard1 := TraceSnapshot{
		TraceID:    id,
		RootSpan:   sid(0x20),
		ParentSpan: sid(3), // hangs off router/slice1
		Name:       "POST /v1/query",
		Start:      base.Add(2 * time.Millisecond),
		DurNS:      int64(30 * time.Millisecond),
		Status:     "ok",
		Spans: []SpanRecord{
			{ID: sid(0x20), Name: "POST /v1/query", DurNS: int64(30 * time.Millisecond)},
		},
	}
	// Shards listed before the router on purpose: root election must not
	// depend on input order.
	return []TraceSnapshot{shard0, shard1, router}
}

func TestStitchTraces(t *testing.T) {
	id := NewTraceID()
	base := time.Unix(1_700_000_000, 0)
	got := StitchTraces(fleetTrace(id, base))
	if len(got) != 1 {
		t.Fatalf("stitched %d traces, want 1", len(got))
	}
	st := got[0]
	if st.TraceID != id || st.Procs != 3 || st.Status != "ok" {
		t.Fatalf("stitched = %+v", st)
	}
	if st.Name != "router /v1/query" {
		t.Fatalf("root hop = %q, want the router", st.Name)
	}
	if len(st.Hops) != 3 || st.Hops[0] != "router /v1/query" {
		t.Fatalf("hops = %v", st.Hops)
	}
	if st.Orphans != 0 {
		t.Fatalf("orphans = %d, want 0", st.Orphans)
	}
	if st.Spans != 6 {
		t.Fatalf("merged spans = %d, want 6", st.Spans)
	}
	// Critical path crosses the process boundary: slice0 -> shard0's
	// request -> its order span.
	want := "router/slice0 > POST /v1/query > order"
	if st.CriticalPath != want {
		t.Fatalf("critical path = %q, want %q", st.CriticalPath, want)
	}
	if st.CriticalNS != int64(70*time.Millisecond) {
		t.Fatalf("critical leaf = %s", time.Duration(st.CriticalNS))
	}
	// Breakdown self-times: 100-90, 90-80, 80-70, 70.
	wantSelf := []int64{
		int64(10 * time.Millisecond), int64(10 * time.Millisecond),
		int64(10 * time.Millisecond), int64(70 * time.Millisecond),
	}
	if len(st.Breakdown) != len(wantSelf) {
		t.Fatalf("breakdown = %+v", st.Breakdown)
	}
	var sum int64
	for i, part := range st.Breakdown {
		if part.SelfNS != wantSelf[i] {
			t.Fatalf("breakdown[%d] = %+v, want self %s", i, part, time.Duration(wantSelf[i]))
		}
		sum += part.SelfNS
	}
	if sum != st.DurNS {
		t.Fatalf("breakdown self-times sum to %s, want the root duration %s",
			time.Duration(sum), time.Duration(st.DurNS))
	}
}

func TestStitchSkipsLoneSnapshots(t *testing.T) {
	a := TraceSnapshot{TraceID: NewTraceID(), RootSpan: sid(1), Name: "solo", DurNS: 5}
	if got := StitchTraces([]TraceSnapshot{a}); len(got) != 0 {
		t.Fatalf("a lone snapshot stitched: %+v", got)
	}
}

func TestStitchOrphan(t *testing.T) {
	id := NewTraceID()
	base := time.Unix(1_700_000_000, 0)
	ts := fleetTrace(id, base)
	// Break shard1's parent link: its remote parent is now unknown.
	ts[1].ParentSpan = sid(0x7f)
	got := StitchTraces(ts)
	if len(got) != 1 {
		t.Fatalf("stitched %d, want 1", len(got))
	}
	if got[0].Orphans != 1 {
		t.Fatalf("orphans = %d, want 1", got[0].Orphans)
	}
	// The intact hop still participates in the critical path.
	if !strings.Contains(got[0].CriticalPath, "order") {
		t.Fatalf("critical path lost the intact shard: %q", got[0].CriticalPath)
	}
}

func TestStitchErrorStatusPropagates(t *testing.T) {
	id := NewTraceID()
	ts := fleetTrace(id, time.Unix(1_700_000_000, 0))
	ts[0].Status = "error"
	got := StitchTraces(ts)
	if len(got) != 1 || got[0].Status != "error" {
		t.Fatalf("errored hop did not mark the stitched trace: %+v", got)
	}
}

func TestStitchOrderedByDuration(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	slow := fleetTrace(NewTraceID(), base)
	fast := fleetTrace(NewTraceID(), base)
	for i := range fast {
		fast[i].DurNS /= 10
		for j := range fast[i].Spans {
			fast[i].Spans[j].DurNS /= 10
		}
	}
	got := StitchTraces(append(fast, slow...))
	if len(got) != 2 {
		t.Fatalf("stitched %d, want 2", len(got))
	}
	if got[0].DurNS < got[1].DurNS {
		t.Fatalf("not ordered by duration: %d then %d", got[0].DurNS, got[1].DurNS)
	}
}

// End-to-end through the live Trace API: two processes' worth of traces
// built with StartRequestTrace must stitch with correct parent links.
func TestStitchLiveTraces(t *testing.T) {
	router := NewTrace("router /v1/query")
	slice := router.StartSpan("router/slice0")
	shard := StartRequestTrace("POST /v1/query", slice.Traceparent())
	sp := shard.StartSpan("order")
	time.Sleep(time.Millisecond)
	sp.End()
	shardSnap := shard.Finish()
	slice.End()
	routerSnap := router.Finish()

	if shardSnap.TraceID != routerSnap.TraceID {
		t.Fatal("shard did not join the router's trace")
	}
	if shardSnap.ParentSpan != slice.ID() {
		t.Fatal("shard's remote parent is not the slice span")
	}
	got := StitchTraces([]TraceSnapshot{shardSnap, routerSnap})
	if len(got) != 1 {
		t.Fatalf("stitched %d, want 1", len(got))
	}
	st := got[0]
	if st.Name != "router /v1/query" || st.Procs != 2 || st.Orphans != 0 {
		t.Fatalf("stitched = %+v", st)
	}
	want := "router/slice0 > POST /v1/query > order"
	if st.CriticalPath != want {
		t.Fatalf("critical path = %q, want %q", st.CriticalPath, want)
	}
}

// Span IDs must not collide across the processes of one trace even
// though they share the trace ID (the per-trace salt, not the trace ID,
// provides the entropy).
func TestCrossProcessSpanIDsDistinct(t *testing.T) {
	parent := NewTrace("router")
	a := StartRequestTrace("shard-a", parent.Traceparent())
	b := StartRequestTrace("shard-b", parent.Traceparent())
	seen := map[SpanID]bool{}
	for _, tr := range []*Trace{parent, a, b} {
		for i := 0; i < 16; i++ {
			s := tr.StartSpan("s")
			if seen[s.ID()] {
				t.Fatalf("span ID collision across processes: %v", s.ID())
			}
			seen[s.ID()] = true
			s.End()
		}
	}
}
