package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

const wellFormedTraceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

// TestParseTraceparentTable covers the W3C header grammar: the well-formed
// shapes parse, and every malformed shape is rejected (ok=false) without
// error — callers start a fresh trace instead.
func TestParseTraceparentTable(t *testing.T) {
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"valid version 00", wellFormedTraceparent, true},
		{"valid other version", "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", true},
		{"valid future version with suffix", "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", true},
		{"flags not sampled", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00", true},
		{"empty", "", false},
		{"garbage", "not-a-traceparent", false},
		{"bad version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false},
		{"uppercase version", "0A-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false},
		{"version 00 with suffix", wellFormedTraceparent + "-extra", false},
		{"suffix without dash", wellFormedTraceparent + "extra", false},
		{"short trace id", "00-0af7651916cd43dd8448eb211c8031-b7ad6b7169203331-01", false},
		{"short span id", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033-01", false},
		{"non-hex trace id", "00-0af7651916cd43dd8448eb211c80319z-b7ad6b7169203331-01", false},
		{"uppercase trace id", "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", false},
		{"non-hex flags", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0g", false},
		{"all-zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01", false},
		{"all-zero span id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", false},
		{"missing dashes", "000af7651916cd43dd8448eb211c80319cb7ad6b716920333101xxx", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tid, parent, ok := ParseTraceparent(tc.in)
			if ok != tc.ok {
				t.Fatalf("ParseTraceparent(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			}
			if !ok {
				if !tid.IsZero() || !parent.IsZero() {
					t.Fatalf("malformed header returned non-zero IDs: %s %s", tid, parent)
				}
				return
			}
			if got := tid.String(); got != "0af7651916cd43dd8448eb211c80319c" {
				t.Fatalf("trace ID = %s", got)
			}
			if got := parent.String(); got != "b7ad6b7169203331" {
				t.Fatalf("parent span ID = %s", got)
			}
		})
	}
}

// TestStartRequestTraceMalformed is the satellite guarantee: any malformed
// traceparent starts a fresh trace — the request never fails and never
// inherits a bogus ID.
func TestStartRequestTraceMalformed(t *testing.T) {
	malformed := []string{
		"",
		"00",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"00-XYZ7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		wellFormedTraceparent + "-extra",
	}
	for _, h := range malformed {
		tr := StartRequestTrace("req", h)
		if tr == nil {
			t.Fatalf("StartRequestTrace(%q) = nil", h)
		}
		if tr.TraceID().IsZero() {
			t.Fatalf("StartRequestTrace(%q) has zero trace ID", h)
		}
		if tr.TraceID().String() == "0af7651916cd43dd8448eb211c80319c" {
			t.Fatalf("StartRequestTrace(%q) joined a malformed header's trace", h)
		}
		if !tr.Finish().ParentSpan.IsZero() {
			t.Fatalf("StartRequestTrace(%q) recorded a remote parent", h)
		}
	}
}

// TestStartRequestTraceJoins checks the well-formed path: same trace ID,
// caller's span retained as remote parent, and the response traceparent
// carries the joined trace ID with a fresh local root span.
func TestStartRequestTraceJoins(t *testing.T) {
	tr := StartRequestTrace("req", wellFormedTraceparent)
	if got := tr.TraceID().String(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace ID = %s, want the header's", got)
	}
	tid, root, ok := ParseTraceparent(tr.Traceparent())
	if !ok {
		t.Fatalf("Traceparent() %q does not parse", tr.Traceparent())
	}
	if tid != tr.TraceID() {
		t.Fatalf("Traceparent carries trace ID %s, want %s", tid, tr.TraceID())
	}
	if root.String() == "b7ad6b7169203331" {
		t.Fatal("root span reused the caller's span ID")
	}
	snap := tr.Finish()
	if got := snap.ParentSpan.String(); got != "b7ad6b7169203331" {
		t.Fatalf("ParentSpan = %s, want the caller's span", got)
	}
	if snap.RootSpan != root {
		t.Fatalf("RootSpan = %s, want %s", snap.RootSpan, root)
	}
}

func TestFormatTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	h := FormatTraceparent(tid, sid)
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("round trip of %q failed: %v %s %s", h, ok, gotT, gotS)
	}
}

// TestTraceSpansEventsPlans exercises the recording surface and checks
// the snapshot: synthetic root span, parenting, events, provenance,
// attrs, and error status.
func TestTraceSpansEventsPlans(t *testing.T) {
	tr := NewTrace("req")
	tr.SetAttr("query", "Q(x)")
	sp := tr.StartSpan("order")
	child := sp.StartSpan("refine")
	child.Annotate("deepened")
	if child.End() < 0 {
		t.Fatal("negative span duration")
	}
	if sp.End() <= 0 {
		t.Fatal("span duration not positive")
	}
	if d := sp.End(); d != 0 {
		t.Fatalf("second End = %v, want 0", d)
	}
	tr.Event("adaptive/reorder", "drift")
	tr.EmitPlan(PlanProvenance{Index: 0, Algo: "greedy", Plan: "1|2", Utility: 0.5, Evals: 3})
	if n := tr.PlanCount(); n != 1 {
		t.Fatalf("PlanCount = %d, want 1", n)
	}
	tr.SetError("boom")

	snap := tr.Finish()
	if snap.Status != "error" || snap.Error != "boom" {
		t.Fatalf("status = %s error = %q", snap.Status, snap.Error)
	}
	if snap.Attrs["query"] != "Q(x)" {
		t.Fatalf("attrs = %v", snap.Attrs)
	}
	if len(snap.Spans) != 3 { // synthetic root + order + refine
		t.Fatalf("spans = %d, want 3", len(snap.Spans))
	}
	if snap.Spans[0].ID != snap.RootSpan || snap.Spans[0].Name != "req" {
		t.Fatalf("first span is not the synthetic root: %+v", snap.Spans[0])
	}
	byName := map[string]SpanRecord{}
	for _, s := range snap.Spans {
		byName[s.Name] = s
	}
	if byName["order"].Parent != snap.RootSpan {
		t.Fatal("order span not parented to root")
	}
	if byName["refine"].Parent != byName["order"].ID {
		t.Fatal("refine span not parented to order")
	}
	if len(snap.Events) != 2 { // Annotate + Event
		t.Fatalf("events = %d, want 2", len(snap.Events))
	}
	if len(snap.Plans) != 1 || snap.Plans[0].Plan != "1|2" {
		t.Fatalf("plans = %+v", snap.Plans)
	}
}

// TestTraceBounds: overflowing any of the bounded buffers increments
// Dropped instead of growing.
func TestTraceBounds(t *testing.T) {
	tr := NewTrace("req")
	const extra = 5
	for i := 0; i < DefaultMaxTraceSpans+extra; i++ {
		tr.StartSpan("s").End()
	}
	for i := 0; i < DefaultMaxTraceEvents+extra; i++ {
		tr.Event("e", "")
	}
	for i := 0; i < DefaultMaxTracePlans+extra; i++ {
		tr.EmitPlan(PlanProvenance{Index: i})
	}
	snap := tr.Finish()
	if got := len(snap.Spans); got != DefaultMaxTraceSpans+1 { // +1 synthetic root
		t.Fatalf("spans = %d, want %d", got, DefaultMaxTraceSpans+1)
	}
	if got := len(snap.Events); got != DefaultMaxTraceEvents {
		t.Fatalf("events = %d, want %d", got, DefaultMaxTraceEvents)
	}
	if got := len(snap.Plans); got != DefaultMaxTracePlans {
		t.Fatalf("plans = %d, want %d", got, DefaultMaxTracePlans)
	}
	if snap.Dropped != 3*extra {
		t.Fatalf("dropped = %d, want %d", snap.Dropped, 3*extra)
	}
}

// TestTraceFinishSeals: Finish fixes the duration; later Snapshot and
// Finish calls keep the first measurement.
func TestTraceFinishSeals(t *testing.T) {
	tr := NewTrace("req")
	first := tr.Finish()
	time.Sleep(5 * time.Millisecond)
	if again := tr.Finish(); again.DurNS != first.DurNS {
		t.Fatalf("second Finish changed duration: %d -> %d", first.DurNS, again.DurNS)
	}
	if snap := tr.Snapshot(); snap.DurNS != first.DurNS {
		t.Fatalf("Snapshot after Finish changed duration: %d -> %d", first.DurNS, snap.DurNS)
	}
}

// TestTraceSnapshotJSONRoundTrip: a snapshot survives the NDJSON export
// format (what -trace-out writes and qptrace reads back).
func TestTraceSnapshotJSONRoundTrip(t *testing.T) {
	tr := StartRequestTrace("req", wellFormedTraceparent)
	tr.SetAttr("algorithm", "streamer")
	tr.StartSpan("order").End()
	tr.EmitPlan(PlanProvenance{Index: 0, Algo: "streamer", Plan: "2|1", Utility: 1.5, DomWon: 2, DomLost: 1, Evals: 7})
	snap := tr.Finish()

	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"trace_id":"0af7651916cd43dd8448eb211c80319c"`) {
		t.Fatalf("trace ID not rendered as hex: %s", b)
	}
	var back TraceSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.TraceID != snap.TraceID || back.RootSpan != snap.RootSpan || back.ParentSpan != snap.ParentSpan {
		t.Fatalf("IDs did not round-trip: %+v vs %+v", back, snap)
	}
	if len(back.Spans) != len(snap.Spans) || back.Attrs["algorithm"] != "streamer" {
		t.Fatalf("spans/attrs did not round-trip: %+v", back)
	}
	if len(back.Plans) != 1 || back.Plans[0] != snap.Plans[0] {
		t.Fatalf("provenance did not round-trip: %+v", back.Plans)
	}
}

func TestWithTraceContext(t *testing.T) {
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom(empty ctx) = %v, want nil", got)
	}
	tr := NewTrace("req")
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatalf("TraceFrom = %v, want the stored trace", got)
	}
	base := context.Background()
	if got := WithTrace(base, nil); got != base {
		t.Fatal("WithTrace(ctx, nil) should return ctx unchanged")
	}
}

// TestTraceNilSafety: the disabled state is a nil *Trace; every method
// must be a safe no-op, including on the nil spans it hands out.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if got := tr.TraceID(); !got.IsZero() {
		t.Fatalf("nil TraceID = %s", got)
	}
	if got := tr.Traceparent(); got != "" {
		t.Fatalf("nil Traceparent = %q", got)
	}
	tr.SetAttr("k", "v")
	tr.SetError("boom")
	tr.Event("e", "m")
	tr.EmitPlan(PlanProvenance{})
	if n := tr.PlanCount(); n != 0 {
		t.Fatalf("nil PlanCount = %d", n)
	}
	if p := tr.Plans(); p != nil {
		t.Fatalf("nil Plans = %v", p)
	}
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil trace must yield a nil span")
	}
	sp.Annotate("m")
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span End = %v", d)
	}
	if c := sp.StartSpan("child"); c != nil {
		t.Fatal("nil span must yield a nil child")
	}
	if snap := tr.Finish(); snap.DurNS != 0 || len(snap.Spans) != 0 {
		t.Fatalf("nil Finish = %+v", snap)
	}
	if snap := tr.Snapshot(); snap.Status != "" {
		t.Fatalf("nil Snapshot = %+v", snap)
	}
}

// TestDisabledTraceAllocs proves the nil-trace hot path allocates
// nothing — the zero-overhead guarantee the orderers rely on.
func TestDisabledTraceAllocs(t *testing.T) {
	var tr *Trace
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("x")
		sp.Annotate("m")
		sp.End()
		tr.Event("e", "m")
		tr.EmitPlan(PlanProvenance{})
		_ = tr.PlanCount()
		_ = TraceFrom(ctx)
		_ = WithTrace(ctx, tr)
	})
	if allocs != 0 {
		t.Fatalf("disabled trace path allocates %.1f per op, want 0", allocs)
	}
}

// TestTraceConcurrency hammers one trace from many goroutines; run with
// -race this doubles as the data-race gate for the mediator's pipelined
// producer recording into the request trace.
func TestTraceConcurrency(t *testing.T) {
	tr := StartRequestTrace("req", wellFormedTraceparent)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ { // 8*30 = 240 spans, under the 256 cap
				sp := tr.StartSpan("work")
				tr.Event("e", "m")
				tr.EmitPlan(PlanProvenance{Index: i})
				tr.SetAttr(fmt.Sprintf("g%d", g), "v")
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	snap := tr.Finish()
	if got := len(snap.Spans); got != 8*30+1 {
		t.Fatalf("spans = %d, want %d", got, 8*30+1)
	}
	seen := map[SpanID]bool{}
	for _, s := range snap.Spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %s", s.ID)
		}
		seen[s.ID] = true
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
}
