package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// FlightRecorder is an always-on bounded buffer of finished request
// traces: the last N requests, the slowest N seen so far, and the last N
// that ended in error. It is cheap enough to run unconditionally — each
// Record is a mutex-guarded ring insert — so the recent past of a
// production daemon is always inspectable at /debug/requests without
// having turned anything on beforehand. All methods are concurrency-safe
// and nil-safe.
type FlightRecorder struct {
	mu      sync.Mutex
	recent  []TraceSnapshot // ring, next points at the oldest slot
	next    int
	full    bool
	slowest []TraceSnapshot // sorted by DurNS descending, capped
	slowCap int
	errored []TraceSnapshot // ring
	errNext int
	errFull bool
	total   int64
}

// NewFlightRecorder sizes the three retention classes; any n <= 0 takes
// the shown default.
func NewFlightRecorder(recent, slowest, errored int) *FlightRecorder {
	if recent <= 0 {
		recent = 64
	}
	if slowest <= 0 {
		slowest = 16
	}
	if errored <= 0 {
		errored = 16
	}
	return &FlightRecorder{
		recent:  make([]TraceSnapshot, recent),
		slowCap: slowest,
		errored: make([]TraceSnapshot, errored),
	}
}

// Record retains one finished trace.
func (f *FlightRecorder) Record(s TraceSnapshot) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.total++
	f.recent[f.next] = s
	f.next++
	if f.next == len(f.recent) {
		f.next, f.full = 0, true
	}
	// Slowest: insert sorted, truncate to cap. The list is tiny, so the
	// linear insert beats a heap in both code and constant factor.
	i := sort.Search(len(f.slowest), func(i int) bool { return f.slowest[i].DurNS < s.DurNS })
	f.slowest = append(f.slowest, TraceSnapshot{})
	copy(f.slowest[i+1:], f.slowest[i:])
	f.slowest[i] = s
	if len(f.slowest) > f.slowCap {
		f.slowest = f.slowest[:f.slowCap]
	}
	if s.Status == "error" {
		f.errored[f.errNext] = s
		f.errNext++
		if f.errNext == len(f.errored) {
			f.errNext, f.errFull = 0, true
		}
	}
}

// FlightSnapshot is the recorder's current retained state. Recent and
// Errored are newest-first.
type FlightSnapshot struct {
	Total   int64           `json:"total"`
	Recent  []TraceSnapshot `json:"recent,omitempty"`
	Slowest []TraceSnapshot `json:"slowest,omitempty"`
	Errored []TraceSnapshot `json:"errored,omitempty"`
}

// drainRing copies a ring newest-first. next is the slot the next insert
// would take, i.e. one past the newest entry.
func drainRing(ring []TraceSnapshot, next int, full bool) []TraceSnapshot {
	n := next
	if full {
		n = len(ring)
	}
	out := make([]TraceSnapshot, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ring[(next-1-i+len(ring))%len(ring)])
	}
	return out
}

// Snapshot copies the retained traces. A nil recorder yields a zero
// snapshot.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	if f == nil {
		return FlightSnapshot{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return FlightSnapshot{
		Total:   f.total,
		Recent:  drainRing(f.recent, f.next, f.full),
		Slowest: append([]TraceSnapshot(nil), f.slowest...),
		Errored: drainRing(f.errored, f.errNext, f.errFull),
	}
}

// Find returns the retained trace with the given ID (recent, then
// slowest, then errored), or ok=false.
func (f *FlightRecorder) Find(id TraceID) (TraceSnapshot, bool) {
	s := f.Snapshot()
	for _, group := range [][]TraceSnapshot{s.Recent, s.Slowest, s.Errored} {
		for _, t := range group {
			if t.TraceID == id {
				return t, true
			}
		}
	}
	return TraceSnapshot{}, false
}

// WriteText renders the snapshot as a human-readable report: one line
// per retained request, grouped by retention class.
func (s FlightSnapshot) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("requests recorded: %d\n", s.Total)
	group := func(title string, ts []TraceSnapshot) {
		if len(ts) == 0 {
			return
		}
		p("%s:\n", title)
		for _, t := range ts {
			line := fmt.Sprintf("  %s  %-5s %10s  spans=%-3d plans=%-3d %s",
				t.TraceID, t.Status, time.Duration(t.DurNS), len(t.Spans), len(t.Plans), t.Name)
			if q, ok := t.Attrs["query"]; ok {
				line += "  " + q
			}
			if t.Error != "" {
				line += "  err=" + t.Error
			}
			p("%s\n", line)
		}
	}
	group("recent (newest first)", s.Recent)
	group("slowest", s.Slowest)
	group("errored (newest first)", s.Errored)
	return err
}
