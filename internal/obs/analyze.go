package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file analyzes exported traces offline: qpserved -trace-out and
// qporder -trace write one TraceSnapshot per NDJSON line; ReadTraces
// ingests such a stream and AnalyzeTraces aggregates it into the report
// cmd/qptrace prints — slowest requests, the hottest span paths, and
// per-trace critical paths.

// ReadTraces decodes an NDJSON stream of TraceSnapshots. Blank lines are
// skipped; any malformed line is an error (the export is machine-written,
// so corruption should fail loudly, not be papered over).
func ReadTraces(r io.Reader) ([]TraceSnapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []TraceSnapshot
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var t TraceSnapshot
		if err := json.Unmarshal(b, &t); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if t.TraceID.IsZero() {
			return nil, fmt.Errorf("obs: trace line %d: zero trace ID", line)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SpanAgg aggregates all spans sharing one name across the analyzed
// traces.
type SpanAgg struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	TotalNS int64         `json:"total_ns"`
	MaxNS   int64         `json:"max_ns"`
	Total   time.Duration `json:"-"`
}

// RequestSummary is one analyzed request.
type RequestSummary struct {
	TraceID TraceID `json:"trace_id"`
	Name    string  `json:"name"`
	Status  string  `json:"status"`
	DurNS   int64   `json:"dur_ns"`
	Spans   int     `json:"spans"`
	Plans   int     `json:"plans"`
	// CriticalPath is the root-to-leaf span chain maximizing summed
	// duration, rendered as "a > b > c".
	CriticalPath string `json:"critical_path"`
	// CriticalNS is the leaf-most span duration of that chain — the time
	// the request cannot go below without speeding that span up.
	CriticalNS int64 `json:"critical_ns"`
}

// TraceReport is the aggregate qptrace prints.
type TraceReport struct {
	Traces   int              `json:"traces"`
	Errors   int              `json:"errors"`
	TotalNS  int64            `json:"total_ns"`
	Spans    []SpanAgg        `json:"spans,omitempty"`   // by total time, descending
	Slowest  []RequestSummary `json:"slowest,omitempty"` // by duration, descending
	Plans    int              `json:"plans"`
	DomWon   int64            `json:"dom_won"`
	DomLost  int64            `json:"dom_lost"`
	Refines  int64            `json:"refinements"`
	Splits   int64            `json:"splits"`
	Evals    int64            `json:"evals"`
	Statuses map[string]int   `json:"statuses,omitempty"`
	// Stitched holds the multi-process traces reassembled across hops
	// (router + shards) by trace ID, by duration descending. See
	// StitchTraces.
	Stitched []StitchedTrace `json:"stitched,omitempty"`
	// CalibrationRecords counts the calibration lines ingested alongside
	// the traces; Calibration holds the last (cumulative) snapshot.
	CalibrationRecords int                  `json:"calibration_records,omitempty"`
	Calibration        *CalibrationSnapshot `json:"calibration,omitempty"`
}

// criticalPath walks the span tree of one trace from its root and
// returns the chain of span names maximizing summed duration, plus the
// duration of the chain's leaf.
func criticalPath(t TraceSnapshot) (string, int64) {
	children := make(map[SpanID][]SpanRecord, len(t.Spans))
	for _, s := range t.Spans {
		if s.ID == t.RootSpan {
			continue
		}
		children[s.Parent] = append(children[s.Parent], s)
	}
	var names []string
	cur, curDur := t.RootSpan, t.DurNS
	for {
		kids := children[cur]
		if len(kids) == 0 {
			return strings.Join(names, " > "), curDur
		}
		best := kids[0]
		for _, k := range kids[1:] {
			if k.DurNS > best.DurNS || (k.DurNS == best.DurNS && k.StartNS < best.StartNS) {
				best = k
			}
		}
		names = append(names, best.Name)
		cur, curDur = best.ID, best.DurNS
	}
}

// AnalyzeTraces aggregates the traces into a report keeping the top
// `top` spans and slowest requests (top <= 0 keeps 10).
func AnalyzeTraces(ts []TraceSnapshot, top int) TraceReport {
	if top <= 0 {
		top = 10
	}
	rep := TraceReport{Traces: len(ts), Statuses: make(map[string]int)}
	aggs := make(map[string]*SpanAgg)
	sums := make([]RequestSummary, 0, len(ts))
	for _, t := range ts {
		rep.TotalNS += t.DurNS
		rep.Statuses[t.Status]++
		if t.Status == "error" {
			rep.Errors++
		}
		for _, s := range t.Spans {
			if s.ID == t.RootSpan {
				continue // the synthetic root duplicates the trace duration
			}
			a := aggs[s.Name]
			if a == nil {
				a = &SpanAgg{Name: s.Name}
				aggs[s.Name] = a
			}
			a.Count++
			a.TotalNS += s.DurNS
			if s.DurNS > a.MaxNS {
				a.MaxNS = s.DurNS
			}
		}
		for _, p := range t.Plans {
			rep.Plans++
			rep.DomWon += p.DomWon
			rep.DomLost += p.DomLost
			rep.Refines += p.Refinements
			rep.Splits += p.Splits
			rep.Evals += p.Evals
		}
		path, leafNS := criticalPath(t)
		sums = append(sums, RequestSummary{
			TraceID: t.TraceID, Name: t.Name, Status: t.Status, DurNS: t.DurNS,
			Spans: len(t.Spans), Plans: len(t.Plans),
			CriticalPath: path, CriticalNS: leafNS,
		})
	}
	for _, a := range aggs {
		rep.Spans = append(rep.Spans, *a)
	}
	sort.Slice(rep.Spans, func(i, j int) bool {
		if rep.Spans[i].TotalNS != rep.Spans[j].TotalNS {
			return rep.Spans[i].TotalNS > rep.Spans[j].TotalNS
		}
		return rep.Spans[i].Name < rep.Spans[j].Name
	})
	if len(rep.Spans) > top {
		rep.Spans = rep.Spans[:top]
	}
	sort.Slice(sums, func(i, j int) bool {
		if sums[i].DurNS != sums[j].DurNS {
			return sums[i].DurNS > sums[j].DurNS
		}
		return sums[i].TraceID.String() < sums[j].TraceID.String()
	})
	if len(sums) > top {
		sums = sums[:top]
	}
	rep.Slowest = sums
	rep.Stitched = StitchTraces(ts)
	if len(rep.Stitched) > top {
		rep.Stitched = rep.Stitched[:top]
	}
	return rep
}

// WriteText renders the report for terminals.
func (r TraceReport) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("traces: %d  errors: %d  total: %s\n", r.Traces, r.Errors, time.Duration(r.TotalNS))
	if r.Plans > 0 {
		p("plans emitted: %d  evals: %d  dominance won/lost: %d/%d  refinements: %d  splits: %d\n",
			r.Plans, r.Evals, r.DomWon, r.DomLost, r.Refines, r.Splits)
	}
	if len(r.Spans) > 0 {
		p("top spans by total time:\n")
		for _, a := range r.Spans {
			p("  %-32s count=%-6d total=%-12s max=%s\n",
				a.Name, a.Count, time.Duration(a.TotalNS), time.Duration(a.MaxNS))
		}
	}
	if len(r.Slowest) > 0 {
		p("slowest requests:\n")
		for _, s := range r.Slowest {
			p("  %s  %-5s %10s  spans=%-3d plans=%-3d %s\n",
				s.TraceID, s.Status, time.Duration(s.DurNS), s.Spans, s.Plans, s.Name)
			if s.CriticalPath != "" {
				p("    critical path: %s (%s)\n", s.CriticalPath, time.Duration(s.CriticalNS))
			}
		}
	}
	if len(r.Stitched) > 0 {
		p("stitched fleet traces (joined across processes by trace ID):\n")
		for _, s := range r.Stitched {
			p("  %s  %-5s %10s  procs=%d spans=%-3d %s", s.TraceID, s.Status,
				time.Duration(s.DurNS), s.Procs, s.Spans, strings.Join(s.Hops, " + "))
			if s.Orphans > 0 {
				p("  orphans=%d", s.Orphans)
			}
			p("\n")
			if s.CriticalPath != "" {
				p("    critical path: %s (%s)\n", s.CriticalPath, time.Duration(s.CriticalNS))
			}
			if len(s.Breakdown) > 0 {
				p("    breakdown:")
				for _, part := range s.Breakdown {
					p(" %s=%s", part.Name, time.Duration(part.SelfNS))
				}
				p("\n")
			}
		}
	}
	if r.Calibration != nil {
		p("calibration records ingested: %d (showing the last, cumulative)\n", r.CalibrationRecords)
		if err == nil {
			err = r.Calibration.WriteText(w)
		}
	}
	return err
}
