package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("after Reset, Value = %d, want 0", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %g, want 4", got)
	}
	g.Reset()
	if got := g.Value(); got != 0 {
		t.Fatalf("after Reset, Value = %g, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 0} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 106 {
		t.Fatalf("Count=%d Sum=%d, want 5/106", s.Count, s.Sum)
	}
	if s.Min != 0 || s.Max != 100 {
		t.Fatalf("Min=%d Max=%d, want 0/100", s.Min, s.Max)
	}
	if want := 106.0 / 5; s.Mean != want {
		t.Fatalf("Mean=%g, want %g", s.Mean, want)
	}
	var total int64
	for _, b := range s.Buckets {
		if b.Lo > b.Hi {
			t.Fatalf("bucket %+v has Lo > Hi", b)
		}
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
	h.ObserveDuration(3 * time.Millisecond)
	h.ObserveSince(time.Now().Add(-time.Millisecond))
	if got := h.Snapshot().Count; got != 7 {
		t.Fatalf("Count after duration observations = %d, want 7", got)
	}
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || len(s.Buckets) != 0 {
		t.Fatalf("after Reset, snapshot = %+v, want zero", s)
	}
}

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{math.MaxInt64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSpans(t *testing.T) {
	tr := NewTracer(4)
	root := StartSpan(tr, "order")
	child := root.StartSpan("soundness")
	child.Annotate("checking plan")
	if d := child.End(); d < 0 {
		t.Fatalf("child duration negative: %v", d)
	}
	if d := child.End(); d != 0 {
		t.Fatalf("second End = %v, want 0", d)
	}
	root.End()
	tr.Event("note", "free-standing")

	stats := tr.Stats()
	if len(stats) != 2 {
		t.Fatalf("Stats has %d paths, want 2: %+v", len(stats), stats)
	}
	if stats[0].Name != "order" || stats[1].Name != "order/soundness" {
		t.Fatalf("span paths = %q, %q", stats[0].Name, stats[1].Name)
	}
	if stats[0].Count != 1 || stats[0].Min != stats[0].Max || stats[0].Total != stats[0].Min {
		t.Fatalf("aggregate wrong for single span: %+v", stats[0])
	}

	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("Events has %d entries, want 4", len(events))
	}
	if events[len(events)-1].Msg != "free-standing" {
		t.Fatalf("last event = %+v", events[len(events)-1])
	}

	tr.Reset()
	if len(tr.Stats()) != 0 || len(tr.Events()) != 0 {
		t.Fatal("Reset did not clear tracer")
	}
}

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Event("e", string(rune('a'+i)))
	}
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(events))
	}
	if events[0].Msg != "c" || events[2].Msg != "e" {
		t.Fatalf("ring contents wrong: %+v", events)
	}
}

func TestSpanAggregatesMinMax(t *testing.T) {
	tr := NewTracer(0)
	for i := 0; i < 3; i++ {
		s := StartSpan(tr, "work")
		time.Sleep(time.Duration(i) * time.Millisecond)
		s.End()
	}
	st := tr.Stats()[0]
	if st.Count != 3 || st.Min > st.Max || st.Total < st.Max {
		t.Fatalf("aggregate inconsistent: %+v", st)
	}
}

func TestRegistrySharingAndSnapshot(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same-name counters are distinct")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same-name gauges are distinct")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same-name histograms are distinct")
	}
	r.Counter("x").Add(7)
	r.Gauge("g").Set(1.25)
	r.Histogram("h").Observe(9)
	StartSpan(r.Tracer(), "phase").End()

	s := r.Snapshot()
	if s.Counters["x"] != 7 || s.Gauges["g"] != 1.25 || s.Histograms["h"].Count != 1 {
		t.Fatalf("snapshot wrong: %+v", s)
	}
	if len(s.Spans) != 1 || s.Spans[0].Name != "phase" {
		t.Fatalf("snapshot spans wrong: %+v", s.Spans)
	}
	if len(s.Events) != 1 {
		t.Fatalf("snapshot events wrong: %+v", s.Events)
	}

	r.Reset()
	if r.Counter("x").Value() != 0 || r.Gauge("g").Value() != 0 {
		t.Fatal("Reset did not zero instruments")
	}
	if s := r.Snapshot(); len(s.Spans) != 0 || len(s.Events) != 0 {
		t.Fatal("Reset did not clear tracer")
	}
}

func TestRegistryRenderings(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.streamer.dominance_tests").Add(3)
	r.Gauge("mediator.time_to_first_answer_ns").Set(1500)
	r.Histogram("core.streamer.next_ns").Observe(2048)
	StartSpan(r.Tracer(), "mediator/reformulate").End()

	var jsonBuf bytes.Buffer
	if err := r.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if snap.Counters["core.streamer.dominance_tests"] != 3 {
		t.Fatalf("JSON round-trip lost counter: %+v", snap)
	}

	var exp Snapshot
	if err := json.Unmarshal([]byte(r.String()), &exp); err != nil {
		t.Fatalf("String() is not valid JSON: %v", err)
	}

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"counters:", "core.streamer.dominance_tests", "gauges:",
		"histograms:", "spans:", "mediator/reformulate",
	} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, text.String())
		}
	}
}

// TestNilSafety calls every public method on nil receivers; any panic
// fails the test. Disabled instrumentation relies on this.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("nil Counter value not 0")
	}

	var g *Gauge
	g.Set(1)
	g.Add(1)
	g.Reset()
	if g.Value() != 0 {
		t.Fatal("nil Gauge value not 0")
	}

	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.ObserveSince(time.Now())
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil Histogram snapshot not zero")
	}

	var tr *Tracer
	tr.Event("a", "b")
	tr.Reset()
	if tr.Stats() != nil || tr.Events() != nil {
		t.Fatal("nil Tracer stats/events not nil")
	}
	sp := StartSpan(tr, "x")
	if sp != nil {
		t.Fatal("StartSpan on nil tracer returned non-nil span")
	}
	sp.Annotate("m")
	if sp.End() != 0 {
		t.Fatal("nil Span End not 0")
	}
	if sp.StartSpan("child") != nil {
		t.Fatal("nil Span StartSpan returned non-nil")
	}

	var r *Registry
	if r.Counter("c") != nil || r.Gauge("g") != nil || r.Histogram("h") != nil || r.Tracer() != nil {
		t.Fatal("nil Registry handed out non-nil instruments")
	}
	r.Reset()
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil Registry snapshot not zero")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if r.String() == "" {
		t.Fatal("nil Registry String empty")
	}
}

// TestConcurrentRegistry hammers one registry from many goroutines while
// snapshotting; run with -race (CI does) to verify concurrency safety.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("lat")
			g := r.Gauge("g")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i % 100))
				g.Add(1)
				if i%500 == 0 {
					s := StartSpan(r.Tracer(), "w")
					s.Annotate("tick")
					s.End()
					_ = r.Snapshot()
					_ = r.String()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat").Snapshot().Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %g, want %d", got, workers*perWorker)
	}
}

// TestDisabledPathAllocs proves the disabled (nil) instruments allocate
// nothing on the hot path.
func TestDisabledPathAllocs(t *testing.T) {
	var c *Counter
	var h *Histogram
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(5)
		sp := StartSpan(r.Tracer(), "x")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
}
