package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestQError(t *testing.T) {
	for _, tc := range []struct {
		est, act, want float64
	}{
		{10, 10, 1},
		{20, 10, 2},
		{10, 20, 2},
		{1, 16, 16},
	} {
		if got := qError(tc.est, tc.act); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("qError(%g, %g) = %g, want %g", tc.est, tc.act, got, tc.want)
		}
	}
}

func TestCalibrationPerfectEstimatesStayQuiet(t *testing.T) {
	c := NewCalibration(CalibConfig{})
	for i := 0; i < 10; i++ {
		c.ObserveSource("V0", 80, 80)
	}
	snap := c.Snapshot()
	if len(snap.Sources) != 1 {
		t.Fatalf("sources = %d, want 1", len(snap.Sources))
	}
	s := snap.Sources[0]
	if s.Name != "V0" || s.Samples != 10 {
		t.Fatalf("series = %+v", s)
	}
	if s.QErrP50 > 1.001 || s.QErrMax > 1.001 {
		t.Errorf("perfect estimates have q-error p50=%g max=%g, want 1", s.QErrP50, s.QErrMax)
	}
	if s.Bias != 0 || s.EWMA != 0 {
		t.Errorf("perfect estimates have bias=%g ewma=%g, want 0", s.Bias, s.EWMA)
	}
	if s.Drifted {
		t.Error("perfect estimates tripped the drift detector")
	}
	if got := c.Drifted(); len(got) != 0 {
		t.Errorf("Drifted() = %v, want empty", got)
	}
}

func TestCalibrationDriftTripsAfterMinSamples(t *testing.T) {
	c := NewCalibration(CalibConfig{}) // threshold log2(4) = 2, min 3
	// 16x stale: log2 ratio = 4 > 2 from the first (seeded) sample, but
	// the detector must hold until MinSamples.
	c.ObserveSource("V0", 160, 10)
	c.ObserveSource("V0", 160, 10)
	if got := c.Drifted(); len(got) != 0 {
		t.Fatalf("tripped after 2 samples (min 3): %v", got)
	}
	c.ObserveSource("V0", 160, 10)
	if got := c.Drifted(); len(got) != 1 || got[0] != "V0" {
		t.Fatalf("Drifted() = %v, want [V0]", got)
	}
	// The trip latches even if later estimates look fine.
	for i := 0; i < 50; i++ {
		c.ObserveSource("V0", 10, 10)
	}
	if got := c.Drifted(); len(got) != 1 {
		t.Fatalf("trip did not latch: %v", got)
	}
	s := c.Snapshot().Sources[0]
	if !s.Drifted {
		t.Error("snapshot lost the latched drift flag")
	}
	// After 50 perfect observations the EWMA itself has decayed home.
	if math.Abs(s.EWMA) > 0.01 {
		t.Errorf("EWMA did not decay: %g", s.EWMA)
	}
}

func TestCalibrationEWMASeedAndDecay(t *testing.T) {
	c := NewCalibration(CalibConfig{Alpha: 0.5, DriftFactor: 1e9})
	c.ObserveSource("V", 8, 2) // seeds at log2(4) = 2
	if got := c.Snapshot().Sources[0].EWMA; math.Abs(got-2) > 1e-12 {
		t.Fatalf("seed EWMA = %g, want 2", got)
	}
	c.ObserveSource("V", 2, 2) // 0.5*0 + 0.5*2 = 1
	if got := c.Snapshot().Sources[0].EWMA; math.Abs(got-1) > 1e-12 {
		t.Fatalf("EWMA after decay = %g, want 1", got)
	}
}

func TestCalibrationClampsNonPositive(t *testing.T) {
	c := NewCalibration(CalibConfig{})
	c.ObserveSource("V", 1, 0) // act clamped to 0.5 -> qerr 2
	s := c.Snapshot().Sources[0]
	if math.Abs(s.QErrMax-2) > 0.01 {
		t.Fatalf("clamped q-error = %g, want 2", s.QErrMax)
	}
}

func TestPairPlanEstimate(t *testing.T) {
	// Coverage family: nonnegative utility predicts answer yield.
	if est, act := PairPlanEstimate(12.5, 10, 99); est != 12.5 || act != 10 {
		t.Errorf("coverage pairing = (%g, %g), want (12.5, 10)", est, act)
	}
	// Cost family: negated-cost utility predicts the engine cost delta.
	if est, act := PairPlanEstimate(-200, 10, 180); est != 200 || act != 180 {
		t.Errorf("cost pairing = (%g, %g), want (200, 180)", est, act)
	}
}

func TestCalibrationPlanSeries(t *testing.T) {
	c := NewCalibration(CalibConfig{})
	c.ObservePlan("chain/streamer", 100, 90, 7, 42.5, 3*time.Millisecond)
	c.ObservePlan("chain/streamer", 100, 110, 3, 7.5, time.Millisecond)
	snap := c.Snapshot()
	if len(snap.Plans) != 1 {
		t.Fatalf("plans = %d, want 1", len(snap.Plans))
	}
	p := snap.Plans[0]
	if p.Name != "chain/streamer" || p.Samples != 2 {
		t.Fatalf("series = %+v", p)
	}
	if p.Answers != 10 {
		t.Errorf("answers = %d, want 10", p.Answers)
	}
	if math.Abs(p.Cost-50) > 1e-9 {
		t.Errorf("cost = %g, want 50", p.Cost)
	}
	if p.WallSumMS < 3.9 || p.WallSumMS > 4.1 {
		t.Errorf("wall sum = %gms, want 4ms", p.WallSumMS)
	}
}

func TestCalibrationSnapshotSortedAndReset(t *testing.T) {
	c := NewCalibration(CalibConfig{})
	c.ObserveSource("Vb", 1, 1)
	c.ObserveSource("Va", 1, 1)
	c.ObservePlan("z", 1, 1, 0, 0, 0)
	c.ObservePlan("a", 1, 1, 0, 0, 0)
	snap := c.Snapshot()
	if snap.Sources[0].Name != "Va" || snap.Sources[1].Name != "Vb" {
		t.Errorf("sources not sorted: %v", snap.Sources)
	}
	if snap.Plans[0].Name != "a" || snap.Plans[1].Name != "z" {
		t.Errorf("plans not sorted: %v", snap.Plans)
	}
	if snap.Empty() {
		t.Error("populated snapshot reports Empty")
	}
	c.Reset()
	if !c.Snapshot().Empty() {
		t.Error("Reset left series behind")
	}
}

func TestCalibrationWriteTextMarksDrift(t *testing.T) {
	c := NewCalibration(CalibConfig{})
	for i := 0; i < 3; i++ {
		c.ObserveSource("Vstale", 160, 10)
	}
	var buf bytes.Buffer
	if err := c.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Vstale") || !strings.Contains(out, "DRIFTED") {
		t.Fatalf("report misses the drifted source:\n%s", out)
	}
	var empty CalibrationSnapshot
	buf.Reset()
	if err := empty.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no observations") {
		t.Fatalf("empty report = %q", buf.String())
	}
}

// TestDisabledCalibrationAllocs proves the nil (disabled) calibration
// costs nothing on the engine and mediator hot paths.
func TestDisabledCalibrationAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	var c *Calibration
	allocs := testing.AllocsPerRun(1000, func() {
		c.ObserveSource("V", 10, 10)
		c.ObservePlan("k", 1, 1, 1, 1, time.Millisecond)
		_ = c.Drifted()
		_ = c.Snapshot()
	})
	if allocs != 0 {
		t.Fatalf("disabled calibration allocates %.1f per op, want 0", allocs)
	}
}

func TestCalibrationConcurrent(t *testing.T) {
	c := NewCalibration(CalibConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("V%d", g%4)
			for i := 0; i < 500; i++ {
				c.ObserveSource(name, 10, 10)
				c.ObservePlan("m/a", 5, 4, 1, 1, time.Microsecond)
				if i%100 == 0 {
					_ = c.Snapshot()
					_ = c.Drifted()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := c.Snapshot()
	if len(snap.Sources) != 4 || len(snap.Plans) != 1 {
		t.Fatalf("series: %d sources, %d plans", len(snap.Sources), len(snap.Plans))
	}
	var total int64
	for _, s := range snap.Sources {
		total += s.Samples
	}
	if total != 8*500 {
		t.Fatalf("source samples = %d, want %d", total, 8*500)
	}
}

// TestRegistryConcurrentCollectorsAndCalibration races instrument
// registration, collector installation, calibration attachment, and
// snapshots — the shapes the serving layer exercises live.
func TestRegistryConcurrentCollectorsAndCalibration(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cal := NewCalibration(CalibConfig{})
			for i := 0; i < 200; i++ {
				r.Counter(fmt.Sprintf("c%d", i%7)).Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(int64(i))
				switch i % 50 {
				case 0:
					r.AttachCalibration(cal)
					cal.ObserveSource("V", 1, 1)
				case 25:
					r.AddCollector(func() { r.Gauge("collected").Set(1) })
				}
				if i%40 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Calibration == nil || snap.Calibration.Empty() {
		t.Fatal("snapshot lost the attached calibration")
	}
	if snap.Gauges["collected"] != 1 {
		t.Fatal("snapshot did not run the added collectors")
	}
	if _, ok := snap.Gauges[MetricGoMaxProcs]; !ok {
		t.Fatal("runtime metrics missing from snapshot")
	}
}

func TestRegistrySnapshotCarriesCalibration(t *testing.T) {
	r := NewRegistry()
	cal := NewCalibration(CalibConfig{})
	cal.ObserveSource("V0", 10, 20)
	r.AttachCalibration(cal)
	if r.Calibration() != cal {
		t.Fatal("Calibration() did not return the attached accumulator")
	}
	snap := r.Snapshot()
	if snap.Calibration == nil || len(snap.Calibration.Sources) != 1 {
		t.Fatalf("snapshot calibration = %+v", snap.Calibration)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "calibration") || !strings.Contains(buf.String(), "V0") {
		t.Fatalf("WriteText misses calibration:\n%s", buf.String())
	}
	// Detach restores the plain snapshot.
	r.AttachCalibration(nil)
	if r.Snapshot().Calibration != nil {
		t.Fatal("detach did not clear the snapshot calibration")
	}
}

func TestReadExportsMixedStream(t *testing.T) {
	// One real trace line, one calibration line, blank lines between.
	tr := NewTrace("test")
	tr.StartSpan("a").End()
	traceLine, err := json.Marshal(tr.Finish())
	if err != nil {
		t.Fatal(err)
	}
	cal := NewCalibration(CalibConfig{})
	cal.ObserveSource("V0", 10, 10)
	calLine, err := json.Marshal(CalibrationRecord{TraceID: "t1", Calibration: cal.Snapshot()})
	if err != nil {
		t.Fatal(err)
	}
	stream := string(traceLine) + "\n\n" + string(calLine) + "\n"
	traces, calibs, err := ReadExports(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || len(calibs) != 1 {
		t.Fatalf("got %d traces, %d calibs, want 1 and 1", len(traces), len(calibs))
	}
	if calibs[0].TraceID != "t1" || len(calibs[0].Calibration.Sources) != 1 {
		t.Fatalf("calibration record = %+v", calibs[0])
	}

	// Malformed and zero-ID lines fail loudly, as ReadTraces does.
	if _, _, err := ReadExports(strings.NewReader("{not json}\n")); err == nil {
		t.Error("malformed line did not error")
	}
	if _, _, err := ReadExports(strings.NewReader("{}\n")); err == nil {
		t.Error("zero trace ID did not error")
	}
}
