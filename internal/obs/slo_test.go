package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newSLOForTest(t *testing.T, cfg SLOConfig) (*SLOMonitor, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	cfg.Now = clk.now
	m := NewSLOMonitor(cfg)
	if m == nil {
		t.Fatal("NewSLOMonitor returned nil for configured objectives")
	}
	return m, clk
}

func TestSLOMonitorDisabled(t *testing.T) {
	if m := NewSLOMonitor(SLOConfig{}); m != nil {
		t.Fatal("no objectives should yield a nil (disabled) monitor")
	}
	var m *SLOMonitor
	// Every method must be a safe no-op on nil.
	m.Bind(NewRegistry())
	m.Observe(time.Second, time.Second, true)
	m.MarkExport(true)
	if !m.ShouldSample(0, 0, false) {
		t.Fatal("nil monitor must sample everything")
	}
	if s := m.Snapshot(); s.Sessions != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil WriteText = %q, want disabled notice", buf.String())
	}
	buf.Reset()
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSLOMonitorDefaults(t *testing.T) {
	m := NewSLOMonitor(SLOConfig{FullObjective: time.Second, Target: 1.5})
	if m == nil {
		t.Fatal("nil monitor")
	}
	if m.cfg.Target != 0.99 {
		t.Fatalf("out-of-range target not clamped: %g", m.cfg.Target)
	}
	if m.cfg.Window != 5*time.Minute {
		t.Fatalf("default window = %s", m.cfg.Window)
	}
	if m.bucketDur != 5*time.Minute/sloRingBuckets {
		t.Fatalf("bucketDur = %s", m.bucketDur)
	}
}

func TestSLOViolationsAndBurn(t *testing.T) {
	m, _ := newSLOForTest(t, SLOConfig{
		TTFAObjective: 10 * time.Millisecond,
		FullObjective: 100 * time.Millisecond,
		Target:        0.9, // 10% budget, so >=10% violations means burn >= 1
		Window:        time.Minute,
	})
	// 8 good sessions, 1 TTFA violation, 1 full violation.
	for i := 0; i < 8; i++ {
		m.Observe(time.Millisecond, 10*time.Millisecond, false)
	}
	m.Observe(50*time.Millisecond, 60*time.Millisecond, false) // TTFA blown
	m.Observe(time.Millisecond, 200*time.Millisecond, false)   // full blown
	s := m.Snapshot()
	if s.Sessions != 10 || s.TTFAViolations != 1 || s.FullViolations != 1 || s.Errors != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
	// 1 violation / 10 sessions / 0.1 budget = burn rate 1.0 (allow for
	// floating-point rounding in the budget division).
	near := func(got, want float64) bool { return got > want-1e-9 && got < want+1e-9 }
	if !near(s.TTFABurn, 1) || !near(s.FullBurn, 1) || s.ErrorBurn != 0 {
		t.Fatalf("burn rates = %g/%g/%g, want 1/1/0", s.TTFABurn, s.FullBurn, s.ErrorBurn)
	}
}

func TestSLOTTFAViolationWhenNoAnswerStreamed(t *testing.T) {
	m, _ := newSLOForTest(t, SLOConfig{TTFAObjective: 10 * time.Millisecond, Window: time.Minute})
	// No answer ever streamed (ttfa=0) and the session outlived the
	// objective: that's a violation, not a pass.
	m.Observe(0, time.Second, false)
	// No answer but the whole session fit inside the objective: fine.
	m.Observe(0, time.Millisecond, false)
	if s := m.Snapshot(); s.TTFAViolations != 1 {
		t.Fatalf("ttfa violations = %d, want 1", s.TTFAViolations)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	m, clk := newSLOForTest(t, SLOConfig{FullObjective: time.Millisecond, Window: time.Minute})
	m.Observe(0, time.Second, true)
	if s := m.Snapshot(); s.Sessions != 1 || s.Errors != 1 {
		t.Fatalf("before expiry: %+v", s)
	}
	clk.advance(2 * time.Minute)
	if s := m.Snapshot(); s.Sessions != 0 {
		t.Fatalf("after expiry: %+v, want empty window", s)
	}
	// A new observation lands in a reused (lazily reset) bucket.
	m.Observe(0, time.Microsecond, false)
	if s := m.Snapshot(); s.Sessions != 1 || s.FullViolations != 0 || s.Errors != 0 {
		t.Fatalf("after reuse: %+v", s)
	}
}

func TestSLOShouldSample(t *testing.T) {
	m, _ := newSLOForTest(t, SLOConfig{
		TTFAObjective: 10 * time.Millisecond,
		FullObjective: 100 * time.Millisecond,
		Target:        0.9,
		Window:        time.Minute,
	})
	if m.ShouldSample(time.Millisecond, time.Millisecond, false) {
		t.Fatal("healthy session in a quiet window should not sample")
	}
	if !m.ShouldSample(time.Millisecond, time.Millisecond, true) {
		t.Fatal("errored session must sample")
	}
	if !m.ShouldSample(time.Second, 2*time.Second, false) {
		t.Fatal("objective-violating session must sample")
	}
	// Drive the window to burn >= 1: now even healthy sessions sample.
	for i := 0; i < 5; i++ {
		m.Observe(0, time.Second, false)
	}
	if !m.ShouldSample(time.Millisecond, time.Millisecond, false) {
		t.Fatal("burning window must sample every session")
	}
}

func TestSLOBindAndMark(t *testing.T) {
	m, _ := newSLOForTest(t, SLOConfig{FullObjective: 50 * time.Millisecond, Window: time.Minute})
	reg := NewRegistry()
	m.Bind(reg)
	m.Observe(0, time.Second, false)
	m.MarkExport(true)
	m.MarkExport(false)
	m.MarkExport(false)
	snap := reg.Snapshot()
	if got := snap.Counters["slo.sampled_exports"]; got != 1 {
		t.Fatalf("sampled_exports = %d, want 1", got)
	}
	if got := snap.Counters["slo.sampled_dropped"]; got != 2 {
		t.Fatalf("sampled_dropped = %d, want 2", got)
	}
	if got := snap.Gauges["slo.full_objective_ms"]; got != 50 {
		t.Fatalf("full_objective_ms = %g, want 50", got)
	}
	if got := snap.Gauges["slo.full_burn_rate"]; got <= 0 {
		t.Fatalf("full_burn_rate = %g, want > 0", got)
	}
	if got := snap.Gauges["slo.window_sessions"]; got != 1 {
		t.Fatalf("window_sessions = %g, want 1", got)
	}
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"slo objectives:", "burn rates:", "tail sampling:"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, buf.String())
		}
	}
}

// A disabled (nil) monitor must add zero allocations to the hot path.
func TestDisabledSLOAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	var m *SLOMonitor
	allocs := testing.AllocsPerRun(1000, func() {
		m.Observe(time.Millisecond, time.Second, false)
		if !m.ShouldSample(time.Millisecond, time.Second, false) {
			t.Fatal("unexpected")
		}
		m.MarkExport(true)
	})
	if allocs != 0 {
		t.Fatalf("disabled SLO monitor allocates %.1f per op, want 0", allocs)
	}
}
