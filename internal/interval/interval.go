// Package interval implements the real-valued interval arithmetic used to
// evaluate the utility of abstract plans (Section 5.1 of the paper).
//
// An abstract plan represents a set of concrete plans; its utility is an
// interval guaranteed to contain the utility of every represented concrete
// plan. Drips-style dominance elimination compares interval endpoints:
// p dominates q when Low(p) >= High(q).
package interval

import (
	"fmt"
	"math"
)

// Interval is a closed real interval [Lo, Hi]. A point value x is
// represented as [x, x]. The zero value is the point 0.
type Interval struct {
	Lo, Hi float64
}

// Point returns the degenerate interval [x, x].
func Point(x float64) Interval { return Interval{x, x} }

// New returns [lo, hi], normalizing a reversed pair.
func New(lo, hi float64) Interval {
	if lo > hi {
		lo, hi = hi, lo
	}
	return Interval{lo, hi}
}

// IsPoint reports whether the interval is degenerate.
func (a Interval) IsPoint() bool { return a.Lo == a.Hi }

// Width returns Hi-Lo.
func (a Interval) Width() float64 { return a.Hi - a.Lo }

// Mid returns the midpoint.
func (a Interval) Mid() float64 { return (a.Lo + a.Hi) / 2 }

// Contains reports whether x ∈ [Lo, Hi].
func (a Interval) Contains(x float64) bool { return a.Lo <= x && x <= a.Hi }

// ContainsInterval reports whether b ⊆ a.
func (a Interval) ContainsInterval(b Interval) bool { return a.Lo <= b.Lo && b.Hi <= a.Hi }

// Overlaps reports whether a ∩ b ≠ ∅.
func (a Interval) Overlaps(b Interval) bool { return a.Lo <= b.Hi && b.Lo <= a.Hi }

// Add returns a + b.
func (a Interval) Add(b Interval) Interval { return Interval{a.Lo + b.Lo, a.Hi + b.Hi} }

// Sub returns a - b.
func (a Interval) Sub(b Interval) Interval { return Interval{a.Lo - b.Hi, a.Hi - b.Lo} }

// Neg returns -a.
func (a Interval) Neg() Interval { return Interval{-a.Hi, -a.Lo} }

// Mul returns a * b (general sign-safe product).
func (a Interval) Mul(b Interval) Interval {
	p1 := a.Lo * b.Lo
	p2 := a.Lo * b.Hi
	p3 := a.Hi * b.Lo
	p4 := a.Hi * b.Hi
	return Interval{
		math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		math.Max(math.Max(p1, p2), math.Max(p3, p4)),
	}
}

// Scale returns c * a for a scalar c.
func (a Interval) Scale(c float64) Interval {
	if c >= 0 {
		return Interval{c * a.Lo, c * a.Hi}
	}
	return Interval{c * a.Hi, c * a.Lo}
}

// Div returns a / b. b must not contain zero; division by an interval
// straddling zero is a modeling error in this codebase (utilities never
// divide by quantities that can vanish), so it panics.
func (a Interval) Div(b Interval) Interval {
	if b.Lo <= 0 && b.Hi >= 0 {
		panic(fmt.Sprintf("interval: division by interval containing zero: %v", b))
	}
	return a.Mul(Interval{1 / b.Hi, 1 / b.Lo})
}

// Hull returns the smallest interval containing both a and b.
func (a Interval) Hull(b Interval) Interval {
	return Interval{math.Min(a.Lo, b.Lo), math.Max(a.Hi, b.Hi)}
}

// Dominates reports the Drips dominance test: every point of a is >= every
// point of b, i.e. a.Lo >= b.Hi. Equal point intervals dominate each other;
// callers must tie-break to keep the dominance relation acyclic.
func (a Interval) Dominates(b Interval) bool { return a.Lo >= b.Hi }

// StrictlyDominates reports a.Lo > b.Hi.
func (a Interval) StrictlyDominates(b Interval) bool { return a.Lo > b.Hi }

// Min returns the interval of min(x, y) for x ∈ a, y ∈ b.
func (a Interval) Min(b Interval) Interval {
	return Interval{math.Min(a.Lo, b.Lo), math.Min(a.Hi, b.Hi)}
}

// Max returns the interval of max(x, y) for x ∈ a, y ∈ b.
func (a Interval) Max(b Interval) Interval {
	return Interval{math.Max(a.Lo, b.Lo), math.Max(a.Hi, b.Hi)}
}

// String renders "[lo, hi]" or "x" for points.
func (a Interval) String() string {
	if a.IsPoint() {
		return fmt.Sprintf("%.4g", a.Lo)
	}
	return fmt.Sprintf("[%.4g, %.4g]", a.Lo, a.Hi)
}
