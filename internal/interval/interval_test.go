package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	p := Point(3)
	if !p.IsPoint() || p.Lo != 3 || p.Hi != 3 {
		t.Errorf("Point(3) = %v", p)
	}
	r := New(5, 2) // reversed normalizes
	if r.Lo != 2 || r.Hi != 5 {
		t.Errorf("New(5,2) = %v, want [2,5]", r)
	}
	if r.Width() != 3 || r.Mid() != 3.5 {
		t.Errorf("Width/Mid wrong: %v %v", r.Width(), r.Mid())
	}
	if !r.Contains(2) || !r.Contains(5) || r.Contains(5.01) {
		t.Error("Contains endpoints wrong")
	}
	if !r.ContainsInterval(New(3, 4)) || r.ContainsInterval(New(3, 6)) {
		t.Error("ContainsInterval wrong")
	}
	if !r.Overlaps(New(5, 7)) || r.Overlaps(New(5.1, 7)) {
		t.Error("Overlaps wrong")
	}
}

func TestDominance(t *testing.T) {
	if !New(5, 7).Dominates(New(2, 5)) {
		t.Error("[5,7] should dominate [2,5]")
	}
	if New(5, 7).Dominates(New(2, 5.1)) {
		t.Error("[5,7] should not dominate [2,5.1]")
	}
	if !New(5, 7).StrictlyDominates(New(2, 4.9)) {
		t.Error("strict dominance failed")
	}
	if New(5, 7).StrictlyDominates(New(2, 5)) {
		t.Error("strict dominance should fail at equality")
	}
}

func TestDivByZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic dividing by interval containing zero")
		}
	}()
	Point(1).Div(New(-1, 1))
}

func TestString(t *testing.T) {
	if got := Point(2).String(); got != "2" {
		t.Errorf("Point String = %q", got)
	}
	if got := New(1, 2).String(); got != "[1, 2]" {
		t.Errorf("Interval String = %q", got)
	}
}

// TestArithmeticContainment is the fundamental interval-arithmetic
// soundness property: for x ∈ a and y ∈ b, x⊕y ∈ a⊕b for every operation.
func TestArithmeticContainment(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	sample := func(rng *rand.Rand, iv Interval) float64 {
		return iv.Lo + rng.Float64()*(iv.Hi-iv.Lo)
	}
	randIv := func(rng *rand.Rand) Interval {
		a, b := rng.Float64()*20-10, rng.Float64()*20-10
		return New(a, b)
	}
	const eps = 1e-9
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randIv(rng), randIv(rng)
		x, y := sample(rng, a), sample(rng, b)

		if s := a.Add(b); x+y < s.Lo-eps || x+y > s.Hi+eps {
			return false
		}
		if s := a.Sub(b); x-y < s.Lo-eps || x-y > s.Hi+eps {
			return false
		}
		if s := a.Mul(b); x*y < s.Lo-eps || x*y > s.Hi+eps {
			return false
		}
		if s := a.Neg(); -x < s.Lo-eps || -x > s.Hi+eps {
			return false
		}
		c := rng.Float64()*6 - 3
		if s := a.Scale(c); c*x < s.Lo-eps || c*x > s.Hi+eps {
			return false
		}
		if s := a.Hull(b); !(s.Lo <= x && x <= s.Hi && s.Lo <= y && y <= s.Hi) {
			return false
		}
		if s := a.Min(b); math.Min(x, y) < s.Lo-eps || math.Min(x, y) > s.Hi+eps {
			return false
		}
		if s := a.Max(b); math.Max(x, y) < s.Lo-eps || math.Max(x, y) > s.Hi+eps {
			return false
		}
		// Division: shift b to be strictly positive.
		bp := New(b.Lo+11, b.Hi+11) // ⊆ [1, 21]
		yp := y + 11
		if s := a.Div(bp); x/yp < s.Lo-eps || x/yp > s.Hi+eps {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
