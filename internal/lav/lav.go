// Package lav models data sources in the local-as-view approach: each
// source is described by a conjunctive query over the mediated schema
// ("all tuples in the source satisfy the conjunction"), together with the
// statistics the utility measures need (Sections 2-3 of the paper).
package lav

import (
	"fmt"
	"sort"

	"qporder/internal/schema"
)

// SourceID identifies a source within a Catalog. IDs are dense, assigned
// in registration order, and usable as slice indices.
type SourceID int

// Stats holds the per-source parameters consumed by the utility measures.
// They correspond to the symbols of cost measures (1) and (2):
//
//	h  — per-access overhead           → Overhead
//	αᵢ — per-item transmission cost    → TransmitCost
//	nᵢ — expected number of items out  → Tuples
//
// plus the extensions used by the other experimental measures.
type Stats struct {
	// Tuples is nᵢ, the expected number of items the source outputs for a
	// subgoal access. Must be >= 1.
	Tuples float64
	// TransmitCost is αᵢ, the cost of transmitting one item to the
	// mediator (or between sources).
	TransmitCost float64
	// Overhead is h, the fixed cost of one access to this source. The
	// paper treats h as global; per-source values generalize it.
	Overhead float64
	// FailureProb is the probability that a single access attempt fails
	// (the "cost with probability of source failure" measure). In [0, 1).
	FailureProb float64
	// AccessFee is the monetary fee charged per access (the "average
	// monetary cost per tuple" measure).
	AccessFee float64
	// TupleFee is the monetary fee charged per returned tuple.
	TupleFee float64
}

// Validate reports the first invalid statistic.
func (s Stats) Validate() error {
	switch {
	case s.Tuples < 1:
		return fmt.Errorf("lav: Tuples=%g, want >= 1", s.Tuples)
	case s.TransmitCost < 0:
		return fmt.Errorf("lav: negative TransmitCost %g", s.TransmitCost)
	case s.Overhead < 0:
		return fmt.Errorf("lav: negative Overhead %g", s.Overhead)
	case s.FailureProb < 0 || s.FailureProb >= 1:
		return fmt.Errorf("lav: FailureProb=%g, want [0,1)", s.FailureProb)
	case s.AccessFee < 0 || s.TupleFee < 0:
		return fmt.Errorf("lav: negative monetary fee")
	}
	return nil
}

// Source is one data source: a name, a LAV description, and statistics.
type Source struct {
	ID   SourceID
	Name string
	// Def is the source description V(X̄) :- conj(schema relations).
	// It may be nil for purely synthetic experiment sources whose behavior
	// is fully captured by Stats and the coverage model.
	Def   *schema.Query
	Stats Stats
}

// Catalog is the registry of all sources in a domain.
type Catalog struct {
	sources []*Source
	byName  map[string]*Source
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]*Source)}
}

// Add registers a source and returns it. The name must be unique; Def, if
// present, must validate.
func (c *Catalog) Add(name string, def *schema.Query, stats Stats) (*Source, error) {
	if name == "" {
		return nil, fmt.Errorf("lav: empty source name")
	}
	if _, dup := c.byName[name]; dup {
		return nil, fmt.Errorf("lav: duplicate source name %q", name)
	}
	if def != nil {
		if err := def.Validate(); err != nil {
			return nil, fmt.Errorf("lav: source %s: %w", name, err)
		}
	}
	if err := stats.Validate(); err != nil {
		return nil, fmt.Errorf("lav: source %s: %w", name, err)
	}
	s := &Source{ID: SourceID(len(c.sources)), Name: name, Def: def, Stats: stats}
	c.sources = append(c.sources, s)
	c.byName[name] = s
	return s, nil
}

// MustAdd is Add that panics on error; for tests and generators.
func (c *Catalog) MustAdd(name string, def *schema.Query, stats Stats) *Source {
	s, err := c.Add(name, def, stats)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of registered sources.
func (c *Catalog) Len() int { return len(c.sources) }

// Source returns the source with the given ID; it panics on an unknown ID
// (IDs are only minted by Add).
func (c *Catalog) Source(id SourceID) *Source {
	if int(id) < 0 || int(id) >= len(c.sources) {
		panic(fmt.Sprintf("lav: unknown source id %d", id))
	}
	return c.sources[id]
}

// ByName returns the source with the given name.
func (c *Catalog) ByName(name string) (*Source, bool) {
	s, ok := c.byName[name]
	return s, ok
}

// Sources returns all sources in ID order. The slice is shared; callers
// must not mutate it.
func (c *Catalog) Sources() []*Source { return c.sources }

// Names returns all source names sorted alphabetically.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.byName))
	for n := range c.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
