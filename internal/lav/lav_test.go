package lav

import (
	"strings"
	"testing"

	"qporder/internal/schema"
)

func validStats() Stats {
	return Stats{Tuples: 10, TransmitCost: 1, Overhead: 5, FailureProb: 0.1, AccessFee: 1, TupleFee: 0.01}
}

func TestAddAndLookup(t *testing.T) {
	cat := NewCatalog()
	def := schema.MustParseQuery("V1(A, M) :- play-in(A, M)")
	s, err := cat.Add("V1", def, validStats())
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != 0 || s.Name != "V1" {
		t.Errorf("source = %+v", s)
	}
	if got := cat.Source(s.ID); got != s {
		t.Error("Source lookup mismatch")
	}
	if got, ok := cat.ByName("V1"); !ok || got != s {
		t.Error("ByName lookup mismatch")
	}
	if _, ok := cat.ByName("nope"); ok {
		t.Error("ByName found nonexistent source")
	}
	if cat.Len() != 1 {
		t.Errorf("Len = %d", cat.Len())
	}
}

func TestAddErrors(t *testing.T) {
	cat := NewCatalog()
	if _, err := cat.Add("", nil, validStats()); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := cat.Add("V", nil, validStats()); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Add("V", nil, validStats()); err == nil {
		t.Error("duplicate name accepted")
	}
	unsafe := &schema.Query{Name: "W", Head: []schema.Term{schema.Var("X")},
		Body: []schema.Atom{schema.NewAtom("r", schema.Var("Y"))}}
	if _, err := cat.Add("W", unsafe, validStats()); err == nil {
		t.Error("unsafe description accepted")
	}
}

func TestStatsValidate(t *testing.T) {
	cases := []struct {
		mutate func(*Stats)
		want   string
	}{
		{func(s *Stats) { s.Tuples = 0 }, "Tuples"},
		{func(s *Stats) { s.TransmitCost = -1 }, "TransmitCost"},
		{func(s *Stats) { s.Overhead = -1 }, "Overhead"},
		{func(s *Stats) { s.FailureProb = 1 }, "FailureProb"},
		{func(s *Stats) { s.FailureProb = -0.1 }, "FailureProb"},
		{func(s *Stats) { s.AccessFee = -1 }, "fee"},
		{func(s *Stats) { s.TupleFee = -1 }, "fee"},
	}
	for _, c := range cases {
		st := validStats()
		c.mutate(&st)
		err := st.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate() = %v, want mention of %s", err, c.want)
		}
	}
	if err := validStats().Validate(); err != nil {
		t.Errorf("valid stats rejected: %v", err)
	}
}

func TestUnknownSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCatalog().Source(3)
}

func TestNames(t *testing.T) {
	cat := NewCatalog()
	cat.MustAdd("b", nil, validStats())
	cat.MustAdd("a", nil, validStats())
	names := cat.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}
