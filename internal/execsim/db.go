// Package execsim is a small query-execution engine over synthetic tuple
// stores: the downstream consumer of plan ordering. It evaluates
// conjunctive queries (mediated-schema queries over a world database, and
// query plans over source relations), accounts access costs following the
// paper's cost model, simulates source failures and result caching, and
// accumulates the union of plan answers — everything needed to demonstrate
// time-to-first-answer behavior end to end.
package execsim

import (
	"fmt"
	"sort"
	"strings"

	"qporder/internal/schema"
)

// DB maps a relation name to its ground tuples. Tuples are atoms whose
// arguments are all constants.
type DB map[string][]schema.Atom

// Add inserts a tuple; all arguments must be constants.
func (db DB) Add(pred string, values ...string) {
	args := make([]schema.Term, len(values))
	for i, v := range values {
		args[i] = schema.Const(v)
	}
	db[pred] = append(db[pred], schema.Atom{Pred: pred, Args: args})
}

// AddAtom inserts a ground atom.
func (db DB) AddAtom(a schema.Atom) error {
	for _, t := range a.Args {
		if t.IsVar() {
			return fmt.Errorf("execsim: non-ground tuple %s", a)
		}
	}
	db[a.Pred] = append(db[a.Pred], a)
	return nil
}

// Size returns the total number of tuples.
func (db DB) Size() int {
	n := 0
	for _, ts := range db {
		n += len(ts)
	}
	return n
}

// Eval evaluates a conjunctive query against the database and returns the
// distinct head instances, deterministically ordered.
func Eval(q *schema.Query, db DB) []schema.Atom {
	var out []schema.Atom
	seen := make(map[string]bool)
	var rec func(i int, sub schema.Subst)
	rec = func(i int, sub schema.Subst) {
		if i == len(q.Body) {
			head := sub.ApplyAtom(q.HeadAtom())
			k := head.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, head)
			}
			return
		}
		goal := q.Body[i]
		for _, tuple := range db[goal.Pred] {
			if ext, ok := schema.MatchAtom(goal, tuple, sub); ok {
				rec(i+1, ext)
			}
		}
	}
	rec(0, schema.Subst{})
	sortAtoms(out)
	return out
}

// sortAtoms orders atoms lexicographically by their rendering for
// deterministic output.
func sortAtoms(as []schema.Atom) {
	sort.Slice(as, func(i, j int) bool { return as[i].String() < as[j].String() })
}

// atomKeyArity is the widest atom dedup'ed without allocating: the key
// inlines up to this many arguments in a comparable array. Mediated
// query heads in the experiment domains are binary, so the inline path
// covers every hot-loop answer; wider atoms fall back to a string key.
const atomKeyArity = 8

// atomKey is a comparable dedup key carrying the atom's value (schema.Term
// is a comparable struct), so map probes need no rendered string and
// re-adding a duplicate answer costs zero allocations.
type atomKey struct {
	pred string
	n    int
	args [atomKeyArity]schema.Term
}

// keyOf builds the inline key; ok=false means the atom is too wide.
func keyOf(a schema.Atom) (k atomKey, ok bool) {
	if len(a.Args) > atomKeyArity {
		return atomKey{}, false
	}
	k.pred = a.Pred
	k.n = len(a.Args)
	copy(k.args[:], a.Args)
	return k, true
}

// AnswerSet accumulates the union of plan outputs with deduplication.
// Dedup keys on the atom value, not its rendering: the execution hot
// path re-presents the same answers plan after plan, and probing with a
// value key makes those duplicate Adds allocation-free (gated by
// TestAnswerSetAddAllocs).
type AnswerSet struct {
	seen map[atomKey]bool
	// wide holds string keys for atoms with more than atomKeyArity
	// arguments; nil until one appears.
	wide  map[string]bool
	atoms []schema.Atom
}

// NewAnswerSet returns an empty accumulator.
func NewAnswerSet() *AnswerSet {
	return &AnswerSet{seen: make(map[atomKey]bool)}
}

// Add inserts atoms and returns how many were new.
func (s *AnswerSet) Add(atoms []schema.Atom) int {
	fresh := 0
	for i := range atoms {
		a := atoms[i]
		if k, ok := keyOf(a); ok {
			if s.seen[k] {
				continue
			}
			s.seen[k] = true
		} else {
			w := a.String()
			if s.wide[w] {
				continue
			}
			if s.wide == nil {
				s.wide = make(map[string]bool)
			}
			s.wide[w] = true
		}
		s.atoms = append(s.atoms, a)
		fresh++
	}
	return fresh
}

// Len returns the number of distinct answers.
func (s *AnswerSet) Len() int { return len(s.atoms) }

// Atoms returns the distinct answers in insertion order.
func (s *AnswerSet) Atoms() []schema.Atom { return s.atoms }

// Contains reports whether the answer is present.
func (s *AnswerSet) Contains(a schema.Atom) bool {
	if k, ok := keyOf(a); ok {
		return s.seen[k]
	}
	return s.wide[a.String()]
}

// String renders the answers, sorted, one per line.
func (s *AnswerSet) String() string {
	cp := append([]schema.Atom(nil), s.atoms...)
	sortAtoms(cp)
	var b strings.Builder
	for _, a := range cp {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	return b.String()
}
