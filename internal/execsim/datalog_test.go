package execsim

import (
	"testing"

	"qporder/internal/schema"
)

func TestEvalProgramNonRecursive(t *testing.T) {
	edb := make(DB)
	edb.Add("edge", "a", "b")
	edb.Add("edge", "b", "c")
	rules := []*schema.Query{
		schema.MustParseQuery("two(X, Z) :- edge(X, Y), edge(Y, Z)"),
	}
	out, err := EvalProgram(rules, edb)
	if err != nil {
		t.Fatal(err)
	}
	if len(out["two"]) != 1 || out["two"][0].String() != "two(a, c)" {
		t.Errorf("two = %v", out["two"])
	}
}

func TestEvalProgramTransitiveClosure(t *testing.T) {
	edb := make(DB)
	// A chain a -> b -> c -> d plus a cycle x -> y -> x.
	edb.Add("edge", "a", "b")
	edb.Add("edge", "b", "c")
	edb.Add("edge", "c", "d")
	edb.Add("edge", "x", "y")
	edb.Add("edge", "y", "x")
	rules := []*schema.Query{
		schema.MustParseQuery("path(X, Y) :- edge(X, Y)"),
		schema.MustParseQuery("path(X, Z) :- edge(X, Y), path(Y, Z)"),
	}
	out, err := EvalProgram(rules, edb)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"path(a, b)": true, "path(a, c)": true, "path(a, d)": true,
		"path(b, c)": true, "path(b, d)": true, "path(c, d)": true,
		"path(x, y)": true, "path(y, x)": true, "path(x, x)": true, "path(y, y)": true,
	}
	if len(out["path"]) != len(want) {
		t.Fatalf("path = %v", out["path"])
	}
	for _, a := range out["path"] {
		if !want[a.String()] {
			t.Errorf("unexpected %s", a)
		}
	}
}

func TestEvalProgramMutualRecursion(t *testing.T) {
	edb := make(DB)
	edb.Add("succ", "0", "1")
	edb.Add("succ", "1", "2")
	edb.Add("succ", "2", "3")
	edb.Add("zero", "0")
	rules := []*schema.Query{
		schema.MustParseQuery("even(X) :- zero(X)"),
		schema.MustParseQuery("odd(Y) :- even(X), succ(X, Y)"),
		schema.MustParseQuery("even(Y) :- odd(X), succ(X, Y)"),
	}
	out, err := EvalProgram(rules, edb)
	if err != nil {
		t.Fatal(err)
	}
	if len(out["even"]) != 2 || len(out["odd"]) != 2 {
		t.Errorf("even=%v odd=%v", out["even"], out["odd"])
	}
}

func TestEvalProgramRejectsUnsafeRule(t *testing.T) {
	edb := make(DB)
	rules := []*schema.Query{
		{Name: "p", Head: []schema.Term{schema.Var("X")},
			Body: []schema.Atom{schema.NewAtom("q", schema.Var("Y"))}},
	}
	if _, err := EvalProgram(rules, edb); err == nil {
		t.Error("unsafe rule accepted")
	}
}

func TestEvalProgramMatchesEvalOnConjunctiveQueries(t *testing.T) {
	world := GenerateWorld(WorldConfig{
		Relations:         []RelationSpec{{Name: "r0", Arity: 2}, {Name: "r1", Arity: 2}},
		TuplesPerRelation: 25,
		DomainSize:        6,
		Seed:              8,
	})
	q := schema.MustParseQuery("Q(X, Z) :- r0(X, Y), r1(Y, Z)")
	direct := Eval(q, world)
	prog, err := EvalProgram([]*schema.Query{q}, world)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog["Q"]) != len(direct) {
		t.Fatalf("program derived %d, direct %d", len(prog["Q"]), len(direct))
	}
	for i := range direct {
		if !prog["Q"][i].Equal(direct[i]) {
			t.Fatalf("mismatch at %d: %v vs %v", i, prog["Q"][i], direct[i])
		}
	}
}

func TestFilterAnswers(t *testing.T) {
	atoms := []schema.Atom{
		schema.NewAtom("Q", schema.Const("a")),
		schema.NewAtom("Q", schema.Const("_sk_V_Z")),
	}
	out := FilterAnswers(atoms, func(a schema.Atom) bool {
		return a.Args[0].Name[0] != '_'
	})
	if len(out) != 1 || out[0].Args[0].Name != "a" {
		t.Errorf("FilterAnswers = %v", out)
	}
}
