//go:build !race

package execsim

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race because instrumentation allocates.
const raceEnabled = false
